// Package multislo implements §G: supporting multiple latency SLOs the way
// the paper (and Jellyfish [32]) describes — each worker is assigned a
// latency SLO, a central queue is instantiated per SLO, and workers attach
// to the queue whose SLO matches. Each SLO class therefore runs an
// independent RAMSIS stack (its own policy set sized to its worker share),
// and a class router splits the application mix across the queues.
package multislo

import (
	"fmt"
	"math/rand"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// Class is one latency-SLO application class.
type Class struct {
	// Name labels the class in results.
	Name string
	// SLO is the class's response latency SLO in seconds.
	SLO float64
	// Workers is the number of workers assigned to this class.
	Workers int
	// Share is the fraction of total query traffic belonging to this
	// class; shares must sum to 1.
	Share float64
}

// System is a multi-SLO deployment: independent per-class RAMSIS stacks.
type System struct {
	Models  profile.Set
	Classes []Class
	sets    []*core.PolicySet
}

// New validates the classes and builds the per-class policy sets.
func New(models profile.Set, classes []Class, d int) (*System, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("multislo: no classes")
	}
	total := 0.0
	for _, c := range classes {
		if c.SLO <= 0 || c.Workers < 1 || c.Share <= 0 {
			return nil, fmt.Errorf("multislo: invalid class %+v", c)
		}
		total += c.Share
	}
	if total < 0.999 || total > 1.001 {
		return nil, fmt.Errorf("multislo: shares sum to %v, want 1", total)
	}
	s := &System{Models: models, Classes: classes}
	for _, c := range classes {
		s.sets = append(s.sets, core.NewPolicySet(core.Config{
			Models:  models,
			SLO:     c.SLO,
			Workers: c.Workers,
			Arrival: dist.NewPoisson(1),
			D:       d,
		}, nil))
	}
	return s, nil
}

// Precompute generates each class's policy at its share of the total load.
func (s *System) Precompute(totalLoad float64) error {
	for i, c := range s.Classes {
		if err := s.sets[i].GenerateLoads([]float64{c.Share * totalLoad}); err != nil {
			return err
		}
	}
	return nil
}

// ClassPolicy returns class i's policy for its share of the total load.
func (s *System) ClassPolicy(i int, totalLoad float64) (*core.Policy, error) {
	return s.sets[i].PolicyFor(s.Classes[i].Share * totalLoad)
}

// Run serves a constant total load for dur seconds: arrivals are sampled
// once, split across the per-SLO central queues by class share (random
// assignment, as application mix arrival order is exchangeable), and each
// class's queue is drained by its own workers under its own RAMSIS policy.
func (s *System) Run(totalLoad, dur float64, seed int64) (map[string]sim.Metrics, error) {
	if err := s.Precompute(totalLoad); err != nil {
		return nil, err
	}
	all := trace.PoissonArrivals(trace.Constant(totalLoad, dur), seed)
	rng := rand.New(rand.NewSource(seed + 1))
	perClass := make([][]float64, len(s.Classes))
	for _, a := range all {
		u := rng.Float64()
		acc := 0.0
		for i, c := range s.Classes {
			acc += c.Share
			if u <= acc || i == len(s.Classes)-1 {
				perClass[i] = append(perClass[i], a)
				break
			}
		}
	}
	out := make(map[string]sim.Metrics, len(s.Classes))
	for i, c := range s.Classes {
		classTrace := trace.Constant(c.Share*totalLoad, dur)
		sched := sim.NewRAMSIS(s.sets[i], monitor.Oracle{Trace: classTrace})
		e := sim.NewEngine(s.Models, c.SLO, c.Workers, sim.Deterministic{}, sched, seed+int64(i))
		out[c.Name] = e.Run(perClass[i])
	}
	return out, nil
}
