package tenant

import (
	"math"
	"sort"
	"testing"
)

func TestArrivalsRatesAndOrder(t *testing.T) {
	ts := threeTenants() // rates 100, 50, 50
	dur := 50.0
	evs := Arrivals(ts, dur, 42)
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].T < evs[j].T }) {
		t.Fatal("arrivals not time-ordered")
	}
	counts := map[string]int{}
	for _, e := range evs {
		if e.T < 0 || e.T >= dur+1 {
			t.Fatalf("arrival at %v outside [0, %v)", e.T, dur)
		}
		counts[e.Tenant]++
	}
	for _, tn := range ts {
		want := tn.RateQPS * dur
		got := float64(counts[tn.Name])
		if math.Abs(got-want) > 4*math.Sqrt(want) {
			t.Errorf("%s: %v arrivals, want ≈ %v (Poisson at %v QPS)", tn.Name, got, want, tn.RateQPS)
		}
	}
}

func TestArrivalsDeterministicAndIndependent(t *testing.T) {
	ts := threeTenants()
	a := Arrivals(ts, 10, 7)
	b := Arrivals(ts, 10, 7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Dropping a tenant must not perturb the others' streams (per-tenant
	// seeding), as long as config order of survivors is preserved.
	solo := Arrivals(ts[:1], 10, 7)
	var first []float64
	for _, e := range a {
		if e.Tenant == ts[0].Name {
			first = append(first, e.T)
		}
	}
	if len(solo) != len(first) {
		t.Fatalf("tenant stream perturbed by others: %d vs %d", len(solo), len(first))
	}
	for i := range solo {
		if solo[i].T != first[i] {
			t.Fatalf("tenant stream perturbed at %d", i)
		}
	}
}

func TestArrivalsScaled(t *testing.T) {
	ts := threeTenants()
	dur := 40.0
	evs := ArrivalsScaled(ts, map[string]float64{"standard": 4}, dur, 3)
	counts := map[string]int{}
	for _, e := range evs {
		counts[e.Tenant]++
	}
	want := 4 * 50 * dur
	got := float64(counts["standard"])
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Errorf("scaled tenant: %v arrivals, want ≈ %v", got, want)
	}
	// Zero multiplier silences a tenant entirely.
	muted := ArrivalsScaled(ts, map[string]float64{"batch": 0}, dur, 3)
	for _, e := range muted {
		if e.Tenant == "batch" {
			t.Fatal("zero-multiplier tenant still emitted arrivals")
		}
	}
}
