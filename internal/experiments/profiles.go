package experiments

import "ramsis/internal/profile"

// ProfileRow is one model in a Fig. 3 / Fig. 9 profile plot.
type ProfileRow struct {
	Name      string
	Accuracy  float64
	LatencyMS float64 // batch-1 p95
	Pareto    bool
}

// Fig3 prints the image classification model profile (26 TorchVision
// models, 9 on the Pareto front).
func (h *Harness) Fig3() []ProfileRow {
	return h.profileFigure("Fig. 3: image classification model profile (p95 latency vs accuracy)", profile.ImageSet())
}

// Fig9 prints the text classification model profile (5 BERT models).
func (h *Harness) Fig9() []ProfileRow {
	return h.profileFigure("Fig. 9: text classification model profile (p95 latency vs accuracy)", profile.TextSet())
}

func (h *Harness) profileFigure(title string, s profile.Set) []ProfileRow {
	onFront := map[string]bool{}
	for _, p := range s.ParetoFront().Profiles {
		onFront[p.Name] = true
	}
	rows := make([]ProfileRow, 0, s.Len())
	h.printf("%s\n", title)
	h.printf("%-22s %9s %12s %7s\n", "model", "acc(%)", "latency(ms)", "pareto")
	for _, p := range s.SortedByLatency().Profiles {
		r := ProfileRow{
			Name:      p.Name,
			Accuracy:  p.Accuracy,
			LatencyMS: p.BatchLatency(1) * 1000,
			Pareto:    onFront[p.Name],
		}
		rows = append(rows, r)
		mark := ""
		if r.Pareto {
			mark = "*"
		}
		h.printf("%-22s %9.2f %12.1f %7s\n", r.Name, r.Accuracy*100, r.LatencyMS, mark)
	}
	h.printf("pareto front: %d of %d models\n\n", len(onFront), s.Len())
	return rows
}
