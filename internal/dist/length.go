package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// LengthSampler draws per-query token lengths (prompt/prefill or
// output/decode) for the LLM workload generator, and exposes the exact
// moments and quantiles of the discrete distribution it samples so policy
// generation (internal/core's token-bucket MDP) and statistical tests work
// from analytic values rather than Monte Carlo estimates. Implementations
// are deterministic given the seed of the supplied *rand.Rand and return
// lengths in [1, MaxLen()].
type LengthSampler interface {
	// SampleLen draws one token length.
	SampleLen(rng *rand.Rand) int
	// MeanLen returns the exact mean of the sampled distribution.
	MeanLen() float64
	// VarLen returns the exact variance of the sampled distribution.
	VarLen() float64
	// CDFLen returns P[length <= k].
	CDFLen(k int) float64
	// QuantileLen returns the smallest k with CDFLen(k) >= q, for
	// q in (0, 1].
	QuantileLen(q float64) int
	// MaxLen returns the largest length the sampler can produce.
	MaxLen() int
}

// normCDF is the standard normal CDF Φ(x).
func normCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// LognormalLen samples integer token lengths as round(exp(μ + σZ)) clamped
// to [Min, Max] — the discretized lognormal that production LLM traces fit
// for both prompt and output lengths. The exact pmf of that sampling rule
// (normal CDF differences at the half-integer rounding edges, with the tail
// mass folded into Min and Max by the clamp) is tabulated at construction,
// so the moment and quantile accessors are exact, not lognormal
// approximations.
type LognormalLen struct {
	mu, sigma float64
	min, max  int
	pmf       []float64 // pmf[k-min] = P[length == k]
	cdf       []float64 // cdf[k-min] = P[length <= k]
	mean, vr  float64
}

// NewLognormalLen builds a discretized lognormal length sampler with the
// given median (exp(μ)) and log-space σ, clamped to [min, max] tokens.
func NewLognormalLen(median, sigma float64, min, max int) *LognormalLen {
	if !(median > 0) || !(sigma > 0) || min < 1 || max < min {
		panic(fmt.Sprintf("dist: invalid LognormalLen(%v, %v, %d, %d)", median, sigma, min, max))
	}
	l := &LognormalLen{mu: math.Log(median), sigma: sigma, min: min, max: max}
	n := max - min + 1
	l.pmf = make([]float64, n)
	l.cdf = make([]float64, n)
	cum := 0.0
	for k := min; k <= max; k++ {
		// round(v) == k ⟺ v ∈ [k-0.5, k+0.5); the clamp folds v < min-0.5
		// into min and v >= max-0.5 into max.
		hi := 1.0
		if k < max {
			hi = normCDF((math.Log(float64(k)+0.5) - l.mu) / l.sigma)
		}
		lo := 0.0
		if k > min {
			lo = normCDF((math.Log(float64(k)-0.5) - l.mu) / l.sigma)
		}
		p := hi - lo
		if p < 0 {
			p = 0
		}
		l.pmf[k-min] = p
		cum += p
		l.cdf[k-min] = cum
		l.mean += p * float64(k)
	}
	for k := min; k <= max; k++ {
		d := float64(k) - l.mean
		l.vr += l.pmf[k-min] * d * d
	}
	return l
}

// SampleLen draws round(exp(μ + σZ)) clamped to [Min, Max].
func (l *LognormalLen) SampleLen(rng *rand.Rand) int {
	v := math.Exp(l.mu + l.sigma*rng.NormFloat64())
	k := int(math.Round(v))
	if k < l.min {
		k = l.min
	}
	if k > l.max {
		k = l.max
	}
	return k
}

// MeanLen returns the exact mean of the clamped discrete distribution.
func (l *LognormalLen) MeanLen() float64 { return l.mean }

// VarLen returns the exact variance of the clamped discrete distribution.
func (l *LognormalLen) VarLen() float64 { return l.vr }

// CDFLen returns P[length <= k].
func (l *LognormalLen) CDFLen(k int) float64 {
	if k < l.min {
		return 0
	}
	if k >= l.max {
		return 1
	}
	return l.cdf[k-l.min]
}

// QuantileLen returns the smallest k with CDFLen(k) >= q.
func (l *LognormalLen) QuantileLen(q float64) int {
	for k := l.min; k < l.max; k++ {
		if l.cdf[k-l.min] >= q {
			return k
		}
	}
	return l.max
}

// MaxLen returns the clamp ceiling.
func (l *LognormalLen) MaxLen() int { return l.max }

// LenBucket is one bucket of an empirical length histogram: lengths in
// [Lo, Hi] tokens carry Weight relative mass, spread uniformly over the
// bucket's integers.
type LenBucket struct {
	Lo, Hi int
	Weight float64
}

// EmpiricalLen samples from a bucketed empirical length histogram — the
// form a measured production length distribution arrives in (servegen-style
// per-class histograms). Buckets must be sorted, non-overlapping, and
// positive-weight; weights are normalized at construction.
type EmpiricalLen struct {
	buckets  []LenBucket
	cum      []float64 // cumulative normalized weight per bucket
	mean, vr float64
}

// NewEmpiricalLen builds an empirical bucket sampler.
func NewEmpiricalLen(buckets []LenBucket) *EmpiricalLen {
	if len(buckets) == 0 {
		panic("dist: NewEmpiricalLen with no buckets")
	}
	total := 0.0
	for i, b := range buckets {
		if b.Lo < 1 || b.Hi < b.Lo || !(b.Weight > 0) {
			panic(fmt.Sprintf("dist: invalid length bucket %+v", b))
		}
		if i > 0 && b.Lo <= buckets[i-1].Hi {
			panic(fmt.Sprintf("dist: length buckets overlap at %+v", b))
		}
		total += b.Weight
	}
	e := &EmpiricalLen{buckets: append([]LenBucket(nil), buckets...), cum: make([]float64, len(buckets))}
	cum := 0.0
	var sqMean float64
	for i, b := range e.buckets {
		w := b.Weight / total
		e.buckets[i].Weight = w
		cum += w
		e.cum[i] = cum
		mid := float64(b.Lo+b.Hi) / 2
		n := float64(b.Hi - b.Lo + 1)
		e.mean += w * mid
		// E[X²] of a uniform integer on [Lo, Hi] is mid² + (n²-1)/12.
		sqMean += w * (mid*mid + (n*n-1)/12)
	}
	e.vr = sqMean - e.mean*e.mean
	if e.vr < 0 {
		e.vr = 0
	}
	return e
}

// SampleLen picks a bucket by weight, then a uniform integer within it.
func (e *EmpiricalLen) SampleLen(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range e.cum {
		if u <= c || i == len(e.cum)-1 {
			b := e.buckets[i]
			return b.Lo + rng.Intn(b.Hi-b.Lo+1)
		}
	}
	return e.buckets[len(e.buckets)-1].Hi
}

// MeanLen returns the exact mean.
func (e *EmpiricalLen) MeanLen() float64 { return e.mean }

// VarLen returns the exact variance.
func (e *EmpiricalLen) VarLen() float64 { return e.vr }

// CDFLen returns P[length <= k].
func (e *EmpiricalLen) CDFLen(k int) float64 {
	cum := 0.0
	for _, b := range e.buckets {
		switch {
		case k >= b.Hi:
			cum += b.Weight
		case k >= b.Lo:
			cum += b.Weight * float64(k-b.Lo+1) / float64(b.Hi-b.Lo+1)
			return cum
		default:
			return cum
		}
	}
	return cum
}

// QuantileLen returns the smallest k with CDFLen(k) >= q.
func (e *EmpiricalLen) QuantileLen(q float64) int {
	prev := 0.0
	for i, b := range e.buckets {
		if q <= e.cum[i]+1e-15 {
			n := float64(b.Hi - b.Lo + 1)
			within := (q - prev) / b.Weight * n
			k := b.Lo + int(math.Ceil(within)) - 1
			if k < b.Lo {
				k = b.Lo
			}
			if k > b.Hi {
				k = b.Hi
			}
			return k
		}
		prev = e.cum[i]
	}
	return e.buckets[len(e.buckets)-1].Hi
}

// MaxLen returns the last bucket's upper bound.
func (e *EmpiricalLen) MaxLen() int { return e.buckets[len(e.buckets)-1].Hi }
