package core

import (
	"math"
	"testing"
	"testing/quick"

	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

func testConfig() Config {
	return Config{
		Models:  profile.ImageSet(),
		SLO:     0.150,
		Workers: 4,
		Arrival: dist.NewPoisson(160),
	}.withDefaults()
}

func TestFLDGrid(t *testing.T) {
	g := fldGrid(0.1, 10)
	if len(g) != 11 {
		t.Fatalf("FLD grid size %d, want 11", len(g))
	}
	if g[0] != 0 || g[10] != 0.1 {
		t.Errorf("FLD grid endpoints %v, %v, want 0 and 0.1", g[0], g[10])
	}
	for i := 1; i < len(g); i++ {
		if math.Abs(g[i]-g[i-1]-0.01) > 1e-12 {
			t.Fatalf("FLD spacing wrong at %d", i)
		}
	}
}

func TestMDGrid(t *testing.T) {
	cfg := testConfig()
	cfg.Disc = ModelBased
	sp := newSpace(cfg)
	if sp.grid[0] != 0 {
		t.Errorf("MD grid must start with the 0 floor bucket, got %v", sp.grid[0])
	}
	// Every grid point beyond the floor is a real latency <= SLO of some
	// Pareto-front model.
	front := cfg.Models.ParetoFront()
	for _, g := range sp.grid[1:] {
		if g > cfg.SLO {
			t.Errorf("MD grid point %v exceeds SLO", g)
		}
		found := false
		for _, p := range front.Profiles {
			for b := 1; b <= min(cfg.MaxQueue, p.MaxBatch()); b++ {
				if math.Abs(p.BatchLatency(b)-g) < 1e-9 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("MD grid point %v is not a model latency", g)
		}
	}
	// Strictly ascending, unique.
	for i := 1; i < len(sp.grid); i++ {
		if sp.grid[i] <= sp.grid[i-1] {
			t.Fatalf("MD grid not strictly ascending at %d", i)
		}
	}
}

func TestStateIndexRoundTrip(t *testing.T) {
	sp := newSpace(testConfig())
	seen := map[int]bool{sp.emptyState(): true, sp.overflowState(): true}
	for n := 1; n <= sp.cfg.MaxQueue; n++ {
		for j := 0; j < len(sp.grid); j++ {
			s := sp.index(n, j)
			if seen[s] {
				t.Fatalf("index collision at (%d,%d) -> %d", n, j, s)
			}
			seen[s] = true
			gn, gj := sp.decompose(s)
			if gn != n || gj != j {
				t.Fatalf("decompose(%d) = (%d,%d), want (%d,%d)", s, gn, gj, n, j)
			}
			if s <= 0 || s >= sp.numStates()-1 {
				t.Fatalf("index(%d,%d) = %d outside (0, %d)", n, j, s, sp.numStates()-1)
			}
		}
	}
	if len(seen) != sp.numStates() {
		t.Errorf("indexing covers %d states, want %d", len(seen), sp.numStates())
	}
}

func TestBucketOfProperties(t *testing.T) {
	sp := newSpace(testConfig())
	f := func(raw float64) bool {
		slack := math.Abs(raw)
		if math.IsNaN(slack) || math.IsInf(slack, 0) {
			return true
		}
		if slack > 10 {
			slack = math.Mod(slack, 0.2)
		}
		j := sp.bucketOf(slack)
		if j < 0 || j >= len(sp.grid) {
			return false
		}
		// T_j <= slack (conservative underestimate), except the floor.
		if j > 0 && sp.grid[j] > slack+1e-12 {
			return false
		}
		// And slack < T_{j+1} when one exists.
		if j+1 < len(sp.grid) && slack >= sp.grid[j+1] && sp.grid[j+1] > slack {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Exact grid values map to their own bucket.
	for j, g := range sp.grid {
		if got := sp.bucketOf(g); got != j {
			t.Errorf("bucketOf(grid[%d]) = %d", j, got)
		}
	}
}

func TestStateFor(t *testing.T) {
	sp := newSpace(testConfig())
	if got := sp.stateFor(0, 0.1); got != sp.emptyState() {
		t.Errorf("stateFor(0) = %d, want empty", got)
	}
	if got := sp.stateFor(sp.cfg.MaxQueue+5, 0.1); got != sp.overflowState() {
		t.Errorf("stateFor(overlong) = %d, want overflow", got)
	}
	if got := sp.stateFor(3, 0.05); got != sp.index(3, sp.bucketOf(0.05)) {
		t.Errorf("stateFor(3, 50ms) = %d", got)
	}
}

func TestActionsValidity(t *testing.T) {
	sp := newSpace(testConfig())
	for n := 1; n <= sp.cfg.MaxQueue; n++ {
		for _, slack := range []float64{0, 0.02, 0.08, 0.15} {
			acts := sp.actionsFor(n, slack)
			if len(acts) == 0 {
				t.Fatalf("no actions at (n=%d, slack=%v)", n, slack)
			}
			forced := len(acts) == 1 && !acts[0].Satisfies
			for _, a := range acts {
				if a.Satisfies && a.Latency > slack {
					t.Fatalf("action marked satisfying but latency %v > slack %v", a.Latency, slack)
				}
				if !a.Satisfies && !forced {
					t.Fatalf("non-forced unsatisfying action at (n=%d, slack=%v)", n, slack)
				}
				if a.Batch != n {
					t.Fatalf("maximal batching produced batch %d != n %d", a.Batch, n)
				}
			}
			if forced && acts[0].Model != sp.fastestModel() {
				t.Fatalf("forced action uses model %d, want fastest %d", acts[0].Model, sp.fastestModel())
			}
		}
	}
}

func TestActionsVariableBatching(t *testing.T) {
	cfg := testConfig()
	cfg.Batching = VariableBatching
	sp := newSpace(cfg)
	acts := sp.actionsFor(5, 0.15)
	sawSmall := false
	for _, a := range acts {
		if a.Batch < 1 || a.Batch > 5 {
			t.Fatalf("variable batch %d outside [1,5]", a.Batch)
		}
		if a.Batch < 5 {
			sawSmall = true
		}
		if a.Satisfies && a.Latency > 0.15 {
			t.Fatal("invalid action accepted")
		}
	}
	if !sawSmall {
		t.Error("variable batching offered no partial batches")
	}
	// Variable strictly enlarges the action space versus maximal.
	spMax := newSpace(testConfig())
	if len(acts) <= len(spMax.actionsFor(5, 0.15)) {
		t.Error("variable action space not larger than maximal")
	}
}

func TestParetoPruningShrinksActionModels(t *testing.T) {
	pruned := newSpace(testConfig())
	cfg := testConfig()
	cfg.NoParetoPruning = true
	full := newSpace(cfg)
	if pruned.models.Len() != 9 {
		t.Errorf("pruned action models = %d, want 9 (Fig. 3)", pruned.models.Len())
	}
	if full.models.Len() != 26 {
		t.Errorf("unpruned action models = %d, want 26", full.models.Len())
	}
}

func TestEmptyStateSingleArrivalAction(t *testing.T) {
	sp := newSpace(testConfig())
	acts := sp.actionsForState(sp.emptyState())
	if len(acts) != 1 || acts[0].Model != arrivalAction {
		t.Fatalf("empty state actions = %+v, want single arrival action", acts)
	}
}

func TestOverflowStateForcedAction(t *testing.T) {
	sp := newSpace(testConfig())
	acts := sp.actionsForState(sp.overflowState())
	if len(acts) != 1 || acts[0].Satisfies {
		t.Fatalf("overflow state actions = %+v, want single forced action", acts)
	}
	if acts[0].Batch != sp.cfg.MaxQueue {
		t.Errorf("overflow forced batch = %d, want N_w", acts[0].Batch)
	}
}

func TestReward(t *testing.T) {
	sp := newSpace(testConfig())
	sat := actionSpec{Model: 0, Batch: 3, Satisfies: true}
	if got, want := sp.reward(sat), sp.models.Profiles[0].Accuracy; got != want {
		t.Errorf("reward = %v, want accuracy %v", got, want)
	}
	if got := sp.reward(actionSpec{Model: 0, Batch: 3}); got != 0 {
		t.Errorf("unsatisfied reward = %v, want 0", got)
	}
	if got := sp.reward(actionSpec{Model: arrivalAction, Satisfies: true}); got != 0 {
		t.Errorf("arrival reward = %v, want 0", got)
	}
	cfgW := testConfig()
	cfgW.BatchWeightedReward = true
	spW := newSpace(cfgW)
	if got, want := spW.reward(sat), 3*spW.models.Profiles[0].Accuracy; got != want {
		t.Errorf("weighted reward = %v, want %v", got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Models = profile.Set{} },
		func(c *Config) { c.SLO = 0 },
		func(c *Config) { c.SLO = math.Inf(1) },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Arrival = nil },
		func(c *Config) { c.D = -1 },
		func(c *Config) { c.MaxQueue = -2 },
		func(c *Config) { c.AggQueue = -1 },
		func(c *Config) { c.Gamma = 1.5 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Queue bounds beyond the profiled batch range are valid: batches clamp
	// to each model's profiled maximum and over-long queues drain partially.
	big := testConfig()
	big.MaxQueue = profile.MaxSupportedBatch * 10
	if err := big.Validate(); err != nil {
		t.Errorf("10x max-queue config rejected: %v", err)
	}
}
