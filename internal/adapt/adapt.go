// Package adapt closes the loop between the load monitor and the offline
// policy generator (§3.2.2, §6 "Query Load Adaptation"): a drift detector
// watches the monitored arrival rate, and when the rate has genuinely moved
// away from what the active policy was solved for — outside a hysteresis
// band for a minimum dwell time — the adapter re-solves the per-worker MDP
// at the new rate and hot-swaps the result into the dispatch path without
// pausing it. Policy sets are copy-on-write behind an atomic pointer, so
// the decision path is a lock-free load; an LRU cache keyed by (rate
// bucket, SLO, config hash) makes returning to a previously seen rate a
// lookup instead of a solve.
//
// The same adapter drives both the simulator (inline re-solves: a solve
// costs zero modeled time) and the serving prototype (background re-solves
// on a goroutine: dispatch keeps running on the old policy until the swap).
package adapt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/telemetry"
)

// Config parameterizes an Adapter.
type Config struct {
	// Base is the generation problem (models, SLO, workers, knobs). Its
	// Arrival field is overridden per rate bucket via ArrivalFor. A zero
	// Base.Solver defaults to core.SolvePrioritized: drift re-solves are
	// latency-critical (dispatch runs on the stale policy until the swap)
	// and the prioritized method reaches the same fixed point as value
	// iteration in a fraction of the time, especially warm-started. Set
	// Base.Solver explicitly to choose another method.
	Base core.Config
	// ArrivalFor maps a rate bucket to the arrival process policies are
	// solved against. Nil defaults to Poisson, as in the paper.
	ArrivalFor func(rate float64) dist.Process
	// Band is the fractional hysteresis half-width around the solved-for
	// rate (0 defaults to 0.2, i.e. ±20 %).
	Band float64
	// Dwell is how long (modeled seconds) the rate must sit outside the
	// band before drift is confirmed (0 defaults to 2 s; negative means
	// fire immediately).
	Dwell float64
	// BucketSize quantizes drifted rates before solving, so near-identical
	// rates share one policy and one cache entry (0 defaults to the
	// hysteresis band width at the initial rate, Band×initial.Load, so a
	// confirmed drift always changes buckets).
	BucketSize float64
	// CacheSize bounds the LRU policy cache (0 defaults to 16).
	CacheSize int
	// Background re-solves on a goroutine instead of inline. The serving
	// path sets it so dispatch never stalls behind a solve; the simulator
	// leaves it unset because an inline solve costs zero modeled time.
	Background bool
	// Telemetry optionally mirrors the adapter's counters into a metrics
	// registry under the ramsis_adapt_* names.
	Telemetry *telemetry.Registry
	// Decisions, when set, records every policy hot-swap as an adapt_swap
	// decision: the drifted rate bucket it re-solved for and the wall-clock
	// drift-to-swap latency dispatch spent on the stale policy.
	Decisions *telemetry.DecisionBuffer
	// Tenant labels the adapter's decision records in multi-tenant planes.
	Tenant string
}

// Stats is a consistent snapshot of the adapter's counters.
type Stats struct {
	// Resolves counts MDP re-solves attempted on drift (cache hits do not
	// solve and are not counted).
	Resolves uint64
	// ResolveErrors counts re-solves that failed; the previous policy
	// stayed active.
	ResolveErrors uint64
	// CacheHits counts drift events served from the LRU cache.
	CacheHits uint64
	// CacheMisses counts drift events that had to solve.
	CacheMisses uint64
	// Swaps counts policy-set hot-swaps published to the dispatch path.
	Swaps uint64
	// WarmStarts counts re-solves seeded from a cached neighboring bucket's
	// converged value vector instead of zeros.
	WarmStarts uint64
	// LastResolveIterations is the solver iteration count of the most
	// recent successful re-solve (0 before the first one). Warm-started
	// re-solves show measurably fewer iterations than cold solves.
	LastResolveIterations uint64
	// ActiveBucket is the rate bucket (QPS) of the currently active policy.
	ActiveBucket float64
}

// Adapter owns the drift detector, the policy cache, and the published
// policy set. Observe feeds it monitored rates; PolicyFor serves the
// dispatch path lock-free.
type Adapter struct {
	cfg  Config
	hash uint64

	mu        sync.Mutex
	det       *Detector
	resolving bool

	cur    atomic.Pointer[core.PolicySet]
	bucket atomic.Uint64 // Float64bits of the active rate bucket
	cache  *Cache

	lastNow atomic.Uint64 // Float64bits of the last Observe's modeled time

	resolves, resolveErrors   atomic.Uint64
	cacheHits, cacheMisses    atomic.Uint64
	swaps, warmStarts         atomic.Uint64
	lastResolveIterations     atomic.Uint64
	mResolves, mResolveErrors *telemetry.Counter
	mCacheHits, mCacheMisses  *telemetry.Counter
	mSwaps, mWarmStarts       *telemetry.Counter
	mSwapSeconds              *telemetry.Histogram
	mBucket, mResolveIters    *telemetry.Gauge
}

// New builds an adapter around an initial policy (solved offline for the
// anticipated starting rate). The detector centers on the policy's load,
// and the policy seeds both the published set and the cache — so drifting
// away and back is one solve and one cache hit.
func New(cfg Config, initial *core.Policy) (*Adapter, error) {
	if initial == nil {
		return nil, errNilInitial
	}
	if cfg.ArrivalFor == nil {
		cfg.ArrivalFor = func(rate float64) dist.Process { return dist.NewPoisson(rate) }
	}
	if cfg.Base.Solver == core.SolveValueIteration {
		cfg.Base.Solver = core.SolvePrioritized
	}
	if cfg.Band == 0 {
		cfg.Band = 0.2
	}
	if cfg.Dwell == 0 {
		cfg.Dwell = 2
	}
	if cfg.BucketSize <= 0 {
		// Default to the hysteresis band width at the initial rate: a
		// confirmed drift has, by definition, moved at least Band×center
		// away, so it always lands in a different bucket than the active
		// policy and is never swallowed by the sub-bucket short-circuit.
		// (A fixed coarse default such as the on-demand rung would alias
		// every rate below 1.5 rungs into one bucket and blind the adapter
		// at small deployments.)
		cfg.BucketSize = initial.Load * cfg.Band
		if cfg.BucketSize <= 0 {
			cfg.BucketSize = core.OnDemandRung
		}
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 16
	}
	a := &Adapter{
		cfg:   cfg,
		hash:  ConfigHash(cfg.Base),
		det:   NewDetector(initial.Load, cfg.Band, cfg.Dwell),
		cache: NewCache(cfg.CacheSize),
	}
	set := core.NewPolicySet(cfg.Base, cfg.ArrivalFor)
	set.Insert(initial)
	a.cur.Store(set)
	bucket := bucketOf(initial.Load, cfg.BucketSize)
	a.bucket.Store(math.Float64bits(bucket))
	a.cache.Put(a.key(bucket), initial)
	if r := cfg.Telemetry; r != nil {
		a.mResolves = r.Counter(telemetry.MetricAdaptResolves)
		a.mResolveErrors = r.Counter(telemetry.MetricAdaptResolveErrors)
		a.mCacheHits = r.Counter(telemetry.MetricAdaptCacheHits)
		a.mCacheMisses = r.Counter(telemetry.MetricAdaptCacheMisses)
		a.mSwaps = r.Counter(telemetry.MetricAdaptSwaps)
		a.mWarmStarts = r.Counter(telemetry.MetricAdaptWarmStarts)
		a.mSwapSeconds = r.Histogram(telemetry.MetricAdaptSwapSeconds)
		a.mBucket = r.Gauge(telemetry.MetricAdaptRateBucket)
		a.mResolveIters = r.Gauge(telemetry.MetricAdaptResolveIterations)
		a.mBucket.Set(bucket)
	}
	return a, nil
}

type nilInitialError struct{}

func (nilInitialError) Error() string { return "adapt: initial policy required" }

var errNilInitial = nilInitialError{}

// key builds the cache key for a rate bucket under the adapter's problem.
func (a *Adapter) key(bucket float64) Key {
	return Key{Bucket: bucket, SLO: a.cfg.Base.SLO, ConfigHash: a.hash}
}

// bucketOf quantizes a rate to the nearest bucket (minimum one bucket).
func bucketOf(rate, size float64) float64 {
	b := math.Round(rate/size) * size
	if b < size {
		b = size
	}
	return b
}

// Current returns the published policy set. The returned set is never
// mutated after publication.
func (a *Adapter) Current() *core.PolicySet { return a.cur.Load() }

// PolicyFor returns the policy serving an anticipated load from the current
// set: one atomic pointer load plus a ladder lookup, never a solve.
func (a *Adapter) PolicyFor(load float64) *core.Policy {
	return a.cur.Load().Best(load)
}

// ActiveBucket returns the rate bucket of the currently active policy.
func (a *Adapter) ActiveBucket() float64 {
	return math.Float64frombits(a.bucket.Load())
}

// Stats returns a snapshot of the adapter's counters.
func (a *Adapter) Stats() Stats {
	return Stats{
		Resolves:              a.resolves.Load(),
		ResolveErrors:         a.resolveErrors.Load(),
		CacheHits:             a.cacheHits.Load(),
		CacheMisses:           a.cacheMisses.Load(),
		Swaps:                 a.swaps.Load(),
		WarmStarts:            a.warmStarts.Load(),
		LastResolveIterations: a.lastResolveIterations.Load(),
		ActiveBucket:          a.ActiveBucket(),
	}
}

// Observe feeds one monitored rate reading at modeled time now. When drift
// is confirmed, it re-solves (or cache-loads) a policy for the drifted
// rate's bucket and hot-swaps it into the published set. With
// Config.Background the solve runs on a goroutine and Observe returns
// immediately; otherwise the swap completes before Observe returns.
//
// A failed re-solve leaves the previous policy active; it is retried on the
// next confirmed drift event.
func (a *Adapter) Observe(now, rate float64) {
	a.lastNow.Store(math.Float64bits(now))
	a.mu.Lock()
	if a.resolving || !a.det.Observe(now, rate) {
		a.mu.Unlock()
		return
	}
	// Drift confirmed: recenter on the observed rate so this event fires
	// exactly once, and pick the bucket to serve it.
	a.det.Recenter(rate)
	target := bucketOf(rate, a.cfg.BucketSize)
	if target == a.ActiveBucket() {
		// The rate moved outside the band but not far enough to change
		// buckets (sub-bucket drift): the active policy already covers it.
		a.mu.Unlock()
		return
	}
	a.resolving = true
	a.mu.Unlock()

	start := time.Now()
	if pol, ok := a.cache.Get(a.key(target)); ok {
		a.cacheHits.Add(1)
		inc(a.mCacheHits)
		a.install(target, pol, start)
		a.clearResolving()
		return
	}
	a.cacheMisses.Add(1)
	inc(a.mCacheMisses)
	if a.cfg.Background {
		go a.resolve(target, start)
	} else {
		a.resolve(target, start)
	}
}

// resolve generates a policy for the bucket, caches it, and swaps it in.
// When the cache holds a policy for any bucket of the same problem, the
// solve warm-starts from the nearest bucket's converged value vector: the
// state space is identical (only the arrival differs), so the solver starts
// close to the new fixed point and converges in fewer sweeps — directly
// shrinking the drift-to-swap window dispatch spends on the stale policy.
func (a *Adapter) resolve(bucket float64, start time.Time) {
	defer a.clearResolving()
	a.resolves.Add(1)
	inc(a.mResolves)
	cfg := a.cfg.Base
	cfg.Arrival = a.cfg.ArrivalFor(bucket)
	if donor, ok := a.cache.Nearest(a.key(bucket)); ok {
		if vals := donor.SolveValues(); vals != nil {
			cfg.InitialValues = vals
			a.warmStarts.Add(1)
			inc(a.mWarmStarts)
		}
	}
	pol, err := core.Generate(cfg)
	if err != nil {
		a.resolveErrors.Add(1)
		inc(a.mResolveErrors)
		return
	}
	a.lastResolveIterations.Store(uint64(pol.Iterations))
	if a.mResolveIters != nil {
		a.mResolveIters.Set(float64(pol.Iterations))
	}
	a.cache.Put(a.key(bucket), pol)
	a.install(bucket, pol, start)
}

// Install publishes a policy for a rate bucket immediately: the current set
// is cloned copy-on-write, the policy inserted, and the new set stored in
// one atomic swap. Dispatchers holding the old pointer finish their
// decision on the old ladder; the next decision sees the new one.
func (a *Adapter) Install(bucket float64, pol *core.Policy) {
	a.install(bucket, pol, time.Now())
}

func (a *Adapter) install(bucket float64, pol *core.Policy, start time.Time) {
	a.mu.Lock()
	next := a.cur.Load().Clone()
	next.Insert(pol)
	a.cur.Store(next)
	a.bucket.Store(math.Float64bits(bucket))
	a.mu.Unlock()
	a.swaps.Add(1)
	inc(a.mSwaps)
	if a.mSwapSeconds != nil {
		a.mSwapSeconds.Observe(time.Since(start).Seconds())
	}
	if a.mBucket != nil {
		a.mBucket.Set(bucket)
	}
	if a.cfg.Decisions != nil {
		a.cfg.Decisions.Add(telemetry.Decision{
			Kind:    telemetry.DecisionAdaptSwap,
			Time:    math.Float64frombits(a.lastNow.Load()),
			Tenant:  a.cfg.Tenant,
			Worker:  -1,
			RateQPS: bucket,
			// RealizedSec is the wall-clock drift-to-swap window: how long
			// dispatch ran on the stale policy after drift was confirmed.
			RealizedSec: time.Since(start).Seconds(),
			Outcome:     fmt.Sprintf("hot-swap to %g qps bucket", bucket),
		})
	}
}

func (a *Adapter) clearResolving() {
	a.mu.Lock()
	a.resolving = false
	a.mu.Unlock()
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}
