package adapt

import (
	"testing"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

func key(bucket float64) Key { return Key{Bucket: bucket, SLO: 0.150, ConfigHash: 1} }

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	a, b, d := &core.Policy{Load: 1}, &core.Policy{Load: 2}, &core.Policy{Load: 3}
	c.Put(key(1), a)
	c.Put(key(2), b)
	// Touch 1 so 2 becomes least recently used.
	if got, ok := c.Get(key(1)); !ok || got != a {
		t.Fatal("missing freshly inserted entry")
	}
	c.Put(key(3), d)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(key(2)); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Error("recently used entry was evicted")
	}
	if got, ok := c.Get(key(3)); !ok || got != d {
		t.Error("newest entry missing")
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(2)
	old, nw := &core.Policy{Load: 1}, &core.Policy{Load: 1.5}
	c.Put(key(1), old)
	c.Put(key(2), &core.Policy{Load: 2})
	c.Put(key(1), nw) // refresh value and recency
	c.Put(key(3), &core.Policy{Load: 3})
	if got, ok := c.Get(key(1)); !ok || got != nw {
		t.Error("refreshed entry lost or stale")
	}
	if _, ok := c.Get(key(2)); ok {
		t.Error("expected key 2 evicted after key 1 was refreshed")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put(key(1), &core.Policy{Load: 1})
	c.Put(key(2), &core.Policy{Load: 2})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamps to 1)", c.Len())
	}
}

func TestConfigHashIgnoresArrivalOnly(t *testing.T) {
	base := core.Config{
		Models:  profile.AblationImageSet(),
		SLO:     0.150,
		Workers: 4,
		Arrival: dist.NewPoisson(100),
		D:       20,
	}
	h := ConfigHash(base)

	// The arrival rate is the cache key's Bucket dimension, not part of the
	// hash: two buckets of the same problem must share a hash.
	other := base
	other.Arrival = dist.NewPoisson(500)
	if ConfigHash(other) != h {
		t.Error("hash changed with arrival rate; buckets of one problem must share it")
	}

	// Everything that shapes the MDP must change the hash.
	for name, mutate := range map[string]func(*core.Config){
		"workers":  func(c *core.Config) { c.Workers = 8 },
		"D":        func(c *core.Config) { c.D = 50 },
		"maxQueue": func(c *core.Config) { c.MaxQueue = 8 },
		"models":   func(c *core.Config) { c.Models = profile.ImageSet() },
		"batching": func(c *core.Config) { c.Batching = core.VariableBatching },
		"gamma":    func(c *core.Config) { c.Gamma = 0.9 },
		"pruning":  func(c *core.Config) { c.NoParetoPruning = true },
		"solver":   func(c *core.Config) { c.Solver = core.SolvePrioritized },
		"float32":  func(c *core.Config) { c.Float32 = true },
	} {
		mut := base
		mutate(&mut)
		if ConfigHash(mut) == h {
			t.Errorf("hash ignored %s change", name)
		}
	}

	// AggQueue is a pure accelerator — the fixed point and therefore the
	// policy are unchanged — so aggregated and plain solves share a hash.
	agg := base
	agg.AggQueue = 8
	if ConfigHash(agg) != h {
		t.Error("hash changed with AggQueue; aggregation cannot move the fixed point")
	}
}
