// Command ramsisgen runs RAMSIS's offline phase for one configuration and
// writes the generated model-selection policy as JSON, mirroring the
// artifact's RAMSIS_gen.py:
//
//	ramsisgen --task image --slo 150 --workers 60 --load 2000 --out gen/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
)

func main() {
	var (
		task      = flag.String("task", "image", "inference task: image or text")
		sloMS     = flag.Float64("slo", 150, "latency SLO in milliseconds")
		workers   = flag.Int("workers", 1, "number of workers K")
		load      = flag.Float64("load", 1, "query load in QPS")
		out       = flag.String("out", "policy_gen", "output directory")
		d         = flag.Int("d", 100, "FLD resolution D")
		disc      = flag.String("disc", "FLD", "time discretization: FLD or MD")
		batching  = flag.String("batching", "max", "batching strategy: max or variable")
		balancing = flag.String("balancing", "rr", "load balancing: rr or sqf")
		gamma     = flag.Float64("gamma", 0.99, "value-iteration discount factor")
		describe  = flag.Bool("describe", false, "print the policy decision table")
		verify    = flag.Bool("verify", false, "simulate 30s at the design load and check the guarantees")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt    = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	if _, err := telemetry.SetupLogging(*logLevel, *logFmt, "ramsisgen"); err != nil {
		log.Fatal(err)
	}

	models, err := profile.SetForTask(*task)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Models:  models,
		SLO:     *sloMS / 1000,
		Workers: *workers,
		Arrival: dist.NewPoisson(*load),
		D:       *d,
		Gamma:   *gamma,
	}
	switch *disc {
	case "FLD":
		cfg.Disc = core.FixedLength
	case "MD":
		cfg.Disc = core.ModelBased
	default:
		log.Fatalf("unknown discretization %q", *disc)
	}
	switch *batching {
	case "max":
		cfg.Batching = core.MaximalBatching
	case "variable":
		cfg.Batching = core.VariableBatching
	default:
		log.Fatalf("unknown batching %q", *batching)
	}
	switch *balancing {
	case "rr":
		cfg.Balancing = core.RoundRobin
	case "sqf":
		cfg.Balancing = core.ShortestQueueFirst
	default:
		log.Fatalf("unknown balancing %q", *balancing)
	}

	pol, err := core.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*out,
		fmt.Sprintf("RAMSIS_%s_%dw_%.0fms", *task, *workers, *sloMS),
		fmt.Sprintf("%.0f.json", *load))
	if err := pol.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy: %s\n", path)
	fmt.Printf("states=%d transitions=%d iterations=%d build=%v solve=%v\n",
		pol.States, pol.Transitions, pol.Iterations, pol.BuildTime.Round(1e6), pol.SolveTime.Round(1e6))
	fmt.Printf("expected accuracy=%.4f expected violation rate=%.6f\n",
		pol.ExpectedAccuracy, pol.ExpectedViolation)
	if *describe {
		pol.Describe(os.Stdout)
	}
	if *verify {
		m := sim.VerifyPolicy(pol, models, 30, 1)
		fmt.Printf("verified over %d queries: accuracy %.4f (bound >= %.4f), violations %.4f%% (bound <= %.4f%%)\n",
			m.Served, m.AccuracyPerSatisfiedQuery(), pol.ExpectedAccuracy,
			m.ViolationRate()*100, pol.ExpectedViolation*100)
	}
	fmt.Println("script complete!")
	os.Exit(0)
}
