// Package telemetry is the zero-dependency observability layer shared by
// the serving prototype and the simulator: a concurrency-safe metrics
// Registry (counters, gauges, log-bucketed latency histograms) exposed in
// Prometheus text format, per-query trace spans with a bounded ring buffer
// and JSONL export, and structured-logging / pprof wiring for the CLIs.
//
// Everything here is stdlib-only (per go.mod): the exposition writer emits
// the Prometheus text format directly, so a scraper, curl, or the golden
// test can consume /metrics without importing any client library. The same
// registry backs both the frontend's /stats JSON and /metrics, so the two
// views can never disagree.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one exposable time series.
type metric interface {
	// write emits the series' sample lines. name is the family name and
	// labels the pre-rendered label set (`a="b",c="d"` or empty).
	write(w io.Writer, name, labels string)
}

// family is one named metric family: every series shares the name, TYPE,
// and HELP text and differs only in labels.
type family struct {
	name   string
	typ    string // "counter", "gauge", or "histogram"
	help   string
	series map[string]metric // keyed by rendered label set
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; call NewRegistry. Lookup methods (Counter, Gauge,
// Histogram) return the existing series when one with the same name and
// labels is already registered, so instrumentation sites can call them
// without coordinating ownership.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey renders variadic ("name", "value", ...) pairs into the canonical
// exposition label set, sorted by label name.
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: label pairs must come as name, value")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// EscapeLabelValue escapes a label value per the Prometheus text exposition
// format: backslash, double-quote, and line feed become \\, \", and \n.
// Everything else — including UTF-8 beyond ASCII — passes through verbatim
// (the format is UTF-8; Go's %q would \u-escape it into something a
// Prometheus parser reads back as a literal backslash sequence).
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating it with mk when
// absent. It panics when the name is already registered with another type:
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, typ string, pairs []string, mk func() metric) metric {
	key := labelKey(pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, typ: typ, series: map[string]metric{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	m := f.series[key]
	if m == nil {
		m = mk()
		f.series[key] = m
	}
	return m
}

// Help attaches HELP text to a family (created on first use if needed via
// the typed lookups; Help on an unknown name is remembered once the family
// is registered only if called after registration, so call it after).
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = text
	}
}

// Counter returns the counter series for name and label pairs, registering
// it on first use.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	return r.lookup(name, "counter", labelPairs, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name and label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	return r.lookup(name, "gauge", labelPairs, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge series whose value is read from fn at
// exposition time, so e.g. per-worker health marks are always live.
func (r *Registry) GaugeFunc(name string, fn func() float64, labelPairs ...string) {
	r.lookup(name, "gauge", labelPairs, func() metric { return &Gauge{fn: fn} })
}

// Histogram returns the histogram series for name and label pairs using the
// default latency buckets.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	return r.HistogramBuckets(name, nil, labelPairs...)
}

// HistogramBuckets returns the histogram series for name and label pairs
// with explicit bucket upper bounds (ascending; +Inf is implicit). A nil
// buckets slice selects DefaultLatencyBuckets.
func (r *Registry) HistogramBuckets(name string, buckets []float64, labelPairs ...string) *Histogram {
	return r.lookup(name, "histogram", labelPairs, func() metric {
		if buckets == nil {
			buckets = DefaultLatencyBuckets()
		}
		return NewHistogram(buckets)
	}).(*Histogram)
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format, families sorted by name and series by label set, so
// the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; sample values
	// are read atomically afterwards.
	type snap struct {
		f    *family
		keys []string
	}
	snaps := make([]snap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps = append(snaps, snap{f, keys})
	}
	r.mu.Unlock()

	for _, s := range snaps {
		if s.f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", s.f.name, s.f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", s.f.name, s.f.typ)
		for _, k := range s.keys {
			s.f.series[k].write(w, s.f.name, k)
		}
	}
}

// Handler serves the registry in Prometheus text format (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// formatFloat renders a sample value the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders `name{labels}` (or bare name for empty labels).
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// atomicFloat is a float64 updated with CAS on its bit pattern, shared by
// counters, gauges, and histogram sums.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value, safe for concurrent use.
type Counter struct{ v atomicFloat }

// Add increases the counter by v (v must be non-negative; enforcing that at
// runtime is not worth a branch on the hot path).
func (c *Counter) Add(v float64) { c.v.add(v) }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s %s\n", seriesName(name, labels), formatFloat(c.Value()))
}

// Gauge is a value that can go up and down; with fn set its value is read
// from the callback at exposition time.
type Gauge struct {
	v  atomicFloat
	fn func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adjusts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value (the callback's result for GaugeFunc
// series).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v.load()
}

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s %s\n", seriesName(name, labels), formatFloat(g.Value()))
}

// CounterVec is a family of counters fanned out over the values of one
// label (plus optional fixed label pairs), with a lock-free fast path for
// label values already seen: per-tenant and per-shard hot paths hit a
// sync.Map load instead of the registry's mutex-guarded lookup.
type CounterVec struct {
	reg    *Registry
	name   string
	label  string
	fixed  []string
	series sync.Map // label value -> *Counter
}

// CounterVec returns a counter family for name keyed by label; fixedPairs
// are additional constant label pairs stamped on every series (e.g. the
// shard index). Two CounterVecs for the same name share the underlying
// registry series.
func (r *Registry) CounterVec(name, label string, fixedPairs ...string) *CounterVec {
	return &CounterVec{reg: r, name: name, label: label, fixed: fixedPairs}
}

// With returns the counter for one label value, registering it on first use.
func (v *CounterVec) With(value string) *Counter {
	if c, ok := v.series.Load(value); ok {
		return c.(*Counter)
	}
	pairs := append(append([]string{}, v.fixed...), v.label, value)
	c := v.reg.Counter(v.name, pairs...)
	actual, _ := v.series.LoadOrStore(value, c)
	return actual.(*Counter)
}

// GaugeVec is a family of gauges fanned out over the values of one label,
// mirroring CounterVec.
type GaugeVec struct {
	reg    *Registry
	name   string
	label  string
	fixed  []string
	series sync.Map // label value -> *Gauge
}

// GaugeVec returns a gauge family for name keyed by label with optional
// constant label pairs.
func (r *Registry) GaugeVec(name, label string, fixedPairs ...string) *GaugeVec {
	return &GaugeVec{reg: r, name: name, label: label, fixed: fixedPairs}
}

// With returns the gauge for one label value, registering it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	if g, ok := v.series.Load(value); ok {
		return g.(*Gauge)
	}
	pairs := append(append([]string{}, v.fixed...), v.label, value)
	g := v.reg.Gauge(v.name, pairs...)
	actual, _ := v.series.LoadOrStore(value, g)
	return actual.(*Gauge)
}
