package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"ramsis/internal/dist"
	"ramsis/internal/llm"
	"ramsis/internal/mdp"
)

// LLMConfig describes one worker-level token-stream policy-generation
// problem: the token-level analog of Config. The MDP state is the worker's
// outstanding token load (prefill still to ingest plus decode still to
// generate, bucketed), the actions are the step models on the
// accuracy/throughput Pareto front, and one decision epoch is one
// continuous-batching engine step.
type LLMConfig struct {
	// Models are the step models pre-loaded on the worker.
	Models llm.Set
	// SLO is the end-to-end response latency SLO in seconds.
	SLO float64
	// Workers is K, the number of workers the balancer spreads arrivals over.
	Workers int
	// Rate is the aggregate query arrival rate in QPS (Poisson).
	Rate float64
	// In and Out are the prompt and output token-length distributions the
	// transition probabilities are derived from.
	In, Out dist.LengthSampler

	// TokenBucket is the state-space bucket width in tokens; default 512.
	TokenBucket int
	// MaxTokens bounds the bucketed load axis; loads beyond it collapse into
	// one overflow state. Default 32768.
	MaxTokens int
	// KVCap, when > 0, overrides every model's KV capacity (the -llm-kv-cap
	// knob), so the policy is generated for the deployed cache size.
	KVCap int
	// NoParetoPruning disables accuracy/throughput action pruning.
	NoParetoPruning bool

	// Gamma is the discount factor; default 0.99.
	Gamma float64
	// Solver selects the exact solution method, as in Config.
	Solver Solver
	// Float32 runs the compiled solve kernels in float32.
	Float32 bool
	// ProbFloor prunes transition entries below it; default 1e-10.
	ProbFloor float64
	// Timeout aborts generation with ErrTimeout when exceeded (0 = no limit).
	Timeout time.Duration
}

func (c LLMConfig) withDefaults() LLMConfig {
	if c.TokenBucket == 0 {
		c.TokenBucket = 512
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = 32768
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.ProbFloor == 0 {
		c.ProbFloor = 1e-10
	}
	return c
}

// Validate reports configuration errors.
func (c LLMConfig) Validate() error {
	if err := c.Models.Validate(); err != nil {
		return err
	}
	if !(c.SLO > 0) || math.IsInf(c.SLO, 0) {
		return fmt.Errorf("core: invalid SLO %v", c.SLO)
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: invalid worker count %d", c.Workers)
	}
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("core: invalid arrival rate %v", c.Rate)
	}
	if c.In == nil || c.Out == nil {
		return fmt.Errorf("core: nil token-length sampler")
	}
	if c.TokenBucket < 1 {
		return fmt.Errorf("core: invalid token bucket width %d", c.TokenBucket)
	}
	if c.MaxTokens < c.TokenBucket {
		return fmt.Errorf("core: max tokens %d below bucket width %d", c.MaxTokens, c.TokenBucket)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("core: discount %v outside [0,1)", c.Gamma)
	}
	return nil
}

// LLMChoice is one token-stream model-selection decision: run the next
// engine step on Model, scheduling PrefillTokens + DecodeTokens tokens.
// Arrival marks the empty-load wait-for-arrival action.
type LLMChoice struct {
	Model         string  `json:"model"`
	ModelIdx      int     `json:"modelIdx"`
	PrefillTokens int     `json:"prefillTokens"`
	DecodeTokens  int     `json:"decodeTokens"`
	StepTime      float64 `json:"stepTime"`
	TokenRate     float64 `json:"tokenRate"`
	Satisfies     bool    `json:"satisfies"`
	Arrival       bool    `json:"arrival,omitempty"`
}

// LLMPolicy is an offline-generated per-worker token-stream selection
// policy: a mapping from bucketed outstanding-token load to the step model
// the next engine step should run, with stationary expectations over its
// MDP. State 0 is the empty worker; state k in 1..Buckets covers loads in
// ((k-1)·TokenBucket, k·TokenBucket]; the last state absorbs overflow.
type LLMPolicy struct {
	Task        string  `json:"task"`
	SLO         float64 `json:"slo"`
	Workers     int     `json:"workers"`
	Load        float64 `json:"load"`
	TokenBucket int     `json:"tokenBucket"`
	MaxTokens   int     `json:"maxTokens"`
	Pruned      bool    `json:"pruned"`

	// Choices maps state indices (0 = empty, then load buckets) to
	// decisions.
	Choices []LLMChoice `json:"choices"`

	// ExpectedAccuracy is the stationary token-weighted mean accuracy over
	// satisfied decisions; ExpectedViolation the stationary token-weighted
	// fraction of scheduled work on decisions that miss the SLO drain bound.
	ExpectedAccuracy  float64 `json:"expectedAccuracy"`
	ExpectedViolation float64 `json:"expectedViolation"`

	States      int           `json:"states"`
	Transitions int           `json:"transitions"`
	Iterations  int           `json:"iterations"`
	BuildTime   time.Duration `json:"buildTime"`
	SolveTime   time.Duration `json:"solveTime"`

	models llm.Set
}

// Models returns the (pruned) step-model set the policy selects over.
// Choices' ModelIdx indexes into it.
func (p *LLMPolicy) Models() llm.Set { return p.models }

// Buckets returns the load-bucket count (states minus empty and overflow).
func (p *LLMPolicy) Buckets() int { return len(p.Choices) - 2 }

// Select returns the policy's decision for a worker holding
// outstandingTokens tokens of unfinished work (prefill not yet ingested
// plus decode not yet generated, over waiting and running queries alike).
// Loads beyond MaxTokens use the overflow state's forced decision; a
// non-positive load maps to the lightest-load bucket so callers always get
// a runnable model.
func (p *LLMPolicy) Select(outstandingTokens int) LLMChoice {
	b := p.Buckets()
	k := (outstandingTokens + p.TokenBucket - 1) / p.TokenBucket
	if k < 1 {
		k = 1
	}
	if k > b+1 {
		k = b + 1
	}
	return p.Choices[k]
}

// llmBuilder holds the shared pieces of one GenerateLLM run.
type llmBuilder struct {
	cfg     LLMConfig
	models  llm.Set // pruned, KV-cap-overridden action set
	w       int     // bucket width in tokens
	b       int     // load bucket count (states: 0..b+1)
	cell    int     // fine-cell width for the one-arrival convolution
	sumCell []float64
	muS     float64 // mean total tokens per query
	sigmaS  float64 // stddev of total tokens per query
	lambdaW float64 // per-worker arrival rate
}

// cellPMF tabulates P(X ∈ ((i-1)c, ic]) for i = 1..ceil(max/c).
func cellPMF(s dist.LengthSampler, c int) []float64 {
	n := (s.MaxLen() + c - 1) / c
	pmf := make([]float64, n+1)
	prev := 0.0
	for i := 1; i <= n; i++ {
		cur := s.CDFLen(i * c)
		pmf[i] = cur - prev
		prev = cur
	}
	return pmf
}

func newLLMBuilder(cfg LLMConfig) *llmBuilder {
	g := &llmBuilder{
		cfg:     cfg,
		models:  cfg.Models.WithKVCap(cfg.KVCap),
		w:       cfg.TokenBucket,
		b:       (cfg.MaxTokens + cfg.TokenBucket - 1) / cfg.TokenBucket,
		muS:     cfg.In.MeanLen() + cfg.Out.MeanLen(),
		sigmaS:  math.Sqrt(cfg.In.VarLen() + cfg.Out.VarLen()),
		lambdaW: cfg.Rate / float64(cfg.Workers),
	}
	if !cfg.NoParetoPruning {
		g.models = g.models.ParetoFront()
	}
	// Quarter-bucket cells keep the one-arrival convolution's
	// discretization error well inside the bucket width.
	g.cell = max(1, g.w/4)
	in := cellPMF(cfg.In, g.cell)
	out := cellPMF(cfg.Out, g.cell)
	// Cell i represents (i-1/2)c, so a sum lands on ((i+j-1))c exactly.
	g.sumCell = make([]float64, len(in)+len(out))
	for i := 1; i < len(in); i++ {
		if in[i] == 0 {
			continue
		}
		for j := 1; j < len(out); j++ {
			g.sumCell[i+j-1] += in[i] * out[j]
		}
	}
	return g
}

// bucketOf maps a token load to its state index.
func (g *llmBuilder) bucketOf(tokens float64) int {
	if tokens <= 0 {
		return 0
	}
	k := int(math.Ceil(tokens / float64(g.w)))
	if k < 1 {
		k = 1
	}
	if k > g.b {
		k = g.b + 1
	}
	return k
}

// stdNormCDF is the standard normal CDF Φ(x).
func stdNormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// transitions builds the sparse successor distribution of one step: the
// post-step residual load base plus A ~ Poisson(λ_w·τ) arrivals, each
// bringing In+Out tokens. A = 1 uses the exact (cell-discretized)
// convolution of the two length pmfs; A >= 2 uses the CLT normal over
// bucket edges, which the independent-sum variance justifies.
func (g *llmBuilder) transitions(base, tau float64) []mdp.Transition {
	mass := make([]float64, g.b+2)
	mu := g.lambdaW * tau
	cum := 0.0
	for a := 0; ; a++ {
		pa := dist.PoissonPMF(a, mu)
		switch a {
		case 0:
			mass[g.bucketOf(base)] += pa
		case 1:
			for k := 1; k < len(g.sumCell); k++ {
				if g.sumCell[k] > 0 {
					mass[g.bucketOf(base+float64(k*g.cell))] += pa * g.sumCell[k]
				}
			}
		default:
			mean := base + float64(a)*g.muS
			sd := math.Sqrt(float64(a)) * g.sigmaS
			prev := stdNormCDF((0 - mean) / sd)
			mass[0] += pa * prev
			for k := 1; k <= g.b; k++ {
				cur := stdNormCDF((float64(k*g.w) - mean) / sd)
				mass[k] += pa * (cur - prev)
				prev = cur
			}
			mass[g.b+1] += pa * (1 - prev)
		}
		cum += pa
		if cum >= 1-g.cfg.ProbFloor || a >= 1024 {
			break
		}
	}
	var out []mdp.Transition
	total := 0.0
	for s, p := range mass {
		if p >= g.cfg.ProbFloor {
			out = append(out, mdp.Transition{Next: int32(s), P: p})
			total += p
		}
	}
	for i := range out {
		out[i].P /= total
	}
	return out
}

// drainTime models the engine's time to clear a backlog of tokens with the
// workload's mean prefill/decode mix on model m. Decode is the binding
// resource: each sequence yields one token per step, so a backlog of
// n ≈ tokens/μS queries needs d/min(n, MaxSeqs) decode rounds no matter how
// large the step budget is — the serial-decode structure a blended
// tokens-per-second rate misses entirely. Prefill rides along under the
// budget; every step pays β₀ plus the KV penalty. Because step time is
// linear, the total is exact given the step count.
func (g *llmBuilder) drainTime(m llm.StepModel, tokens float64) float64 {
	f := g.cfg.In.MeanLen() / g.muS
	p := f * tokens
	d := (1 - f) * tokens
	n := math.Ceil(tokens / g.muS)
	b := math.Min(n, float64(m.MaxSeqs))
	steps := math.Max(d/b, (p+d)/float64(m.StepBudget()))
	if steps < 1 {
		steps = 1
	}
	kv := math.Min(1, tokens/float64(m.KVCapTokens))
	return steps*(m.Beta0+m.BetaKV*llm.KVPenalty(kv)) + m.BetaPrefill*p + m.BetaDecode*d
}

// stepPlan composes one saturated engine step for model m against load
// tokens: decode-first up to MaxSeqs sequences, prefill chunks filling the
// remaining budget, composition split by the workload's mean
// prefill/decode ratio. Mirrors the simulator's scheduler on the
// bucket-representative load.
func (g *llmBuilder) stepPlan(m llm.StepModel, tokens float64) (p, d int, kv float64) {
	frac := g.cfg.In.MeanLen() / g.muS
	budget := m.StepBudget()
	d = int(math.Round((1 - frac) * tokens))
	d = min(d, m.MaxSeqs, budget)
	p = min(int(math.Round(frac*tokens)), budget-d)
	if p+d == 0 {
		d = 1
	}
	kv = min(1, tokens/float64(m.KVCapTokens))
	return p, d, kv
}

// GenerateLLM runs the offline phase for one token-stream worker: it
// formulates the bucketed outstanding-token MDP, solves it with the same
// compiled solvers the scalar path uses, and computes stationary
// expectations. The decision epoch is one engine step; a decision's reward
// is the model's accuracy when the load (plus one typical in-flight query)
// can drain within the SLO under the serial-decode drain model, else zero —
// the token-level analog of the scalar Satisfies bound.
func GenerateLLM(cfg LLMConfig) (*LLMPolicy, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := newLLMBuilder(cfg)
	if g.models.Len() == 0 {
		return nil, fmt.Errorf("core: no step models survive Pareto pruning")
	}

	start := time.Now()
	nStates := g.b + 2
	m := &mdp.MDP{Actions: make([][]mdp.Action, nStates)}
	type plan struct {
		p, d      int
		tau, rate float64
		sat       bool
	}
	plans := make([][]plan, nStates)
	// Empty worker: wait for the next arrival, which brings one query's
	// In+Out tokens (the one-arrival convolution from zero load).
	m.Actions[0] = []mdp.Action{{
		Label:       -1,
		Reward:      0,
		Transitions: g.arrivalTransitions(),
	}}
	for s := 1; s < nStates; s++ {
		rep := (float64(s) - 0.5) * float64(g.w)
		acts := make([]mdp.Action, 0, g.models.Len())
		pls := make([]plan, 0, g.models.Len())
		for mi, model := range g.models.Models {
			p, d, kv := g.stepPlan(model, rep)
			tau := model.StepTime(p, d, kv)
			rate := float64(p+d) / tau
			// Satisfies: the backlog plus one typical query drains within
			// the SLO under the serial-decode drain model.
			sat := g.drainTime(model, rep+g.muS) <= cfg.SLO
			reward := 0.0
			if sat {
				reward = model.Accuracy
			}
			base := rep - float64(p+d)
			acts = append(acts, mdp.Action{
				Label:       mi,
				Reward:      reward,
				Transitions: g.transitions(base, tau),
			})
			pls = append(pls, plan{p: p, d: d, tau: tau, rate: rate, sat: sat})
		}
		m.Actions[s] = acts
		plans[s] = pls
	}
	buildTime := time.Since(start)
	if err := m.Validate(1e-6); err != nil {
		return nil, fmt.Errorf("core: built LLM MDP invalid: %w", err)
	}

	start = time.Now()
	cm := mdp.Compile(m)
	opts := mdp.SolveOptions{Gamma: cfg.Gamma, Float32: cfg.Float32}
	if cfg.Timeout > 0 {
		opts.Deadline = time.Now().Add(cfg.Timeout)
	}
	if cfg.Solver == SolvePrioritized {
		opts.Method = mdp.MethodPrioritized
	}
	var res mdp.Result
	var err error
	if cfg.Solver == SolvePolicyIteration {
		res, err = cm.PolicyIteration(opts)
	} else {
		res, err = cm.Solve(opts)
	}
	if errors.Is(err, mdp.ErrDeadline) {
		return nil, ErrTimeout
	}
	if err != nil {
		return nil, err
	}
	solveTime := time.Since(start)

	pol := &LLMPolicy{
		Task:        g.models.Task,
		SLO:         cfg.SLO,
		Workers:     cfg.Workers,
		Load:        cfg.Rate,
		TokenBucket: g.w,
		MaxTokens:   cfg.MaxTokens,
		Pruned:      !cfg.NoParetoPruning,
		States:      m.NumStates(),
		Transitions: m.NumTransitions(),
		Iterations:  res.Iterations,
		BuildTime:   buildTime,
		SolveTime:   solveTime,
		models:      g.models,
	}
	pol.Choices = make([]LLMChoice, nStates)
	pol.Choices[0] = LLMChoice{Arrival: true, Satisfies: true}
	for s := 1; s < nStates; s++ {
		ai := res.Policy[s]
		mi := m.Actions[s][ai].Label
		pl := plans[s][ai]
		pol.Choices[s] = LLMChoice{
			Model:         g.models.Models[mi].Name,
			ModelIdx:      mi,
			PrefillTokens: pl.p,
			DecodeTokens:  pl.d,
			StepTime:      pl.tau,
			TokenRate:     pl.rate,
			Satisfies:     pl.sat,
		}
	}
	pol.computeExpectations(cm, res.Policy)
	return pol, nil
}

// arrivalTransitions is the empty-state successor distribution: exactly one
// arriving query's total-token distribution on the cell grid.
func (g *llmBuilder) arrivalTransitions() []mdp.Transition {
	mass := make([]float64, g.b+2)
	for k := 1; k < len(g.sumCell); k++ {
		if g.sumCell[k] > 0 {
			mass[g.bucketOf(float64(k*g.cell))] += g.sumCell[k]
		}
	}
	var out []mdp.Transition
	total := 0.0
	for s, p := range mass {
		if p >= g.cfg.ProbFloor {
			out = append(out, mdp.Transition{Next: int32(s), P: p})
			total += p
		}
	}
	for i := range out {
		out[i].P /= total
	}
	return out
}

// computeExpectations evaluates stationary accuracy and violation
// expectations over the policy-induced chain, weighting each state by the
// tokens its decision schedules per step (the token-level analog of the
// scalar batch weighting).
func (p *LLMPolicy) computeExpectations(cm *mdp.Compiled, pol mdp.Policy) {
	pi, err := cm.StationaryDistribution(pol, 1e-13, 0)
	if err != nil {
		return
	}
	var servedMass, violMass, satMass, accMass float64
	for s, c := range p.Choices {
		if c.Arrival {
			continue
		}
		w := pi[s] * float64(c.PrefillTokens+c.DecodeTokens)
		servedMass += w
		if c.Satisfies {
			satMass += w
			accMass += w * p.models.Models[c.ModelIdx].Accuracy
		} else {
			violMass += w
		}
	}
	if servedMass > 0 {
		p.ExpectedViolation = violMass / servedMass
	}
	if satMass > 0 {
		p.ExpectedAccuracy = accMass / satMass
	}
}
