package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"ramsis/internal/profile"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// TestShardedTracingEndToEnd drives one query through the full sharded
// plane and asserts the tentpole contract: a single trace ID stitches into
// a gateway → shard → worker span tree, carrying a select decision whose
// predicted and realized latencies are both populated.
func TestShardedTracingEndToEnd(t *testing.T) {
	var jsonl bytes.Buffer
	c := startSharded(t, ShardedConfig{
		Models:          profile.AblationImageSet(),
		Tenants:         testTenants(),
		Shards:          2,
		WorkersPerShard: 2,
		TimeScale:       50,
		Seed:            1,
		D:               50,
		Fair:            tenant.FairConfig{BurstSec: 0.5},
		TraceWriter:     telemetry.NewTraceWriter(&jsonl),
	})

	// A client-supplied trace ID must survive the whole plane.
	const traceID = "e2e-trace-0001"
	req, _ := http.NewRequest(http.MethodPost, c.URL()+"/query", bytes.NewReader([]byte(`{}`)))
	req.Header.Set("X-Tenant", "gold")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.Error != "" || qr.Model == "" {
		t.Fatalf("query not served: %+v", qr)
	}

	// The gateway's /debug/traces merges its own, every shard's, and every
	// worker's rings.
	mresp, err := http.Get(c.URL() + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var merged []telemetry.QueryTrace
	if err := json.NewDecoder(mresp.Body).Decode(&merged); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()

	var s telemetry.StitchedTrace
	for _, st := range telemetry.Stitch(merged) {
		if st.TraceID == traceID {
			s = st
		}
	}
	if s.TraceID == "" {
		t.Fatalf("trace %s absent from merged /debug/traces (%d fragments total)", traceID, len(merged))
	}

	path := s.Path()
	if len(path) != 3 {
		t.Fatalf("stitched path has %d hops, want gateway→shard→worker: %+v", len(path), path)
	}
	if path[0].Process != "gateway" {
		t.Errorf("root process %q, want gateway", path[0].Process)
	}
	if path[1].Process != "shard-0" && path[1].Process != "shard-1" {
		t.Errorf("mid process %q, want shard-N", path[1].Process)
	}
	if w := path[2].Process; len(w) < 7 || w[:7] != "worker-" {
		t.Errorf("leaf process %q, want worker-N", w)
	}
	if s.Tenant() != "gold" {
		t.Errorf("stitched tenant %q, want gold", s.Tenant())
	}

	dec := s.Decision()
	if dec == nil {
		t.Fatal("no decision attached to any fragment")
	}
	if dec.Kind != telemetry.DecisionSelect || dec.Model == "" {
		t.Errorf("decision = %+v, want a select with a model", dec)
	}
	if dec.PredictedSec <= 0 || dec.RealizedSec <= 0 {
		t.Errorf("decision latencies predicted=%v realized=%v, want both populated",
			dec.PredictedSec, dec.RealizedSec)
	}

	// The critical path must carry the full stage breakdown, inference
	// measured by the worker itself.
	stages := map[string]bool{}
	for _, sp := range s.CriticalPath() {
		stages[sp.Stage] = true
	}
	for _, want := range []string{telemetry.StageRoute, telemetry.StageBatchWait, telemetry.StageDispatch, telemetry.StageInference} {
		if !stages[want] {
			t.Errorf("critical path lacks stage %q: %v", want, stages)
		}
	}

	// The shared JSONL stream must stitch to the same tree.
	fromFile, err := telemetry.ReadTraces(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range telemetry.Stitch(fromFile) {
		if st.TraceID == traceID && len(st.Fragments) >= 3 {
			found = true
		}
	}
	if !found {
		t.Error("-trace-out JSONL stream does not stitch the query's three fragments")
	}

	// /debug/decisions on the gateway serves the plane-wide merged ring:
	// the query's admit and select decisions both reference its trace ID.
	dresp, err := http.Get(c.URL() + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	var decs []telemetry.Decision
	if err := json.NewDecoder(dresp.Body).Decode(&decs); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	kinds := map[string]bool{}
	for _, d := range decs {
		if d.TraceID == traceID {
			kinds[d.Kind] = true
		}
	}
	if !kinds[telemetry.DecisionAdmit] || !kinds[telemetry.DecisionSelect] {
		t.Errorf("decision kinds for trace = %v, want admit and select", kinds)
	}
}

// TestShardedSLOGaugesExposed verifies the serve plane exposes per-tenant
// ramsis_slo_* series on the shared registry and that a served query moves
// them: attainment stays a valid fraction and an all-met run burns zero.
func TestShardedSLOGaugesExposed(t *testing.T) {
	c := startSharded(t, ShardedConfig{
		Models:          profile.AblationImageSet(),
		Tenants:         testTenants(),
		Shards:          1,
		WorkersPerShard: 1,
		TimeScale:       50,
		Seed:            1,
		D:               50,
		Fair:            tenant.FairConfig{BurstSec: 0.5},
	})
	done, eerr := c.Gateway.Route("gold")
	if eerr != nil {
		t.Fatal(eerr)
	}
	select {
	case r := <-done:
		if r.Error != "" || r.Model == "" {
			t.Fatalf("query not served: %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query timed out")
	}
	tr := c.Plane.SLOTracker("gold")
	if tr == nil {
		t.Fatal("plane has no SLO tracker for gold")
	}
	now := tr.LastNow()
	if att := tr.Attainment(now, 60); att != 1 {
		t.Errorf("attainment after one in-SLO query = %v, want 1", att)
	}
	if burn := tr.BurnRate(now, 60); burn != 0 {
		t.Errorf("burn rate = %v, want 0", burn)
	}
	resp, err := http.Get(c.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		`ramsis_slo_attainment{tenant="gold",window="60"}`,
		`ramsis_slo_burn_rate{tenant="gold",window="3600"}`,
		`ramsis_slo_attainment{tenant="bronze",window="300"}`,
	} {
		if !bytes.Contains(body.Bytes(), []byte(want)) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
}

// TestTraceRingsUnderConcurrentDispatch wraps the plane's trace and
// decision rings while queries are in flight and snapshots them
// mid-dispatch — run under -race via make verify's serve pass. Small rings
// force wrap-around; the assertions only need internal consistency, the
// race detector does the real work.
func TestTraceRingsUnderConcurrentDispatch(t *testing.T) {
	c := startSharded(t, ShardedConfig{
		Models:          profile.AblationImageSet(),
		Tenants:         testTenants(),
		Shards:          2,
		WorkersPerShard: 1,
		TimeScale:       200,
		Seed:            1,
		D:               40,
		Fair:            tenant.FairConfig{BurstSec: 0.5},
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Snapshot readers race the dispatch-side writers.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, src := range c.Gateway.TraceSources {
					for _, qt := range src.Snapshot() {
						_ = qt.TraceID
					}
				}
				for _, d := range c.Gateway.Decisions.Snapshot() {
					_ = d.Kind
				}
				resp, err := http.Get(c.URL() + "/debug/traces")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	var inj sync.WaitGroup
	for _, tn := range []string{"gold", "silver", "bronze"} {
		inj.Add(1)
		go func(name string) {
			defer inj.Done()
			inject(c.Gateway, name, 300, 1500*time.Millisecond)
		}(tn)
	}
	inj.Wait()
	time.Sleep(300 * time.Millisecond) // let in-flight batches land
	close(stop)
	wg.Wait()

	if c.Gateway.Traces.Len() == 0 {
		t.Error("gateway ring recorded nothing")
	}
	if c.Gateway.Decisions.Len() == 0 {
		t.Error("decision ring recorded nothing")
	}
	// Every ringed gateway fragment carries propagation context.
	for _, qt := range c.Gateway.Traces.Snapshot() {
		if qt.TraceID == "" || qt.Tenant == "" {
			t.Fatalf("gateway fragment missing trace context: %+v", qt)
		}
	}
}
