package core

import (
	"testing"

	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

func TestCoarseQueues(t *testing.T) {
	cases := []struct{ q, k, want int }{
		{32, 4, 8},
		{33, 4, 9},
		{320, 10, 32},
		{4, 10, 1}, // axis smaller than the factor collapses to one group
		{1, 2, 1},
	}
	for _, c := range cases {
		if got := coarseQueues(c.q, c.k); got != c.want {
			t.Errorf("coarseQueues(%d,%d) = %d, want %d", c.q, c.k, got, c.want)
		}
	}
}

// The aggregation warm start is a pure accelerator: the fine solver still
// converges to its own fixed point, so the generated policy must be identical
// to a cold solve's, and it should get there in fewer iterations.
func TestAggregateWarmStartPolicyUnchanged(t *testing.T) {
	base := genConfig(300)
	base.MaxQueue = 64

	cold, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	agg := base
	agg.AggQueue = 8
	warm, err := Generate(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Choices) != len(cold.Choices) {
		t.Fatalf("state counts differ: %d vs %d", len(warm.Choices), len(cold.Choices))
	}
	for s := range cold.Choices {
		if warm.Choices[s] != cold.Choices[s] {
			t.Fatalf("state %d: aggregated choice %+v != cold choice %+v",
				s, warm.Choices[s], cold.Choices[s])
		}
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("aggregation warm start did not reduce iterations: %d >= %d",
			warm.Iterations, cold.Iterations)
	}
}

// A coarsening factor larger than the queue axis must degrade gracefully: the
// coarse axis collapses toward a single group (or aggregation bails when it
// cannot shrink the axis), and generation still succeeds with a valid policy.
func TestAggregateQueueAxisSmallerThanFactor(t *testing.T) {
	cfg := Config{
		Models:   profile.ImageSet(),
		SLO:      0.150,
		Workers:  8,
		Arrival:  dist.NewPoisson(300),
		D:        50,
		MaxQueue: 4,
		AggQueue: 10,
	}
	pol, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.AggQueue = 0
	cold, err := Generate(ref)
	if err != nil {
		t.Fatal(err)
	}
	for s := range cold.Choices {
		if pol.Choices[s] != cold.Choices[s] {
			t.Fatalf("state %d: choice %+v != cold %+v", s, pol.Choices[s], cold.Choices[s])
		}
	}
}

// Prioritized + aggregation is the fast-resolve configuration; it must agree
// with the pinned Jacobi policy on a 10x queue space.
func TestAggregatePrioritizedMatchesJacobi(t *testing.T) {
	if testing.Short() {
		t.Skip("10x queue space generation is slow")
	}
	base := genConfig(300)
	base.MaxQueue = 96

	cold, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.Solver = SolvePrioritized
	fast.AggQueue = 8
	pol, err := Generate(fast)
	if err != nil {
		t.Fatal(err)
	}
	for s := range cold.Choices {
		if pol.Choices[s] != cold.Choices[s] {
			t.Fatalf("state %d: prioritized+agg choice %+v != Jacobi %+v",
				s, pol.Choices[s], cold.Choices[s])
		}
	}
}
