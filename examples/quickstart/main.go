// Quickstart: generate a RAMSIS policy for a small deployment and serve a
// constant Poisson workload through the simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ramsis"
)

func main() {
	// A deployment: 8 workers, every built-in ImageNet model pre-loaded,
	// 150 ms latency SLO.
	system, err := ramsis.New(ramsis.Options{
		Models:    ramsis.ImageModels(),
		SLOMillis: 150,
		Workers:   8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: generate the model-selection policy for the expected
	// query load (300 QPS).
	fmt.Println("generating policy (offline phase)...")
	if err := system.PrecomputePolicies(300); err != nil {
		log.Fatal(err)
	}
	pol, err := system.Policy(300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy: %d states, %d transitions, solved in %v\n",
		pol.States, pol.Transitions, pol.SolveTime.Round(1e6))
	fmt.Printf("guarantees: expected accuracy >= %.4f, violation rate <= %.4f%%\n",
		pol.ExpectedAccuracy, pol.ExpectedViolation*100)

	// Peek at a few decisions: the policy exploits arrival lulls by picking
	// slower, more accurate models when the queue is short and slack high.
	fmt.Println("\nsample decisions (queue length, slack -> model):")
	for _, c := range []struct {
		n     int
		slack float64
	}{{1, 0.150}, {2, 0.100}, {8, 0.150}, {16, 0.060}} {
		choice := pol.Select(c.n, c.slack)
		fmt.Printf("  n=%2d slack=%3.0fms -> %-20s batch=%d\n",
			c.n, c.slack*1000, choice.Model, choice.Batch)
	}

	// Online phase: serve 30 seconds of Poisson arrivals at 300 QPS.
	fmt.Println("\nserving 30s of Poisson arrivals at 300 QPS (online phase)...")
	m := system.SimulateConstant(300, 30, 1)
	fmt.Printf("served %d queries in %d batches\n", m.Served, m.Decisions)
	fmt.Printf("accuracy per satisfied query: %.4f\n", m.AccuracyPerSatisfiedQuery())
	fmt.Printf("latency SLO violation rate:   %.4f%%\n", m.ViolationRate()*100)
	fmt.Println("\nmodel usage:")
	for name, count := range m.ModelCounts {
		fmt.Printf("  %-22s %6d queries\n", name, count)
	}
}
