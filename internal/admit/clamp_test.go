package admit

import "testing"

func TestClampModel(t *testing.T) {
	// Indices 2, 0, 1 fastest-first: model 2 is fastest, model 1 slowest.
	order := []int{2, 0, 1}
	for _, tc := range []struct {
		level, chosen, want int
	}{
		{0, 1, 1}, // level 0: identity
		{1, 1, 0}, // slowest forbidden -> slowest allowed
		{1, 0, 0}, // allowed choice passes through
		{1, 2, 2},
		{2, 1, 2}, // only the fastest remains
		{2, 0, 2},
		{5, 1, 2}, // level past the set size clamps to the fastest
	} {
		if got := ClampModel(order, tc.level, tc.chosen); got != tc.want {
			t.Errorf("ClampModel(level=%d, chosen=%d) = %d, want %d",
				tc.level, tc.chosen, got, tc.want)
		}
	}
	if got := ClampModel(nil, 3, 7); got != 7 {
		t.Errorf("empty order must be identity, got %d", got)
	}
	// An index not present in the order (heterogeneous mismatch) passes
	// through rather than panicking.
	if got := ClampModel(order, 1, 9); got != 9 {
		t.Errorf("unknown index must pass through, got %d", got)
	}
}
