package serve

import (
	"fmt"
	"time"

	"ramsis/internal/adapt"
	"ramsis/internal/admit"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/lb"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// ShardedConfig configures a localhost multi-tenant deployment: Shards
// frontend shards of WorkersPerShard workers each, a shared tenant plane
// (weighted-fair admission, per-tenant policies and degrade levels), and a
// gateway routing by tenant.
type ShardedConfig struct {
	Models profile.Set
	// Tenants is the serving contract set (required, non-empty).
	Tenants []tenant.Tenant
	// TenantFile, when set, enables POST /reload on the gateway.
	TenantFile string
	Shards     int
	// WorkersPerShard is each shard's worker pool size.
	WorkersPerShard int
	TimeScale       float64
	LatencyStdDev   float64
	Seed            int64
	// D is the FLD resolution for the per-tenant policy solves (default
	// from core.Config).
	D int
	// MaxQueue bounds each shard's admitted backlog per worker (default
	// from core.Config).
	MaxQueue int
	// QueueSlack multiplies the online queue cap beyond the MDP bound N_w
	// (default 1). The MDP bound is capped at the profiled max batch, but
	// at high time scales a wall-clock stall turns into a burst of modeled
	// arrivals; extra online slack absorbs the burst (the solved policy's
	// overflow action covers queues past N_w) instead of shedding it.
	QueueSlack int
	// ShardBy names the sharding policy: "hash"/"rendezvous" (default)
	// pins each tenant to one shard; "p2c" spreads by queue depth.
	ShardBy string
	// LB names each shard's intra-shard balancer (default round-robin).
	LB string
	// Addr is the gateway listen address (default random localhost port).
	Addr string
	// Fair overrides the weighted-fair admitter knobs (zero values take
	// the defaults: capacity = Σ contracted rates, 2 s bursts).
	Fair tenant.FairConfig
	// DegradeDepth > 0 arms a per-tenant degrader with that max level.
	DegradeDepth int
	// Adaptive runs each tenant's selector through the PR 3 adapt loop
	// (background re-solve on drift) instead of a fixed policy set.
	Adaptive bool
	// Telemetry is the registry shared by every shard, the plane, and the
	// gateway (default: a fresh one).
	Telemetry *telemetry.Registry
	// TraceWriter, when set, streams every component's trace fragments —
	// gateway routes, shard dispatches, worker inferences — into one JSONL
	// stream, so a single file stitches end to end.
	TraceWriter *telemetry.TraceWriter
	// SLO configures the per-tenant attainment/burn-rate windows (zero
	// values take the telemetry defaults: 0.99 over 60/300/3600 s).
	SLO telemetry.SLOConfig
}

// ShardedCluster is a running sharded multi-tenant deployment.
type ShardedCluster struct {
	Gateway *Gateway
	Plane   *TenantPlane
	shards  []*Frontend
	workers []*Worker
}

// StartShardedCluster solves one policy set per tenant (sized to the
// tenant's SLO and contracted rate), boots Shards×WorkersPerShard worker
// servers and the frontend shards over them, and fronts everything with a
// tenant-routing gateway. Every single-tenant mechanism is the N=1 special
// case: one tenant, one shard reduces to StartCluster plus the fair
// admitter metering its contracted rate.
func StartShardedCluster(cfg ShardedConfig) (*ShardedCluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("serve: sharded cluster needs at least one shard")
	}
	if cfg.WorkersPerShard < 1 {
		return nil, fmt.Errorf("serve: sharded cluster needs at least one worker per shard")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	reg, err := tenant.NewRegistry(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	sharder, err := tenant.NewSharder(cfg.ShardBy, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Hash sharding pins a tenant's whole stream to one shard, so its
	// policy must be solved at the full contracted rate; p2c spreads the
	// stream across shards evenly in expectation.
	loadScale := 1.0
	if _, p2c := sharder.(*tenant.P2C); p2c {
		loadScale = 1.0 / float64(cfg.Shards)
	}
	// Tenants share each shard's workers rather than partitioning them, so
	// every tenant's policy must be solved against the shard's aggregate
	// contracted rate: a policy solved at only its own tenant's rate would
	// pick accuracy-optimal models the workers cannot sustain once the
	// other tenants' admitted streams land on the same queues. What stays
	// per-tenant is the SLO, so latency-tolerant tenants still resolve to
	// more accurate models than interactive ones.
	shardRate := reg.TotalRate() * loadScale
	// One decision ring plane-wide: every shard's admit/shed/select records
	// and every adapter's hot-swaps land in the same buffer the gateway
	// serves at /debug/decisions.
	decisions := telemetry.NewDecisionBuffer(0)
	selectors := make(map[string]SelectFunc, len(cfg.Tenants))
	var fallback SelectFunc
	for _, t := range cfg.Tenants {
		base := core.Config{
			Models:   cfg.Models,
			SLO:      t.SLO(),
			Workers:  cfg.WorkersPerShard,
			Arrival:  dist.NewPoisson(1),
			D:        cfg.D,
			MaxQueue: cfg.MaxQueue,
		}
		rate := shardRate
		set := core.NewPolicySet(base, nil)
		if err := set.GenerateLoads([]float64{rate}); err != nil {
			return nil, fmt.Errorf("serve: solving tenant %s: %w", t.Name, err)
		}
		sel := RAMSISSelector(set)
		if cfg.Adaptive {
			adapter, err := adapt.New(adapt.Config{
				Base:       base,
				Background: true, // never stall dispatch behind a re-solve
				Telemetry:  cfg.Telemetry,
				Decisions:  decisions,
				Tenant:     t.Name,
			}, set.Policies()[0])
			if err != nil {
				return nil, fmt.Errorf("serve: adapting tenant %s: %w", t.Name, err)
			}
			sel = AdaptiveSelector(adapter)
		}
		selectors[t.Name] = sel
		if fallback == nil {
			fallback = sel // hot-reloaded tenants borrow the first solve
		}
	}

	// The inner admitter bounds each admit against the enqueueing shard's
	// backlog (Request.Outstanding is shard-local), enforcing per shard
	// the MaxQueue state bound the MDPs assume.
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 32 // core.Config.MaxQueue default
	}
	slack := cfg.QueueSlack
	if slack < 1 {
		slack = 1
	}
	inner := admit.Cap{
		Limit: maxQueue * cfg.WorkersPerShard * slack,
		Est:   core.NewWaitEstimator(cfg.Models, cfg.WorkersPerShard),
	}
	fairCfg := cfg.Fair
	if fairCfg.BorrowReserve == 0 {
		// Default: reserve half the shard queue cap for within-share
		// traffic, so an overloader's borrowed backlog can never crowd
		// compliant tenants out of the queue (set negative to disable).
		fairCfg.BorrowReserve = inner.Limit / 2
	}
	fair := tenant.NewFairAdmitter(reg, inner, fairCfg)
	epoch := time.Now()
	plane := NewTenantPlane(TenantPlaneConfig{
		Registry:     reg,
		Fair:         fair,
		Profiles:     cfg.Models,
		Selectors:    selectors,
		Fallback:     fallback,
		DegradeDepth: cfg.DegradeDepth,
		SLO:          cfg.SLO,
		Now: func() float64 {
			return time.Since(epoch).Seconds() * cfg.TimeScale
		},
		Telemetry: cfg.Telemetry,
	})

	var latModel sim.LatencyModel = sim.Deterministic{}
	if cfg.LatencyStdDev > 0 {
		latModel = sim.Stochastic{StdDev: cfg.LatencyStdDev}
	}
	minSLO := cfg.Tenants[0].SLO()
	for _, t := range cfg.Tenants[1:] {
		if s := t.SLO(); s < minSLO {
			minSLO = s
		}
	}

	c := &ShardedCluster{Plane: plane}
	// Worker rings feed the gateway's merged /debug/traces alongside its own
	// and the shards'.
	var traceSources []*telemetry.TraceBuffer
	for s := 0; s < cfg.Shards; s++ {
		urls := make([]string, cfg.WorkersPerShard)
		for i := 0; i < cfg.WorkersPerShard; i++ {
			global := s*cfg.WorkersPerShard + i
			w := NewWorker(cfg.Models, latModel, cfg.TimeScale, cfg.Seed+int64(global))
			w.Name = fmt.Sprintf("worker-%d", global)
			w.Index = global
			w.TraceWriter = cfg.TraceWriter
			if err := w.Start(); err != nil {
				c.Stop()
				return nil, err
			}
			c.workers = append(c.workers, w)
			urls[i] = w.URL()
			traceSources = append(traceSources, w.Traces)
		}
		balancer, err := lb.New(cfg.LB, cfg.Seed+int64(s))
		if err != nil {
			c.Stop()
			return nil, err
		}
		fe := &Frontend{
			Profiles:     cfg.Models,
			SLO:          minSLO,
			TimeScale:    cfg.TimeScale,
			Workers:      urls,
			Plane:        plane,
			Shard:        s,
			WorkerOffset: s * cfg.WorkersPerShard,
			Balancer:     balancer,
			Telemetry:    cfg.Telemetry,
			TraceWriter:  cfg.TraceWriter,
			TraceParent:  "gateway",
			Decisions:    decisions,
		}
		fe.start = epoch // shared modeled-time epoch across shards
		if err := fe.Start(); err != nil {
			c.Stop()
			return nil, err
		}
		c.shards = append(c.shards, fe)
	}

	gwTraces := telemetry.NewTraceBuffer(0)
	sources := []*telemetry.TraceBuffer{gwTraces}
	for _, fe := range c.shards {
		sources = append(sources, fe.Traces)
	}
	sources = append(sources, traceSources...)
	c.Gateway = &Gateway{
		Shards:       c.shards,
		Sharder:      sharder,
		Plane:        plane,
		Addr:         cfg.Addr,
		TenantFile:   cfg.TenantFile,
		Telemetry:    cfg.Telemetry,
		Traces:       gwTraces,
		TraceWriter:  cfg.TraceWriter,
		Decisions:    decisions,
		TraceSources: sources,
	}
	c.Gateway.start = epoch
	if err := c.Gateway.Start(); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

// URL returns the gateway's base URL.
func (c *ShardedCluster) URL() string { return c.Gateway.URL() }

// Shards returns the started frontend shards.
func (c *ShardedCluster) Shards() []*Frontend { return c.shards }

// Stop tears down the gateway, every shard, and every worker.
func (c *ShardedCluster) Stop() {
	if c.Gateway != nil {
		_ = c.Gateway.Stop()
	}
	for _, fe := range c.shards {
		_ = fe.Stop()
	}
	for _, w := range c.workers {
		_ = w.Stop()
	}
}
