// Package ramsis is a Go implementation of RAMSIS (Random Arrival Model
// Selection for Inference Serving, EuroSys '24): a framework that generates
// model-selection-and-scheduling policies for latency-critical inference
// serving by modeling each worker as a Markov Decision Process whose
// transition probabilities derive from the query arrival distribution and
// the load-balancing strategy. Policies maximize per-query accuracy within
// a latency SLO by exploiting inter-arrival lulls — selecting slower,
// more accurate models when the arrival pattern safely allows it.
//
// This top-level package is the facade: it wires the model profiles, the
// offline policy generator, the load-adaptive policy set, and the
// discrete-event serving simulator into a small API. The full machinery
// lives under internal/ (core, profile, trace, sim, serve, baselines,
// experiments) and is exercised by the examples/ programs and the
// table/figure benchmarks in bench_test.go.
package ramsis

import (
	"fmt"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// Re-exported core types, so library users need only this import.
type (
	// Policy is an offline-generated per-worker model-selection policy.
	Policy = core.Policy
	// PolicyConfig is the full policy-generation configuration for users
	// needing the low-level knobs (discretization, batching, balancing).
	PolicyConfig = core.Config
	// Metrics aggregates a serving run (accuracy per satisfied query,
	// latency SLO violation rate).
	Metrics = sim.Metrics
	// Trace is a query-load trace.
	Trace = trace.Trace
	// ModelSet is a corpus of model profiles.
	ModelSet = profile.Set
)

// ImageModels returns the built-in 26-model image classification corpus.
func ImageModels() ModelSet { return profile.ImageSet() }

// TextModels returns the built-in 5-model BERT text classification corpus.
func TextModels() ModelSet { return profile.TextSet() }

// TwitterTrace returns the 5-minute production-style trace of the paper's
// evaluation (1,617-3,905 QPS).
func TwitterTrace() Trace { return trace.Twitter() }

// ConstantTrace returns a constant-load trace.
func ConstantTrace(qps, durationSec float64) Trace { return trace.Constant(qps, durationSec) }

// Options configure a serving System.
type Options struct {
	// Models to pre-load on every worker. Defaults to ImageModels().
	Models ModelSet
	// SLOMillis is the response latency SLO in milliseconds (required).
	SLOMillis float64
	// Workers is the number of workers (required).
	Workers int
	// D is the FLD discretization resolution; default 100.
	D int
	// GammaShape, when > 1, switches the modeled arrival distribution from
	// Poisson to an Erlang renewal process of that shape.
	GammaShape int
}

// System is a configured inference-serving deployment: fixed resources
// (workers with pre-loaded models), a latency SLO, and a load-adaptive set
// of RAMSIS policies.
type System struct {
	Models  ModelSet
	SLO     float64
	Workers int
	set     *core.PolicySet
}

// New builds a System.
func New(opts Options) (*System, error) {
	if opts.Models.Len() == 0 {
		opts.Models = ImageModels()
	}
	if opts.SLOMillis <= 0 {
		return nil, fmt.Errorf("ramsis: SLOMillis must be positive")
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("ramsis: Workers must be at least 1")
	}
	base := core.Config{
		Models:  opts.Models,
		SLO:     opts.SLOMillis / 1000,
		Workers: opts.Workers,
		Arrival: dist.NewPoisson(1),
		D:       opts.D,
	}
	arrival := func(load float64) dist.Process { return dist.NewPoisson(load) }
	if opts.GammaShape > 1 {
		shape := opts.GammaShape
		arrival = func(load float64) dist.Process { return dist.NewGamma(load, shape) }
	}
	return &System{
		Models:  opts.Models,
		SLO:     base.SLO,
		Workers: opts.Workers,
		set:     core.NewPolicySet(base, arrival),
	}, nil
}

// PrecomputePolicies runs the offline phase for the given query loads (QPS).
func (s *System) PrecomputePolicies(loads ...float64) error {
	return s.set.GenerateLoads(loads)
}

// PrecomputePolicyLadder pre-computes policies between minLoad and maxLoad
// until adjacent policies differ by under 1% expected accuracy, the paper's
// query-load-adaptation rule (§6).
func (s *System) PrecomputePolicyLadder(minLoad, maxLoad float64) error {
	return s.set.Refine(minLoad, maxLoad, 0.01, 0)
}

// Policy returns the policy RAMSIS would apply at the anticipated load
// (generating one on demand if the load exceeds the precomputed ladder).
func (s *System) Policy(load float64) (*Policy, error) { return s.set.PolicyFor(load) }

// Policies returns the precomputed ladder sorted by load.
func (s *System) Policies() []*Policy { return s.set.Policies() }

// PolicySet exposes the underlying load-adaptive policy set for advanced
// integrations (e.g. the HTTP prototype in internal/serve).
func (s *System) PolicySet() *core.PolicySet { return s.set }

// SimulateTrace serves Poisson arrivals sampled from the trace through the
// discrete-event simulator using the RAMSIS scheduler with a 500 ms
// moving-average load monitor, and returns the achieved metrics.
func (s *System) SimulateTrace(tr Trace, seed int64) Metrics {
	sched := sim.NewRAMSIS(s.set, monitor.NewMovingAverage(0.5))
	e := sim.NewEngine(s.Models, s.SLO, s.Workers, sim.Deterministic{}, sched, seed)
	return e.Run(trace.PoissonArrivals(tr, seed))
}

// SimulateConstant serves a constant load for dur seconds with a perfect
// load monitor (the paper's §7.2 setting).
func (s *System) SimulateConstant(qps, dur float64, seed int64) Metrics {
	tr := trace.Constant(qps, dur)
	sched := sim.NewRAMSIS(s.set, monitor.Oracle{Trace: tr})
	e := sim.NewEngine(s.Models, s.SLO, s.Workers, sim.Deterministic{}, sched, seed)
	return e.Run(trace.PoissonArrivals(tr, seed))
}

// Verify empirically checks a policy's §5.1 guarantees by serving dur
// seconds of Poisson arrivals at the policy's design load through the
// simulator: the returned metrics should show accuracy at or above the
// policy's ExpectedAccuracy and a violation rate at or below its
// ExpectedViolation.
func (s *System) Verify(pol *Policy, dur float64, seed int64) Metrics {
	return sim.VerifyPolicy(pol, s.Models, dur, seed)
}
