package serve

import (
	"sync"

	"ramsis/internal/admit"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// TenantPlane is the per-tenant control state shared by every frontend
// shard: weighted-fair admission over the tenant registry, and for each
// tenant its own SLO, rate monitor, model selector (optionally the PR 3
// adapt loop), and degraded-mode level. A tenant's state is global — its
// traffic may land on any shard (P2C sharding splits it), and rate
// monitoring or degrade decisions must see the whole tenant, not one
// shard's slice.
type TenantPlane struct {
	reg      *tenant.Registry
	fair     *tenant.FairAdmitter
	profiles profile.Set

	// fallback picks models for tenants added by hot-reload after startup
	// (no pre-solved policy of their own yet).
	fallback SelectFunc
	// degradeDepth > 0 arms a per-tenant degrader with that max level.
	degradeDepth  int
	monitorWindow float64
	sloCfg        telemetry.SLOConfig
	nowFn         func() float64
	telemetry     *telemetry.Registry

	mu     sync.RWMutex
	states map[string]*tenantState

	// Shared label-keyed series; states cache their own .With handles.
	queriesVec, violationsVec         *telemetry.CounterVec
	admittedVec, shedVec, borrowedVec *telemetry.CounterVec
	degradeVec, rateVec               *telemetry.GaugeVec
}

// tenantState is one tenant's live serving state.
type tenantState struct {
	name string
	slo  float64
	sel  SelectFunc

	// monMu guards mon: Observe times must be non-decreasing, and arrivals
	// for one tenant race across shards.
	monMu sync.Mutex
	mon   *monitor.MovingAverage

	degrade *admit.Degrader
	clamp   *modelClamp

	// sloTrack is the tenant's windowed attainment/burn-rate tracker,
	// shared across shards (a tenant's traffic may land on any of them).
	sloTrack *telemetry.SLOTracker

	queries, violations  *telemetry.Counter
	admitted, shed       *telemetry.Counter
	borrowed             *telemetry.Counter
	degradeLevel, rateGa *telemetry.Gauge
}

// TenantPlaneConfig configures NewTenantPlane.
type TenantPlaneConfig struct {
	Registry *tenant.Registry
	// Fair is the shared weighted-fair admitter (built over Registry).
	Fair     *tenant.FairAdmitter
	Profiles profile.Set
	// Selectors maps tenant name to its model selector (per-tenant policy
	// or adapt loop). Tenants without an entry use Fallback.
	Selectors map[string]SelectFunc
	// Fallback serves tenants with no dedicated selector (required).
	Fallback SelectFunc
	// DegradeDepth > 0 gives every tenant its own degrader with that max
	// level, replacing the single global clamp.
	DegradeDepth int
	// MonitorWindow is the per-tenant rate monitor window in modeled
	// seconds (default 0.5, matching the single-tenant frontends).
	MonitorWindow float64
	// SLO configures the per-tenant attainment/burn-rate windows (zero
	// values take the telemetry defaults: 0.99 over 60/300/3600 s).
	SLO telemetry.SLOConfig
	// Now supplies the plane's modeled clock for scrape-time SLO gauges
	// (the sharded cluster passes its shared epoch); nil falls back to
	// each tracker's last observation time.
	Now       func() float64
	Telemetry *telemetry.Registry
}

// NewTenantPlane builds the shared per-tenant state for a sharded
// deployment.
func NewTenantPlane(cfg TenantPlaneConfig) *TenantPlane {
	if cfg.MonitorWindow <= 0 {
		cfg.MonitorWindow = 0.5
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	reg := cfg.Telemetry
	p := &TenantPlane{
		reg:           cfg.Registry,
		fair:          cfg.Fair,
		profiles:      cfg.Profiles,
		fallback:      cfg.Fallback,
		degradeDepth:  cfg.DegradeDepth,
		monitorWindow: cfg.MonitorWindow,
		sloCfg:        cfg.SLO,
		nowFn:         cfg.Now,
		telemetry:     reg,
		states:        map[string]*tenantState{},

		queriesVec:    reg.CounterVec(telemetry.MetricTenantQueries, "tenant"),
		violationsVec: reg.CounterVec(telemetry.MetricTenantViolations, "tenant"),
		admittedVec:   reg.CounterVec(telemetry.MetricTenantAdmitted, "tenant"),
		shedVec:       reg.CounterVec(telemetry.MetricTenantShed, "tenant"),
		borrowedVec:   reg.CounterVec(telemetry.MetricTenantBorrowed, "tenant"),
		degradeVec:    reg.GaugeVec(telemetry.MetricTenantDegradeLevel, "tenant"),
		rateVec:       reg.GaugeVec(telemetry.MetricTenantRate, "tenant"),
	}
	reg.Help(telemetry.MetricTenantQueries, "Served queries by tenant.")
	reg.Help(telemetry.MetricTenantShed, "Weighted-fair admission rejections by tenant.")
	for _, t := range cfg.Registry.All() {
		sel := cfg.Selectors[t.Name]
		if sel == nil {
			sel = cfg.Fallback
		}
		p.states[t.Name] = p.newState(t, sel)
	}
	return p
}

func (p *TenantPlane) newState(t tenant.Tenant, sel SelectFunc) *tenantState {
	st := &tenantState{
		name:         t.Name,
		slo:          t.SLO(),
		sel:          sel,
		mon:          monitor.NewMovingAverage(p.monitorWindow),
		sloTrack:     telemetry.NewSLOTracker(p.sloCfg),
		queries:      p.queriesVec.With(t.Name),
		violations:   p.violationsVec.With(t.Name),
		admitted:     p.admittedVec.With(t.Name),
		shed:         p.shedVec.With(t.Name),
		borrowed:     p.borrowedVec.With(t.Name),
		degradeLevel: p.degradeVec.With(t.Name),
		rateGa:       p.rateVec.With(t.Name),
	}
	telemetry.RegisterSLOGauges(p.telemetry, st.sloTrack, t.Name, p.nowFn)
	if p.degradeDepth > 0 {
		st.degrade = admit.NewDegrader(admit.DegradeConfig{MaxLevel: p.degradeDepth, EnterWait: st.slo})
		st.clamp = newModelClamp(p.profiles)
		gauge := st.degradeLevel
		st.degrade.OnChange = func(level int, _ bool) { gauge.Set(float64(level)) }
	}
	return st
}

// SLOTracker returns the named tenant's attainment tracker (nil for
// unknown tenants) — tests and the soak harness cross-check burn rates
// against it.
func (p *TenantPlane) SLOTracker(name string) *telemetry.SLOTracker {
	st, ok := p.state(name)
	if !ok {
		return nil
	}
	return st.sloTrack
}

// Fair returns the shared weighted-fair admitter.
func (p *TenantPlane) Fair() *tenant.FairAdmitter { return p.fair }

// Registry returns the tenant registry the plane serves.
func (p *TenantPlane) Registry() *tenant.Registry { return p.reg }

// state resolves a request's tenant label to its serving state. Unknown
// tenants return ok == false; tenants registered after startup (config
// hot-reload) get a state lazily, running the fallback selector.
func (p *TenantPlane) state(name string) (*tenantState, bool) {
	t, ok := p.reg.Resolve(name)
	if !ok {
		return nil, false
	}
	p.mu.RLock()
	st := p.states[t.Name]
	p.mu.RUnlock()
	if st != nil {
		return st, true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st = p.states[t.Name]; st == nil {
		st = p.newState(t, p.fallback)
		p.states[t.Name] = st
	}
	return st, true
}

// observe feeds one arrival into the tenant's rate monitor and refreshes
// its live rate gauge.
func (st *tenantState) observe(now float64) {
	st.monMu.Lock()
	st.mon.Observe(now)
	rate := st.mon.Load(now)
	st.monMu.Unlock()
	st.rateGa.Set(rate)
}

// load reads the tenant's monitored arrival rate.
func (st *tenantState) load(now float64) float64 {
	st.monMu.Lock()
	defer st.monMu.Unlock()
	return st.mon.Load(now)
}

// TenantStats is one tenant's /stats breakdown.
type TenantStats struct {
	Class        string  `json:"class,omitempty"`
	SLOMS        float64 `json:"sloMs"`
	Weight       float64 `json:"weight"`
	ShareQPS     float64 `json:"shareQps"` // current fair-share admission rate
	RateQPS      float64 `json:"rateQps"`  // monitored arrival rate
	Served       int     `json:"served"`
	Violations   int     `json:"violations"`
	Admitted     int     `json:"admitted"`
	Borrowed     int     `json:"borrowed"`
	Shed         int     `json:"shed"`
	Goodput      float64 `json:"goodput"` // in-SLO served / offered
	DegradeLevel int     `json:"degradeLevel"`
}

// Stats snapshots every tenant's breakdown from the same series /metrics
// exposes.
func (p *TenantPlane) Stats(now float64) map[string]TenantStats {
	p.mu.RLock()
	states := make([]*tenantState, 0, len(p.states))
	for _, st := range p.states {
		states = append(states, st)
	}
	p.mu.RUnlock()
	out := make(map[string]TenantStats, len(states))
	for _, st := range states {
		t, _ := p.reg.Lookup(st.name)
		served := int(st.queries.Value())
		violations := int(st.violations.Value())
		shed := int(st.shed.Value())
		goodput := 0.0
		if offered := served + shed; offered > 0 {
			goodput = float64(served-violations) / float64(offered)
		}
		level := 0
		if st.degrade != nil {
			level = st.degrade.Level()
		}
		out[st.name] = TenantStats{
			Class:        t.Class,
			SLOMS:        t.SLOMS,
			Weight:       t.Weight,
			ShareQPS:     p.fair.Share(st.name),
			RateQPS:      st.load(now),
			Served:       served,
			Violations:   violations,
			Admitted:     int(st.admitted.Value()),
			Borrowed:     int(st.borrowed.Value()),
			Shed:         shed,
			Goodput:      goodput,
			DegradeLevel: level,
		}
	}
	return out
}
