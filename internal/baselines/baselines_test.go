package baselines

import (
	"math"
	"testing"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

func TestAdaptiveMaxBatch(t *testing.T) {
	ps := profile.ImageSet()
	fast, _ := ps.ByName("shufflenet_v2_x0_5")
	got := adaptiveMaxBatch(fast, 0.150)
	// l(b) = 6 + 16.9b <= 75 -> b = 4.
	if got != 4 {
		t.Errorf("adaptiveMaxBatch = %d, want 4", got)
	}
	slow, _ := ps.ByName("efficientnet_v2_s")
	if got := adaptiveMaxBatch(slow, 0.150); got != 1 {
		t.Errorf("adaptiveMaxBatch for slow model = %d, want fallback 1", got)
	}
}

func TestJellyfishModelSelectionMonotone(t *testing.T) {
	ps := profile.ImageSet()
	j := &JellyfishPlus{Profiles: ps, SLO: 0.150, Workers: 60, Monitor: monitor.NewMovingAverage(0.5)}
	prevAcc := math.Inf(1)
	for _, load := range []float64{400, 1200, 2000, 2800, 3600} {
		m := j.ModelFor(load)
		acc := ps.Profiles[m].Accuracy
		if acc > prevAcc+1e-12 {
			t.Errorf("Jellyfish+ accuracy increased with load at %v QPS", load)
		}
		prevAcc = acc
		// The selected model must sustain the load within SLO/2 latency —
		// unless no model can, in which case the fastest is the fallback.
		anySustains := false
		for _, q := range ps.Profiles {
			if q.BatchLatency(1) <= 0.075 && 60*q.ThroughputWithin(0.075) >= load {
				anySustains = true
				break
			}
		}
		p := ps.Profiles[m]
		if anySustains && 60*p.ThroughputWithin(0.075) < load {
			t.Errorf("Jellyfish+ chose %s which cannot sustain %v QPS", p.Name, load)
		}
	}
	// At trivial load the most accurate eligible (latency <= SLO/2) model
	// should be chosen.
	m := j.ModelFor(1)
	best := -1
	bestAcc := -1.0
	for i, p := range ps.Profiles {
		if p.BatchLatency(1) <= 0.075 && p.Accuracy > bestAcc {
			best, bestAcc = i, p.Accuracy
		}
	}
	if m != best {
		t.Errorf("Jellyfish+ at low load chose %s, want %s", ps.Profiles[m].Name, ps.Profiles[best].Name)
	}
}

func TestJellyfishFallbackAtImpossibleLoad(t *testing.T) {
	ps := profile.ImageSet()
	j := &JellyfishPlus{Profiles: ps, SLO: 0.150, Workers: 1, Monitor: monitor.NewMovingAverage(0.5)}
	m := j.ModelFor(1e9)
	if ps.Profiles[m].Name != "shufflenet_v2_x0_5" {
		t.Errorf("fallback model = %s, want fastest", ps.Profiles[m].Name)
	}
}

func TestProfileModelSwitchingTable(t *testing.T) {
	ps := profile.ImageSet().Subset("shufflenet_v2_x0_5", "efficientnet_b2", "efficientnet_v2_s")
	loads := []float64{100, 200, 400}
	tab := ProfileModelSwitching(ps, 0.150, 4, loads, 5, 1)
	if len(tab.P99) != 3 || len(tab.P99[0]) != 3 {
		t.Fatalf("table shape wrong: %dx%d", len(tab.P99), len(tab.P99[0]))
	}
	// p99 response latency is at least the service latency and grows with
	// load for a fixed model.
	for mi := range tab.P99 {
		for li := range loads {
			if !math.IsInf(tab.P99[mi][li], 1) && tab.P99[mi][li] < ps.Profiles[mi].BatchLatency(1)*0.99 {
				t.Errorf("p99[%d][%d] = %v below service latency", mi, li, tab.P99[mi][li])
			}
		}
	}
	// Overloaded (model, load) pairs are marked infeasible.
	slow := 2 // efficientnet_v2_s: throughput ~3.4 QPS/worker
	if !math.IsInf(tab.P99[slow][2], 1) {
		t.Errorf("v2_s at 400 QPS on 4 workers should be infeasible, got %v", tab.P99[slow][2])
	}
	// P99For picks the covering rung and +Inf beyond the range.
	if got := tab.P99For(0, 150); got != tab.P99[0][1] {
		t.Errorf("P99For(150) = %v, want rung 200 value %v", got, tab.P99[0][1])
	}
	if !math.IsInf(tab.P99For(0, 1e6), 1) {
		t.Error("P99For beyond range should be +Inf")
	}
}

func TestModelSwitchingSelection(t *testing.T) {
	ps := profile.ImageSet()
	loads := []float64{400, 800, 1200, 1600, 2000, 2400, 2800, 3200}
	tab := ProfileModelSwitching(ps, 0.150, 60, loads, 5, 1)
	ms := &ModelSwitching{Profiles: ps, SLO: 0.150, Monitor: monitor.NewMovingAverage(0.5), Table: tab}
	low := ms.ModelFor(400)
	high := ms.ModelFor(3200)
	if ps.Profiles[low].Accuracy < ps.Profiles[high].Accuracy {
		t.Errorf("ModelSwitching accuracy at low load (%s) below high load (%s)",
			ps.Profiles[low].Name, ps.Profiles[high].Name)
	}
	// The p99-within-SLO constraint must hold for the chosen model.
	if got := tab.P99For(low, 400); got > 0.150 {
		t.Errorf("chosen model's p99 %v violates SLO", got)
	}
}

func TestGreedyMeetsDeadlinesGreedily(t *testing.T) {
	ps := profile.ImageSet()
	g := &Greedy{Profiles: ps, SLO: 0.150}
	e := sim.NewEngine(ps, 0.150, 1, sim.Deterministic{}, g, 1)
	m := e.Run([]float64{0})
	if m.Served != 1 || m.Violations != 0 {
		t.Fatalf("greedy single query: %+v", m)
	}
	// With a single fresh query, greedy picks the most accurate model whose
	// batch-1 latency fits the full SLO.
	want := ""
	bestAcc := -1.0
	for _, p := range ps.Profiles {
		if p.BatchLatency(1) <= 0.150 && p.Accuracy > bestAcc {
			want, bestAcc = p.Name, p.Accuracy
		}
	}
	if m.ModelCounts[want] != 1 {
		t.Errorf("greedy chose %v, want %s", m.ModelCounts, want)
	}
}

func TestINFaaSSelectsCheapestMeetingAccuracy(t *testing.T) {
	ps := profile.ImageSet()
	f := &INFaaSAdapted{Profiles: ps, SLO: 0.150, Workers: 60, Monitor: monitor.NewMovingAverage(0.5), AccTarget: 0.70}
	m := f.ModelFor(400)
	p := ps.Profiles[m]
	if p.Accuracy < 0.70 {
		t.Errorf("INFaaS chose %s below the accuracy target", p.Name)
	}
	// Appendix H: INFaaS minimizes latency, so no cheaper model meeting the
	// target should exist.
	for _, q := range ps.Profiles {
		if q.Accuracy >= 0.70 && q.BatchLatency(1) < p.BatchLatency(1) &&
			q.BatchLatency(1) <= 0.075 && 60*q.ThroughputWithin(0.075) >= 400 {
			t.Errorf("INFaaS chose %s but %s is cheaper and eligible", p.Name, q.Name)
		}
	}
}

// TestRAMSISBeatsBaselinesAtConstantLoad is the headline §7.2 comparison in
// miniature: same resources, same load, same SLO — RAMSIS achieves higher
// accuracy with a comparable violation rate.
func TestRAMSISBeatsBaselinesAtConstantLoad(t *testing.T) {
	const workers, slo, load = 12, 0.150, 500.0
	ps := profile.ImageSet()
	tr := trace.Constant(load, 30)
	arr := trace.PoissonArrivals(tr, 31)

	// RAMSIS.
	set := core.NewPolicySet(core.Config{
		Models: ps, SLO: slo, Workers: workers, Arrival: dist.NewPoisson(1), D: 50,
	}, nil)
	if err := set.GenerateLoads([]float64{load}); err != nil {
		t.Fatal(err)
	}
	eR := sim.NewEngine(ps, slo, workers, sim.Deterministic{}, sim.NewRAMSIS(set, monitor.Oracle{Trace: tr}), 1)
	mR := eR.Run(arr)

	// Jellyfish+.
	jf := &JellyfishPlus{Profiles: ps, SLO: slo, Workers: workers, Monitor: monitor.Oracle{Trace: tr}}
	eJ := sim.NewEngine(ps, slo, workers, sim.Deterministic{}, jf, 1)
	mJ := eJ.Run(arr)

	// ModelSwitching.
	tab := ProfileModelSwitching(ps, slo, workers, []float64{250, 500, 750}, 5, 1)
	msw := &ModelSwitching{Profiles: ps, SLO: slo, Monitor: monitor.Oracle{Trace: tr}, Table: tab}
	eM := sim.NewEngine(ps, slo, workers, sim.Deterministic{}, msw, 1)
	mM := eM.Run(arr)

	accR, accJ, accM := mR.AccuracyPerSatisfiedQuery(), mJ.AccuracyPerSatisfiedQuery(), mM.AccuracyPerSatisfiedQuery()
	t.Logf("accuracy: RAMSIS %.4f Jellyfish+ %.4f ModelSwitching %.4f", accR, accJ, accM)
	t.Logf("violations: RAMSIS %.4f Jellyfish+ %.4f ModelSwitching %.4f",
		mR.ViolationRate(), mJ.ViolationRate(), mM.ViolationRate())
	if accR <= accJ {
		t.Errorf("RAMSIS accuracy %.4f not above Jellyfish+ %.4f", accR, accJ)
	}
	if accR <= accM {
		t.Errorf("RAMSIS accuracy %.4f not above ModelSwitching %.4f", accR, accM)
	}
	for name, m := range map[string]sim.Metrics{"RAMSIS": mR, "JF+": mJ, "MS": mM} {
		if m.ViolationRate() > 0.05 {
			t.Errorf("%s violation rate %.4f above the 5%% reporting threshold", name, m.ViolationRate())
		}
	}
}
