// Package resource implements the ISS resource manager of Fig. 1: the
// component that provisions workers. §5.1 notes that users or the resource
// manager can use RAMSIS's expected accuracy and expected violation rate to
// direct resource scaling via an offline search over configurations; this
// package implements that search plus a simple interval autoscaler in the
// style of MArk/InferLine (§8), which RAMSIS composes with.
package resource

import (
	"fmt"
	"math"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// Requirements bound an acceptable operating point in terms of the §5.1
// guarantees.
type Requirements struct {
	// SLO is the response latency SLO in seconds.
	SLO float64
	// MinAccuracy is the minimum acceptable expected accuracy (0 disables).
	MinAccuracy float64
	// MaxViolation is the maximum acceptable expected SLO violation rate;
	// 0 defaults to 0.05, the paper's reporting threshold.
	MaxViolation float64
	// D is the policy FLD resolution; 0 defaults to 100.
	D int
}

func (r Requirements) withDefaults() Requirements {
	if r.MaxViolation == 0 {
		r.MaxViolation = 0.05
	}
	if r.D == 0 {
		r.D = 100
	}
	return r
}

// Plan is a provisioning decision: the worker count and the policy whose
// guarantees justified it.
type Plan struct {
	Workers int
	Policy  *core.Policy
}

// MinWorkers finds the smallest worker count in [1, maxWorkers] whose
// RAMSIS policy meets the requirements at the given load, by binary search
// over the worker count (guarantees improve monotonically with workers
// since the per-worker load shrinks). It returns an error when even
// maxWorkers cannot meet the requirements.
func MinWorkers(models profile.Set, req Requirements, load float64, maxWorkers int) (Plan, error) {
	req = req.withDefaults()
	if maxWorkers < 1 {
		return Plan{}, fmt.Errorf("resource: maxWorkers %d < 1", maxWorkers)
	}
	probe := func(workers int) (*core.Policy, bool, error) {
		pol, err := core.Generate(core.Config{
			Models:  models,
			SLO:     req.SLO,
			Workers: workers,
			Arrival: dist.NewPoisson(load),
			D:       req.D,
		})
		if err != nil {
			return nil, false, err
		}
		ok := pol.ExpectedViolation <= req.MaxViolation &&
			(req.MinAccuracy == 0 || pol.ExpectedAccuracy >= req.MinAccuracy)
		return pol, ok, nil
	}
	// Check feasibility at the top first.
	topPol, topOK, err := probe(maxWorkers)
	if err != nil {
		return Plan{}, err
	}
	if !topOK {
		return Plan{}, fmt.Errorf(
			"resource: %d workers insufficient for load %.0f QPS (expected accuracy %.4f, violation %.4f)",
			maxWorkers, load, topPol.ExpectedAccuracy, topPol.ExpectedViolation)
	}
	lo, hi := 1, maxWorkers
	best := Plan{Workers: maxWorkers, Policy: topPol}
	for lo < hi {
		mid := (lo + hi) / 2
		pol, ok, err := probe(mid)
		if err != nil {
			return Plan{}, err
		}
		if ok {
			best = Plan{Workers: mid, Policy: pol}
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return best, nil
}

// StaticPlan provisions for a trace's peak load, the conservative static
// configuration the autoscaler is compared against.
func StaticPlan(models profile.Set, req Requirements, tr trace.Trace, maxWorkers int) (Plan, error) {
	return MinWorkers(models, req, tr.MaxQPS(), maxWorkers)
}

// Schedule is an autoscaling schedule: worker counts per trace interval.
type Schedule struct {
	IntervalSec float64
	Workers     []int
}

// Peak returns the schedule's maximum worker count.
func (s Schedule) Peak() int {
	max := 0
	for _, w := range s.Workers {
		if w > max {
			max = w
		}
	}
	return max
}

// MeanWorkers returns the time-average provisioned workers — the cost
// measure autoscaling optimizes.
func (s Schedule) MeanWorkers() float64 {
	if len(s.Workers) == 0 {
		return 0
	}
	sum := 0
	for _, w := range s.Workers {
		sum += w
	}
	return float64(sum) / float64(len(s.Workers))
}

// Autoscale derives a per-interval worker schedule for a trace: each
// interval gets the minimum worker count meeting the requirements at its
// load times a headroom factor (headroom >= 1 guards the moving-average
// monitor's overshoot; 0 defaults to 1.1). Results are memoized per load,
// and the schedule never scales below the count needed for the smallest
// load.
func Autoscale(models profile.Set, req Requirements, tr trace.Trace, maxWorkers int, headroom float64) (Schedule, error) {
	req = req.withDefaults()
	if headroom == 0 {
		headroom = 1.1
	}
	if headroom < 1 {
		return Schedule{}, fmt.Errorf("resource: headroom %v < 1", headroom)
	}
	sched := Schedule{IntervalSec: tr.IntervalSec, Workers: make([]int, len(tr.QPS))}
	memo := map[float64]int{}
	for i, qps := range tr.QPS {
		// Quantize loads so the memo stays small across similar intervals.
		load := math.Ceil(qps*headroom/100) * 100
		if w, ok := memo[load]; ok {
			sched.Workers[i] = w
			continue
		}
		plan, err := MinWorkers(models, req, load, maxWorkers)
		if err != nil {
			return Schedule{}, err
		}
		memo[load] = plan.Workers
		sched.Workers[i] = plan.Workers
	}
	return sched, nil
}

// SelectModels chooses at most k models to pre-load per worker, greedily
// maximizing the RAMSIS policy's expected accuracy at the given load while
// meeting the violation requirement. §5.2 notes that memory capacity limits
// the number of simultaneously loaded models, and §E shows RAMSIS retains
// most of its accuracy with very few; this implements the loading decision.
// The fastest model is always included (it is the forced fallback that
// keeps every queue state serviceable). Returns the chosen subset and the
// policy that justified it.
func SelectModels(models profile.Set, req Requirements, load float64, workers, k int) (profile.Set, *core.Policy, error) {
	req = req.withDefaults()
	if k < 1 {
		return profile.Set{}, nil, fmt.Errorf("resource: k %d < 1", k)
	}
	front := models.ParetoFront()
	chosen := []string{front.Fastest().Name}
	evaluate := func(names []string) (*core.Policy, error) {
		return core.Generate(core.Config{
			Models:  models.Subset(names...),
			SLO:     req.SLO,
			Workers: workers,
			Arrival: dist.NewPoisson(load),
			D:       req.D,
		})
	}
	best, err := evaluate(chosen)
	if err != nil {
		return profile.Set{}, nil, err
	}
	for len(chosen) < k {
		var bestCand string
		bestPol := best
		for _, p := range front.Profiles {
			if contains(chosen, p.Name) {
				continue
			}
			pol, err := evaluate(append(append([]string(nil), chosen...), p.Name))
			if err != nil {
				return profile.Set{}, nil, err
			}
			if pol.ExpectedViolation > req.MaxViolation {
				continue
			}
			if pol.ExpectedAccuracy > bestPol.ExpectedAccuracy {
				bestPol, bestCand = pol, p.Name
			}
		}
		if bestCand == "" {
			break // no candidate improves further
		}
		chosen = append(chosen, bestCand)
		best = bestPol
	}
	return models.Subset(chosen...), best, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
