package multislo

import (
	"testing"

	"ramsis/internal/profile"
)

func classes() []Class {
	return []Class{
		{Name: "interactive", SLO: 0.150, Workers: 5, Share: 0.5},
		{Name: "relaxed", SLO: 0.500, Workers: 5, Share: 0.5},
	}
}

func TestNewValidation(t *testing.T) {
	models := profile.ImageSet()
	if _, err := New(models, nil, 25); err == nil {
		t.Error("empty classes accepted")
	}
	bad := classes()
	bad[0].Share = 0.9 // shares sum to 1.4
	if _, err := New(models, bad, 25); err == nil {
		t.Error("mis-summed shares accepted")
	}
	bad = classes()
	bad[1].SLO = 0
	if _, err := New(models, bad, 25); err == nil {
		t.Error("zero SLO accepted")
	}
	if _, err := New(models, classes(), 25); err != nil {
		t.Errorf("valid classes rejected: %v", err)
	}
}

func TestMultiSLOServing(t *testing.T) {
	models := profile.ImageSet()
	s, err := New(models, classes(), 25)
	if err != nil {
		t.Fatal(err)
	}
	const totalLoad = 300.0
	res, err := s.Run(totalLoad, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results for %d classes, want 2", len(res))
	}
	for name, m := range res {
		if m.Served == 0 || m.Unserved != 0 {
			t.Fatalf("class %s: %+v", name, m)
		}
		if vr := m.ViolationRate(); vr > 0.05 {
			t.Errorf("class %s violation rate %v", name, vr)
		}
	}
	// Same per-worker load in both classes, but the relaxed SLO admits the
	// large EfficientNets, so its accuracy must be at least the
	// interactive class's.
	if res["relaxed"].AccuracyPerSatisfiedQuery() < res["interactive"].AccuracyPerSatisfiedQuery() {
		t.Errorf("relaxed class accuracy %.4f below interactive %.4f",
			res["relaxed"].AccuracyPerSatisfiedQuery(),
			res["interactive"].AccuracyPerSatisfiedQuery())
	}
	// All arrivals accounted for across classes.
	total := res["relaxed"].Served + res["interactive"].Served
	if total == 0 || total < int(totalLoad*20)*9/10 || total > int(totalLoad*20)*11/10 {
		t.Errorf("total served %d far from expected ~%d", total, int(totalLoad*20))
	}
}

func TestClassPolicyUsesShare(t *testing.T) {
	models := profile.ImageSet()
	s, err := New(models, classes(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Precompute(400); err != nil {
		t.Fatal(err)
	}
	pol, err := s.ClassPolicy(0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Load != 200 {
		t.Errorf("class policy load = %v, want the class share 200", pol.Load)
	}
	if pol.SLO != 0.150 {
		t.Errorf("class policy SLO = %v", pol.SLO)
	}
}
