package queueing_test

import (
	"fmt"

	"ramsis/internal/queueing"
)

// The textbook Erlang-C value: two servers at offered load 1 make an
// arriving query wait one third of the time.
func ExampleErlangC() {
	fmt.Printf("%.4f\n", queueing.ErlangC(2, 1))
	// Output:
	// 0.3333
}

// Pollaczek-Khinchine for M/D/1: mean wait = rho*d / (2(1-rho)).
func ExampleMDcWaitMean() {
	const lambda, d = 30.0, 0.02 // 60% utilization, 20 ms service
	fmt.Printf("%.1f ms\n", queueing.MDcWaitMean(1, lambda, d)*1000)
	// Output:
	// 15.0 ms
}
