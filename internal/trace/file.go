package trace

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// The artifact distributes the Twitter trace as a text file listing the
// average queries per second for each ten-second interval
// (twitter_trace/twitter_04_25_norm.txt). These helpers read and write that
// format so externally captured traces drop in directly.

// LoadQPSFile reads a trace in the artifact's format: one average-QPS value
// per line (blank lines and '#' comments ignored), one value per
// intervalSec seconds.
func LoadQPSFile(path string, intervalSec float64) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, err
	}
	defer f.Close()
	if intervalSec <= 0 {
		intervalSec = 10
	}
	tr := Trace{Name: path, IntervalSec: intervalSec}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		q, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: %s:%d: %w", path, line, err)
		}
		if q < 0 {
			return Trace{}, fmt.Errorf("trace: %s:%d: negative load %v", path, line, q)
		}
		tr.QPS = append(tr.QPS, q)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if len(tr.QPS) == 0 {
		return Trace{}, fmt.Errorf("trace: %s contains no load values", path)
	}
	return tr, nil
}

// SaveQPSFile writes the trace in the artifact's one-QPS-per-line format.
func (t Trace) SaveQPSFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, q := range t.QPS {
		if _, err := fmt.Fprintf(w, "%g\n", q); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
