package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets returns the log-spaced bucket upper bounds used for
// latency histograms: 100 µs growing by 1.5× per bucket up to ~100 s of
// modeled time, which brackets everything from a balancer pick to a
// saturated tail latency. The slice is fresh per call so callers may keep
// or modify it.
func DefaultLatencyBuckets() []float64 {
	const base, growth = 1e-4, 1.5
	buckets := make([]float64, 35)
	v := base
	for i := range buckets {
		buckets[i] = v
		v *= growth
	}
	return buckets
}

// LinearBuckets returns count upper bounds start, start+width, ... — handy
// for small integral quantities like batch sizes.
func LinearBuckets(start, width float64, count int) []float64 {
	buckets := make([]float64, count)
	for i := range buckets {
		buckets[i] = start + float64(i)*width
	}
	return buckets
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe. It
// tracks per-bucket counts, total count, sum, and exact min/max, and can
// answer approximate quantiles by linear interpolation inside the bucket
// holding the requested rank (exact at the edges thanks to min/max).
type Histogram struct {
	upper  []float64       // ascending bucket upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(upper)+1, last is the overflow bucket
	total  atomic.Uint64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
	// exemplars holds the latest exemplar per bucket (nil slots until
	// ObserveExemplar hits the bucket); exposition appends them to the
	// _bucket lines in the OpenMetrics style.
	exemplars []atomic.Pointer[exemplar]
	// exSample counts ObserveExemplar calls for refresh sampling.
	exSample atomic.Uint64
}

// exemplar links one observed value to the trace that produced it, so a
// latency bucket on a dashboard can jump straight to a stitched trace.
type exemplar struct {
	traceID string
	value   float64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (+Inf is implicit and must not be included).
func NewHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{
		upper:     append([]float64(nil), upper...),
		counts:    make([]atomic.Uint64, len(upper)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(upper)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one sample. Bucket bounds are inclusive upper bounds, as
// in the Prometheus exposition format (le).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.add(v)
	for {
		old := h.min.load()
		if v >= old || h.min.bits.CompareAndSwap(math.Float64bits(old), math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.load()
		if v <= old || h.max.bits.CompareAndSwap(math.Float64bits(old), math.Float64bits(v)) {
			break
		}
	}
}

// ObserveExemplar records one sample and, when traceID is non-empty, tags
// the sample's bucket with it as its latest exemplar. The exposition then
// links the bucket to the trace (`... # {trace_id="..."} value`, the
// OpenMetrics exemplar syntax), so an anomalous latency bucket resolves to
// a concrete stitched trace instead of a statistics-only series.
//
// An empty bucket always takes the first exemplar it sees, so every hit
// bucket links to a trace; a populated bucket refreshes on a 1-in-16
// sample, because boxing a fresh exemplar per observation was a measurable
// share of the steady-state allocation profile.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	if h.exemplars[i].Load() != nil && h.exSample.Add(1)&0xf != 0 {
		return
	}
	h.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
}

// Exemplar returns the latest exemplar recorded in the bucket holding v,
// or ok == false when that bucket has none.
func (h *Histogram) Exemplar(v float64) (traceID string, value float64, ok bool) {
	i := sort.SearchFloat64s(h.upper, v)
	ex := h.exemplars[i].Load()
	if ex == nil {
		return "", 0, false
	}
	return ex.traceID, ex.value, true
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Min returns the smallest observed sample, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.min.load()
}

// Max returns the largest observed sample, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.max.load()
}

// Mean returns the arithmetic mean of observed samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return h.sum.load() / float64(n)
}

// Quantile returns the approximate p-th percentile (0 <= p <= 100),
// mirroring stats.Percentile's contract: 0 for an empty histogram, the
// exact min/max for p <= 0 / p >= 100, and for interior p the nearest-rank
// bucket with linear interpolation between the bucket's effective bounds.
// Concurrent Observes may shift the result by the in-flight samples.
func (h *Histogram) Quantile(p float64) float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	min, max := h.min.load(), h.max.load()
	if p <= 0 {
		return min
	}
	if p >= 100 {
		return max
	}
	rank := uint64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c > 0 && cum+c >= rank {
			upper := max
			if i < len(h.upper) && h.upper[i] < upper {
				upper = h.upper[i]
			}
			if lower < min {
				lower = min
			}
			if upper <= lower {
				return upper
			}
			return lower + (upper-lower)*float64(rank-cum)/float64(c)
		}
		cum += c
		if i < len(h.upper) {
			lower = h.upper[i]
		}
	}
	return max
}

// write emits the Prometheus histogram series: cumulative _bucket lines
// (with OpenMetrics-style exemplar suffixes where ObserveExemplar tagged
// the bucket), then _sum and _count.
func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		bl := fmt.Sprintf("le=%q", le)
		if labels != "" {
			bl = labels + "," + bl
		}
		suffix := ""
		if ex := h.exemplars[i].Load(); ex != nil {
			suffix = fmt.Sprintf(" # {trace_id=%q} %s", ex.traceID, formatFloat(ex.value))
		}
		fmt.Fprintf(w, "%s %d%s\n", seriesName(name+"_bucket", bl), cum, suffix)
	}
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", labels), cum)
}
