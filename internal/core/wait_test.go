package core

import (
	"testing"

	"ramsis/internal/profile"
)

func TestWaitEstimatorIsOptimistic(t *testing.T) {
	models := profile.ImageSet()
	workers := 4
	est := NewWaitEstimator(models, workers)

	// Service must be the fastest batch-1 latency in the set.
	if got, want := est.Service(), models.Fastest().BatchLatency(1); got != want {
		t.Errorf("Service() = %v, want fastest batch-1 latency %v", got, want)
	}

	// Per-query drain must use the best throughput of any model: no model
	// can clear the backlog faster than est.Wait predicts.
	bestTP := 0.0
	for _, p := range models.Profiles {
		if tp := p.Throughput(); tp > bestTP {
			bestTP = tp
		}
	}
	wantWait := 10 / (bestTP * float64(workers))
	if got := est.Wait(10); !floatNear(got, wantWait, 1e-12) {
		t.Errorf("Wait(10) = %v, want %v", got, wantWait)
	}
	for _, p := range models.Profiles {
		// Draining 10 queries with any single model on all workers takes
		// at least the optimistic estimate.
		actual := 10 / (p.Throughput() * float64(workers))
		if est.Wait(10) > actual+1e-12 {
			t.Errorf("estimate %v exceeds achievable drain %v for %s", est.Wait(10), actual, p.Name)
		}
	}
}

func TestWaitEstimatorEdges(t *testing.T) {
	est := NewWaitEstimator(profile.ImageSet(), 4)
	if est.Wait(0) != 0 || est.Wait(-3) != 0 {
		t.Error("empty backlog must wait 0")
	}
	if w1, w2 := est.Wait(1), est.Wait(2); !(w2 > w1 && w1 > 0) {
		t.Errorf("wait not increasing: Wait(1)=%v Wait(2)=%v", w1, w2)
	}
	var zero WaitEstimator
	if zero.Wait(100) != 0 || zero.Service() != 0 {
		t.Error("zero estimator must estimate zero")
	}
}

func floatNear(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}
