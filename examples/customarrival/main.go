// Custom arrival distributions and load balancing: RAMSIS is parameterized
// by the arrival distribution (§3.1.1) and can be re-derived for other load
// balancers (Appendix I). This example generates policies for Poisson and
// Erlang-4 ("Gamma") arrivals and for shortest-queue-first balancing, and
// compares the guarantees and simulated results.
//
//	go run ./examples/customarrival
package main

import (
	"fmt"
	"log"

	"ramsis"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

func main() {
	const (
		workers = 8
		sloMS   = 150.0
		load    = 250.0
	)
	models := ramsis.ImageModels()

	// Poisson vs Erlang-4 arrivals: the more regular process has fewer
	// bursts, so RAMSIS can promise (and deliver) higher accuracy.
	fmt.Println("arrival-distribution comparison at", load, "QPS:")
	for _, cse := range []struct {
		name  string
		shape int
	}{{"Poisson", 1}, {"Erlang-4", 4}} {
		system, err := ramsis.New(ramsis.Options{
			Models: models, SLOMillis: sloMS, Workers: workers, GammaShape: cse.shape,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := system.PrecomputePolicies(load); err != nil {
			log.Fatal(err)
		}
		pol, _ := system.Policy(load)

		// Simulate under the matching inter-arrival pattern.
		tr := ramsis.ConstantTrace(load, 20)
		sched := sim.NewRAMSIS(system.PolicySet(), monitor.Oracle{Trace: tr})
		e := sim.NewEngine(models, sloMS/1000, workers, sim.Deterministic{}, sched, 5)
		var arr []float64
		if cse.shape == 1 {
			arr = trace.PoissonArrivals(tr, 5)
		} else {
			arr = trace.GammaArrivals(tr, 5, cse.shape)
		}
		m := e.Run(arr)
		fmt.Printf("  %-9s expected accuracy %.4f | measured %.4f, violations %.4f%%\n",
			cse.name, pol.ExpectedAccuracy, m.AccuracyPerSatisfiedQuery(), m.ViolationRate()*100)
	}

	// Round-robin vs shortest-queue-first (Appendix I): both the offline
	// transition probabilities and the online router switch together.
	fmt.Println("\nload-balancer comparison (Appendix I):")
	for _, cse := range []struct {
		name    string
		balance core.Balancing
	}{{"round-robin", core.RoundRobin}, {"shortest-queue-first", core.ShortestQueueFirst}} {
		set := core.NewPolicySet(core.Config{
			Models: models, SLO: sloMS / 1000, Workers: workers,
			Arrival: dist.NewPoisson(1), Balancing: cse.balance,
		}, nil)
		if err := set.GenerateLoads([]float64{load}); err != nil {
			log.Fatal(err)
		}
		tr := ramsis.ConstantTrace(load, 20)
		sched := sim.NewRAMSIS(set, monitor.Oracle{Trace: tr})
		sched.Balance = cse.balance
		e := sim.NewEngine(models, sloMS/1000, workers, sim.Deterministic{}, sched, 5)
		m := e.Run(trace.PoissonArrivals(tr, 5))
		fmt.Printf("  %-22s accuracy %.4f, violations %.4f%%\n",
			cse.name, m.AccuracyPerSatisfiedQuery(), m.ViolationRate()*100)
	}
}
