package experiments

import (
	"time"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

// ScalingPoint is one policy-generation cost measurement.
type ScalingPoint struct {
	Models      int
	MaxQueue    int
	States      int
	Transitions int
	Runtime     time.Duration
}

// Scaling verifies §5.2 empirically: policy-generation cost grows
// polynomially in the model count |M_w| and the queue bound N_w (the paper
// derives O(|M|³·B⁴) with value iteration over |S| = O(|M|·B²) states).
// Two sweeps are reported: model count at fixed N_w, and N_w at fixed
// model count.
func (h *Harness) Scaling() []ScalingPoint {
	modelCounts := []int{3, 6, 9, 15}
	queues := []int{8, 16, 24, 32}
	if h.scale() == scaleQuick {
		modelCounts = []int{3, 9}
		queues = []int{8, 24}
	}
	var out []ScalingPoint
	run := func(mCount, nw int) ScalingPoint {
		models := profile.InterpolatedSet(profile.ImageSet(), mCount)
		if mCount <= 9 {
			models = profile.Set{Task: "image",
				Profiles: profile.ImageSet().ParetoFront().Profiles[:mCount]}
		}
		cfg := core.Config{
			Models:          models,
			SLO:             0.150,
			Workers:         8,
			Arrival:         dist.NewPoisson(250),
			D:               50,
			MaxQueue:        nw,
			NoParetoPruning: true, // |M| is the variable under study
		}
		start := time.Now()
		pol, err := core.Generate(cfg)
		if err != nil {
			panic(err)
		}
		return ScalingPoint{
			Models: mCount, MaxQueue: nw,
			States: pol.States, Transitions: pol.Transitions,
			Runtime: time.Since(start),
		}
	}
	h.printf("§5.2 scaling: policy-generation cost vs |M_w| (N_w = 16)\n")
	h.printf("%6s %6s %8s %12s %12s\n", "|M|", "N_w", "states", "transitions", "runtime")
	for _, m := range modelCounts {
		p := run(m, 16)
		out = append(out, p)
		h.printf("%6d %6d %8d %12d %12v\n", p.Models, p.MaxQueue, p.States, p.Transitions, p.Runtime.Round(time.Millisecond))
	}
	h.printf("§5.2 scaling: policy-generation cost vs N_w (|M| = 9)\n")
	for _, nw := range queues {
		p := run(9, nw)
		out = append(out, p)
		h.printf("%6d %6d %8d %12d %12v\n", p.Models, p.MaxQueue, p.States, p.Transitions, p.Runtime.Round(time.Millisecond))
	}
	h.printf("\n")
	h.saveResult("scaling", out)
	return out
}
