package adapt

import "math"

// Detector decides when the monitored arrival rate has genuinely drifted
// away from the rate the active policy was solved for. Two guards keep
// monitor noise from thrashing the solver:
//
//   - a hysteresis band: rates within ±Band (fractional) of the solved-for
//     center are always fine, however long they persist;
//   - a minimum dwell time: the rate must sit outside the band continuously
//     for at least Dwell modeled seconds before drift is confirmed — a
//     single excursion (one burst, one lull) re-arms the timer as soon as
//     the rate returns to the band.
//
// The detector works in modeled time so the same implementation drives the
// simulator and the live serving path.
type Detector struct {
	band     float64
	dwell    float64
	center   float64
	outSince float64 // first time of the current out-of-band excursion; NaN when in band
}

// NewDetector returns a detector centered on the given rate. band is the
// fractional half-width of the hysteresis band (0.2 = ±20 %); dwell is the
// confirmation time in modeled seconds.
func NewDetector(center, band, dwell float64) *Detector {
	return &Detector{band: band, dwell: dwell, center: center, outSince: math.NaN()}
}

// Center returns the rate the detector currently considers solved-for.
func (d *Detector) Center() float64 { return d.center }

// Recenter moves the band to a new solved-for rate and re-arms the dwell
// timer. The adapter calls it the moment drift is confirmed, so one drift
// event triggers exactly one re-solve.
func (d *Detector) Recenter(center float64) {
	d.center = center
	d.outSince = math.NaN()
}

// Observe feeds one monitored rate reading at modeled time now and reports
// whether drift is confirmed: the rate has stayed outside the hysteresis
// band continuously for at least the dwell time. Out-of-order readings
// (concurrent selector loops) are tolerated: a reading older than the
// excursion start cannot shorten the dwell.
func (d *Detector) Observe(now, rate float64) bool {
	lo := d.center * (1 - d.band)
	hi := d.center * (1 + d.band)
	if rate >= lo && rate <= hi {
		d.outSince = math.NaN()
		return false
	}
	if math.IsNaN(d.outSince) {
		d.outSince = now
		return d.dwell <= 0
	}
	return now-d.outSince >= d.dwell
}
