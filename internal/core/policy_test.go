package core

import (
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

// genConfig is a moderately sized generation problem used across tests.
func genConfig(load float64) Config {
	return Config{
		Models:  profile.ImageSet(),
		SLO:     0.150,
		Workers: 8,
		Arrival: dist.NewPoisson(load),
		D:       50, // keep unit tests quick
	}
}

func TestGeneratePolicyIsValid(t *testing.T) {
	pol, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if pol.States != 2+32*51 {
		t.Errorf("states = %d, want %d", pol.States, 2+32*51)
	}
	// Every chosen action must satisfy its state's slack or be the forced
	// fastest-model action.
	fast := pol.space.fastestModel()
	for s, c := range pol.Choices {
		if c.Arrival {
			if s != pol.space.emptyState() {
				t.Fatalf("arrival action chosen in non-empty state %d", s)
			}
			continue
		}
		n, j := pol.space.decompose(s)
		if s == pol.space.overflowState() {
			n = pol.MaxQueue
			j = 0
		}
		if c.Batch != n {
			t.Fatalf("state %d: maximal batching chose batch %d != n %d", s, c.Batch, n)
		}
		slack := pol.Grid[j]
		if s == pol.space.overflowState() {
			slack = 0
		}
		if c.Satisfies && c.Latency > slack+1e-12 {
			t.Fatalf("state %d: satisfying action with latency %v > slack %v", s, c.Latency, slack)
		}
		if !c.Satisfies && c.ModelIdx != fast {
			t.Fatalf("state %d: forced action uses %s, want fastest", s, c.Model)
		}
	}
	if pol.ExpectedAccuracy <= 0 || pol.ExpectedAccuracy > 1 {
		t.Errorf("expected accuracy %v outside (0,1]", pol.ExpectedAccuracy)
	}
	if pol.ExpectedViolation < 0 || pol.ExpectedViolation > 1 {
		t.Errorf("expected violation %v outside [0,1]", pol.ExpectedViolation)
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	cfg := genConfig(300)
	cfg.SLO = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLowerLoadGivesHigherAccuracy(t *testing.T) {
	// The central claim mechanism: with more slack between arrivals, the
	// policy can pick slower, more accurate models.
	low, err := Generate(genConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Generate(genConfig(420))
	if err != nil {
		t.Fatal(err)
	}
	if low.ExpectedAccuracy <= high.ExpectedAccuracy {
		t.Errorf("expected accuracy at 80 QPS (%v) not above 420 QPS (%v)",
			low.ExpectedAccuracy, high.ExpectedAccuracy)
	}
	// At very low load the single-query decision should pick a model more
	// accurate than the load-granular choice at high load.
	cl := low.Select(1, 0.15)
	ch := high.Select(1, 0.15)
	al, _ := profile.ImageSet().ByName(cl.Model)
	ah, _ := profile.ImageSet().ByName(ch.Model)
	if al.Accuracy < ah.Accuracy {
		t.Errorf("low-load single-query model %s less accurate than high-load %s", cl.Model, ch.Model)
	}
}

func TestPolicyInterArrivalAwareness(t *testing.T) {
	// RAMSIS's key behaviour (Fig. 2): at the same load, the policy picks
	// higher-accuracy models when slack is high (a lull) than the
	// throughput-sustaining model selected under pressure.
	pol, err := Generate(genConfig(350))
	if err != nil {
		t.Fatal(err)
	}
	lull := pol.Select(1, 0.15)
	pressed := pol.Select(16, 0.15)
	a1, _ := profile.ImageSet().ByName(lull.Model)
	a2, _ := profile.ImageSet().ByName(pressed.Model)
	if a1.Accuracy <= a2.Accuracy {
		t.Errorf("lull decision %s (acc %.3f) not more accurate than pressured %s (acc %.3f)",
			lull.Model, a1.Accuracy, pressed.Model, a2.Accuracy)
	}
}

func TestSelectClampsOverlongQueues(t *testing.T) {
	pol, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	c := pol.Select(100, 0.01)
	if c.Arrival {
		t.Fatal("overflow lookup returned arrival action")
	}
	if c.Batch != pol.MaxQueue {
		t.Errorf("overflow decision batch = %d, want N_w = %d", c.Batch, pol.MaxQueue)
	}
}

func TestMDPolicyAtLeastAsAccurateAsCoarseFLD(t *testing.T) {
	// §C: MD represents every relevant slack exactly, so a very coarse FLD
	// policy should not beat it.
	cfgMD := genConfig(300)
	cfgMD.Disc = ModelBased
	md, err := Generate(cfgMD)
	if err != nil {
		t.Fatal(err)
	}
	cfgF := genConfig(300)
	cfgF.Disc = FixedLength
	cfgF.D = 2
	coarse, err := Generate(cfgF)
	if err != nil {
		t.Fatal(err)
	}
	if md.ExpectedAccuracy+1e-9 < coarse.ExpectedAccuracy-0.02 {
		t.Errorf("MD accuracy %v well below FLD D=2 accuracy %v", md.ExpectedAccuracy, coarse.ExpectedAccuracy)
	}
	if len(md.Grid) == len(coarse.Grid) {
		t.Error("MD and FLD grids unexpectedly identical")
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	pol, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gen", "p.json")
	if err := pol.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPolicy(path, profile.ImageSet())
	if err != nil {
		t.Fatal(err)
	}
	if got.Load != pol.Load || got.SLO != pol.SLO || got.Workers != pol.Workers {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if math.Abs(got.ExpectedAccuracy-pol.ExpectedAccuracy) > 1e-12 {
		t.Errorf("expected accuracy mismatch")
	}
	for _, n := range []int{0, 1, 5, 17, 32, 80} {
		for _, sl := range []float64{0, 0.04, 0.11, 0.15} {
			a, b := pol.Select(n, sl), got.Select(n, sl)
			if a.Model != b.Model || a.Batch != b.Batch || a.Satisfies != b.Satisfies {
				t.Fatalf("Select(%d, %v) differs after reload: %+v vs %+v", n, sl, a, b)
			}
		}
	}
}

func TestLoadPolicyMissingModel(t *testing.T) {
	pol, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := pol.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicy(path, profile.TextSet()); err == nil {
		t.Error("loading against the wrong model set should fail")
	}
}

func TestPolicySetSelection(t *testing.T) {
	base := genConfig(1) // arrival replaced per-load by the set
	ps := NewPolicySet(base, nil)
	if _, err := ps.PolicyFor(100); err == nil {
		t.Error("empty set lookup should fail")
	}
	if err := ps.GenerateLoads([]float64{100, 200, 400}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		load float64
		want float64
	}{{50, 100}, {100, 100}, {150, 200}, {399, 400}, {400, 400}}
	for _, c := range cases {
		p, err := ps.PolicyFor(c.load)
		if err != nil {
			t.Fatal(err)
		}
		if p.Load != c.want {
			t.Errorf("PolicyFor(%v).Load = %v, want %v (lowest load meeting demand)", c.load, p.Load, c.want)
		}
	}
	// Beyond the ladder: a new policy is generated on demand (§3.2.2).
	p, err := ps.PolicyFor(500)
	if err != nil {
		t.Fatal(err)
	}
	if p.Load != 500 {
		t.Errorf("on-demand policy load = %v, want 500", p.Load)
	}
	if got := len(ps.Loads()); got != 4 {
		t.Errorf("ladder size = %d, want 4 after on-demand insert", got)
	}
}

func TestPolicySetRefine(t *testing.T) {
	base := genConfig(1)
	base.D = 25
	ps := NewPolicySet(base, nil)
	if err := ps.Refine(50, 450, 0.05, 12); err != nil {
		t.Fatal(err)
	}
	pols := ps.Policies()
	if len(pols) < 3 {
		t.Fatalf("refine produced only %d policies", len(pols))
	}
	for i := 1; i < len(pols); i++ {
		if pols[i].Load <= pols[i-1].Load {
			t.Fatal("policies not sorted by load")
		}
		gap := math.Abs(pols[i].ExpectedAccuracy - pols[i-1].ExpectedAccuracy)
		if gap >= 0.05 && pols[i].Load-pols[i-1].Load > 1 && len(pols) < 12 {
			t.Errorf("adjacent accuracy gap %.4f >= threshold between loads %v and %v",
				gap, pols[i-1].Load, pols[i].Load)
		}
	}
}

func TestGammaArrivalPolicyGenerates(t *testing.T) {
	// §3.1.1: RAMSIS is parameterized by the arrival distribution.
	cfg := genConfig(300)
	cfg.Arrival = dist.NewGamma(300, 4)
	pol, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pol.ExpectedAccuracy <= 0 {
		t.Error("gamma-arrival policy has no accuracy expectation")
	}
	// A more regular arrival process (Erlang-4) leaves less burst risk, so
	// the policy should do at least as well as under Poisson.
	pois, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if pol.ExpectedAccuracy < pois.ExpectedAccuracy-0.02 {
		t.Errorf("Erlang-4 accuracy %v unexpectedly below Poisson %v",
			pol.ExpectedAccuracy, pois.ExpectedAccuracy)
	}
}

func TestSQFPolicyGenerates(t *testing.T) {
	cfg := genConfig(300)
	cfg.Balancing = ShortestQueueFirst
	pol, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Balancing != ShortestQueueFirst {
		t.Error("balancing not recorded")
	}
	if pol.ExpectedAccuracy <= 0 || pol.ExpectedViolation < 0 {
		t.Error("SQF expectations out of range")
	}
}

func TestVariableBatchingPolicyGenerates(t *testing.T) {
	cfg := genConfig(300)
	cfg.D = 25
	cfg.Batching = VariableBatching
	pol, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3.2: variable batching mostly picks the maximal batch; ensure the
	// policy is at least well-formed and batches never exceed n.
	for s, c := range pol.Choices {
		if c.Arrival {
			continue
		}
		n, _ := pol.space.decompose(s)
		if s == pol.space.overflowState() {
			n = pol.MaxQueue
		}
		if c.Batch < 1 || c.Batch > n {
			t.Fatalf("state %d: batch %d outside [1, %d]", s, c.Batch, n)
		}
	}
}

func TestModelsAccessor(t *testing.T) {
	pol, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pol.Models()); got != 9 {
		t.Errorf("policy models = %d, want the 9 Pareto-front models", got)
	}
}

func TestDescribe(t *testing.T) {
	pol, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	pol.Describe(&buf)
	out := buf.String()
	for _, want := range []string{"expected accuracy", "n=1", "n=32", "overflow", "shufflenet_v2_x0_5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe output missing %q", want)
		}
	}
	// Every queue length row present exactly once.
	if c := strings.Count(out, "n=32 "); c != 1 {
		t.Errorf("n=32 row appears %d times", c)
	}
}

func TestAccuracyQuantiles(t *testing.T) {
	pol, err := Generate(genConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.AccuracyDist) == 0 {
		t.Fatal("no accuracy distribution computed")
	}
	mass := 0.0
	for _, w := range pol.AccuracyDist {
		mass += w
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("accuracy distribution mass %v", mass)
	}
	med := pol.AccuracyQuantile(0.5)
	lo := pol.AccuracyQuantile(0.01)
	hi := pol.AccuracyQuantile(0.999)
	if !(lo <= med && med <= hi) {
		t.Errorf("quantiles not ordered: p1=%v p50=%v p99.9=%v", lo, med, hi)
	}
	// The mean must lie within the distribution's support.
	if pol.ExpectedAccuracy < lo-1e-9 || pol.ExpectedAccuracy > hi+1e-9 {
		t.Errorf("mean %v outside [%v, %v]", pol.ExpectedAccuracy, lo, hi)
	}
	if got := pol.AccuracyQuantile(0); got != 0 {
		t.Errorf("invalid quantile should return 0, got %v", got)
	}
}

func TestPolicyIterationMatchesValueIterationPolicies(t *testing.T) {
	// §4.1: both exact methods must produce equally good policies.
	cfgVI := genConfig(250)
	cfgVI.D = 25
	vi, err := Generate(cfgVI)
	if err != nil {
		t.Fatal(err)
	}
	cfgPI := genConfig(250)
	cfgPI.D = 25
	cfgPI.Solver = SolvePolicyIteration
	pi, err := Generate(cfgPI)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vi.ExpectedAccuracy-pi.ExpectedAccuracy) > 1e-6 {
		t.Errorf("VI accuracy %v != PI accuracy %v", vi.ExpectedAccuracy, pi.ExpectedAccuracy)
	}
	if math.Abs(vi.ExpectedViolation-pi.ExpectedViolation) > 1e-6 {
		t.Errorf("VI violation %v != PI violation %v", vi.ExpectedViolation, pi.ExpectedViolation)
	}
}

func TestPolicyForNowNonBlocking(t *testing.T) {
	base := genConfig(1)
	base.D = 25
	ps := NewPolicySet(base, nil)
	if _, err := ps.PolicyForNow(100); err == nil {
		t.Error("empty set should error")
	}
	if err := ps.GenerateLoads([]float64{100}); err != nil {
		t.Fatal(err)
	}
	// Within the ladder: normal lookup.
	p, err := ps.PolicyForNow(80)
	if err != nil || p.Load != 100 {
		t.Fatalf("PolicyForNow(80) = %v, %v", p, err)
	}
	// Beyond the ladder: returns the highest policy immediately and
	// generates the missing rung in the background.
	start := time.Now()
	p, err = ps.PolicyForNow(180)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Errorf("PolicyForNow blocked for %v", time.Since(start))
	}
	if p.Load != 100 {
		t.Errorf("interim policy load %v, want the current maximum 100", p.Load)
	}
	// The background generation eventually lands on the 200-QPS rung.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if p, err := ps.PolicyFor(180); err == nil && p.Load == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background policy generation never completed")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestPolicySetConcurrentAccess(t *testing.T) {
	base := genConfig(1)
	base.D = 20
	ps := NewPolicySet(base, nil)
	if err := ps.GenerateLoads([]float64{100, 200}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				load := float64(50 + (g*37+i*13)%150)
				if _, err := ps.PolicyFor(load); err != nil {
					t.Errorf("PolicyFor(%v): %v", load, err)
					return
				}
				if _, err := ps.PolicyForNow(load); err != nil {
					t.Errorf("PolicyForNow(%v): %v", load, err)
					return
				}
				_ = ps.Loads()
			}
		}(g)
	}
	wg.Wait()
}
