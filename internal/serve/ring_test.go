package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ramsis/internal/profile"
	"ramsis/internal/sim"
)

// TestRingFIFOAcrossWrap interleaves pushes and pops so the head laps the
// backing array several times, checking FIFO order and length at every
// step against a plain-slice reference.
func TestRingFIFOAcrossWrap(t *testing.T) {
	var r pqRing
	var ref []int
	next := 0
	var popped []pendingQuery
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			r.push(pendingQuery{q: sim.Query{ID: next}})
			ref = append(ref, next)
			next++
		}
		if got := r.len(); got != len(ref) {
			t.Fatalf("round %d: len %d, want %d", round, got, len(ref))
		}
		for i := 0; i < r.len(); i++ {
			if got := r.at(i).q.ID; got != ref[i] {
				t.Fatalf("round %d: at(%d) = %d, want %d", round, i, got, ref[i])
			}
		}
		k := 3
		popped = r.popInto(popped[:0], k)
		if len(popped) != k {
			t.Fatalf("round %d: popped %d, want %d", round, len(popped), k)
		}
		for i, pq := range popped {
			if pq.q.ID != ref[i] {
				t.Fatalf("round %d: pop order %d = %d, want %d", round, i, pq.q.ID, ref[i])
			}
		}
		ref = ref[k:]
	}
}

// TestRingGrowPreservesOrder forces a capacity doubling while the head is
// mid-array (the wrapped layout), which is the case grow has to relinearize.
func TestRingGrowPreservesOrder(t *testing.T) {
	var r pqRing
	var popped []pendingQuery
	// Fill to the initial capacity, then advance the head so the ring wraps.
	for i := 0; i < ringMinCap; i++ {
		r.push(pendingQuery{q: sim.Query{ID: i}})
	}
	popped = r.popInto(popped[:0], 10)
	for i := ringMinCap; i < 3*ringMinCap; i++ {
		r.push(pendingQuery{q: sim.Query{ID: i}}) // grows at least once mid-wrap
	}
	want := 10
	for r.len() > 0 {
		popped = r.popInto(popped[:0], 7)
		for _, pq := range popped {
			if pq.q.ID != want {
				t.Fatalf("popped %d, want %d", pq.q.ID, want)
			}
			want++
		}
	}
	if want != 3*ringMinCap {
		t.Fatalf("drained %d elements, want %d", want-10, 3*ringMinCap-10)
	}
}

// TestRingPopReleasesSlots checks that popInto zeroes vacated slots: a
// popped query's done channel and tenant state must not be retained by
// the ring's backing array.
func TestRingPopReleasesSlots(t *testing.T) {
	var r pqRing
	for i := 0; i < 4; i++ {
		r.push(pendingQuery{q: sim.Query{ID: i}, done: make(chan QueryResponse, 1), st: &tenantState{}})
	}
	_ = r.popInto(nil, 4)
	for i := range r.buf {
		if r.buf[i].done != nil || r.buf[i].st != nil {
			t.Fatalf("slot %d still retains popped query state", i)
		}
	}
}

// TestRingRandomizedAgainstReference drives the ring with a seeded random
// push/pop mix and cross-checks every observable against a slice model.
func TestRingRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var r pqRing
	var ref []int
	next := 0
	var popped []pendingQuery
	for op := 0; op < 20000; op++ {
		if rng.Intn(2) == 0 {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				r.push(pendingQuery{q: sim.Query{ID: next}})
				ref = append(ref, next)
				next++
			}
		} else {
			k := rng.Intn(6)
			popped = r.popInto(popped[:0], k)
			if k > len(ref) {
				k = len(ref)
			}
			if len(popped) != k {
				t.Fatalf("op %d: popped %d, want %d", op, len(popped), k)
			}
			for i, pq := range popped {
				if pq.q.ID != ref[i] {
					t.Fatalf("op %d: pop order %d = %d, want %d", op, i, pq.q.ID, ref[i])
				}
			}
			ref = ref[k:]
		}
		if r.len() != len(ref) {
			t.Fatalf("op %d: len %d, want %d", op, r.len(), len(ref))
		}
	}
}

// TestRingConcurrentProducerConsumer exercises the ring under its real
// locking discipline with -race: one producer pushes a sequence while a
// consumer pops batches, and the consumer must observe a contiguous,
// strictly FIFO sequence with nothing lost or duplicated.
func TestRingConcurrentProducerConsumer(t *testing.T) {
	const total = 50000
	var (
		mu   sync.Mutex
		cond = sync.NewCond(&mu)
		r    pqRing
		done bool
	)
	go func() {
		for i := 0; i < total; i++ {
			mu.Lock()
			r.push(pendingQuery{q: sim.Query{ID: i}})
			cond.Signal()
			mu.Unlock()
		}
		mu.Lock()
		done = true
		cond.Signal()
		mu.Unlock()
	}()
	var scratch []pendingQuery
	want := 0
	for {
		mu.Lock()
		for r.len() == 0 && !done {
			cond.Wait()
		}
		if r.len() == 0 && done {
			mu.Unlock()
			break
		}
		scratch = r.popInto(scratch[:0], 8)
		mu.Unlock()
		for _, pq := range scratch {
			if pq.q.ID != want {
				t.Fatalf("consumed %d, want %d", pq.q.ID, want)
			}
			want++
		}
	}
	if want != total {
		t.Fatalf("consumed %d queries, want %d", want, total)
	}
}

// TestFrontendConcurrentHammer is the end-to-end race check of the queue
// path: many client goroutines issue blocking queries through the full
// enqueue → ring → dispatch → worker stack while Stop races the tail of
// the load. Every query must be answered exactly once (a response or an
// enqueue rejection, never neither — Do blocking forever would hang the
// test), and after Stop the outstanding count must return to zero.
func TestFrontendConcurrentHammer(t *testing.T) {
	const timeScale = 2000.0
	const clients = 16
	const perClient = 40
	urls := startWorkers(t, 2, sim.Deterministic{}, timeScale)
	f := &Frontend{
		Profiles:  profile.ImageSet(),
		SLO:       0.150,
		TimeScale: timeScale,
		Workers:   urls,
		Select:    fixedSelector("shufflenet_v2_x0_5"),
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	var served, rejected [clients]int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, eerr := f.Do("")
				if eerr != nil {
					rejected[c]++
					continue
				}
				if resp.Model == "" || resp.Batch < 1 {
					t.Errorf("client %d: malformed response %+v", c, resp)
				}
				served[c]++
			}
		}(c)
	}
	// Stop while the last clients are still in flight: enqueue must either
	// reject cleanly or the queued query must still be drained and served.
	time.Sleep(50 * time.Millisecond)
	_ = f.Stop()
	wg.Wait()
	totalServed, totalRejected := 0, 0
	for c := 0; c < clients; c++ {
		totalServed += served[c]
		totalRejected += rejected[c]
	}
	if totalServed+totalRejected != clients*perClient {
		t.Fatalf("answered %d+%d queries, want %d", totalServed, totalRejected, clients*perClient)
	}
	if totalServed == 0 {
		t.Fatal("no query was served before Stop")
	}
	if got := f.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after Stop, want 0", got)
	}
	if st := f.Stats(); st.Served != totalServed {
		t.Fatalf("stats served %d, clients saw %d responses", st.Served, totalServed)
	}
}
