// Package trace provides query-load traces and arrival-time sampling for the
// workload generator. The paper evaluates on a 24-hour Twitter streaming
// trace scaled to five minutes (query load 1,617-3,905 QPS over ten-second
// intervals, 554,395 sampled queries) plus 30-second constant-load traces.
// The published trace is a list of average QPS per fixed interval; query
// arrival times are sampled from it under a stochastic inter-arrival pattern
// (Poisson in the paper's experiments).
//
// Since the archived Twitter capture is not redistributable here, Twitter()
// synthesizes a deterministic trace with the same published characteristics:
// the same QPS range, a diurnal profile, and unexpected spikes.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"ramsis/internal/dist"
)

// Trace is a query-load trace: QPS[i] is the average query arrival rate
// during the i-th interval of IntervalSec seconds.
type Trace struct {
	Name        string
	IntervalSec float64
	QPS         []float64
}

// Duration returns the total trace duration in seconds.
func (t Trace) Duration() float64 { return float64(len(t.QPS)) * t.IntervalSec }

// MinQPS returns the smallest interval load.
func (t Trace) MinQPS() float64 {
	min := math.Inf(1)
	for _, q := range t.QPS {
		min = math.Min(min, q)
	}
	return min
}

// MaxQPS returns the largest interval load.
func (t Trace) MaxQPS() float64 {
	max := math.Inf(-1)
	for _, q := range t.QPS {
		max = math.Max(max, q)
	}
	return max
}

// MeanQPS returns the time-average load.
func (t Trace) MeanQPS() float64 {
	if len(t.QPS) == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range t.QPS {
		sum += q
	}
	return sum / float64(len(t.QPS))
}

// Scale returns a copy with every interval load multiplied by f.
func (t Trace) Scale(f float64) Trace {
	out := Trace{Name: t.Name, IntervalSec: t.IntervalSec, QPS: make([]float64, len(t.QPS))}
	for i, q := range t.QPS {
		out.QPS[i] = q * f
	}
	return out
}

// Truncate returns a copy covering only the first dur seconds.
func (t Trace) Truncate(dur float64) Trace {
	n := int(math.Ceil(dur / t.IntervalSec))
	if n > len(t.QPS) {
		n = len(t.QPS)
	}
	return Trace{Name: t.Name, IntervalSec: t.IntervalSec, QPS: append([]float64(nil), t.QPS[:n]...)}
}

// QPSAt returns the trace load at time tsec (clamped to the trace range).
func (t Trace) QPSAt(tsec float64) float64 {
	if len(t.QPS) == 0 {
		return 0
	}
	i := int(tsec / t.IntervalSec)
	if i < 0 {
		i = 0
	}
	if i >= len(t.QPS) {
		i = len(t.QPS) - 1
	}
	return t.QPS[i]
}

// Constant returns a constant-load trace of the given duration, the workload
// of §7.2 (30-second constant query load under Poisson arrivals).
func Constant(qps, durationSec float64) Trace {
	n := int(math.Ceil(durationSec / 10))
	if n < 1 {
		n = 1
	}
	qs := make([]float64, n)
	for i := range qs {
		qs[i] = qps
	}
	return Trace{Name: fmt.Sprintf("constant-%g", qps), IntervalSec: 10, QPS: qs}
}

// Step returns a trace that runs at baseQPS, steps to stepQPS on
// [stepAtSec, stepEndSec), and returns to baseQPS until durationSec — the
// sustained-drift scenario the adaptation loop exists for (one-second
// intervals, so step edges land where asked).
func Step(baseQPS, stepQPS, stepAtSec, stepEndSec, durationSec float64) Trace {
	n := int(math.Ceil(durationSec))
	if n < 1 {
		n = 1
	}
	qs := make([]float64, n)
	for i := range qs {
		t := float64(i)
		if t >= stepAtSec && t < stepEndSec {
			qs[i] = stepQPS
		} else {
			qs[i] = baseQPS
		}
	}
	return Trace{Name: fmt.Sprintf("step-%g-%g", baseQPS, stepQPS), IntervalSec: 1, QPS: qs}
}

// twitterSpikes places the trace's "unexpected spikes in query load" [38,54]
// at fixed interval offsets so the trace is reproducible.
var twitterSpikes = map[int]float64{
	4: 1.22, 11: 1.35, 12: 1.18, 19: 0.78, 23: 1.30, 27: 1.15,
}

// Twitter synthesizes the 5-minute production trace of §7: thirty
// ten-second intervals whose loads span 1,617-3,905 QPS with a diurnal
// profile (the 24-hour capture compressed to five minutes) and intermittent
// spikes. The mean load is calibrated to ~1,848 QPS so that a Poisson
// arrival sample totals ~554,395 queries as the paper reports. The result
// is deterministic.
func Twitter() Trace {
	const n = 30
	const lo, hi = 1617.0, 3905.0
	const meanTarget = 554395.0 / 300 // published query count over 5 min

	// Raw diurnal shape with spikes, normalized to [0, 1].
	raw := make([]float64, n)
	for i := 0; i < n; i++ {
		phase := 2 * math.Pi * (float64(i)/n - 0.65)
		raw[i] = (1 + math.Cos(phase)) / 2
		if f, ok := twitterSpikes[i]; ok {
			raw[i] = math.Min(raw[i]*f, 1)
		}
	}
	minR, maxR := math.Inf(1), math.Inf(-1)
	for _, r := range raw {
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	for i, r := range raw {
		raw[i] = (r - minR) / (maxR - minR)
	}

	// q_i = lo + (hi-lo)·raw_i^gamma pins the extremes; solve gamma by
	// bisection so the mean load hits the published total query count.
	meanFor := func(gamma float64) float64 {
		sum := 0.0
		for _, r := range raw {
			sum += lo + (hi-lo)*math.Pow(r, gamma)
		}
		return sum / n
	}
	loG, hiG := 0.05, 50.0
	for it := 0; it < 200; it++ {
		mid := (loG + hiG) / 2
		if meanFor(mid) > meanTarget {
			loG = mid // larger gamma lowers the mean
		} else {
			hiG = mid
		}
	}
	gamma := (loG + hiG) / 2
	qs := make([]float64, n)
	for i, r := range raw {
		qs[i] = math.Round(lo + (hi-lo)*math.Pow(r, gamma))
	}
	return Trace{Name: "twitter", IntervalSec: 10, QPS: qs}
}

// Arrivals samples query arrival times (seconds from trace start) from the
// trace under the given inter-arrival pattern, deterministically for a seed.
// Within each interval, inter-arrival times are drawn from the sampler
// family scaled to the interval's load; this reproduces the paper's
// workload generator, which samples Poisson arrival times per logged load.
// The family is selected by newSampler(rate); use PoissonArrivals or
// GammaArrivals for the common cases.
func Arrivals(t Trace, seed int64, newSampler func(rate float64) dist.Sampler) []float64 {
	rng := rand.New(rand.NewSource(seed))
	var out []float64
	now := 0.0
	for i, qps := range t.QPS {
		end := float64(i+1) * t.IntervalSec
		if qps <= 0 {
			now = end
			continue
		}
		s := newSampler(qps)
		if now < float64(i)*t.IntervalSec {
			now = float64(i) * t.IntervalSec
		}
		for {
			now += s.NextInterarrival(rng)
			if now >= end {
				break
			}
			out = append(out, now)
		}
	}
	return out
}

// PoissonArrivals samples arrival times under Poisson inter-arrivals.
func PoissonArrivals(t Trace, seed int64) []float64 {
	return Arrivals(t, seed, func(rate float64) dist.Sampler { return dist.NewPoisson(rate) })
}

// GammaArrivals samples arrival times under Erlang(shape) inter-arrivals.
func GammaArrivals(t Trace, seed int64, shape int) []float64 {
	return Arrivals(t, seed, func(rate float64) dist.Sampler { return dist.NewGamma(rate, shape) })
}
