// Package baselines implements the state-of-the-art load-granular MS&S
// schemes RAMSIS is evaluated against (§7 "Baseline MS&S Policies"):
// Jellyfish+ [32], ModelSwitching [57] (including its offline
// response-latency profiling), the INFaaS adaptation of Appendix H, and the
// greedy deadline-aware selector of §8 (MDInference/ALERT-style). All share
// the central-queue, eager-worker, adaptive-batching execution model the
// paper describes.
package baselines

import (
	"math"

	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/stats"
	"ramsis/internal/trace"
)

// adaptiveMaxBatch returns the adaptive-batching cap [7] used by both
// baselines: the largest batch whose inference latency stays within half the
// SLO, anticipating worst-case central-queue wait (§7, Jellyfish+).
func adaptiveMaxBatch(p profile.Profile, slo float64) int {
	if b := p.MaxBatchWithin(slo / 2); b > 0 {
		return b
	}
	return 1
}

// centralPick implements the shared eager central-queue dispatch.
func centralPick(e *sim.Engine, model int, slo float64) (sim.Decision, bool) {
	n := e.CentralLen()
	if n == 0 {
		return sim.Decision{}, false
	}
	b := adaptiveMaxBatch(e.Profiles.Profiles[model], slo)
	if b > n {
		b = n
	}
	return sim.Decision{Model: model, Queries: e.PopCentral(b)}, true
}

// JellyfishPlus extends Jellyfish [32] with multi-worker load balancing:
// given an anticipated load it selects the most accurate model whose
// aggregate average throughput exceeds the load and whose inference latency
// stays below half the latency SLO.
type JellyfishPlus struct {
	Profiles profile.Set
	SLO      float64
	Workers  int
	Monitor  monitor.Monitor

	lastLoad float64
	lastPick int
	havePick bool
}

// Route enqueues centrally and feeds the load monitor.
func (j *JellyfishPlus) Route(e *sim.Engine, now float64, q sim.Query) {
	j.Monitor.Observe(now)
	e.EnqueueCentral(q)
}

// ModelFor returns the Jellyfish+ selection for a load.
func (j *JellyfishPlus) ModelFor(load float64) int {
	best, bestAcc := -1, math.Inf(-1)
	for i, p := range j.Profiles.Profiles {
		if p.BatchLatency(1) > j.SLO/2 {
			continue
		}
		tput := float64(j.Workers) * p.ThroughputWithin(j.SLO/2)
		if tput < load {
			continue
		}
		if p.Accuracy > bestAcc {
			best, bestAcc = i, p.Accuracy
		}
	}
	if best < 0 {
		best = fastestIndex(j.Profiles)
	}
	return best
}

// Pick serves a batch with the load-selected model.
func (j *JellyfishPlus) Pick(e *sim.Engine, now float64, _ int) (sim.Decision, bool) {
	load := j.Monitor.Load(now)
	if !j.havePick || load != j.lastLoad {
		j.lastPick = j.ModelFor(load)
		j.lastLoad, j.havePick = load, true
	}
	return centralPick(e, j.lastPick, j.SLO)
}

// MSTable is ModelSwitching's offline profile: the p99 response latency of
// every model under every anticipated load on the evaluated resource
// configuration (§7: 400-4000 QPS on 20-100 workers).
type MSTable struct {
	Loads []float64   // ascending load rungs (QPS)
	P99   [][]float64 // [model][rung] p99 response latency (seconds)
}

// ProfileModelSwitching measures each model's response latency under each
// load rung by running the fixed-model scheduler for dur seconds, exactly
// the offline step §7 describes.
func ProfileModelSwitching(profiles profile.Set, slo float64, workers int, loads []float64, dur float64, seed int64) *MSTable {
	t := &MSTable{Loads: append([]float64(nil), loads...)}
	t.P99 = make([][]float64, profiles.Len())
	for mi := range profiles.Profiles {
		t.P99[mi] = make([]float64, len(loads))
		for li, load := range loads {
			p := profiles.Profiles[mi]
			// Loads beyond the model's aggregate throughput diverge; record
			// +Inf without simulating the pile-up.
			if float64(workers)*p.Throughput() < load {
				t.P99[mi][li] = math.Inf(1)
				continue
			}
			sched := &sim.FixedModel{Model: mi, MaxBatch: adaptiveMaxBatch(p, slo)}
			e := sim.NewEngine(profiles, slo, workers, sim.Deterministic{}, sched, seed+int64(mi*1000+li))
			e.CollectLatencies = true
			arr := trace.PoissonArrivals(trace.Constant(load, dur), seed+int64(li))
			m := e.Run(arr)
			t.P99[mi][li] = stats.Percentile(m.Latencies, 99)
		}
	}
	return t
}

// P99For returns the profiled p99 at the smallest rung covering the load
// (conservative), or +Inf when the load exceeds the profiled range.
func (t *MSTable) P99For(model int, load float64) float64 {
	for li, l := range t.Loads {
		if l >= load {
			return t.P99[model][li]
		}
	}
	return math.Inf(1)
}

// ModelSwitching [57] selects the most accurate model whose profiled p99
// response latency under the anticipated load is below the latency SLO.
type ModelSwitching struct {
	Profiles profile.Set
	SLO      float64
	Monitor  monitor.Monitor
	Table    *MSTable

	lastLoad float64
	lastPick int
	havePick bool
}

// Route enqueues centrally and feeds the load monitor.
func (m *ModelSwitching) Route(e *sim.Engine, now float64, q sim.Query) {
	m.Monitor.Observe(now)
	e.EnqueueCentral(q)
}

// ModelFor returns the ModelSwitching selection for a load.
func (m *ModelSwitching) ModelFor(load float64) int {
	best, bestAcc := -1, math.Inf(-1)
	for i, p := range m.Profiles.Profiles {
		if m.Table.P99For(i, load) > m.SLO {
			continue
		}
		if p.Accuracy > bestAcc {
			best, bestAcc = i, p.Accuracy
		}
	}
	if best < 0 {
		best = fastestIndex(m.Profiles)
	}
	return best
}

// Pick serves a batch with the load-selected model.
func (m *ModelSwitching) Pick(e *sim.Engine, now float64, _ int) (sim.Decision, bool) {
	load := m.Monitor.Load(now)
	if !m.havePick || load != m.lastLoad {
		m.lastPick = m.ModelFor(load)
		m.lastLoad, m.havePick = load, true
	}
	return centralPick(e, m.lastPick, m.SLO)
}

// Greedy is the deadline-greedy selector of §8 (MDInference [33] /
// ALERT [48] style): it picks the most accurate model that can serve the
// currently queued queries before the earliest deadline, ignoring future
// arrivals — which §8 argues is insufficient under stochastic inter-arrival
// patterns.
type Greedy struct {
	Profiles profile.Set
	SLO      float64
}

// Route enqueues centrally.
func (g *Greedy) Route(e *sim.Engine, _ float64, q sim.Query) { e.EnqueueCentral(q) }

// Pick chooses the most accurate model meeting the earliest deadline for
// the whole queue (falling back to the fastest model when none can).
func (g *Greedy) Pick(e *sim.Engine, now float64, _ int) (sim.Decision, bool) {
	n := e.CentralLen()
	if n == 0 {
		return sim.Decision{}, false
	}
	head, _ := e.EarliestCentral()
	slack := head.Deadline(e.SLO) - now
	best, bestAcc := -1, math.Inf(-1)
	for i, p := range g.Profiles.Profiles {
		b := n
		if mb := p.MaxBatch(); b > mb {
			b = mb
		}
		if p.BatchLatency(b) <= slack && p.Accuracy > bestAcc {
			best, bestAcc = i, p.Accuracy
		}
	}
	if best < 0 {
		best = fastestIndex(g.Profiles)
	}
	b := n
	if mb := g.Profiles.Profiles[best].MaxBatch(); b > mb {
		b = mb
	}
	return sim.Decision{Model: best, Queries: e.PopCentral(b)}, true
}

// INFaaSAdapted is the Appendix H adaptation of INFaaS [38]: given an
// accuracy SLO it selects the lowest-latency (lowest-cost) model meeting
// the accuracy target that can sustain the anticipated load within the
// latency SLO — the objective inversion that makes INFaaS minimize rather
// than maximize accuracy.
type INFaaSAdapted struct {
	Profiles  profile.Set
	SLO       float64
	Workers   int
	Monitor   monitor.Monitor
	AccTarget float64
}

// Route enqueues centrally and feeds the load monitor.
func (f *INFaaSAdapted) Route(e *sim.Engine, now float64, q sim.Query) {
	f.Monitor.Observe(now)
	e.EnqueueCentral(q)
}

// ModelFor returns the INFaaS-style selection for a load.
func (f *INFaaSAdapted) ModelFor(load float64) int {
	best := -1
	bestLat := math.Inf(1)
	for i, p := range f.Profiles.Profiles {
		if p.Accuracy < f.AccTarget {
			continue
		}
		if p.BatchLatency(1) > f.SLO/2 {
			continue
		}
		if float64(f.Workers)*p.ThroughputWithin(f.SLO/2) < load {
			continue
		}
		if l := p.BatchLatency(1); l < bestLat {
			best, bestLat = i, l
		}
	}
	if best < 0 {
		best = fastestIndex(f.Profiles)
	}
	return best
}

// Pick serves a batch with the selected model.
func (f *INFaaSAdapted) Pick(e *sim.Engine, now float64, _ int) (sim.Decision, bool) {
	return centralPick(e, f.ModelFor(f.Monitor.Load(now)), f.SLO)
}

func fastestIndex(s profile.Set) int {
	best, bestLat := 0, math.Inf(1)
	for i, p := range s.Profiles {
		if l := p.BatchLatency(1); l < bestLat {
			best, bestLat = i, l
		}
	}
	return best
}
