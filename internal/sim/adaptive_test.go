package sim

import (
	"testing"

	"ramsis/internal/adapt"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// adaptiveBase is the generation problem for the adaptation tests: the
// 3-model ablation set keeps inline re-solves fast.
func adaptiveBase() core.Config {
	return core.Config{
		Models:   profile.AblationImageSet(),
		SLO:      0.150,
		Workers:  4,
		Arrival:  dist.NewPoisson(20), // replaced per bucket
		D:        20,
		MaxQueue: 16,
	}
}

func adaptiveFixture(t *testing.T, cfg adapt.Config) *adapt.Adapter {
	t.Helper()
	base := adaptiveBase()
	base.Arrival = dist.NewPoisson(20)
	initial, err := core.Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Base = adaptiveBase()
	a, err := adapt.New(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAdaptiveRecoversFromRateStep is the adaptation scenario the subsystem
// exists for: the arrival rate steps 20 -> 200 -> 20 QPS mid-run. The
// static scheduler keeps serving with the policy solved for 20 QPS and
// loses SLO attainment during the high phase (measured: 11.8 % violations
// — its policy stays optimistic about lulls that no longer come); the
// adaptive scheduler detects the sustained drift after the 1 s dwell,
// re-solves at 200 QPS, hot-swaps, and recovers to ~3.5 % violations
// (the load-matched policy alone measures 1.8 %; the remainder is the one
// dwell second served on the stale policy). When the rate steps back, the
// swap is a cache hit — the counter proves the solve was skipped.
func TestAdaptiveRecoversFromRateStep(t *testing.T) {
	const slo, workers = 0.150, 4
	models := profile.AblationImageSet()
	tr := trace.Step(20, 200, 10, 20, 30)
	arr := trace.PoissonArrivals(tr, 7)

	// Static baseline: the 20 QPS policy with a monitor that, like any
	// monitor trained on the pre-step regime, keeps anticipating 20 QPS.
	base := adaptiveBase()
	staticSet := core.NewPolicySet(base, nil)
	if err := staticSet.GenerateLoads([]float64{20}); err != nil {
		t.Fatal(err)
	}
	static := NewRAMSIS(staticSet, monitor.Oracle{Trace: trace.Constant(20, 30)})
	eS := NewEngine(models, slo, workers, Deterministic{}, static, 1)
	mS := eS.Run(arr)

	// Adaptive: same initial policy, drift detector on the monitored rate
	// (§7.2 perfect-predictor monitor: the margin below measures the policy
	// swap, not monitor noise).
	a := adaptiveFixture(t, adapt.Config{Band: 0.2, Dwell: 1, BucketSize: 20})
	sched := NewAdaptiveRAMSIS(a, monitor.Oracle{Trace: tr})
	eA := NewEngine(models, slo, workers, Deterministic{}, sched, 1)
	mA := eA.Run(arr)

	if mS.Served != len(arr) || mA.Served != len(arr) {
		t.Fatalf("served static=%d adaptive=%d of %d", mS.Served, mA.Served, len(arr))
	}
	t.Logf("static:   violations %.4f accuracy %.4f", mS.ViolationRate(), mS.AccuracyPerSatisfiedQuery())
	t.Logf("adaptive: violations %.4f accuracy %.4f", mA.ViolationRate(), mA.AccuracyPerSatisfiedQuery())
	t.Logf("stats: %+v", a.Stats())

	s := a.Stats()
	if s.Resolves != 1 {
		t.Errorf("resolves = %d, want exactly 1 (the step up; the step back must be a cache hit)", s.Resolves)
	}
	// The forward-leg re-solve (20 -> 200) warm-starts from the cached
	// 20-QPS policy's converged values and must beat the cold solve of the
	// same 200-QPS problem on iteration count.
	if s.WarmStarts != 1 {
		t.Errorf("warm starts = %d, want 1 (the forward leg seeds off the initial bucket)", s.WarmStarts)
	}
	coldCfg := adaptiveBase()
	coldCfg.Arrival = dist.NewPoisson(200)
	cold, err := core.Generate(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.LastResolveIterations == 0 || s.LastResolveIterations >= uint64(cold.Iterations) {
		t.Errorf("warm-started forward-leg resolve took %d iterations, cold solve %d — want strictly fewer",
			s.LastResolveIterations, cold.Iterations)
	}
	if s.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1: returning to the original rate must skip the solve", s.CacheHits)
	}
	if s.Swaps != 2 {
		t.Errorf("swaps = %d, want 2 (up and back)", s.Swaps)
	}
	if s.ActiveBucket != 20 {
		t.Errorf("active bucket %v after the trace returned to 20 QPS", s.ActiveBucket)
	}
	// The documented margin: static loses >= 5 percentage points of SLO
	// attainment to the step that adaptation wins back (measured gap is
	// ~9 points; 5 leaves room for arrival-sampling variation).
	if gap := mS.ViolationRate() - mA.ViolationRate(); gap < 0.05 {
		t.Errorf("adaptive recovered only %.4f violation rate over static (%.4f vs %.4f), want >= 0.05",
			gap, mA.ViolationRate(), mS.ViolationRate())
	}
	if vr := mA.ViolationRate(); vr > 0.05 {
		t.Errorf("adaptive violation rate %.4f above 5%% despite load-matched policies", vr)
	}
}

// TestAdaptiveWithMovingAverageMonitor runs the same step under the paper's
// real 500 ms moving-average monitor instead of the oracle: estimates are
// noisy (±30 % at 20 QPS), so this is the integration proof that the
// hysteresis band and dwell absorb monitor noise while still adapting to
// the genuine step. Counter assertions are correspondingly looser than the
// oracle test's: noise may legitimately fire a mid-ramp re-solve.
func TestAdaptiveWithMovingAverageMonitor(t *testing.T) {
	const slo, workers = 0.150, 4
	models := profile.AblationImageSet()
	tr := trace.Step(20, 200, 10, 20, 30)
	arr := trace.PoissonArrivals(tr, 7)

	base := adaptiveBase()
	staticSet := core.NewPolicySet(base, nil)
	if err := staticSet.GenerateLoads([]float64{20}); err != nil {
		t.Fatal(err)
	}
	static := NewRAMSIS(staticSet, monitor.Oracle{Trace: trace.Constant(20, 30)})
	eS := NewEngine(models, slo, workers, Deterministic{}, static, 1)
	mS := eS.Run(arr)

	a := adaptiveFixture(t, adapt.Config{Band: 0.3, Dwell: 1, BucketSize: 20})
	sched := NewAdaptiveRAMSIS(a, monitor.NewMovingAverage(0.5))
	eA := NewEngine(models, slo, workers, Deterministic{}, sched, 1)
	mA := eA.Run(arr)

	if mA.Served != len(arr) {
		t.Fatalf("served %d of %d", mA.Served, len(arr))
	}
	s := a.Stats()
	t.Logf("static %.4f adaptive %.4f stats %+v", mS.ViolationRate(), mA.ViolationRate(), s)
	if s.ResolveErrors != 0 {
		t.Errorf("resolve errors: %+v", s)
	}
	if s.Swaps < 2 {
		t.Errorf("swaps = %d, want >= 2 (step up and back)", s.Swaps)
	}
	if s.Resolves > 3 {
		t.Errorf("resolves = %d; hysteresis should bound noise-driven solves", s.Resolves)
	}
	if mA.ViolationRate() >= mS.ViolationRate() {
		t.Errorf("adaptive violation rate %.4f not below static %.4f under the real monitor",
			mA.ViolationRate(), mS.ViolationRate())
	}
}
