// Package mdp implements finite Markov Decision Processes and the exact
// solution methods RAMSIS uses for policy generation (§4.1): value
// iteration (the default), policy iteration (noted as an alternative), and
// power iteration over the induced Markov chain for the stationary state
// distribution underlying the §5.1 accuracy/violation expectations.
//
// The representation is deliberately sparse: worker MDPs concentrate
// transition mass on a small neighborhood of queue states, so each action
// stores only its non-negligible successor probabilities.
package mdp

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"
)

// Transition is one sparse entry of P_a(s, ·).
type Transition struct {
	Next int32   // successor state index
	P    float64 // transition probability
}

// Action is one action available in a state: an expected immediate reward
// and a sparse successor distribution. Label is an opaque caller tag (RAMSIS
// stores the (model, batch) action index there).
type Action struct {
	Label       int
	Reward      float64
	Transitions []Transition
}

// MDP is a finite MDP in sparse form: Actions[s] lists the valid actions in
// state s. Every state must have at least one action and every action's
// transition probabilities must sum to 1.
type MDP struct {
	Actions [][]Action
}

// NumStates returns |S|.
func (m *MDP) NumStates() int { return len(m.Actions) }

// NumTransitions returns the total sparse transition count, a measure of
// solve cost per sweep.
func (m *MDP) NumTransitions() int {
	n := 0
	for _, acts := range m.Actions {
		for _, a := range acts {
			n += len(a.Transitions)
		}
	}
	return n
}

// Validate checks structural soundness: non-empty action sets, successor
// indices in range, probabilities in [0,1] summing to 1 within tol.
func (m *MDP) Validate(tol float64) error {
	n := len(m.Actions)
	if n == 0 {
		return errors.New("mdp: no states")
	}
	for s, acts := range m.Actions {
		if len(acts) == 0 {
			return fmt.Errorf("mdp: state %d has no actions", s)
		}
		for ai, a := range acts {
			sum := 0.0
			for _, tr := range a.Transitions {
				if tr.Next < 0 || int(tr.Next) >= n {
					return fmt.Errorf("mdp: state %d action %d: successor %d out of range", s, ai, tr.Next)
				}
				if tr.P < -tol || tr.P > 1+tol || math.IsNaN(tr.P) {
					return fmt.Errorf("mdp: state %d action %d: probability %v invalid", s, ai, tr.P)
				}
				sum += tr.P
			}
			if math.Abs(sum-1) > tol {
				return fmt.Errorf("mdp: state %d action %d: probabilities sum to %v", s, ai, sum)
			}
		}
	}
	return nil
}

// Policy maps each state to the index (into MDP.Actions[s]) of its chosen
// action.
type Policy []int

// ErrDeadline reports that a solver hit its wall-clock deadline.
var ErrDeadline = errors.New("mdp: solve deadline exceeded")

// SolveOptions configure the iterative solvers. Zero values select the
// defaults noted per field.
type SolveOptions struct {
	// Gamma is the discount factor in (0, 1). Default 0.99.
	Gamma float64
	// Tol is the Bellman-residual stopping tolerance. Default 1e-9.
	Tol float64
	// MaxIter bounds iterations. Default 100000.
	MaxIter int
	// Deadline, when non-zero, aborts the solve with ErrDeadline once the
	// wall clock passes it (checked once per sweep).
	Deadline time.Time
	// Parallel is the goroutine count the Bellman sweep is partitioned
	// across (ValueIteration only). 0 uses GOMAXPROCS; 1 runs serially.
	// Every setting produces byte-identical values and policies: each
	// sweep reads only the previous iterate, so partitioning cannot change
	// any floating-point operation or its order within a state.
	Parallel int
	// InitialValues, when non-nil, warm-starts the solve from a previously
	// converged value vector instead of zeros (ValueIteration and
	// PolicyEvaluation). Its length must equal the MDP's state count. Warm
	// starts do not change the fixed point — only the iteration count to
	// reach it — so a re-solve seeded from a neighboring problem's values
	// (e.g. an adjacent rate bucket) converges in fewer sweeps.
	InitialValues []float64
	// Method selects the sweep strategy for Compiled.Solve: the default
	// synchronous Jacobi sweep (byte-pinned in float64) or asynchronous
	// prioritized value iteration (Gauss-Seidel in Bellman-residual order,
	// the fast-resolve path). The slice-form solvers ignore it.
	Method Method
	// Float32 runs Compiled.Solve's kernels in float32: roughly half the
	// memory traffic of the float64 sweep on the online/adaptive route.
	// The stopping tolerance is floored at a few float32 ULPs of the value
	// scale, and the resulting policy matches the float64 argmaxes
	// wherever actions are separated by more than that tolerance.
	Float32 bool
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Gamma == 0 {
		o.Gamma = 0.99
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100000
	}
	return o
}

// Result reports a solve: optimal (or evaluated) state values, the policy,
// and the iteration count used.
type Result struct {
	Values     []float64
	Policy     Policy
	Iterations int
}

// initialValues validates and applies a warm start into v (already zeroed).
func (o SolveOptions) initialValues(v []float64) error {
	if o.InitialValues == nil {
		return nil
	}
	if len(o.InitialValues) != len(v) {
		return fmt.Errorf("mdp: initial values length %d != states %d", len(o.InitialValues), len(v))
	}
	copy(v, o.InitialValues)
	return nil
}

// newSweepPool partitions states [0, n) across a persistent pool of workers
// goroutines, worker i owning the fixed range [i·n/W, (i+1)·n/W) for the
// whole solve. The returned sweep runs one barrier-synchronized pass over
// every chunk and combines the chunk residuals by max (order-independent,
// so collection order does not matter); stop releases the pool. With
// workers <= 1 the chunk runs inline and stop is a no-op. Both the slice
// and the compiled Bellman kernels share this pool.
func newSweepPool(workers, n int, chunk func(lo, hi int) float64) (sweep func() float64, stop func()) {
	if workers <= 1 || n == 0 {
		return func() float64 { return chunk(0, n) }, func() {}
	}
	tick := make(chan struct{})
	res := make(chan float64)
	for i := 0; i < workers; i++ {
		go func(lo, hi int) {
			for range tick {
				res <- chunk(lo, hi)
			}
		}(i*n/workers, (i+1)*n/workers)
	}
	sweep = func() float64 {
		for i := 0; i < workers; i++ {
			tick <- struct{}{}
		}
		residual := 0.0
		for i := 0; i < workers; i++ {
			if r := <-res; r > residual {
				residual = r
			}
		}
		return residual
	}
	return sweep, func() { close(tick) }
}

// ValueIteration solves the MDP by repeated synchronous Bellman optimality
// backups (Jacobi, double-buffered) until the residual drops below Tol,
// returning an optimal policy. This is the paper's solution method (§4.1).
//
// The sweep is partitioned across SolveOptions.Parallel goroutines: every
// state's backup reads only the previous iterate, so the partitioning is
// invisible to the arithmetic and the result is byte-identical for every
// worker count — the property the online re-solve path depends on (a policy
// must not change with the core count of the machine that solved it).
func ValueIteration(m *MDP, opts SolveOptions) (Result, error) {
	opts = opts.withDefaults()
	if opts.Gamma <= 0 || opts.Gamma >= 1 {
		return Result{}, fmt.Errorf("mdp: gamma %v outside (0,1)", opts.Gamma)
	}
	n := m.NumStates()
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	v := make([]float64, n)
	if err := opts.initialValues(v); err != nil {
		return Result{}, err
	}
	next := make([]float64, n)
	pol := make(Policy, n)

	// sweepChunk backs up states [lo, hi) from the previous iterate v into
	// next, recording the greedy action, and returns the chunk's residual.
	sweepChunk := func(lo, hi int) float64 {
		residual := 0.0
		for s := lo; s < hi; s++ {
			best := math.Inf(-1)
			bestA := 0
			for ai := range m.Actions[s] {
				a := &m.Actions[s][ai]
				q := a.Reward
				for _, tr := range a.Transitions {
					q += opts.Gamma * tr.P * v[tr.Next]
				}
				if q > best {
					best = q
					bestA = ai
				}
			}
			if d := math.Abs(best - v[s]); d > residual {
				residual = d
			}
			next[s] = best
			pol[s] = bestA
		}
		return residual
	}

	sweep, stop := newSweepPool(workers, n, sweepChunk)
	defer stop()

	it := 0
	for ; it < opts.MaxIter; it++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			return Result{Values: v, Policy: pol, Iterations: it}, ErrDeadline
		}
		residual := sweep()
		v, next = next, v
		if residual < opts.Tol {
			it++
			break
		}
	}
	return Result{Values: v, Policy: pol, Iterations: it}, nil
}

// PolicyEvaluation computes the discounted value of a fixed policy by
// iterative backups.
func PolicyEvaluation(m *MDP, pol Policy, opts SolveOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := m.NumStates()
	if len(pol) != n {
		return nil, fmt.Errorf("mdp: policy length %d != states %d", len(pol), n)
	}
	v := make([]float64, n)
	if err := opts.initialValues(v); err != nil {
		return nil, err
	}
	for it := 0; it < opts.MaxIter; it++ {
		residual := 0.0
		for s := 0; s < n; s++ {
			a := &m.Actions[s][pol[s]]
			q := a.Reward
			for _, tr := range a.Transitions {
				q += opts.Gamma * tr.P * v[tr.Next]
			}
			if d := math.Abs(q - v[s]); d > residual {
				residual = d
			}
			v[s] = q
		}
		if residual < opts.Tol {
			break
		}
	}
	return v, nil
}

// PolicyIteration solves the MDP by alternating evaluation and greedy
// improvement, the alternative exact method §4.1 mentions.
func PolicyIteration(m *MDP, opts SolveOptions) (Result, error) {
	opts = opts.withDefaults()
	n := m.NumStates()
	pol := make(Policy, n)
	var v []float64
	for it := 1; it <= opts.MaxIter; it++ {
		var err error
		v, err = PolicyEvaluation(m, pol, opts)
		if err != nil {
			return Result{}, err
		}
		changed := false
		for s := 0; s < n; s++ {
			best := math.Inf(-1)
			bestA := pol[s]
			for ai := range m.Actions[s] {
				a := &m.Actions[s][ai]
				q := a.Reward
				for _, tr := range a.Transitions {
					q += opts.Gamma * tr.P * v[tr.Next]
				}
				if q > best+1e-12 {
					best = q
					bestA = ai
				}
			}
			if bestA != pol[s] {
				pol[s] = bestA
				changed = true
			}
		}
		if !changed {
			return Result{Values: v, Policy: pol, Iterations: it}, nil
		}
	}
	return Result{Values: v, Policy: pol, Iterations: opts.MaxIter}, nil
}

// StationaryDistribution computes the stationary distribution of the Markov
// chain induced by the policy via power iteration [40] on the lazy chain
// (I+P)/2, which converges for unichain MDPs regardless of periodicity.
// RAMSIS uses it to compute the §5.1 expectations.
func StationaryDistribution(m *MDP, pol Policy, tol float64, maxIter int) ([]float64, error) {
	n := m.NumStates()
	if len(pol) != n {
		return nil, fmt.Errorf("mdp: policy length %d != states %d", len(pol), n)
	}
	if tol == 0 {
		tol = 1e-12
	}
	if maxIter == 0 {
		maxIter = 200000
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		for i := range next {
			next[i] = 0.5 * x[i] // lazy self-loop half
		}
		for s := 0; s < n; s++ {
			a := &m.Actions[s][pol[s]]
			w := 0.5 * x[s]
			for _, tr := range a.Transitions {
				next[tr.Next] += w * tr.P
			}
		}
		// Renormalize to absorb pruned probability mass drift.
		sum := 0.0
		for _, p := range next {
			sum += p
		}
		diff := 0.0
		for i := range next {
			next[i] /= sum
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < tol {
			break
		}
	}
	return x, nil
}
