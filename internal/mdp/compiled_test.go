package mdp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// compiledFixtures is the table the equivalence tests sweep: hand-built and
// random MDPs covering degenerate sizes, state counts that don't divide the
// partition count, and varying action fan-out.
func compiledFixtures() map[string]*MDP {
	rng := rand.New(rand.NewSource(42))
	return map[string]*MDP{
		"twoStateChain": twoStateChain(),
		"single":        randomMDP(rng, 1, 2, 1),
		"small":         randomMDP(rng, 23, 3, 5),
		"medium":        randomMDP(rng, 157, 4, 8),
	}
}

func sameValues(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for s := range want {
		if math.Float64bits(got[s]) != math.Float64bits(want[s]) {
			t.Fatalf("%s: V(%d) = %v differs from slice form %v", name, s, got[s], want[s])
		}
	}
}

func samePolicy(t *testing.T, name string, got, want Policy) {
	t.Helper()
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("%s: policy[%d] = %d differs from slice form %d", name, s, got[s], want[s])
		}
	}
}

// TestCompiledValueIterationByteIdentical pins the tentpole contract: the
// compiled kernel performs the same floating-point operations in the same
// order as the slice kernel, so values and policies match bit for bit — for
// serial and partitioned sweeps, cold and warm starts.
func TestCompiledValueIterationByteIdentical(t *testing.T) {
	for name, m := range compiledFixtures() {
		c := Compile(m)
		for _, workers := range []int{1, 3, 8} {
			opts := SolveOptions{Gamma: 0.95, Tol: 1e-10, Parallel: workers}
			want, err := ValueIteration(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.ValueIteration(opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != want.Iterations {
				t.Errorf("%s workers=%d: %d iterations, slice form took %d", name, workers, got.Iterations, want.Iterations)
			}
			sameValues(t, name, got.Values, want.Values)
			samePolicy(t, name, got.Policy, want.Policy)

			// Warm starts must also be byte-identical between forms.
			warm := opts
			warm.InitialValues = want.Values
			wantW, err := ValueIteration(m, warm)
			if err != nil {
				t.Fatal(err)
			}
			gotW, err := c.ValueIteration(warm)
			if err != nil {
				t.Fatal(err)
			}
			if gotW.Iterations != wantW.Iterations {
				t.Errorf("%s workers=%d warm: %d iterations, slice form took %d", name, workers, gotW.Iterations, wantW.Iterations)
			}
			sameValues(t, name+" warm", gotW.Values, wantW.Values)
			samePolicy(t, name+" warm", gotW.Policy, wantW.Policy)
		}
	}
}

func TestCompiledPolicyEvaluationByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, m := range compiledFixtures() {
		c := Compile(m)
		pol := make(Policy, m.NumStates())
		for s := range pol {
			pol[s] = rng.Intn(len(m.Actions[s]))
		}
		opts := SolveOptions{Gamma: 0.9, Tol: 1e-12}
		want, err := PolicyEvaluation(m, pol, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.PolicyEvaluation(pol, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameValues(t, name, got, want)
	}
}

func TestCompiledPolicyIterationByteIdentical(t *testing.T) {
	for name, m := range compiledFixtures() {
		c := Compile(m)
		opts := SolveOptions{Gamma: 0.95, Tol: 1e-12}
		want, err := PolicyIteration(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.PolicyIteration(opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Iterations != want.Iterations {
			t.Errorf("%s: %d iterations, slice form took %d", name, got.Iterations, want.Iterations)
		}
		sameValues(t, name, got.Values, want.Values)
		samePolicy(t, name, got.Policy, want.Policy)
	}
}

func TestCompiledStationaryDistributionByteIdentical(t *testing.T) {
	for name, m := range compiledFixtures() {
		c := Compile(m)
		pol := make(Policy, m.NumStates())
		want, err := StationaryDistribution(m, pol, 1e-13, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.StationaryDistribution(pol, 1e-13, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameValues(t, name, got, want)
	}
}

func TestCompileShapes(t *testing.T) {
	m := twoStateChain()
	c := Compile(m)
	if c.NumStates() != m.NumStates() {
		t.Errorf("NumStates = %d, want %d", c.NumStates(), m.NumStates())
	}
	if c.NumTransitions() != m.NumTransitions() {
		t.Errorf("NumTransitions = %d, want %d", c.NumTransitions(), m.NumTransitions())
	}
	if c.NumActions() != 3 {
		t.Errorf("NumActions = %d, want 3", c.NumActions())
	}
	if c.Label(0, 1) != 1 || c.Label(1, 0) != 0 {
		t.Errorf("labels not preserved: (0,1)=%d (1,0)=%d", c.Label(0, 1), c.Label(1, 0))
	}
}

// TestWarmStartConvergesFaster asserts the warm-start contract: seeding the
// solve with an already (or nearly) converged vector reaches the same fixed
// point in no more iterations than the cold solve — and from the exact fixed
// point, in a single verification sweep.
func TestWarmStartConvergesFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMDP(rng, 80, 4, 6)
	c := Compile(m)
	opts := SolveOptions{Gamma: 0.97, Tol: 1e-10}
	cold, err := c.ValueIteration(opts)
	if err != nil {
		t.Fatal(err)
	}

	// From the converged vector itself: one sweep confirms convergence.
	exact := opts
	exact.InitialValues = cold.Values
	res, err := c.ValueIteration(exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("warm start from the fixed point took %d iterations, want 1", res.Iterations)
	}
	samePolicy(t, "fixed-point warm start", res.Policy, cold.Policy)

	// From a perturbed neighborhood of the fixed point (a stand-in for an
	// adjacent rate bucket's values): fewer iterations, same fixed point.
	perturbed := make([]float64, len(cold.Values))
	for i, v := range cold.Values {
		perturbed[i] = v * (1 + 0.05*rng.Float64())
	}
	near := opts
	near.InitialValues = perturbed
	warm, err := c.ValueIteration(near)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d iterations, cold took %d — want strictly fewer", warm.Iterations, cold.Iterations)
	}
	samePolicy(t, "perturbed warm start", warm.Policy, cold.Policy)
	for s := range cold.Values {
		if math.Abs(warm.Values[s]-cold.Values[s]) > 1e-6 {
			t.Fatalf("warm fixed point V(%d) = %v drifted from cold %v", s, warm.Values[s], cold.Values[s])
		}
	}
}

func TestWarmStartLengthMismatchRejected(t *testing.T) {
	m := twoStateChain()
	c := Compile(m)
	bad := SolveOptions{Gamma: 0.9, InitialValues: []float64{1}}
	if _, err := ValueIteration(m, bad); err == nil {
		t.Error("slice ValueIteration accepted a mismatched warm start")
	}
	if _, err := c.ValueIteration(bad); err == nil {
		t.Error("compiled ValueIteration accepted a mismatched warm start")
	}
	if _, err := c.PolicyEvaluation(Policy{0, 0}, bad); err == nil {
		t.Error("compiled PolicyEvaluation accepted a mismatched warm start")
	}
}

func TestCompiledValueIterationDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Compile(randomMDP(rng, 200, 4, 8))
	_, err := c.ValueIteration(SolveOptions{
		Gamma:    0.999999,
		Tol:      1e-300, // unreachable: force the deadline path
		Deadline: time.Now().Add(5 * time.Millisecond),
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
