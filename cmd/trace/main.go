// Command trace inspects, generates, and converts query-load traces in the
// artifact's one-QPS-per-line format, and stitches distributed query-trace
// JSONL files into per-query critical paths:
//
//	trace --stats                      # stats of the built-in Twitter trace
//	trace --export twitter.txt        # write it in the artifact format
//	trace --stats --in mytrace.txt    # stats of an external trace
//	trace --arrivals out.txt --seed 3 # sample Poisson arrival times
//	trace --stitch a.jsonl,b.jsonl    # merge -trace-out files, print span trees
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ramsis/internal/stats"
	"ramsis/internal/telemetry"
	"ramsis/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace file (default: built-in Twitter trace)")
		interval = flag.Float64("interval", 10, "seconds per trace line")
		export   = flag.String("export", "", "write the trace in artifact format to this path")
		arrivals = flag.String("arrivals", "", "sample Poisson arrival times to this path")
		scale    = flag.Float64("scale", 1, "multiply every interval load")
		truncate = flag.Float64("truncate", 0, "keep only the first N seconds (0 = all)")
		seed     = flag.Int64("seed", 1, "arrival sampling seed")
		gamma    = flag.Int("gamma", 0, "sample Erlang-<shape> arrivals instead of Poisson (0 = Poisson)")
		stitch   = flag.String("stitch", "", "comma-separated -trace-out JSONL files: merge fragments, print per-query critical paths")
		top      = flag.Int("top", 10, "with -stitch, print only the N slowest queries (0 = all)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt   = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	if _, err := telemetry.SetupLogging(*logLevel, *logFmt, "trace"); err != nil {
		log.Fatal(err)
	}

	if *stitch != "" {
		if err := stitchFiles(os.Stdout, strings.Split(*stitch, ","), *top); err != nil {
			log.Fatal(err)
		}
		return
	}

	tr := trace.Twitter()
	if *in != "" {
		var err error
		tr, err = trace.LoadQPSFile(*in, *interval)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *scale != 1 {
		tr = tr.Scale(*scale)
	}
	if *truncate > 0 {
		tr = tr.Truncate(*truncate)
	}

	fmt.Printf("trace:    %s\n", tr.Name)
	fmt.Printf("duration: %.0f s (%d intervals of %.0f s)\n", tr.Duration(), len(tr.QPS), tr.IntervalSec)
	fmt.Printf("load:     min %.0f / mean %.1f / max %.0f QPS\n", tr.MinQPS(), tr.MeanQPS(), tr.MaxQPS())
	fmt.Printf("p50/p95:  %.0f / %.0f QPS\n", stats.Percentile(tr.QPS, 50), stats.Percentile(tr.QPS, 95))
	fmt.Printf("queries:  ~%.0f expected\n", tr.MeanQPS()*tr.Duration())

	if *export != "" {
		if err := tr.SaveQPSFile(*export); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported to %s\n", *export)
	}
	if *arrivals != "" {
		var arr []float64
		if *gamma > 1 {
			arr = trace.GammaArrivals(tr, *seed, *gamma)
		} else {
			arr = trace.PoissonArrivals(tr, *seed)
		}
		f, err := os.Create(*arrivals)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, a := range arr {
			fmt.Fprintf(w, "%.6f\n", a)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sampled %d arrival times to %s\n", len(arr), *arrivals)
	}
}

// stitchFiles merges multi-process -trace-out JSONL files, groups fragments
// by trace ID, and prints each query's span tree plus the critical-path
// stage breakdown — where the latency went: queueing, batch wait, dispatch,
// or inference.
func stitchFiles(w *os.File, paths []string, top int) error {
	var all []telemetry.QueryTrace
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		traces, err := telemetry.ReadTraces(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, traces...)
	}
	stitched := telemetry.Stitch(all)
	if len(stitched) == 0 {
		fmt.Fprintln(w, "no traceable fragments (files predate trace IDs?)")
		return nil
	}
	// Slowest end-to-end first: the queries worth explaining.
	for i := 1; i < len(stitched); i++ {
		for j := i; j > 0 && stitched[j].Final().LatencyMS > stitched[j-1].Final().LatencyMS; j-- {
			stitched[j], stitched[j-1] = stitched[j-1], stitched[j]
		}
	}
	n := len(stitched)
	if top > 0 && top < n {
		n = top
	}
	fmt.Fprintf(w, "%d fragments, %d stitched traces (showing %d slowest)\n\n", len(all), len(stitched), n)
	for _, s := range stitched[:n] {
		printStitched(w, s)
	}
	return nil
}

func printStitched(w *os.File, s telemetry.StitchedTrace) {
	final := s.Final()
	head := fmt.Sprintf("trace %s", s.TraceID)
	if t := s.Tenant(); t != "" {
		head += " tenant=" + t
	}
	fmt.Fprintf(w, "%s latency=%.1fms model=%s batch=%d\n", head, final.LatencyMS, final.Model, final.Batch)
	for i, f := range s.Path() {
		indent := strings.Repeat("  ", i)
		loc := f.Process
		if f.Worker >= 0 {
			loc += fmt.Sprintf(" (worker %d)", f.Worker)
		}
		fmt.Fprintf(w, "%s└─ %s", indent, loc)
		if f.Error != "" {
			fmt.Fprintf(w, " error=%q", f.Error)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  critical path:")
	for _, sp := range s.CriticalPath() {
		fmt.Fprintf(w, " %s=%.1fms", sp.Stage, sp.Seconds*1000)
	}
	fmt.Fprintln(w)
	if d := s.Decision(); d != nil {
		fmt.Fprintf(w, "  decision: kind=%s model=%s batch=%d queue=%d predicted=%.1fms realized=%.1fms outcome=%q\n",
			d.Kind, d.Model, d.Batch, d.QueueLen, d.PredictedSec*1000, d.RealizedSec*1000, d.Outcome)
	}
	fmt.Fprintln(w)
}
