GO ?= go

.PHONY: build test vet race verify bench profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The lb, serve, and telemetry packages are the concurrency-heavy ones
# (balancers, health tracker, per-worker queue locks, HTTP dispatch, the
# lock-free metrics registry); run them under the race detector. Their
# tests scale sleeps by TimeScale, so the race pass stays within a CI
# budget.
race:
	$(GO) test -race ./internal/lb/ ./internal/serve/ ./internal/telemetry/

# Tier-1 verify path (see ROADMAP.md).
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# CPU- and heap-profile the simulator throughput benchmark and print the
# top hotspots (profiles land in ./profiles for interactive pprof use).
profile:
	mkdir -p profiles
	$(GO) test -bench BenchmarkSimulatorThroughput -run '^$$' \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out -o profiles/bench.test .
	$(GO) tool pprof -top -nodecount 15 profiles/bench.test profiles/cpu.out
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space profiles/bench.test profiles/mem.out
