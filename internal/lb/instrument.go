package lb

import (
	"time"

	"ramsis/internal/telemetry"
)

// instrumented wraps a Balancer and observes every Pick's wall latency into
// a per-balancer histogram, so the routing hot path's cost (an atomic
// increment for RR, a full scan for JSQ, two RNG draws behind a mutex for
// P2C) is visible on /metrics instead of only in BenchmarkBalancerPick.
type instrumented struct {
	b Balancer
	h *telemetry.Histogram
}

// Instrumented wraps b so each Pick records its wall-clock duration into
// reg's ramsis_lb_pick_seconds{balancer=<name>} histogram. A nil registry
// returns b unchanged, so callers can wrap unconditionally.
func Instrumented(b Balancer, reg *telemetry.Registry) Balancer {
	if reg == nil {
		return b
	}
	return &instrumented{b: b, h: reg.Histogram(telemetry.MetricPickSeconds, "balancer", b.Name())}
}

// Pick delegates to the wrapped balancer, timing the call.
func (i *instrumented) Pick(queueLens []int, healthy []bool) int {
	start := time.Now()
	w := i.b.Pick(queueLens, healthy)
	i.h.Observe(time.Since(start).Seconds())
	return w
}

// Name returns the wrapped balancer's name.
func (i *instrumented) Name() string { return i.b.Name() }
