package trace

import (
	"testing"

	"ramsis/internal/dist"
)

func TestTokenArrivalsDeterministicAndAnnotated(t *testing.T) {
	tr := Constant(100, 10)
	in := dist.NewLognormalLen(200, 0.9, 8, 2048)
	out := dist.NewLognormalLen(180, 0.7, 16, 1024)

	a := TokenArrivals(tr, 3, in, out)
	b := TokenArrivals(tr, 3, in, out)
	if len(a) == 0 {
		t.Fatal("no token arrivals sampled")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identically seeded runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i, ev := range a {
		if ev.Prefill < 1 || ev.Prefill > in.MaxLen() {
			t.Fatalf("event %d prefill %d outside [1, %d]", i, ev.Prefill, in.MaxLen())
		}
		if ev.Decode < 1 || ev.Decode > out.MaxLen() {
			t.Fatalf("event %d decode %d outside [1, %d]", i, ev.Decode, out.MaxLen())
		}
		if i > 0 && ev.T < a[i-1].T {
			t.Fatalf("arrival times not sorted at %d: %v < %v", i, ev.T, a[i-1].T)
		}
	}
}

func TestTokenArrivalTimesMatchPoissonArrivals(t *testing.T) {
	tr := Constant(200, 5)
	in := dist.NewLognormalLen(100, 0.5, 1, 512)
	out := dist.NewLognormalLen(100, 0.5, 1, 512)
	plain := PoissonArrivals(tr, 9)
	tok := TokenArrivals(tr, 9, in, out)
	if len(plain) != len(tok) {
		t.Fatalf("arrival counts differ: %d plain vs %d tokenized", len(plain), len(tok))
	}
	for i := range plain {
		if plain[i] != tok[i].T {
			t.Fatalf("arrival %d time differs: %v vs %v", i, plain[i], tok[i].T)
		}
	}
}

func TestAnnotateTokensPreservesTimes(t *testing.T) {
	times := []float64{0.5, 1.25, 7}
	in := dist.NewEmpiricalLen([]dist.LenBucket{{Lo: 3000, Hi: 3200, Weight: 1}})
	out := dist.NewEmpiricalLen([]dist.LenBucket{{Lo: 10, Hi: 20, Weight: 1}})
	evs := AnnotateTokens(times, 1, in, out)
	if len(evs) != len(times) {
		t.Fatalf("got %d events, want %d", len(evs), len(times))
	}
	for i, ev := range evs {
		if ev.T != times[i] {
			t.Fatalf("event %d time %v, want %v", i, ev.T, times[i])
		}
		if ev.Prefill < 3000 || ev.Prefill > 3200 {
			t.Fatalf("event %d prefill %d outside bucket", i, ev.Prefill)
		}
	}
}
