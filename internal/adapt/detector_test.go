package adapt

import "testing"

// obs is one monitored reading and whether drift must be confirmed on it.
type obs struct {
	t, rate float64
	fire    bool
}

// TestDetectorHysteresis is the drift-detection contract, table-driven: the
// hysteresis band plus dwell time must suppress re-solves for rates that
// merely oscillate or briefly burst, while a genuine sustained step must be
// confirmed as soon as the dwell window elapses.
func TestDetectorHysteresis(t *testing.T) {
	cases := []struct {
		name                string
		center, band, dwell float64
		obs                 []obs
	}{
		{
			name: "in-band oscillation never fires", center: 100, band: 0.2, dwell: 1,
			obs: []obs{
				{0, 95, false}, {1, 110, false}, {2, 85, false},
				{3, 119, false}, {10, 101, false}, {60, 81, false},
			},
		},
		{
			name: "band edges are in-band", center: 100, band: 0.2, dwell: 1,
			obs: []obs{{0, 80, false}, {5, 120, false}, {10, 80, false}},
		},
		{
			name: "short excursions re-arm the dwell timer", center: 100, band: 0.2, dwell: 1,
			obs: []obs{
				// Bursts of 0.6 s < dwell 1 s, separated by in-band readings:
				// each return to the band re-arms, so drift is never confirmed
				// no matter how many bursts occur.
				{0.0, 150, false}, {0.6, 150, false}, {0.8, 100, false},
				{1.0, 150, false}, {1.6, 150, false}, {1.8, 100, false},
				{2.0, 150, false}, {2.6, 150, false}, {2.8, 100, false},
				{3.0, 150, false}, {3.6, 150, false}, {3.8, 100, false},
			},
		},
		{
			name: "genuine step up fires at the dwell window", center: 100, band: 0.2, dwell: 1,
			obs: []obs{
				{0, 150, false}, {0.5, 150, false}, {0.99, 150, false},
				{1.0, 150, true}, {1.5, 150, true}, // keeps firing until recentered
			},
		},
		{
			name: "genuine step down fires too", center: 100, band: 0.2, dwell: 1,
			obs: []obs{{0, 50, false}, {0.5, 50, false}, {1.0, 50, true}},
		},
		{
			name: "excursion side may change without re-arming", center: 100, band: 0.2, dwell: 1,
			obs: []obs{
				// Out of band the whole time — above, then below — still one
				// continuous excursion.
				{0, 150, false}, {0.5, 50, false}, {1.0, 150, true},
			},
		},
		{
			name: "zero dwell fires immediately", center: 100, band: 0.2, dwell: 0,
			obs: []obs{{0, 95, false}, {1, 130, true}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDetector(tc.center, tc.band, tc.dwell)
			for i, o := range tc.obs {
				if got := d.Observe(o.t, o.rate); got != o.fire {
					t.Fatalf("obs %d (t=%v rate=%v): fire=%v, want %v", i, o.t, o.rate, got, o.fire)
				}
			}
		})
	}
}

func TestDetectorRecenterRearms(t *testing.T) {
	d := NewDetector(100, 0.2, 1)
	if d.Observe(0, 200) || d.Observe(0.5, 200) {
		t.Fatal("fired before dwell elapsed")
	}
	if !d.Observe(1, 200) {
		t.Fatal("did not fire after dwell at sustained step")
	}
	d.Recenter(200)
	if d.Center() != 200 {
		t.Fatalf("center = %v after Recenter(200)", d.Center())
	}
	// The stepped-to rate is now the normal one: no more firing, even after
	// arbitrarily long.
	for _, now := range []float64{1.1, 2, 50} {
		if d.Observe(now, 200) {
			t.Fatalf("fired at t=%v after recentering on the new rate", now)
		}
	}
	// And a step back to the old rate must confirm afresh with a full dwell.
	if d.Observe(100, 100) {
		t.Fatal("fired immediately on the return step")
	}
	if !d.Observe(101, 100) {
		t.Fatal("return step not confirmed after dwell")
	}
}

func TestDetectorToleratesStaleReadings(t *testing.T) {
	d := NewDetector(100, 0.2, 1)
	if d.Observe(5, 150) {
		t.Fatal("fired on first out-of-band reading")
	}
	// A stale reading (earlier timestamp) must not confirm drift: elapsed
	// time within the excursion cannot be negative-credited.
	if d.Observe(4, 150) {
		t.Fatal("stale reading confirmed drift")
	}
	if !d.Observe(6, 150) {
		t.Fatal("did not fire once dwell genuinely elapsed")
	}
}
