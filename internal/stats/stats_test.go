package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {10, 1}, {50, 5}, {95, 10}, {99, 10}, {100, 10}, {90, 9}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		v := Percentile(xs, float64(p%101))
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}
