package sim

import (
	"fmt"

	"ramsis/internal/adapt"
	"ramsis/internal/core"
	"ramsis/internal/lb"
	"ramsis/internal/monitor"
)

// AdaptiveRAMSIS is the RAMSIS scheduler with the adaptation loop closed:
// every monitored load reading also feeds the drift detector, so a
// sustained rate change re-solves the per-worker MDP at the new rate and
// hot-swaps the policy mid-run. Decisions stay lookup-only — the adapter
// owns all generation — unlike the legacy RAMSIS scheduler, whose policy
// set generates on demand the first time a load exceeds its ladder.
//
// Re-solves run inline (adapt.Config.Background unset): in a discrete-event
// simulation a solve costs zero modeled time, which models a controller
// whose re-solve is fast relative to the drift dwell time — the measured
// 200 ms solve on the paper-scale worker MDP against multi-second dwell.
type AdaptiveRAMSIS struct {
	Adapter *adapt.Adapter
	Monitor monitor.Monitor
	// Balance selects the load-balancing strategy, as in RAMSIS.
	Balance core.Balancing
	// LB overrides the balancer implementation (see RAMSIS.LB).
	LB lb.Balancer

	lens []int
}

// NewAdaptiveRAMSIS wires an adapter and a load monitor into a scheduler.
func NewAdaptiveRAMSIS(a *adapt.Adapter, mon monitor.Monitor) *AdaptiveRAMSIS {
	return &AdaptiveRAMSIS{Adapter: a, Monitor: mon}
}

func (r *AdaptiveRAMSIS) balancer() lb.Balancer {
	if r.LB == nil {
		r.LB = BalancerFor(r.Balance, 1)
	}
	return r.LB
}

// Route observes the arrival, feeds the drift detector, and assigns the
// query to a worker queue via the configured balancer.
func (r *AdaptiveRAMSIS) Route(e *Engine, now float64, q Query) {
	r.Monitor.Observe(now)
	r.Adapter.Observe(now, r.Monitor.Load(now))
	r.lens = e.QueueLens(r.lens)
	e.EnqueueWorker(r.balancer().Pick(r.lens, nil), q)
}

// Pick applies the adapter's current policy for the anticipated load to
// worker w's queue state. Dispatch decisions also feed the detector, so a
// rate drop (fewer arrivals) is still noticed promptly.
func (r *AdaptiveRAMSIS) Pick(e *Engine, now float64, w int) (Decision, bool) {
	n := e.WorkerLen(w)
	if n == 0 {
		return Decision{}, false
	}
	load := r.Monitor.Load(now)
	r.Adapter.Observe(now, load)
	pol := r.Adapter.PolicyFor(load)
	if pol == nil {
		panic(fmt.Sprintf("sim: adapter has no policy for load %v", load))
	}
	return pickWithPolicy(e, now, w, n, pol)
}
