package serve

import (
	"encoding/json"
	"math"
	"strconv"
	"testing"
	"unicode/utf8"
)

// The /infer wire layer hand-rolls its JSON encode/decode (infer_client.go)
// for the hot dispatch path, with encoding/json as the fallback for
// anything the fast parsers decline. These fuzz targets pin the contract
// between the two: wherever both decoders accept the same bytes they must
// agree, and everything the fast encoders emit must round-trip through
// both. The checks are conditional by design — the fast paths accept a
// deliberately narrow wire shape and are allowed to reject valid JSON, and
// parseInferLatency keys off a byte sequence without validating the
// surrounding document, so it can accept fragments encoding/json refuses.

// FuzzParseInferRequest cross-checks the allocation-free request decoder
// against encoding/json and pins re-encode self-consistency.
func FuzzParseInferRequest(f *testing.F) {
	f.Add([]byte(`{"model":"resnet50","batch":8}`))
	f.Add([]byte(`{"model":"","batch":0}`))
	f.Add([]byte(`{"model":"a\"b","batch":3}`))  // escaped quote: generic path
	f.Add([]byte(`{"batch":8,"model":"x"}`))     // reordered: generic path
	f.Add([]byte(`{"model":"m","batch":00042}`)) // leading zeros: fast-only shape
	f.Add([]byte(`{"model":"m","batch":1048577}`))
	f.Add([]byte(` {"model":"m","batch":1}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		model, batch, ok := parseInferRequest(b)
		if !ok {
			return
		}
		// Cross-check against encoding/json where it also accepts. Raw
		// control bytes in the model name parse fast but fail the generic
		// decoder, and invalid UTF-8 is replaced rather than preserved by
		// it, so those inputs have nothing to compare.
		var req struct {
			Model string `json:"model"`
			Batch int    `json:"batch"`
		}
		if err := json.Unmarshal(b, &req); err == nil && utf8.Valid(model) {
			if string(model) != req.Model || batch != req.Batch {
				t.Fatalf("parseInferRequest = (%q, %d), encoding/json = (%q, %d)",
					model, batch, req.Model, req.Batch)
			}
		}
		// Self-consistency: re-encoding what was parsed must parse back to
		// the same values, whenever the encoder quotes the name verbatim
		// (appendInferRequest escapes control bytes, which the fast parser
		// then declines by design).
		if strconv.Quote(string(model)) == `"`+string(model)+`"` {
			re := appendInferRequest(nil, string(model), batch)
			m2, b2, ok2 := parseInferRequest(re)
			if !ok2 || string(m2) != string(model) || b2 != batch {
				t.Fatalf("re-encode of (%q, %d) parsed as (%q, %d, ok=%v)",
					model, batch, m2, b2, ok2)
			}
		}
	})
}

// FuzzParseInferLatency cross-checks the latency fast path against
// encoding/json: on bytes both accept, the fast value must sit within
// 1e-15 relative of the correctly-rounded one (the 16-19 digit mantissa
// path is documented as within one ulp, ~2.2e-16).
func FuzzParseInferLatency(f *testing.F) {
	f.Add([]byte(`{"model":"m","batch":8,"latency":0.0123}`))
	f.Add([]byte(`{"model":"m","batch":1,"latency":1.2345678901234567e-05}`))
	f.Add([]byte(`{"model":"m","batch":1,"latency":-3}`))
	f.Add([]byte(`{"model":"m","batch":1,"latency":9999999999999999999}`))
	f.Add([]byte(`{"model":"m","batch":1,"latency":1e31}`)) // exponent cap: generic path
	f.Add([]byte(`{"a":{"x":1,"latency":5}}`))              // nested: trailing-brace check rejects
	f.Add([]byte(`{"latency":1,"latency":2}`))              // duplicate key: both take the last
	f.Fuzz(func(t *testing.T, b []byte) {
		fast, ok := parseInferLatency(b)
		if !ok {
			return
		}
		var resp struct {
			Latency float64 `json:"latency"`
		}
		if err := json.Unmarshal(b, &resp); err != nil {
			// The fast path scans for the last `,"latency":` sequence and
			// never validates the rest of the body, so it can accept
			// fragments that are not JSON. Production bodies are whole
			// objects from appendInferResponse; nothing to cross-check.
			return
		}
		if math.Abs(fast-resp.Latency) > 1e-15*math.Abs(resp.Latency) {
			t.Fatalf("parseInferLatency(%q) = %g, encoding/json = %g", b, fast, resp.Latency)
		}
	})
}

// FuzzInferWireRoundTrip drives the encoders with arbitrary field values
// and checks both decoders recover them: the emitted request must parse
// identically on the fast and generic paths, and the emitted response's
// shortest-form float must round-trip exactly through encoding/json.
func FuzzInferWireRoundTrip(f *testing.F) {
	f.Add("resnet50", 8, 0.012345)
	f.Add("", 0, 0.0)
	f.Add("chat-72b", 1<<20, 1.2345678901234567e-05)
	f.Add("mobilenet_v2", 64, math.MaxFloat64)
	f.Add("efficientnet-b7", 3, -5e-324)
	f.Fuzz(func(t *testing.T, model string, batch int, latency float64) {
		if strconv.Quote(model) != `"`+model+`"` {
			// Names needing escapes are quoted by the encoder and declined
			// by the fast parser; the generic decoder handles them.
			t.Skip("model name needs escaping")
		}
		batch &= 1<<20 - 1 // the fast parser bounds batch at 1<<20

		req := appendInferRequest(nil, model, batch)
		m, b2, ok := parseInferRequest(req)
		if !ok || string(m) != model || b2 != batch {
			t.Fatalf("fast parse of own encoding %q = (%q, %d, ok=%v)", req, m, b2, ok)
		}
		var jr struct {
			Model string `json:"model"`
			Batch int    `json:"batch"`
		}
		if err := json.Unmarshal(req, &jr); err != nil {
			t.Fatalf("appendInferRequest emitted invalid JSON %q: %v", req, err)
		}
		if jr.Model != model || jr.Batch != batch {
			t.Fatalf("encoding/json decoded %q as (%q, %d)", req, jr.Model, jr.Batch)
		}

		if math.IsNaN(latency) || math.IsInf(latency, 0) {
			return // AppendFloat would emit non-JSON tokens; workers never report these
		}
		resp := appendInferResponse(nil, model, batch, latency)
		var rr struct {
			Latency float64 `json:"latency"`
		}
		if err := json.Unmarshal(resp, &rr); err != nil {
			t.Fatalf("appendInferResponse emitted invalid JSON %q: %v", resp, err)
		}
		if rr.Latency != latency {
			t.Fatalf("latency %v did not round-trip through %q (got %v)", latency, resp, rr.Latency)
		}
		if lat, ok := parseInferLatency(resp); ok {
			if math.Abs(lat-latency) > 1e-15*math.Abs(latency) {
				t.Fatalf("fast parse of own encoding %q = %g, want %g", resp, lat, latency)
			}
		}
	})
}
