package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof attaches the net/http/pprof handlers to mux under
// /debug/pprof/. The serving layers build their own muxes (never the
// DefaultServeMux the pprof package self-registers on), so the explicit
// wiring here is what actually exposes profiles.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
