// Command msgen runs ModelSwitching's offline profiling step, mirroring the
// artifact's MS_gen.py: it measures each model's p99 response latency under
// a range of anticipated loads on the given resource configuration and
// writes the resulting table as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ramsis/internal/baselines"
	"ramsis/internal/profile"
	"ramsis/internal/telemetry"
)

func main() {
	var (
		task     = flag.String("task", "image", "inference task: image or text")
		profPath = flag.String("profile", "", "scalar batch-latency profile JSON to profile instead of the builtin -task set (kinded format; an LLM step-time file is rejected with a pointer to -llm-profile)")
		sloMS    = flag.Float64("slo", 150, "latency SLO in milliseconds")
		workers  = flag.Int("workers", 60, "number of workers")
		loLoad   = flag.Float64("lo", 400, "lowest profiled load (QPS)")
		hiLoad   = flag.Float64("hi", 4000, "highest profiled load (QPS)")
		step     = flag.Float64("step", 100, "load step (QPS); the paper uses 100")
		dur      = flag.Float64("dur", 10, "profiling run length per (model, load), seconds")
		out      = flag.String("out", "policy_gen", "output directory")
		seed     = flag.Int64("seed", 1, "workload seed")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt   = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	if _, err := telemetry.SetupLogging(*logLevel, *logFmt, "msgen"); err != nil {
		log.Fatal(err)
	}

	models, err := profile.SetForTask(*task)
	if *profPath != "" {
		models, err = profile.LoadSetFile(*profPath)
	}
	if err != nil {
		log.Fatal(err)
	}
	var loads []float64
	for l := *loLoad; l <= *hiLoad; l += *step {
		loads = append(loads, l)
	}
	table := baselines.ProfileModelSwitching(models, *sloMS/1000, *workers, loads, *dur, *seed)

	path := filepath.Join(*out, fmt.Sprintf("MS_%s_%dw_%.0fms.json", models.Task, *workers, *sloMS))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(table, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d models x %d loads -> %s\n", models.Len(), len(loads), path)
	fmt.Println("script complete!")
}
