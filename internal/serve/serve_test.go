package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

func startWorkers(t *testing.T, n int, lat sim.LatencyModel, timeScale float64) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := NewWorker(profile.ImageSet(), lat, timeScale, int64(i+1))
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Stop() })
		urls[i] = w.URL()
	}
	return urls
}

func TestWorkerInferAPI(t *testing.T) {
	urls := startWorkers(t, 1, sim.Deterministic{}, 50)
	resp, err := http.Post(urls[0]+"/infer", "application/json",
		strings.NewReader(`{"model":"shufflenet_v2_x0_5","batch":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var ir InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	p, _ := profile.ImageSet().ByName("shufflenet_v2_x0_5")
	if math.Abs(ir.Latency-p.BatchLatency(2)) > 1e-9 {
		t.Errorf("reported latency %v, want profile %v", ir.Latency, p.BatchLatency(2))
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	urls := startWorkers(t, 1, sim.Deterministic{}, 50)
	cases := []struct {
		body string
		want int
	}{
		{`{"model":"nope","batch":1}`, http.StatusNotFound},
		{`{"model":"resnet50","batch":0}`, http.StatusBadRequest},
		{`{"model":"resnet50","batch":999}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(urls[0]+"/infer", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Get(urls[0] + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /infer = %d, want 405", resp.StatusCode)
	}
	if resp, err = http.Get(urls[0] + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz failed: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPrototypeEndToEndRAMSIS(t *testing.T) {
	const workers, slo, load, timeScale = 4, 0.150, 120.0, 5.0
	set := core.NewPolicySet(core.Config{
		Models: profile.ImageSet(), SLO: slo, Workers: workers,
		Arrival: dist.NewPoisson(1), D: 50,
	}, nil)
	if err := set.GenerateLoads([]float64{load}); err != nil {
		t.Fatal(err)
	}
	urls := startWorkers(t, workers, sim.Deterministic{}, timeScale)
	tr := trace.Constant(load, 10)
	ctl := &Controller{
		Profiles:  profile.ImageSet(),
		SLO:       slo,
		TimeScale: timeScale,
		Workers:   urls,
		Select:    RAMSISSelector(set),
		Monitor:   monitor.Oracle{Trace: tr},
	}
	arr := trace.PoissonArrivals(tr, 5)
	m, err := ctl.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != len(arr) {
		t.Fatalf("served %d of %d", m.Served, len(arr))
	}
	// At this time scale the HTTP round trip inflates modeled latencies by
	// ~5x its wall cost, so allow a generous violation budget; accuracy
	// should still be in the policy's neighborhood.
	pol := set.Policies()[0]
	if acc := m.AccuracyPerSatisfiedQuery(); math.Abs(acc-pol.ExpectedAccuracy) > 0.08 {
		t.Errorf("prototype accuracy %.4f far from expectation %.4f", acc, pol.ExpectedAccuracy)
	}
	budget := 0.20
	if raceEnabled {
		// The race detector multiplies the HTTP hop's wall cost several
		// fold, and at this time scale that lands directly in modeled
		// latency.
		budget = 0.50
	}
	if vr := m.ViolationRate(); vr > budget {
		t.Errorf("prototype violation rate %.4f implausibly high", vr)
	}
}

func TestPrototypeCentralModeBaseline(t *testing.T) {
	const workers, slo, load, timeScale = 4, 0.150, 100.0, 5.0
	ps := profile.ImageSet()
	urls := startWorkers(t, workers, sim.Deterministic{}, timeScale)
	tr := trace.Constant(load, 8)
	// A Jellyfish+-style fixed selection at this load.
	modelFor := func(load float64) int {
		for i, p := range ps.Profiles {
			if p.Name == "efficientnet_b0" {
				_ = p
				return i
			}
		}
		return 0
	}
	ctl := &Controller{
		Profiles:  ps,
		SLO:       slo,
		TimeScale: timeScale,
		Workers:   urls,
		Select:    LoadGranularSelector(ps, slo, modelFor),
		Monitor:   monitor.Oracle{Trace: tr},
		Central:   true,
	}
	m, err := ctl.Run(trace.PoissonArrivals(tr, 6))
	if err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 || m.Unserved != 0 {
		t.Fatalf("metrics %+v", m)
	}
	b0, _ := ps.ByName("efficientnet_b0")
	if got := m.ModelCounts["efficientnet_b0"]; got != m.Served {
		t.Errorf("served %d on b0 of %d", got, m.Served)
	}
	if acc := m.AccuracyPerSatisfiedQuery(); m.Violations == 0 && math.Abs(acc-b0.Accuracy) > 1e-9 {
		t.Errorf("accuracy %v, want %v", acc, b0.Accuracy)
	}
}

func TestControllerErrorsOnNoWorkers(t *testing.T) {
	ctl := &Controller{Profiles: profile.ImageSet(), SLO: 0.1, Select: func(_, _ float64, n int, _ float64) (string, int) { return "resnet50", n }}
	if _, err := ctl.Run([]float64{0}); err == nil {
		t.Error("no-worker run should fail")
	}
}

func TestControllerSurfacesUnknownModel(t *testing.T) {
	urls := startWorkers(t, 1, sim.Deterministic{}, 50)
	ctl := &Controller{
		Profiles:  profile.ImageSet(),
		SLO:       0.1,
		TimeScale: 50,
		Workers:   urls,
		Select:    func(_, _ float64, n int, _ float64) (string, int) { return "not_a_model", n },
	}
	if _, err := ctl.Run([]float64{0}); err == nil {
		t.Error("unknown model should surface as an error")
	}
}

func TestFrontendLiveQueries(t *testing.T) {
	const workers, slo, load, timeScale = 2, 0.150, 60.0, 2.0
	set := core.NewPolicySet(core.Config{
		Models: profile.ImageSet(), SLO: slo, Workers: workers,
		Arrival: dist.NewPoisson(1), D: 50,
	}, nil)
	if err := set.GenerateLoads([]float64{load, 2 * load}); err != nil {
		t.Fatal(err)
	}
	urls := startWorkers(t, workers, sim.Deterministic{}, timeScale)
	f := &Frontend{
		Profiles:  profile.ImageSet(),
		SLO:       slo,
		TimeScale: timeScale,
		Workers:   urls,
		Select:    RAMSISSelector(set),
		Monitor:   monitor.NewMovingAverage(0.5),
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	// Fire 60 concurrent live queries over ~1s wall.
	const n = 60
	var wg sync.WaitGroup
	responses := make([]QueryResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 15 * time.Millisecond)
			resp, err := http.Post(f.URL()+"/query", "application/json", strings.NewReader(`{}`))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()
	met := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if responses[i].Model == "" || responses[i].Batch < 1 {
			t.Fatalf("query %d: malformed response %+v", i, responses[i])
		}
		if responses[i].DeadlineMet {
			met++
		}
	}
	if met < n*8/10 {
		t.Errorf("only %d/%d live queries met the deadline", met, n)
	}

	// Stats endpoint reflects the served queries.
	resp, err := http.Get(f.URL() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Served != n {
		t.Errorf("stats served = %d, want %d", stats.Served, n)
	}
	if stats.Accuracy <= 0.6 {
		t.Errorf("stats accuracy %v implausible", stats.Accuracy)
	}
}

func TestFrontendRejectsGet(t *testing.T) {
	urls := startWorkers(t, 1, sim.Deterministic{}, 10)
	f := &Frontend{
		Profiles: profile.ImageSet(), SLO: 0.150, TimeScale: 10, Workers: urls,
		Select: func(_, _ float64, n int, _ float64) (string, int) { return "shufflenet_v2_x0_5", n },
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	resp, err := http.Get(f.URL() + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query = %d, want 405", resp.StatusCode)
	}
}

func TestFrontendRequiresWorkers(t *testing.T) {
	f := &Frontend{Profiles: profile.ImageSet(), SLO: 0.1}
	if err := f.Start(); err == nil {
		t.Error("frontend with no workers started")
	}
}

func TestClusterLifecycle(t *testing.T) {
	set := core.NewPolicySet(core.Config{
		Models: profile.ImageSet(), SLO: 0.150, Workers: 2,
		Arrival: dist.NewPoisson(1), D: 25,
	}, nil)
	if err := set.GenerateLoads([]float64{50, 100}); err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(ClusterConfig{
		Models:    profile.ImageSet(),
		Workers:   2,
		SLO:       0.150,
		TimeScale: 5,
		Select:    RAMSISSelector(set),
		Monitor:   monitor.NewMovingAverage(0.5),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	resp, err := http.Post(c.URL()+"/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Model == "" || !qr.DeadlineMet {
		t.Errorf("cluster query response %+v", qr)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := StartCluster(ClusterConfig{Workers: 0}); err == nil {
		t.Error("zero-worker cluster started")
	}
	if _, err := StartCluster(ClusterConfig{Workers: 1}); err == nil {
		t.Error("selector-less cluster started")
	}
}
