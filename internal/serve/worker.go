// Package serve is the client-server prototype of §6: a central controller
// process holding the central queue, a load balancer, and per-worker model
// selectors, plus worker servers that expose an HTTP inference API. The
// paper's workers run TorchServe; here a worker "executes inference" by
// holding the request for the profiled latency (plus optional jitter),
// which preserves every scheduling-relevant behaviour (§7.3.1 notes the
// simulator and implementation share the scheduling code and differ only in
// latency variance).
package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
)

// InferRequest is the worker HTTP API request: run a batch on a model.
type InferRequest struct {
	Model string `json:"model"`
	Batch int    `json:"batch"`
}

// InferResponse reports the realized inference latency in seconds
// (unscaled, i.e. in modeled time).
type InferResponse struct {
	Model   string  `json:"model"`
	Batch   int     `json:"batch"`
	Latency float64 `json:"latency"`
}

// Worker is an HTTP inference worker: POST /infer holds the connection for
// the model's profiled batch latency. TimeScale > 1 compresses modeled time
// by that factor (a 300 ms inference sleeps 30 ms at TimeScale 10), letting
// tests exercise the full stack quickly; metrics are reported in modeled
// time either way.
type Worker struct {
	Profiles  profile.Set
	Latency   sim.LatencyModel
	TimeScale float64
	// Telemetry backs the worker's own /metrics endpoint (inference
	// counts, realized inference latency, batch sizes); Start builds a
	// registry when nil. /debug/pprof is wired on the same mux.
	Telemetry *telemetry.Registry
	// Name is this worker's process name in trace fragments ("worker-3");
	// default "worker". The sharded cluster names workers by their global
	// index.
	Name string
	// Index is the worker's global index, stamped on its trace fragments
	// (-1 when unset).
	Index int
	// Traces rings the worker-side fragments of batches whose dispatch
	// carried X-Trace-Id; Start builds one when nil. Served at
	// /debug/traces on the worker's own mux, like the frontends'.
	Traces *telemetry.TraceBuffer
	// TraceWriter, when set, additionally streams worker fragments as
	// JSONL (a sharded cluster shares one writer across processes, so one
	// file holds every fragment of every trace).
	TraceWriter *telemetry.TraceWriter

	mu      sync.Mutex
	rng     *rand.Rand
	srv     *http.Server
	addr    string
	infHist *telemetry.Histogram
	bsHist  *telemetry.Histogram
	// infCtr caches the per-model inference counters built at Start, so
	// the handler never takes the registry's lookup lock per request.
	infCtr map[string]*telemetry.Counter
	// prof indexes the loaded profiles by name; looked up with a []byte
	// key conversion, it resolves the fast-parsed model without copying
	// the name out of the request buffer.
	prof map[string]profile.Profile
}

// NewWorker builds a worker server (not yet started).
func NewWorker(profiles profile.Set, lat sim.LatencyModel, timeScale float64, seed int64) *Worker {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &Worker{
		Profiles:  profiles,
		Latency:   lat,
		TimeScale: timeScale,
		Index:     -1,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Start listens on a random localhost port and serves until Stop.
func (w *Worker) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	w.addr = ln.Addr().String()
	if w.Telemetry == nil {
		w.Telemetry = telemetry.NewRegistry()
	}
	if w.Name == "" {
		w.Name = "worker"
	}
	if w.Traces == nil {
		w.Traces = telemetry.NewTraceBuffer(0)
	}
	w.infHist = w.Telemetry.Histogram(telemetry.MetricInferenceSeconds)
	w.bsHist = w.Telemetry.HistogramBuckets(telemetry.MetricBatchSize, telemetry.LinearBuckets(1, 1, 32))
	w.infCtr = make(map[string]*telemetry.Counter, len(w.Profiles.Profiles))
	w.prof = make(map[string]profile.Profile, len(w.Profiles.Profiles))
	for _, p := range w.Profiles.Profiles {
		w.infCtr[p.Name] = w.Telemetry.Counter(telemetry.MetricInferences, "model", p.Name)
		w.prof[p.Name] = p
	}
	w.Telemetry.Help(telemetry.MetricInferenceSeconds, "Realized inference latency per batch in modeled seconds.")
	w.Telemetry.Help(telemetry.MetricInferences, "Batches executed, by model.")
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", w.handleInfer)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.Handle("/metrics", w.Telemetry.Handler())
	mux.Handle("/debug/traces", w.Traces.Handler())
	telemetry.RegisterPprof(mux)
	w.srv = &http.Server{Handler: mux}
	go func() { _ = w.srv.Serve(ln) }()
	return nil
}

// URL returns the worker's base URL.
func (w *Worker) URL() string { return "http://" + w.addr }

// Stop shuts the server down.
func (w *Worker) Stop() error {
	if w.srv == nil {
		return nil
	}
	return w.srv.Close()
}

func (w *Worker) handleInfer(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Decode and encode through a pooled scratch buffer: json.NewDecoder
	// allocated its own buffered reader per request, which dominated the
	// worker-side allocation profile at saturation.
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	buf, err := readAllInto((*bp)[:0], req.Body)
	*bp = buf[:0]
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	// Fast path: the exact wire shape the dispatchers emit parses without
	// encoding/json, and the model resolves from the request buffer by
	// byte-keyed map lookup — the canonical p.Name then stands in for the
	// request's model string everywhere downstream. Anything else falls
	// back to the generic decoder.
	var p profile.Profile
	var ok bool
	var batch int
	if mb, b2, fast := parseInferRequest(buf); fast {
		p, ok = w.prof[string(mb)]
		batch = b2
		if !ok {
			http.Error(rw, fmt.Sprintf("model %q not loaded", mb), http.StatusNotFound)
			return
		}
	} else {
		var ir InferRequest
		if err := json.Unmarshal(buf, &ir); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		p, ok = w.Profiles.ByName(ir.Model)
		batch = ir.Batch
		if !ok {
			http.Error(rw, fmt.Sprintf("model %q not loaded", ir.Model), http.StatusNotFound)
			return
		}
	}
	if batch < 1 || batch > p.MaxBatch() {
		http.Error(rw, fmt.Sprintf("batch %d outside [1,%d]", batch, p.MaxBatch()), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	lat := w.Latency.Latency(p, batch, w.rng)
	w.mu.Unlock()
	w.infCtr[p.Name].Inc()
	w.bsHist.Observe(float64(batch))
	time.Sleep(time.Duration(lat / w.TimeScale * float64(time.Second)))
	w.recordTraces(req, p.Name, batch, lat)
	out := appendInferResponse(buf[:0], p.Name, batch, lat)
	*bp = out[:0]
	// Suppress the automatic Content-Type (sniffing) and Date headers:
	// the /infer wire is internal and header-minimal, and every response
	// header costs the dispatching client a parse allocation per POST.
	h := rw.Header()
	h["Content-Type"] = nil
	h["Date"] = nil
	_, _ = rw.Write(out)
}

// recordTraces emits the worker-side fragment of every trace the dispatch
// carried: X-Trace-Id holds the batch's whole trace context,
// "id1,id2,...;parent" — the comma-joined trace IDs plus the dispatching
// process's name — so Stitch hangs each fragment under the right frontend
// from a single (non-common, hence per-request-parse-priced) header. The
// realized inference latency lands both in the worker's histogram (with
// the first trace as its exemplar) and as each fragment's single
// inference span.
func (w *Worker) recordTraces(req *http.Request, model string, batch int, lat float64) {
	header := req.Header.Get("X-Trace-Id")
	if header == "" {
		w.infHist.Observe(lat)
		return
	}
	header, parent, _ := strings.Cut(header, ";")
	first, _, _ := strings.Cut(header, ",")
	w.infHist.ObserveExemplar(lat, first)
	// Walk the comma-joined IDs with Cut instead of Split: the substrings
	// alias the header, and the span buffer is shared across fragments
	// because the trace ring copies spans on Add.
	var sp [1]telemetry.Span
	sp[0] = telemetry.Span{Stage: telemetry.StageInference, Seconds: lat}
	for rest := header; rest != ""; {
		var id string
		id, rest, _ = strings.Cut(rest, ",")
		if id == "" {
			continue
		}
		qt := telemetry.QueryTrace{
			ID: -1, Worker: w.Index,
			Model: model, Batch: batch,
			LatencyMS: lat * 1000,
			TraceID:   id, Process: w.Name, Parent: parent,
			Spans: sp[:],
		}
		w.Traces.Add(qt)
		if w.TraceWriter != nil {
			_ = w.TraceWriter.Write(qt)
		}
	}
}
