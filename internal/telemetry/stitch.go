package telemetry

// StitchedTrace is one query's cross-process trace: every fragment sharing
// a TraceID, reassembled into a tree by each fragment's Parent pointer.
// A sharded deployment yields gateway -> shard-N -> worker-M; a
// single-process run yields a one-fragment tree.
type StitchedTrace struct {
	TraceID   string
	Fragments []QueryTrace // in first-seen order
}

// Stitch groups fragments by TraceID, preserving the order trace IDs first
// appear. Fragments without a TraceID (legacy single-process traces) are
// skipped — they cannot be joined to anything.
func Stitch(traces []QueryTrace) []StitchedTrace {
	idx := map[string]int{}
	var out []StitchedTrace
	for _, t := range traces {
		if t.TraceID == "" {
			continue
		}
		i, ok := idx[t.TraceID]
		if !ok {
			i = len(out)
			idx[t.TraceID] = i
			out = append(out, StitchedTrace{TraceID: t.TraceID})
		}
		out[i].Fragments = append(out[i].Fragments, t)
	}
	return out
}

// Root returns the tree's root fragment: the first whose Parent is empty or
// names no recorded fragment (a shard fragment is the root when the gateway
// ring has already evicted its half).
func (s StitchedTrace) Root() QueryTrace {
	present := map[string]bool{}
	for _, f := range s.Fragments {
		present[f.Process] = true
	}
	for _, f := range s.Fragments {
		if f.Parent == "" || !present[f.Parent] {
			return f
		}
	}
	return s.Fragments[0]
}

// Children returns the fragments recorded downstream of process.
func (s StitchedTrace) Children(process string) []QueryTrace {
	var out []QueryTrace
	for _, f := range s.Fragments {
		if f.Parent == process && f.Process != process {
			out = append(out, f)
		}
	}
	return out
}

// Path returns the root-to-leaf fragment chain, descending into the child
// with the most recorded span time at each level (the branch that carried
// the latency).
func (s StitchedTrace) Path() []QueryTrace {
	if len(s.Fragments) == 0 {
		return nil
	}
	cur := s.Root()
	path := []QueryTrace{cur}
	for len(path) <= len(s.Fragments) {
		kids := s.Children(cur.Process)
		if len(kids) == 0 {
			break
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if spanTotal(k) > spanTotal(best) {
				best = k
			}
		}
		cur = best
		path = append(path, cur)
	}
	return path
}

func spanTotal(t QueryTrace) float64 {
	sum := 0.0
	for _, sp := range t.Spans {
		sum += sp.Seconds
	}
	return sum
}

// CriticalPath returns the query's stage breakdown along the Path, one span
// per stage in traversal order. A stage measured in more than one process
// (inference is timed by both the shard's dispatch and the worker itself)
// keeps the deepest measurement — the one closest to the execution.
func (s StitchedTrace) CriticalPath() []Span {
	var out []Span
	pos := map[string]int{}
	for _, f := range s.Path() {
		for _, sp := range f.Spans {
			if i, ok := pos[sp.Stage]; ok {
				out[i] = sp
			} else {
				pos[sp.Stage] = len(out)
				out = append(out, sp)
			}
		}
	}
	return out
}

// Tenant returns the first tenant label recorded on any fragment.
func (s StitchedTrace) Tenant() string {
	for _, f := range s.Fragments {
		if f.Tenant != "" {
			return f.Tenant
		}
	}
	return ""
}

// Final returns the fragment holding the query's end-to-end outcome: the
// one with the largest recorded latency (the serving frontend's; gateway
// and worker fragments only cover their own slice).
func (s StitchedTrace) Final() QueryTrace {
	best := s.Fragments[0]
	for _, f := range s.Fragments[1:] {
		if f.LatencyMS > best.LatencyMS {
			best = f
		}
	}
	return best
}

// Decision returns the dispatch decision attached to any fragment, or nil.
func (s StitchedTrace) Decision() *Decision {
	for _, f := range s.Fragments {
		if f.Decision != nil {
			return f.Decision
		}
	}
	return nil
}
