// Package multislo implements §G: supporting multiple latency SLOs the way
// the paper (and Jellyfish [32]) describes — each worker is assigned a
// latency SLO, a central queue is instantiated per SLO, and workers attach
// to the queue whose SLO matches. Each SLO class therefore runs an
// independent RAMSIS stack (its own policy set sized to its worker share),
// and a class router splits the application mix across the queues.
//
// Since the multi-tenant plane landed, a Class is a view over
// tenant.Tenant: validation, workload generation, and per-class accounting
// run through internal/tenant's registry and labeled-arrival generator, so
// the §G example and the sharded serving plane share one code path.
package multislo

import (
	"fmt"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/tenant"
	"ramsis/internal/trace"
)

// Class is one latency-SLO application class.
type Class struct {
	// Name labels the class in results.
	Name string
	// SLO is the class's response latency SLO in seconds.
	SLO float64
	// Workers is the number of workers assigned to this class.
	Workers int
	// Share is the fraction of total query traffic belonging to this
	// class; shares must sum to 1.
	Share float64
}

// Tenant renders the class as a tenant contracted for its share of
// totalLoad: the class share doubles as the fair-share weight.
func (c Class) Tenant(totalLoad float64) tenant.Tenant {
	return tenant.Tenant{
		Name:    c.Name,
		Class:   c.Name,
		SLOMS:   c.SLO * 1000,
		Weight:  c.Share,
		RateQPS: c.Share * totalLoad,
	}
}

// System is a multi-SLO deployment: independent per-class RAMSIS stacks.
type System struct {
	Models  profile.Set
	Classes []Class
	sets    []*core.PolicySet
}

// New validates the classes and builds the per-class policy sets. Class
// validation goes through the tenant registry (shares must additionally
// sum to 1, which general tenant weights need not).
func New(models profile.Set, classes []Class, d int) (*System, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("multislo: no classes")
	}
	total := 0.0
	ts := make([]tenant.Tenant, len(classes))
	for i, c := range classes {
		if c.Workers < 1 {
			return nil, fmt.Errorf("multislo: invalid class %+v", c)
		}
		// Validate at a nominal 1 QPS total; rates scale linearly with load.
		ts[i] = c.Tenant(1)
		total += c.Share
	}
	if err := tenant.Validate(ts); err != nil {
		return nil, fmt.Errorf("multislo: %w", err)
	}
	if total < 0.999 || total > 1.001 {
		return nil, fmt.Errorf("multislo: shares sum to %v, want 1", total)
	}
	s := &System{Models: models, Classes: classes}
	for _, c := range classes {
		s.sets = append(s.sets, core.NewPolicySet(core.Config{
			Models:  models,
			SLO:     c.SLO,
			Workers: c.Workers,
			Arrival: dist.NewPoisson(1),
			D:       d,
		}, nil))
	}
	return s, nil
}

// Registry builds the tenant registry for a given total load: one tenant
// per class, contracted at its share.
func (s *System) Registry(totalLoad float64) (*tenant.Registry, error) {
	ts := make([]tenant.Tenant, len(s.Classes))
	for i, c := range s.Classes {
		ts[i] = c.Tenant(totalLoad)
	}
	return tenant.NewRegistry(ts)
}

// Precompute generates each class's policy at its share of the total load.
func (s *System) Precompute(totalLoad float64) error {
	for i, c := range s.Classes {
		if err := s.sets[i].GenerateLoads([]float64{c.Share * totalLoad}); err != nil {
			return err
		}
	}
	return nil
}

// ClassPolicy returns class i's policy for its share of the total load.
func (s *System) ClassPolicy(i int, totalLoad float64) (*core.Policy, error) {
	return s.sets[i].PolicyFor(s.Classes[i].Share * totalLoad)
}

// Run serves a constant total load for dur seconds: the tenant workload
// generator emits one independent Poisson stream per class at its share of
// the load (the superposition is Poisson at the total, matching the
// paper's single-stream split), and each class's queue is drained by its
// own workers under its own RAMSIS policy. Per-class metrics come back
// with the tenant breakdown populated.
func (s *System) Run(totalLoad, dur float64, seed int64) (map[string]sim.Metrics, error) {
	if err := s.Precompute(totalLoad); err != nil {
		return nil, err
	}
	reg, err := s.Registry(totalLoad)
	if err != nil {
		return nil, err
	}
	evs := tenant.Arrivals(reg.All(), dur, seed)
	perClass := make(map[string][]sim.Query, len(s.Classes))
	for _, ev := range evs {
		perClass[ev.Tenant] = append(perClass[ev.Tenant], sim.Query{
			ID: len(perClass[ev.Tenant]), Arrival: ev.T, Tenant: ev.Tenant,
		})
	}
	out := make(map[string]sim.Metrics, len(s.Classes))
	for i, c := range s.Classes {
		classTrace := trace.Constant(c.Share*totalLoad, dur)
		sched := sim.NewRAMSIS(s.sets[i], monitor.Oracle{Trace: classTrace})
		e := sim.NewEngine(s.Models, c.SLO, c.Workers, sim.Deterministic{}, sched, seed+int64(i))
		e.TenantSLOs = map[string]float64{c.Name: c.SLO}
		out[c.Name] = e.RunQueries(perClass[c.Name])
	}
	return out, nil
}
