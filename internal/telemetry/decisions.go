package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Decision kinds: every point where a policy chose something on behalf of
// a query (or the plane) records one of these.
const (
	// DecisionSelect is an MS&S selector pick: which model and batch size
	// to dispatch. Its PredictedSec is the profiled batch latency the
	// policy committed to; RealizedSec is filled on completion, making
	// predicted-vs-realized error a first-class measurable.
	DecisionSelect = "select"
	// DecisionAdmit / DecisionShed are admission verdicts at arrival.
	DecisionAdmit = "admit"
	DecisionShed  = "shed"
	// DecisionBorrow is an admit that exceeded the tenant's fair share but
	// was let in against the plane's headroom (work-conserving borrowing).
	DecisionBorrow = "borrow"
	// DecisionDegrade is a dispatch whose model was clamped to a faster
	// one by degraded-mode serving.
	DecisionDegrade = "degrade"
	// DecisionAdaptSwap is a policy-set hot-swap published by the online
	// adaptation loop after confirmed rate drift.
	DecisionAdaptSwap = "adapt_swap"
)

// Decision is one attributed policy decision: the inputs the policy saw
// when it chose, what it chose, and (for dispatch decisions) how the choice
// played out. Decisions land in a bounded ring (/debug/decisions) and are
// attached to the query's trace fragment, so "why did the plane pick the
// fast model for tenant X at t=14.05" is answerable from either surface.
type Decision struct {
	Kind string  `json:"kind"`
	Time float64 `json:"time"` // modeled seconds from start
	// TraceID links the decision to the query's trace (empty for decisions
	// not tied to one query, e.g. adapt_swap).
	TraceID string `json:"traceId,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Shard   int    `json:"shard"`
	Worker  int    `json:"worker"` // -1 when no worker was involved
	// Inputs the decision saw.
	QueueLen     int     `json:"queueLen"`
	RateQPS      float64 `json:"rateQps"`      // monitored arrival rate
	DegradeLevel int     `json:"degradeLevel"` // level in force at decision time
	SlackSec     float64 `json:"slackSec"`     // deadline headroom (select only)
	// What was chosen.
	Model string `json:"model,omitempty"`
	Batch int    `json:"batch,omitempty"`
	// PredictedSec is the latency the decision was premised on: the
	// profiled batch latency for select/degrade, the queue-wait estimate
	// for admit/shed. RealizedSec is the measured counterpart, filled on
	// completion (0 until then, and forever for shed queries).
	PredictedSec float64 `json:"predictedSec"`
	RealizedSec  float64 `json:"realizedSec"`
	// Outcome summarizes how it ended: "served", "violated", "shed",
	// "admitted", "swapped", ...
	Outcome string `json:"outcome,omitempty"`
}

// DefaultDecisionCapacity is the ring size serving layers use when the
// caller does not choose one.
const DefaultDecisionCapacity = 512

// DecisionBuffer is a bounded ring of the most recent policy decisions,
// dumpable via its /debug/decisions handler. Memory is fixed at capacity; a
// new decision overwrites the oldest once full.
type DecisionBuffer struct {
	mu   sync.Mutex
	buf  []Decision
	next int
	full bool
}

// NewDecisionBuffer returns a ring holding the last n decisions (n <= 0
// takes DefaultDecisionCapacity).
func NewDecisionBuffer(n int) *DecisionBuffer {
	if n <= 0 {
		n = DefaultDecisionCapacity
	}
	return &DecisionBuffer{buf: make([]Decision, n)}
}

// Add records one decision, evicting the oldest when full.
func (b *DecisionBuffer) Add(d Decision) {
	b.mu.Lock()
	b.buf[b.next] = d
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
	b.mu.Unlock()
}

// Len returns the number of buffered decisions.
func (b *DecisionBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// Snapshot returns the buffered decisions oldest-first.
func (b *DecisionBuffer) Snapshot() []Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.full {
		return append([]Decision(nil), b.buf[:b.next]...)
	}
	out := make([]Decision, 0, len(b.buf))
	out = append(out, b.buf[b.next:]...)
	out = append(out, b.buf[:b.next]...)
	return out
}

// Handler serves the buffered decisions as a JSON array (the
// /debug/decisions endpoint).
func (b *DecisionBuffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(b.Snapshot())
	})
}
