package tenant

import (
	"fmt"
	"sync"

	"ramsis/internal/admit"
)

// DefaultBurstSec is the default token-bucket depth in seconds of
// fair-share rate. Two seconds absorbs Poisson jitter at any realistic
// rate (the standard deviation of arrivals over the burst window grows as
// √rate while the bucket grows linearly), so a compliant tenant virtually
// never dips into borrowing.
const DefaultBurstSec = 2

// FairConfig parameterizes weighted-fair admission.
type FairConfig struct {
	// CapacityQPS is the plane's admission capacity: the aggregate rate
	// the deployment was provisioned (policies solved) for. Each tenant's
	// fair share is CapacityQPS × weight/Σweights. Zero defaults to the
	// registry's total contracted rate.
	CapacityQPS float64
	// BurstSec is the default bucket depth in seconds of fair-share rate
	// for tenants that do not set their own (default DefaultBurstSec).
	BurstSec float64
	// NoBorrow disables work-conserving borrowing: over-share traffic is
	// always shed, even when the plane has idle capacity. The default
	// (borrowing on) sheds over-share traffic only when the plane's
	// aggregate admission bucket is empty — strict weighted fairness under
	// contention, work conservation otherwise.
	NoBorrow bool
	// BorrowReserve reserves queue headroom for within-share traffic: a
	// borrow attempt is screened by the inner admitter as if BorrowReserve
	// additional queries were already outstanding, so borrowers can fill a
	// capped queue only up to Limit−BorrowReserve slots. Without a reserve,
	// an overloading tenant's borrowed backlog occupies the whole queue
	// whenever real drain lags modeled capacity, and compliant tenants —
	// despite holding admission tokens — lose the race for freed slots.
	BorrowReserve int
}

// Reason classifies an admission outcome.
type Reason string

const (
	// ReasonFair marks a query admitted within its tenant's fair share.
	ReasonFair Reason = "fair"
	// ReasonBorrowed marks a query over its tenant's fair share admitted
	// from the plane's idle headroom.
	ReasonBorrowed Reason = "borrowed"
	// ReasonOverShare marks a query shed because its tenant exhausted its
	// fair share and the plane had no headroom to lend.
	ReasonOverShare Reason = "over_share"
	// ReasonInner marks a query shed by the layered inner admitter
	// (deadline unmeetable or queue cap) despite being within fair share.
	ReasonInner Reason = "inner"
	// ReasonUnknown marks a query shed because its tenant is not
	// registered.
	ReasonUnknown Reason = "unknown_tenant"
)

// Verdict is a tenant-aware admission decision: the layered inner
// admitter's verdict plus the fairness outcome.
type Verdict struct {
	admit.Verdict
	Tenant string
	Reason Reason
}

// Counts aggregates one tenant's admission outcomes.
type Counts struct {
	Admitted  uint64 // within fair share
	Borrowed  uint64 // admitted from idle headroom (also progress)
	OverShare uint64 // shed: fair share exhausted, no headroom
	InnerShed uint64 // shed by the inner admitter while within share
}

// Offered returns every decision made for the tenant.
func (c Counts) Offered() uint64 { return c.Admitted + c.Borrowed + c.OverShare + c.InnerShed }

// Shed returns the rejected total.
func (c Counts) Shed() uint64 { return c.OverShare + c.InnerShed }

// bucket is one tenant's token bucket. Tokens refill at the tenant's
// fair-share rate and cap at burst; an admit spends one token.
type bucket struct {
	rate   float64 // fair-share QPS
	burst  float64 // max tokens
	tokens float64
	last   float64 // modeled seconds of the last refill
	counts Counts
}

func (b *bucket) refill(now float64) {
	if now > b.last {
		b.tokens += (now - b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// FairAdmitter layers deficit-free weighted fairness over an inner
// admit.Admitter (PR 5's deadline/cap gates): each tenant owns a token
// bucket refilled at its weight-proportional share of the plane's
// capacity, and a plane-wide bucket refilled at the full capacity meters
// work-conserving borrowing. An over-share tenant is shed the moment the
// plane bucket empties — before any within-share tenant is touched — which
// is what keeps a compliant tenant's goodput intact while a neighbor
// offers 4× its contract. Starvation-freedom is structural: every
// positive-weight tenant's own bucket refills regardless of what the
// others offer.
//
// All decisions run under one mutex; the critical section is a handful of
// float operations, far below the per-arrival cost of routing. Time is the
// caller's modeled clock (admit.Request.Now), so the same admitter runs
// unchanged under the simulator and the live frontends.
type FairAdmitter struct {
	inner admit.Admitter
	reg   *Registry
	cfg   FairConfig

	mu      sync.Mutex
	version uint64
	plane   bucket // aggregate headroom meter for borrowing
	buckets map[string]*bucket
}

// NewFairAdmitter builds the weighted-fair layer over inner (nil inner
// admits everything within the bucket discipline).
func NewFairAdmitter(reg *Registry, inner admit.Admitter, cfg FairConfig) *FairAdmitter {
	if inner == nil {
		inner = admit.None{}
	}
	if cfg.BurstSec <= 0 {
		cfg.BurstSec = DefaultBurstSec
	}
	f := &FairAdmitter{inner: inner, reg: reg, cfg: cfg, buckets: map[string]*bucket{}}
	f.rebuild(0)
	return f
}

// Name identifies the layered policy in metric labels and flags.
func (f *FairAdmitter) Name() string { return "fair+" + f.inner.Name() }

// capacity resolves the effective plane capacity for the current registry
// generation.
func (f *FairAdmitter) capacity() float64 {
	if f.cfg.CapacityQPS > 0 {
		return f.cfg.CapacityQPS
	}
	return f.reg.TotalRate()
}

// rebuild resyncs buckets with the registry generation at modeled time
// now: surviving tenants keep their token level (clamped to the new
// burst), new tenants start full so a reload never sheds their first
// burst, and departed tenants are dropped. Callers hold f.mu.
func (f *FairAdmitter) rebuild(now float64) {
	snap := f.reg.snap.Load()
	cap := f.capacity()
	next := make(map[string]*bucket, len(snap.list))
	for _, t := range snap.list {
		share := cap * t.Weight / snap.weight
		burstSec := t.BurstSec
		if burstSec <= 0 {
			burstSec = f.cfg.BurstSec
		}
		b := &bucket{rate: share, burst: share * burstSec, last: now}
		if old, ok := f.buckets[t.Name]; ok {
			old.refill(now)
			b.tokens = old.tokens
			b.counts = old.counts
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
			b.last = old.last
		} else {
			b.tokens = b.burst
		}
		next[t.Name] = b
	}
	f.buckets = next
	f.plane.rate = cap
	f.plane.burst = cap * f.cfg.BurstSec
	if f.version == 0 {
		f.plane.tokens = f.plane.burst
	} else if f.plane.tokens > f.plane.burst {
		f.plane.tokens = f.plane.burst
	}
	f.version = snap.version
}

// Admit decides one arrival for the named tenant (empty name resolves to
// DefaultName when registered).
func (f *FairAdmitter) Admit(name string, r admit.Request) Verdict {
	if name == "" {
		name = DefaultName
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if v := f.reg.Version(); v != f.version {
		f.rebuild(r.Now)
	}
	b, ok := f.buckets[name]
	if !ok {
		return Verdict{Tenant: name, Reason: ReasonUnknown, Verdict: admit.Verdict{RetryAfter: 1}}
	}
	b.refill(r.Now)
	f.plane.refill(r.Now)

	if b.tokens >= 1 {
		iv := f.inner.Admit(r)
		if !iv.Admit {
			b.counts.InnerShed++
			return Verdict{Tenant: name, Reason: ReasonInner, Verdict: iv}
		}
		b.tokens--
		// Fair admits are guaranteed, but they consume real capacity: let the
		// plane bucket go negative (debt) rather than clamping, or borrowers
		// would double-spend tokens the fair traffic already used. Debt is
		// bounded by the sum of tenant bursts and repays at the plane's idle
		// surplus rate.
		f.plane.tokens--
		b.counts.Admitted++
		return Verdict{Tenant: name, Reason: ReasonFair, Verdict: iv}
	}

	// Over fair share: admit from plane headroom if any remains. The inner
	// check sees BorrowReserve phantom outstanding queries, keeping that
	// many queue slots exclusive to within-share traffic.
	if !f.cfg.NoBorrow && f.plane.tokens >= 1 {
		br := r
		if f.cfg.BorrowReserve > 0 {
			br.Outstanding += f.cfg.BorrowReserve
		}
		iv := f.inner.Admit(br)
		if !iv.Admit {
			b.counts.InnerShed++
			return Verdict{Tenant: name, Reason: ReasonInner, Verdict: iv}
		}
		f.plane.tokens--
		b.counts.Borrowed++
		return Verdict{Tenant: name, Reason: ReasonBorrowed, Verdict: iv}
	}
	b.counts.OverShare++
	retry := 1.0
	if b.rate > 0 {
		retry = (1 - b.tokens) / b.rate
	}
	return Verdict{Tenant: name, Reason: ReasonOverShare, Verdict: admit.Verdict{RetryAfter: retry}}
}

// AdmitTenant is the simulator-facing view (sim.TenantAdmitter): the plain
// admit.Verdict of a tenant-aware decision.
func (f *FairAdmitter) AdmitTenant(name string, r admit.Request) admit.Verdict {
	return f.Admit(name, r).Verdict
}

// Share returns the tenant's current fair-share rate in QPS (0 for an
// unknown tenant).
func (f *FairAdmitter) Share(name string) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b, ok := f.buckets[name]; ok {
		return b.rate
	}
	return 0
}

// CountsFor returns one tenant's admission outcome counters.
func (f *FairAdmitter) CountsFor(name string) Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b, ok := f.buckets[name]; ok {
		return b.counts
	}
	return Counts{}
}

// AllCounts snapshots every tenant's counters.
func (f *FairAdmitter) AllCounts() map[string]Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]Counts, len(f.buckets))
	for name, b := range f.buckets {
		out[name] = b.counts
	}
	return out
}

// String describes the configuration for startup logs.
func (f *FairAdmitter) String() string {
	return fmt.Sprintf("weighted-fair admission: capacity %.0f QPS, burst %.1fs, borrow %v, inner %s",
		f.capacity(), f.cfg.BurstSec, !f.cfg.NoBorrow, f.inner.Name())
}
