package mdp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// Compiled is a cache-friendly compiled form of an MDP: the pointer-chasing
// [][]Action → []Transition representation flattened into contiguous arrays
// in CSR style. Actions of state s occupy [actOff[s], actOff[s+1]) of the
// per-action arrays; transitions of (global) action a occupy
// [trOff[a], trOff[a+1]) of the per-transition arrays. A Bellman backup then
// streams sequentially through reward/trOff/next/prob instead of chasing one
// heap object per action, which is where the solver's time goes once the
// sweep is parallelized.
//
// The solve kernels on Compiled perform exactly the same floating-point
// operations in exactly the same order as the slice-form solvers (same
// Jacobi double-buffering, same action and transition ordering), so values
// and policies are byte-identical between the two forms — the property the
// equivalence tests pin.
type Compiled struct {
	n      int
	actOff []int32   // len n+1: action index range per state
	reward []float64 // per action: expected immediate reward
	label  []int32   // per action: Action.Label
	trOff  []int32   // len numActions+1: transition index range per action
	next   []int32   // per transition: successor state
	prob   []float64 // per transition: probability

	// Reverse adjacency for the prioritized solver, built lazily by
	// predecessors() and shared across solves on this Compiled.
	predOnce sync.Once
	pred     *predCSR
}

// Compile flattens an MDP into its compiled form. The MDP must be valid
// (every state has at least one action); Compile is cheap relative to one
// Bellman sweep, so callers compile once and solve many times.
func Compile(m *MDP) *Compiled {
	n := m.NumStates()
	numActs := 0
	numTr := 0
	for _, acts := range m.Actions {
		numActs += len(acts)
		for _, a := range acts {
			numTr += len(a.Transitions)
		}
	}
	if numActs >= math.MaxInt32 || numTr >= math.MaxInt32 {
		panic(fmt.Sprintf("mdp: MDP too large to compile (%d actions, %d transitions)", numActs, numTr))
	}
	c := &Compiled{
		n:      n,
		actOff: make([]int32, n+1),
		reward: make([]float64, numActs),
		label:  make([]int32, numActs),
		trOff:  make([]int32, numActs+1),
		next:   make([]int32, numTr),
		prob:   make([]float64, numTr),
	}
	ai, ti := int32(0), int32(0)
	for s, acts := range m.Actions {
		c.actOff[s] = ai
		for _, a := range acts {
			c.reward[ai] = a.Reward
			c.label[ai] = int32(a.Label)
			c.trOff[ai] = ti
			for _, tr := range a.Transitions {
				c.next[ti] = tr.Next
				c.prob[ti] = tr.P
				ti++
			}
			ai++
		}
	}
	c.actOff[n] = ai
	c.trOff[ai] = ti
	return c
}

// backup accumulates one action's Bellman backup: reward + Σ gp[k]*v[next[k]],
// in transition order. The 4-way unroll keeps a single accumulator — the adds
// stay in the same order with the same rounding as the rolled loop, so the
// result is bit-identical; the unroll only amortizes loop control and lets
// the loads of the next group issue while the accumulator chain drains.
func backup(q float64, gps []float64, nxs []int32, v []float64) float64 {
	nxs = nxs[:len(gps)] // bounds-check elimination for nxs[j]
	j := 0
	for ; j+4 <= len(gps); j += 4 {
		q += gps[j] * v[nxs[j]]
		q += gps[j+1] * v[nxs[j+1]]
		q += gps[j+2] * v[nxs[j+2]]
		q += gps[j+3] * v[nxs[j+3]]
	}
	for ; j < len(gps); j++ {
		q += gps[j] * v[nxs[j]]
	}
	return q
}

// scaledProbs returns gamma*prob per transition, precomputed once per
// solve. The kernels accumulate gamma * P * v[next], which associates as
// (gamma * P) * v[next]; hoisting the first multiply out of the sweep
// keeps every rounding step identical while halving the FLOPs of the
// inner loop across the solve's hundreds of sweeps.
func (c *Compiled) scaledProbs(gamma float64) []float64 {
	gp := make([]float64, len(c.prob))
	for i, p := range c.prob {
		gp[i] = gamma * p
	}
	return gp
}

// NumStates returns |S|.
func (c *Compiled) NumStates() int { return c.n }

// NumActions returns the total action count across states.
func (c *Compiled) NumActions() int { return len(c.reward) }

// NumTransitions returns the total sparse transition count.
func (c *Compiled) NumTransitions() int { return len(c.next) }

// Label returns the Action.Label of state s's action ai.
func (c *Compiled) Label(s, ai int) int { return int(c.label[int(c.actOff[s])+ai]) }

// ValueIteration solves the compiled MDP by synchronous Bellman optimality
// backups, exactly as ValueIteration does on the slice form: same Jacobi
// double-buffering, same partitioned persistent worker pool, byte-identical
// values and policies for every SolveOptions.Parallel setting. With
// SolveOptions.InitialValues it warm-starts from a previous solve's value
// vector and typically converges in far fewer sweeps.
func (c *Compiled) ValueIteration(opts SolveOptions) (Result, error) {
	opts = opts.withDefaults()
	if opts.Gamma <= 0 || opts.Gamma >= 1 {
		return Result{}, fmt.Errorf("mdp: gamma %v outside (0,1)", opts.Gamma)
	}
	n := c.n
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	v := make([]float64, n)
	if err := opts.initialValues(v); err != nil {
		return Result{}, err
	}
	next := make([]float64, n)
	pol := make(Policy, n)
	gp := c.scaledProbs(opts.Gamma)

	sweepChunk := func(lo, hi int) float64 {
		actOff, trOff, reward, succ := c.actOff, c.trOff, c.reward, c.next
		residual := 0.0
		for s := lo; s < hi; s++ {
			best := math.Inf(-1)
			bestA := 0
			a0, a1 := actOff[s], actOff[s+1]
			for a := a0; a < a1; a++ {
				q := backup(reward[a], gp[trOff[a]:trOff[a+1]], succ[trOff[a]:trOff[a+1]], v)
				if q > best {
					best = q
					bestA = int(a - a0)
				}
			}
			if d := math.Abs(best - v[s]); d > residual {
				residual = d
			}
			next[s] = best
			pol[s] = bestA
		}
		return residual
	}

	sweep, stop := newSweepPool(workers, n, sweepChunk)
	defer stop()

	it := 0
	for ; it < opts.MaxIter; it++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			return Result{Values: v, Policy: pol, Iterations: it}, ErrDeadline
		}
		residual := sweep()
		v, next = next, v
		if residual < opts.Tol {
			it++
			break
		}
	}
	return Result{Values: v, Policy: pol, Iterations: it}, nil
}

// PolicyEvaluation computes the discounted value of a fixed policy on the
// compiled form, matching PolicyEvaluation on the slice form bit for bit.
func (c *Compiled) PolicyEvaluation(pol Policy, opts SolveOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := c.n
	if len(pol) != n {
		return nil, fmt.Errorf("mdp: policy length %d != states %d", len(pol), n)
	}
	v := make([]float64, n)
	if err := opts.initialValues(v); err != nil {
		return nil, err
	}
	gp := c.scaledProbs(opts.Gamma)
	for it := 0; it < opts.MaxIter; it++ {
		residual := 0.0
		for s := 0; s < n; s++ {
			a := c.actOff[s] + int32(pol[s])
			q := backup(c.reward[a], gp[c.trOff[a]:c.trOff[a+1]], c.next[c.trOff[a]:c.trOff[a+1]], v)
			if d := math.Abs(q - v[s]); d > residual {
				residual = d
			}
			v[s] = q
		}
		if residual < opts.Tol {
			break
		}
	}
	return v, nil
}

// PolicyIteration solves the compiled MDP by alternating evaluation and
// greedy improvement, matching PolicyIteration on the slice form bit for
// bit.
func (c *Compiled) PolicyIteration(opts SolveOptions) (Result, error) {
	opts = opts.withDefaults()
	n := c.n
	pol := make(Policy, n)
	gp := c.scaledProbs(opts.Gamma)
	var v []float64
	for it := 1; it <= opts.MaxIter; it++ {
		var err error
		v, err = c.PolicyEvaluation(pol, opts)
		if err != nil {
			return Result{}, err
		}
		changed := false
		for s := 0; s < n; s++ {
			best := math.Inf(-1)
			bestA := pol[s]
			a0, a1 := c.actOff[s], c.actOff[s+1]
			for a := a0; a < a1; a++ {
				q := backup(c.reward[a], gp[c.trOff[a]:c.trOff[a+1]], c.next[c.trOff[a]:c.trOff[a+1]], v)
				if q > best+1e-12 {
					best = q
					bestA = int(a - a0)
				}
			}
			if bestA != pol[s] {
				pol[s] = bestA
				changed = true
			}
		}
		if !changed {
			return Result{Values: v, Policy: pol, Iterations: it}, nil
		}
	}
	return Result{Values: v, Policy: pol, Iterations: opts.MaxIter}, nil
}

// StationaryDistribution computes the stationary distribution of the chain
// induced by the policy via lazy power iteration on the compiled form,
// matching StationaryDistribution on the slice form bit for bit.
func (c *Compiled) StationaryDistribution(pol Policy, tol float64, maxIter int) ([]float64, error) {
	n := c.n
	if len(pol) != n {
		return nil, fmt.Errorf("mdp: policy length %d != states %d", len(pol), n)
	}
	if tol == 0 {
		tol = 1e-12
	}
	if maxIter == 0 {
		maxIter = 200000
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		for i := range next {
			next[i] = 0.5 * x[i] // lazy self-loop half
		}
		for s := 0; s < n; s++ {
			a := c.actOff[s] + int32(pol[s])
			w := 0.5 * x[s]
			for k := c.trOff[a]; k < c.trOff[a+1]; k++ {
				next[c.next[k]] += w * c.prob[k]
			}
		}
		// Renormalize to absorb pruned probability mass drift.
		sum := 0.0
		for _, p := range next {
			sum += p
		}
		diff := 0.0
		for i := range next {
			next[i] /= sum
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < tol {
			break
		}
	}
	return x, nil
}
