// Package admit is the overload-protection subsystem: deadline-aware
// admission control, bounded-queue shedding, degraded-mode serving, and a
// retry budget for dispatch failover.
//
// RAMSIS's MDP policies maximize accuracy subject to a latency SLO, but the
// formulation assumes the offered load matches the rate the policy was
// solved for. When a burst exceeds what even the fastest model can serve,
// queues grow without bound and every query — not just the excess — blows
// the SLO. Admission control bounds that failure: queries whose deadline is
// already unmeetable (or that would push the queue past its bound) are shed
// at arrival, so the queries that are admitted still meet their deadlines.
// The metric that admission optimizes is goodput — the fraction of all
// offered queries answered within the SLO — rather than the violation rate
// over the (shrinking) admitted set.
//
// Three admitters ship: None (admit everything, the historical behaviour),
// Deadline (estimate the candidate's queue wait from the profiled
// latencies of already-enqueued work plus its own best-case inference time;
// shed it if arrival + SLO·margin is unmeetable even under optimistic
// assumptions), and Cap (bounded queue, the paper's N_w bound enforced
// online). Deadline never sheds a query that an ideally scheduled system
// could serve: the wait estimate assumes every worker drains the backlog at
// the fastest model's best profiled throughput.
package admit

import (
	"fmt"
	"math"
	"strings"
)

// Estimator converts a queue backlog into time. core.WaitEstimator is the
// production implementation (derived from the profiled latency tables); the
// interface keeps this package free of core's solver dependencies.
type Estimator interface {
	// Wait returns the estimated seconds until a query arriving behind
	// `outstanding` queued or in-flight queries begins service.
	Wait(outstanding int) float64
	// Service returns the candidate's own best-case inference seconds.
	Service() float64
}

// Request describes one arriving query to an admitter.
type Request struct {
	// Now is the arrival time in modeled seconds.
	Now float64
	// Outstanding counts the queries already queued or in flight that the
	// candidate would wait behind, summed across workers.
	Outstanding int
}

// Verdict is an admission decision.
type Verdict struct {
	Admit bool
	// RetryAfter is the suggested client back-off in seconds (shed
	// verdicts only): the estimated time for the backlog to drain enough
	// that a retry would be admitted, assuming no new arrivals.
	RetryAfter float64
	// EstWait is the estimated queue wait used for the decision; the
	// degrader consumes it as its pressure signal.
	EstWait float64
}

// Admitter decides, per arriving query, whether to enqueue or shed it. It
// must be safe for concurrent use: the serve frontend calls it from every
// request handler.
type Admitter interface {
	Admit(r Request) Verdict
	Name() string
}

// None admits everything — the behaviour before admission control existed.
type None struct{}

// Name identifies the policy in flags and metric labels.
func (None) Name() string { return "none" }

// Admit always admits.
func (None) Admit(Request) Verdict { return Verdict{Admit: true} }

// Deadline sheds queries whose deadline arrival + SLO·Margin is already
// unmeetable: the estimated queue wait plus the candidate's own best-case
// inference time exceeds the deadline budget. The estimate is deliberately
// optimistic (fastest model, best profiled throughput, all workers
// draining), so a shed query was hopeless even in the best case — the
// admitter never sheds work an ideal schedule could have served.
type Deadline struct {
	// SLO is the latency objective in seconds.
	SLO float64
	// Margin scales the SLO into the admission deadline (default 1.0).
	// Below 1 sheds earlier, reserving headroom for dispatch overhead and
	// latency noise; above 1 tolerates bounded lateness.
	Margin float64
	// Est estimates queue wait and service time from the profiles.
	Est Estimator
}

// Name identifies the policy in flags and metric labels.
func (Deadline) Name() string { return "deadline" }

// Admit applies the deadline test.
func (d Deadline) Admit(r Request) Verdict {
	margin := d.Margin
	if margin <= 0 {
		margin = 1
	}
	wait := d.Est.Wait(r.Outstanding)
	budget := d.SLO*margin - d.Est.Service()
	if wait <= budget {
		return Verdict{Admit: true, EstWait: wait}
	}
	return Verdict{EstWait: wait, RetryAfter: wait - budget}
}

// Cap sheds queries once the outstanding backlog reaches Limit, enforcing
// online the queue bound N_w the MDP state space assumes offline (states
// beyond N_w collapse into the overflow state, where the policy's
// guarantees no longer hold). One knob — core.Config.MaxQueue — bounds
// both.
type Cap struct {
	// Limit is the maximum admitted backlog (queued + in flight), summed
	// across workers.
	Limit int
	// Est, when set, converts the excess backlog into a Retry-After hint;
	// without it shed verdicts suggest one second.
	Est Estimator
}

// Name identifies the policy in flags and metric labels.
func (Cap) Name() string { return "cap" }

// Admit applies the queue bound.
func (c Cap) Admit(r Request) Verdict {
	var wait float64
	if c.Est != nil {
		wait = c.Est.Wait(r.Outstanding)
	}
	if r.Outstanding < c.Limit {
		return Verdict{Admit: true, EstWait: wait}
	}
	retry := 1.0
	if c.Est != nil {
		// Time for the backlog to drain below the bound, no new arrivals.
		if d := c.Est.Wait(r.Outstanding-c.Limit+1) - c.Est.Wait(0); d > 0 {
			retry = d
		}
	}
	return Verdict{EstWait: wait, RetryAfter: retry}
}

// Policies lists the admitter names New accepts.
func Policies() []string { return []string{"none", "deadline", "cap"} }

// New builds an admitter by flag name: "none", "deadline", or "cap".
// slo and margin parameterize the deadline test; capLimit bounds the cap
// admitter (it must be positive when name is "cap"). est supplies the
// wait estimation for both deadline shedding and Retry-After hints.
func New(name string, slo, margin float64, capLimit int, est Estimator) (Admitter, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return None{}, nil
	case "deadline":
		if est == nil {
			return nil, fmt.Errorf("admit: deadline admitter needs a wait estimator")
		}
		return Deadline{SLO: slo, Margin: margin, Est: est}, nil
	case "cap":
		if capLimit < 1 {
			return nil, fmt.Errorf("admit: cap admitter needs a positive queue bound, got %d", capLimit)
		}
		return Cap{Limit: capLimit, Est: est}, nil
	}
	return nil, fmt.Errorf("admit: unknown admitter %q (want one of %v)", name, Policies())
}

// RetryAfterSeconds rounds a Retry-After hint up to the whole seconds an
// HTTP Retry-After header carries, never below one.
func RetryAfterSeconds(retryAfter float64) int {
	s := int(math.Ceil(retryAfter))
	if s < 1 {
		s = 1
	}
	return s
}
