// Package monitor implements query-load monitors (§3 "load monitor"): RAMSIS
// and the baselines both anticipate query load from the same monitor. The
// paper's implementation tracks load as a moving average over a 500 ms
// window [38, 57]; constant-load experiments (§7.2) assume a perfect
// predictor, modeled here as an oracle.
package monitor

import "ramsis/internal/trace"

// Monitor estimates the current query load (QPS) at the central queue.
type Monitor interface {
	// Observe records a query arrival at time t (seconds). Arrival times
	// must be non-decreasing.
	Observe(t float64)
	// Load returns the anticipated query load in QPS at time t.
	Load(t float64) float64
}

// MovingAverage tracks load as arrivals over a trailing window.
type MovingAverage struct {
	window   float64
	arrivals []float64
	head     int
}

// NewMovingAverage returns a monitor with the given window in seconds.
// The paper uses 0.5 s.
func NewMovingAverage(window float64) *MovingAverage {
	if window <= 0 {
		window = 0.5
	}
	return &MovingAverage{window: window}
}

// Observe records an arrival.
func (m *MovingAverage) Observe(t float64) {
	m.arrivals = append(m.arrivals, t)
	m.evict(t)
}

// Load returns the windowed arrival rate at time t.
func (m *MovingAverage) Load(t float64) float64 {
	m.evict(t)
	return float64(len(m.arrivals)-m.head) / m.window
}

// evict drops arrivals older than the window, compacting occasionally so the
// slice does not grow without bound.
func (m *MovingAverage) evict(t float64) {
	lo := t - m.window
	for m.head < len(m.arrivals) && m.arrivals[m.head] < lo {
		m.head++
	}
	if m.head > 4096 && m.head*2 > len(m.arrivals) {
		m.arrivals = append(m.arrivals[:0], m.arrivals[m.head:]...)
		m.head = 0
	}
}

// Oracle returns the true trace load, the perfect predictor of §7.2.
type Oracle struct {
	Trace trace.Trace
}

// Observe is a no-op: the oracle already knows the trace.
func (Oracle) Observe(float64) {}

// Load returns the trace load at time t.
func (o Oracle) Load(t float64) float64 { return o.Trace.QPSAt(t) }
