package sim

import (
	"math"
	"math/rand"
	"testing"

	"ramsis/internal/profile"
	"ramsis/internal/telemetry"
	"ramsis/internal/trace"
)

func imageProfiles() profile.Set { return profile.ImageSet() }

func TestFixedModelSingleQuery(t *testing.T) {
	ps := imageProfiles()
	fast := 0 // shufflenet_v2_x0_5 is first
	e := NewEngine(ps, 0.150, 1, Deterministic{}, &FixedModel{Model: fast, MaxBatch: 8}, 1)
	m := e.Run([]float64{0})
	if m.Served != 1 || m.Violations != 0 {
		t.Fatalf("metrics = %+v, want 1 served 0 violations", m)
	}
	want := ps.Profiles[fast].Accuracy
	if math.Abs(m.AccuracyPerSatisfiedQuery()-want) > 1e-12 {
		t.Errorf("accuracy = %v, want %v", m.AccuracyPerSatisfiedQuery(), want)
	}
	if m.Decisions != 1 {
		t.Errorf("decisions = %d, want 1", m.Decisions)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	ps := imageProfiles()
	slow, _ := indexOf(ps, "efficientnet_v2_s")
	// SLO below the model's batch-1 latency: every query misses.
	e := NewEngine(ps, 0.050, 1, Deterministic{}, &FixedModel{Model: slow, MaxBatch: 1}, 1)
	m := e.Run([]float64{0, 0.001, 0.002})
	if m.Served != 3 || m.Violations != 3 {
		t.Fatalf("metrics = %+v, want 3 served 3 violations", m)
	}
	if m.ViolationRate() != 1 {
		t.Errorf("violation rate = %v, want 1", m.ViolationRate())
	}
	if m.AccuracyPerSatisfiedQuery() != 0 {
		t.Errorf("accuracy with no satisfied queries = %v, want 0", m.AccuracyPerSatisfiedQuery())
	}
}

func TestQueueingDelayCountsAgainstSLO(t *testing.T) {
	ps := imageProfiles()
	fast := 0
	l1 := ps.Profiles[fast].BatchLatency(1)
	// Two simultaneous arrivals, one worker, batch cap 1: second query waits
	// a full service time. SLO between 1x and 2x latency => one violation.
	slo := 1.5 * l1
	e := NewEngine(ps, slo, 1, Deterministic{}, &FixedModel{Model: fast, MaxBatch: 1}, 1)
	m := e.Run([]float64{0, 0})
	if m.Served != 2 || m.Violations != 1 {
		t.Fatalf("metrics = %+v, want 2 served 1 violation", m)
	}
}

func TestBatchingServesTogether(t *testing.T) {
	ps := imageProfiles()
	fast := 0
	e := NewEngine(ps, 1.0, 1, Deterministic{}, &FixedModel{Model: fast, MaxBatch: 8}, 1)
	// Occupy the worker, letting 5 queries accumulate, then they batch.
	m := e.Run([]float64{0, 0.001, 0.002, 0.003, 0.004, 0.005})
	if m.Decisions != 2 {
		t.Fatalf("decisions = %d, want 2 (1 then batch of 5)", m.Decisions)
	}
	if m.Served != 6 || m.Violations != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestConservationAllQueriesAccounted(t *testing.T) {
	ps := imageProfiles()
	arr := trace.PoissonArrivals(trace.Constant(300, 10), 3)
	e := NewEngine(ps, 0.150, 8, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 16}, 1)
	m := e.Run(arr)
	if m.Served+m.Unserved != len(arr) {
		t.Fatalf("served %d + unserved %d != arrivals %d", m.Served, m.Unserved, len(arr))
	}
	if m.Unserved != 0 {
		t.Errorf("eager scheduler left %d queries unserved", m.Unserved)
	}
	total := 0
	for _, c := range m.ModelCounts {
		total += c
	}
	if total != m.Served {
		t.Errorf("model counts total %d != served %d", total, m.Served)
	}
}

func TestDeterministicReplay(t *testing.T) {
	ps := imageProfiles()
	arr := trace.PoissonArrivals(trace.Constant(500, 5), 9)
	run := func() Metrics {
		e := NewEngine(ps, 0.150, 4, Stochastic{StdDev: 0.010}, &FixedModel{Model: 0, MaxBatch: 8}, 42)
		return e.Run(arr)
	}
	a, b := run(), run()
	if a.Served != b.Served || a.Violations != b.Violations || a.SatAccSum != b.SatAccSum {
		t.Error("simulation not deterministic for fixed seed")
	}
}

func TestStochasticLatencyDistribution(t *testing.T) {
	ps := imageProfiles()
	p := ps.Profiles[0]
	s := Stochastic{StdDev: 0.010}
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	var below, sum float64
	for i := 0; i < n; i++ {
		v := s.Latency(p, 1, rng)
		sum += v
		if v <= p.BatchLatency(1) {
			below++
		}
		if v < p.BatchLatency(1)*0.25-1e-12 {
			t.Fatalf("sampled latency %v under floor", v)
		}
	}
	// The profile is the p95: ~95% of samples below it.
	frac := below / n
	if frac < 0.93 || frac > 0.97 {
		t.Errorf("fraction below p95 = %v, want ~0.95", frac)
	}
	mean := sum / n
	want := p.BatchLatency(1) - 1.645*s.EffectiveStdDev(p.BatchLatency(1))
	if math.Abs(mean-want) > 0.001 {
		t.Errorf("mean latency %v, want ~%v", mean, want)
	}
}

func TestCollectLatencies(t *testing.T) {
	ps := imageProfiles()
	e := NewEngine(ps, 0.5, 2, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 4}, 1)
	e.CollectLatencies = true
	m := e.Run([]float64{0, 0.01, 0.02})
	if len(m.Latencies) != 3 {
		t.Fatalf("collected %d latencies, want 3", len(m.Latencies))
	}
	for _, l := range m.Latencies {
		if l < ps.Profiles[0].BatchLatency(1)-1e-9 {
			t.Errorf("response latency %v below service latency", l)
		}
	}
}

func TestEngineRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine(0 workers) did not panic")
		}
	}()
	NewEngine(imageProfiles(), 0.1, 0, Deterministic{}, &FixedModel{}, 1)
}

func indexOf(s profile.Set, name string) (int, bool) {
	for i, p := range s.Profiles {
		if p.Name == name {
			return i, true
		}
	}
	return 0, false
}

func TestDropExpiredQueries(t *testing.T) {
	ps := imageProfiles()
	slow, _ := indexOf(ps, "efficientnet_v2_s")
	// One worker, slow model, tight SLO: a burst overwhelms it. With
	// DropExpired, already-late queries are discarded instead of served.
	arr := make([]float64, 20)
	for i := range arr {
		arr[i] = float64(i) * 0.001
	}
	run := func(drop bool) Metrics {
		e := NewEngine(ps, 0.300, 1, Deterministic{}, &FixedModel{Model: slow, MaxBatch: 1}, 1)
		e.DropExpired = drop
		return e.Run(arr)
	}
	noDrop := run(false)
	withDrop := run(true)
	if noDrop.Dropped != 0 {
		t.Fatalf("drops recorded with DropExpired off: %d", noDrop.Dropped)
	}
	if withDrop.Dropped == 0 {
		t.Fatal("no drops under overload with DropExpired on")
	}
	if withDrop.Served+withDrop.Dropped != len(arr) {
		t.Fatalf("accounting: served %d + dropped %d != %d", withDrop.Served, withDrop.Dropped, len(arr))
	}
	// Dropped queries count against the violation rate.
	if withDrop.ViolationRate() == 0 {
		t.Error("drops not reflected in the violation rate")
	}
	// Serving late (no drop) serves everything; dropping serves fewer.
	if noDrop.Served != len(arr) || withDrop.Served >= noDrop.Served {
		t.Errorf("served: noDrop %d, withDrop %d", noDrop.Served, withDrop.Served)
	}
}

func TestDropExpiredLeavesTimelyQueries(t *testing.T) {
	ps := imageProfiles()
	e := NewEngine(ps, 0.500, 2, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 4}, 1)
	e.DropExpired = true
	m := e.Run([]float64{0, 0.01, 0.02, 0.03})
	if m.Dropped != 0 || m.Served != 4 || m.Violations != 0 {
		t.Errorf("timely workload affected by DropExpired: %+v", m)
	}
}

func TestMetricsLatencyPercentiles(t *testing.T) {
	ps := imageProfiles()
	// Exact path: latencies collected.
	e := NewEngine(ps, 0.5, 2, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 4}, 1)
	e.CollectLatencies = true
	m := e.Run([]float64{0, 0.01, 0.02, 0.03, 0.04})
	if m.LatencyP50 <= 0 || m.LatencyP95 < m.LatencyP50 || m.LatencyP99 < m.LatencyP95 {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", m.LatencyP50, m.LatencyP95, m.LatencyP99)
	}
	// Histogram path: same run without collection must stay close.
	e2 := NewEngine(ps, 0.5, 2, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 4}, 1)
	m2 := e2.Run([]float64{0, 0.01, 0.02, 0.03, 0.04})
	if m2.LatencyP50 <= 0 {
		t.Fatal("histogram-backed p50 missing")
	}
	if rel := math.Abs(m2.LatencyP95-m.LatencyP95) / m.LatencyP95; rel > 0.5 {
		t.Errorf("histogram p95 %v far from exact %v", m2.LatencyP95, m.LatencyP95)
	}
}

func TestEngineTelemetryMatchesMetrics(t *testing.T) {
	ps := imageProfiles()
	reg := telemetry.NewRegistry()
	e := NewEngine(ps, 0.150, 2, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 4}, 1)
	e.Telemetry = reg
	var arr []float64
	for i := 0; i < 40; i++ {
		arr = append(arr, float64(i)*0.005)
	}
	m := e.Run(arr)
	if got := reg.Counter(telemetry.MetricQueries).Value(); int(got) != m.Served {
		t.Errorf("registry served %v, metrics %d", got, m.Served)
	}
	if got := reg.Counter(telemetry.MetricViolations).Value(); int(got) != m.Violations {
		t.Errorf("registry violations %v, metrics %d", got, m.Violations)
	}
	if got := reg.Counter(telemetry.MetricDecisions).Value(); int(got) != m.Decisions {
		t.Errorf("registry decisions %v, metrics %d", got, m.Decisions)
	}
	inf := reg.Histogram(telemetry.MetricStageSeconds, "stage", telemetry.StageInference)
	if inf.Count() != uint64(m.Decisions) {
		t.Errorf("inference stage samples %d, want one per decision (%d)", inf.Count(), m.Decisions)
	}
	bw := reg.Histogram(telemetry.MetricStageSeconds, "stage", telemetry.StageBatchWait)
	if bw.Count() != uint64(m.Served) {
		t.Errorf("batch_wait stage samples %d, want one per query (%d)", bw.Count(), m.Served)
	}
}
