package dist

import (
	"math"
	"testing"
)

func TestKthArrivalPDFPoissonIsErlang(t *testing.T) {
	p := NewPoisson(100)
	for k := 1; k <= 5; k++ {
		for _, x := range []float64{0.001, 0.01, 0.1} {
			got := p.KthArrivalPDF(k, x)
			want := ErlangPDF(k, 100, x)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("KthArrivalPDF(%d, %v) = %g, want %g", k, x, got, want)
			}
		}
	}
}

func TestKthArrivalPDFIntegratesToTail(t *testing.T) {
	// Integral of f_k over (0, T] must equal P[k-th arrival <= T]
	// = P[N(T) >= k].
	p := NewPoisson(200)
	const T = 0.05
	const n = 100000
	h := T / n
	for _, k := range []int{1, 3, 10} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += p.KthArrivalPDF(k, (float64(i)+0.5)*h)
		}
		got := sum * h
		want := PoissonTail(k, 200*T)
		if math.Abs(got-want) > 1e-5 {
			t.Errorf("k=%d: integral %g, want %g", k, got, want)
		}
	}
}

func TestKthArrivalTableMatchesDirect(t *testing.T) {
	p := NewPoisson(1500)
	const cells, kmax = 64, 40
	const delta = 0.5 / cells
	table := KthArrivalTable(p, kmax, cells, delta)
	for g := 0; g < cells; g += 7 {
		tg := (float64(g) + 0.5) * delta
		for k := 1; k <= kmax; k += 5 {
			want := p.KthArrivalPDF(k, tg)
			got := table[g][k-1]
			if want == 0 {
				if got > 1e-250 {
					t.Errorf("table[%d][%d] = %g, want ~0", g, k-1, got)
				}
				continue
			}
			if math.Abs(got-want)/want > 1e-9 {
				t.Errorf("table[%d][%d] = %g, want %g", g, k-1, got, want)
			}
		}
	}
}

func TestKthArrivalTableGamma(t *testing.T) {
	g := NewGamma(800, 3)
	table := KthArrivalTable(g, 10, 32, 0.001)
	for gi := 0; gi < 32; gi += 5 {
		tg := (float64(gi) + 0.5) * 0.001
		for k := 1; k <= 10; k++ {
			want := g.KthArrivalPDF(k, tg)
			got := table[gi][k-1]
			if want > 1e-200 && math.Abs(got-want)/want > 1e-9 {
				t.Errorf("gamma table[%d][%d] = %g, want %g", gi, k-1, got, want)
			}
		}
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %g, want %v", x, got, x)
		}
	}
	// I_x(2, 1) = x^2.
	if got := RegIncBeta(2, 1, 0.3); math.Abs(got-0.09) > 1e-12 {
		t.Errorf("I_0.3(2,1) = %g, want 0.09", got)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, c := range []struct{ a, b, x float64 }{{3, 7, 0.2}, {10, 2, 0.8}, {50, 60, 0.45}} {
		l := RegIncBeta(c.a, c.b, c.x)
		r := 1 - RegIncBeta(c.b, c.a, 1-c.x)
		if math.Abs(l-r) > 1e-10 {
			t.Errorf("symmetry broken at %+v: %g vs %g", c, l, r)
		}
	}
}

func TestBinomialTailExactSmall(t *testing.T) {
	// n=5, p=0.4: P[X >= 2] = 1 - P0 - P1.
	p0 := math.Pow(0.6, 5)
	p1 := 5 * 0.4 * math.Pow(0.6, 4)
	want := 1 - p0 - p1
	if got := BinomialTail(5, 2, 0.4); math.Abs(got-want) > 1e-12 {
		t.Errorf("BinomialTail(5,2,0.4) = %g, want %g", got, want)
	}
	if got := BinomialTail(5, 0, 0.4); got != 1 {
		t.Errorf("BinomialTail(5,0,·) = %g, want 1", got)
	}
	if got := BinomialTail(5, 6, 0.4); got != 0 {
		t.Errorf("BinomialTail(5,6,·) = %g, want 0", got)
	}
}

func TestBinomialTailLargeN(t *testing.T) {
	// Large-n sanity: P[Bin(3000, 0.5) >= 1500] ~ 0.5 (slightly above due
	// to the atom at the median).
	got := BinomialTail(3000, 1500, 0.5)
	if got < 0.49 || got > 0.52 {
		t.Errorf("BinomialTail(3000,1500,0.5) = %g, want ~0.5", got)
	}
	// Monotone in k.
	prev := 1.0
	for k := 0; k <= 3000; k += 100 {
		cur := BinomialTail(3000, k, 0.3)
		if cur > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d", k)
		}
		prev = cur
	}
}
