package llm

import (
	"math"
	"strings"
	"testing"
)

func TestStepTimeLinearForm(t *testing.T) {
	m := StepModel{
		Name: "m", Accuracy: 0.7,
		Beta0: 0.010, BetaPrefill: 1e-4, BetaDecode: 5e-4, BetaKV: 0.020,
		KVCapTokens: 4096, MaxStepTokens: 2048, MaxSeqs: 32,
	}
	got := m.StepTime(1000, 16, 0.5)
	want := 0.010 + 1e-4*1000 + 5e-4*16 + 0.020*0.25
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StepTime = %v, want %v", got, want)
	}
	if m.StepTime(0, 0, 0) != m.Beta0 {
		t.Fatalf("empty step should cost β₀, got %v", m.StepTime(0, 0, 0))
	}
}

func TestStepTimeMonotone(t *testing.T) {
	m := BuiltinSet().Models[0]
	if m.StepTime(100, 10, 0.5) >= m.StepTime(200, 10, 0.5) {
		t.Error("step time not increasing in prefill tokens")
	}
	if m.StepTime(100, 10, 0.5) >= m.StepTime(100, 20, 0.5) {
		t.Error("step time not increasing in decode tokens")
	}
	if m.StepTime(100, 10, 0.2) >= m.StepTime(100, 10, 0.9) {
		t.Error("step time not increasing in KV usage")
	}
}

func TestKVPenaltyClampedAndSuperlinear(t *testing.T) {
	if KVPenalty(-1) != 0 || KVPenalty(2) != 1 {
		t.Fatalf("KVPenalty not clamped: %v, %v", KVPenalty(-1), KVPenalty(2))
	}
	if !(KVPenalty(0.5) < 0.5) {
		t.Fatalf("KVPenalty(0.5) = %v, want < 0.5 (superlinear)", KVPenalty(0.5))
	}
}

func TestBuiltinSetSpansParetoFront(t *testing.T) {
	s := BuiltinSet()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	front := s.ParetoFront()
	if front.Len() != s.Len() {
		t.Fatalf("built-in set has %d models on the Pareto front, want all %d (selection must be non-trivial)",
			front.Len(), s.Len())
	}
	// The front must actually trade off: throughput strictly falls as
	// accuracy strictly rises.
	for i := 1; i < s.Len(); i++ {
		prev, cur := s.Models[i-1], s.Models[i]
		if !(cur.Accuracy > prev.Accuracy) {
			t.Errorf("accuracy not increasing: %s %.2f -> %s %.2f", prev.Name, prev.Accuracy, cur.Name, cur.Accuracy)
		}
		if !(cur.TokenRate(0.5, 0.5) < prev.TokenRate(0.5, 0.5)) {
			t.Errorf("throughput not decreasing: %s %.0f -> %s %.0f tok/s",
				prev.Name, prev.TokenRate(0.5, 0.5), cur.Name, cur.TokenRate(0.5, 0.5))
		}
	}
	if f := s.Fastest(); f != 0 {
		t.Errorf("Fastest = %d, want 0", f)
	}
	if a := s.MostAccurate(); a != s.Len()-1 {
		t.Errorf("MostAccurate = %d, want %d", a, s.Len()-1)
	}
}

func TestParetoFrontDropsDominated(t *testing.T) {
	s := BuiltinSet()
	dominated := s.Models[0]
	dominated.Name = "chat-8b-worse"
	dominated.Accuracy = s.Models[0].Accuracy - 0.05
	dominated.Beta0 *= 2
	s.Models = append(s.Models, dominated)
	front := s.ParetoFront()
	if front.IndexByName("chat-8b-worse") != -1 {
		t.Fatal("dominated model survived Pareto pruning")
	}
	if front.Len() != 3 {
		t.Fatalf("front has %d models, want 3", front.Len())
	}
}

func TestWithKVCapOverrides(t *testing.T) {
	s := BuiltinSet().WithKVCap(2048)
	for _, m := range s.Models {
		if m.KVCapTokens != 2048 {
			t.Fatalf("model %s KV cap %d, want 2048", m.Name, m.KVCapTokens)
		}
	}
	orig := BuiltinSet()
	if orig.Models[0].KVCapTokens == 2048 {
		t.Fatal("WithKVCap mutated the source set")
	}
	if got := orig.WithKVCap(0); got.Models[0].KVCapTokens != orig.Models[0].KVCapTokens {
		t.Fatal("WithKVCap(0) should be a no-op")
	}
}

func TestScalarProfilesPreserveNamesAndOrdering(t *testing.T) {
	s := BuiltinSet()
	ps := s.ScalarProfiles(300, 230, 32)
	if ps.Len() != s.Len() {
		t.Fatalf("scalar set has %d models, want %d", ps.Len(), s.Len())
	}
	for i, p := range ps.Profiles {
		m := s.Models[i]
		if p.Name != m.Name || p.Accuracy != m.Accuracy {
			t.Fatalf("profile %d = %s/%.2f, want %s/%.2f", i, p.Name, p.Accuracy, m.Name, m.Accuracy)
		}
		if p.MaxBatch() != 32 {
			t.Fatalf("profile %s max batch %d, want 32", p.Name, p.MaxBatch())
		}
		// Affine in batch size with positive slope.
		d1 := p.BatchLatency(2) - p.BatchLatency(1)
		d2 := p.BatchLatency(3) - p.BatchLatency(2)
		if !(d1 > 0) || math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("profile %s not affine: deltas %v, %v", p.Name, d1, d2)
		}
	}
	// The flattened view keeps the speed ordering: bigger models are
	// slower per batch.
	for i := 1; i < ps.Len(); i++ {
		if !(ps.Profiles[i].BatchLatency(8) > ps.Profiles[i-1].BatchLatency(8)) {
			t.Fatalf("scalar latency not increasing with model scale at %s", ps.Profiles[i].Name)
		}
	}
}

func TestStepModelValidation(t *testing.T) {
	base := BuiltinSet().Models[0]
	cases := map[string]func(*StepModel){
		"unnamed":       func(m *StepModel) { m.Name = "" },
		"accuracy":      func(m *StepModel) { m.Accuracy = 1.5 },
		"beta0":         func(m *StepModel) { m.Beta0 = 0 },
		"negative-beta": func(m *StepModel) { m.BetaDecode = -1 },
		"no-token-cost": func(m *StepModel) { m.BetaPrefill = 0; m.BetaDecode = 0 },
		"kv-cap":        func(m *StepModel) { m.KVCapTokens = 0 },
		"max-seqs":      func(m *StepModel) { m.MaxSeqs = 0 },
	}
	for name, mutate := range cases {
		m := base
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	dup := BuiltinSet()
	dup.Models = append(dup.Models, dup.Models[0])
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names: got %v", err)
	}
}

func TestClasses(t *testing.T) {
	for _, c := range Classes() {
		if c.In == nil || c.Out == nil {
			t.Fatalf("class %s has nil samplers", c.Name)
		}
		if f := c.PrefillFraction(); !(f > 0 && f < 1) {
			t.Fatalf("class %s prefill fraction %v outside (0,1)", c.Name, f)
		}
		got, err := ClassByName(c.Name)
		if err != nil || got.Name != c.Name {
			t.Fatalf("ClassByName(%s) = %v, %v", c.Name, got.Name, err)
		}
	}
	if _, err := ClassByName("nope"); err == nil {
		t.Fatal("expected error for unknown class")
	}
	// Codegen is the prefill-heavy class; general is balanced. The gap is
	// what the token-aware policy exploits.
	if !(CodegenClass().PrefillFraction() > GeneralClass().PrefillFraction()+0.2) {
		t.Fatalf("codegen prefill fraction %.2f not clearly above general %.2f",
			CodegenClass().PrefillFraction(), GeneralClass().PrefillFraction())
	}
}
