package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func threeTenants() []Tenant {
	return []Tenant{
		{Name: "interactive", Class: "interactive", SLOMS: 200, Weight: 2, RateQPS: 100},
		{Name: "standard", Class: "standard", SLOMS: 500, Weight: 1, RateQPS: 50},
		{Name: "batch", Class: "batch", SLOMS: 2000, Weight: 1, RateQPS: 50},
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		ts   []Tenant
		want string // substring of the error, "" for valid
	}{
		{"valid", threeTenants(), ""},
		{"empty set", nil, "empty tenant set"},
		{"empty name", []Tenant{{SLOMS: 100, Weight: 1, RateQPS: 1}}, "empty name"},
		{"zero slo", []Tenant{{Name: "a", Weight: 1, RateQPS: 1}}, "sloMs"},
		{"negative weight", []Tenant{{Name: "a", SLOMS: 100, Weight: -1, RateQPS: 1}}, "weight"},
		{"zero rate", []Tenant{{Name: "a", SLOMS: 100, Weight: 1}}, "rateQps"},
		{"negative burst", []Tenant{{Name: "a", SLOMS: 100, Weight: 1, RateQPS: 1, BurstSec: -2}}, "burstSec"},
		{"duplicate", []Tenant{
			{Name: "a", SLOMS: 100, Weight: 1, RateQPS: 1},
			{Name: "a", SLOMS: 200, Weight: 1, RateQPS: 1},
		}, "duplicate"},
	}
	for _, c := range cases {
		err := Validate(c.ts)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestParseForms(t *testing.T) {
	bare := `[{"name":"a","sloMs":100,"weight":1,"rateQps":10}]`
	wrapped := `{"tenants":[{"name":"a","sloMs":100,"weight":1,"rateQps":10}]}`
	for _, src := range []string{bare, wrapped} {
		ts, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("Parse(%s): %v", src, err)
		}
		if len(ts) != 1 || ts[0].Name != "a" || ts[0].SLO() != 0.1 {
			t.Errorf("Parse(%s) = %+v", src, ts)
		}
	}
	if _, err := Parse([]byte(`{"tenants":`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Parse([]byte(`[{"name":"a","sloMs":100,"weight":1}]`)); err == nil {
		t.Error("invalid tenant accepted")
	}
}

func TestRegistryLookupAndTotals(t *testing.T) {
	r, err := NewRegistry(threeTenants())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.TotalWeight(); got != 4 {
		t.Errorf("TotalWeight = %v, want 4", got)
	}
	if got := r.TotalRate(); got != 200 {
		t.Errorf("TotalRate = %v, want 200", got)
	}
	if tn, ok := r.Lookup("standard"); !ok || tn.SLO() != 0.5 {
		t.Errorf("Lookup(standard) = %+v, %v", tn, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup(nope) found a tenant")
	}
	if got := r.Names(); len(got) != 3 || got[0] != "batch" {
		t.Errorf("Names = %v, want sorted [batch interactive standard]", got)
	}
}

func TestResolveDefault(t *testing.T) {
	r, err := Single(DefaultName, 0.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tn, ok := r.Resolve(""); !ok || tn.Name != DefaultName || tn.SLO() != 0.2 {
		t.Errorf("Resolve(\"\") = %+v, %v", tn, ok)
	}
	multi, _ := NewRegistry(threeTenants())
	if _, ok := multi.Resolve(""); ok {
		t.Error("Resolve(\"\") succeeded without a registered default tenant")
	}
}

func TestReloadVersions(t *testing.T) {
	r, err := NewRegistry(threeTenants())
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Version(); v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}
	ts := threeTenants()
	ts[0].Weight = 5
	if err := r.Reload(ts); err != nil {
		t.Fatal(err)
	}
	if v := r.Version(); v != 2 {
		t.Errorf("version after reload = %d, want 2", v)
	}
	if tn, _ := r.Lookup("interactive"); tn.Weight != 5 {
		t.Errorf("reload not visible: weight = %v", tn.Weight)
	}
	// An invalid reload must leave the previous set live.
	if err := r.Reload(nil); err == nil {
		t.Fatal("invalid reload accepted")
	}
	if v := r.Version(); v != 2 {
		t.Errorf("failed reload bumped version to %d", v)
	}
}

func TestLoadAndReloadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, []byte(`[{"name":"a","sloMs":100,"weight":1,"rateQps":10}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("a"); !ok {
		t.Fatal("loaded tenant missing")
	}
	if err := os.WriteFile(path, []byte(`[{"name":"b","sloMs":100,"weight":1,"rateQps":10}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.ReloadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("b"); !ok {
		t.Error("reloaded tenant missing")
	}
	if err := r.ReloadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file reload accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadFile on missing path accepted")
	}
}
