package telemetry

import (
	"math"
	"strconv"
	"sync"
)

// DefaultSLOObjective is the attainment target burn rates are normalized
// against when the caller does not choose one: burn rate 1.0 means the
// tenant misses exactly its 1% error budget, >1 means the budget is being
// consumed faster than contracted.
const DefaultSLOObjective = 0.99

// DefaultSLOWindows returns the multi-window burn-rate horizons in modeled
// seconds (fresh per call so callers may modify): a fast window that reacts
// within a minute and slower ones that smooth transients, the standard
// multi-window alerting shape.
func DefaultSLOWindows() []float64 {
	return []float64{60, 300, 3600}
}

// SLOConfig parameterizes per-tenant SLO accounting. Zero values take the
// defaults above.
type SLOConfig struct {
	// Objective is the target attainment fraction in (0, 1).
	Objective float64
	// Windows are the sliding-window horizons in modeled seconds.
	Windows []float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = DefaultSLOObjective
	}
	if len(c.Windows) == 0 {
		c.Windows = DefaultSLOWindows()
	}
	return c
}

// sloBucketCount is the ring resolution: the largest window is divided into
// this many time buckets, so a 3600 s horizon resolves to ~7 s buckets.
const sloBucketCount = 512

// sloBucket is one time slice of outcomes. epoch is the absolute bucket
// index the slot currently holds; a slot is lazily reset when the ring laps.
type sloBucket struct {
	epoch      int64
	total, bad uint64
}

// SLOTracker keeps per-tenant windowed SLO attainment over modeled time. It
// is a fixed-memory ring of time buckets, so sim (which replays hours of
// modeled time in milliseconds) and serve (where modeled time tracks scaled
// wall time) compute identical figures from identical observations — the
// same fidelity contract the shared metric names carry.
type SLOTracker struct {
	mu        sync.Mutex
	objective float64
	windows   []float64
	bucketDur float64
	buckets   []sloBucket
	lastNow   float64
}

// NewSLOTracker builds a tracker; cfg zero values take the defaults.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	maxW := cfg.Windows[0]
	for _, w := range cfg.Windows[1:] {
		if w > maxW {
			maxW = w
		}
	}
	return &SLOTracker{
		objective: cfg.Objective,
		windows:   cfg.Windows,
		bucketDur: maxW / sloBucketCount,
		buckets:   make([]sloBucket, sloBucketCount),
	}
}

// Objective returns the attainment target.
func (t *SLOTracker) Objective() float64 { return t.objective }

// Windows returns the configured horizons in modeled seconds.
func (t *SLOTracker) Windows() []float64 { return t.windows }

// Observe records one served query's outcome at modeled time now.
func (t *SLOTracker) Observe(now float64, met bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now > t.lastNow {
		t.lastNow = now
	}
	idx := int64(math.Floor(now / t.bucketDur))
	if idx < 0 {
		idx = 0
	}
	b := &t.buckets[idx%sloBucketCount]
	if b.epoch != idx {
		b.epoch, b.total, b.bad = idx, 0, 0
	}
	b.total++
	if !met {
		b.bad++
	}
}

// LastNow returns the largest observation time seen — the simulator's
// scrape clock (its registry is read after the run, when wall time says
// nothing about modeled time).
func (t *SLOTracker) LastNow() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastNow
}

// window sums outcomes over [now-window, now]. Callers hold no lock.
func (t *SLOTracker) window(now, window float64) (total, bad uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := int64(math.Floor((now - window) / t.bucketDur))
	hi := int64(math.Floor(now / t.bucketDur))
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.total == 0 || b.epoch < lo || b.epoch > hi {
			continue
		}
		total += b.total
		bad += b.bad
	}
	return total, bad
}

// Attainment returns the fraction of queries inside [now-window, now] that
// met their SLO. An idle window attains 1.0: no traffic burns no budget.
func (t *SLOTracker) Attainment(now, window float64) float64 {
	total, bad := t.window(now, window)
	if total == 0 {
		return 1
	}
	return float64(total-bad) / float64(total)
}

// BurnRate returns the windowed error-budget burn rate: the violation
// fraction over the window divided by the budget (1 - objective). 1.0
// consumes the budget exactly as contracted; an idle window burns 0.
func (t *SLOTracker) BurnRate(now, window float64) float64 {
	total, bad := t.window(now, window)
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / (1 - t.objective)
}

// FormatWindow renders a window horizon as its metric label value ("60",
// "300", "3600").
func FormatWindow(w float64) string {
	return strconv.FormatFloat(w, 'g', -1, 64)
}

// RegisterSLOGauges exposes a tracker's windowed attainment and burn rate
// as ramsis_slo_attainment{tenant,window} and
// ramsis_slo_burn_rate{tenant,window} GaugeFuncs, evaluated at scrape time.
// now supplies the scrape clock in modeled seconds; nil reads the tracker's
// last observation time, which is how the simulator (whose modeled clock
// stops with the run) exposes the same series as the live plane.
func RegisterSLOGauges(reg *Registry, t *SLOTracker, tenantName string, now func() float64) {
	if now == nil {
		now = t.LastNow
	}
	for _, w := range t.Windows() {
		w := w
		wl := FormatWindow(w)
		reg.GaugeFunc(MetricSLOAttainment, func() float64 {
			return t.Attainment(now(), w)
		}, "tenant", tenantName, "window", wl)
		reg.GaugeFunc(MetricSLOBurnRate, func() float64 {
			return t.BurnRate(now(), w)
		}, "tenant", tenantName, "window", wl)
	}
	reg.Help(MetricSLOAttainment, "Windowed fraction of served queries inside their SLO, by tenant and window (modeled seconds).")
	reg.Help(MetricSLOBurnRate, "Windowed SLO error-budget burn rate (violation fraction / (1 - objective)), by tenant and window.")
}
