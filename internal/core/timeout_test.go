package core

import (
	"errors"
	"testing"
	"time"

	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

func TestGenerateTimeout(t *testing.T) {
	cfg := Config{
		Models:  profile.InterpolatedSet(profile.ImageSet(), 60),
		SLO:     0.500,
		Workers: 60,
		Arrival: dist.NewPoisson(2000),
		Timeout: time.Millisecond, // far below any feasible build time
	}
	_, err := Generate(cfg)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Generate with 1ms budget returned %v, want ErrTimeout", err)
	}
}

func TestGenerateWithGenerousTimeoutSucceeds(t *testing.T) {
	cfg := genConfig(200)
	cfg.Timeout = 10 * time.Minute
	if _, err := Generate(cfg); err != nil {
		t.Fatalf("generous timeout failed: %v", err)
	}
}

func TestPhasePosteriorProperties(t *testing.T) {
	proc := dist.NewPoisson(900)
	for _, c := range []struct {
		k, n int
		ta   float64
	}{{1, 1, 0}, {4, 1, 0}, {4, 3, 0.08}, {60, 5, 0.1}, {60, 32, 0.5}} {
		pr := phasePosterior(proc, c.k, c.n, c.ta)
		if len(pr) != c.k {
			t.Fatalf("posterior length %d, want %d", len(pr), c.k)
		}
		sum := 0.0
		for _, p := range pr {
			if p < 0 {
				t.Fatalf("negative phase probability %v", p)
			}
			sum += p
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Fatalf("posterior sums to %v", sum)
		}
		if c.ta == 0 && pr[0] != 1 {
			t.Fatalf("zero-window posterior not a point mass at phase 0: %v", pr[:min(4, len(pr))])
		}
	}
}

func TestPhasePosteriorMatchesPaperDenominatorRatios(t *testing.T) {
	// P(r)/P(r') must equal PF((n-1)K+r, TA) / PF((n-1)K+r', TA).
	proc := dist.NewPoisson(500)
	const k, n = 6, 4
	const ta = 0.05
	pr := phasePosterior(proc, k, n, ta)
	for r := 1; r < k; r++ {
		want := proc.PF((n-1)*k+r, ta) / proc.PF((n-1)*k, ta)
		got := pr[r] / pr[0]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("phase ratio r=%d: %v, want %v", r, got, want)
		}
	}
}

func TestPhasePosteriorPoissonExtremeMeanStaysNormalized(t *testing.T) {
	// The Poisson path works in log space, so even astronomically unlikely
	// windows keep a proper (concentrated) posterior rather than
	// underflowing.
	proc := dist.NewPoisson(1e7)
	pr := phasePosterior(proc, 4, 1, 10)
	sum := 0.0
	for _, p := range pr {
		sum += p
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Fatalf("posterior sums to %v: %v", sum, pr)
	}
	// The pmf increases toward the (huge) mean, so the top phase dominates.
	if pr[3] < 0.99 {
		t.Errorf("expected concentration at the top phase, got %v", pr)
	}
}

func TestPhasePosteriorGenericUnderflowFallsBackUniform(t *testing.T) {
	// The generic (non-Poisson) path computes linear PF values; when every
	// one underflows to zero the posterior falls back to uniform.
	proc := dist.NewGamma(1e7, 2)
	pr := phasePosterior(proc, 4, 1, 10)
	for _, p := range pr {
		if p < 0.24 || p > 0.26 {
			t.Fatalf("underflow fallback not uniform: %v", pr)
		}
	}
}

func TestQuadratureResolutionInsensitive(t *testing.T) {
	// Expected accuracy should be stable across quadrature resolutions.
	coarse := genConfig(300)
	coarse.FineCells = 128
	pc, err := Generate(coarse)
	if err != nil {
		t.Fatal(err)
	}
	fine := genConfig(300)
	fine.FineCells = 2048
	pf, err := Generate(fine)
	if err != nil {
		t.Fatal(err)
	}
	if d := pc.ExpectedAccuracy - pf.ExpectedAccuracy; d > 0.01 || d < -0.01 {
		t.Errorf("quadrature sensitivity: 128 cells %.4f vs 2048 cells %.4f",
			pc.ExpectedAccuracy, pf.ExpectedAccuracy)
	}
}
