package monitor

import (
	"math"
	"testing"

	"ramsis/internal/trace"
)

func TestMovingAverageSteadyLoad(t *testing.T) {
	m := NewMovingAverage(0.5)
	// 100 QPS: one arrival every 10 ms.
	for i := 0; i < 500; i++ {
		m.Observe(float64(i) * 0.01)
	}
	got := m.Load(5.0)
	if math.Abs(got-100) > 4 {
		t.Errorf("Load = %v, want ~100", got)
	}
}

func TestMovingAverageWindowEviction(t *testing.T) {
	m := NewMovingAverage(0.5)
	for i := 0; i < 100; i++ {
		m.Observe(float64(i) * 0.001) // burst in first 100 ms
	}
	if got := m.Load(0.1); got != 200 {
		t.Errorf("Load right after burst = %v, want 200", got)
	}
	if got := m.Load(10); got != 0 {
		t.Errorf("Load long after burst = %v, want 0", got)
	}
}

func TestMovingAverageTracksLoadChange(t *testing.T) {
	m := NewMovingAverage(0.5)
	tm := 0.0
	for i := 0; i < 100; i++ { // 100 QPS phase
		m.Observe(tm)
		tm += 0.01
	}
	for i := 0; i < 1000; i++ { // 1000 QPS phase
		m.Observe(tm)
		tm += 0.001
	}
	got := m.Load(tm)
	if math.Abs(got-1000) > 30 {
		t.Errorf("Load after ramp = %v, want ~1000", got)
	}
}

func TestMovingAverageCompaction(t *testing.T) {
	m := NewMovingAverage(0.5)
	// Force many evictions to exercise compaction.
	for i := 0; i < 200000; i++ {
		m.Observe(float64(i) * 0.001)
	}
	if got := m.Load(200.0); math.Abs(got-1000) > 20 {
		t.Errorf("Load after long run = %v, want ~1000", got)
	}
	if len(m.arrivals) > 10000 {
		t.Errorf("arrival buffer grew to %d entries; compaction failed", len(m.arrivals))
	}
}

func TestMovingAverageDefaultWindow(t *testing.T) {
	m := NewMovingAverage(0)
	if m.window != 0.5 {
		t.Errorf("default window = %v, want 0.5 (the paper's 500 ms)", m.window)
	}
}

func TestOracle(t *testing.T) {
	o := Oracle{Trace: trace.Constant(1234, 30)}
	o.Observe(5) // no-op
	if got := o.Load(15); got != 1234 {
		t.Errorf("oracle load = %v, want 1234", got)
	}
	tw := Oracle{Trace: trace.Twitter()}
	if got := tw.Load(0); got != trace.Twitter().QPS[0] {
		t.Errorf("oracle twitter load = %v", got)
	}
}
