package sim

import (
	"testing"

	"ramsis/internal/admit"
	"ramsis/internal/core"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/telemetry"
	"ramsis/internal/trace"
)

// overloadRun drives a RAMSIS policy solved for `solved` QPS with arrivals
// at mult× that rate. The monitor is pinned to the solved rate — the
// mis-provisioned scenario overload protection exists for: the policy
// ladder has nothing better to offer, so without admission control queues
// grow without bound.
func overloadRun(t *testing.T, solved, mult float64, dur int, a admit.Admitter, d *admit.Degrader, reg *telemetry.Registry) Metrics {
	t.Helper()
	const workers, slo = 8, 0.150
	ps := ramsisFixture(t, workers, slo, []float64{solved})
	pinned := trace.Constant(solved, float64(dur))
	offered := trace.Constant(mult*solved, float64(dur))
	e := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, NewRAMSIS(ps, monitor.Oracle{Trace: pinned}), 1)
	e.Admit = a
	e.Degrade = d
	e.Telemetry = reg
	return e.Run(trace.PoissonArrivals(offered, 7))
}

func TestDeadlineSheddingBeatsNoShedUnderOverload(t *testing.T) {
	// The ISSUE acceptance criterion: at 3.5× the solved rate,
	// deadline-aware shedding must yield strictly higher goodput than
	// serving everything late.
	const solved, mult, dur = 300.0, 3.5, 10
	est := core.NewWaitEstimator(profile.ImageSet(), 8)

	base := overloadRun(t, solved, mult, dur, nil, nil, nil)
	shedding := overloadRun(t, solved, mult, dur, admit.Deadline{SLO: 0.150, Margin: 1, Est: est}, nil, nil)

	if base.Shed != 0 {
		t.Fatalf("baseline shed %d queries with no admitter", base.Shed)
	}
	if shedding.Shed == 0 {
		t.Fatal("deadline admitter shed nothing at 3.5x the solved rate")
	}
	if shedding.Offered() != base.Offered() {
		t.Fatalf("offered mismatch: %d vs %d", shedding.Offered(), base.Offered())
	}
	gb, gs := base.GoodputRate(), shedding.GoodputRate()
	if gs <= gb {
		t.Errorf("deadline shedding goodput %.4f not above no-shed %.4f", gs, gb)
	}
	// Shedding the unmeetable excess must also pull the violation rate of
	// admitted queries far below the baseline's (which approaches 1 as
	// queues grow without bound). It does not reach zero: the estimator is
	// deliberately optimistic, and the pinned policy still serves slower
	// models than the estimate assumes.
	if vs, vb := shedding.ViolationRate(), base.ViolationRate(); vs >= vb/2 {
		t.Errorf("violation rate %.4f not well below baseline %.4f", vs, vb)
	}
	t.Logf("goodput no-shed=%.4f deadline=%.4f shed-rate=%.4f", gb, gs, shedding.ShedRate())
}

func TestCapAdmitterBoundsBacklog(t *testing.T) {
	const solved, mult, dur, limit = 300.0, 3.0, 10, 64
	est := core.NewWaitEstimator(profile.ImageSet(), 8)
	m := overloadRun(t, solved, mult, dur, admit.Cap{Limit: limit, Est: est}, nil, nil)
	if m.Shed == 0 {
		t.Fatal("cap admitter shed nothing at 3x the solved rate")
	}
	// Admission kept the backlog bounded, so the drain after the last
	// arrival is short and nothing is left unserved.
	if m.Unserved != 0 {
		t.Errorf("cap run left %d unserved", m.Unserved)
	}
	if base := overloadRun(t, solved, mult, dur, nil, nil, nil); m.GoodputRate() <= base.GoodputRate() {
		t.Errorf("cap goodput %.4f not above no-shed %.4f", m.GoodputRate(), base.GoodputRate())
	}
}

func TestDegradedModeEscalatesAndClampsUnderOverload(t *testing.T) {
	// Overload confirmed by sustained shed rate must escalate the degrader,
	// and the clamp must substitute faster models on the dispatch path.
	// FixedModel pinned to the slowest model makes the clamp's effect
	// deterministic: every decision at level > 0 is degradable.
	models := profile.ImageSet()
	order := models.SpeedOrder()
	slowest := order[len(order)-1]
	const workers, slo, dur = 4, 0.150, 8.0

	est := core.NewWaitEstimator(models, workers)
	// A short window lets the level walk the full 26-model ladder within
	// the run: one escalation per window under sustained shedding.
	deg := admit.NewDegrader(admit.DegradeConfig{
		MaxLevel:      len(order) - 1,
		Window:        0.2,
		EnterShedRate: 0.05,
	})
	reg := telemetry.NewRegistry()
	e := NewEngine(models, slo, workers, Deterministic{}, &FixedModel{Model: slowest, MaxBatch: 4}, 1)
	e.Admit = admit.Cap{Limit: 32, Est: est}
	e.Degrade = deg
	e.Telemetry = reg
	offered := trace.Constant(800, dur)
	m := e.Run(trace.PoissonArrivals(offered, 3))

	st := deg.Stats()
	if st.Escalations == 0 {
		t.Fatalf("degrader never escalated under overload (shed=%d)", m.Shed)
	}
	if m.DegradedDecisions == 0 {
		t.Fatal("no dispatch decision was clamped despite degraded mode")
	}
	fast := models.Profiles[order[0]].Name
	if m.ModelCounts[fast] == 0 {
		t.Errorf("clamp never reached the fastest model %s; counts %v", fast, m.ModelCounts)
	}
	// The level gauge and transition counters must be visible in the
	// registry — the serve layer exposes the same series on /metrics.
	if v := reg.Counter(telemetry.MetricAdmitDegradeTransitions, "dir", "up").Value(); v == 0 {
		t.Error("ramsis_admit_degrade_transitions_total{dir=up} not incremented")
	}
	if v := reg.Counter(telemetry.MetricAdmitShed, "policy", "cap").Value(); int(v) != m.Shed {
		t.Errorf("shed counter %v disagrees with Metrics.Shed %d", v, m.Shed)
	}
}
