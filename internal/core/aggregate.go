package core

import (
	"sort"

	"ramsis/internal/mdp"
)

// This file implements queue-dimension state aggregation: a worker MDP whose
// queue axis is coarsened by a factor k solves on ~1/k of the states, and its
// values — linearly disaggregated back onto the fine queue axis — seed the
// exact fine solve as a warm start. The aggregate solve is pure acceleration:
// the fine solver still converges to its own fixed point, so the generated
// policy is unchanged; only the iteration count to reach it drops. This is
// what lets a 10× -maxqueue space re-solve inside the drift-dwell window.

// coarseQueues returns the coarse queue-axis length for a fine bound q
// grouped by factor k: ceil(q/k), floored at 1 (a queue axis smaller than
// the coarsening factor collapses to a single group).
func coarseQueues(q, k int) int {
	qc := (q + k - 1) / k
	if qc < 1 {
		qc = 1
	}
	return qc
}

// aggregateWarmStart builds the queue-coarsened aggregate of the fine worker
// MDP by representative-state (hard) aggregation, solves it with the same
// options, and disaggregates its values onto the fine space by linear
// interpolation along the queue axis. Group g of the coarse queue axis
// stands for fine queues ((g−1)k, gk]; its representative is the fine state
// at the group's right edge (clamped to the queue bound), whose actions and
// transition rows are reused with successors remapped to their groups. The
// empty and overflow states stay singletons.
//
// Returns nil — no warm start — when the coarse solve fails (e.g. the
// generation deadline expired) or aggregation cannot shrink the axis.
func aggregateWarmStart(m *mdp.MDP, sp *space, k int, opts mdp.SolveOptions) []float64 {
	q := sp.cfg.MaxQueue
	g := len(sp.grid)
	qc := coarseQueues(q, k)
	if qc >= q {
		return nil // nothing to coarsen
	}
	cEmpty := 0
	cIndex := func(qg, j int) int { return 1 + (qg-1)*g + j }
	cOver := 1 + qc*g
	nc := 2 + qc*g

	mapState := func(s int32) int32 {
		switch int(s) {
		case sp.emptyState():
			return int32(cEmpty)
		case sp.overflowState():
			return int32(cOver)
		}
		n, j := sp.decompose(int(s))
		return int32(cIndex((n+k-1)/k, j))
	}
	repFine := func(cs int) int {
		switch cs {
		case cEmpty:
			return sp.emptyState()
		case cOver:
			return sp.overflowState()
		}
		cs--
		qg, j := cs/g+1, cs%g
		return sp.index(min(qg*k, q), j)
	}

	cm := &mdp.MDP{Actions: make([][]mdp.Action, nc)}
	for cs := 0; cs < nc; cs++ {
		acts := m.Actions[repFine(cs)]
		cacts := make([]mdp.Action, len(acts))
		for ai, a := range acts {
			merged := map[int32]float64{}
			for _, tr := range a.Transitions {
				merged[mapState(tr.Next)] += tr.P
			}
			trs := make([]mdp.Transition, 0, len(merged))
			for nx, p := range merged {
				trs = append(trs, mdp.Transition{Next: nx, P: p})
			}
			// Deterministic row order: map iteration order is random.
			sort.Slice(trs, func(i, j int) bool { return trs[i].Next < trs[j].Next })
			cacts[ai] = mdp.Action{Label: a.Label, Reward: a.Reward, Transitions: trs}
		}
		cm.Actions[cs] = cacts
	}

	opts.InitialValues = nil
	res, err := mdp.Compile(cm).Solve(opts)
	if err != nil {
		return nil
	}

	// Disaggregate: the coarse values sample the queue axis at positions
	// {0 (empty), k, 2k, ..., qc·k}; a fine state (n, j) interpolates
	// linearly between the two samples bracketing n in the same slack
	// bucket. The overflow singleton maps through directly.
	out := make([]float64, sp.numStates())
	out[sp.emptyState()] = res.Values[cEmpty]
	out[sp.overflowState()] = res.Values[cOver]
	for n := 1; n <= q; n++ {
		g0 := n / k
		frac := float64(n-g0*k) / float64(k)
		g1 := g0 + 1
		if g1 > qc {
			g1 = qc
		}
		for j := 0; j < g; j++ {
			var v0 float64
			if g0 == 0 {
				v0 = res.Values[cEmpty]
			} else {
				v0 = res.Values[cIndex(min(g0, qc), j)]
			}
			v1 := res.Values[cIndex(g1, j)]
			out[sp.index(n, j)] = v0 + frac*(v1-v0)
		}
	}
	return out
}
