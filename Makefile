GO ?= go

.PHONY: build test vet lint staticcheck race verify bench bench-smoke bench-compare profile soak soak-smoke saturate saturate-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Pinned staticcheck version: CI runs it via `go run` (module-cached by
# setup-go); locally it only runs when a staticcheck binary is already on
# PATH, so `make verify` never reaches for the network.
STATICCHECK_VERSION := 2024.1.1

# Formatting gate: gofmt must have nothing to rewrite. gofmt -l prints
# offending files and always exits 0, so fail on non-empty output.
# staticcheck runs when available (CI always; locally if installed).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned at $(STATICCHECK_VERSION))"; \
	fi

# CI-only: fetch and run the pinned staticcheck. Not part of local verify so
# offline development never needs the network.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# The admit, lb, serve, telemetry, adapt, tenant, llm, and sim packages are
# the concurrency-heavy ones (the degrader's atomic level + locked windows,
# balancers, health tracker, per-worker queue locks, HTTP dispatch and the
# /query shed path, the lock-free metrics registry, the background policy
# re-solve / hot-swap path, the fair admitter + hot-reloaded tenant
# registry, and the continuous-batching LLM worker's step loop vs handler
# handoff — llm and sim back that worker's model and selector types); run
# them under the race detector. Their tests scale sleeps by TimeScale, so
# the race pass stays within a CI budget.
race:
	$(GO) test -race ./internal/admit/ ./internal/adapt/ ./internal/lb/ ./internal/serve/ ./internal/telemetry/ ./internal/tenant/ ./internal/llm/ ./internal/sim/

# Multi-tenant serving-plane soak: ≥100k offered wall QPS across 4 shards
# and 3 tenants, one offering 4× its contract; asserts compliant goodput
# ≥ 0.9 from the gateway's /metrics exposition and exits non-zero on any
# miss. soak-smoke is the CI-scale variant (same assertions, ~2k QPS).
soak:
	$(GO) run ./cmd/soak

# soak-smoke saves the final /metrics scrape and the plane's merged trace
# JSONL so CI can upload them as build artifacts (stitch the latter with
# `go run ./cmd/trace -stitch soak-traces.jsonl`).
soak-smoke:
	$(GO) run ./cmd/soak -target-qps 2000 -qps-floor 1800 -dur 2s \
		-metrics-out soak-metrics.txt -trace-out soak-traces.jsonl

# Wall-clock saturation probe: TimeScale=1, all-out injection, measured
# QPS ceiling and CPU-per-query (the data-plane throughput numbers quoted
# in DESIGN.md). saturate-smoke is the CI-scale variant: shorter window,
# CPU profile captured, and the pprof -top listing saved next to the
# profile so the hot path can be read straight from the build artifact.
saturate:
	$(GO) run ./cmd/soak -saturate -dur 5s

saturate-smoke:
	$(GO) run ./cmd/soak -saturate -dur 2s -cpuprofile soak-cpu.pprof 2>&1 | tee saturate-smoke.out
	$(GO) tool pprof -top -nodecount 20 soak-cpu.pprof | tee soak-cpu-top.txt

# Tier-1 verify path (see ROADMAP.md).
verify: build lint test race

# Perf measurement over the hot paths: the MDP solve (slice vs compiled
# CSR kernels), the adaptation re-solve matrix (Jacobi vs prioritized x
# cold/warm x 1x/10x state space), MDP compilation, per-decision policy
# lookup, balancer pick, raw simulator throughput, and the end-to-end
# data-plane tier (frontend and sharded-gateway query paths over a live
# loopback cluster, allocation-gated). -count=3 repetitions with
# allocation stats; raw output lands in bench.out and tools/benchjson
# distills it into $(BENCH_OUT), the committed baseline (quote
# best_ns_per_op when comparing).
BENCH_KEY := 'BenchmarkValueIteration|BenchmarkResolve|BenchmarkCompile$$|BenchmarkPolicySelect|BenchmarkBalancerPick|BenchmarkSimulatorThroughput|BenchmarkLLMStepLoop|BenchmarkFrontendQuery|BenchmarkShardedGatewayQuery'
BENCH_OUT ?= BENCH_10.json
BENCH_BASE ?= BENCH_10.json

bench:
	$(GO) test -run '^$$' -bench $(BENCH_KEY) -benchmem -count=3 . | tee bench.out
	$(GO) run ./tools/benchjson -o $(BENCH_OUT) bench.out

# Regression gate: re-run the key benches and diff against the committed
# baseline. ns/op drift past 1.25x warns (GitHub annotation, soft); past 2x
# fails — CI runners are slower and noisier than the baseline machine, so
# only a real blowup is a hard failure. allocs/op gates tighter: counts are
# deterministic on a given GOMAXPROCS, but the data-plane benches batch
# differently across core counts, so 1.10x warns and 1.5x fails.
bench-compare:
	$(GO) test -run '^$$' -bench $(BENCH_KEY) -benchmem -count=3 . | tee bench-new.out
	$(GO) run ./tools/benchjson -o bench-new.json bench-new.out
	$(GO) run ./tools/benchjson -compare -threshold 1.25 -alloc-threshold 1.10 -warn $(BENCH_BASE) bench-new.json
	$(GO) run ./tools/benchjson -compare -threshold 2 -alloc-threshold 1.5 $(BENCH_BASE) bench-new.json

# Every benchmark (figure regenerations included) runs exactly once: not a
# perf measurement, just proof the bench harness cannot silently rot.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# CPU- and heap-profile the simulator throughput benchmark and print the
# top hotspots (profiles land in ./profiles for interactive pprof use).
profile:
	mkdir -p profiles
	$(GO) test -bench BenchmarkSimulatorThroughput -run '^$$' \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out -o profiles/bench.test .
	$(GO) tool pprof -top -nodecount 15 profiles/bench.test profiles/cpu.out
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space profiles/bench.test profiles/mem.out
