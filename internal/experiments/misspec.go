package experiments

import (
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// MisspecPoint is one (assumed policy, true arrivals) cell.
type MisspecPoint struct {
	Arrivals  string
	Accuracy  float64
	Violation float64
}

// Misspec is an extension study the paper motivates (§3.1.1: RAMSIS is
// parameterized by the arrival distribution; unexpected patterns trigger
// regeneration): serve the *same mean load* under three inter-arrival
// patterns — calmer than assumed (Erlang-4), exactly as assumed (Poisson),
// and burstier than assumed (an on-off MMPP) — through a policy generated
// for Poisson arrivals. Calmer traffic only helps; burstier traffic erodes
// the SLO guarantee, quantifying why the arrival distribution is a policy
// input rather than a constant.
func (h *Harness) Misspec() []MisspecPoint {
	const workers, slo, load = 12, 0.150, 400.0
	models := profile.ImageSet()
	dur := 30.0
	if h.scale() == scaleQuick {
		dur = 10
	}
	set := h.policySet(models, slo, workers, []float64{load}, "", nil)
	tr := trace.Constant(load, dur)

	samplers := []struct {
		name string
		mk   func(rate float64) dist.Sampler
	}{
		{"Erlang-4 (calmer)", func(r float64) dist.Sampler { return dist.NewGamma(r, 4) }},
		{"Poisson (assumed)", func(r float64) dist.Sampler { return dist.NewPoisson(r) }},
		{"OnOff x2 (burstier)", func(r float64) dist.Sampler { return dist.NewOnOff(r, 2, 0.05, 0.2) }},
	}
	var out []MisspecPoint
	h.printf("Arrival misspecification: Poisson-assumed policy under other inter-arrival patterns\n")
	h.printf("(image, SLO %.0f ms, %d workers, mean load %.0f QPS)\n", slo*1000, workers, load)
	h.printf("%-22s %10s %12s\n", "true arrivals", "accuracy", "violations")
	for _, s := range samplers {
		sched := sim.NewRAMSIS(set, monitor.Oracle{Trace: tr})
		e := sim.NewEngine(models, slo, workers, sim.Deterministic{}, sched, h.opts.Seed)
		arr := trace.Arrivals(tr, h.opts.Seed, s.mk)
		m := e.Run(arr)
		p := MisspecPoint{Arrivals: s.name, Accuracy: m.AccuracyPerSatisfiedQuery(), Violation: m.ViolationRate()}
		out = append(out, p)
		h.printf("%-22s %10.4f %12.5f\n", p.Arrivals, p.Accuracy, p.Violation)
	}
	h.printf("\n")
	h.saveResult("misspec", out)
	return out
}
