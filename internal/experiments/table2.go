package experiments

import (
	"errors"
	"time"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

// Table2Row is one policy-generation runtime measurement.
type Table2Row struct {
	TD       string // "MD" or "FLD D=..."
	Batching string // "variable" or "max"
	Models   int    // |M_w|
	Runtime  time.Duration
	Timeout  bool
}

// Table2 reproduces the policy-generation runtime study (§4.2.2):
// {MD, FLD D=100, FLD D=10} x {variable, max} batching at |M_w| = 9 and 60
// with B_w = 29 (image task, 500 ms SLO). Cells exceeding the budget are
// reported as timeouts — the paper's 24 h cells behave the same way at our
// smaller budget. Absolute times differ from the paper's Python/Numba
// implementation; the ordering (MD-variable slowest, FLD D=10 fastest,
// |M_w| = 60 harder than 9) is the reproduced claim.
func (h *Harness) Table2() []Table2Row {
	budget := 60 * time.Second
	switch h.scale() {
	case scaleFull:
		budget = 15 * time.Minute
	case scaleQuick:
		budget = 15 * time.Second
	}
	nine := profile.ImageSet().ParetoFront()
	sixty := profile.InterpolatedSet(profile.ImageSet(), 60)

	type cell struct {
		td       string
		disc     core.Discretization
		d        int
		batching core.Batching
	}
	cells := []cell{
		{"MD", core.ModelBased, 0, core.VariableBatching},
		{"FLD D=100", core.FixedLength, 100, core.VariableBatching},
		{"MD", core.ModelBased, 0, core.MaximalBatching},
		{"FLD D=100", core.FixedLength, 100, core.MaximalBatching},
		{"FLD D=10", core.FixedLength, 10, core.MaximalBatching},
	}
	var rows []Table2Row
	h.printf("Table 2: policy generation runtimes (B_w = 29; budget %v)\n", budget)
	h.printf("%-12s %-9s %12s %12s\n", "TD", "batch", "|M|=9", "|M|=60")
	for _, c := range cells {
		var line [2]string
		for i, models := range []profile.Set{nine, sixty} {
			cfg := core.Config{
				Models:          models,
				SLO:             0.500,
				Workers:         60,
				Arrival:         dist.NewPoisson(2000),
				Batching:        c.batching,
				Disc:            c.disc,
				D:               c.d,
				NoParetoPruning: true, // Table 2 measures the full model set
				Timeout:         budget,
			}
			start := time.Now()
			_, err := core.Generate(cfg)
			elapsed := time.Since(start)
			row := Table2Row{TD: c.td, Batching: c.batching.String(), Models: models.Len(), Runtime: elapsed}
			if errors.Is(err, core.ErrTimeout) {
				row.Timeout = true
				line[i] = "timeout"
			} else if err != nil {
				panic(err)
			} else {
				line[i] = elapsed.Round(time.Millisecond).String()
			}
			rows = append(rows, row)
		}
		h.printf("%-12s %-9s %12s %12s\n", c.td, c.batching.String(), line[0], line[1])
	}
	h.printf("\n")
	h.saveResult("table2", rows)
	return rows
}
