// Text classification SLO study: how the achievable accuracy of a fixed
// BERT deployment changes with the latency SLO, using RAMSIS's probabilistic
// guarantees (§5.1) to pick operating points without running a workload.
//
//	go run ./examples/textclassification
package main

import (
	"fmt"
	"log"

	"ramsis"
)

func main() {
	const workers = 6
	models := ramsis.TextModels()

	fmt.Printf("BERT corpus on %d workers:\n", workers)
	for _, p := range models.Profiles {
		fmt.Printf("  %-12s accuracy %.1f%%  latency %4.0f ms  peak throughput %5.1f QPS/worker\n",
			p.Name, p.Accuracy*100, p.BatchLatency(1)*1000, p.Throughput())
	}

	// The paper's three text SLOs (§7).
	for _, sloMS := range []float64{100, 200, 300} {
		system, err := ramsis.New(ramsis.Options{Models: models, SLOMillis: sloMS, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		// The §6 load-adaptation rule: refine the ladder until adjacent
		// policies differ by under 1% expected accuracy.
		if err := system.PrecomputePolicyLadder(100, 700); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nSLO %.0f ms — policy ladder (load -> guaranteed accuracy, violation bound):\n", sloMS)
		for _, pol := range system.Policies() {
			fmt.Printf("  %5.0f QPS -> accuracy >= %.4f, violations <= %.4f%%\n",
				pol.Load, pol.ExpectedAccuracy, pol.ExpectedViolation*100)
		}
		// Validate one mid-ladder point online.
		m := system.SimulateConstant(400, 20, 3)
		pol, _ := system.Policy(400)
		fmt.Printf("  measured at 400 QPS: accuracy %.4f (bound %.4f), violations %.4f%% (bound %.4f%%)\n",
			m.AccuracyPerSatisfiedQuery(), pol.ExpectedAccuracy,
			m.ViolationRate()*100, pol.ExpectedViolation*100)
	}
}
