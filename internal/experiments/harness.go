// Package experiments regenerates every table and figure of the paper's
// evaluation (§7, §C-§I). Each experiment has two sizes: the default scaled
// run (shorter traces, coarser sweeps — same series, same shape) and the
// paper-scale grid selected with Options.Full. Results are printed as the
// rows/series the paper reports and returned structured for tests and
// benches.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ramsis/internal/baselines"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/plot"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// Method names follow the artifact's CLI ("RAMSIS", "MS", "JF") plus the
// extensions evaluated in the appendices.
const (
	MethodRAMSIS = "RAMSIS"
	MethodJF     = "JF"
	MethodMS     = "MS"
	MethodGreedy = "Greedy"
	MethodINFaaS = "INFaaS"
)

// Options configure a harness.
type Options struct {
	// Full selects the paper-scale grid instead of the scaled default.
	Full bool
	// Quick selects a minimal grid (every series present, very few points)
	// for benches and CI on small machines. Full wins if both are set.
	Quick bool
	// Out receives the printed rows; defaults to os.Stdout.
	Out io.Writer
	// Seed fixes every sampled arrival stream and latency noise stream.
	Seed int64
	// PolicyDir, when set, caches generated policies as JSON on disk so
	// repeated runs skip regeneration (mirrors the artifact's policy_gen/).
	PolicyDir string
	// ResultsDir, when set, writes each experiment's structured result as
	// JSON (mirrors the artifact's results/ directory).
	ResultsDir string
	// Plot renders each figure's accuracy series as an ASCII chart in
	// addition to the numeric rows.
	Plot bool
	// D is the FLD resolution for generated policies; default 100 (§6).
	D int
	// Parallel bounds the number of simulation runs in flight at once in
	// the figure sweeps (Figs. 5-8). 0 or 1 runs serially. Results are
	// identical at any setting: every run draws from its own seeded RNG
	// streams and lands in its grid slot, not completion order.
	Parallel int
}

// Harness runs experiments with memoized policy sets and baseline profiles.
type Harness struct {
	opts Options

	mu       sync.Mutex
	sets     map[string]*setEntry
	msTables map[string]*msEntry
}

// setEntry single-flights one memoized policy set: the first caller of a
// key generates inside once, concurrent callers block on it and read the
// finished set. Check-then-insert under mu alone would let two parallel
// runs generate the same set twice.
type setEntry struct {
	once sync.Once
	set  *core.PolicySet
}

// msEntry single-flights one ModelSwitching profile the same way.
type msEntry struct {
	once  sync.Once
	table *baselines.MSTable
}

// New builds a harness.
func New(opts Options) *Harness {
	if opts.Out == nil {
		opts.Out = os.Stdout
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.D == 0 {
		opts.D = 100
	}
	return &Harness{
		opts:     opts,
		sets:     map[string]*setEntry{},
		msTables: map[string]*msEntry{},
	}
}

func (h *Harness) printf(format string, args ...interface{}) {
	fmt.Fprintf(h.opts.Out, format, args...)
}

// plotSeries renders a figure's accuracy-vs-x series as an ASCII chart when
// plotting is enabled. Only reported points (<5% violations) are drawn,
// matching the paper's figures.
func (h *Harness) plotSeries(title string, series Series) {
	if !h.opts.Plot {
		return
	}
	var ps []plot.Series
	methods := make([]string, 0, len(series))
	for m := range series {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		s := plot.Series{Label: m}
		for _, p := range series[m] {
			if p.Reported {
				s.Points = append(s.Points, plot.Point{X: p.X, Y: p.Accuracy})
			}
		}
		ps = append(ps, s)
	}
	plot.Render(h.opts.Out, title, 60, 14, ps)
}

// saveResult writes an experiment's structured result to ResultsDir as
// <name>.json; it is a no-op when no directory is configured.
func (h *Harness) saveResult(name string, v interface{}) {
	if h.opts.ResultsDir == "" {
		return
	}
	if err := os.MkdirAll(h.opts.ResultsDir, 0o755); err != nil {
		h.printf("results: %v\n", err)
		return
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		h.printf("results: %v\n", err)
		return
	}
	path := filepath.Join(h.opts.ResultsDir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		h.printf("results: %v\n", err)
	}
}

// runScale is the experiment grid size.
type runScale int

const (
	scaleQuick runScale = iota
	scaleDefault
	scaleFull
)

func (h *Harness) scale() runScale {
	switch {
	case h.opts.Full:
		return scaleFull
	case h.opts.Quick:
		return scaleQuick
	}
	return scaleDefault
}

// slosFor returns the paper's latency SLOs per task (§7): image
// {150, 300, 500} ms, text {100, 200, 300} ms.
func slosFor(task string) []float64 {
	if task == "text" {
		return []float64{0.100, 0.200, 0.300}
	}
	return []float64{0.150, 0.300, 0.500}
}

// fig6Workers returns the §7.2 worker counts: 60 for image, 20 for text.
func fig6Workers(task string) int {
	if task == "text" {
		return 20
	}
	return 60
}

// loadRange builds QPS rungs from lo to hi inclusive.
func loadRange(lo, hi, step float64) []float64 {
	var out []float64
	for l := lo; l <= hi+1e-9; l += step {
		out = append(out, l)
	}
	return out
}

// policySet memoizes a RAMSIS policy set for (models, slo, workers, loads).
// variant distinguishes configurations produced by mutate (e.g. "FLD10").
func (h *Harness) policySet(models profile.Set, slo float64, workers int, loads []float64, variant string, mutate func(*core.Config)) *core.PolicySet {
	key := fmt.Sprintf("%s|%d|%.0f|%d|%v|%s", models.Task, models.Len(), slo*1000, workers, loads, variant)
	h.mu.Lock()
	e, ok := h.sets[key]
	if !ok {
		e = &setEntry{}
		h.sets[key] = e
	}
	h.mu.Unlock()
	e.once.Do(func() {
		cfg := core.Config{
			Models:  models,
			SLO:     slo,
			Workers: workers,
			Arrival: dist.NewPoisson(1),
			D:       h.opts.D,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		set := core.NewPolicySet(cfg, nil)
		missing := loads
		if h.opts.PolicyDir != "" {
			missing = h.loadCached(set, cfg, loads)
		}
		if len(missing) > 0 {
			if err := set.GenerateLoads(missing); err != nil {
				panic(fmt.Sprintf("experiments: policy generation failed: %v", err))
			}
			if h.opts.PolicyDir != "" {
				h.saveCached(set, cfg, missing)
			}
		}
		e.set = set
	})
	return e.set
}

func (h *Harness) policyPath(cfg core.Config, load float64) string {
	d := cfg.D
	if d == 0 {
		d = h.opts.D
	}
	return fmt.Sprintf("%s/%s_%dm%.0f_%dw_D%d_%s_%s/%.0f.json",
		h.opts.PolicyDir, cfg.Models.Task, cfg.Models.Len(), cfg.SLO*1000,
		cfg.Workers, d, cfg.Batching, cfg.Disc, load)
}

// loadCached pulls cached policies from disk, returning the loads still to
// generate.
func (h *Harness) loadCached(set *core.PolicySet, cfg core.Config, loads []float64) []float64 {
	var missing []float64
	for _, load := range loads {
		p, err := core.LoadPolicy(h.policyPath(cfg, load), cfg.Models)
		if err != nil {
			missing = append(missing, load)
			continue
		}
		set.Insert(p)
	}
	return missing
}

func (h *Harness) saveCached(set *core.PolicySet, cfg core.Config, loads []float64) {
	for _, load := range loads {
		p, err := set.PolicyFor(load)
		if err != nil || p.Load != load {
			continue
		}
		_ = p.Save(h.policyPath(cfg, load))
	}
}

// msTable memoizes ModelSwitching's offline response-latency profile (§7:
// 400-4000 QPS on every resource configuration).
func (h *Harness) msTable(models profile.Set, slo float64, workers int) *baselines.MSTable {
	key := fmt.Sprintf("%s|%d|%.0f|%d", models.Task, models.Len(), slo*1000, workers)
	h.mu.Lock()
	e, ok := h.msTables[key]
	if !ok {
		e = &msEntry{}
		h.msTables[key] = e
	}
	h.mu.Unlock()
	e.once.Do(func() {
		var step, dur float64
		switch h.scale() {
		case scaleFull:
			step, dur = 100, 10
		case scaleQuick:
			step, dur = 800, 3
		default:
			step, dur = 400, 5
		}
		e.table = baselines.ProfileModelSwitching(models, slo, workers, loadRange(400, 4400, step), dur, h.opts.Seed)
	})
	return e.table
}

// runSpec describes one simulation run.
type runSpec struct {
	models  profile.Set
	slo     float64
	workers int
	method  string
	tr      trace.Trace
	// oracle selects the perfect load predictor (§7.2); otherwise the
	// 500 ms moving average is used (§6).
	oracle bool
	// latency noise: nil means deterministic p95 (the simulator variant).
	latency sim.LatencyModel
	// ramsisLoads is the policy ladder for RAMSIS runs.
	ramsisLoads []float64
	// accTarget configures the INFaaS adaptation.
	accTarget float64
	seed      int64
	// variant + mutate select a non-default RAMSIS configuration.
	variant string
	mutate  func(*core.Config)
	// balance switches the RAMSIS online balancer (Appendix I).
	balance core.Balancing
	// record enables the per-decision log.
	record bool
}

// run simulates one spec and returns its metrics.
func (h *Harness) run(s runSpec) sim.Metrics {
	var mon monitor.Monitor
	if s.oracle {
		mon = monitor.Oracle{Trace: s.tr}
	} else {
		mon = monitor.NewMovingAverage(0.5)
	}
	var sched sim.Scheduler
	switch s.method {
	case MethodRAMSIS:
		set := h.policySet(s.models, s.slo, s.workers, s.ramsisLoads, s.variant, s.mutate)
		r := sim.NewRAMSIS(set, mon)
		r.Balance = s.balance
		sched = r
	case MethodJF:
		sched = &baselines.JellyfishPlus{Profiles: s.models, SLO: s.slo, Workers: s.workers, Monitor: mon}
	case MethodMS:
		sched = &baselines.ModelSwitching{Profiles: s.models, SLO: s.slo, Monitor: mon, Table: h.msTable(s.models, s.slo, s.workers)}
	case MethodGreedy:
		sched = &baselines.Greedy{Profiles: s.models, SLO: s.slo}
	case MethodINFaaS:
		sched = &baselines.INFaaSAdapted{Profiles: s.models, SLO: s.slo, Workers: s.workers, Monitor: mon, AccTarget: s.accTarget}
	default:
		panic("experiments: unknown method " + s.method)
	}
	lat := s.latency
	if lat == nil {
		lat = sim.Deterministic{}
	}
	seed := s.seed
	if seed == 0 {
		seed = h.opts.Seed
	}
	e := sim.NewEngine(s.models, s.slo, s.workers, lat, sched, seed)
	e.RecordDecisions = s.record
	return e.Run(trace.PoissonArrivals(s.tr, seed))
}

// runAll simulates every spec and returns metrics in spec order. With
// Options.Parallel > 1 up to that many runs are in flight at once; each
// writes only its own slot, so output is identical to the serial path.
// A panic in any run (policy generation, unknown method) is re-raised
// here after the remaining workers drain, matching serial semantics.
func (h *Harness) runAll(specs []runSpec) []sim.Metrics {
	out := make([]sim.Metrics, len(specs))
	workers := h.opts.Parallel
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			out[i] = h.run(s)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked interface{}
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				out[i] = h.run(specs[i])
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Point is one (x, method) measurement in a figure's series.
type Point struct {
	X         float64
	Method    string
	Accuracy  float64
	Violation float64
	// Reported mirrors the paper's plotting rule: only points whose
	// violation rate is below 5% are included in accuracy figures.
	Reported bool
}

// Series groups points by method, sorted by X.
type Series map[string][]Point

func (s Series) add(p Point) {
	p.Reported = p.Violation < 0.05
	s[p.Method] = append(s[p.Method], p)
	sort.Slice(s[p.Method], func(i, j int) bool { return s[p.Method][i].X < s[p.Method][j].X })
}

// ladderFor builds the RAMSIS policy ladder covering a trace, in the
// artifact's style of fixed QPS rungs.
func (h *Harness) ladderFor(tr trace.Trace) []float64 {
	var step float64
	switch h.scale() {
	case scaleFull:
		step = 200
	case scaleQuick:
		step = 800
	default:
		step = 400
	}
	lo := step * float64(int(tr.MinQPS()/step))
	if lo < step {
		lo = step
	}
	// Head room above the trace peak: the 500 ms moving-average monitor
	// overshoots the interval mean during bursts.
	hi := tr.MaxQPS() * 1.15
	return loadRange(lo, hi+step, step)
}
