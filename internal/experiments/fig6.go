package experiments

import (
	"fmt"

	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// Fig6Result holds the constant-load sweep: accuracy (Fig. 6) and violation
// rates (Table 4) per task and SLO over query load.
type Fig6Result struct {
	Accuracy map[string]map[float64]Series
}

// Fig6 reproduces §7.2: constant query load under Poisson arrivals for 30
// seconds, 60 workers (image) / 20 workers (text), with a perfect load
// monitor, sweeping load 400-4000 QPS. Also prints Table 4's violation
// rates.
func (h *Harness) Fig6() Fig6Result {
	loads := loadRange(400, 4000, 800)
	dur := 15.0
	tasks := []string{"image", "text"}
	switch h.scale() {
	case scaleFull:
		loads = loadRange(400, 4000, 400)
		dur = 30.0
	case scaleQuick:
		loads = []float64{800, 2400, 4000}
		dur = 8.0
	}
	methods := []string{MethodRAMSIS, MethodMS, MethodJF}
	res := Fig6Result{Accuracy: map[string]map[float64]Series{}}

	for _, task := range tasks {
		models, _ := profile.SetForTask(task)
		workers := fig6Workers(task)
		res.Accuracy[task] = map[float64]Series{}
		slos := slosFor(task)
		if h.scale() == scaleQuick {
			slos = slos[:1]
		}
		for _, slo := range slos {
			series := Series{}
			h.printf("Fig. 6 / Table 4 (%s, SLO %.0f ms, %d workers, %.0fs constant load)\n",
				task, slo*1000, workers, dur)
			h.printf("%10s  %28s  %28s\n", "", "accuracy per satisfied query", "violation rate")
			h.printf("%10s  %8s %8s %8s  %8s %8s %8s\n", "load(QPS)",
				MethodRAMSIS, MethodMS, MethodJF, MethodRAMSIS, MethodMS, MethodJF)
			var specs []runSpec
			for _, load := range loads {
				tr := trace.Constant(load, dur)
				for _, m := range methods {
					specs = append(specs, runSpec{
						models: models, slo: slo, workers: workers, method: m,
						tr: tr, oracle: true, ramsisLoads: []float64{load},
					})
				}
			}
			mets := h.runAll(specs)
			for li, load := range loads {
				row := map[string]Point{}
				for mi, m := range methods {
					met := mets[li*len(methods)+mi]
					p := Point{X: load, Method: m,
						Accuracy: met.AccuracyPerSatisfiedQuery(), Violation: met.ViolationRate()}
					series.add(p)
					row[m] = p
				}
				h.printf("%10.0f  %8.4f %8.4f %8.4f  %8.4f %8.4f %8.4f\n", load,
					row[MethodRAMSIS].Accuracy, row[MethodMS].Accuracy, row[MethodJF].Accuracy,
					row[MethodRAMSIS].Violation, row[MethodMS].Violation, row[MethodJF].Violation)
			}
			res.Accuracy[task][slo] = series
			h.plotSeries(fmt.Sprintf("Fig. 6 (%s, SLO %.0f ms): accuracy vs load", task, slo*1000), series)
			h.summarizeGains(series)
		}
	}
	h.saveResult("fig6", res)
	return res
}
