package admit

import (
	"sync"
	"testing"
)

func TestRetryBudgetBurstThenDeny(t *testing.T) {
	b := NewRetryBudget(3, 0) // no refill
	for i := 0; i < 3; i++ {
		if !b.Allow(0) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.Allow(0) {
		t.Fatal("allowed past the burst with no refill")
	}
	if b.Denied() != 1 || b.Spent() != 3 {
		t.Errorf("denied/spent = %d/%d, want 1/3", b.Denied(), b.Spent())
	}
}

func TestRetryBudgetRefills(t *testing.T) {
	b := NewRetryBudget(1, 2) // 2 tokens/s
	if !b.Allow(0) {
		t.Fatal("initial token denied")
	}
	if b.Allow(0.1) {
		t.Fatal("allowed before refill accumulated a full token")
	}
	if !b.Allow(0.6) {
		t.Fatal("denied after refill (1.2 tokens accrued)")
	}
}

func TestRetryBudgetCapsAtBurst(t *testing.T) {
	b := NewRetryBudget(2, 100)
	// A long quiet period must not bank more than burst tokens.
	if !b.Allow(100) || !b.Allow(100) {
		t.Fatal("burst tokens denied after idle period")
	}
	if b.Allow(100) {
		t.Fatal("banked more than burst tokens")
	}
}

func TestRetryBudgetToleratesBackwardsTime(t *testing.T) {
	b := NewRetryBudget(1, 1)
	if !b.Allow(5) {
		t.Fatal("initial token denied")
	}
	if b.Allow(4) { // clock skew: must not refill or panic
		t.Fatal("backwards time minted a token")
	}
}

func TestRetryBudgetConcurrentAccounting(t *testing.T) {
	b := NewRetryBudget(64, 0)
	var wg sync.WaitGroup
	granted := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if b.Allow(0) {
					granted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range granted {
		total += n
	}
	if total != 64 {
		t.Errorf("granted %d tokens from a burst of 64", total)
	}
	if b.Denied() != 800-64 {
		t.Errorf("denied = %d, want %d", b.Denied(), 800-64)
	}
}
