package llm

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ramsis/internal/profile"
)

// TestBothProfileKindsRoundTrip is the satellite round-trip test covering
// both profile kinds in one file: a scalar set and an llm set each survive
// Save → Load bit-exactly, each loader rejects the other kind with an error
// that names the right loader, and the kind sniffer distinguishes all three
// cases (scalar, llm, legacy kindless).
func TestBothProfileKindsRoundTrip(t *testing.T) {
	dir := t.TempDir()

	llmPath := filepath.Join(dir, "chat.llm.json")
	llmSet := BuiltinSet()
	if err := llmSet.SaveFile(llmPath); err != nil {
		t.Fatal(err)
	}
	gotLLM, err := LoadSetFile(llmPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLLM, llmSet) {
		t.Fatalf("llm round-trip mismatch:\n got %+v\nwant %+v", gotLLM, llmSet)
	}

	scalarPath := filepath.Join(dir, "text.scalar.json")
	scalarSet := profile.TextSet()
	if err := scalarSet.SaveFile(scalarPath); err != nil {
		t.Fatal(err)
	}
	gotScalar, err := profile.LoadSetFile(scalarPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotScalar, scalarSet) {
		t.Fatalf("scalar round-trip mismatch:\n got %+v\nwant %+v", gotScalar, scalarSet)
	}

	// Cross-kind loads fail loudly, pointing at the right loader.
	if _, err := profile.LoadSetFile(llmPath); err == nil {
		t.Fatal("scalar loader accepted an llm-kind file")
	} else if !strings.Contains(err.Error(), "llm.LoadSetFile") && !strings.Contains(err.Error(), "-llm-profile") {
		t.Fatalf("scalar loader's llm-kind error should point at the llm path, got: %v", err)
	}
	if _, err := LoadSetFile(scalarPath); err == nil {
		t.Fatal("llm loader accepted a scalar-kind file")
	} else if !strings.Contains(err.Error(), "profile.LoadSetFile") {
		t.Fatalf("llm loader's scalar-kind error should point at the scalar path, got: %v", err)
	}
}

func TestFileKindSniffing(t *testing.T) {
	llmData, err := MarshalSet(BuiltinSet())
	if err != nil {
		t.Fatal(err)
	}
	if k := profile.FileKind(llmData); k != profile.KindLLM {
		t.Fatalf("llm file sniffed as %q", k)
	}
	scalarData, err := profile.MarshalSet(profile.TextSet())
	if err != nil {
		t.Fatal(err)
	}
	if k := profile.FileKind(scalarData); k != profile.KindScalar {
		t.Fatalf("scalar file sniffed as %q", k)
	}
	// Legacy kindless documents default to scalar.
	if k := profile.FileKind([]byte(`{"task":"x","profiles":[]}`)); k != profile.KindScalar {
		t.Fatalf("kindless file sniffed as %q, want scalar default", k)
	}
}

func TestLoadSetRejectsInvalidModels(t *testing.T) {
	bad := BuiltinSet()
	bad.Models[0].KVCapTokens = 0
	data, err := MarshalSet(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSet(data); err == nil {
		t.Fatal("LoadSet accepted a model with zero KV capacity")
	}
	if _, err := LoadSet([]byte(`{"kind":"llm","task":"x","models":[]}`)); err == nil {
		t.Fatal("LoadSet accepted an empty model set")
	}
	if _, err := LoadSet([]byte(`{"kind":"martian"}`)); err == nil {
		t.Fatal("LoadSet accepted an unknown kind")
	}
}
