package ramsis

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each regenerates the corresponding rows/series at the quick
// grid — run cmd/experiments for the default or --full paper-scale grids),
// plus micro-benchmarks of the core machinery and ablation benches for the
// design choices DESIGN.md calls out.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/experiments"
	"ramsis/internal/lb"
	"ramsis/internal/llm"
	"ramsis/internal/mdp"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

func benchHarness() *experiments.Harness {
	return experiments.New(experiments.Options{Quick: true, Out: io.Discard, Seed: 1})
}

// --- Per-table / per-figure benches ---

func BenchmarkTable2PolicyGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Table2()
	}
}

func BenchmarkFig5ProductionTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig5() // also regenerates Table 3
	}
}

func BenchmarkFig6ConstantLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig6() // also regenerates Table 4
	}
}

func BenchmarkFig7Fidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig7()
	}
}

func BenchmarkFig8ModelCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig8()
	}
}

func BenchmarkFig10Discretization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig10()
	}
}

func BenchmarkFig11Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig11()
	}
}

func BenchmarkFig12ModelAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig12()
	}
}

func BenchmarkAppendixHINFaaS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().INFaaS()
	}
}

func BenchmarkAppendixISQF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().SQF()
	}
}

// --- Core machinery micro-benches ---

func genCfg() core.Config {
	return core.Config{
		Models:  profile.ImageSet(),
		SLO:     0.150,
		Workers: 60,
		Arrival: dist.NewPoisson(2400),
		D:       50,
	}
}

// BenchmarkPolicyGeneration measures one full offline policy generation
// (transition build + value iteration + expectations).
func BenchmarkPolicyGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(genCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicySelect measures the online per-decision lookup.
func BenchmarkPolicySelect(b *testing.B) {
	pol, err := core.Generate(genCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Select(1+i%32, float64(i%150)/1000)
	}
}

// BenchmarkValueIteration measures the exact MDP solve in isolation on the
// built-in ImageNet-scale worker MDP (26 image models, D=50, 60 workers at
// 2,400 QPS), crossing the slice-walking sweep with the compiled CSR sweep
// and the serial sweep with the partitioned parallel one. All four must
// produce byte-identical policies — the compiled kernel replays the same
// floating-point operations in the same order, and partitioning only reads
// the previous iterate — which the benchmark asserts before timing.
func BenchmarkValueIteration(b *testing.B) {
	m, err := core.BuildWorkerMDP(genCfg())
	if err != nil {
		b.Fatal(err)
	}
	cm := mdp.Compile(m)
	serial, err := mdp.ValueIteration(m, mdp.SolveOptions{Parallel: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name  string
		solve func() (mdp.Result, error)
	}{
		{"slice parallel", func() (mdp.Result, error) { return mdp.ValueIteration(m, mdp.SolveOptions{Parallel: 4}) }},
		{"compiled serial", func() (mdp.Result, error) { return cm.ValueIteration(mdp.SolveOptions{Parallel: 1}) }},
		{"compiled parallel", func() (mdp.Result, error) { return cm.ValueIteration(mdp.SolveOptions{Parallel: 4}) }},
	} {
		res, err := variant.solve()
		if err != nil {
			b.Fatal(err)
		}
		for s := range serial.Policy {
			if serial.Policy[s] != res.Policy[s] {
				b.Fatalf("state %d: %s sweep picked action %d, slice serial %d", s, variant.name, res.Policy[s], serial.Policy[s])
			}
		}
	}
	for _, bc := range []struct {
		name     string
		compiled bool
		parallel int
	}{
		{"slice/sequential", false, 1},
		{"slice/parallel", false, 0},
		{"compiled/sequential", true, 1},
		{"compiled/parallel", true, 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := mdp.SolveOptions{Parallel: bc.parallel}
				var err error
				if bc.compiled {
					_, err = cm.ValueIteration(opts)
				} else {
					_, err = mdp.ValueIteration(m, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// resolveFixture holds the pre-built worker MDPs for BenchmarkResolve: the
// solved-for rate (the warm-start donor) and a drifted rate one adaptation
// step away (2400 -> 2880 QPS, a +20% drift — exactly the hysteresis band
// edge). Built once per process: the 10x space costs seconds to build, and
// the benchmark measures the re-solve, not the build.
type resolveFixture struct {
	once  sync.Once
	donor []float64     // converged values at the solved-for rate
	cm    *mdp.Compiled // drifted-rate MDP, the re-solve target
	err   error
}

var resolveFixtures = map[string]*resolveFixture{"1x": {}, "10x": {}}

func resolveSetup(b *testing.B, scale string) *resolveFixture {
	b.Helper()
	fx := resolveFixtures[scale]
	fx.once.Do(func() {
		cfg := genCfg()
		if scale == "10x" {
			cfg.MaxQueue = 320
		}
		m, err := core.BuildWorkerMDP(cfg)
		if err != nil {
			fx.err = err
			return
		}
		drift := cfg
		drift.Arrival = dist.NewPoisson(2880)
		m2, err := core.BuildWorkerMDP(drift)
		if err != nil {
			fx.err = err
			return
		}
		fx.cm = mdp.Compile(m2)
		res, err := mdp.Compile(m).Solve(mdp.SolveOptions{Method: mdp.MethodPrioritized})
		if err != nil {
			fx.err = err
			return
		}
		fx.donor = res.Values

		// The prioritized solver must land on the pinned Jacobi policy
		// before its timings mean anything.
		ref, err := fx.cm.ValueIteration(mdp.SolveOptions{Parallel: 1})
		if err != nil {
			fx.err = err
			return
		}
		prio, err := fx.cm.Solve(mdp.SolveOptions{Method: mdp.MethodPrioritized})
		if err != nil {
			fx.err = err
			return
		}
		for s := range ref.Policy {
			if prio.Policy[s] != ref.Policy[s] {
				fx.err = fmt.Errorf("state %d: prioritized action %d, Jacobi %d", s, prio.Policy[s], ref.Policy[s])
				return
			}
		}
	})
	if fx.err != nil {
		b.Fatal(fx.err)
	}
	return fx
}

// BenchmarkResolve measures the adaptation-path re-solve: the drift detector
// confirmed a rate change and a policy for the new rate must be solved while
// dispatch runs on the stale one. Crosses solver (pinned Jacobi vs
// prioritized Gauss-Seidel) x start (cold zeros vs warm from the neighboring
// bucket's values) x state-space scale (the default 32-deep queue axis vs
// 10x). The warm prioritized rows are the drift-dwell budget: <10ms at 1x,
// and at 10x no worse than the 1x Jacobi baseline (~209ms in BENCH_4.json).
func BenchmarkResolve(b *testing.B) {
	for _, scale := range []string{"1x", "10x"} {
		for _, bc := range []struct {
			name string
			opts mdp.SolveOptions
			warm bool
		}{
			{"jacobi/cold", mdp.SolveOptions{Parallel: 1}, false},
			{"jacobi/warm", mdp.SolveOptions{Parallel: 1}, true},
			{"prioritized/cold", mdp.SolveOptions{Method: mdp.MethodPrioritized}, false},
			{"prioritized/warm", mdp.SolveOptions{Method: mdp.MethodPrioritized}, true},
			{"prioritized-f32/warm", mdp.SolveOptions{Method: mdp.MethodPrioritized, Float32: true}, true},
		} {
			b.Run(scale+"/"+bc.name, func(b *testing.B) {
				fx := resolveSetup(b, scale)
				opts := bc.opts
				if bc.warm {
					opts.InitialValues = fx.donor
				}
				b.ReportAllocs()
				b.ResetTimer()
				var iters int
				for i := 0; i < b.N; i++ {
					res, err := fx.cm.Solve(opts)
					if err != nil {
						b.Fatal(err)
					}
					iters = res.Iterations
				}
				b.ReportMetric(float64(iters), "iterations")
			})
		}
	}
}

// BenchmarkCompile measures the one-time cost of flattening an MDP into the
// CSR form, which every Generate call pays before solving.
func BenchmarkCompile(b *testing.B) {
	m, err := core.BuildWorkerMDP(genCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mdp.Compile(m)
	}
}

// BenchmarkSimulatorThroughput measures raw discrete-event simulation speed
// (queries per second of simulated serving, fixed-model scheduler).
func BenchmarkSimulatorThroughput(b *testing.B) {
	models := profile.ImageSet()
	// The arrival stream is input, not the work under test: generate it
	// once outside the timed loop.
	arr := trace.PoissonArrivals(trace.Constant(2000, 10), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(models, 0.150, 60, sim.Deterministic{}, &sim.FixedModel{Model: 0, MaxBatch: 8}, 1)
		m := e.Run(arr)
		if m.Served != len(arr) {
			b.Fatal("dropped queries")
		}
	}
	b.ReportMetric(float64(len(arr)), "queries/op")
}

// BenchmarkLLMStepLoop measures the token-level simulator's step loop:
// continuous-batching admission, decode-first step composition, and KV
// accounting over a sustained general-class token stream (fixed fastest
// model, so the cost measured is the batching machinery, not selection).
func BenchmarkLLMStepLoop(b *testing.B) {
	models := llm.BuiltinSet()
	cls, err := llm.ClassByName("general")
	if err != nil {
		b.Fatal(err)
	}
	events := trace.TokenArrivals(trace.Constant(40, 10), 1, cls.In, cls.Out)
	queries := make([]sim.TokenQuery, len(events))
	var tokens int64
	for i, ev := range events {
		queries[i] = sim.TokenQuery{ID: i, Arrival: ev.T, Prefill: ev.Prefill, Decode: ev.Decode}
		tokens += int64(ev.Prefill + ev.Decode)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewLLMEngine(models, 8.0, 2, sim.FixedSelector(models.Fastest()))
		m := e.Run(queries)
		if m.Served != len(queries) {
			b.Fatalf("served %d of %d", m.Served, len(queries))
		}
	}
	b.ReportMetric(float64(tokens), "tokens/op")
}

// BenchmarkBalancerPick compares the per-arrival routing cost of the three
// load-balancing strategies at a paper-scale worker count (60, Fig. 5): RR
// is an atomic increment, JSQ a full scan, P2C two RNG draws behind a
// mutex.
func BenchmarkBalancerPick(b *testing.B) {
	const workers = 60
	lens := make([]int, workers)
	for i := range lens {
		lens[i] = i % 7
	}
	healthy := make([]bool, workers)
	for i := range healthy {
		healthy[i] = true
	}
	for _, bal := range []lb.Balancer{lb.NewRoundRobin(), lb.NewJoinShortestQueue(), lb.NewPowerOfTwoChoices(1)} {
		b.Run(bal.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if w := bal.Pick(lens, healthy); w < 0 {
					b.Fatal("no pick")
				}
			}
		})
	}
}

// BenchmarkRAMSISScheduler measures end-to-end simulated serving with the
// RAMSIS scheduler (policy lookup per decision included).
func BenchmarkRAMSISScheduler(b *testing.B) {
	set := core.NewPolicySet(genCfg(), nil)
	if err := set.GenerateLoads([]float64{2400}); err != nil {
		b.Fatal(err)
	}
	models := profile.ImageSet()
	tr := trace.Constant(2400, 10)
	arr := trace.PoissonArrivals(tr, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(models, 0.150, 60, sim.Deterministic{}, sim.NewRAMSIS(set, monitor.Oracle{Trace: tr}), 1)
		e.Run(arr)
	}
	b.ReportMetric(float64(len(arr)), "queries/op")
}

// --- Ablation benches (design choices from DESIGN.md) ---

// BenchmarkAblationParetoPruning compares policy generation with and
// without the §4.3.3 action-space pruning.
func BenchmarkAblationParetoPruning(b *testing.B) {
	for _, pruned := range []bool{true, false} {
		name := "pruned"
		if !pruned {
			name = "full26"
		}
		b.Run(name, func(b *testing.B) {
			cfg := genCfg()
			cfg.NoParetoPruning = !pruned
			for i := 0; i < b.N; i++ {
				if _, err := core.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDiscount sweeps the value-iteration discount factor,
// which the paper leaves implicit.
func BenchmarkAblationDiscount(b *testing.B) {
	for _, gamma := range []float64{0.90, 0.99, 0.999} {
		b.Run(gammaName(gamma), func(b *testing.B) {
			cfg := genCfg()
			cfg.Gamma = gamma
			var acc float64
			for i := 0; i < b.N; i++ {
				pol, err := core.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = pol.ExpectedAccuracy
			}
			b.ReportMetric(acc, "expAccuracy")
		})
	}
}

func gammaName(g float64) string {
	switch g {
	case 0.90:
		return "gamma0.90"
	case 0.99:
		return "gamma0.99"
	}
	return "gamma0.999"
}

// BenchmarkAblationReward compares the paper's per-decision reward against
// the batch-weighted variant.
func BenchmarkAblationReward(b *testing.B) {
	for _, weighted := range []bool{false, true} {
		name := "paper"
		if weighted {
			name = "batchWeighted"
		}
		b.Run(name, func(b *testing.B) {
			cfg := genCfg()
			cfg.BatchWeightedReward = weighted
			var acc float64
			for i := 0; i < b.N; i++ {
				pol, err := core.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = pol.ExpectedAccuracy
			}
			b.ReportMetric(acc, "expAccuracy")
		})
	}
}

// BenchmarkAblationProbFloor sweeps the sparse transition pruning threshold
// (probability mass below it folds into the overflow state).
func BenchmarkAblationProbFloor(b *testing.B) {
	for _, floor := range []float64{1e-6, 1e-10, 1e-14} {
		b.Run(floorName(floor), func(b *testing.B) {
			cfg := genCfg()
			cfg.ProbFloor = floor
			var transitions int
			for i := 0; i < b.N; i++ {
				pol, err := core.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				transitions = pol.Transitions
			}
			b.ReportMetric(float64(transitions), "transitions")
		})
	}
}

func floorName(f float64) string {
	switch f {
	case 1e-6:
		return "floor1e-6"
	case 1e-10:
		return "floor1e-10"
	}
	return "floor1e-14"
}

// BenchmarkAblationQuadrature sweeps the transition-integral resolution.
func BenchmarkAblationQuadrature(b *testing.B) {
	for _, cells := range []int{128, 512, 2048} {
		b.Run(cellsName(cells), func(b *testing.B) {
			cfg := genCfg()
			cfg.FineCells = cells
			var acc float64
			for i := 0; i < b.N; i++ {
				pol, err := core.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = pol.ExpectedAccuracy
			}
			b.ReportMetric(acc, "expAccuracy")
		})
	}
}

func cellsName(c int) string {
	switch c {
	case 128:
		return "cells128"
	case 512:
		return "cells512"
	}
	return "cells2048"
}

func BenchmarkFig2LullExploitation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Fig2()
	}
}

func BenchmarkMisspecArrivalSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Misspec()
	}
}

func BenchmarkGreedyStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Greedy()
	}
}

func BenchmarkScalingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHarness().Scaling()
	}
}
