package experiments

import (
	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// Fig8 reproduces §7.3.2: sensitivity to the model count. The low scenario
// uses the M = 9 Pareto-front models; the high scenario a synthetic M = 60
// superset interpolated along the front in ~0.5% accuracy steps. RAMSIS and
// ModelSwitching run at 100 workers under 30-second constant loads. The
// reproduced claim: ModelSwitching improves markedly with 60 models while
// RAMSIS sees negligible benefit — its fine-grained decisions emulate a
// large model set.
func (h *Harness) Fig8() Series {
	const slo, workers = 0.150, 100
	nine := profile.ImageSet().ParetoFront()
	sixty := profile.InterpolatedSet(profile.ImageSet(), 60)
	loads := loadRange(800, 4000, 800)
	dur := 15.0
	switch h.scale() {
	case scaleFull:
		loads = loadRange(400, 4000, 400)
		dur = 30.0
	case scaleQuick:
		loads = []float64{800, 2400}
		dur = 8.0
	}
	scenarios := []struct {
		label  string
		models profile.Set
		method string
	}{
		{"RAMSIS M=9", nine, MethodRAMSIS},
		{"RAMSIS M=60", sixty, MethodRAMSIS},
		{"MS M=9", nine, MethodMS},
		{"MS M=60", sixty, MethodMS},
	}
	series := Series{}
	h.printf("Fig. 8: model-count sensitivity (image, SLO %.0f ms, %d workers)\n", slo*1000, workers)
	h.printf("%10s  %12s %12s %12s %12s\n", "load(QPS)", "RAMSIS M=9", "RAMSIS M=60", "MS M=9", "MS M=60")
	var specs []runSpec
	for _, load := range loads {
		tr := trace.Constant(load, dur)
		for _, sc := range scenarios {
			specs = append(specs, runSpec{models: sc.models, slo: slo, workers: workers,
				method: sc.method, tr: tr, oracle: true, ramsisLoads: []float64{load}})
		}
	}
	mets := h.runAll(specs)
	for li, load := range loads {
		row := map[string]float64{}
		for si, sc := range scenarios {
			met := mets[li*len(scenarios)+si]
			series.add(Point{X: load, Method: sc.label,
				Accuracy: met.AccuracyPerSatisfiedQuery(), Violation: met.ViolationRate()})
			row[sc.label] = met.AccuracyPerSatisfiedQuery()
		}
		h.printf("%10.0f  %12.4f %12.4f %12.4f %12.4f\n", load,
			row["RAMSIS M=9"], row["RAMSIS M=60"], row["MS M=9"], row["MS M=60"])
	}
	h.printf("\n")
	h.plotSeries("Fig. 8: model-count sensitivity (accuracy vs load)", series)
	h.saveResult("fig8", series)
	return series
}
