package experiments

import (
	"fmt"

	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// Fig5Result holds the production-trace sweep: accuracy (Fig. 5) and SLO
// violation rates (Table 3) per task, SLO, worker count, and method.
type Fig5Result struct {
	// Task -> SLO seconds -> Series over worker counts.
	Accuracy map[string]map[float64]Series
}

// Fig5 reproduces §7.1: RAMSIS vs ModelSwitching vs Jellyfish+ on the
// 5-minute Twitter trace, sweeping workers 20-100, under both tasks and all
// three SLOs per task. It also prints Table 3 (the violation rates for the
// same grid). Points are marked reported only when the violation rate is
// below 5%, as in the paper.
func (h *Harness) Fig5() Fig5Result {
	tr := trace.Twitter()
	// The worker grid must be dense enough for the §7.1 resource-reduction
	// metric to resolve (the paper reports savings down to ~14%).
	workers := []int{20, 40, 60, 80, 100}
	tasks := []string{"image", "text"}
	switch h.scale() {
	case scaleFull:
		workers = []int{20, 30, 40, 50, 60, 70, 80, 90, 100}
	case scaleQuick:
		workers = []int{20, 60}
		tr = tr.Truncate(30)
	default:
		tr = tr.Truncate(60)
	}
	methods := []string{MethodRAMSIS, MethodMS, MethodJF}
	res := Fig5Result{Accuracy: map[string]map[float64]Series{}}

	for _, task := range tasks {
		models, _ := profile.SetForTask(task)
		res.Accuracy[task] = map[float64]Series{}
		slos := slosFor(task)
		if h.scale() == scaleQuick {
			slos = slos[:1]
		}
		for _, slo := range slos {
			series := Series{}
			h.printf("Fig. 5 / Table 3 (%s, SLO %.0f ms, trace %s %.0fs)\n", task, slo*1000, tr.Name, tr.Duration())
			h.printf("%8s  %28s  %28s\n", "", "accuracy per satisfied query", "violation rate")
			h.printf("%8s  %8s %8s %8s  %8s %8s %8s\n", "#workers",
				MethodRAMSIS, MethodMS, MethodJF, MethodRAMSIS, MethodMS, MethodJF)
			var specs []runSpec
			for _, w := range workers {
				for _, m := range methods {
					specs = append(specs, runSpec{
						models: models, slo: slo, workers: w, method: m,
						tr: tr, ramsisLoads: h.ladderFor(tr),
					})
				}
			}
			mets := h.runAll(specs)
			for wi, w := range workers {
				row := map[string]Point{}
				for mi, m := range methods {
					met := mets[wi*len(methods)+mi]
					p := Point{X: float64(w), Method: m,
						Accuracy: met.AccuracyPerSatisfiedQuery(), Violation: met.ViolationRate()}
					series.add(p)
					row[m] = p
				}
				h.printf("%8d  %8.4f %8.4f %8.4f  %8.4f %8.4f %8.4f\n", w,
					row[MethodRAMSIS].Accuracy, row[MethodMS].Accuracy, row[MethodJF].Accuracy,
					row[MethodRAMSIS].Violation, row[MethodMS].Violation, row[MethodJF].Violation)
			}
			res.Accuracy[task][slo] = series
			h.plotSeries(fmt.Sprintf("Fig. 5 (%s, SLO %.0f ms): accuracy vs workers", task, slo*1000), series)
			h.summarizeGains(series)
			h.summarizeResourceReduction(series)
		}
	}
	h.saveResult("fig5", res)
	return res
}

// ResourceReduction computes the paper's headline cost metric (§7.1): for
// every baseline operating point (w workers at accuracy a), the smallest
// RAMSIS worker count achieving at least accuracy a, expressed as the
// fraction of workers saved. Returns per-baseline average and maximum
// reductions over points where both methods report (<5% violations).
func ResourceReduction(series Series, baseline string) (avg, max float64, n int) {
	ram := series[MethodRAMSIS]
	for _, b := range series[baseline] {
		if !b.Reported {
			continue
		}
		best := -1.0
		for _, r := range ram {
			if r.Reported && r.Accuracy >= b.Accuracy-1e-9 {
				if best < 0 || r.X < best {
					best = r.X
				}
			}
		}
		if best < 0 {
			continue
		}
		red := (b.X - best) / b.X
		if red < 0 {
			red = 0
		}
		avg += red
		if red > max {
			max = red
		}
		n++
	}
	if n > 0 {
		avg /= float64(n)
	}
	return avg, max, n
}

func (h *Harness) summarizeResourceReduction(series Series) {
	for _, base := range []string{MethodMS, MethodJF} {
		if avg, max, n := ResourceReduction(series, base); n > 0 {
			h.printf("RAMSIS vs %s: same accuracy with avg %.2f%% / up to %.2f%% fewer workers (%d points)\n",
				base, avg*100, max*100, n)
		}
	}
	h.printf("\n")
}

// summarizeGains prints the paper's headline statistics for a series:
// average and maximum accuracy improvement of RAMSIS over each baseline at
// points both report (<5% violations).
func (h *Harness) summarizeGains(series Series) {
	for _, base := range []string{MethodMS, MethodJF} {
		baseline, ok := series[base]
		if !ok {
			continue
		}
		byX := map[float64]Point{}
		for _, p := range baseline {
			byX[p.X] = p
		}
		var sum, max float64
		n := 0
		for _, p := range series[MethodRAMSIS] {
			b, ok := byX[p.X]
			if !ok || !p.Reported || !b.Reported {
				continue
			}
			gain := (p.Accuracy - b.Accuracy) * 100
			sum += gain
			if gain > max {
				max = gain
			}
			n++
		}
		if n > 0 {
			h.printf("RAMSIS vs %s: avg %+.2f%% accuracy, max %+.2f%% (over %d reported points)\n",
				base, sum/float64(n), max, n)
		}
	}
	h.printf("\n")
}
