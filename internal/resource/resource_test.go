package resource

import (
	"testing"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

func req() Requirements {
	return Requirements{SLO: 0.150, MaxViolation: 0.02, D: 20}
}

func TestMinWorkersFindsSmallFeasible(t *testing.T) {
	models := profile.ImageSet()
	plan, err := MinWorkers(models, req(), 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers < 2 || plan.Workers > 6 {
		t.Errorf("plan = %d workers for 100 QPS, expected a handful", plan.Workers)
	}
	if plan.Policy == nil || plan.Policy.ExpectedViolation > 0.02 {
		t.Errorf("plan policy does not meet the violation bound: %+v", plan.Policy.ExpectedViolation)
	}
	// Minimality: one fewer worker must not meet the requirements. (Checked
	// via the plan's own search invariant: the binary search only returns w
	// when w-1 failed or w == 1.)
	if plan.Workers > 1 {
		smaller, err := MinWorkers(models, req(), 100, plan.Workers-1)
		if err == nil && smaller.Workers < plan.Workers {
			t.Errorf("found a smaller feasible plan (%d) than reported minimum (%d)",
				smaller.Workers, plan.Workers)
		}
	}
}

func TestMinWorkersAccuracyTargetNeedsMore(t *testing.T) {
	models := profile.ImageSet()
	base, err := MinWorkers(models, req(), 150, 12)
	if err != nil {
		t.Fatal(err)
	}
	strict := req()
	strict.MinAccuracy = 0.75
	withAcc, err := MinWorkers(models, strict, 150, 12)
	if err != nil {
		t.Fatal(err)
	}
	if withAcc.Workers < base.Workers {
		t.Errorf("accuracy target yielded fewer workers (%d) than no target (%d)",
			withAcc.Workers, base.Workers)
	}
	if withAcc.Policy.ExpectedAccuracy < 0.75 {
		t.Errorf("plan accuracy %.4f below target", withAcc.Policy.ExpectedAccuracy)
	}
}

func TestMinWorkersInfeasible(t *testing.T) {
	models := profile.ImageSet()
	if _, err := MinWorkers(models, req(), 5000, 2); err == nil {
		t.Error("5000 QPS on 2 workers should be infeasible")
	}
	if _, err := MinWorkers(models, req(), 100, 0); err == nil {
		t.Error("maxWorkers 0 should error")
	}
}

func TestStaticPlanUsesPeak(t *testing.T) {
	models := profile.ImageSet()
	tr := trace.Trace{IntervalSec: 10, QPS: []float64{100, 250, 200}}
	static, err := StaticPlan(models, req(), tr, 12)
	if err != nil {
		t.Fatal(err)
	}
	peakOnly, err := MinWorkers(models, req(), 250, 12)
	if err != nil {
		t.Fatal(err)
	}
	if static.Workers != peakOnly.Workers {
		t.Errorf("static plan %d != peak plan %d", static.Workers, peakOnly.Workers)
	}
}

func TestAutoscaleSavesOverStatic(t *testing.T) {
	models := profile.ImageSet()
	// A strongly diurnal trace: most intervals far below peak.
	tr := trace.Trace{IntervalSec: 10, QPS: []float64{80, 80, 100, 350, 100, 80}}
	sched, err := Autoscale(models, req(), tr, 16, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Workers) != len(tr.QPS) {
		t.Fatalf("schedule covers %d intervals, want %d", len(sched.Workers), len(tr.QPS))
	}
	static, err := StaticPlan(models, req(), tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Peak() > static.Workers+1 {
		t.Errorf("autoscale peak %d far above static %d", sched.Peak(), static.Workers)
	}
	if sched.MeanWorkers() >= float64(static.Workers) {
		t.Errorf("autoscaling mean %.1f does not save over static %d",
			sched.MeanWorkers(), static.Workers)
	}
	// The burst interval must be provisioned above the idle ones.
	if sched.Workers[3] <= sched.Workers[0] {
		t.Errorf("burst interval not scaled up: %v", sched.Workers)
	}
}

func TestAutoscaleValidation(t *testing.T) {
	models := profile.ImageSet()
	tr := trace.Constant(100, 10)
	if _, err := Autoscale(models, req(), tr, 16, 0.5); err == nil {
		t.Error("headroom < 1 accepted")
	}
}

func TestSelectModels(t *testing.T) {
	models := profile.ImageSet()
	r := req()
	r.MaxViolation = 0.05
	const workers, load = 8, 250.0
	set3, pol3, err := SelectModels(models, r, load, workers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if set3.Len() > 3 || set3.Len() < 1 {
		t.Fatalf("selected %d models, want 1..3", set3.Len())
	}
	// The fastest model must always be loaded (forced fallback).
	if _, ok := set3.ByName(models.Fastest().Name); !ok {
		t.Error("fastest model not selected")
	}
	// More budget never hurts.
	_, pol1, err := SelectModels(models, r, load, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pol3.ExpectedAccuracy < pol1.ExpectedAccuracy-1e-9 {
		t.Errorf("3-model accuracy %v below 1-model %v", pol3.ExpectedAccuracy, pol1.ExpectedAccuracy)
	}
	// Fig. 12's insight: a small set retains most of the full set's value.
	fullPol, err := core.Generate(core.Config{
		Models: models, SLO: r.SLO, Workers: workers,
		Arrival: dist.NewPoisson(load), D: r.D,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pol3.ExpectedAccuracy < fullPol.ExpectedAccuracy-0.05 {
		t.Errorf("3-model accuracy %v far below full-set %v", pol3.ExpectedAccuracy, fullPol.ExpectedAccuracy)
	}
	if _, _, err := SelectModels(models, r, load, workers, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
