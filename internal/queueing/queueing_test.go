package queueing

import (
	"math"
	"testing"

	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/stats"
	"ramsis/internal/trace"
)

func TestErlangCKnownValues(t *testing.T) {
	// c=1: C = rho (waiting probability of M/M/1).
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); math.Abs(got-rho) > 1e-12 {
			t.Errorf("ErlangC(1, %v) = %v, want %v", rho, got, rho)
		}
	}
	// Textbook value: c=2, a=1 -> C = 1/3.
	if got := ErlangC(2, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("ErlangC(2,1) = %v, want 1/3", got)
	}
	// Unstable and empty edges.
	if got := ErlangC(4, 5); got != 1 {
		t.Errorf("unstable ErlangC = %v, want 1", got)
	}
	if got := ErlangC(4, 0); got != 0 {
		t.Errorf("idle ErlangC = %v, want 0", got)
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for a := 0.5; a < 8; a += 0.5 {
		cur := ErlangC(8, a)
		if cur < prev-1e-12 {
			t.Fatalf("ErlangC not monotone at a=%v", a)
		}
		prev = cur
	}
}

func TestMMcWaitMeanMM1(t *testing.T) {
	// M/M/1: Wq = rho / (mu - lambda).
	lambda, mu := 8.0, 10.0
	want := (lambda / mu) / (mu - lambda)
	if got := MMcWaitMean(1, lambda, mu); math.Abs(got-want) > 1e-12 {
		t.Errorf("MM1 wait = %v, want %v", got, want)
	}
	if !math.IsInf(MMcWaitMean(1, 11, 10), 1) {
		t.Error("unstable MM1 wait should be +Inf")
	}
}

func TestMD1WaitMeanPollaczekKhinchine(t *testing.T) {
	// M/D/1 exact: Wq = rho·d / (2(1-rho)).
	lambda, d := 30.0, 0.02
	rho := lambda * d
	want := rho * d / (2 * (1 - rho))
	if got := MDcWaitMean(1, lambda, d); math.Abs(got-want) > 1e-12 {
		t.Errorf("MD1 wait = %v, want %v", got, want)
	}
}

// TestMD1AgainstSimulator cross-validates the simulator: a single worker
// running one model at batch cap 1 under Poisson arrivals IS an M/D/1
// queue, so the simulated mean wait must match Pollaczek–Khinchine.
func TestMD1AgainstSimulator(t *testing.T) {
	ps := profile.ImageSet()
	d := ps.Profiles[0].BatchLatency(1) // 22.9 ms deterministic service
	for _, rho := range []float64{0.4, 0.7} {
		lambda := rho / d
		e := sim.NewEngine(ps, 10 /* huge SLO: no violations */, 1, sim.Deterministic{}, &sim.FixedModel{Model: 0, MaxBatch: 1}, 1)
		e.CollectLatencies = true
		arr := trace.PoissonArrivals(trace.Constant(lambda, 600), 7)
		m := e.Run(arr)
		meanResp := stats.Mean(m.Latencies)
		want := MDcWaitMean(1, lambda, d) + d
		if math.Abs(meanResp-want)/want > 0.06 {
			t.Errorf("rho=%v: simulated mean response %v, M/D/1 predicts %v", rho, meanResp, want)
		}
	}
}

// TestMDcAgainstSimulator does the same for c=4 workers, where the halved
// Erlang-C approximation should land within ~10%.
func TestMDcAgainstSimulator(t *testing.T) {
	ps := profile.ImageSet()
	d := ps.Profiles[0].BatchLatency(1)
	const c = 4
	rho := 0.8
	lambda := rho * float64(c) / d
	e := sim.NewEngine(ps, 10, c, sim.Deterministic{}, &sim.FixedModel{Model: 0, MaxBatch: 1}, 1)
	e.CollectLatencies = true
	arr := trace.PoissonArrivals(trace.Constant(lambda, 600), 9)
	m := e.Run(arr)
	gotWait := stats.Mean(m.Latencies) - d
	want := MDcWaitMean(c, lambda, d)
	if math.Abs(gotWait-want)/want > 0.12 {
		t.Errorf("simulated mean wait %v, M/D/c approximation %v", gotWait, want)
	}
}

func TestResponseQuantile(t *testing.T) {
	d := 0.02
	// Light load: p50 should be just the service time.
	if got := ResponseQuantile(4, 1, d, 0.5); got != d {
		t.Errorf("light-load median = %v, want %v", got, d)
	}
	// Quantiles increase with q and with load.
	q90 := ResponseQuantile(4, 150, d, 0.90)
	q99 := ResponseQuantile(4, 150, d, 0.99)
	if q99 <= q90 {
		t.Errorf("q99 %v <= q90 %v", q99, q90)
	}
	if hi := ResponseQuantile(4, 190, d, 0.99); hi <= q99 {
		t.Errorf("quantile not increasing in load: %v <= %v", hi, q99)
	}
	if !math.IsInf(ResponseQuantile(1, 100, d, 0.99), 1) {
		t.Error("unstable quantile should be +Inf")
	}
}

func TestResponseQuantileAgainstSimulator(t *testing.T) {
	ps := profile.ImageSet()
	d := ps.Profiles[0].BatchLatency(1)
	const c = 4
	lambda := 0.75 * float64(c) / d
	e := sim.NewEngine(ps, 10, c, sim.Deterministic{}, &sim.FixedModel{Model: 0, MaxBatch: 1}, 1)
	e.CollectLatencies = true
	m := e.Run(trace.PoissonArrivals(trace.Constant(lambda, 600), 11))
	simP99 := stats.Percentile(m.Latencies, 99)
	anaP99 := ResponseQuantile(c, lambda, d, 0.99)
	if math.Abs(simP99-anaP99)/simP99 > 0.15 {
		t.Errorf("p99: simulated %v vs analytic %v", simP99, anaP99)
	}
}

func TestFluidCapacity(t *testing.T) {
	p, _ := profile.ImageSet().ByName("shufflenet_v2_x0_5")
	got := FluidCapacity(p, 60, 0.075)
	want := 60 * p.ThroughputWithin(0.075)
	if got != want {
		t.Errorf("FluidCapacity = %v, want %v", got, want)
	}
}

func TestStableLoad(t *testing.T) {
	p, _ := profile.ImageSet().ByName("shufflenet_v2_x0_5")
	got := StableLoad(p, 4, 0.150, 0.99)
	// Must be positive, below the batch-1 saturation bound c/d, and the
	// quantile constraint must hold at the returned load.
	max := 4 / p.BatchLatency(1)
	if got <= 0 || got >= max {
		t.Fatalf("StableLoad = %v outside (0, %v)", got, max)
	}
	if q := ResponseQuantile(4, got, p.BatchLatency(1), 0.99); q > 0.150+1e-9 {
		t.Errorf("quantile at stable load = %v > SLO", q)
	}
	// A model slower than the SLO has zero stable load.
	slow, _ := profile.ImageSet().ByName("efficientnet_v2_s")
	if got := StableLoad(slow, 4, 0.150, 0.99); got != 0 {
		t.Errorf("infeasible model stable load = %v, want 0", got)
	}
}

func TestErlangCPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ErlangC(0, 1) },
		func() { ErlangC(2, -1) },
		func() { ResponseQuantile(2, 1, 0.01, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
