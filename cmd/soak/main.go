// Command soak drives the sharded multi-tenant serving plane at six-figure
// wall QPS on localhost and verifies the PR's serving claim end to end: with
// one tenant offering 4× its contracted rate, the compliant tenants keep
// goodput at or above the floor, the overloader is shed down to its fair
// share without starving, and every per-tenant number is read back from the
// gateway's /metrics exposition (not from in-process state).
//
//	soak                        # full scale: ≥100k offered wall QPS, 4 shards
//	soak -target-qps 2000 -dur 2s   # CI smoke scale
//
// Exit status is 0 only if every assertion holds.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ramsis/internal/profile"
	"ramsis/internal/serve"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// soakTenants is the contract set, in modeled QPS. The overloader carries
// most of the contracted capacity so the offered:admitted ratio stays near
// 3.5:1 — at a six-figure offered wall rate the admitted stream the workers
// must genuinely drain stays within a small host's budget, with everything
// past it shed on the cheap admission path. Bronze's borrowed backlog is
// held off the queues by the plane's borrow reserve, so gold and silver
// keep their queue slots even though bronze supplies ~95% of arrivals.
func soakTenants(sloScale float64) []tenant.Tenant {
	return []tenant.Tenant{
		// Compliant tenants get deep token buckets: a wall-clock stall at
		// a four-digit time scale compresses tens of modeled seconds of
		// arrivals into one burst, and a shallow bucket would shed traffic
		// that is within contract on average. The overloader stays on a
		// tight bucket so its excess is metered out immediately.
		{Name: "gold", Class: "interactive", SLOMS: 15000 * sloScale, Weight: 2, RateQPS: 2, BurstSec: 10},
		{Name: "silver", Class: "standard", SLOMS: 30000 * sloScale, Weight: 1, RateQPS: 1.5, BurstSec: 10},
		{Name: "bronze", Class: "batch", SLOMS: 60000 * sloScale, Weight: 0.2, RateQPS: 17.5, BurstSec: 2},
	}
}

func main() {
	var (
		shards    = flag.Int("shards", 4, "frontend shard count")
		workers   = flag.Int("workers", 1, "workers per shard")
		targetQPS = flag.Float64("target-qps", 105000, "offered wall QPS across all tenants (sets the time scale)")
		qpsFloor  = flag.Float64("qps-floor", 100000, "minimum achieved offered wall QPS for the soak to pass")
		floor     = flag.Float64("goodput-floor", 0.9, "minimum goodput for compliant tenants")
		overload  = flag.Float64("overload", 4, "offered-rate multiple for the overloading tenant (bronze)")
		dur       = flag.Duration("dur", 5*time.Second, "injection duration (wall clock)")
		d         = flag.Int("d", 40, "FLD resolution for the per-tenant policy solves")
		seed      = flag.Int64("seed", 1, "worker and balancer seed")
		timeScale = flag.Float64("timescale", 0, "modeled-to-wall compression (0 = derived from -target-qps)")
		sloScale  = flag.Float64("slo-scale", 1, "scale factor on the built-in tenant SLOs")
	)
	flag.Parse()

	tenants := soakTenants(*sloScale)
	offeredModeled, totalRate := 0.0, 0.0
	for _, t := range tenants {
		totalRate += t.RateQPS
		r := t.RateQPS
		if t.Name == "bronze" {
			r *= *overload
		}
		offeredModeled += r
	}
	ts := *timeScale
	if ts <= 0 {
		ts = *targetQPS / offeredModeled
	}

	// Restrict the zoo to models that can sustain the per-worker aggregate
	// admitted rate. The soak's modeled SLOs are necessarily lax (wall
	// scheduler jitter is multiplied by the time scale), and under a lax
	// SLO the solver has no reason to avoid a model whose full-queue wait
	// still meets the deadline — even one whose throughput the admitted
	// stream exceeds. Operators curate the zoo to the contracted load for
	// the same reason.
	perWorker := totalRate / float64(*shards*(*workers))
	models := profile.AblationImageSet()
	var keep []string
	for _, p := range models.Profiles {
		if p.Throughput() >= perWorker {
			keep = append(keep, p.Name)
		}
	}
	if len(keep) == 0 {
		fmt.Fprintln(os.Stderr, "soak: no model sustains", perWorker, "QPS per worker")
		os.Exit(1)
	}
	models = models.Subset(keep...)

	fmt.Printf("soak: %d shards x %d workers, timescale %.0f, %.0f modeled QPS offered (%.0f wall QPS target), %s\n",
		*shards, *workers, ts, offeredModeled, offeredModeled*ts, *dur)
	fmt.Printf("solving %d per-tenant policies...\n", len(tenants))
	c, err := serve.StartShardedCluster(serve.ShardedConfig{
		Models:          models,
		Tenants:         tenants,
		Shards:          *shards,
		WorkersPerShard: *workers,
		TimeScale:       ts,
		Seed:            *seed,
		D:               *d,
		ShardBy:         "p2c", // spread each tenant's stream across shards
		// The online cap gets 6× the MDP bound in slack and almost all of
		// it is reserved against borrowing: the borrow boundary stays at
		// 16 outstanding per shard (short queues ahead of compliant
		// queries) while compliant traffic has ~176 slots to ride out
		// wall-clock stalls, which at this time scale arrive as bursts of
		// modeled arrivals.
		QueueSlack: 6,
		Fair:       tenant.FairConfig{BurstSec: 1, BorrowReserve: 32**workers*6 - 16},
		Telemetry:  telemetry.NewRegistry(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
	defer c.Stop()

	// Inject in-process through Gateway.Route (the HTTP hop stays on the
	// worker dispatch path, where batching amortizes it; per-query HTTP at
	// 100k QPS would only measure the client). Batched catch-up pacing:
	// per-query sleeps cannot reach six-figure rates.
	fmt.Printf("injecting for %s...\n", *dur)
	start := time.Now()
	var wg sync.WaitGroup
	for _, t := range tenants {
		rate := t.RateQPS * ts
		if t.Name == "bronze" {
			rate *= *overload
		}
		wg.Add(1)
		go func(name string, rate float64) {
			defer wg.Done()
			const tick = 2 * time.Millisecond
			begin := time.Now()
			sent := 0
			for {
				elapsed := time.Since(begin)
				if elapsed >= *dur {
					return
				}
				for want := int(rate * elapsed.Seconds()); sent < want; sent++ {
					_, _ = c.Gateway.Route(name)
				}
				time.Sleep(tick)
			}
		}(t.Name, rate)
	}
	wg.Wait()
	wallDur := time.Since(start).Seconds()
	time.Sleep(500 * time.Millisecond) // drain in-flight batches

	// Refresh the goodput gauges, then read every per-tenant figure back
	// through the exposition — the soak verifies what an external scraper
	// would see, not internal state.
	if _, err := http.Get(c.URL() + "/stats"); err != nil {
		fmt.Fprintln(os.Stderr, "soak: stats refresh:", err)
		os.Exit(1)
	}
	series, err := scrapeMetrics(c.URL() + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL: "+format+"\n", args...)
	}

	offered := 0.0
	fmt.Println("per-tenant breakdown (scraped from /metrics):")
	for _, t := range tenants {
		served := series[key(telemetry.MetricTenantQueries, t.Name)]
		violations := series[key(telemetry.MetricTenantViolations, t.Name)]
		shed := series[key(telemetry.MetricTenantShed, t.Name)]
		goodput := series[key(telemetry.MetricTenantGoodput, t.Name)]
		offered += served + shed
		fmt.Printf("  %-8s offered %8.0f  served %8.0f  shed %8.0f  violations %6.0f  goodput %.3f\n",
			t.Name, served+shed, served, shed, violations, goodput)

		switch t.Name {
		case "bronze":
			if shed == 0 {
				fail("overloading tenant %s was never shed", t.Name)
			}
			if served == 0 {
				fail("overloading tenant %s starved", t.Name)
			}
		default:
			if goodput < *floor {
				fail("compliant tenant %s goodput %.3f < %.2f", t.Name, goodput, *floor)
			}
		}
	}
	achieved := offered / wallDur
	fmt.Printf("achieved offered rate: %.0f wall QPS over %.2fs (floor %.0f)\n", achieved, wallDur, *qpsFloor)
	if achieved < *qpsFloor {
		fail("achieved %.0f wall QPS < floor %.0f — injectors or plane fell behind", achieved, *qpsFloor)
	}

	if failed {
		fmt.Println("soak FAILED")
		os.Exit(1)
	}
	fmt.Println("soak passed")
}

func key(metric, tenantName string) string {
	return metric + `{tenant="` + tenantName + `"}`
}

// scrapeMetrics fetches a Prometheus text exposition and returns each
// sample keyed by `name{labels}` exactly as exposed.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, sc.Err()
}
