package llm

import (
	"fmt"

	"ramsis/internal/dist"
)

// Class is a servegen-style workload scenario class: a named pair of token
// length distributions for prompt (prefill) and output (decode) lengths.
// cmd/simulate and cmd/serve select one by name to generate token-annotated
// arrivals.
type Class struct {
	Name string
	// In samples prompt token lengths.
	In dist.LengthSampler
	// Out samples output token lengths.
	Out dist.LengthSampler
}

// MeanTokens returns the mean total tokens per query (prefill + decode).
func (c Class) MeanTokens() float64 { return c.In.MeanLen() + c.Out.MeanLen() }

// PrefillFraction returns the mean fraction of a query's tokens that are
// prefill — the batch-composition prior policy generation uses.
func (c Class) PrefillFraction() float64 {
	return c.In.MeanLen() / c.MeanTokens()
}

// GeneralClass is the interactive-chat class: short-to-medium prompts,
// medium outputs, both lognormal with heavy right tails.
func GeneralClass() Class {
	return Class{
		Name: "general",
		In:   dist.NewLognormalLen(200, 0.9, 8, 2048),
		Out:  dist.NewLognormalLen(180, 0.7, 16, 1024),
	}
}

// CodegenClass is the code-assistant class: long prompts (repository
// context) with comparatively short completions. Its prefill-heavy
// composition is what makes a codegen burst invisible to a scalar
// queue-length policy: the queue looks short while the outstanding token
// load explodes.
func CodegenClass() Class {
	return Class{
		Name: "codegen",
		In:   dist.NewLognormalLen(1400, 0.6, 64, 4096),
		Out:  dist.NewLognormalLen(220, 0.8, 16, 1024),
	}
}

// ReasoningClass is the long-output class: medium prompts with extended
// chains of generated tokens, given as an empirical bucket histogram (the
// form measured reasoning-trace length distributions arrive in).
func ReasoningClass() Class {
	return Class{
		Name: "reasoning",
		In:   dist.NewLognormalLen(280, 0.7, 32, 2048),
		Out: dist.NewEmpiricalLen([]dist.LenBucket{
			{Lo: 128, Hi: 512, Weight: 0.25},
			{Lo: 513, Hi: 1536, Weight: 0.45},
			{Lo: 1537, Hi: 3072, Weight: 0.30},
		}),
	}
}

// Classes returns every built-in workload class.
func Classes() []Class {
	return []Class{GeneralClass(), CodegenClass(), ReasoningClass()}
}

// ClassByName returns the built-in class with the given name.
func ClassByName(name string) (Class, error) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("llm: unknown workload class %q (want general, codegen, or reasoning)", name)
}
