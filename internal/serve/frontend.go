package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
)

// QueryResponse is the client-facing result of one inference query.
type QueryResponse struct {
	ID          int     `json:"id"`
	Model       string  `json:"model"`
	Batch       int     `json:"batch"`
	LatencyMS   float64 `json:"latencyMs"` // modeled response latency
	DeadlineMet bool    `json:"deadlineMet"`
}

// StatsResponse is the /stats snapshot.
type StatsResponse struct {
	Served        int     `json:"served"`
	Violations    int     `json:"violations"`
	Accuracy      float64 `json:"accuracyPerSatisfiedQuery"`
	ViolationRate float64 `json:"violationRate"`
	QueueLengths  []int   `json:"queueLengths"`
}

// Frontend is the client-facing half of the prototype: applications POST
// /query and block until their prediction returns, exactly the Fig. 1 flow
// (central queue -> load balancer -> worker queue -> model selector ->
// worker). It shares the worker HTTP API with Controller but serves live
// traffic instead of replaying a trace.
type Frontend struct {
	Profiles  profile.Set
	SLO       float64
	TimeScale float64
	Workers   []string
	Select    SelectFunc
	Monitor   monitor.Monitor

	mu      sync.Mutex
	cond    *sync.Cond
	wq      [][]pendingQuery
	nextID  int
	rr      int
	start   time.Time
	closed  bool
	metrics sim.Metrics
	srv     *http.Server
	addr    string
	client  *http.Client
	loops   sync.WaitGroup
}

type pendingQuery struct {
	q    sim.Query
	done chan QueryResponse
}

// Start begins serving on a random localhost port.
func (f *Frontend) Start() error {
	if len(f.Workers) == 0 {
		return fmt.Errorf("serve: frontend needs workers")
	}
	if f.TimeScale <= 0 {
		f.TimeScale = 1
	}
	f.cond = sync.NewCond(&f.mu)
	f.wq = make([][]pendingQuery, len(f.Workers))
	f.start = time.Now()
	f.metrics = sim.Metrics{ModelCounts: map[string]int{}}
	f.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: len(f.Workers) + 4}}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	f.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/query", f.handleQuery)
	mux.HandleFunc("/stats", f.handleStats)
	f.srv = &http.Server{Handler: mux}
	go func() { _ = f.srv.Serve(ln) }()

	for w := range f.Workers {
		f.loops.Add(1)
		go f.workerLoop(w)
	}
	return nil
}

// URL returns the frontend's base URL.
func (f *Frontend) URL() string { return "http://" + f.addr }

// Stop shuts down the HTTP server and the selector loops.
func (f *Frontend) Stop() error {
	err := f.srv.Close()
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.loops.Wait()
	return err
}

// Stats returns a metrics snapshot.
func (f *Frontend) Stats() StatsResponse {
	f.mu.Lock()
	defer f.mu.Unlock()
	qs := make([]int, len(f.wq))
	for i := range f.wq {
		qs[i] = len(f.wq[i])
	}
	return StatsResponse{
		Served:        f.metrics.Served,
		Violations:    f.metrics.Violations,
		Accuracy:      f.metrics.AccuracyPerSatisfiedQuery(),
		ViolationRate: f.metrics.ViolationRate(),
		QueueLengths:  qs,
	}
}

func (f *Frontend) now() float64 {
	return time.Since(f.start).Seconds() * f.TimeScale
}

// handleQuery enqueues the query round-robin and blocks until it is served.
func (f *Frontend) handleQuery(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	done := make(chan QueryResponse, 1)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		http.Error(rw, "shutting down", http.StatusServiceUnavailable)
		return
	}
	id := f.nextID
	f.nextID++
	now := f.now()
	if f.Monitor != nil {
		f.Monitor.Observe(now)
	}
	w := f.rr % len(f.Workers)
	f.rr++
	f.wq[w] = append(f.wq[w], pendingQuery{q: sim.Query{ID: id, Arrival: now}, done: done})
	f.cond.Broadcast()
	f.mu.Unlock()

	select {
	case resp := <-done:
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	case <-req.Context().Done():
		// Client went away; the batch still completes and records metrics.
	}
}

func (f *Frontend) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(f.Stats())
}

// workerLoop mirrors Controller.workerLoop for live queries.
func (f *Frontend) workerLoop(w int) {
	defer f.loops.Done()
	for {
		f.mu.Lock()
		for len(f.wq[w]) == 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed && len(f.wq[w]) == 0 {
			f.mu.Unlock()
			return
		}
		n := len(f.wq[w])
		now := f.now()
		load := 0.0
		if f.Monitor != nil {
			load = f.Monitor.Load(now)
		}
		slack := f.wq[w][0].q.Arrival + f.SLO - now
		model, batch := f.Select(now, load, n, slack)
		p, ok := f.Profiles.ByName(model)
		if !ok || batch < 1 {
			// Defensive: never drop live queries on selector misbehavior.
			p = f.Profiles.Profiles[0]
			batch = 1
		}
		if batch > p.MaxBatch() {
			batch = p.MaxBatch()
		}
		if batch > n {
			batch = n
		}
		queries := f.wq[w][:batch]
		f.wq[w] = append([]pendingQuery(nil), f.wq[w][batch:]...)
		f.mu.Unlock()

		f.dispatch(w, p.Name, queries)
	}
}

func (f *Frontend) dispatch(w int, model string, queries []pendingQuery) {
	body, _ := json.Marshal(InferRequest{Model: model, Batch: len(queries)})
	resp, err := f.client.Post(f.Workers[w]+"/infer", "application/json", newReader(body))
	if err == nil {
		resp.Body.Close()
	}
	done := f.now()
	p, _ := f.Profiles.ByName(model)

	f.mu.Lock()
	f.metrics.Decisions++
	f.metrics.ModelCounts[model] += len(queries)
	for _, pq := range queries {
		f.metrics.Served++
		lat := done - pq.q.Arrival
		met := lat <= f.SLO
		if met {
			f.metrics.SatAccSum += p.Accuracy
		} else {
			f.metrics.Violations++
		}
		pq.done <- QueryResponse{
			ID: pq.q.ID, Model: model, Batch: len(queries),
			LatencyMS: lat * 1000, DeadlineMet: met,
		}
	}
	f.mu.Unlock()
}
