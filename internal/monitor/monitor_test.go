package monitor

import (
	"math"
	"testing"

	"ramsis/internal/trace"
)

func TestMovingAverageSteadyLoad(t *testing.T) {
	m := NewMovingAverage(0.5)
	// 100 QPS: one arrival every 10 ms.
	for i := 0; i < 500; i++ {
		m.Observe(float64(i) * 0.01)
	}
	got := m.Load(5.0)
	if math.Abs(got-100) > 4 {
		t.Errorf("Load = %v, want ~100", got)
	}
}

func TestMovingAverageWindowEviction(t *testing.T) {
	m := NewMovingAverage(0.5)
	for i := 0; i < 100; i++ {
		m.Observe(float64(i) * 0.001) // burst in first 100 ms
	}
	if got := m.Load(0.1); got != 200 {
		t.Errorf("Load right after burst = %v, want 200", got)
	}
	if got := m.Load(10); got != 0 {
		t.Errorf("Load long after burst = %v, want 0", got)
	}
}

func TestMovingAverageTracksLoadChange(t *testing.T) {
	m := NewMovingAverage(0.5)
	tm := 0.0
	for i := 0; i < 100; i++ { // 100 QPS phase
		m.Observe(tm)
		tm += 0.01
	}
	for i := 0; i < 1000; i++ { // 1000 QPS phase
		m.Observe(tm)
		tm += 0.001
	}
	got := m.Load(tm)
	if math.Abs(got-1000) > 30 {
		t.Errorf("Load after ramp = %v, want ~1000", got)
	}
}

func TestMovingAverageBoundedMemory(t *testing.T) {
	m := NewMovingAverage(0.5)
	// 200 s at 1000 QPS: only ~500 arrivals are ever in-window, so the
	// ring must stay near that high-water mark, not the 200k total.
	for i := 0; i < 200000; i++ {
		m.Observe(float64(i) * 0.001)
	}
	if got := m.Load(200.0); math.Abs(got-1000) > 20 {
		t.Errorf("Load after long run = %v, want ~1000", got)
	}
	if len(m.buf) > 2048 {
		t.Errorf("ring grew to %d entries for a ~500-arrival window", len(m.buf))
	}
}

func TestMovingAverageRingWrap(t *testing.T) {
	m := NewMovingAverage(0.5)
	// Alternate bursts and idle gaps so head repeatedly laps the ring.
	tm := 0.0
	for round := 0; round < 50; round++ {
		for i := 0; i < 37; i++ { // co-prime with the ring sizes
			m.Observe(tm)
			tm += 0.001
		}
		tm += 1.0 // idle past the window: everything evicts
		if got := m.Load(tm); got != 0 {
			t.Fatalf("round %d: load after idle = %v, want 0", round, got)
		}
	}
	// One more burst must be fully counted.
	for i := 0; i < 37; i++ {
		m.Observe(tm)
		tm += 0.001
	}
	if got := m.Load(tm); got != 37/0.5 {
		t.Errorf("load after wrap = %v, want %v", got, 37/0.5)
	}
}

// BenchmarkMovingAverageObserve proves Observe is O(1) amortized with zero
// steady-state allocations: the ring reaches its high-water capacity early
// and is reused forever after.
func BenchmarkMovingAverageObserve(b *testing.B) {
	m := NewMovingAverage(0.5)
	// Pre-warm to steady state at 1000 QPS.
	for i := 0; i < 2048; i++ {
		m.Observe(float64(i) * 0.001)
	}
	b.ReportAllocs()
	b.ResetTimer()
	t := 2.048
	for i := 0; i < b.N; i++ {
		m.Observe(t)
		t += 0.001
	}
}

func TestMovingAverageDefaultWindow(t *testing.T) {
	m := NewMovingAverage(0)
	if m.window != 0.5 {
		t.Errorf("default window = %v, want 0.5 (the paper's 500 ms)", m.window)
	}
}

func TestOracle(t *testing.T) {
	o := Oracle{Trace: trace.Constant(1234, 30)}
	o.Observe(5) // no-op
	if got := o.Load(15); got != 1234 {
		t.Errorf("oracle load = %v, want 1234", got)
	}
	tw := Oracle{Trace: trace.Twitter()}
	if got := tw.Load(0); got != trace.Twitter().QPS[0] {
		t.Errorf("oracle twitter load = %v", got)
	}
}
