package lb

import (
	"testing"

	"ramsis/internal/telemetry"
)

func TestInstrumentedBalancerRecordsPicks(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := Instrumented(NewJoinShortestQueue(), reg)
	if b.Name() != "jsq" {
		t.Errorf("wrapped name = %s", b.Name())
	}
	lens := []int{3, 1, 2}
	for i := 0; i < 10; i++ {
		if w := b.Pick(lens, nil); w != 1 {
			t.Fatalf("pick = %d, want 1", w)
		}
	}
	h := reg.Histogram(telemetry.MetricPickSeconds, "balancer", "jsq")
	if h.Count() != 10 {
		t.Errorf("pick histogram count = %d, want 10", h.Count())
	}
}

func TestInstrumentedNilRegistryPassesThrough(t *testing.T) {
	b := NewRoundRobin()
	if got := Instrumented(b, nil); got != Balancer(b) {
		t.Error("nil registry should return the balancer unwrapped")
	}
}

func TestHealthTrackerTransitionCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := NewHealthTracker([]string{"http://a", "http://b"}, HealthConfig{FailThreshold: 2, Telemetry: reg})
	down := reg.Counter(telemetry.MetricHealthTransitions, "to", "unhealthy")
	up := reg.Counter(telemetry.MetricHealthTransitions, "to", "healthy")

	tr.ReportFailure(0)
	if down.Value() != 0 {
		t.Fatal("below-threshold failure counted as transition")
	}
	tr.ReportFailure(0)
	if down.Value() != 1 {
		t.Fatalf("unhealthy transitions = %v, want 1", down.Value())
	}
	// Further failures while already unhealthy are not transitions.
	tr.ReportFailure(0)
	if down.Value() != 1 {
		t.Fatalf("repeated failure double-counted: %v", down.Value())
	}
	// Successes while healthy are not transitions either.
	tr.ReportSuccess(1)
	if up.Value() != 0 {
		t.Fatalf("healthy worker success counted as transition: %v", up.Value())
	}
	tr.ReportSuccess(0)
	if up.Value() != 1 {
		t.Fatalf("healthy transitions = %v, want 1", up.Value())
	}
}
