package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func mkTrace(id int) QueryTrace {
	return QueryTrace{
		ID: id, Arrival: float64(id), Model: "resnet50", Batch: 2,
		LatencyMS: 12.5, DeadlineMet: true,
		Spans: []Span{{Stage: StageEnqueue, Seconds: 0.001}, {Stage: StageInference, Seconds: 0.010}},
	}
}

func TestTraceBufferWrapsOldestFirst(t *testing.T) {
	b := NewTraceBuffer(3)
	if b.Len() != 0 {
		t.Fatalf("fresh buffer len %d", b.Len())
	}
	for i := 0; i < 5; i++ {
		b.Add(mkTrace(i))
	}
	if b.Len() != 3 {
		t.Fatalf("len %d, want 3", b.Len())
	}
	snap := b.Snapshot()
	for i, want := range []int{2, 3, 4} {
		if snap[i].ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, snap[i].ID, want)
		}
	}
}

func TestTraceBufferHandler(t *testing.T) {
	b := NewTraceBuffer(8)
	b.Add(mkTrace(7))
	rr := httptest.NewRecorder()
	b.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	var got []QueryTrace
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 || len(got[0].Spans) != 2 {
		t.Fatalf("handler returned %+v", got)
	}
}

func TestTraceSpanLookup(t *testing.T) {
	tr := mkTrace(0)
	if d, ok := tr.Span(StageInference); !ok || d != 0.010 {
		t.Errorf("Span(inference) = %v, %v", d, ok)
	}
	if _, ok := tr.Span(StageRespond); ok {
		t.Error("absent stage reported present")
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(mkTrace(i)); err != nil {
			t.Fatal(err)
		}
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var qt QueryTrace
		if err := json.Unmarshal(sc.Bytes(), &qt); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if qt.ID != lines {
			t.Errorf("line %d has ID %d", lines, qt.ID)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("wrote %d lines, want 3", lines)
	}
}

func TestStagesOrder(t *testing.T) {
	want := []string{StageEnqueue, StagePick, StageBatchWait, StageDispatch, StageInference, StageRespond}
	got := Stages()
	if len(got) != len(want) {
		t.Fatalf("Stages() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Stages()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
