// Package dist implements the arrival distributions RAMSIS consumes: the
// probability PF(k, T) of k query arrivals at the central queue during a time
// interval of length T (§3.1.1 of the paper), together with the Erlang/Gamma
// machinery needed for round-robin per-worker arrival processes and seeded
// samplers for workload generation.
//
// All distributions here have independent and stationary increments (they are
// Lévy counting processes), the property §4.4.2 relies on to factor joint
// interval probabilities.
package dist

import (
	"fmt"
	"math"
)

// Arrival is a query arrival distribution: PF(k, T) is the probability that
// exactly k queries arrive at the central queue during any interval of
// length T seconds. Implementations must have independent and stationary
// increments so that non-overlapping intervals factor (§4.4.2).
type Arrival interface {
	// PF returns P[k arrivals during an interval of length t].
	// PF(k, 0) is 1 for k == 0 and 0 otherwise. t < 0 is treated as 0.
	PF(k int, t float64) float64
	// CDF returns P[at most k arrivals during an interval of length t].
	// CDF(-1, t) is 0.
	CDF(k int, t float64) float64
	// Rate returns the mean arrival rate in queries per second.
	Rate() float64
}

// Poisson is a Poisson arrival process with rate λ queries per second —
// the arrival distribution observed for production inference workloads and
// assumed throughout the paper's evaluation.
type Poisson struct {
	Lambda float64
}

// NewPoisson returns a Poisson arrival process with rate lambda (QPS).
// It panics if lambda is not positive and finite.
func NewPoisson(lambda float64) Poisson {
	if !(lambda > 0) || math.IsInf(lambda, 1) {
		panic(fmt.Sprintf("dist: invalid Poisson rate %v", lambda))
	}
	return Poisson{Lambda: lambda}
}

// Rate returns λ.
func (p Poisson) Rate() float64 { return p.Lambda }

// PF returns the Poisson pmf with mean λt, computed in log space for
// numerical stability at large means.
func (p Poisson) PF(k int, t float64) float64 {
	return PoissonPMF(k, p.Lambda*t)
}

// CDF returns the Poisson CDF with mean λt.
func (p Poisson) CDF(k int, t float64) float64 {
	return PoissonCDF(k, p.Lambda*t)
}

// PoissonPMF returns e^{-mu} mu^k / k! for mean mu >= 0.
func PoissonPMF(k int, mu float64) float64 {
	if mu < 0 {
		mu = 0
	}
	if k < 0 {
		return 0
	}
	if mu == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(mu) - mu - lg)
}

// PoissonCDF returns P[X <= k] for X ~ Poisson(mu). k < 0 yields 0.
func PoissonCDF(k int, mu float64) float64 {
	if k < 0 {
		return 0
	}
	if mu <= 0 {
		return 1
	}
	// Regularized upper incomplete gamma: P[X <= k] = Q(k+1, mu).
	return regularizedGammaQ(float64(k)+1, mu)
}

// PoissonTail returns P[X >= k] for X ~ Poisson(mu).
func PoissonTail(k int, mu float64) float64 {
	if k <= 0 {
		return 1
	}
	if mu <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k), mu)
}

// ErlangCDF returns P[S <= t] for S the sum of shape i.i.d. Exp(rate)
// variables. Equivalently the probability that a Poisson(rate·t) count is at
// least shape. ErlangCDF(0, ·, ·) is 1 (an empty sum is zero).
func ErlangCDF(shape int, rate, t float64) float64 {
	if shape <= 0 {
		return 1
	}
	if t <= 0 {
		return 0
	}
	return PoissonTail(shape, rate*t)
}

// ErlangPDF returns the Erlang(shape, rate) density at t.
func ErlangPDF(shape int, rate, t float64) float64 {
	if shape <= 0 || t < 0 {
		return 0
	}
	if t == 0 {
		if shape == 1 {
			return rate
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(shape))
	return math.Exp(float64(shape)*math.Log(rate) + float64(shape-1)*math.Log(t) - rate*t - lg)
}

// Gamma is a renewal arrival process whose inter-arrival times are
// Gamma(Shape, Rate·Shape)-distributed with mean 1/Rate·... — concretely it
// is parameterized so that the mean arrival rate is Rate (QPS) and Shape
// controls burstiness: Shape == 1 is Poisson; Shape > 1 is more regular,
// Shape < 1 burstier. The paper (§3.1.1) notes the Gamma distribution as an
// alternative arrival distribution [28].
//
// PF(k, t) for a Gamma renewal process is not available in closed form in
// general; for integer Shape (an Erlang renewal process) it is, and that is
// what we implement: P[k arrivals in t] = F_k(t) − F_{k+1}(t) with F_k the
// Erlang(k·Shape, Rate·Shape) CDF, under the stationary-start approximation.
type Gamma struct {
	rate  float64 // mean arrivals per second
	shape int     // integer Erlang shape per inter-arrival
}

// NewGamma returns an Erlang-renewal ("Gamma") arrival process with mean
// rate QPS and integer inter-arrival shape (>= 1).
func NewGamma(rate float64, shape int) Gamma {
	if !(rate > 0) {
		panic(fmt.Sprintf("dist: invalid Gamma rate %v", rate))
	}
	if shape < 1 {
		panic(fmt.Sprintf("dist: invalid Gamma shape %d", shape))
	}
	return Gamma{rate: rate, shape: shape}
}

// Rate returns the mean arrival rate.
func (g Gamma) Rate() float64 { return g.rate }

// Shape returns the integer Erlang shape of one inter-arrival time.
func (g Gamma) Shape() int { return g.shape }

// PF returns P[k arrivals in t] for the Erlang renewal process, assuming an
// arrival epoch at the interval start (ordinary renewal process).
func (g Gamma) PF(k int, t float64) float64 {
	if k < 0 {
		return 0
	}
	if t <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	stageRate := g.rate * float64(g.shape)
	// k arrivals iff the underlying Poisson(stageRate·t) stage count is in
	// [k·shape, (k+1)·shape).
	lo := PoissonCDF((k+1)*g.shape-1, stageRate*t)
	hi := PoissonCDF(k*g.shape-1, stageRate*t)
	return lo - hi
}

// CDF returns P[at most k arrivals in t].
func (g Gamma) CDF(k int, t float64) float64 {
	if k < 0 {
		return 0
	}
	if t <= 0 {
		return 1
	}
	stageRate := g.rate * float64(g.shape)
	return PoissonCDF((k+1)*g.shape-1, stageRate*t)
}

// regularizedGammaP computes P(a, x), the regularized lower incomplete gamma
// function, via series (x < a+1) or continued fraction.
func regularizedGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// regularizedGammaQ computes Q(a, x) = 1 − P(a, x).
func regularizedGammaQ(a, x float64) float64 {
	if x <= 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 10000
)

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
