package core

import (
	"math"
	"math/rand"
	"testing"

	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

// TestTransitionsMatchMonteCarlo validates the full-drain transition rows
// end to end against direct simulation of the per-worker arrival process:
// sample the round-robin phase from its interval-A posterior, replay
// Poisson central arrivals through the K-way round robin during the
// service time, and histogram the resulting (n', T_{j'}) states.
func TestTransitionsMatchMonteCarlo(t *testing.T) {
	cfg := Config{
		Models:   profile.ImageSet().Subset("shufflenet_v2_x0_5", "efficientnet_b0"),
		SLO:      0.150,
		Workers:  3,
		Arrival:  dist.NewPoisson(120),
		D:        10,
		MaxQueue: 6,
	}.withDefaults()
	sp, m := buildFor(t, cfg)
	rng := rand.New(rand.NewSource(99))
	lambda := cfg.Arrival.Rate()
	k := cfg.Workers

	const samples = 300000
	for _, cse := range []struct{ n, j int }{{1, 10}, {2, 6}, {4, 3}} {
		s := sp.index(cse.n, cse.j)
		acts := sp.actionsForState(s)
		for ai, a := range acts {
			// Phase posterior as the implementation computes it (validated
			// separately against the paper's denominator ratios).
			pr := phasePosterior(cfg.Arrival, k, cse.n, cfg.SLO-sp.grid[cse.j])
			counts := map[int]int{}
			for it := 0; it < samples; it++ {
				// Sample the phase.
				u := rng.Float64()
				r := 0
				for acc := pr[0]; u > acc && r < k-1; {
					r++
					acc += pr[r]
				}
				// Replay central arrivals during the service time; every
				// K-th (after the phase offset) goes to this worker.
				l := a.Latency
				tNow := 0.0
				central := r
				np := 0
				first := -1.0
				for {
					tNow += rng.ExpFloat64() / lambda
					if tNow > l {
						break
					}
					central++
					if central%k == 0 {
						np++
						if first < 0 {
							first = tNow
						}
						if np > cfg.MaxQueue {
							break
						}
					}
				}
				var next int
				switch {
				case np == 0:
					next = sp.emptyState()
				case np > cfg.MaxQueue:
					next = sp.overflowState()
				default:
					slack := cfg.SLO - (l - first)
					next = sp.index(np, sp.bucketOf(slack))
				}
				counts[next]++
			}
			got := map[int]float64{}
			for _, tr := range m.Actions[s][ai].Transitions {
				got[int(tr.Next)] = tr.P
			}
			for next, c := range counts {
				emp := float64(c) / samples
				// Monte Carlo noise: ~4 sigma of a binomial proportion,
				// floored for rarely-hit states.
				tol := 4*math.Sqrt(emp*(1-emp)/samples) + 3e-3
				if diff := math.Abs(got[next] - emp); diff > tol {
					t.Errorf("state(n=%d,j=%d) action %d -> state %d: P=%.5f, Monte Carlo %.5f (tol %.5f)",
						cse.n, cse.j, ai, next, got[next], emp, tol)
				}
			}
			// And states the chain never reached must carry ~no mass.
			for next, p := range got {
				if counts[next] == 0 && p > 2e-3 {
					t.Errorf("state(n=%d,j=%d) action %d: unreachable state %d has P=%.5f",
						cse.n, cse.j, ai, next, p)
				}
			}
		}
	}
}

// TestVariableBatchingMatchesMonteCarlo does the same for a partial-serve
// action (b < n): the remaining earliest query's slack comes from the
// order statistics of interval-A arrivals.
func TestVariableBatchingMatchesMonteCarlo(t *testing.T) {
	cfg := Config{
		Models:   profile.ImageSet().Subset("shufflenet_v2_x0_5", "efficientnet_b0"),
		SLO:      0.150,
		Workers:  2,
		Arrival:  dist.NewPoisson(100),
		D:        8,
		MaxQueue: 6,
		Batching: VariableBatching,
	}.withDefaults()
	sp, m := buildFor(t, cfg)
	rng := rand.New(rand.NewSource(7))
	lambda := cfg.Arrival.Rate()
	k := cfg.Workers

	const n, j = 3, 8
	s := sp.index(n, j)
	acts := sp.actionsForState(s)
	ta := cfg.SLO - sp.grid[j]
	const samples = 200000
	for ai, a := range acts {
		if a.Batch >= n {
			continue
		}
		pr := phasePosterior(cfg.Arrival, k, n, ta)
		counts := map[int]int{}
		for it := 0; it < samples; it++ {
			u := rng.Float64()
			r := 0
			for acc := pr[0]; u > acc && r < k-1; {
				r++
				acc += pr[r]
			}
			// Interval A: kA = (n-1)K + r central arrivals uniform in
			// (0, ta]; worker arrival #b is central arrival #bK.
			ka := (n-1)*k + r
			xs := make([]float64, ka)
			for i := range xs {
				xs[i] = rng.Float64() * ta
			}
			// Select the bK-th smallest.
			target := a.Batch * k
			x := kthSmallest(xs, target)
			slackNew := x + sp.grid[j] - a.Latency

			// Arrivals during service join behind the remaining queries.
			tNow := 0.0
			central := r
			extra := 0
			for {
				tNow += rng.ExpFloat64() / lambda
				if tNow > a.Latency {
					break
				}
				central++
				if central%k == 0 {
					extra++
				}
			}
			np := n - a.Batch + extra
			var next int
			if np > cfg.MaxQueue {
				next = sp.overflowState()
			} else {
				next = sp.index(np, sp.bucketOf(slackNew))
			}
			counts[next]++
		}
		got := map[int]float64{}
		for _, tr := range m.Actions[s][ai].Transitions {
			got[int(tr.Next)] = tr.P
		}
		for next, c := range counts {
			emp := float64(c) / samples
			// The implementation collapses the phase mixture to its mean
			// for the order-statistic part; allow a slightly wider margin.
			tol := 4*math.Sqrt(emp*(1-emp)/samples) + 8e-3
			if diff := math.Abs(got[next] - emp); diff > tol {
				t.Errorf("variable action %d (b=%d) -> state %d: P=%.5f, Monte Carlo %.5f",
					ai, a.Batch, next, got[next], emp)
			}
		}
	}
}

func kthSmallest(xs []float64, k int) float64 {
	// Small inputs: insertion sort is fine.
	for i := 1; i < len(xs); i++ {
		for q := i; q > 0 && xs[q] < xs[q-1]; q-- {
			xs[q], xs[q-1] = xs[q-1], xs[q]
		}
	}
	return xs[k-1]
}
