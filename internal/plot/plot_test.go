package plot

import (
	"math"
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Label: "RAMSIS", Points: []Point{{400, 0.83}, {1200, 0.77}, {2000, 0.70}}},
		{Label: "JF", Points: []Point{{400, 0.78}, {1200, 0.76}, {2000, 0.69}}},
	}
}

func TestRenderBasics(t *testing.T) {
	var b strings.Builder
	Render(&b, "Fig. 6 (image, 150ms)", 40, 10, twoSeries())
	out := b.String()
	for _, want := range []string{"Fig. 6", "* RAMSIS", "o JF", "400", "2000", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Both markers appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from plot area")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xrange + legend.
	if len(lines) != 1+10+3 {
		t.Errorf("chart has %d lines, want %d:\n%s", len(lines), 14, out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var b strings.Builder
	Render(&b, "empty", 40, 10, nil)
	if !strings.Contains(b.String(), "(no data)") {
		t.Error("empty chart not flagged")
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	var b strings.Builder
	Render(&b, "t", 30, 6, []Series{{Label: "a", Points: []Point{
		{1, 2}, {math.NaN(), 3}, {4, math.Inf(1)}, {5, 6},
	}}})
	if !strings.Contains(b.String(), "*") {
		t.Error("finite points not plotted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	var b strings.Builder
	// Single point: both ranges degenerate; must not panic or divide by 0.
	Render(&b, "point", 25, 6, []Series{{Label: "p", Points: []Point{{1, 1}}}})
	if !strings.Contains(b.String(), "*") {
		t.Error("single point not plotted")
	}
}

func TestRenderMinimumSize(t *testing.T) {
	var b strings.Builder
	Render(&b, "tiny", 1, 1, twoSeries())
	if len(b.String()) == 0 {
		t.Error("no output at clamped size")
	}
}

func TestOverlapMarker(t *testing.T) {
	var b strings.Builder
	Render(&b, "overlap", 20, 5, []Series{
		{Label: "a", Points: []Point{{1, 1}, {2, 2}}},
		{Label: "b", Points: []Point{{1, 1}, {2, 1}}},
	})
	if !strings.Contains(b.String(), "?") {
		t.Error("overlapping points not marked")
	}
}
