package mdp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// solvePrioritized is the test shorthand for the fast-resolve path.
func solvePrioritized(c *Compiled, opts SolveOptions) (Result, error) {
	opts.Method = MethodPrioritized
	return c.Solve(opts)
}

// TestPrioritizedMatchesJacobiFixedPoint pins the fast-resolve contract:
// prioritized Gauss-Seidel sweeps reach the same fixed point as the pinned
// Jacobi kernel within tolerance and extract the same greedy policy, on
// every equivalence fixture including the single-state MDP.
func TestPrioritizedMatchesJacobiFixedPoint(t *testing.T) {
	for name, m := range compiledFixtures() {
		c := Compile(m)
		opts := SolveOptions{Gamma: 0.95, Tol: 1e-10}
		want, err := c.ValueIteration(opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := solvePrioritized(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		for s := range want.Values {
			// Both vectors are within Tol/(1-gamma) of the true fixed
			// point; allow that bound between the two approximations.
			if d := math.Abs(got.Values[s] - want.Values[s]); d > 1e-10/(1-0.95)*2 {
				t.Fatalf("%s: prioritized V(%d) = %v, Jacobi %v (diff %g)", name, s, got.Values[s], want.Values[s], d)
			}
		}
		samePolicy(t, name+" prioritized", got.Policy, want.Policy)
	}
}

// TestPrioritizedSingleState covers the degenerate space: one state, two
// actions, self-loops only — the priority queue's predecessor list is the
// state itself and the solve must still terminate at the right value.
func TestPrioritizedSingleState(t *testing.T) {
	m := &MDP{Actions: [][]Action{{
		{Label: 0, Reward: 1, Transitions: []Transition{{Next: 0, P: 1}}},
		{Label: 1, Reward: 3, Transitions: []Transition{{Next: 0, P: 1}}},
	}}}
	c := Compile(m)
	res, err := solvePrioritized(c, SolveOptions{Gamma: 0.9, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 / (1 - 0.9) // reward 3 forever, discounted
	if math.Abs(res.Values[0]-want) > 1e-6 {
		t.Errorf("V(0) = %v, want %v", res.Values[0], want)
	}
	if res.Policy[0] != 1 {
		t.Errorf("policy picked action %d, want 1", res.Policy[0])
	}
}

// TestPrioritizedZeroResidualEarlyExit pins the warm-start fast path: a
// solve seeded with the exact fixed point finds every residual below Tol on
// the first verification sweep, enqueues nothing, and exits after exactly
// one sweep-equivalent.
func TestPrioritizedZeroResidualEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := Compile(randomMDP(rng, 60, 3, 5))
	opts := SolveOptions{Gamma: 0.95, Tol: 1e-9}
	cold, err := solvePrioritized(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := opts
	warm.InitialValues = cold.Values
	res, err := solvePrioritized(c, warm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("warm re-solve from the fixed point took %d sweep-equivalents, want 1", res.Iterations)
	}
	samePolicy(t, "zero-residual warm start", res.Policy, cold.Policy)
}

// TestPrioritizedWarmBeatsCold asserts the reason the adaptive route uses
// this solver: a warm start from a perturbed fixed point converges in
// strictly fewer sweep-equivalents than the cold solve.
func TestPrioritizedWarmBeatsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := Compile(randomMDP(rng, 120, 4, 6))
	opts := SolveOptions{Gamma: 0.97, Tol: 1e-10}
	cold, err := solvePrioritized(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := make([]float64, len(cold.Values))
	for i, v := range cold.Values {
		perturbed[i] = v * (1 + 0.03*rng.Float64())
	}
	warm := opts
	warm.InitialValues = perturbed
	res, err := solvePrioritized(c, warm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= cold.Iterations {
		t.Errorf("warm prioritized took %d sweep-equivalents, cold took %d — want strictly fewer", res.Iterations, cold.Iterations)
	}
	samePolicy(t, "perturbed warm start", res.Policy, cold.Policy)
}

// TestFloat32PolicyAgreement pins the reduced-precision contract: the
// float32 solve's policy matches the float64 argmax in every state where
// the float64 Q-gap between the best and second-best action exceeds the
// agreement band; states inside the band are genuine near-ties where either
// action is within tolerance of optimal.
func TestFloat32PolicyAgreement(t *testing.T) {
	const band = 1e-3
	for name, m := range compiledFixtures() {
		c := Compile(m)
		opts := SolveOptions{Gamma: 0.95, Tol: 1e-10}
		f64, err := c.ValueIteration(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, method := range []Method{MethodJacobi, MethodPrioritized} {
			o := opts
			o.Method = method
			o.Float32 = true
			f32, err := c.Solve(o)
			if err != nil {
				t.Fatal(err)
			}
			for s := range f64.Policy {
				if f32.Policy[s] == f64.Policy[s] {
					continue
				}
				if gap := qGap(c, s, f64.Values, opts.Gamma); gap > band {
					t.Errorf("%s/%s: state %d float32 picked %d, float64 %d, but Q-gap %g exceeds the %g band",
						name, method, s, f32.Policy[s], f64.Policy[s], gap, band)
				}
			}
			// Values agree to float32 precision at the value scale.
			for s := range f64.Values {
				scale := math.Abs(f64.Values[s]) + 1
				if d := math.Abs(f32.Values[s] - f64.Values[s]); d > 1e-4*scale {
					t.Errorf("%s/%s: V(%d) float32 %v vs float64 %v", name, method, s, f32.Values[s], f64.Values[s])
				}
			}
		}
	}
}

// qGap returns the float64 Q-value gap between the best and second-best
// action of state s under values v — the margin by which the argmax is
// separated.
func qGap(c *Compiled, s int, v []float64, gamma float64) float64 {
	gp := c.scaledProbs(gamma)
	best, second := math.Inf(-1), math.Inf(-1)
	for a := c.actOff[s]; a < c.actOff[s+1]; a++ {
		q := backup(c.reward[a], gp[c.trOff[a]:c.trOff[a+1]], c.next[c.trOff[a]:c.trOff[a+1]], v)
		if q > best {
			second = best
			best = q
		} else if q > second {
			second = q
		}
	}
	if math.IsInf(second, -1) {
		return math.Inf(1) // single action: no disagreement possible
	}
	return best - second
}

// TestFloat32ToleranceFloor: a float32 solve with the float64 default Tol
// (1e-9, below float32 resolution at the value scale) must still terminate
// rather than chase rounding noise forever.
func TestFloat32ToleranceFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := Compile(randomMDP(rng, 40, 3, 5))
	res, err := c.Solve(SolveOptions{Gamma: 0.99, Tol: 1e-12, Float32: true, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 5000 {
		t.Errorf("float32 solve burned the full MaxIter budget (%d): tolerance floor not applied", res.Iterations)
	}
}

func TestPrioritizedDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Compile(randomMDP(rng, 200, 4, 8))
	_, err := solvePrioritized(c, SolveOptions{
		Gamma:    0.999999,
		Tol:      1e-300, // unreachable: force the deadline path
		Deadline: time.Now().Add(5 * time.Millisecond),
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestPredecessorsCSR verifies the reverse adjacency on a hand-built chain:
// dedup across actions and transitions, and correct offsets.
func TestPredecessorsCSR(t *testing.T) {
	c := Compile(twoStateChain())
	p := c.predecessors()
	// State 0: reached only by state 0's action 0 self-loop.
	if got := p.at(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("preds(0) = %v, want [0]", got)
	}
	// State 1: reached by state 0 (action 1) and state 1 (self-loop),
	// each once despite state 1's action also looping.
	if got := p.at(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("preds(1) = %v, want [0 1]", got)
	}
}

// TestBucketQueue exercises the priority-bucket invariants: upgrades
// supersede stale entries, downgrades are no-ops, and pops come out in
// bucket order.
func TestBucketQueue(t *testing.T) {
	q := newBucketQueue(4, 1e-9)
	q.push(0, 1e-6)
	q.push(1, 1e-3)
	q.push(0, 1e-8) // downgrade: ignored, state 0 stays at 1e-6
	q.push(2, 1e-6)
	q.push(2, 1.0) // upgrade: the 1e-6 entry goes stale
	if s, ok := q.pop(); !ok || s != 2 {
		t.Fatalf("pop = %d, want 2 (highest bucket)", s)
	}
	if s, ok := q.pop(); !ok || s != 1 {
		t.Fatalf("pop = %d, want 1", s)
	}
	if s, ok := q.pop(); !ok || s != 0 {
		t.Fatalf("pop = %d, want 0", s)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("queue should be empty (stale entry must not re-pop)")
	}
	// Residuals at or below tol never queue.
	q.push(3, 1e-9)
	if _, ok := q.pop(); ok {
		t.Fatal("sub-tolerance push queued a state")
	}
}
