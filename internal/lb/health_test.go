package lb

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond up to a bound; probe loops run on wall-clock tickers
// so tests poll rather than sleep a fixed worst case.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHealthTrackerMarksAndReadmits(t *testing.T) {
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		if down.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rw.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewHealthTracker([]string{srv.URL}, HealthConfig{Interval: 10 * time.Millisecond, FailThreshold: 2})
	tr.Start()
	defer tr.Stop()

	if !tr.IsHealthy(0) {
		t.Fatal("worker should start healthy")
	}
	down.Store(true)
	waitFor(t, "unhealthy mark", func() bool { return !tr.IsHealthy(0) })
	down.Store(false)
	waitFor(t, "re-admission", func() bool { return tr.IsHealthy(0) })
}

func TestHealthTrackerNeedsConsecutiveFailures(t *testing.T) {
	tr := NewHealthTracker([]string{"http://unused"}, HealthConfig{FailThreshold: 3})
	tr.ReportFailure(0)
	tr.ReportFailure(0)
	if !tr.IsHealthy(0) {
		t.Fatal("marked unhealthy below threshold")
	}
	// A success in between resets the consecutive count.
	tr.ReportSuccess(0)
	tr.ReportFailure(0)
	tr.ReportFailure(0)
	if !tr.IsHealthy(0) {
		t.Fatal("non-consecutive failures should not mark unhealthy")
	}
	tr.ReportFailure(0)
	if tr.IsHealthy(0) {
		t.Fatal("threshold consecutive failures should mark unhealthy")
	}
}

func TestHealthTrackerDetectsDeadServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	}))
	url := srv.URL
	tr := NewHealthTracker([]string{url}, HealthConfig{
		Interval: 10 * time.Millisecond, Timeout: 50 * time.Millisecond, FailThreshold: 2,
	})
	tr.Start()
	defer tr.Stop()
	waitFor(t, "initial healthy probe", func() bool { return tr.IsHealthy(0) })
	srv.Close() // connection refused from here on
	waitFor(t, "dead-server detection", func() bool { return !tr.IsHealthy(0) })
	if h := tr.Healthy(); len(h) != 1 || h[0] {
		t.Errorf("Healthy() = %v", h)
	}
}
