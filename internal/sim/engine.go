// Package sim is the discrete-event inference-serving simulator (§6
// "Simulation Framework"): given a trace of arrival times it records MS&S
// decisions and tracks the central queue, per-worker queues, and worker
// busy/available status, using profiled model latencies to determine how
// long a worker stays busy. The same scheduling code drives the HTTP
// prototype in internal/serve, mirroring the paper's shared implementation.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"ramsis/internal/admit"
	"ramsis/internal/profile"
	"ramsis/internal/stats"
	"ramsis/internal/telemetry"
)

// Query is one inference request.
type Query struct {
	ID      int
	Arrival float64 // seconds from trace start
	// Tenant labels the query's owner in multi-tenant runs; empty in
	// single-tenant workloads (the N=1 special case).
	Tenant string
}

// Deadline returns the query's latency deadline given the SLO.
func (q Query) Deadline(slo float64) float64 { return q.Arrival + slo }

// TenantAdmitter screens arrivals per tenant — the weighted-fair layer in
// internal/tenant implements it. Defined here (not imported) so the
// simulator stays independent of the tenant control plane.
type TenantAdmitter interface {
	AdmitTenant(tenant string, r admit.Request) admit.Verdict
}

// Decision is one MS&S decision: run the batch on the model (an index into
// the engine's profile set).
type Decision struct {
	Model   int
	Queries []Query
}

// Scheduler implements an MS&S scheme. Route must enqueue the query (to a
// worker queue or the central queue); Pick is called whenever worker w is
// idle and may pop queries to serve. Returning ok == false leaves the worker
// idle until the next event.
type Scheduler interface {
	Route(e *Engine, now float64, q Query)
	Pick(e *Engine, now float64, w int) (Decision, bool)
}

// LatencyModel yields the realized inference latency for a decision.
// Deterministic models return the p95 profile (the paper's simulator);
// stochastic models add the latency variance the prototype observes.
type LatencyModel interface {
	Latency(p profile.Profile, batch int, rng *rand.Rand) float64
}

// Deterministic replays the profiled p95 latency exactly.
type Deterministic struct{}

// Latency returns the profiled batch latency.
func (Deterministic) Latency(p profile.Profile, batch int, _ *rand.Rand) float64 {
	return p.BatchLatency(batch)
}

// Stochastic samples latency as Normal(p95 − 1.645σ, σ) truncated below,
// modeling the ~10 ms standard deviation the paper measures during
// profiling (§7.3.1): the tabulated profile is the 95th percentile, so the
// sampled mean sits 1.645σ below it. For very fast operations the effective
// σ is capped at 15% of the profile so the mean stays physical.
type Stochastic struct {
	StdDev float64 // seconds; the paper observes ~0.010
}

// EffectiveStdDev returns the σ actually applied for a given p95 latency.
func (s Stochastic) EffectiveStdDev(p95 float64) float64 {
	if cap := 0.15 * p95; s.StdDev > cap {
		return cap
	}
	return s.StdDev
}

// Latency samples a realized latency.
func (s Stochastic) Latency(p profile.Profile, batch int, rng *rand.Rand) float64 {
	p95 := p.BatchLatency(batch)
	sd := s.EffectiveStdDev(p95)
	mean := p95 - 1.645*sd
	floor := p95 * 0.25
	v := mean + sd*rng.NormFloat64()
	if v < floor {
		v = floor
	}
	return v
}

// Metrics aggregates a run per the paper's performance metrics (§7):
// latency SLO violation rate over all serviced queries and accuracy per
// satisfied query.
type Metrics struct {
	Served     int
	Violations int
	SatAccSum  float64
	Decisions  int
	Unserved   int
	Dropped    int
	// Shed counts queries the admission controller rejected at arrival;
	// they were never enqueued and the client was told to back off. Shed
	// queries count against GoodputRate (they are offered work the system
	// declined) but not ViolationRate (no latency promise was made).
	Shed int
	// DegradedDecisions counts dispatch decisions whose model choice was
	// clamped to a faster model by degraded-mode serving.
	DegradedDecisions int
	// FailedDispatches counts queries whose batch could not be delivered
	// to any worker (serve layer only: connection error or non-2xx on the
	// picked worker and on the one-shot failover target). They are also
	// counted in Served and Violations, so ViolationRate reflects them.
	FailedDispatches int
	// LatencyP50/P95/P99 are response-latency percentiles in seconds,
	// always populated by Engine.Run: exact (stats.Percentile) when
	// CollectLatencies is on, otherwise from the engine's log-bucketed
	// histogram.
	LatencyP50  float64
	LatencyP95  float64
	LatencyP99  float64
	Latencies   []float64 // response latencies, if collection was enabled
	ModelCounts map[string]int
	DecisionLog []DecisionRecord
	// Tenants breaks the run down per tenant. Populated only when the
	// engine tracks tenants (TenantSLOs or FairAdmit set); nil otherwise.
	Tenants map[string]*TenantMetrics
}

// TenantMetrics is one tenant's slice of a multi-tenant run. Violations
// are judged against the tenant's own SLO, not the engine-wide one.
type TenantMetrics struct {
	Served     int
	Violations int
	Shed       int
	Dropped    int
	Unserved   int
	SatAccSum  float64
}

// Offered counts every query the tenant presented.
func (t *TenantMetrics) Offered() int {
	return t.Served + t.Shed + t.Dropped + t.Unserved
}

// GoodputRate is the fraction of the tenant's offered queries answered
// within its SLO.
func (t *TenantMetrics) GoodputRate() float64 {
	off := t.Offered()
	if off == 0 {
		return 0
	}
	return float64(t.Served-t.Violations) / float64(off)
}

// DecisionRecord is one logged MS&S decision.
type DecisionRecord struct {
	Time   float64
	Worker int
	Model  string
	Batch  int
	// QueueLen is the number of queries visible to the scheduler when the
	// decision was made (Batch == QueueLen marks a maximal-batch decision).
	QueueLen int
	// Slack is the earliest served query's remaining deadline headroom at
	// decision time.
	Slack float64
}

// ViolationRate is the fraction of serviced queries that missed their
// deadline; dropped queries and unserved leftovers count as violations.
func (m Metrics) ViolationRate() float64 {
	total := m.Served + m.Unserved + m.Dropped
	if total == 0 {
		return 0
	}
	return float64(m.Violations+m.Unserved+m.Dropped) / float64(total)
}

// Offered counts every query the workload presented, whether served,
// shed, dropped, or left unserved.
func (m Metrics) Offered() int {
	return m.Served + m.Unserved + m.Dropped + m.Shed
}

// GoodputRate is the fraction of all offered queries answered within the
// SLO — the metric overload protection optimizes. Without admission
// control every query is "served" eventually, so an overloaded run can
// report 100% service while approaching 0% goodput; shedding the
// unmeetable excess keeps the admitted queries inside their deadlines and
// raises this number even though fewer queries are answered.
func (m Metrics) GoodputRate() float64 {
	off := m.Offered()
	if off == 0 {
		return 0
	}
	return float64(m.Served-m.Violations) / float64(off)
}

// ShedRate is the fraction of offered queries rejected at admission.
func (m Metrics) ShedRate() float64 {
	off := m.Offered()
	if off == 0 {
		return 0
	}
	return float64(m.Shed) / float64(off)
}

// AccuracyPerSatisfiedQuery is the mean profiled accuracy over queries that
// met their deadline.
func (m Metrics) AccuracyPerSatisfiedQuery() float64 {
	sat := m.Served - m.Violations
	if sat <= 0 {
		return 0
	}
	return m.SatAccSum / float64(sat)
}

// Engine is the discrete-event simulator core.
type Engine struct {
	Profiles profile.Set
	SLO      float64
	Workers  int
	Latency  LatencyModel
	Sched    Scheduler
	// CollectLatencies records every response latency (needed by the
	// ModelSwitching offline profiler).
	CollectLatencies bool
	// DropExpired discards queries whose deadline has already passed
	// instead of serving them late — the Clockwork/Nexus behaviour §4.3.1
	// notes RAMSIS composes with. The paper's evaluation keeps it off
	// ("better served late than never"); dropped queries count as
	// violations in the metrics.
	DropExpired bool
	// RecordDecisions appends every MS&S decision to Metrics.DecisionLog
	// (used by the Fig. 2 timeline reproduction).
	RecordDecisions bool
	// WorkerProfiles optionally overrides Profiles per worker for
	// heterogeneous deployments (§7: worker homogeneity is not fundamental
	// — RAMSIS derives policies per worker). When set it must have one
	// entry per worker, each with the same model names as Profiles.
	WorkerProfiles []profile.Set
	// Telemetry optionally records the same counters and stage histograms
	// the serve layer exposes (ramsis_queries_total, ramsis_stage_seconds,
	// ...), so a simulated run and a live run are directly comparable on
	// identical metric names — the §7.3.1 fidelity claim as dashboards see
	// it. The sim has no HTTP hops, so only the batch_wait and inference
	// stages carry non-trivial mass.
	Telemetry *telemetry.Registry
	// Admit, when set, screens every arrival before it is routed: shed
	// queries never enqueue and count in Metrics.Shed. The serve frontend
	// runs the same admitters, answering 429 instead.
	Admit admit.Admitter
	// Degrade, when set, closes the degraded-mode loop: admission
	// outcomes feed its pressure windows, and its level clamps every
	// decision's model to progressively faster ones while overload is
	// confirmed (admit.ClampModel over Profiles.SpeedOrder()).
	Degrade *admit.Degrader
	// TenantSLOs, when set, judges each query's SLO violation (and
	// DropExpired purging) against its tenant's own SLO instead of the
	// engine-wide one, and enables per-tenant metrics. Queries whose
	// tenant is absent fall back to the engine SLO. Scheduling (slack,
	// policy) stays engine-wide: per-tenant policy selection is the serve
	// plane's job (and internal/multislo's, per class).
	TenantSLOs map[string]float64
	// FairAdmit, when set, replaces Admit with per-tenant weighted-fair
	// admission (internal/tenant's FairAdmitter) and enables per-tenant
	// metrics.
	FairAdmit TenantAdmitter
	// Traces, when set, rings one trace fragment per completed (or shed)
	// query, process "sim", with the same span stages the serve plane
	// records. Trace IDs are derived from query IDs ("sim-<id>"), never from
	// the engine rng, so tracing cannot perturb the latency noise stream.
	Traces *telemetry.TraceBuffer
	// TraceWriter, when set, additionally streams the fragments as JSONL —
	// the same format `ramsis-trace -stitch` merges.
	TraceWriter *telemetry.TraceWriter
	// Decisions, when set, records every policy decision — admit/shed,
	// degrade clamp, model select — with the inputs it saw and the realized
	// latency, mirroring the serve plane's /debug/decisions ring.
	Decisions *telemetry.DecisionBuffer
	// SLOCfg configures the per-tenant attainment and burn-rate windows
	// (zero values take the telemetry defaults). Trackers activate when
	// Telemetry is set and register ramsis_slo_* gauges on it, computed by
	// the same code the serve plane scrapes.
	SLOCfg telemetry.SLOConfig

	rng          *rand.Rand
	central      []Query
	wq           [][]Query
	busy         []bool
	inflight     []int // queries in the batch worker w is currently serving
	events       eventQueue
	metrics      Metrics
	speedOrder   []int                // model indices fastest-first, for the degrade clamp
	latHist      *telemetry.Histogram // always on; backs the Metrics percentiles
	tel          *engineSeries        // cached registry series; nil without Telemetry
	trackTenants bool                 // per-tenant accounting enabled for this run
	sloTracks    map[string]*telemetry.SLOTracker
}

// simTraceID derives the deterministic trace ID for a simulated query.
func simTraceID(id int) string { return fmt.Sprintf("sim-%d", id) }

// tracing reports whether trace fragments should be recorded this run.
func (e *Engine) tracing() bool { return e.Traces != nil || e.TraceWriter != nil }

// recordTrace lands one fragment in the ring and/or the JSONL stream.
func (e *Engine) recordTrace(qt telemetry.QueryTrace) {
	if e.Traces != nil {
		e.Traces.Add(qt)
	}
	if e.TraceWriter != nil {
		_ = e.TraceWriter.Write(qt)
	}
}

// SLOTracker returns the tenant's attainment tracker ("" maps to
// "default"), or nil when Telemetry is unset or the tenant never completed
// a query. Tests cross-check the exposed burn rates against it.
func (e *Engine) SLOTracker(tenant string) *telemetry.SLOTracker {
	if tenant == "" {
		tenant = "default"
	}
	return e.sloTracks[tenant]
}

// sloTrack lazily builds and registers the tenant's tracker; only called
// when Telemetry is set.
func (e *Engine) sloTrack(tenant string) *telemetry.SLOTracker {
	if tenant == "" {
		tenant = "default"
	}
	t := e.sloTracks[tenant]
	if t == nil {
		t = telemetry.NewSLOTracker(e.SLOCfg)
		e.sloTracks[tenant] = t
		// nil now: gauges read each tracker's last observed modeled time,
		// the sim's only clock.
		telemetry.RegisterSLOGauges(e.Telemetry, t, tenant, nil)
	}
	return t
}

// sloFor returns the SLO the query is judged against: its tenant's, when
// registered, else the engine-wide one.
func (e *Engine) sloFor(q Query) float64 {
	if e.TenantSLOs != nil {
		if s, ok := e.TenantSLOs[q.Tenant]; ok {
			return s
		}
	}
	return e.SLO
}

// tm returns the query's tenant metrics bucket, creating it on first use.
// Only called when trackTenants is set.
func (e *Engine) tm(tenant string) *TenantMetrics {
	t := e.metrics.Tenants[tenant]
	if t == nil {
		t = &TenantMetrics{}
		e.metrics.Tenants[tenant] = t
	}
	return t
}

// engineSeries caches the registry series the engine updates per query, so
// the hot loop skips the registry's name lookup.
type engineSeries struct {
	queries, violations, decisions, satAcc *telemetry.Counter
	latency, batchWait, inference          *telemetry.Histogram
	batchSize                              *telemetry.Histogram
	admitted, degraded                     *telemetry.Counter
	estWait                                *telemetry.Histogram
	decisionErr                            *telemetry.Histogram
	tenantQueries, tenantViolations        *telemetry.CounterVec
	tenantAdmitted, tenantShed             *telemetry.CounterVec
	reg                                    *telemetry.Registry
}

func newEngineSeries(reg *telemetry.Registry) *engineSeries {
	return &engineSeries{
		queries:          reg.Counter(telemetry.MetricQueries),
		violations:       reg.Counter(telemetry.MetricViolations),
		decisions:        reg.Counter(telemetry.MetricDecisions),
		satAcc:           reg.Counter(telemetry.MetricSatAccuracySum),
		latency:          reg.Histogram(telemetry.MetricLatencySeconds),
		batchWait:        reg.Histogram(telemetry.MetricStageSeconds, "stage", telemetry.StageBatchWait),
		inference:        reg.Histogram(telemetry.MetricStageSeconds, "stage", telemetry.StageInference),
		batchSize:        reg.HistogramBuckets(telemetry.MetricBatchSize, telemetry.LinearBuckets(1, 1, 32)),
		admitted:         reg.Counter(telemetry.MetricAdmitAdmitted),
		degraded:         reg.Counter(telemetry.MetricAdmitDegradedDecisions),
		estWait:          reg.Histogram(telemetry.MetricAdmitWaitSeconds),
		decisionErr:      reg.Histogram(telemetry.MetricDecisionError),
		tenantQueries:    reg.CounterVec(telemetry.MetricTenantQueries, "tenant"),
		tenantViolations: reg.CounterVec(telemetry.MetricTenantViolations, "tenant"),
		tenantAdmitted:   reg.CounterVec(telemetry.MetricTenantAdmitted, "tenant"),
		tenantShed:       reg.CounterVec(telemetry.MetricTenantShed, "tenant"),
		reg:              reg,
	}
}

// NewEngine builds a simulator. Seed fixes the latency-noise stream.
func NewEngine(profiles profile.Set, slo float64, workers int, lat LatencyModel, sched Scheduler, seed int64) *Engine {
	if workers < 1 {
		panic(fmt.Sprintf("sim: invalid worker count %d", workers))
	}
	return &Engine{
		Profiles: profiles,
		SLO:      slo,
		Workers:  workers,
		Latency:  lat,
		Sched:    sched,
		rng:      rand.New(rand.NewSource(seed)),
		wq:       make([][]Query, workers),
		busy:     make([]bool, workers),
		inflight: make([]int, workers),
	}
}

// ProfilesFor returns the model set loaded on worker w.
func (e *Engine) ProfilesFor(w int) profile.Set {
	if e.WorkerProfiles != nil {
		return e.WorkerProfiles[w]
	}
	return e.Profiles
}

// CentralLen returns the central queue length.
func (e *Engine) CentralLen() int { return len(e.central) }

// WorkerLen returns worker w's queue length.
func (e *Engine) WorkerLen(w int) int { return len(e.wq[w]) }

// QueueLens fills buf (grown as needed) with every worker's outstanding
// work — queued plus in-service queries — which is the lb.Balancer input.
// In-service queries must count: under maximal batching a busy worker's
// queue reads empty the moment it pops, and a balancer looking at queued
// work alone would keep stacking arrivals on it while idle workers starve.
// The caller reuses the returned slice to keep the per-arrival routing
// path allocation-free.
func (e *Engine) QueueLens(buf []int) []int {
	if cap(buf) < e.Workers {
		buf = make([]int, e.Workers)
	}
	buf = buf[:e.Workers]
	for w := range e.wq {
		buf[w] = len(e.wq[w]) + e.inflight[w]
	}
	return buf
}

// EnqueueCentral appends to the central queue.
func (e *Engine) EnqueueCentral(q Query) { e.central = append(e.central, q) }

// EnqueueWorker appends to worker w's queue.
func (e *Engine) EnqueueWorker(w int, q Query) { e.wq[w] = append(e.wq[w], q) }

// EarliestCentral returns the head-of-line query without popping.
func (e *Engine) EarliestCentral() (Query, bool) {
	if len(e.central) == 0 {
		return Query{}, false
	}
	return e.central[0], true
}

// EarliestWorker returns worker w's head-of-line query without popping.
func (e *Engine) EarliestWorker(w int) (Query, bool) {
	if len(e.wq[w]) == 0 {
		return Query{}, false
	}
	return e.wq[w][0], true
}

// PopCentral removes and returns up to k queries from the central queue in
// deadline (FIFO) order.
func (e *Engine) PopCentral(k int) []Query {
	if k > len(e.central) {
		k = len(e.central)
	}
	out := append([]Query(nil), e.central[:k]...)
	e.central = e.central[k:]
	return out
}

// PopWorker removes and returns up to k queries from worker w's queue.
func (e *Engine) PopWorker(w, k int) []Query {
	if k > len(e.wq[w]) {
		k = len(e.wq[w])
	}
	out := append([]Query(nil), e.wq[w][:k]...)
	e.wq[w] = e.wq[w][k:]
	return out
}

// event is a batch completion.
type event struct {
	time    float64
	start   float64 // dispatch time, for the batch_wait/inference split
	worker  int
	queries []Query
	model   int
	// dec is the select decision that produced this batch, attached to each
	// query's trace fragment on completion; nil when attribution is off.
	dec *telemetry.Decision
}

// eventQueue is a typed binary min-heap of batch completions ordered by
// time. It replaces container/heap's interface{}-boxed API in the
// simulator's hottest loop: push and pop sift directly on a concrete slice
// preallocated to the worker count (each worker has at most one batch in
// flight), so steady-state event traffic allocates nothing.
type eventQueue struct {
	ev []event
}

// reset empties the queue, preallocating room for capacity events.
func (q *eventQueue) reset(capacity int) {
	if cap(q.ev) < capacity {
		q.ev = make([]event, 0, capacity)
		return
	}
	q.ev = q.ev[:0]
}

func (q *eventQueue) len() int { return len(q.ev) }

// nextTime returns the earliest event time; the queue must be non-empty.
func (q *eventQueue) nextTime() float64 { return q.ev[0].time }

// push inserts an event (sift-up).
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.ev[parent].time <= q.ev[i].time {
			break
		}
		q.ev[parent], q.ev[i] = q.ev[i], q.ev[parent]
		i = parent
	}
}

// pop removes and returns the earliest event (sift-down).
func (q *eventQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev[last] = event{} // drop the queries slice reference
	q.ev = q.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.ev) && q.ev[l].time < q.ev[min].time {
			min = l
		}
		if r < len(q.ev) && q.ev[r].time < q.ev[min].time {
			min = r
		}
		if min == i {
			break
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
	return top
}

// Run simulates the given arrival times (seconds, ascending) and returns the
// aggregated metrics. The trace is drained fully: after the last arrival the
// engine keeps dispatching until every queue is empty.
func (e *Engine) Run(arrivals []float64) Metrics {
	qs := make([]Query, len(arrivals))
	for i, t := range arrivals {
		qs[i] = Query{ID: i, Arrival: t}
	}
	return e.RunQueries(qs)
}

// RunQueries simulates a prepared query stream (ascending arrival times,
// optionally tenant-labeled — tenant.Arrivals produces one) and returns
// the aggregated metrics. Run is the unlabeled convenience wrapper.
func (e *Engine) RunQueries(queries []Query) Metrics {
	e.trackTenants = e.TenantSLOs != nil || e.FairAdmit != nil
	e.metrics = Metrics{ModelCounts: map[string]int{}}
	if e.trackTenants {
		e.metrics.Tenants = map[string]*TenantMetrics{}
	}
	e.latHist = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())
	if e.Telemetry != nil {
		e.tel = newEngineSeries(e.Telemetry)
		if e.sloTracks == nil {
			e.sloTracks = map[string]*telemetry.SLOTracker{}
		}
	}
	if e.Degrade != nil {
		e.speedOrder = e.Profiles.SpeedOrder()
		if e.tel != nil {
			reg := e.tel.reg
			e.Degrade.OnChange = func(level int, up bool) {
				reg.Gauge(telemetry.MetricAdmitDegradeLevel).Set(float64(level))
				dir := "down"
				if up {
					dir = "up"
				}
				reg.Counter(telemetry.MetricAdmitDegradeTransitions, "dir", dir).Inc()
			}
		}
	}
	e.events.reset(e.Workers)
	ai := 0
	for {
		var nextArrival float64
		haveArrival := ai < len(queries)
		if haveArrival {
			nextArrival = queries[ai].Arrival
		}
		haveEvent := e.events.len() > 0
		switch {
		case haveArrival && (!haveEvent || nextArrival <= e.events.nextTime()):
			q := queries[ai]
			ai++
			if e.admitQuery(q) {
				e.Sched.Route(e, nextArrival, q)
			}
			e.dispatchIdle(nextArrival)
		case haveEvent:
			ev := e.events.pop()
			e.complete(ev)
			e.busy[ev.worker] = false
			e.inflight[ev.worker] = 0
			e.dispatchIdle(ev.time)
		default:
			// No arrivals or events left; any queued queries are unserved
			// (schedulers normally never leave work behind).
			markUnserved := func(qs []Query) {
				e.metrics.Unserved += len(qs)
				if e.trackTenants {
					for _, q := range qs {
						e.tm(q.Tenant).Unserved++
					}
				}
			}
			for _, wq := range e.wq {
				markUnserved(wq)
			}
			markUnserved(e.central)
			e.finishMetrics()
			return e.metrics
		}
	}
}

// totalOutstanding counts every query admitted but not yet completed:
// central queue, worker queues, and in-flight batches. This is the backlog
// the admitter's wait estimate drains.
func (e *Engine) totalOutstanding() int {
	n := len(e.central)
	for w := range e.wq {
		n += len(e.wq[w]) + e.inflight[w]
	}
	return n
}

// admitQuery screens one arrival through the admission controller —
// FairAdmit (per-tenant weighted fair) when configured, else the
// single-tenant Admit. It returns true when the query may be routed. With
// neither configured every arrival is admitted and nothing is recorded.
func (e *Engine) admitQuery(q Query) bool {
	if e.FairAdmit == nil && e.Admit == nil {
		return true
	}
	now := q.Arrival
	req := admit.Request{Now: now, Outstanding: e.totalOutstanding()}
	var v admit.Verdict
	var policy string
	if e.FairAdmit != nil {
		v = e.FairAdmit.AdmitTenant(q.Tenant, req)
		policy = "fair"
	} else {
		v = e.Admit.Admit(req)
		policy = e.Admit.Name()
	}
	if e.Degrade != nil {
		e.Degrade.Observe(now, !v.Admit, v.EstWait)
	}
	if e.tel != nil {
		e.tel.estWait.Observe(v.EstWait)
		if v.Admit {
			e.tel.admitted.Inc()
		} else {
			e.tel.reg.Counter(telemetry.MetricAdmitShed, "policy", policy).Inc()
		}
		if e.trackTenants {
			if v.Admit {
				e.tel.tenantAdmitted.With(q.Tenant).Inc()
			} else {
				e.tel.tenantShed.With(q.Tenant).Inc()
			}
		}
	}
	if e.Decisions != nil {
		kind, outcome := telemetry.DecisionAdmit, "admitted"
		if !v.Admit {
			kind, outcome = telemetry.DecisionShed, "shed"
		}
		level := 0
		if e.Degrade != nil {
			level = e.Degrade.Level()
		}
		e.Decisions.Add(telemetry.Decision{
			Kind: kind, Time: now, TraceID: simTraceID(q.ID),
			Tenant: q.Tenant, Worker: -1,
			QueueLen: req.Outstanding, DegradeLevel: level,
			PredictedSec: v.EstWait, Outcome: outcome,
		})
	}
	if !v.Admit {
		e.metrics.Shed++
		if e.trackTenants {
			e.tm(q.Tenant).Shed++
		}
		if e.tracing() {
			e.recordTrace(telemetry.QueryTrace{
				ID: q.ID, Arrival: q.Arrival, Worker: -1,
				Error:   "shed",
				TraceID: simTraceID(q.ID), Process: "sim",
				Tenant: q.Tenant,
				Spans:  []telemetry.Span{{Stage: telemetry.StageShed}},
			})
		}
	}
	return v.Admit
}

// purgeExpired drops already-late queries from every queue head (FIFO
// order puts the oldest deadlines in front; with per-tenant SLOs the heads
// are checked against their own deadlines).
func (e *Engine) purgeExpired(now float64) {
	drop := func(q []Query) []Query {
		for len(q) > 0 && q[0].Deadline(e.sloFor(q[0])) < now {
			if e.trackTenants {
				e.tm(q[0].Tenant).Dropped++
			}
			q = q[1:]
			e.metrics.Dropped++
		}
		return q
	}
	e.central = drop(e.central)
	for w := range e.wq {
		e.wq[w] = drop(e.wq[w])
	}
}

// dispatchIdle offers work to every idle worker until none accepts.
func (e *Engine) dispatchIdle(now float64) {
	if e.DropExpired {
		e.purgeExpired(now)
	}
	progress := true
	for progress {
		progress = false
		for w := 0; w < e.Workers; w++ {
			if e.busy[w] {
				continue
			}
			queueBefore := e.WorkerLen(w) + e.CentralLen()
			d, ok := e.Sched.Pick(e, now, w)
			if !ok || len(d.Queries) == 0 {
				continue
			}
			if e.Degrade != nil {
				if lvl := e.Degrade.Level(); lvl > 0 {
					m := admit.ClampModel(e.speedOrder, lvl, d.Model)
					// The batch was sized for the policy's choice; only
					// substitute when the faster model can still run it.
					if m != d.Model && e.ProfilesFor(w).Profiles[m].MaxBatch() >= len(d.Queries) {
						if e.Decisions != nil {
							prev := e.ProfilesFor(w).Profiles[d.Model]
							e.Decisions.Add(telemetry.Decision{
								Kind: telemetry.DecisionDegrade, Time: now,
								TraceID: simTraceID(d.Queries[0].ID),
								Tenant:  d.Queries[0].Tenant, Worker: w,
								QueueLen: queueBefore, DegradeLevel: lvl,
								Model: e.ProfilesFor(w).Profiles[m].Name, Batch: len(d.Queries),
								Outcome: "clamped from " + prev.Name,
							})
						}
						d.Model = m
						e.metrics.DegradedDecisions++
						if e.tel != nil {
							e.tel.degraded.Inc()
						}
					}
				}
			}
			p := e.ProfilesFor(w).Profiles[d.Model]
			lat := e.Latency.Latency(p, len(d.Queries), e.rng)
			e.busy[w] = true
			e.inflight[w] = len(d.Queries)
			var dec *telemetry.Decision
			if e.Decisions != nil || e.tracing() {
				level := 0
				if e.Degrade != nil {
					level = e.Degrade.Level()
				}
				q0 := d.Queries[0]
				dec = &telemetry.Decision{
					Kind: telemetry.DecisionSelect, Time: now,
					TraceID: simTraceID(q0.ID), Tenant: q0.Tenant, Worker: w,
					QueueLen: queueBefore, DegradeLevel: level,
					SlackSec: q0.Deadline(e.sloFor(q0)) - now,
					Model:    p.Name, Batch: len(d.Queries),
					PredictedSec: p.BatchLatency(len(d.Queries)),
					RealizedSec:  lat, Outcome: "served",
				}
				if e.Decisions != nil {
					e.Decisions.Add(*dec)
				}
			}
			if e.tel != nil {
				e.tel.decisionErr.Observe(math.Abs(p.BatchLatency(len(d.Queries)) - lat))
			}
			e.events.push(event{time: now + lat, start: now, worker: w, queries: d.Queries, model: d.Model, dec: dec})
			if e.RecordDecisions {
				e.metrics.DecisionLog = append(e.metrics.DecisionLog, DecisionRecord{
					Time:     now,
					Worker:   w,
					Model:    p.Name,
					Batch:    len(d.Queries),
					QueueLen: queueBefore,
					Slack:    d.Queries[0].Deadline(e.SLO) - now,
				})
			}
			progress = true
		}
	}
}

// complete records a finished batch.
func (e *Engine) complete(ev event) {
	p := e.ProfilesFor(ev.worker).Profiles[ev.model]
	e.metrics.Decisions++
	e.metrics.ModelCounts[p.Name] += len(ev.queries)
	if e.tel != nil {
		e.tel.decisions.Inc()
		e.tel.reg.Counter(telemetry.MetricModelQueries, "model", p.Name).Add(float64(len(ev.queries)))
		e.tel.batchSize.Observe(float64(len(ev.queries)))
		e.tel.inference.Observe(ev.time - ev.start)
	}
	for _, q := range ev.queries {
		e.metrics.Served++
		lat := ev.time - q.Arrival
		e.latHist.Observe(lat)
		if e.CollectLatencies {
			e.metrics.Latencies = append(e.metrics.Latencies, lat)
		}
		violated := lat > e.sloFor(q)+1e-12
		if violated {
			e.metrics.Violations++
		} else {
			e.metrics.SatAccSum += p.Accuracy
		}
		if e.trackTenants {
			t := e.tm(q.Tenant)
			t.Served++
			if violated {
				t.Violations++
			} else {
				t.SatAccSum += p.Accuracy
			}
		}
		if e.tel != nil {
			e.tel.queries.Inc()
			if violated {
				e.tel.violations.Inc()
			} else {
				e.tel.satAcc.Add(p.Accuracy)
			}
			if e.trackTenants {
				e.tel.tenantQueries.With(q.Tenant).Inc()
				if violated {
					e.tel.tenantViolations.With(q.Tenant).Inc()
				}
			}
			if e.tracing() {
				e.tel.latency.ObserveExemplar(lat, simTraceID(q.ID))
			} else {
				e.tel.latency.Observe(lat)
			}
			e.tel.batchWait.Observe(ev.start - q.Arrival)
		}
		if e.Telemetry != nil {
			e.sloTrack(q.Tenant).Observe(ev.time, !violated)
		}
		if e.tracing() {
			e.recordTrace(telemetry.QueryTrace{
				ID: q.ID, Arrival: q.Arrival, Worker: ev.worker,
				Model: p.Name, Batch: len(ev.queries),
				LatencyMS: lat * 1000,
				TraceID:   simTraceID(q.ID), Process: "sim",
				Tenant:   q.Tenant,
				Decision: ev.dec,
				Spans: []telemetry.Span{
					{Stage: telemetry.StageBatchWait, Seconds: ev.start - q.Arrival},
					{Stage: telemetry.StageInference, Seconds: ev.time - ev.start},
				},
			})
		}
	}
}

// finishMetrics fills the latency percentile fields at the end of a run:
// exact when every latency was collected, histogram-approximated otherwise.
func (e *Engine) finishMetrics() {
	if e.CollectLatencies && len(e.metrics.Latencies) > 0 {
		e.metrics.LatencyP50 = stats.Percentile(e.metrics.Latencies, 50)
		e.metrics.LatencyP95 = stats.Percentile(e.metrics.Latencies, 95)
		e.metrics.LatencyP99 = stats.Percentile(e.metrics.Latencies, 99)
		return
	}
	e.metrics.LatencyP50 = e.latHist.Quantile(50)
	e.metrics.LatencyP95 = e.latHist.Quantile(95)
	e.metrics.LatencyP99 = e.latHist.Quantile(99)
}
