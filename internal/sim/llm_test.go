package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/llm"
	"ramsis/internal/telemetry"
	"ramsis/internal/trace"
)

// TestLLMStepMathSingleQuery walks one query through the step loop by hand:
// E2E latency must equal the sum of the steps it rides through, TTFT the
// prefill step, and each TBT one decode step.
func TestLLMStepMathSingleQuery(t *testing.T) {
	models := llm.BuiltinSet()
	m := models.Models[0] // chat-8b
	e := NewLLMEngine(models, 6.0, 1, FixedSelector(0))
	e.CollectLatencies = true
	got := e.Run([]TokenQuery{{ID: 1, Arrival: 0, Prefill: 1000, Decode: 3}})

	// Step 1: the whole prefill fits the 2048 budget; kv 0 at schedule time.
	tau1 := m.StepTime(1000, 0, 0)
	// Prefill lands 1000 tokens plus the first output token.
	tau2 := m.StepTime(0, 1, 1001.0/float64(m.KVCapTokens))
	tau3 := m.StepTime(0, 1, 1002.0/float64(m.KVCapTokens))
	want := tau1 + tau2 + tau3

	if got.Served != 1 || got.Violations != 0 {
		t.Fatalf("served %d violations %d", got.Served, got.Violations)
	}
	if got.Steps != 3 {
		t.Fatalf("steps = %d, want 3", got.Steps)
	}
	if math.Abs(got.Latencies[0]-want) > 1e-12 {
		t.Errorf("latency %v, want %v", got.Latencies[0], want)
	}
	if len(got.TTFTs) != 1 || math.Abs(got.TTFTs[0]-tau1) > 1e-12 {
		t.Errorf("TTFT %v, want %v", got.TTFTs, tau1)
	}
	if len(got.TBTs) != 2 || math.Abs(got.TBTs[0]-tau2) > 1e-12 || math.Abs(got.TBTs[1]-tau3) > 1e-12 {
		t.Errorf("TBTs %v, want [%v %v]", got.TBTs, tau2, tau3)
	}
	if got.PrefillTokens != 1000 || got.DecodeTokens != 2 {
		t.Errorf("scheduled %d prefill / %d decode tokens, want 1000 / 2", got.PrefillTokens, got.DecodeTokens)
	}
	if got.AccuracyPerSatisfiedQuery() != m.Accuracy {
		t.Errorf("accuracy %v, want %v", got.AccuracyPerSatisfiedQuery(), m.Accuracy)
	}
}

// TestLLMKVGatingAndOversizeDrop pins admission gating: a query that fits
// only after the running batch releases its reservation waits; one that can
// never fit the cache is dropped, not deadlocked on.
func TestLLMKVGatingAndOversizeDrop(t *testing.T) {
	models := llm.BuiltinSet()
	traces := telemetry.NewTraceBuffer(16)
	e := NewLLMEngine(models, 60.0, 1, FixedSelector(0))
	e.KVCap = 2000
	e.Traces = traces
	got := e.Run([]TokenQuery{
		{ID: 1, Arrival: 0, Prefill: 1400, Decode: 100}, // 1500 tokens
		{ID: 2, Arrival: 0, Prefill: 900, Decode: 100},  // 1000: waits for q1
		{ID: 3, Arrival: 0, Prefill: 3000, Decode: 100}, // 3100 > cap: dropped
	})
	if got.Served != 2 {
		t.Fatalf("served %d, want 2", got.Served)
	}
	if got.Dropped != 1 {
		t.Fatalf("dropped %d, want 1 (oversize query)", got.Dropped)
	}
	var q1Done, q2Admit float64
	sawDrop := false
	for _, qt := range traces.Snapshot() {
		switch qt.ID {
		case 1:
			q1Done = qt.Arrival + qt.LatencyMS/1000
		case 2:
			for _, sp := range qt.Spans {
				if sp.Stage == telemetry.StageBatchWait {
					q2Admit = qt.Arrival + sp.Seconds
				}
			}
		case 3:
			sawDrop = qt.Error == "kv-oversize"
		}
	}
	if !sawDrop {
		t.Error("oversize query left no kv-oversize trace")
	}
	if !(q2Admit > 0) {
		t.Errorf("q2 admitted at %v; the KV reservation should have gated it", q2Admit)
	}
	if math.Abs(q2Admit-q1Done) > 1e-9 {
		t.Errorf("q2 admitted at %v, want at q1's completion %v", q2Admit, q1Done)
	}
	if !(got.PeakKVUsage > 0.7) {
		t.Errorf("peak KV usage %v suspiciously low for a gated run", got.PeakKVUsage)
	}
}

// TestLLMContinuousBatchingJoinsMidStream pins the defining property of
// continuous batching: a later arrival joins the running batch while an
// earlier query is still decoding, instead of waiting for it to finish.
func TestLLMContinuousBatchingJoinsMidStream(t *testing.T) {
	models := llm.BuiltinSet()
	traces := telemetry.NewTraceBuffer(16)
	e := NewLLMEngine(models, 60.0, 1, FixedSelector(0))
	e.Traces = traces
	got := e.Run([]TokenQuery{
		{ID: 1, Arrival: 0, Prefill: 100, Decode: 50},
		{ID: 2, Arrival: 0.05, Prefill: 100, Decode: 5},
	})
	if got.Served != 2 {
		t.Fatalf("served %d, want 2", got.Served)
	}
	var q1Done, q2Admit float64
	for _, qt := range traces.Snapshot() {
		switch qt.ID {
		case 1:
			q1Done = qt.Arrival + qt.LatencyMS/1000
		case 2:
			for _, sp := range qt.Spans {
				if sp.Stage == telemetry.StageBatchWait {
					q2Admit = qt.Arrival + sp.Seconds
				}
			}
		}
	}
	if !(q2Admit < q1Done) {
		t.Errorf("q2 admitted at %v, after q1 finished at %v — batch never joined mid-stream", q2Admit, q1Done)
	}
}

// scriptSelector asks for model 0 on its first consult and model 2 forever
// after — forcing one immediate switch and one drain-gated switch.
type scriptSelector struct{ calls int }

func (s *scriptSelector) SelectModel(int, int, float64, float64) int {
	s.calls++
	if s.calls == 1 {
		return 0
	}
	return 2
}
func (s *scriptSelector) Name() string { return "script" }

// TestLLMModelSwitchDrainsRunningBatch pins switch semantics: with an empty
// running batch the switch is immediate; with sequences in flight the worker
// drains (admitting nothing) and switches when the batch empties.
func TestLLMModelSwitchDrainsRunningBatch(t *testing.T) {
	models := llm.BuiltinSet()
	e := NewLLMEngine(models, 60.0, 1, &scriptSelector{})
	got := e.Run([]TokenQuery{
		{ID: 1, Arrival: 0, Prefill: 10, Decode: 30},
		{ID: 2, Arrival: 0.001, Prefill: 10, Decode: 5},
	})
	if got.Served != 2 {
		t.Fatalf("served %d, want 2", got.Served)
	}
	// Switch 1: most-accurate default -> model 0 before any admission.
	// Switch 2: model 0 -> model 2 once q1's batch drained.
	if got.ModelSwitches != 2 {
		t.Fatalf("model switches = %d, want 2", got.ModelSwitches)
	}
	if got.ModelCounts["chat-8b"] != 1 || got.ModelCounts["chat-72b"] != 1 {
		t.Fatalf("model counts %v, want one query each on chat-8b and chat-72b", got.ModelCounts)
	}
}

// TestLLMTelemetryExposition checks the run's series land in the registry
// under the canonical names, TTFT/TBT histograms included.
func TestLLMTelemetryExposition(t *testing.T) {
	models := llm.BuiltinSet()
	reg := telemetry.NewRegistry()
	e := NewLLMEngine(models, 6.0, 2, FixedSelector(0))
	e.Telemetry = reg
	got := e.Run([]TokenQuery{
		{ID: 1, Arrival: 0, Prefill: 200, Decode: 20},
		{ID: 2, Arrival: 0.01, Prefill: 300, Decode: 10},
	})
	if got.Served != 2 {
		t.Fatalf("served %d, want 2", got.Served)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	for _, name := range []string{
		telemetry.MetricLLMTTFT,
		telemetry.MetricLLMTBT,
		telemetry.MetricLLMStepSeconds,
		telemetry.MetricLLMSteps,
		telemetry.MetricLLMTokens,
		telemetry.MetricLLMKVUsage,
		telemetry.MetricQueries,
		telemetry.MetricLatencySeconds,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if !(got.TTFTP50 > 0) || !(got.TBTP50 > 0) {
		t.Errorf("TTFT p50 %v / TBT p50 %v not populated", got.TTFTP50, got.TBTP50)
	}
}

// burstWorkload builds the acceptance scenario: a steady general-class load
// with a long-prefill codegen burst riding on top, at identical offered
// load for every policy under test.
func burstWorkload() []TokenQuery {
	cls := llm.GeneralClass()
	rng := rand.New(rand.NewSource(7))
	var arrivals []float64
	for t := rng.ExpFloat64() / 4; t < 60; t += rng.ExpFloat64() / 4 {
		arrivals = append(arrivals, t)
	}
	events := trace.AnnotateTokens(arrivals, 11, cls.In, cls.Out)
	queries := make([]TokenQuery, 0, len(events)+12)
	for i, ev := range events {
		queries = append(queries, TokenQuery{ID: i + 1, Arrival: ev.T, Prefill: ev.Prefill, Decode: ev.Decode})
	}
	// The burst: a dozen codegen-style arrivals, each carrying ~4k prompt
	// tokens. The queue grows by only 12 queries — unremarkable to a
	// queue-length policy — while the outstanding token load jumps by ~50k.
	for i := 0; i < 12; i++ {
		queries = append(queries, TokenQuery{
			ID: len(events) + i + 1, Arrival: 20 + 0.1*float64(i),
			Prefill: 4000, Decode: 150,
		})
	}
	return queries
}

// TestLLMTokenAwarePolicyBeatsScalarOnPrefillBurst is the PR's acceptance
// scenario: at equal offered load, the token-aware policy must achieve
// strictly higher SLO attainment than the scalar-profile policy on a
// long-prefill burst. The burst's 40 queries carry ~3200 tokens each, so
// the outstanding token load explodes while the queue length stays
// unremarkable — the scalar policy keeps serving large models and drowns,
// the token-aware policy sees the token backlog and downshifts.
func TestLLMTokenAwarePolicyBeatsScalarOnPrefillBurst(t *testing.T) {
	models := llm.BuiltinSet()
	cls := llm.GeneralClass()
	const slo, rate, workers = 8.0, 4.0, 1

	tokenPol, err := core.GenerateLLM(core.LLMConfig{
		Models: models, SLO: slo, Workers: workers, Rate: rate,
		In: cls.In, Out: cls.Out,
	})
	if err != nil {
		t.Fatal(err)
	}
	tokenSel, err := NewLLMPolicySelector(tokenPol, models)
	if err != nil {
		t.Fatal(err)
	}
	scalarPol, err := core.Generate(core.Config{
		Models:  models.ScalarProfiles(cls.In.MeanLen(), cls.Out.MeanLen(), 0),
		SLO:     slo,
		Workers: workers,
		Arrival: dist.NewPoisson(rate),
	})
	if err != nil {
		t.Fatal(err)
	}
	scalarSel, err := NewScalarPolicySelector(scalarPol, models)
	if err != nil {
		t.Fatal(err)
	}

	queries := burstWorkload()
	run := func(sel ModelSelector) LLMMetrics {
		e := NewLLMEngine(models, slo, workers, sel)
		e.CollectLatencies = true
		return e.Run(queries)
	}
	token := run(tokenSel)
	scalar := run(scalarSel)

	tokenAtt := 1 - token.ViolationRate()
	scalarAtt := 1 - scalar.ViolationRate()
	t.Logf("token-aware: attainment %.3f acc %.3f switches %d models %v",
		tokenAtt, token.AccuracyPerSatisfiedQuery(), token.ModelSwitches, token.ModelCounts)
	t.Logf("scalar:      attainment %.3f acc %.3f switches %d models %v",
		scalarAtt, scalar.AccuracyPerSatisfiedQuery(), scalar.ModelSwitches, scalar.ModelCounts)
	if !(tokenAtt > scalarAtt) {
		t.Fatalf("token-aware attainment %.4f not strictly above scalar %.4f", tokenAtt, scalarAtt)
	}
	if token.Served+token.Dropped != len(queries) || scalar.Served+scalar.Dropped != len(queries) {
		t.Fatalf("offered load mismatch: token %d+%d, scalar %d+%d, want %d",
			token.Served, token.Dropped, scalar.Served, scalar.Dropped, len(queries))
	}
}

// TestLLMEngineDeterminism pins the engine: same inputs, same metrics.
func TestLLMEngineDeterminism(t *testing.T) {
	queries := burstWorkload()
	run := func() LLMMetrics {
		e := NewLLMEngine(llm.BuiltinSet(), 6.0, 2, FixedSelector(1))
		e.CollectLatencies = true
		return e.Run(queries)
	}
	a, b := run(), run()
	if a.Served != b.Served || a.Violations != b.Violations || a.Steps != b.Steps ||
		a.LatencyP99 != b.LatencyP99 || a.TTFTP99 != b.TTFTP99 || a.TBTP99 != b.TBTP99 {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}
