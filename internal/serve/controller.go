package serve

import (
	"fmt"
	"net/url"
	"sync"
	"time"

	"ramsis/internal/admit"
	"ramsis/internal/core"
	"ramsis/internal/lb"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/stats"
	"ramsis/internal/telemetry"
)

// SelectFunc is an online model-selection decision for one worker queue:
// given the modeled time, anticipated load, queue length, and the earliest
// queued query's slack, it returns the model name and batch size to run.
type SelectFunc func(now, load float64, queueLen int, slack float64) (model string, batch int)

// RAMSISSelector adapts an offline-generated policy set to the online
// selector interface (§3.2.2). It uses the non-blocking lookup: when the
// anticipated load exceeds the pre-computed ladder, serving continues with
// the highest-load policy while the missing one generates in the
// background — real-time serving must not stall behind policy generation.
func RAMSISSelector(set *core.PolicySet) SelectFunc {
	return func(now, load float64, n int, slack float64) (string, int) {
		pol, err := set.PolicyForNow(load)
		if err != nil {
			panic(fmt.Sprintf("serve: no policy: %v", err))
		}
		c := pol.Select(n, slack)
		b := c.Batch
		if b > n {
			b = n
		}
		return c.Model, b
	}
}

// LoadGranularSelector adapts a load-granular model choice (Jellyfish+,
// ModelSwitching, INFaaS) with adaptive batching capped at half the SLO.
func LoadGranularSelector(profiles profile.Set, slo float64, modelFor func(load float64) int) SelectFunc {
	return func(_, load float64, n int, _ float64) (string, int) {
		p := profiles.Profiles[modelFor(load)]
		b := p.MaxBatchWithin(slo / 2)
		if b < 1 {
			b = 1
		}
		if b > n {
			b = n
		}
		return p.Name, b
	}
}

// Controller is the central controller VM of §6: it runs the workload
// generator, the central queue, the load balancer, and one model-selector
// loop per worker, dispatching batches to worker servers over HTTP.
type Controller struct {
	Profiles  profile.Set
	SLO       float64
	TimeScale float64
	Workers   []string // worker base URLs
	Select    SelectFunc
	Monitor   monitor.Monitor
	// Central routes all queries through the central queue with eager
	// workers (the baselines' implicit balancing); otherwise queries are
	// distributed to per-worker queues via Balancer (RAMSIS, §3.2.1).
	Central bool
	// Balancer picks the per-worker queue for each arrival (default
	// round-robin); unused in Central mode.
	Balancer lb.Balancer
	// Health optionally masks unhealthy workers out of routing and
	// failover. The caller owns its lifecycle (Start/Stop).
	Health *lb.HealthTracker
	// CollectLatencies records every response latency in the metrics.
	CollectLatencies bool
	// Telemetry records the same counters and per-stage histograms as the
	// Frontend and the simulator engine (ramsis_queries_total,
	// ramsis_stage_seconds, ...); Run builds a registry when nil.
	Telemetry *telemetry.Registry
	// Admit, when set, screens replayed arrivals exactly like the Frontend
	// screens live ones: shed queries never enqueue and count in
	// Metrics.Shed.
	Admit admit.Admitter
	// Degrade, when set, clamps the selector's model choice to faster
	// models while admission pressure confirms overload.
	Degrade *admit.Degrader
	// RetryBudget, when set, gates dispatch failover like the Frontend's.
	RetryBudget *admit.RetryBudget

	clamp    *modelClamp
	tel      *serveSeries
	wrapped  bool
	mu       sync.Mutex
	cond     *sync.Cond
	central  []sim.Query
	wq       [][]sim.Query
	inflight []int // per-worker in-dispatch query count
	lens     []int // scratch buffer for balancer input
	genDone  bool
	metrics  sim.Metrics
	start    time.Time
	// inferURLs pre-parses each worker's /infer endpoint off the dispatch
	// path.
	inferURLs []*url.URL
}

// now returns modeled seconds since Run started.
func (c *Controller) now() float64 {
	return time.Since(c.start).Seconds() * c.TimeScale
}

// Run replays the arrival times (modeled seconds) through the full HTTP
// stack and returns metrics in modeled time. It blocks until every query is
// served.
func (c *Controller) Run(arrivals []float64) (sim.Metrics, error) {
	if len(c.Workers) == 0 {
		return sim.Metrics{}, fmt.Errorf("serve: no workers")
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.Balancer == nil {
		c.Balancer = lb.NewRoundRobin()
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRegistry()
	}
	c.tel = newServeSeries(c.Telemetry, len(c.Workers), 0)
	if c.Degrade != nil {
		c.clamp = newModelClamp(c.Profiles)
		wireDegradeTelemetry(c.Telemetry, c.Degrade)
	}
	if !c.wrapped {
		c.Balancer = lb.Instrumented(c.Balancer, c.Telemetry)
		c.wrapped = true
	}
	c.cond = sync.NewCond(&c.mu)
	c.wq = make([][]sim.Query, len(c.Workers))
	c.inflight = make([]int, len(c.Workers))
	c.lens = make([]int, len(c.Workers))
	c.central = nil
	c.genDone = false
	c.metrics = sim.Metrics{ModelCounts: map[string]int{}}
	c.inferURLs = make([]*url.URL, len(c.Workers))
	for i, u := range c.Workers {
		pu, err := url.Parse(u + "/infer")
		if err != nil {
			return sim.Metrics{}, fmt.Errorf("serve: bad worker URL %q: %v", u, err)
		}
		c.inferURLs[i] = pu
	}
	c.start = time.Now()

	var wg sync.WaitGroup
	errs := make(chan error, len(c.Workers))
	for w := range c.Workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := c.workerLoop(w); err != nil {
				errs <- err
				// Wake everyone so the run can unwind.
				c.mu.Lock()
				c.genDone = true
				c.cond.Broadcast()
				c.mu.Unlock()
			}
		}(w)
	}

	// Workload generator: replay arrivals in (scaled) real time.
	for i, a := range arrivals {
		wall := c.start.Add(time.Duration(a / c.TimeScale * float64(time.Second)))
		if d := time.Until(wall); d > 0 {
			time.Sleep(d)
		}
		q := sim.Query{ID: i, Arrival: a}
		c.mu.Lock()
		if c.Monitor != nil {
			c.Monitor.Observe(c.now())
		}
		if c.Admit != nil {
			outstanding := len(c.central)
			for w := range c.wq {
				outstanding += len(c.wq[w]) + c.inflight[w]
			}
			v := c.Admit.Admit(admit.Request{Now: a, Outstanding: outstanding})
			if c.Degrade != nil {
				c.Degrade.Observe(a, !v.Admit, v.EstWait)
			}
			c.tel.estWait.Observe(v.EstWait)
			if !v.Admit {
				c.metrics.Shed++
				c.tel.shed(c.Admit.Name()).Inc()
				c.mu.Unlock()
				continue
			}
			c.tel.admitted.Inc()
		}
		if c.Central {
			c.central = append(c.central, q)
		} else {
			w := c.Balancer.Pick(c.queueLensLocked(), c.healthMask())
			c.wq[w] = append(c.wq[w], q)
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.genDone = true
	c.cond.Broadcast()
	c.mu.Unlock()

	wg.Wait()
	c.finishMetrics()
	select {
	case err := <-errs:
		return c.metrics, err
	default:
	}
	return c.metrics, nil
}

// finishMetrics fills the latency percentiles: exact order statistics when
// latencies were collected, otherwise interpolated from the registry's
// latency histogram (same fallback as the simulator engine).
func (c *Controller) finishMetrics() {
	if c.CollectLatencies && len(c.metrics.Latencies) > 0 {
		c.metrics.LatencyP50 = stats.Percentile(c.metrics.Latencies, 50)
		c.metrics.LatencyP95 = stats.Percentile(c.metrics.Latencies, 95)
		c.metrics.LatencyP99 = stats.Percentile(c.metrics.Latencies, 99)
		return
	}
	c.metrics.LatencyP50 = c.tel.latency.Quantile(50)
	c.metrics.LatencyP95 = c.tel.latency.Quantile(95)
	c.metrics.LatencyP99 = c.tel.latency.Quantile(99)
}

// workerLoop is one per-worker model selector: it waits for queued queries,
// applies the selector, and dispatches the batch to its worker over HTTP.
func (c *Controller) workerLoop(w int) error {
	// Per-loop scratch: the popped batch and the POST buffers. Dispatch is
	// synchronous, so both are reused across every batch this loop runs.
	var qbuf []sim.Query
	scr := &postScratch{}
	defer scr.closeConns()
	for {
		c.mu.Lock()
		for c.queueLen(w) == 0 && !c.genDone {
			c.cond.Wait()
		}
		n := c.queueLen(w)
		if n == 0 && c.genDone {
			c.mu.Unlock()
			return nil
		}
		now := c.now()
		load := 0.0
		if c.Monitor != nil {
			load = c.Monitor.Load(now)
		}
		head := c.peek(w)
		slack := head.Arrival + c.SLO - now
		model, batch := c.Select(now, load, n, slack)
		p, ok := c.Profiles.ByName(model)
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("serve: selector chose unknown model %q", model)
		}
		if c.Degrade != nil {
			if lvl := c.Degrade.Level(); lvl > 0 {
				if name, changed := c.clamp.apply(lvl, model); changed {
					model = name
					p, _ = c.Profiles.ByName(model)
					c.metrics.DegradedDecisions++
					c.tel.degraded.Inc()
				}
			}
		}
		if batch > p.MaxBatch() {
			batch = p.MaxBatch()
		}
		if batch < 1 {
			batch = 1
		}
		qbuf = c.pop(w, batch, qbuf[:0])
		if !c.Central {
			// Count the popped batch as in-dispatch so the balancer still
			// sees this worker's load while its queue slice reads empty.
			c.inflight[w] += len(qbuf)
		}
		c.mu.Unlock()

		c.dispatch(w, model, qbuf, scr)
	}
}

// queueLensLocked snapshots per-worker outstanding load (queued plus
// in-dispatch) into the scratch buffer; callers must hold c.mu.
func (c *Controller) queueLensLocked() []int {
	for w := range c.wq {
		c.lens[w] = len(c.wq[w]) + c.inflight[w]
	}
	return c.lens
}

// healthMask returns the tracker's current mask, or nil (all healthy) when
// no tracker is configured.
func (c *Controller) healthMask() []bool {
	if c.Health == nil {
		return nil
	}
	return c.Health.Healthy()
}

func (c *Controller) queueLen(w int) int {
	if c.Central {
		return len(c.central)
	}
	return len(c.wq[w])
}

func (c *Controller) peek(w int) sim.Query {
	if c.Central {
		return c.central[0]
	}
	return c.wq[w][0]
}

// pop moves the k oldest queries of worker w's queue (or the central
// queue) into dst, the caller's reusable batch scratch.
func (c *Controller) pop(w, k int, dst []sim.Query) []sim.Query {
	if c.Central {
		if k > len(c.central) {
			k = len(c.central)
		}
		dst = append(dst, c.central[:k]...)
		c.central = c.central[k:]
		return dst
	}
	if k > len(c.wq[w]) {
		k = len(c.wq[w])
	}
	dst = append(dst, c.wq[w][:k]...)
	c.wq[w] = c.wq[w][k:]
	return dst
}

// post attempts one /infer POST against worker w, reporting the outcome to
// the health tracker when one is configured. Connection errors and 5xx
// responses count as health failures; other non-2xx statuses fail the
// dispatch without marking the worker unhealthy. On success it returns
// the worker-reported inference latency (modeled seconds) for the span
// breakdown. body is the batch's pre-encoded InferRequest, built once per
// batch by dispatch; the response body is always drained (postInfer) so
// error responses no longer forfeit the keep-alive connection.
func (c *Controller) post(w int, body []byte, scr *postScratch) (float64, bool) {
	c.tel.workerDispatch[w].Inc()
	lat, status, err := scr.postInfer(w, c.inferURLs[w], body, nil)
	if err != nil && status == 0 {
		if c.Health != nil {
			c.Health.ReportFailure(w)
		}
		return 0, false
	}
	if status >= 500 {
		if c.Health != nil {
			c.Health.ReportFailure(w)
		}
		return 0, false
	}
	if status < 200 || status >= 300 {
		return 0, false
	}
	if c.Health != nil {
		c.Health.ReportSuccess(w)
	}
	if err != nil {
		return 0, false // undecodable response still fails the dispatch
	}
	return lat, true
}

// failoverTarget picks a healthy worker other than w, or -1 if none exists.
func (c *Controller) failoverTarget(w int) int {
	if len(c.Workers) < 2 {
		return -1
	}
	healthy := c.healthMask()
	if healthy == nil {
		healthy = make([]bool, len(c.Workers))
		for i := range healthy {
			healthy[i] = true
		}
	}
	healthy[w] = false
	if !anyHealthy(healthy) {
		return -1
	}
	c.mu.Lock()
	lens := append([]int(nil), c.queueLensLocked()...)
	c.mu.Unlock()
	alt := c.Balancer.Pick(lens, healthy)
	if alt == w {
		return -1
	}
	return alt
}

// dispatch POSTs the batch to the worker, failing over once to another
// healthy worker, and records per-query outcomes at the modeled completion
// time. A batch no worker accepted counts its queries as violations (and
// FailedDispatches) instead of aborting the replay. Alongside the run
// metrics, the same outcomes land in the telemetry registry, including the
// batch_wait / dispatch / inference / respond stage histograms (the replay
// path has no client-side enqueue or pick stage to time).
func (c *Controller) dispatch(w int, model string, queries []sim.Query, scr *postScratch) {
	scr.body = appendInferRequest(scr.body[:0], model, len(queries))
	dispStart := c.now()
	infSec, ok := c.post(w, scr.body, scr)
	if !ok {
		if alt := c.failoverTarget(w); alt >= 0 && c.allowFailover() {
			infSec, ok = c.post(alt, scr.body, scr)
		}
	}
	postEnd := c.now()
	dispSec := postEnd - dispStart - infSec
	if dispSec < 0 {
		dispSec = 0
	}
	done := c.now()
	p, _ := c.Profiles.ByName(model)

	c.tel.decisions.Inc()
	c.tel.model(model).Add(float64(len(queries)))
	c.tel.batchSize.Observe(float64(len(queries)))

	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.Central {
		c.inflight[w] -= len(queries)
	}
	c.metrics.Decisions++
	c.metrics.ModelCounts[model] += len(queries)
	for _, q := range queries {
		c.metrics.Served++
		lat := done - q.Arrival
		if c.CollectLatencies {
			c.metrics.Latencies = append(c.metrics.Latencies, lat)
		}
		c.tel.queries.Inc()
		c.tel.latency.Observe(lat)
		c.tel.stBatchWait.Observe(dispStart - q.Arrival)
		c.tel.stDispatch.Observe(dispSec)
		c.tel.stInference.Observe(infSec)
		c.tel.stRespond.Observe(done - postEnd)
		if ok && lat <= c.SLO {
			c.metrics.SatAccSum += p.Accuracy
			c.tel.satAcc.Add(p.Accuracy)
		} else {
			c.metrics.Violations++
			c.tel.violations.Inc()
		}
		if !ok {
			c.metrics.FailedDispatches++
			c.tel.failed.Inc()
		}
	}
}

// allowFailover asks the retry budget for a failover attempt; without a
// budget every failover is allowed.
func (c *Controller) allowFailover() bool {
	if c.RetryBudget == nil {
		return true
	}
	if c.RetryBudget.Allow(c.now()) {
		c.tel.retries.Inc()
		return true
	}
	c.tel.retriesDenied.Inc()
	return false
}
