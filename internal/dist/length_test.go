package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The statistical gates: 100k draws from each sampler kind must land within
// tolerance of the analytic mean and p99 the sampler itself reports, and the
// draw stream must be bit-deterministic for a seed. Tolerances are sized for
// the fixed seeds below (≈5 standard errors for the mean; a few percent of
// discreteness slack for p99), so the tests are deterministic, not flaky.

const lengthDraws = 100_000

func drawLengths(s LengthSampler, seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = s.SampleLen(rng)
	}
	return out
}

func sampleStats(xs []int) (mean float64, p99 int) {
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	idx := int(math.Ceil(0.99*float64(len(sorted)))) - 1
	return sum / float64(len(xs)), sorted[idx]
}

func testSamplerStatistics(t *testing.T, s LengthSampler, meanTolFrac, p99TolFrac float64) {
	t.Helper()
	xs := drawLengths(s, 42, lengthDraws)
	mean, p99 := sampleStats(xs)

	wantMean := s.MeanLen()
	if tol := wantMean * meanTolFrac; math.Abs(mean-wantMean) > tol {
		t.Errorf("mean of %d draws = %.2f, want %.2f ± %.2f", lengthDraws, mean, wantMean, tol)
	}
	wantP99 := s.QuantileLen(0.99)
	if tol := float64(wantP99) * p99TolFrac; math.Abs(float64(p99-wantP99)) > tol {
		t.Errorf("p99 of %d draws = %d, want %d ± %.0f", lengthDraws, p99, wantP99, tol)
	}
	for _, x := range xs {
		if x < 1 || x > s.MaxLen() {
			t.Fatalf("draw %d outside [1, %d]", x, s.MaxLen())
		}
	}
}

func TestLognormalLenStatistics(t *testing.T) {
	testSamplerStatistics(t, NewLognormalLen(200, 0.9, 8, 2048), 0.02, 0.05)
}

func TestLognormalLenClampedStatistics(t *testing.T) {
	// Heavy clamping (long-prefill codegen class): the analytic moments
	// must account for the mass folded into the Max edge.
	testSamplerStatistics(t, NewLognormalLen(1400, 0.6, 64, 4096), 0.02, 0.05)
}

func TestEmpiricalLenStatistics(t *testing.T) {
	s := NewEmpiricalLen([]LenBucket{
		{Lo: 128, Hi: 512, Weight: 0.25},
		{Lo: 513, Hi: 1536, Weight: 0.45},
		{Lo: 1537, Hi: 3072, Weight: 0.30},
	})
	testSamplerStatistics(t, s, 0.02, 0.05)
}

func TestLengthSamplersDeterministic(t *testing.T) {
	samplers := map[string]func() LengthSampler{
		"lognormal": func() LengthSampler { return NewLognormalLen(200, 0.9, 8, 2048) },
		"empirical": func() LengthSampler {
			return NewEmpiricalLen([]LenBucket{{Lo: 1, Hi: 64, Weight: 1}, {Lo: 65, Hi: 256, Weight: 2}})
		},
	}
	for name, mk := range samplers {
		a := drawLengths(mk(), 7, 4096)
		b := drawLengths(mk(), 7, 4096)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs across identically seeded runs: %d vs %d", name, i, a[i], b[i])
			}
		}
		c := drawLengths(mk(), 8, 4096)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestLognormalLenPMFSumsToOne(t *testing.T) {
	l := NewLognormalLen(180, 0.7, 16, 1024)
	if got := l.CDFLen(l.MaxLen()); math.Abs(got-1) > 1e-9 {
		t.Fatalf("CDF at MaxLen = %v, want 1", got)
	}
	if l.CDFLen(0) != 0 {
		t.Fatalf("CDF below Min = %v, want 0", l.CDFLen(0))
	}
	prev := 0.0
	for k := 1; k <= l.MaxLen(); k += 13 {
		c := l.CDFLen(k)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, c, prev)
		}
		prev = c
	}
}

func TestQuantileConsistentWithCDF(t *testing.T) {
	for _, s := range []LengthSampler{
		NewLognormalLen(200, 0.9, 8, 2048),
		NewEmpiricalLen([]LenBucket{{Lo: 10, Hi: 20, Weight: 1}, {Lo: 30, Hi: 60, Weight: 3}}),
	} {
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			k := s.QuantileLen(q)
			if s.CDFLen(k) < q-1e-9 {
				t.Errorf("%T: CDF(Quantile(%v)=%d) = %v < q", s, q, k, s.CDFLen(k))
			}
			if k > 1 && s.CDFLen(k-1) >= q+1e-9 {
				t.Errorf("%T: Quantile(%v)=%d not minimal: CDF(%d)=%v", s, q, k, k-1, s.CDFLen(k-1))
			}
		}
	}
}

func TestEmpiricalLenValidation(t *testing.T) {
	for name, buckets := range map[string][]LenBucket{
		"empty":       {},
		"zero-weight": {{Lo: 1, Hi: 10, Weight: 0}},
		"inverted":    {{Lo: 10, Hi: 5, Weight: 1}},
		"overlap":     {{Lo: 1, Hi: 10, Weight: 1}, {Lo: 10, Hi: 20, Weight: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewEmpiricalLen(buckets)
		}()
	}
}
