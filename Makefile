GO ?= go

.PHONY: build test vet lint race verify bench bench-smoke profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting gate: gofmt must have nothing to rewrite. gofmt -l prints
# offending files and always exits 0, so fail on non-empty output.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# The lb, serve, telemetry, and adapt packages are the concurrency-heavy
# ones (balancers, health tracker, per-worker queue locks, HTTP dispatch,
# the lock-free metrics registry, and the background policy re-solve /
# hot-swap path); run them under the race detector. Their tests scale
# sleeps by TimeScale, so the race pass stays within a CI budget.
race:
	$(GO) test -race ./internal/adapt/ ./internal/lb/ ./internal/serve/ ./internal/telemetry/

# Tier-1 verify path (see ROADMAP.md).
verify: build lint test race

# Perf measurement over the hot paths: the MDP solve (slice vs compiled
# CSR kernels), MDP compilation, per-decision policy lookup, balancer pick,
# and raw simulator throughput. -count=3 repetitions with allocation stats;
# raw output lands in bench.out and tools/benchjson distills it into
# BENCH_4.json, the committed baseline (quote best_ns_per_op when comparing).
BENCH_KEY := 'BenchmarkValueIteration|BenchmarkCompile$$|BenchmarkPolicySelect|BenchmarkBalancerPick|BenchmarkSimulatorThroughput'

bench:
	$(GO) test -run '^$$' -bench $(BENCH_KEY) -benchmem -count=3 . | tee bench.out
	$(GO) run ./tools/benchjson -o BENCH_4.json bench.out

# Every benchmark (figure regenerations included) runs exactly once: not a
# perf measurement, just proof the bench harness cannot silently rot.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# CPU- and heap-profile the simulator throughput benchmark and print the
# top hotspots (profiles land in ./profiles for interactive pprof use).
profile:
	mkdir -p profiles
	$(GO) test -bench BenchmarkSimulatorThroughput -run '^$$' \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out -o profiles/bench.test .
	$(GO) tool pprof -top -nodecount 15 profiles/bench.test profiles/cpu.out
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space profiles/bench.test profiles/mem.out
