package adapt

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"ramsis/internal/core"
)

// Key identifies one solved policy in the cache: the rate bucket it was
// solved for, the SLO, and a fingerprint of everything else that shapes the
// MDP (worker profiles, knob settings). Returning to a previously seen rate
// under the same problem is a lookup, not a solve; changing the SLO or the
// worker's model set can never alias.
type Key struct {
	Bucket     float64
	SLO        float64
	ConfigHash uint64
}

// ConfigHash fingerprints the generation problem minus the arrival rate:
// the worker's profile set (task, model names, accuracies, latency tables)
// and every MDP-shaping knob. Two configs with equal hashes solve the same
// MDP family, parameterized only by rate.
func ConfigHash(cfg core.Config) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		h.Write(buf)
	}
	writeI := func(v int) {
		binary.LittleEndian.PutUint64(buf, uint64(int64(v)))
		h.Write(buf)
	}
	h.Write([]byte(cfg.Models.Task))
	for _, p := range cfg.Models.Profiles {
		h.Write([]byte(p.Name))
		writeF(p.Accuracy)
		for _, l := range p.Latency {
			writeF(l)
		}
	}
	writeI(cfg.Workers)
	writeI(int(cfg.Batching))
	writeI(int(cfg.Disc))
	writeI(cfg.D)
	writeI(cfg.MaxQueue)
	writeI(int(cfg.Balancing))
	writeI(int(cfg.Solver))
	writeF(cfg.Gamma)
	writeF(cfg.ProbFloor)
	writeI(cfg.FineCells)
	if cfg.NoParetoPruning {
		writeI(1)
	}
	if cfg.BatchWeightedReward {
		writeI(1)
	}
	// Float32 changes the solved values (precision and stopping tolerance),
	// so float32 and float64 policies never alias. AggQueue is deliberately
	// excluded: the aggregation warm start is a pure accelerator that cannot
	// move the fixed point, so its policies are interchangeable.
	if cfg.Float32 {
		writeI(2)
	}
	return h.Sum64()
}

// Cache is a thread-safe LRU of solved policies. Capacity bounds memory:
// each entry is a full per-worker policy (choices for every queue state),
// and a day of production traffic revisits a handful of rate buckets, so a
// small cache captures the diurnal cycle.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
}

type cacheEntry struct {
	key Key
	pol *core.Policy
}

// NewCache returns an LRU policy cache holding at most capacity entries
// (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the cached policy for the key, marking it most recently used.
func (c *Cache) Get(k Key) (*core.Policy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).pol, true
}

// Put inserts (or refreshes) a policy, evicting the least recently used
// entry when over capacity.
func (c *Cache) Put(k Key, pol *core.Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).pol = pol
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, pol: pol})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Nearest returns the cached policy whose key shares k's SLO and config
// hash with the rate bucket closest to k.Bucket — the warm-start donor for
// a re-solve at k.Bucket (same state space, only the arrival differs, so
// its converged value vector seeds the new solve). Ties prefer the lower
// bucket for determinism. Recency is not updated: peeking for a warm start
// must not protect an entry from eviction the way serving from it does.
func (c *Cache) Nearest(k Key) (*core.Policy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *core.Policy
	bestDist, bestBucket := math.Inf(1), math.Inf(1)
	for key, el := range c.items {
		if key.SLO != k.SLO || key.ConfigHash != k.ConfigHash {
			continue
		}
		d := math.Abs(key.Bucket - k.Bucket)
		if d < bestDist || (d == bestDist && key.Bucket < bestBucket) {
			bestDist, bestBucket = d, key.Bucket
			best = el.Value.(*cacheEntry).pol
		}
	}
	return best, best != nil
}

// Len returns the number of cached policies.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
