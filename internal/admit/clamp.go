package admit

// ClampModel degrades one model-selection decision: given the model
// indices sorted fastest-first (profile.Set.SpeedOrder) and the current
// degradation level, it returns the model to run instead of `chosen`.
// Level k forbids the k slowest models; a forbidden choice is replaced by
// the slowest still-allowed model — the closest the clamp can stay to the
// policy's accuracy choice — and an allowed choice passes through
// untouched. Level 0 (or an empty order) is the identity.
func ClampModel(speedOrder []int, level, chosen int) int {
	if level <= 0 || len(speedOrder) == 0 {
		return chosen
	}
	bound := len(speedOrder) - 1 - level
	if bound < 0 {
		bound = 0
	}
	for rank, idx := range speedOrder {
		if idx == chosen {
			if rank <= bound {
				return chosen
			}
			return speedOrder[bound]
		}
	}
	return chosen
}
