package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("trace ID %q repeated", id)
		}
		seen[id] = true
	}
}

func TestReadTracesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	for i := 0; i < 3; i++ {
		qt := mkTrace(i)
		qt.TraceID = NewTraceID()
		qt.Process = "shard-0"
		qt.Parent = "gateway"
		qt.Tenant = "gold"
		qt.Shard = 1
		if err := w.Write(qt); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d traces, want 3", len(got))
	}
	if got[1].Tenant != "gold" || got[1].Shard != 1 || got[1].Process != "shard-0" || got[1].Parent != "gateway" {
		t.Fatalf("propagation fields lost: %+v", got[1])
	}
}

func TestReadTracesRejectsMalformed(t *testing.T) {
	if _, err := ReadTraces(strings.NewReader("{\"id\":1}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestDecisionBufferWrapsOldestFirst(t *testing.T) {
	b := NewDecisionBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Decision{Kind: DecisionSelect, Batch: i})
	}
	if b.Len() != 3 {
		t.Fatalf("len %d, want 3", b.Len())
	}
	snap := b.Snapshot()
	for i, want := range []int{2, 3, 4} {
		if snap[i].Batch != want {
			t.Errorf("snapshot[%d].Batch = %d, want %d", i, snap[i].Batch, want)
		}
	}
}

func TestDecisionBufferHandler(t *testing.T) {
	b := NewDecisionBuffer(8)
	b.Add(Decision{
		Kind: DecisionSelect, TraceID: "abc", Tenant: "gold", Shard: 1,
		Worker: 3, QueueLen: 7, Model: "resnet50", Batch: 4,
		PredictedSec: 0.080, RealizedSec: 0.083, Outcome: "served",
	})
	rr := httptest.NewRecorder()
	b.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/decisions", nil))
	var got []Decision
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Model != "resnet50" || got[0].PredictedSec != 0.080 || got[0].RealizedSec != 0.083 {
		t.Fatalf("handler returned %+v", got)
	}
}

// TestDecisionBufferConcurrent hammers the ring from concurrent writers
// while snapshotting — the shape the sharded plane produces, where every
// shard's dispatch loop writes into one ring the gateway serves. Run under
// -race (make verify includes this package).
func TestDecisionBufferConcurrent(t *testing.T) {
	b := NewDecisionBuffer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Add(Decision{Kind: DecisionAdmit, Shard: g, Batch: i})
				if i%50 == 0 {
					for _, d := range b.Snapshot() {
						_ = d.Batch
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 64 {
		t.Fatalf("len %d, want full ring 64", b.Len())
	}
}

func stitchFixture() []QueryTrace {
	return []QueryTrace{
		{ID: -1, TraceID: "t1", Process: "gateway", Tenant: "gold", Shard: 1,
			Spans: []Span{{Stage: StageRoute, Seconds: 0.001}}},
		{ID: 4, TraceID: "t1", Process: "shard-1", Parent: "gateway", Tenant: "gold", Shard: 1,
			LatencyMS: 120, Model: "resnet50", Batch: 2,
			Decision: &Decision{Kind: DecisionSelect, Model: "resnet50", PredictedSec: 0.08, RealizedSec: 0.081},
			Spans: []Span{
				{Stage: StageEnqueue, Seconds: 0.0005},
				{Stage: StageBatchWait, Seconds: 0.030},
				{Stage: StageDispatch, Seconds: 0.085},
				{Stage: StageInference, Seconds: 0.082},
			}},
		{ID: -1, TraceID: "t1", Process: "worker-3", Parent: "shard-1", Worker: 3,
			LatencyMS: 81, Spans: []Span{{Stage: StageInference, Seconds: 0.081}}},
		{ID: 9, TraceID: "t2", Process: "shard-0", Tenant: "silver",
			LatencyMS: 40, Spans: []Span{{Stage: StageInference, Seconds: 0.040}}},
		{ID: 3, Process: "frontend"}, // no trace ID: unstitchable, skipped
	}
}

func TestStitchGroupsAndRoots(t *testing.T) {
	stitched := Stitch(stitchFixture())
	if len(stitched) != 2 {
		t.Fatalf("stitched %d traces, want 2", len(stitched))
	}
	s := stitched[0]
	if s.TraceID != "t1" || len(s.Fragments) != 3 {
		t.Fatalf("first stitched trace %q with %d fragments", s.TraceID, len(s.Fragments))
	}
	if root := s.Root(); root.Process != "gateway" {
		t.Errorf("root process %q, want gateway", root.Process)
	}
	path := s.Path()
	want := []string{"gateway", "shard-1", "worker-3"}
	if len(path) != len(want) {
		t.Fatalf("path length %d, want %d", len(path), len(want))
	}
	for i, p := range want {
		if path[i].Process != p {
			t.Errorf("path[%d] = %q, want %q", i, path[i].Process, p)
		}
	}
	if s.Tenant() != "gold" {
		t.Errorf("tenant %q, want gold", s.Tenant())
	}
	if f := s.Final(); f.ID != 4 {
		t.Errorf("final fragment ID %d, want 4 (the shard's end-to-end record)", f.ID)
	}
	if d := s.Decision(); d == nil || d.Model != "resnet50" {
		t.Errorf("decision = %+v", d)
	}
}

// The worker times inference closer to the execution than the dispatching
// shard does; the critical path must keep the worker's measurement, not
// list the stage twice.
func TestCriticalPathKeepsDeepestMeasurement(t *testing.T) {
	s := Stitch(stitchFixture())[0]
	cp := s.CriticalPath()
	counts := map[string]int{}
	for _, sp := range cp {
		counts[sp.Stage]++
	}
	if counts[StageInference] != 1 {
		t.Fatalf("inference appears %d times on the critical path", counts[StageInference])
	}
	for _, sp := range cp {
		if sp.Stage == StageInference && sp.Seconds != 0.081 {
			t.Errorf("inference = %v, want the worker's 0.081", sp.Seconds)
		}
	}
	if cp[0].Stage != StageRoute {
		t.Errorf("critical path starts with %q, want route", cp[0].Stage)
	}
}

// RootFallsBackWhenParentEvicted: a shard fragment whose gateway half was
// evicted from the ring must still root its own subtree.
func TestStitchRootWithEvictedParent(t *testing.T) {
	s := Stitch([]QueryTrace{
		{TraceID: "t", Process: "shard-0", Parent: "gateway"},
		{TraceID: "t", Process: "worker-1", Parent: "shard-0"},
	})[0]
	if root := s.Root(); root.Process != "shard-0" {
		t.Errorf("root %q, want shard-0", root.Process)
	}
}

func TestSLOTrackerWindows(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Objective: 0.9, Windows: []float64{10, 100}})
	if tr.Attainment(0, 10) != 1 || tr.BurnRate(0, 10) != 0 {
		t.Fatal("idle tracker must attain 1.0 and burn 0")
	}
	// 8 met + 2 missed inside the last 10 s; an old violation outside it.
	tr.Observe(1, false)
	for i := 0; i < 8; i++ {
		tr.Observe(95+float64(i)/10, true)
	}
	tr.Observe(96, false)
	tr.Observe(97, false)
	now := 100.0
	if got := tr.Attainment(now, 10); got != 0.8 {
		t.Errorf("10s attainment = %v, want 0.8", got)
	}
	// burn = violationFrac / (1-objective) = 0.2 / 0.1 = 2.
	if got := tr.BurnRate(now, 10); got < 1.999 || got > 2.001 {
		t.Errorf("10s burn rate = %v, want 2", got)
	}
	// The long window also sees the early miss: 3 bad of 11.
	if got := tr.BurnRate(now, 100); got < 2.7 || got > 2.8 {
		t.Errorf("100s burn rate = %v, want ~2.727", got)
	}
	if tr.LastNow() != 97 {
		t.Errorf("LastNow = %v, want 97", tr.LastNow())
	}
}

// A lapped ring slot must forget the observations from a previous epoch
// instead of double counting them.
func TestSLOTrackerRingLaps(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Windows: []float64{60}})
	tr.Observe(1, false)
	// 60/512 s buckets: time 1+60*k laps the slot after k rings.
	tr.Observe(1+120, true)
	total, bad := tr.window(121, 60)
	if total != 1 || bad != 0 {
		t.Errorf("window after lap = total %d bad %d, want 1/0", total, bad)
	}
}

func TestSLOTrackerConcurrent(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(float64(g*500+i)/100, i%7 != 0)
				if i%100 == 0 {
					tr.Attainment(float64(i), 60)
					tr.BurnRate(float64(i), 60)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSLOGaugesGolden pins the ramsis_slo_* exposition: label shape, window
// values, and the burn-rate arithmetic, as an external scraper sees them.
func TestSLOGaugesGolden(t *testing.T) {
	reg := NewRegistry()
	gold := NewSLOTracker(SLOConfig{Windows: []float64{60, 300}})
	bronze := NewSLOTracker(SLOConfig{Windows: []float64{60, 300}})
	// gold: 100 served, all met. bronze: 100 served, 5 missed inside the
	// short window — burn 5 at the default 0.99 objective.
	for i := 0; i < 100; i++ {
		gold.Observe(float64(i)/10, true)
		bronze.Observe(float64(i)/10, i%20 != 0)
	}
	now := func() float64 { return 10 }
	RegisterSLOGauges(reg, gold, "gold", now)
	RegisterSLOGauges(reg, bronze, "bronze", now)

	var b bytes.Buffer
	reg.WritePrometheus(&b)
	golden := filepath.Join("testdata", "slo.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", b.Bytes(), want)
	}
}

func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.5, "trace-b")
	h.Observe(0.06) // plain observe must not disturb the stored exemplar
	if id, v, ok := h.Exemplar(0.05); !ok || id != "trace-a" || v != 0.05 {
		t.Errorf("bucket 0 exemplar = %q %v %v", id, v, ok)
	}
	if id, _, ok := h.Exemplar(0.5); !ok || id != "trace-b" {
		t.Errorf("bucket 1 exemplar = %q %v", id, ok)
	}
	var b bytes.Buffer
	h.write(&b, "m", "")
	out := b.String()
	if !strings.Contains(out, `# {trace_id="trace-a"} 0.05`) {
		t.Errorf("exposition lacks exemplar suffix:\n%s", out)
	}
}

// Exemplar-free histograms must write the exact legacy format — no
// trailing suffix — so existing goldens and scrapers are unaffected.
func TestHistogramWithoutExemplarsUnchanged(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	var b bytes.Buffer
	h.write(&b, "m", "")
	if strings.Contains(b.String(), "#") {
		t.Errorf("plain histogram emitted an exemplar:\n%s", b.String())
	}
}
