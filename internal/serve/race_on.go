//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in. Timing-
// sensitive tests consult it: the detector slows the serving path several
// fold, so goodput thresholds calibrated for plain builds would measure
// the detector, not the policy.
const raceEnabled = true
