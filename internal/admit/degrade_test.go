package admit

import "testing"

// feedWindow pushes n observations with the given shed count spread over
// one window ending at (start + window), returning the end time.
func feedWindow(d *Degrader, start, window float64, n, shed int, wait float64) float64 {
	dt := window / float64(n)
	for i := 0; i < n; i++ {
		now := start + dt*float64(i+1)
		d.Observe(now, i < shed, wait)
	}
	return start + window
}

func TestDegraderEscalatesUnderSustainedShedding(t *testing.T) {
	d := NewDegrader(DegradeConfig{MaxLevel: 3, Window: 1, EnterShedRate: 0.05, Hold: 3})
	now := 0.0
	// Three windows at a 50% shed rate: one escalation per window, capped
	// at MaxLevel on the fourth.
	for i, want := range []int{1, 2, 3, 3} {
		now = feedWindow(d, now, 1, 20, 10, 0)
		if got := d.Level(); got != want {
			t.Fatalf("window %d: level = %d, want %d", i+1, got, want)
		}
	}
	if s := d.Stats(); s.Escalations != 3 {
		t.Errorf("escalations = %d, want 3", s.Escalations)
	}
}

func TestDegraderRecoversAfterHold(t *testing.T) {
	d := NewDegrader(DegradeConfig{MaxLevel: 2, Window: 1, EnterShedRate: 0.05, Hold: 3})
	now := feedWindow(d, 0, 1, 20, 10, 0)
	now = feedWindow(d, now, 1, 20, 10, 0)
	if d.Level() != 2 {
		t.Fatalf("level = %d after two pressured windows, want 2", d.Level())
	}
	// Clear windows: no step down until a full Hold (3 s) has passed
	// pressure-free, then one level per Hold.
	now = feedWindow(d, now, 1, 20, 0, 0)
	now = feedWindow(d, now, 1, 20, 0, 0)
	if d.Level() != 2 {
		t.Fatalf("level dropped to %d before Hold elapsed", d.Level())
	}
	now = feedWindow(d, now, 1, 20, 0, 0) // 3 s clear: step to 1
	if d.Level() != 1 {
		t.Fatalf("level = %d after Hold, want 1", d.Level())
	}
	for i := 0; i < 3; i++ {
		now = feedWindow(d, now, 1, 20, 0, 0)
	}
	if d.Level() != 0 {
		t.Fatalf("level = %d after second Hold, want 0", d.Level())
	}
	if s := d.Stats(); s.Deescalations != 2 {
		t.Errorf("deescalations = %d, want 2", s.Deescalations)
	}
}

func TestDegraderHysteresisHoldsLevelInTheGap(t *testing.T) {
	// Shed rate between exit (2.5%) and entry (5%) thresholds: the level
	// must neither escalate nor recover — no flapping at the boundary.
	d := NewDegrader(DegradeConfig{MaxLevel: 2, Window: 1, EnterShedRate: 0.05, Hold: 2})
	now := feedWindow(d, 0, 1, 20, 10, 0) // escalate to 1
	if d.Level() != 1 {
		t.Fatalf("setup failed: level = %d", d.Level())
	}
	for i := 0; i < 6; i++ {
		now = feedWindow(d, now, 1, 100, 3, 0) // 3% shed: in the gap
	}
	if d.Level() != 1 {
		t.Errorf("level = %d after boundary windows, want 1 (hysteresis)", d.Level())
	}
}

func TestDegraderWaitTriggerFiresWithoutShedding(t *testing.T) {
	d := NewDegrader(DegradeConfig{MaxLevel: 1, Window: 1, EnterWait: 0.5, Hold: 2})
	feedWindow(d, 0, 1, 10, 0, 0.6) // wait above threshold, nothing shed
	if d.Level() != 1 {
		t.Errorf("level = %d, want 1 (wait trigger)", d.Level())
	}
}

func TestDegraderDisabledAtMaxLevelZero(t *testing.T) {
	d := NewDegrader(DegradeConfig{})
	feedWindow(d, 0, 1, 20, 20, 10)
	if d.Level() != 0 {
		t.Errorf("disabled degrader reached level %d", d.Level())
	}
}

func TestDegraderOnChangeObservesTransitions(t *testing.T) {
	var ups, downs int
	d := NewDegrader(DegradeConfig{MaxLevel: 1, Window: 1, EnterShedRate: 0.05, Hold: 1})
	d.OnChange = func(level int, up bool) {
		if up {
			ups++
		} else {
			downs++
		}
	}
	now := feedWindow(d, 0, 1, 20, 10, 0)
	now = feedWindow(d, now, 1, 20, 0, 0)
	feedWindow(d, now, 1, 20, 0, 0)
	if ups != 1 || downs != 1 {
		t.Errorf("OnChange saw %d ups / %d downs, want 1 / 1", ups, downs)
	}
}
