// Command soak drives the sharded multi-tenant serving plane at six-figure
// wall QPS on localhost and verifies the PR's serving claim end to end: with
// one tenant offering 4× its contracted rate, the compliant tenants keep
// goodput at or above the floor, the overloader is shed down to its fair
// share without starving, and every per-tenant number is read back from the
// gateway's /metrics exposition (not from in-process state).
//
//	soak                        # full scale: ≥100k offered wall QPS, 4 shards
//	soak -target-qps 2000 -dur 2s   # CI smoke scale
//	soak -saturate -dur 5s          # TimeScale=1 wall-clock saturation probe
//
// Saturation mode (-saturate) answers a different question: instead of
// pacing a contracted mix under modeled-time compression, it offers queries
// through the gateway's in-process injection path as fast as the host can
// generate them at TimeScale=1 and reports the measured wall-clock QPS
// ceiling of the data plane plus the gateway-process CPU cost per query
// (getrusage delta / queries). Admission sheds what the workers cannot
// drain — the ceiling is the per-query serving overhead limit, the number
// the zero-allocation query-path work is gated on. -cpuprofile captures a
// CPU profile of the injection window for `go tool pprof -top`.
//
// Every assertion is logged as one structured line carrying the scraped
// values it was judged on; -metrics-out and -trace-out save the final
// exposition and the plane's merged trace JSONL as build artifacts.
//
// Exit status is 0 only if every assertion holds.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ramsis/internal/profile"
	"ramsis/internal/serve"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// soakTenants is the contract set, in modeled QPS. The overloader carries
// most of the contracted capacity so the offered:admitted ratio stays near
// 3.5:1 — at a six-figure offered wall rate the admitted stream the workers
// must genuinely drain stays within a small host's budget, with everything
// past it shed on the cheap admission path. Bronze's borrowed backlog is
// held off the queues by the plane's borrow reserve, so gold and silver
// keep their queue slots even though bronze supplies ~95% of arrivals.
func soakTenants(sloScale float64) []tenant.Tenant {
	return []tenant.Tenant{
		// Compliant tenants get deep token buckets: a wall-clock stall at
		// a four-digit time scale compresses tens of modeled seconds of
		// arrivals into one burst, and a shallow bucket would shed traffic
		// that is within contract on average. The overloader stays on a
		// tight bucket so its excess is metered out immediately.
		{Name: "gold", Class: "interactive", SLOMS: 15000 * sloScale, Weight: 2, RateQPS: 2, BurstSec: 10},
		{Name: "silver", Class: "standard", SLOMS: 30000 * sloScale, Weight: 1, RateQPS: 1.5, BurstSec: 10},
		{Name: "bronze", Class: "batch", SLOMS: 60000 * sloScale, Weight: 0.2, RateQPS: 17.5, BurstSec: 2},
	}
}

func main() {
	var (
		shards     = flag.Int("shards", 4, "frontend shard count")
		workers    = flag.Int("workers", 1, "workers per shard")
		targetQPS  = flag.Float64("target-qps", 105000, "offered wall QPS across all tenants (sets the time scale)")
		qpsFloor   = flag.Float64("qps-floor", 100000, "minimum achieved offered wall QPS for the soak to pass")
		floor      = flag.Float64("goodput-floor", 0.9, "minimum goodput for compliant tenants")
		overload   = flag.Float64("overload", 4, "offered-rate multiple for the overloading tenant (bronze)")
		dur        = flag.Duration("dur", 5*time.Second, "injection duration (wall clock)")
		d          = flag.Int("d", 40, "FLD resolution for the per-tenant policy solves")
		seed       = flag.Int64("seed", 1, "worker and balancer seed")
		timeScale  = flag.Float64("timescale", 0, "modeled-to-wall compression (0 = derived from -target-qps)")
		sloScale   = flag.Float64("slo-scale", 1, "scale factor on the built-in tenant SLOs")
		metricsOut = flag.String("metrics-out", "", "write the final /metrics scrape to this file (CI artifact)")
		traceOut   = flag.String("trace-out", "", "stream the plane's merged trace fragments as JSONL to this file (CI artifact; stitch with `trace -stitch`)")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt     = flag.String("log-format", "text", "log format: text or json")

		saturate = flag.Bool("saturate", false, "saturation mode: offer queries as fast as possible at TimeScale=1 and report the wall-clock QPS ceiling")
		clients  = flag.Int("clients", 0, "saturation mode: injector goroutines (default max(2, GOMAXPROCS))")
		satFloor = flag.Float64("saturate-floor", 0, "saturation mode: fail unless the measured QPS ceiling reaches this (0 = report only)")
		cpuProf  = flag.String("cpuprofile", "", "saturation mode: write a CPU profile of the injection window to this file")
	)
	flag.Parse()
	logger, err := telemetry.SetupLogging(*logLevel, *logFmt, "soak")
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}

	tenants := soakTenants(*sloScale)
	offeredModeled, totalRate := 0.0, 0.0
	for _, t := range tenants {
		totalRate += t.RateQPS
		r := t.RateQPS
		if t.Name == "bronze" {
			r *= *overload
		}
		offeredModeled += r
	}
	ts := *timeScale
	if ts <= 0 {
		ts = *targetQPS / offeredModeled
	}
	if *saturate {
		// Saturation measures the real wall-clock data plane: no modeled-time
		// compression unless explicitly overridden.
		ts = 1
		if *timeScale > 0 {
			ts = *timeScale
		}
	}

	// Restrict the zoo to models that can sustain the per-worker aggregate
	// admitted rate. The soak's modeled SLOs are necessarily lax (wall
	// scheduler jitter is multiplied by the time scale), and under a lax
	// SLO the solver has no reason to avoid a model whose full-queue wait
	// still meets the deadline — even one whose throughput the admitted
	// stream exceeds. Operators curate the zoo to the contracted load for
	// the same reason.
	perWorker := totalRate / float64(*shards*(*workers))
	models := profile.AblationImageSet()
	var keep []string
	for _, p := range models.Profiles {
		if p.Throughput() >= perWorker {
			keep = append(keep, p.Name)
		}
	}
	if len(keep) == 0 {
		logger.Error("no model sustains per-worker rate", "perWorkerQps", perWorker)
		os.Exit(1)
	}
	models = models.Subset(keep...)

	var tw *telemetry.TraceWriter
	if *traceOut != "" {
		fh, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			logger.Error("trace-out open failed", "err", err)
			os.Exit(1)
		}
		defer fh.Close()
		tw = telemetry.NewTraceWriter(fh)
	}

	logger.Info("soak starting",
		"shards", *shards, "workersPerShard", *workers,
		"timescale", ts, "offeredModeledQps", offeredModeled,
		"offeredWallQps", offeredModeled*ts, "dur", dur.String(),
		"tenantPolicies", len(tenants))
	c, err := serve.StartShardedCluster(serve.ShardedConfig{
		Models:          models,
		Tenants:         tenants,
		Shards:          *shards,
		WorkersPerShard: *workers,
		TimeScale:       ts,
		Seed:            *seed,
		D:               *d,
		ShardBy:         "p2c", // spread each tenant's stream across shards
		// The online cap gets 6× the MDP bound in slack and almost all of
		// it is reserved against borrowing: the borrow boundary stays at
		// 16 outstanding per shard (short queues ahead of compliant
		// queries) while compliant traffic has ~176 slots to ride out
		// wall-clock stalls, which at this time scale arrive as bursts of
		// modeled arrivals.
		QueueSlack:  6,
		Fair:        tenant.FairConfig{BurstSec: 1, BorrowReserve: 32**workers*6 - 16},
		Telemetry:   telemetry.NewRegistry(),
		TraceWriter: tw,
	})
	if err != nil {
		logger.Error("cluster start failed", "err", err)
		os.Exit(1)
	}
	defer c.Stop()

	if *saturate {
		code := runSaturate(c, tenants, logger, *dur, *clients, *satFloor, *cpuProf, *metricsOut)
		c.Stop()
		os.Exit(code)
	}

	// Inject in-process through Gateway.Route (the HTTP hop stays on the
	// worker dispatch path, where batching amortizes it; per-query HTTP at
	// 100k QPS would only measure the client). Batched catch-up pacing:
	// per-query sleeps cannot reach six-figure rates.
	logger.Info("injecting", "dur", dur.String())
	start := time.Now()
	var wg sync.WaitGroup
	for _, t := range tenants {
		rate := t.RateQPS * ts
		if t.Name == "bronze" {
			rate *= *overload
		}
		wg.Add(1)
		go func(name string, rate float64) {
			defer wg.Done()
			const tick = 2 * time.Millisecond
			begin := time.Now()
			sent := 0
			for {
				elapsed := time.Since(begin)
				if elapsed >= *dur {
					return
				}
				for want := int(rate * elapsed.Seconds()); sent < want; sent++ {
					_, _ = c.Gateway.Route(name)
				}
				time.Sleep(tick)
			}
		}(t.Name, rate)
	}
	wg.Wait()
	wallDur := time.Since(start).Seconds()
	time.Sleep(500 * time.Millisecond) // drain in-flight batches

	// Refresh the goodput gauges, then read every per-tenant figure back
	// through the exposition — the soak verifies what an external scraper
	// would see, not internal state.
	if _, err := http.Get(c.URL() + "/stats"); err != nil {
		logger.Error("stats refresh failed", "err", err)
		os.Exit(1)
	}
	series, raw, err := scrapeMetrics(c.URL() + "/metrics")
	if err != nil {
		logger.Error("metrics scrape failed", "err", err)
		os.Exit(1)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, raw, 0o644); err != nil {
			logger.Error("metrics-out write failed", "err", err)
			os.Exit(1)
		}
		logger.Info("final exposition saved", "path", *metricsOut, "bytes", len(raw))
	}

	failed := false
	// assert logs one structured line per soak assertion with the scraped
	// values it was judged on, and latches overall failure.
	assert := func(name string, pass bool, kv ...any) {
		kv = append([]any{"assertion", name, "pass", pass}, kv...)
		if pass {
			logger.Info("assertion", kv...)
			return
		}
		failed = true
		logger.Error("assertion FAILED", kv...)
	}

	offered := 0.0
	for _, t := range tenants {
		served := series[key(telemetry.MetricTenantQueries, t.Name)]
		violations := series[key(telemetry.MetricTenantViolations, t.Name)]
		shed := series[key(telemetry.MetricTenantShed, t.Name)]
		goodput := series[key(telemetry.MetricTenantGoodput, t.Name)]
		burn := series[sloKey(telemetry.MetricSLOBurnRate, t.Name, "60")]
		offered += served + shed
		logger.Info("tenant breakdown (scraped from /metrics)",
			"tenant", t.Name, "offered", served+shed, "served", served,
			"shed", shed, "violations", violations, "goodput", goodput,
			"burnRate60s", burn)

		switch t.Name {
		case "bronze":
			assert("overloader is shed", shed > 0, "tenant", t.Name, "shed", shed)
			assert("overloader not starved", served > 0, "tenant", t.Name, "served", served)
		default:
			assert("compliant goodput holds floor", goodput >= *floor,
				"tenant", t.Name, "goodput", goodput, "floor", *floor)
		}
	}
	achieved := offered / wallDur
	assert("offered rate holds floor", achieved >= *qpsFloor,
		"achievedWallQps", achieved, "wallDur", wallDur, "floor", *qpsFloor)

	if failed {
		logger.Error("soak FAILED")
		os.Exit(1)
	}
	logger.Info("soak passed", "achievedWallQps", achieved)
}

// runSaturate is the -saturate flow: open-loop injection through the
// gateway's fire-and-forget path from a fixed pool of client goroutines for
// the configured duration, then one report of the measured wall-clock QPS
// ceiling and the process CPU burned per offered query. Returns the process
// exit code.
func runSaturate(c *serve.ShardedCluster, tenants []tenant.Tenant, logger *slog.Logger, dur time.Duration, clients int, floor float64, cpuProfile, metricsOut string) int {
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
		if clients < 2 {
			clients = 2
		}
	}
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.Name
	}

	if cpuProfile != "" {
		fh, err := os.Create(cpuProfile)
		if err != nil {
			logger.Error("cpuprofile open failed", "err", err)
			return 1
		}
		defer fh.Close()
		if err := pprof.StartCPUProfile(fh); err != nil {
			logger.Error("cpuprofile start failed", "err", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var before syscall.Rusage
	_ = syscall.Getrusage(syscall.RUSAGE_SELF, &before)
	logger.Info("saturating", "clients", clients, "dur", dur.String())
	var total atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := names[g%len(names)]
			n := int64(0)
			for !stop.Load() {
				c.Gateway.RouteAsync(name)
				n++
			}
			total.Add(n)
		}(g)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	wall := time.Since(start).Seconds()
	var after syscall.Rusage
	_ = syscall.Getrusage(syscall.RUSAGE_SELF, &after)

	offered := total.Load()
	ceiling := float64(offered) / wall
	cpuSec := rusageSeconds(after) - rusageSeconds(before)
	cpuPerQuery := 0.0
	if offered > 0 {
		cpuPerQuery = cpuSec / float64(offered)
	}
	logger.Info("saturation ceiling",
		"offeredQueries", offered, "wallSec", wall,
		"wallQpsCeiling", ceiling,
		"cpuSec", cpuSec, "cpuMicrosPerQuery", cpuPerQuery*1e6,
		"clients", clients, "gomaxprocs", runtime.GOMAXPROCS(0))

	if metricsOut != "" {
		if _, raw, err := scrapeMetrics(c.URL() + "/metrics"); err == nil {
			if werr := os.WriteFile(metricsOut, raw, 0o644); werr == nil {
				logger.Info("final exposition saved", "path", metricsOut, "bytes", len(raw))
			}
		}
	}
	if floor > 0 && ceiling < floor {
		logger.Error("saturation FAILED", "wallQpsCeiling", ceiling, "floor", floor)
		return 1
	}
	return 0
}

// rusageSeconds sums user+system CPU time of a rusage snapshot.
func rusageSeconds(r syscall.Rusage) float64 {
	return float64(r.Utime.Sec) + float64(r.Utime.Usec)/1e6 +
		float64(r.Stime.Sec) + float64(r.Stime.Usec)/1e6
}

func key(metric, tenantName string) string {
	return metric + `{tenant="` + tenantName + `"}`
}

// sloKey is the exposition key of a ramsis_slo_* series: tenant plus the
// window label, alphabetical like the registry writes them.
func sloKey(metric, tenantName, window string) string {
	return metric + `{tenant="` + tenantName + `",window="` + window + `"}`
}

// scrapeMetrics fetches a Prometheus text exposition and returns each
// sample keyed by `name{labels}` exactly as exposed, plus the raw body for
// artifact upload. Histogram bucket lines may carry OpenMetrics-style
// exemplars (` # {trace_id="..."} v`); the suffix is stripped before the
// value parse.
func scrapeMetrics(url string) (map[string]float64, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, raw, sc.Err()
}
