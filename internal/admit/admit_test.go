package admit

import (
	"strings"
	"testing"
)

// fixedEst is a linear test estimator: each outstanding query adds perQ
// seconds of wait, and service costs svc seconds.
type fixedEst struct {
	perQ, svc float64
}

func (f fixedEst) Wait(outstanding int) float64 { return float64(outstanding) * f.perQ }
func (f fixedEst) Service() float64             { return f.svc }

func TestNoneAdmitsEverything(t *testing.T) {
	a := None{}
	for _, out := range []int{0, 1, 1 << 20} {
		if v := a.Admit(Request{Outstanding: out}); !v.Admit {
			t.Fatalf("None shed a query at outstanding=%d", out)
		}
	}
}

func TestDeadlineShedsUnmeetableQueries(t *testing.T) {
	// 10 ms of wait per queued query, 20 ms service, 100 ms SLO: the
	// deadline test admits while wait + service <= SLO, i.e. up to 8
	// outstanding queries (80 + 20 = 100 ms).
	d := Deadline{SLO: 0.100, Margin: 1, Est: fixedEst{perQ: 0.010, svc: 0.020}}
	for out := 0; out <= 8; out++ {
		if v := d.Admit(Request{Outstanding: out}); !v.Admit {
			t.Fatalf("deadline shed a meetable query at outstanding=%d", out)
		}
	}
	v := d.Admit(Request{Outstanding: 9})
	if v.Admit {
		t.Fatal("deadline admitted a query whose deadline is unmeetable")
	}
	// Excess is 90+20-100 = 10 ms: the Retry-After hint.
	if got, want := v.RetryAfter, 0.010; !approx(got, want) {
		t.Errorf("RetryAfter = %v, want %v", got, want)
	}
	if got, want := v.EstWait, 0.090; !approx(got, want) {
		t.Errorf("EstWait = %v, want %v", got, want)
	}
}

func TestDeadlineMarginScalesTheDeadline(t *testing.T) {
	est := fixedEst{perQ: 0.010, svc: 0.020}
	tight := Deadline{SLO: 0.100, Margin: 0.5, Est: est} // budget 50 ms
	if v := tight.Admit(Request{Outstanding: 4}); v.Admit {
		t.Error("margin 0.5 should shed at 40+20 > 50 ms")
	}
	loose := Deadline{SLO: 0.100, Margin: 2, Est: est} // budget 200 ms
	if v := loose.Admit(Request{Outstanding: 17}); !v.Admit {
		t.Error("margin 2 should admit at 170+20 <= 200 ms")
	}
}

func TestCapBoundsOutstanding(t *testing.T) {
	c := Cap{Limit: 4, Est: fixedEst{perQ: 0.010, svc: 0.020}}
	for out := 0; out < 4; out++ {
		if v := c.Admit(Request{Outstanding: out}); !v.Admit {
			t.Fatalf("cap shed below the bound at outstanding=%d", out)
		}
	}
	v := c.Admit(Request{Outstanding: 4})
	if v.Admit {
		t.Fatal("cap admitted at the bound")
	}
	if v.RetryAfter <= 0 {
		t.Errorf("cap shed verdict carries no Retry-After hint: %v", v.RetryAfter)
	}
}

func TestCapWithoutEstimatorStillHints(t *testing.T) {
	v := Cap{Limit: 1}.Admit(Request{Outstanding: 5})
	if v.Admit || v.RetryAfter != 1 {
		t.Errorf("estimator-less cap verdict = %+v, want shed with 1 s hint", v)
	}
}

func TestNewSelectsPolicies(t *testing.T) {
	est := fixedEst{perQ: 0.010, svc: 0.020}
	for name, want := range map[string]string{
		"":         "none",
		"none":     "none",
		"deadline": "deadline",
		"cap":      "cap",
		"Deadline": "deadline", // case-insensitive
	} {
		a, err := New(name, 0.1, 1, 8, est)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != want {
			t.Errorf("New(%q).Name() = %q, want %q", name, a.Name(), want)
		}
	}
	if _, err := New("bogus", 0.1, 1, 8, est); err == nil {
		t.Error("New accepted an unknown policy")
	}
	if _, err := New("deadline", 0.1, 1, 8, nil); err == nil ||
		!strings.Contains(err.Error(), "estimator") {
		t.Errorf("deadline without estimator: err = %v", err)
	}
	if _, err := New("cap", 0.1, 1, 0, est); err == nil {
		t.Error("New accepted cap with no bound")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want int
	}{{0, 1}, {0.3, 1}, {1, 1}, {1.2, 2}, {7.9, 8}} {
		if got := RetryAfterSeconds(tc.in); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
