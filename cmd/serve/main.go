// Command serve runs the client-server prototype end to end on localhost:
// it starts worker HTTP servers, generates a RAMSIS policy, replays a
// Poisson workload through the central controller, and reports the achieved
// accuracy and violation rate.
//
//	serve --task image --slo 150 --workers 4 --load 120 --dur 10
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"ramsis/internal/adapt"
	"ramsis/internal/admit"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/lb"
	"ramsis/internal/llm"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/serve"
	"ramsis/internal/sim"
	"ramsis/internal/stats"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
	"ramsis/internal/trace"
)

// shardedOpts carries the single-tenant flags the sharded plane reuses.
type shardedOpts struct {
	workers      int
	timeScale    float64
	noiseMS      float64
	seed         int64
	d            int
	maxQueue     int
	lb           string
	addr         string
	degradeDepth int
	adaptive     bool
	traceOut     string
}

// runSharded starts the multi-tenant sharded serving plane from a tenant
// contract file and serves until interrupted. Every single-tenant flag
// keeps its meaning; -workers counts per shard.
func runSharded(models profile.Set, file string, shards int, shardBy string, o shardedOpts) {
	data, err := os.ReadFile(file)
	if err != nil {
		log.Fatal(err)
	}
	tenants, err := tenant.Parse(data)
	if err != nil {
		log.Fatal(err)
	}
	var tw *telemetry.TraceWriter
	if o.traceOut != "" {
		fh, err := os.OpenFile(o.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		// One writer plane-wide: gateway, shard, and worker fragments land
		// in the same JSONL stream, so the file stitches without a merge.
		tw = telemetry.NewTraceWriter(fh)
	}
	fmt.Printf("solving %d per-tenant policies (%d shards x %d workers, %s sharding)...\n",
		len(tenants), shards, o.workers, shardBy)
	cluster, err := serve.StartShardedCluster(serve.ShardedConfig{
		Models:          models,
		Tenants:         tenants,
		TenantFile:      file,
		Shards:          shards,
		WorkersPerShard: o.workers,
		TimeScale:       o.timeScale,
		LatencyStdDev:   o.noiseMS / 1000,
		Seed:            o.seed,
		D:               o.d,
		MaxQueue:        o.maxQueue,
		ShardBy:         shardBy,
		LB:              o.lb,
		Addr:            o.addr,
		DegradeDepth:    o.degradeDepth,
		Adaptive:        o.adaptive,
		TraceWriter:     tw,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	fmt.Printf("multi-tenant gateway at %s (%d tenants)\n", cluster.URL(), len(tenants))
	for _, t := range tenants {
		fmt.Printf("  tenant %-12s class %-12s SLO %6.0f ms, weight %.1f, contracted %.0f QPS\n",
			t.Name, t.Class, t.SLOMS, t.Weight, t.RateQPS)
	}
	fmt.Printf("try: curl -X POST %s/query -H 'X-Tenant: %s' -d '{}'\n", cluster.URL(), tenants[0].Name)
	fmt.Printf("     curl %s/stats\n", cluster.URL())
	fmt.Printf("     curl %s/metrics\n", cluster.URL())
	fmt.Printf("     curl -X POST %s/reload   # after editing %s\n", cluster.URL(), file)
	select {} // serve until interrupted
}

// llmOpts carries the flag subset the LLM serving path consumes.
type llmOpts struct {
	profilePath string
	class       string
	kvCap       int
	bucket      int
	slo         float64
	workers     int
	load        float64
	dur         float64
	timeScale   float64
	seed        int64
	solver      core.Solver
	solveF32    bool
	traceOut    string
}

// runLLMServe starts continuous-batching LLM workers, generates the
// token-stream policy, and replays a token-annotated Poisson workload
// through them over real HTTP. TTFT is measured twice: by the worker in
// modeled time and by the client off the first streamed byte, so the
// summary separates the model's prediction from the wire reality.
func runLLMServe(o llmOpts) {
	models := llm.BuiltinSet()
	if o.profilePath != "" {
		var err error
		if models, err = llm.LoadSetFile(o.profilePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d step models from %s\n", models.Len(), o.profilePath)
	}
	class, err := llm.ClassByName(o.class)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generating token-stream policy (%s, %s class, SLO %.0f ms, %d workers, %.0f QPS)...\n",
		models.Task, class.Name, o.slo*1000, o.workers, o.load)
	pol, err := core.GenerateLLM(core.LLMConfig{
		Models: models, SLO: o.slo, Workers: o.workers, Rate: o.load,
		In: class.In, Out: class.Out, KVCap: o.kvCap, TokenBucket: o.bucket,
		Solver: o.solver, Float32: o.solveF32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy: %d states, %d transitions, %d iterations (build %s, solve %s)\n",
		pol.States, pol.Transitions, pol.Iterations,
		pol.BuildTime.Round(time.Millisecond), pol.SolveTime.Round(time.Millisecond))
	sel, err := sim.NewLLMPolicySelector(pol, models)
	if err != nil {
		log.Fatal(err)
	}

	var tw *telemetry.TraceWriter
	if o.traceOut != "" {
		fh, err := os.OpenFile(o.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		tw = telemetry.NewTraceWriter(fh)
	}

	// One registry across workers: counters and histograms merge, the KV
	// gauge stays per-worker via its index label.
	registry := telemetry.NewRegistry()
	urls := make([]string, o.workers)
	for i := range urls {
		w := serve.NewLLMWorker(models, o.slo, o.timeScale, sel)
		w.KVCap = o.kvCap
		w.Telemetry = registry
		w.Name = fmt.Sprintf("llm-worker-%d", i)
		w.Index = i
		w.TraceWriter = tw
		if err := w.Start(); err != nil {
			log.Fatal(err)
		}
		defer w.Stop()
		urls[i] = w.URL()
		fmt.Printf("worker %d listening at %s\n", i, urls[i])
	}

	events := trace.TokenArrivals(trace.Constant(o.load, o.dur), o.seed, class.In, class.Out)
	fmt.Printf("replaying %d token-annotated queries over %.0fs (wall %.0fs)...\n",
		len(events), o.dur, o.dur/o.timeScale)

	// Client-side join-shortest-token-queue routing: the replay tracks each
	// worker's outstanding token load like the engine's balancer does.
	outTok := make([]int, o.workers)
	var mu sync.Mutex
	type reply struct {
		res serve.GenResult
		err error
	}
	replies := make([]reply, len(events))
	var wg sync.WaitGroup
	client := &http.Client{}
	start := time.Now()
	for i, ev := range events {
		time.Sleep(time.Until(start.Add(time.Duration(ev.T / o.timeScale * float64(time.Second)))))
		need := ev.Prefill + ev.Decode
		mu.Lock()
		wi := 0
		for j := 1; j < o.workers; j++ {
			if outTok[j] < outTok[wi] {
				wi = j
			}
		}
		outTok[wi] += need
		mu.Unlock()
		wg.Add(1)
		go func(i, wi, need int, ev trace.TokenEvent) {
			defer wg.Done()
			res, err := serve.PostGenerate(client, urls[wi], ev.Prefill, ev.Decode)
			mu.Lock()
			outTok[wi] -= need
			mu.Unlock()
			replies[i] = reply{res: res, err: err}
		}(i, wi, need, ev)
	}
	wg.Wait()

	acc := map[string]float64{}
	for _, m := range models.Models {
		acc[m.Name] = m.Accuracy
	}
	var served, failed, violations int
	var satAcc float64
	var lats, ttfts, wireTTFTs, tbts []float64
	counts := map[string]int{}
	for _, r := range replies {
		if r.err != nil {
			failed++
			continue
		}
		served++
		s := r.res.Summary
		lats = append(lats, s.Latency)
		ttfts = append(ttfts, s.TTFT)
		wireTTFTs = append(wireTTFTs, r.res.TTFTWall*o.timeScale)
		if s.Decode > 1 {
			tbts = append(tbts, (s.Latency-s.TTFT)/float64(s.Decode-1))
		}
		counts[s.Model]++
		if s.Latency > o.slo {
			violations++
		} else {
			satAcc += acc[s.Model]
		}
	}
	if served == 0 {
		log.Fatal("no queries served")
	}
	pct := func(xs []float64, p float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return stats.Percentile(xs, p) * 1000
	}
	fmt.Printf("served / failed:             %d / %d\n", served, failed)
	fmt.Printf("accuracy/satisfied query:    %.4f\n", satAcc/float64(max(served-violations, 1)))
	fmt.Printf("latency SLO violation rate:  %.4f%%\n", float64(violations)/float64(served)*100)
	fmt.Printf("latency p50/p95/p99 (ms):    %.1f / %.1f / %.1f\n", pct(lats, 50), pct(lats, 95), pct(lats, 99))
	fmt.Printf("TTFT p50/p95/p99 (ms):       %.1f / %.1f / %.1f\n", pct(ttfts, 50), pct(ttfts, 95), pct(ttfts, 99))
	fmt.Printf("wire TTFT p50/p95/p99 (ms):  %.1f / %.1f / %.1f (client first-byte, incl. HTTP)\n",
		pct(wireTTFTs, 50), pct(wireTTFTs, 95), pct(wireTTFTs, 99))
	fmt.Printf("mean TBT p50/p95/p99 (ms):   %.1f / %.1f / %.1f\n", pct(tbts, 50), pct(tbts, 95), pct(tbts, 99))
	fmt.Println("model usage (queries):")
	for name, c := range counts {
		fmt.Printf("  %-22s %d\n", name, c)
	}
	fmt.Printf("policy expectation:          accuracy %.4f, violation %.4f%%\n",
		pol.ExpectedAccuracy, pol.ExpectedViolation*100)
	fmt.Println("script complete!")
}

func main() {
	var (
		workload  = flag.String("workload", "scalar", "workload kind: scalar (profile-table batches) or llm (token streams through continuous-batching workers)")
		task      = flag.String("task", "image", "inference task: image or text")
		sloMS     = flag.Float64("slo", 150, "latency SLO in milliseconds")
		workers   = flag.Int("workers", 4, "number of worker servers")
		load      = flag.Float64("load", 120, "query load in QPS")
		dur       = flag.Float64("dur", 10, "trace duration in modeled seconds")
		timeScale = flag.Float64("timescale", 1, "modeled-to-wall time compression factor")
		noiseMS   = flag.Float64("noise", 10, "inference latency stddev in ms")
		d         = flag.Int("d", 100, "FLD resolution")
		seed      = flag.Int64("seed", 1, "workload seed")
		frontend  = flag.Bool("frontend", false, "serve a live POST /query API instead of replaying a trace (Ctrl-C to stop)")
		lbArg     = flag.String("lb", "rr", "load balancer across worker queues: rr, jsq, or p2c")
		addr      = flag.String("addr", "127.0.0.1:8080", "frontend listen address (frontend mode)")
		traceOut  = flag.String("trace-out", "", "append query trace fragments as JSONL to this file (frontend and multi-tenant modes; stitch with `trace -stitch`)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt    = flag.String("log-format", "text", "log format: text or json")

		adaptive    = flag.Bool("adapt", false, "close the adaptation loop: drift-detect the monitored rate, re-solve in the background, hot-swap policies without pausing dispatch")
		adaptBand   = flag.Float64("adapt-band", 0.2, "adaptation hysteresis half-width as a fraction of the solved-for rate")
		adaptDwell  = flag.Float64("adapt-dwell", 2, "seconds the rate must stay outside the band before re-solving")
		adaptBucket = flag.Float64("adapt-bucket", 0, "rate bucket size in QPS for re-solves and the policy cache (0 = hysteresis band width at the initial rate)")

		tenantsFile = flag.String("tenants", "", "multi-tenant mode: tenant contract JSON (name, class, sloMs, weight, rateQps); starts the sharded serving plane with per-tenant policies, weighted-fair admission, and a tenant-routing gateway")
		shards      = flag.Int("shards", 1, "frontend shard count (multi-tenant mode); -workers is per shard")
		shardBy     = flag.String("shard-by", "hash", "shard routing policy: hash/rendezvous (pin tenant to shard) or p2c (spread by queue depth)")

		maxQueue   = flag.Int("maxqueue", 0, "queue-length bound N_w (0 = default 32): caps the RAMSIS MDP state space, and with -admit cap also sets the online admission bound (workers x N_w outstanding) — one knob for both, since policy guarantees lapse past N_w anyway")
		solverArg  = flag.String("solver", "vi", "RAMSIS MDP solver: vi (value iteration, the paper's default), pi (policy iteration), or prioritized (fast-resolve: residual-ordered Gauss-Seidel sweeps; same policy, far fewer sweeps — adaptive background re-solves use it regardless)")
		solveF32   = flag.Bool("solve-f32", false, "run the RAMSIS solve kernels in float32 (faster; the policy matches float64 wherever actions are separated by more than a few ULPs of the value scale)")
		aggQueue   = flag.Int("agg-queue", 0, "queue-axis aggregation factor (>1): warm-start each solve from a queue-coarsened aggregate of the MDP; the policy is unchanged, only the solve converges faster — pair with a large -maxqueue")
		llmProfile = flag.String("llm-profile", "", "LLM workload: load a kinded step-model JSON (llm.SaveFile) instead of the built-in chat corpus")
		llmClass   = flag.String("llm-class", "general", "LLM workload class: general, codegen, or reasoning")
		llmKVCap   = flag.Int("llm-kv-cap", 0, "override every step model's KV-cache capacity in tokens (0 = profile values)")
		llmBucket  = flag.Int("llm-bucket", 0, "token-bucket width of the LLM policy state space (0 = default 512)")

		admitName    = flag.String("admit", "none", "admission control: none, deadline (429 queries whose deadline is unmeetable), or cap (bound outstanding work; unifies the -maxqueue N_w bound online)")
		admitMargin  = flag.Float64("admit-margin", 1, "deadline admission: shed when estimated wait exceeds SLO*margin minus best-case service time")
		admitDegrade = flag.Int("admit-degrade", 0, "degraded-mode depth: maximum number of slowest models to forbid under confirmed overload (0 = off; requires -admit)")
		retryRate    = flag.Float64("retry-budget", 0, "failover retry budget in retries per modeled second (0 = unlimited, the historical behaviour)")
	)
	flag.Parse()
	if _, err := telemetry.SetupLogging(*logLevel, *logFmt, "serve"); err != nil {
		log.Fatal(err)
	}

	if *workload == "llm" {
		solver, err := core.ParseSolver(*solverArg)
		if err != nil {
			log.Fatal(err)
		}
		runLLMServe(llmOpts{
			profilePath: *llmProfile, class: *llmClass, kvCap: *llmKVCap, bucket: *llmBucket,
			slo: *sloMS / 1000, workers: *workers, load: *load, dur: *dur,
			timeScale: *timeScale, seed: *seed, solver: solver, solveF32: *solveF32,
			traceOut: *traceOut,
		})
		return
	} else if *workload != "scalar" {
		log.Fatalf("unknown workload %q (want scalar or llm)", *workload)
	}
	models, err := profile.SetForTask(*task)
	if err != nil {
		log.Fatal(err)
	}
	if *tenantsFile != "" {
		runSharded(models, *tenantsFile, *shards, *shardBy, shardedOpts{
			workers: *workers, timeScale: *timeScale, noiseMS: *noiseMS,
			seed: *seed, d: *d, maxQueue: *maxQueue, lb: *lbArg, addr: *addr,
			degradeDepth: *admitDegrade, adaptive: *adaptive, traceOut: *traceOut,
		})
		return
	}
	slo := *sloMS / 1000
	balancing, err := core.ParseBalancing(*lbArg)
	if err != nil {
		log.Fatal(err)
	}
	balancer, err := lb.New(*lbArg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := core.ParseSolver(*solverArg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generating RAMSIS policy (%s, SLO %.0f ms, %d workers, %.0f QPS, %s balancing)...\n",
		*task, *sloMS, *workers, *load, balancing)
	base := core.Config{
		Models: models, SLO: slo, Workers: *workers, Arrival: dist.NewPoisson(1), D: *d,
		MaxQueue: *maxQueue, Balancing: balancing,
		Solver: solver, Float32: *solveF32, AggQueue: *aggQueue,
	}
	set := core.NewPolicySet(base, nil)
	if err := set.GenerateLoads([]float64{*load}); err != nil {
		log.Fatal(err)
	}

	var admitter admit.Admitter
	var degrader *admit.Degrader
	if *admitName != "none" {
		nw := *maxQueue
		if nw <= 0 {
			nw = 32 // core.Config.MaxQueue default
		}
		admitter, err = admit.New(*admitName, slo, *admitMargin, nw**workers, core.NewWaitEstimator(models, *workers))
		if err != nil {
			log.Fatal(err)
		}
		if *admitDegrade > 0 {
			degrader = admit.NewDegrader(admit.DegradeConfig{MaxLevel: *admitDegrade, EnterWait: slo})
		}
		fmt.Printf("admission control: %s (margin %.2f, degrade depth %d)\n",
			admitter.Name(), *admitMargin, *admitDegrade)
	} else if *admitDegrade > 0 {
		log.Fatal("-admit-degrade requires an admitter (-admit deadline or -admit cap)")
	}
	var retryBudget *admit.RetryBudget
	if *retryRate > 0 {
		retryBudget = admit.NewRetryBudget(*workers, *retryRate)
	}

	// All serve paths share one registry so /metrics (frontend mode) and the
	// adapter's ramsis_adapt_* series land in the same exposition.
	registry := telemetry.NewRegistry()
	selector := serve.RAMSISSelector(set)
	var adapter *adapt.Adapter
	if *adaptive {
		adapter, err = adapt.New(adapt.Config{
			Base:       base,
			Band:       *adaptBand,
			Dwell:      *adaptDwell,
			BucketSize: *adaptBucket,
			Background: true, // never stall dispatch behind a re-solve
			Telemetry:  registry,
		}, set.Policies()[0])
		if err != nil {
			log.Fatal(err)
		}
		selector = serve.AdaptiveSelector(adapter)
		fmt.Printf("adaptation on: band ±%.0f%%, dwell %.1fs, bucket %.0f QPS\n",
			*adaptBand*100, *adaptDwell, adapter.ActiveBucket())
	}

	if *frontend {
		var tw *telemetry.TraceWriter
		if *traceOut != "" {
			fh, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			defer fh.Close()
			tw = telemetry.NewTraceWriter(fh)
		}
		cluster, err := serve.StartCluster(serve.ClusterConfig{
			Models:        models,
			Workers:       *workers,
			SLO:           slo,
			TimeScale:     *timeScale,
			LatencyStdDev: *noiseMS / 1000,
			Select:        selector,
			Monitor:       monitor.NewMovingAverage(0.5),
			Seed:          *seed,
			Balancer:      balancer,
			Addr:          *addr,
			TraceWriter:   tw,
			Telemetry:     registry,
			Admit:         admitter,
			Degrade:       degrader,
			RetryBudget:   retryBudget,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Stop()
		fmt.Printf("live inference service at %s\n", cluster.URL())
		fmt.Printf("try: curl -X POST %s/query -d '{}'\n", cluster.URL())
		fmt.Printf("     curl %s/stats\n", cluster.URL())
		fmt.Printf("     curl %s/metrics\n", cluster.URL())
		fmt.Printf("     curl %s/debug/traces\n", cluster.URL())
		select {} // serve until interrupted
	}

	var lat sim.LatencyModel = sim.Deterministic{}
	if *noiseMS > 0 {
		lat = sim.Stochastic{StdDev: *noiseMS / 1000}
	}
	urls := make([]string, *workers)
	ws := make([]*serve.Worker, *workers)
	for i := range urls {
		ws[i] = serve.NewWorker(models, lat, *timeScale, *seed+int64(i))
		if err := ws[i].Start(); err != nil {
			log.Fatal(err)
		}
		defer ws[i].Stop()
		urls[i] = ws[i].URL()
		fmt.Printf("worker %d listening at %s\n", i, urls[i])
	}

	tr := trace.Constant(*load, *dur)
	ctl := &serve.Controller{
		Profiles:    models,
		SLO:         slo,
		TimeScale:   *timeScale,
		Workers:     urls,
		Select:      selector,
		Monitor:     monitor.NewMovingAverage(0.5),
		Balancer:    balancer,
		Telemetry:   registry,
		Admit:       admitter,
		Degrade:     degrader,
		RetryBudget: retryBudget,
	}
	arrivals := trace.PoissonArrivals(tr, *seed)
	fmt.Printf("replaying %d queries over %.0fs (wall %.0fs)...\n",
		len(arrivals), *dur, *dur / *timeScale)
	m, err := ctl.Run(arrivals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served:                      %d\n", m.Served)
	if admitter != nil {
		fmt.Printf("offered / shed:              %d / %d (shed rate %.4f%%)\n",
			m.Offered(), m.Shed, m.ShedRate()*100)
		fmt.Printf("goodput (in-SLO/offered):    %.4f%%\n", m.GoodputRate()*100)
	}
	if degrader != nil {
		st := degrader.Stats()
		fmt.Printf("degraded mode: final level %d, %d escalations, %d de-escalations, %d clamped decisions\n",
			st.Level, st.Escalations, st.Deescalations, m.DegradedDecisions)
	}
	fmt.Printf("accuracy/satisfied query:    %.4f\n", m.AccuracyPerSatisfiedQuery())
	fmt.Printf("latency SLO violation rate:  %.4f%%\n", m.ViolationRate()*100)
	fmt.Printf("latency p50/p95/p99 (ms):    %.1f / %.1f / %.1f\n",
		m.LatencyP50*1000, m.LatencyP95*1000, m.LatencyP99*1000)
	pol := set.Policies()[0]
	fmt.Printf("policy expectation:          accuracy %.4f, violation %.4f%%\n",
		pol.ExpectedAccuracy, pol.ExpectedViolation*100)
	if adapter != nil {
		s := adapter.Stats()
		fmt.Printf("adaptation: %d re-solves (%d failed), %d cache hits / %d misses, %d hot-swaps, final bucket %.0f QPS\n",
			s.Resolves, s.ResolveErrors, s.CacheHits, s.CacheMisses, s.Swaps, s.ActiveBucket)
	}
	fmt.Println("script complete!")
}
