package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler draws inter-arrival times for a workload generator. Implementations
// are deterministic given the seed of the supplied *rand.Rand.
type Sampler interface {
	// NextInterarrival returns the time in seconds until the next arrival.
	NextInterarrival(rng *rand.Rand) float64
	// Rate returns the mean arrival rate in queries per second.
	Rate() float64
}

// NextInterarrival draws an Exp(λ) inter-arrival time.
func (p Poisson) NextInterarrival(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / p.Lambda
}

// NextInterarrival draws an Erlang(shape, rate·shape) inter-arrival time,
// i.e. the sum of shape exponential stages, preserving the mean rate.
func (g Gamma) NextInterarrival(rng *rand.Rand) float64 {
	stageRate := g.rate * float64(g.shape)
	sum := 0.0
	for i := 0; i < g.shape; i++ {
		sum += rng.ExpFloat64() / stageRate
	}
	return sum
}

// TruncatedNormal draws from a normal distribution with the given mean and
// standard deviation, truncated below at lo. It is used to add the ~10 ms
// inference-latency jitter the paper observes during profiling (§7.3.1).
func TruncatedNormal(rng *rand.Rand, mean, stddev, lo float64) float64 {
	if stddev <= 0 {
		return math.Max(mean, lo)
	}
	for i := 0; i < 64; i++ {
		v := mean + stddev*rng.NormFloat64()
		if v >= lo {
			return v
		}
	}
	return lo
}

// OnOff is a bursty workload sampler: a two-phase process alternating
// between a burst phase (rate multiplied by BurstFactor) and a calm phase,
// with exponentially distributed phase durations, normalized so the mean
// rate stays Rate(). It is burstier than Poisson (a simple Markov-modulated
// Poisson process) and is used to stress policies generated under a
// mismatched arrival assumption. It is a Sampler only — it has no
// closed-form PF — so it drives workload generation, not policy generation.
type OnOff struct {
	rate        float64
	burstFactor float64
	meanOn      float64 // mean burst-phase duration, seconds
	meanOff     float64 // mean calm-phase duration, seconds

	inBurst   bool
	phaseLeft float64
}

// NewOnOff builds a bursty sampler with the given mean rate, burst
// multiplier (> 1), and mean phase durations. The calm-phase rate is chosen
// so the long-run average rate equals rate; the parameters must leave it
// non-negative.
func NewOnOff(rate, burstFactor, meanOn, meanOff float64) *OnOff {
	if !(rate > 0) || burstFactor <= 1 || meanOn <= 0 || meanOff <= 0 {
		panic(fmt.Sprintf("dist: invalid OnOff(%v, %v, %v, %v)", rate, burstFactor, meanOn, meanOff))
	}
	if rate*burstFactor*meanOn > rate*(meanOn+meanOff) {
		panic("dist: OnOff burst carries more than the total arrival budget")
	}
	return &OnOff{rate: rate, burstFactor: burstFactor, meanOn: meanOn, meanOff: meanOff}
}

// Rate returns the long-run mean arrival rate.
func (o *OnOff) Rate() float64 { return o.rate }

// calmRate solves the normalization: rate·(on+off) = on·rate·bf + off·calm.
func (o *OnOff) calmRate() float64 {
	return (o.rate*(o.meanOn+o.meanOff) - o.rate*o.burstFactor*o.meanOn) / o.meanOff
}

// NextInterarrival draws the next gap, advancing phases as needed.
func (o *OnOff) NextInterarrival(rng *rand.Rand) float64 {
	elapsed := 0.0
	for {
		r := o.calmRate()
		mean := o.meanOff
		if o.inBurst {
			r = o.rate * o.burstFactor
			mean = o.meanOn
		}
		if o.phaseLeft <= 0 {
			o.phaseLeft = rng.ExpFloat64() * mean
		}
		if r <= 0 {
			// Silent calm phase: skip to the next burst.
			elapsed += o.phaseLeft
			o.phaseLeft = 0
			o.inBurst = !o.inBurst
			continue
		}
		gap := rng.ExpFloat64() / r
		if gap <= o.phaseLeft {
			o.phaseLeft -= gap
			return elapsed + gap
		}
		elapsed += o.phaseLeft
		o.phaseLeft = 0
		o.inBurst = !o.inBurst
	}
}
