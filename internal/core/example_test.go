package core_test

import (
	"fmt"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

// Generate runs RAMSIS's offline phase: formulate the worker MDP for the
// configured SLO, worker count, and arrival distribution, solve it with
// value iteration, and obtain a policy with §5.1 guarantees. (Not executed
// as a doctest — generation takes a second or two.)
func ExampleGenerate() {
	pol, err := core.Generate(core.Config{
		Models:  profile.ImageSet(),
		SLO:     0.150,                // 150 ms latency SLO
		Workers: 8,                    // round-robin over 8 workers
		Arrival: dist.NewPoisson(300), // 300 QPS Poisson arrivals
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("expected accuracy >= %.4f\n", pol.ExpectedAccuracy)
	fmt.Printf("violation rate   <= %.4f\n", pol.ExpectedViolation)

	// Online, each decision maps the worker-queue state to a model:
	choice := pol.Select(3 /* queued */, 0.120 /* earliest slack, s */)
	fmt.Println(choice.Model, choice.Batch)
}
