package sim

import (
	"math"
	"testing"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/lb"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// ramsisFixture generates one shared policy set for the scheduler tests.
func ramsisFixture(t *testing.T, workers int, slo float64, loads []float64) *core.PolicySet {
	t.Helper()
	base := core.Config{
		Models:  profile.ImageSet(),
		SLO:     slo,
		Workers: workers,
		Arrival: dist.NewPoisson(1), // replaced per-load
		D:       50,
	}
	ps := core.NewPolicySet(base, nil)
	if err := ps.GenerateLoads(loads); err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestRAMSISSchedulerServesEverything(t *testing.T) {
	const workers, slo, load = 8, 0.150, 300.0
	ps := ramsisFixture(t, workers, slo, []float64{load})
	tr := trace.Constant(load, 20)
	sched := NewRAMSIS(ps, monitor.Oracle{Trace: tr})
	e := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, sched, 1)
	arr := trace.PoissonArrivals(tr, 7)
	m := e.Run(arr)
	if m.Unserved != 0 {
		t.Fatalf("RAMSIS left %d queries unserved", m.Unserved)
	}
	if m.Served != len(arr) {
		t.Fatalf("served %d of %d", m.Served, len(arr))
	}
	if vr := m.ViolationRate(); vr > 0.05 {
		t.Errorf("violation rate %v above 5%% at satisfiable load", vr)
	}
	if acc := m.AccuracyPerSatisfiedQuery(); acc < 0.60 {
		t.Errorf("accuracy %v implausibly low", acc)
	}
}

func TestRAMSISBeatsFixedFastModelAccuracy(t *testing.T) {
	// At moderate load, exploiting lulls must beat always running the
	// throughput-safe fastest model.
	const workers, slo, load = 8, 0.150, 250.0
	ps := ramsisFixture(t, workers, slo, []float64{load})
	tr := trace.Constant(load, 20)
	arr := trace.PoissonArrivals(tr, 11)

	eR := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, NewRAMSIS(ps, monitor.Oracle{Trace: tr}), 1)
	mR := eR.Run(arr)

	eF := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 8}, 1)
	mF := eF.Run(arr)

	if mR.AccuracyPerSatisfiedQuery() <= mF.AccuracyPerSatisfiedQuery() {
		t.Errorf("RAMSIS accuracy %v not above fastest-model accuracy %v",
			mR.AccuracyPerSatisfiedQuery(), mF.AccuracyPerSatisfiedQuery())
	}
	if mR.ViolationRate() > 0.05 {
		t.Errorf("RAMSIS violation rate %v above threshold", mR.ViolationRate())
	}
}

func TestRAMSISFidelityExpectationVsSimulation(t *testing.T) {
	// §7.3.1 / Fig. 7: simulated accuracy and violation rate should track
	// the policy's §5.1 expectations, with expected accuracy a lower bound
	// and expected violation an upper bound (within sampling noise).
	const workers, slo, load = 8, 0.150, 300.0
	ps := ramsisFixture(t, workers, slo, []float64{load})
	pol := ps.Policies()[0]
	tr := trace.Constant(load, 60)
	sched := NewRAMSIS(ps, monitor.Oracle{Trace: tr})
	e := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, sched, 1)
	m := e.Run(trace.PoissonArrivals(tr, 13))

	simAcc := m.AccuracyPerSatisfiedQuery()
	if simAcc < pol.ExpectedAccuracy-0.02 {
		t.Errorf("simulated accuracy %v well below expectation %v (should be a lower bound)",
			simAcc, pol.ExpectedAccuracy)
	}
	if simAcc > pol.ExpectedAccuracy+0.06 {
		t.Errorf("simulated accuracy %v far above expectation %v; expectation too loose",
			simAcc, pol.ExpectedAccuracy)
	}
	simViol := m.ViolationRate()
	if simViol > pol.ExpectedViolation+0.02 {
		t.Errorf("simulated violation %v above expectation %v (should be an upper bound)",
			simViol, pol.ExpectedViolation)
	}
}

func TestRAMSISImplementationVariantAtLeastSimulation(t *testing.T) {
	// §7.3.1: with latency variance, realized latencies are usually below
	// the p95 profile, so the stochastic ("implementation") variant should
	// achieve accuracy at least about the deterministic simulation's.
	const workers, slo, load = 8, 0.150, 300.0
	ps := ramsisFixture(t, workers, slo, []float64{load})
	tr := trace.Constant(load, 30)
	arr := trace.PoissonArrivals(tr, 17)

	eSim := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, NewRAMSIS(ps, monitor.Oracle{Trace: tr}), 1)
	mSim := eSim.Run(arr)
	eImp := NewEngine(profile.ImageSet(), slo, workers, Stochastic{StdDev: 0.010}, NewRAMSIS(ps, monitor.Oracle{Trace: tr}), 1)
	mImp := eImp.Run(arr)

	if mImp.AccuracyPerSatisfiedQuery() < mSim.AccuracyPerSatisfiedQuery()-0.01 {
		t.Errorf("implementation accuracy %v below simulation %v",
			mImp.AccuracyPerSatisfiedQuery(), mSim.AccuracyPerSatisfiedQuery())
	}
}

func TestRAMSISPolicySwitchingUnderLoadChange(t *testing.T) {
	// With a moving-average monitor and a load step, the scheduler must
	// switch policies rather than panic or stall.
	const workers, slo = 8, 0.150
	ps := ramsisFixture(t, workers, slo, []float64{100, 200, 300, 400})
	step := trace.Trace{IntervalSec: 10, QPS: []float64{100, 380, 150}}
	sched := NewRAMSIS(ps, monitor.NewMovingAverage(0.5))
	e := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, sched, 1)
	m := e.Run(trace.PoissonArrivals(step, 23))
	if m.Unserved != 0 {
		t.Fatalf("unserved %d", m.Unserved)
	}
	if vr := m.ViolationRate(); vr > 0.08 {
		t.Errorf("violation rate %v too high across load step", vr)
	}
}

func TestRAMSISRoundRobinBalance(t *testing.T) {
	const workers = 4
	ps := ramsisFixture(t, workers, 0.150, []float64{100})
	sched := NewRAMSIS(ps, monitor.NewMovingAverage(0.5))
	e := NewEngine(profile.ImageSet(), 0.150, workers, Deterministic{}, sched, 1)
	// Route 8 arrivals without dispatching (inspect queues directly).
	for i := 0; i < 8; i++ {
		sched.Route(e, float64(i)*1e-6, Query{ID: i})
	}
	for w := 0; w < workers; w++ {
		if got := e.WorkerLen(w); got != 2 {
			t.Errorf("worker %d queue = %d, want 2 (round-robin)", w, got)
		}
	}
	if e.CentralLen() != 0 {
		t.Error("round-robin left queries in the central queue")
	}
}

func TestRAMSISHigherSLOGivesHigherAccuracy(t *testing.T) {
	const workers, load = 8, 300.0
	tr := trace.Constant(load, 20)
	arr := trace.PoissonArrivals(tr, 29)
	accs := map[float64]float64{}
	for _, slo := range []float64{0.150, 0.500} {
		ps := ramsisFixture(t, workers, slo, []float64{load})
		e := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, NewRAMSIS(ps, monitor.Oracle{Trace: tr}), 1)
		accs[slo] = e.Run(arr).AccuracyPerSatisfiedQuery()
	}
	if accs[0.500] <= accs[0.150] {
		t.Errorf("accuracy at 500ms (%v) not above 150ms (%v)", accs[0.500], accs[0.150])
	}
	if math.IsNaN(accs[0.500]) {
		t.Fatal("NaN accuracy")
	}
}

func TestRAMSISShortestQueueFirstRouting(t *testing.T) {
	const workers = 3
	ps := ramsisFixture(t, workers, 0.150, []float64{100})
	sched := NewRAMSIS(ps, monitor.NewMovingAverage(0.5))
	sched.Balance = core.ShortestQueueFirst
	e := NewEngine(profile.ImageSet(), 0.150, workers, Deterministic{}, sched, 1)
	// Pre-load queues unevenly, then route: the arrival must join the
	// shortest queue.
	e.EnqueueWorker(0, Query{ID: 100})
	e.EnqueueWorker(0, Query{ID: 101})
	e.EnqueueWorker(1, Query{ID: 102})
	sched.Route(e, 0, Query{ID: 0})
	if got := e.WorkerLen(2); got != 1 {
		t.Errorf("SQF routed to worker with len %d; queue lengths: %d %d %d",
			got, e.WorkerLen(0), e.WorkerLen(1), e.WorkerLen(2))
	}
	// Next arrival ties between workers 1 and 2 (len 1 each): either is
	// acceptable, but it must not join worker 0 (len 2).
	sched.Route(e, 0, Query{ID: 1})
	if e.WorkerLen(0) != 2 {
		t.Errorf("SQF joined the longest queue")
	}
}

func TestRAMSISEndToEndWithSQF(t *testing.T) {
	const workers, slo, load = 4, 0.150, 120.0
	base := core.Config{
		Models:    profile.ImageSet(),
		SLO:       slo,
		Workers:   workers,
		Arrival:   dist.NewPoisson(1),
		D:         50,
		Balancing: core.ShortestQueueFirst,
	}
	set := core.NewPolicySet(base, nil)
	if err := set.GenerateLoads([]float64{load}); err != nil {
		t.Fatal(err)
	}
	tr := trace.Constant(load, 15)
	sched := NewRAMSIS(set, monitor.Oracle{Trace: tr})
	sched.Balance = core.ShortestQueueFirst
	e := NewEngine(profile.ImageSet(), slo, workers, Deterministic{}, sched, 1)
	m := e.Run(trace.PoissonArrivals(tr, 19))
	if m.Unserved != 0 {
		t.Fatalf("unserved %d", m.Unserved)
	}
	if vr := m.ViolationRate(); vr > 0.05 {
		t.Errorf("SQF violation rate %v at sub-critical load", vr)
	}
}

func TestRAMSISPowerOfTwoRouting(t *testing.T) {
	const workers = 4
	ps := ramsisFixture(t, workers, 0.150, []float64{100})
	sched := NewRAMSIS(ps, monitor.NewMovingAverage(0.5))
	sched.Balance = core.PowerOfTwoChoices
	e := NewEngine(profile.ImageSet(), 0.150, workers, Deterministic{}, sched, 1)
	// One empty worker among loaded ones: P2C must never join the longest
	// queue when it samples the empty worker, so across many routes the
	// empty worker takes a clear plurality.
	for i := 0; i < 5; i++ {
		e.EnqueueWorker(0, Query{ID: 100 + i})
		e.EnqueueWorker(1, Query{ID: 200 + i})
		e.EnqueueWorker(2, Query{ID: 300 + i})
	}
	for i := 0; i < 40; i++ {
		sched.Route(e, float64(i)*1e-6, Query{ID: i})
	}
	routed3 := e.WorkerLen(3)
	if routed3 < 10 {
		t.Errorf("P2C routed only %d/40 to the drained worker; queues: %d %d %d %d",
			routed3, e.WorkerLen(0), e.WorkerLen(1), e.WorkerLen(2), e.WorkerLen(3))
	}
	if e.CentralLen() != 0 {
		t.Error("P2C left queries in the central queue")
	}
}

// fixedModelLB is a minimal per-worker-queue scheduler for balancer
// comparisons: it routes through an lb.Balancer and serves one query at a
// time on a fixed model, so the measured difference is the balancer's
// alone (no model-selection or batching confound).
type fixedModelLB struct {
	model int
	bal   lb.Balancer
	lens  []int
}

func (s *fixedModelLB) Route(e *Engine, _ float64, q Query) {
	s.lens = e.QueueLens(s.lens)
	e.EnqueueWorker(s.bal.Pick(s.lens, nil), q)
}

func (s *fixedModelLB) Pick(e *Engine, _ float64, w int) (Decision, bool) {
	if e.WorkerLen(w) == 0 {
		return Decision{}, false
	}
	return Decision{Model: s.model, Queries: e.PopWorker(w, 1)}, true
}

func TestJSQNoWorseThanRoundRobinOnBurstyTrace(t *testing.T) {
	// The ISSUE-1 acceptance criterion: at equal load on a bursty on-off
	// MMPP arrival pattern, queue-aware balancing achieves a violation
	// rate no worse than round-robin's. The decisive case is a straggler:
	// one worker runs 1.5x slower (the degraded-replica scenario
	// queue-aware balancers exist for), and round-robin keeps feeding it
	// its full 1/K share while JSQ and P2C route around the backlog.
	//
	// Note the homogeneous-cluster result is the opposite and is worth
	// stating: with identical workers, deterministic round-robin spread
	// is already near-optimal and JSQ's count-equalization buys nothing
	// (it can even lose slightly under maximal batching, where letting
	// queues differ grows more efficient batches). The balancer choice
	// matters when workers diverge, which in production they do.
	models := profile.ImageSet()
	mi := -1
	for i, p := range models.Profiles {
		if p.Name == "shufflenet_v2_x0_5" {
			mi = i
		}
	}
	if mi < 0 {
		t.Fatal("fixed model missing from image set")
	}
	const workers, slo = 6, 0.150
	mu := 1 / models.Profiles[mi].BatchLatency(1)
	load := 0.7 * float64(workers) * mu
	wp := make([]profile.Set, workers)
	for i := range wp {
		wp[i] = models
	}
	wp[0] = models.ScaleLatency(1.5) // the straggler
	tr := trace.Constant(load, 30)
	// 2.5x-rate bursts of mean 50 ms separated by mean-200 ms lulls (the
	// misspecification study's "burstier than assumed" pattern); the same
	// arrival realization feeds every balancer.
	arr := trace.Arrivals(tr, 13, func(r float64) dist.Sampler { return dist.NewOnOff(r, 2.5, 0.05, 0.2) })
	run := func(bal lb.Balancer) Metrics {
		e := NewEngine(models, slo, workers, Stochastic{StdDev: 0.010}, &fixedModelLB{model: mi, bal: bal}, 1)
		e.WorkerProfiles = wp
		return e.Run(arr)
	}
	rr := run(lb.NewRoundRobin())
	jsq := run(lb.NewJoinShortestQueue())
	p2c := run(lb.NewPowerOfTwoChoices(1))
	if rr.Served != len(arr) || jsq.Served != len(arr) || p2c.Served != len(arr) {
		t.Fatalf("served rr=%d jsq=%d p2c=%d of %d", rr.Served, jsq.Served, p2c.Served, len(arr))
	}
	if rr.ViolationRate() == 0 {
		t.Fatal("straggler not slow enough: round-robin has zero violations, comparison is vacuous")
	}
	if jsq.ViolationRate() > rr.ViolationRate() {
		t.Errorf("JSQ violation rate %.5f above round-robin's %.5f on bursty trace",
			jsq.ViolationRate(), rr.ViolationRate())
	}
	if p2c.ViolationRate() > rr.ViolationRate() {
		t.Errorf("P2C violation rate %.5f above round-robin's %.5f on bursty trace",
			p2c.ViolationRate(), rr.ViolationRate())
	}
}

func TestHeterogeneousWorkers(t *testing.T) {
	// Two worker hardware types: workers 0-1 standard, workers 2-3 twice as
	// slow. Each gets a policy generated from its own latency profiles.
	const totalWorkers, slo, load = 4, 0.300, 100.0
	fastSet := profile.ImageSet()
	slowSet := fastSet.ScaleLatency(2)

	mkSet := func(models profile.Set) *core.PolicySet {
		ps := core.NewPolicySet(core.Config{
			Models:  models,
			SLO:     slo,
			Workers: totalWorkers,
			Arrival: dist.NewPoisson(1),
			D:       50,
		}, nil)
		if err := ps.GenerateLoads([]float64{load}); err != nil {
			t.Fatal(err)
		}
		return ps
	}
	fastPS, slowPS := mkSet(fastSet), mkSet(slowSet)

	// The slow type's policy must be more conservative at the same state.
	fp, _ := fastPS.PolicyFor(load)
	sp, _ := slowPS.PolicyFor(load)
	fAcc, _ := fastSet.ByName(fp.Select(4, slo).Model)
	sAcc, _ := slowSet.ByName(sp.Select(4, slo).Model)
	if sAcc.Accuracy > fAcc.Accuracy {
		t.Errorf("slow worker policy picked a more accurate model (%s) than the fast one (%s)",
			sAcc.Name, fAcc.Name)
	}

	tr := trace.Constant(load, 20)
	sched := &HeteroRAMSIS{
		Sets:    []*core.PolicySet{fastPS, fastPS, slowPS, slowPS},
		Monitor: monitor.Oracle{Trace: tr},
	}
	e := NewEngine(fastSet, slo, totalWorkers, Deterministic{}, sched, 1)
	e.WorkerProfiles = []profile.Set{fastSet, fastSet, slowSet, slowSet}
	m := e.Run(trace.PoissonArrivals(tr, 41))
	if m.Unserved != 0 {
		t.Fatalf("unserved %d", m.Unserved)
	}
	if vr := m.ViolationRate(); vr > 0.05 {
		t.Errorf("heterogeneous violation rate %v", vr)
	}
	if acc := m.AccuracyPerSatisfiedQuery(); acc < 0.65 {
		t.Errorf("heterogeneous accuracy %v implausibly low", acc)
	}
}

func TestVerifyPolicy(t *testing.T) {
	cfg := core.Config{
		Models:  profile.ImageSet(),
		SLO:     0.150,
		Workers: 8,
		Arrival: dist.NewPoisson(300),
		D:       50,
	}
	pol, err := core.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := VerifyPolicy(pol, profile.ImageSet(), 30, 3)
	if m.Served == 0 {
		t.Fatal("verification served nothing")
	}
	if acc := m.AccuracyPerSatisfiedQuery(); acc < pol.ExpectedAccuracy-0.02 {
		t.Errorf("verified accuracy %v below the guarantee %v", acc, pol.ExpectedAccuracy)
	}
	if vr := m.ViolationRate(); vr > pol.ExpectedViolation+0.02 {
		t.Errorf("verified violations %v above the guarantee %v", vr, pol.ExpectedViolation)
	}
}
