package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
)

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts the value of one exposition line whose series part
// (name plus optional label set) matches exactly.
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != series {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", series, val)
		}
		return f
	}
	t.Fatalf("series %s not found in exposition", series)
	return 0
}

// TestFrontendTelemetryAcceptance is the PR's acceptance test: after live
// queries complete, /metrics is a valid exposition carrying the required
// series, /stats agrees with /metrics on served/violation counts, and a
// completed query's trace holds all six span stages in order.
func TestFrontendTelemetryAcceptance(t *testing.T) {
	urls := startWorkers(t, 2, sim.Deterministic{}, 10)
	var jsonl bytes.Buffer
	f := &Frontend{
		Profiles: profile.ImageSet(), SLO: 0.150, TimeScale: 10, Workers: urls,
		Select:      fixedSelector("shufflenet_v2_x0_5"),
		Monitor:     monitor.NewMovingAverage(0.5),
		TraceWriter: telemetry.NewTraceWriter(&jsonl),
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	const n = 12
	for i := 0; i < n; i++ {
		resp, err := http.Post(f.URL()+"/query", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// /metrics carries the required series.
	exp := scrape(t, f.URL()+"/metrics")
	served := metricValue(t, exp, "ramsis_queries_total")
	violations := metricValue(t, exp, "ramsis_slo_violations_total")
	if served != n {
		t.Errorf("ramsis_queries_total = %v, want %d", served, n)
	}
	for _, stage := range telemetry.Stages() {
		series := fmt.Sprintf("ramsis_stage_seconds_count{stage=%q}", stage)
		if c := metricValue(t, exp, series); c != n {
			t.Errorf("%s = %v, want %d", series, c, n)
		}
	}
	for w := 0; w < 2; w++ {
		series := fmt.Sprintf("ramsis_worker_healthy{worker=\"%d\"}", w)
		if h := metricValue(t, exp, series); h != 1 {
			t.Errorf("%s = %v, want 1 (worker is up)", series, h)
		}
	}

	// /stats agrees with /metrics by construction.
	var stats StatsResponse
	if err := json.Unmarshal([]byte(scrape(t, f.URL()+"/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if float64(stats.Served) != served || float64(stats.Violations) != violations {
		t.Errorf("/stats served=%d violations=%d, /metrics %v / %v",
			stats.Served, stats.Violations, served, violations)
	}
	dispatched := 0
	for _, d := range stats.WorkerDispatches {
		dispatched += d
	}
	if dispatched == 0 {
		t.Error("no worker dispatches recorded")
	}

	// /debug/traces returns every completed query with all six stages.
	var traces []telemetry.QueryTrace
	if err := json.Unmarshal([]byte(scrape(t, f.URL()+"/debug/traces")), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != n {
		t.Fatalf("trace ring holds %d traces, want %d", len(traces), n)
	}
	for _, want := range telemetry.Stages() {
		if _, ok := traces[0].Span(want); !ok {
			t.Errorf("trace missing stage %q", want)
		}
	}
	for i, s := range traces[0].Spans {
		if s.Stage != telemetry.Stages()[i] {
			t.Errorf("span %d = %q, want %q", i, s.Stage, telemetry.Stages()[i])
		}
		if s.Seconds < 0 {
			t.Errorf("stage %s negative duration %v", s.Stage, s.Seconds)
		}
	}

	// The JSONL export carries the same traces, one object per line.
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != n {
		t.Fatalf("trace JSONL has %d lines, want %d", len(lines), n)
	}
	var qt telemetry.QueryTrace
	if err := json.Unmarshal([]byte(lines[0]), &qt); err != nil {
		t.Fatalf("trace JSONL line does not parse: %v", err)
	}
	if len(qt.Spans) != len(telemetry.Stages()) {
		t.Errorf("exported trace has %d spans, want %d", len(qt.Spans), len(telemetry.Stages()))
	}

	// pprof is wired on the same mux.
	resp, err := http.Get(f.URL() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestStatsRaceDuringDispatch hammers /stats and /metrics while live
// queries dispatch; under -race (make verify) this proves the collapsed
// snapshot path has no data race with the dispatch path.
func TestStatsRaceDuringDispatch(t *testing.T) {
	urls := startWorkers(t, 2, sim.Deterministic{}, 20)
	f := &Frontend{
		Profiles: profile.ImageSet(), SLO: 0.150, TimeScale: 20, Workers: urls,
		Select:  fixedSelector("shufflenet_v2_x0_5"),
		Monitor: monitor.NewMovingAverage(0.5),
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/stats", "/metrics", "/debug/traces"} {
					resp, err := http.Get(f.URL() + path)
					if err != nil {
						return // server shutting down
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(f.URL()+"/query", "application/json", strings.NewReader(`{}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	s := f.Stats()
	if s.Served != 24 {
		t.Errorf("served %d, want 24", s.Served)
	}
}

// TestWorkerMetricsEndpoint verifies each worker serves its own registry.
func TestWorkerMetricsEndpoint(t *testing.T) {
	urls := startWorkers(t, 1, sim.Deterministic{}, 50)
	resp, err := http.Post(urls[0]+"/infer", "application/json",
		strings.NewReader(`{"model":"shufflenet_v2_x0_5","batch":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	exp := scrape(t, urls[0]+"/metrics")
	if v := metricValue(t, exp, `ramsis_worker_inferences_total{model="shufflenet_v2_x0_5"}`); v != 1 {
		t.Errorf("inference counter = %v, want 1", v)
	}
	if c := metricValue(t, exp, "ramsis_worker_inference_seconds_count"); c != 1 {
		t.Errorf("inference histogram count = %v, want 1", c)
	}
	if c := metricValue(t, exp, `ramsis_batch_size_bucket{le="3"}`); c != 1 {
		t.Errorf("batch size bucket le=3 = %v, want 1", c)
	}
}

// TestControllerTelemetry verifies the trace-replay path records the same
// registry series as the frontend and fills latency percentiles.
func TestControllerTelemetry(t *testing.T) {
	urls := startWorkers(t, 2, sim.Deterministic{}, 20)
	reg := telemetry.NewRegistry()
	ctl := &Controller{
		Profiles: profile.ImageSet(), SLO: 0.150, TimeScale: 20, Workers: urls,
		Select:    fixedSelector("shufflenet_v2_x0_5"),
		Telemetry: reg,
	}
	arr := make([]float64, 16)
	for i := range arr {
		arr[i] = float64(i) * 0.01
	}
	m, err := ctl.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(telemetry.MetricQueries).Value(); int(got) != m.Served {
		t.Errorf("registry served %v, metrics %d", got, m.Served)
	}
	if got := reg.Counter(telemetry.MetricViolations).Value(); int(got) != m.Violations {
		t.Errorf("registry violations %v, metrics %d", got, m.Violations)
	}
	for _, stage := range []string{telemetry.StageBatchWait, telemetry.StageDispatch, telemetry.StageInference, telemetry.StageRespond} {
		h := reg.Histogram(telemetry.MetricStageSeconds, "stage", stage)
		if h.Count() == 0 {
			t.Errorf("stage %q unrecorded on replay path", stage)
		}
	}
	if m.LatencyP50 <= 0 || m.LatencyP95 < m.LatencyP50 || m.LatencyP99 < m.LatencyP95 {
		t.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v", m.LatencyP50, m.LatencyP95, m.LatencyP99)
	}
}
