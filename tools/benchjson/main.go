// Command benchjson converts `go test -bench` text output into JSON so
// benchmark baselines can be committed and diffed (see `make bench`, which
// writes BENCH_8.json). Zero dependencies, stdlib only.
//
//	go test -bench . -benchmem -count=3 . | benchjson -o BENCH_8.json
//	benchjson bench.out            # parse a saved file, JSON to stdout
//
// Each benchmark name maps to its runs (one per -count repetition); every
// `value unit` pair on a line becomes a metric ("ns/op", "B/op",
// "allocs/op", custom b.ReportMetric units like "queries/op"). BestNsPerOp
// is the minimum ns/op across runs — the conventional number to quote,
// being the least scheduler-noise-contaminated.
//
// Compare mode diffs two baselines and gates on ns/op and allocs/op
// regressions:
//
//	benchjson -compare -threshold 1.25 -alloc-threshold 1.10 old.json new.json
//
// exits nonzero when any benchmark present in both files regressed by more
// than the matching threshold factor (best-of-runs, new/old > threshold).
// allocs/op gets its own, tighter default: allocation counts are
// deterministic, so any growth is a code change, not runner noise — this
// is what keeps the serve path's zero-allocation claims CI-enforced. With
// -warn the regressions are emitted as GitHub Actions ::warning::
// annotations and the exit code stays zero — CI runs a soft pass at a
// tight threshold and a hard pass at a loose one, so noise warns but only
// a real blowup fails the build.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type run struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchmark struct {
	Name            string  `json:"name"`
	Runs            []run   `json:"runs"`
	BestNsPerOp     float64 `json:"best_ns_per_op,omitempty"`
	BestAllocsPerOp float64 `json:"best_allocs_per_op,omitempty"`
}

type report struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*benchmark `json:"benchmarks"`
}

// procsSuffix is the -GOMAXPROCS suffix go test appends to benchmark names
// when GOMAXPROCS > 1; strip it so baselines from different machines align.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (*report, error) {
	rep := &report{}
	byName := map[string]*benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			metrics[fields[i+1]] = v
		}
		name := procsSuffix.ReplaceAllString(fields[0], "")
		b := byName[name]
		if b == nil {
			b = &benchmark{Name: name}
			byName[name] = b
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		b.Runs = append(b.Runs, run{Iterations: iters, Metrics: metrics})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	finalize(rep)
	return rep, nil
}

// finalize computes the best-of-runs summary metrics. It also backfills
// them when loading baselines written before a summary field existed, so
// old committed BENCH_*.json files stay comparable.
func finalize(rep *report) {
	for _, b := range rep.Benchmarks {
		for _, r := range b.Runs {
			if ns, ok := r.Metrics["ns/op"]; ok && (b.BestNsPerOp == 0 || ns < b.BestNsPerOp) {
				b.BestNsPerOp = ns
			}
			if al, ok := r.Metrics["allocs/op"]; ok && (b.BestAllocsPerOp == 0 || al < b.BestAllocsPerOp) {
				b.BestAllocsPerOp = al
			}
		}
	}
}

// regression is one benchmark metric that got worse between baselines by
// more than its compare threshold.
type regression struct {
	Name   string
	Metric string  // "ns/op" or "allocs/op"
	Old    float64 // baseline best of runs
	New    float64 // candidate best of runs
	Ratio  float64 // New / Old
}

// compare returns the benchmarks present in both reports whose best ns/op
// or allocs/op regressed by more than the matching threshold (new/old >
// threshold), ordered as they appear in the new report. Benchmarks missing
// from either side, or without the metric, are skipped: adding or retiring
// a benchmark is not a regression.
func compare(old, cand *report, nsThreshold, allocThreshold float64) []regression {
	type best struct{ ns, allocs float64 }
	base := map[string]best{}
	for _, b := range old.Benchmarks {
		base[b.Name] = best{ns: b.BestNsPerOp, allocs: b.BestAllocsPerOp}
	}
	var regs []regression
	for _, b := range cand.Benchmarks {
		was, ok := base[b.Name]
		if !ok {
			continue
		}
		if was.ns > 0 && b.BestNsPerOp > 0 {
			if ratio := b.BestNsPerOp / was.ns; ratio > nsThreshold {
				regs = append(regs, regression{Name: b.Name, Metric: "ns/op",
					Old: was.ns, New: b.BestNsPerOp, Ratio: ratio})
			}
		}
		if was.allocs > 0 && b.BestAllocsPerOp > 0 {
			if ratio := b.BestAllocsPerOp / was.allocs; ratio > allocThreshold {
				regs = append(regs, regression{Name: b.Name, Metric: "allocs/op",
					Old: was.allocs, New: b.BestAllocsPerOp, Ratio: ratio})
			}
		}
	}
	return regs
}

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchjson: decode %s: %w", path, err)
	}
	finalize(rep)
	return rep, nil
}

func runCompare(oldPath, newPath string, nsThreshold, allocThreshold float64, warnOnly bool) int {
	old, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	nw, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	regs := compare(old, nw, nsThreshold, allocThreshold)
	for _, r := range regs {
		threshold := nsThreshold
		if r.Metric == "allocs/op" {
			threshold = allocThreshold
		}
		msg := fmt.Sprintf("%s regressed %.2fx: %.0f -> %.0f %s (threshold %.2fx)",
			r.Name, r.Ratio, r.Old, r.New, r.Metric, threshold)
		if warnOnly {
			// GitHub Actions annotation: surfaces on the PR without failing.
			fmt.Printf("::warning title=benchmark regression::%s\n", msg)
		} else {
			fmt.Println(msg)
		}
	}
	if len(regs) == 0 {
		fmt.Printf("benchjson: no ns/op regression beyond %.2fx or allocs/op beyond %.2fx (%d benchmarks compared)\n",
			nsThreshold, allocThreshold, len(nw.Benchmarks))
		return 0
	}
	if warnOnly {
		return 0
	}
	return 1
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	compareMode := flag.Bool("compare", false, "compare two baselines: benchjson -compare [-threshold F] old.json new.json")
	threshold := flag.Float64("threshold", 1.25, "compare mode: fail when best ns/op regresses by more than this factor")
	allocThreshold := flag.Float64("alloc-threshold", 1.10, "compare mode: fail when best allocs/op regresses by more than this factor (tight: allocation counts are deterministic)")
	warn := flag.Bool("warn", false, "compare mode: emit ::warning:: annotations instead of failing")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two baseline files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, *allocThreshold, *warn))
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
