package core

import (
	"math"
	"testing"

	"ramsis/internal/dist"
	"ramsis/internal/mdp"
	"ramsis/internal/profile"
)

// smallConfig builds a deliberately tiny problem so the literal §4.4
// quadruple sum is tractable.
func smallConfig() Config {
	return Config{
		Models:   profile.ImageSet().Subset("shufflenet_v2_x0_5", "efficientnet_b0"),
		SLO:      0.150,
		Workers:  2,
		Arrival:  dist.NewPoisson(60),
		D:        8,
		MaxQueue: 5,
		// High quadrature resolution for a tight literal comparison.
		FineCells: 4096,
	}.withDefaults()
}

func buildFor(t *testing.T, cfg Config) (*space, *mdp.MDP) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sp := newSpace(cfg)
	b := newBuilder(sp)
	m := b.buildMDP()
	if err := m.Validate(1e-6); err != nil {
		t.Fatalf("MDP invalid: %v", err)
	}
	return sp, m
}

func TestBuiltMDPValidates(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.Disc = ModelBased },
		func(c *Config) { c.Batching = VariableBatching },
		func(c *Config) { c.Balancing = ShortestQueueFirst },
		func(c *Config) { c.Balancing = PowerOfTwoChoices },
		func(c *Config) { c.Workers = 1 },
		func(c *Config) { c.NoParetoPruning = true },
	} {
		cfg := smallConfig()
		cfg.FineCells = 512
		mut(&cfg)
		buildFor(t, cfg)
	}
}

func TestArrivalActionTransition(t *testing.T) {
	cfg := smallConfig()
	cfg.FineCells = 256
	sp, m := buildFor(t, cfg)
	acts := m.Actions[sp.emptyState()]
	if len(acts) != 1 {
		t.Fatalf("empty state has %d actions, want 1", len(acts))
	}
	trs := acts[0].Transitions
	if len(trs) != 1 || trs[0].P != 1 {
		t.Fatalf("arrival action transitions = %+v, want single certain", trs)
	}
	wantNext := sp.index(1, sp.bucketOf(cfg.SLO))
	if int(trs[0].Next) != wantNext {
		t.Errorf("arrival action goes to %d, want (1, SLO) = %d", trs[0].Next, wantNext)
	}
}

func TestOverflowStateMatchesFullQueueZeroSlack(t *testing.T) {
	// §4.2.3: (φ, ∅) exhibits transition probabilities equivalent to
	// (N_w, 0).
	cfg := smallConfig()
	cfg.FineCells = 256
	sp, m := buildFor(t, cfg)
	over := m.Actions[sp.overflowState()]
	full := m.Actions[sp.index(cfg.MaxQueue, 0)]
	if len(over) != len(full) {
		t.Fatalf("action counts differ: %d vs %d", len(over), len(full))
	}
	for ai := range over {
		ot, ft := over[ai].Transitions, full[ai].Transitions
		if len(ot) != len(ft) {
			t.Fatalf("transition counts differ for action %d", ai)
		}
		for i := range ot {
			if ot[i].Next != ft[i].Next || math.Abs(ot[i].P-ft[i].P) > 1e-9 {
				t.Fatalf("transition %d differs: %+v vs %+v", i, ot[i], ft[i])
			}
		}
	}
}

// literalCase2 computes P[(n',T_{j'}) | (n,T_j), (m,n)] by the paper's
// Eq. 2 quadruple sum over intervals A, B, C, D with round-robin residue
// bookkeeping, exactly as §4.4.2 writes it.
func literalCase2(cfg Config, grid []float64, n, j int, l float64, np, jp int) float64 {
	k := cfg.Workers
	pf := func(c int, tl float64) float64 { return cfg.Arrival.PF(c, tl) }
	slo := cfg.SLO
	ta := slo - grid[j]

	tb := l + grid[jp] - slo
	if tb < 0 {
		tb = 0
	}
	var tjp1 float64
	if jp+1 < len(grid) {
		tjp1 = grid[jp+1]
	} else {
		tjp1 = slo
	}
	tc := l + tjp1 - slo - tb
	if tc < 0 {
		tc = 0
	}
	td := l - tc - tb
	if td < 0 {
		td = 0
	}

	denom := 0.0
	for ka := (n - 1) * k; ka <= n*k-1; ka++ {
		denom += pf(ka, ta)
	}
	if denom == 0 {
		return 0
	}
	num := 0.0
	for ka := (n - 1) * k; ka <= n*k-1; ka++ {
		u := ka % k
		pa := pf(ka, ta)
		if pa == 0 {
			continue
		}
		for kb := 0; kb <= k-u-1; kb++ {
			pb := pf(kb, tb)
			if pb == 0 {
				continue
			}
			for kc := k - u - kb; kc <= (np+1)*k-u-kb-1; kc++ {
				if kc < 0 {
					continue
				}
				pc := pf(kc, tc)
				if pc == 0 {
					continue
				}
				lo := np*k - u - kb - kc
				if lo < 0 {
					lo = 0
				}
				hi := (np+1)*k - u - kb - 1 - kc
				for kd := lo; kd <= hi; kd++ {
					num += pa * pb * pc * pf(kd, td)
				}
			}
		}
	}
	return num / denom
}

func TestTransitionsMatchLiteralPaperFormula(t *testing.T) {
	cfg := smallConfig()
	sp, m := buildFor(t, cfg)

	// Compare several (state, action) rows against the literal Eq. 2 sums
	// for every successor (n', T_{j'}) with j' below the top bucket (the
	// top bucket is reached only via the arrival action).
	cases := []struct{ n, j int }{{1, len(sp.grid) - 1}, {2, 4}, {3, 6}, {5, 2}, {4, 0}}
	for _, cse := range cases {
		s := sp.index(cse.n, cse.j)
		acts := sp.actionsForState(s)
		for ai, a := range acts {
			got := map[int]float64{}
			for _, tr := range m.Actions[s][ai].Transitions {
				got[int(tr.Next)] = tr.P
			}
			for np := 1; np <= cfg.MaxQueue; np++ {
				for jp := 0; jp < len(sp.grid)-1; jp++ {
					want := literalCase2(cfg, sp.grid, cse.n, cse.j, a.Latency, np, jp)
					g := got[sp.index(np, jp)]
					if math.Abs(g-want) > 2e-3 {
						t.Errorf("state(n=%d,j=%d) action %d (l=%.0fms): P(n'=%d,j'=%d) = %.6f, literal %.6f",
							cse.n, cse.j, ai, a.Latency*1000, np, jp, g, want)
					}
				}
			}
		}
	}
}

func TestEmptyNextStateProbabilityExact(t *testing.T) {
	// P[next = empty] has the closed form Σ_r P(r)·P[N(l) <= K-r-1];
	// verify against a direct computation for a fresh single-query state.
	cfg := smallConfig()
	sp, m := buildFor(t, cfg)
	s := sp.index(1, len(sp.grid)-1) // (1, SLO): phase surely 0
	acts := sp.actionsForState(s)
	for ai, a := range acts {
		want := cfg.Arrival.CDF(cfg.Workers-1, a.Latency)
		got := 0.0
		for _, tr := range m.Actions[s][ai].Transitions {
			if int(tr.Next) == sp.emptyState() {
				got = tr.P
			}
		}
		// The builder renormalizes tiny quadrature overshoot across the
		// whole row, so allow a matching slack here.
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("action %d: P(empty) = %v, want %v", ai, got, want)
		}
	}
}

func TestVariableBatchingRowsNormalized(t *testing.T) {
	cfg := smallConfig()
	cfg.Batching = VariableBatching
	cfg.FineCells = 512
	_, m := buildFor(t, cfg) // Validate inside checks normalization
	if m.NumTransitions() == 0 {
		t.Fatal("no transitions built")
	}
}

func TestVariableBatchingPartialServeKeepsQueue(t *testing.T) {
	// Serving b < n must never transition to a queue shorter than n - b.
	cfg := smallConfig()
	cfg.Batching = VariableBatching
	cfg.FineCells = 512
	sp, m := buildFor(t, cfg)
	for _, cse := range []struct{ n, j int }{{3, 8}, {5, 8}, {4, 6}} {
		s := sp.index(cse.n, cse.j)
		acts := sp.actionsForState(s)
		for ai, a := range acts {
			if a.Batch >= cse.n {
				continue
			}
			rem := cse.n - a.Batch
			for _, tr := range m.Actions[s][ai].Transitions {
				if int(tr.Next) == sp.emptyState() && tr.P > 1e-9 {
					t.Fatalf("partial serve (n=%d,b=%d) reached empty state with P=%v", cse.n, a.Batch, tr.P)
				}
				if int(tr.Next) != sp.overflowState() && int(tr.Next) != sp.emptyState() {
					nn, _ := sp.decompose(int(tr.Next))
					if nn < rem && tr.P > 1e-9 {
						t.Fatalf("partial serve (n=%d,b=%d) transitioned to n'=%d < rem=%d with P=%v",
							cse.n, a.Batch, nn, rem, tr.P)
					}
				}
			}
		}
	}
}

func TestSQFRate(t *testing.T) {
	cfg := testConfig()
	cfg.Arrival = dist.NewPoisson(100) // sub-critical: ρ < 1 strictly
	models := cfg.Models.ParetoFront()
	perWorker := 25.0
	for n := 0; n <= 2; n++ {
		if got := sqfRate(cfg, models, n); math.Abs(got-perWorker) > 1e-9 {
			t.Errorf("sqfRate(n=%d) = %v, want λ/K = %v", n, got, perWorker)
		}
	}
	long := sqfRate(cfg, models, 3)
	if long <= 0 || long >= perWorker {
		t.Errorf("sqfRate(n=3) = %v, want in (0, λ/K): long queues attract fewer arrivals", long)
	}
	// Two regimes only: every n >= 3 shares the long-queue rate.
	if got := sqfRate(cfg, models, 10); got != long {
		t.Errorf("sqfRate(n=10) = %v, want same regime value %v", got, long)
	}
	// At full utilization the rate saturates at λ/K rather than exceeding it.
	cfg.Arrival = dist.NewPoisson(160)
	if got := sqfRate(cfg, models, 3); got > 40+1e-9 {
		t.Errorf("sqfRate at saturation = %v, want <= λ/K = 40", got)
	}
}

func TestP2CRate(t *testing.T) {
	cfg := testConfig()
	cfg.Arrival = dist.NewPoisson(100) // sub-critical: ρ < 1 strictly
	models := cfg.Models.ParetoFront()
	perWorker := 25.0
	// Small queues: indistinguishable from the uniform split, as in the
	// Appendix I SQF regime.
	for n := 0; n <= 2; n++ {
		if got := p2cRate(cfg, models, n); math.Abs(got-perWorker) > 1e-9 {
			t.Errorf("p2cRate(n=%d) = %v, want λ/K = %v", n, got, perWorker)
		}
	}
	// Beyond that the rate decays doubly exponentially: strictly
	// decreasing in n until it hits the floor, always in (0, λ/K], and
	// never below the SQF rate's long-queue regime at the first step
	// (P2C is a weaker equalizer than full JSQ).
	prev := perWorker
	for n := 3; n <= 8; n++ {
		got := p2cRate(cfg, models, n)
		if got <= 0 || got >= prev {
			t.Errorf("p2cRate(n=%d) = %v, want in (0, %v)", n, got, prev)
		}
		prev = got
	}
	if sqf, p2c := sqfRate(cfg, models, 3), p2cRate(cfg, models, 3); p2c < sqf-1e-9 {
		t.Errorf("p2cRate(n=3) = %v < sqfRate(n=3) = %v; P2C should equalize less aggressively", p2c, sqf)
	}
	// At full utilization the rate saturates at λ/K rather than exceeding it.
	cfg.Arrival = dist.NewPoisson(160)
	if got := p2cRate(cfg, models, 3); got > 40+1e-9 {
		t.Errorf("p2cRate at saturation = %v, want <= λ/K = 40", got)
	}
}

func TestTransitionsConcentrateNearExpectedArrivals(t *testing.T) {
	// From a drained queue under load λ with service l, the mean next queue
	// length is about λ·l/K; the transition row's mean should be close.
	cfg := Config{
		Models:   profile.ImageSet().Subset("shufflenet_v2_x0_5"),
		SLO:      0.150,
		Workers:  2,
		Arrival:  dist.NewPoisson(400),
		MaxQueue: 32,
	}.withDefaults()
	sp, m := buildFor(t, cfg)
	s := sp.index(1, len(sp.grid)-1)
	a := sp.actionsForState(s)[0]
	meanArrivals := cfg.Arrival.Rate() * a.Latency / float64(cfg.Workers)
	mean := 0.0
	for _, tr := range m.Actions[s][0].Transitions {
		if int(tr.Next) == sp.emptyState() || int(tr.Next) == sp.overflowState() {
			continue
		}
		nn, _ := sp.decompose(int(tr.Next))
		mean += tr.P * float64(nn)
	}
	if math.Abs(mean-meanArrivals) > 0.35 {
		t.Errorf("mean next queue %v, want ~%v (λ·l/K)", mean, meanArrivals)
	}
}
