package profile

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestImageSetHasTwentySixModels(t *testing.T) {
	s := ImageSet()
	if s.Len() != 26 {
		t.Fatalf("ImageSet has %d models, want 26", s.Len())
	}
	counts := map[string]int{}
	for _, p := range s.Profiles {
		switch {
		case strings.HasPrefix(p.Name, "efficientnet"):
			counts["efficientnet"]++
		case strings.HasPrefix(p.Name, "resnext"):
			counts["resnext"]++
		case strings.HasPrefix(p.Name, "resnet"):
			counts["resnet"]++
		case strings.HasPrefix(p.Name, "shufflenet"):
			counts["shufflenet"]++
		case strings.HasPrefix(p.Name, "mobilenet"):
			counts["mobilenet"]++
		case p.Name == "googlenet" || p.Name == "inception_v3":
			counts[p.Name]++
		default:
			t.Errorf("unexpected model %q", p.Name)
		}
	}
	// §7: 11 EfficientNets, 5 ResNets, 2 ResNeXts, GoogLeNet, 2 MobileNets,
	// Inception, 4 ShuffleNets.
	want := map[string]int{
		"efficientnet": 11, "resnet": 5, "resnext": 2, "googlenet": 1,
		"mobilenet": 2, "inception_v3": 1, "shufflenet": 4,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("family %s: got %d, want %d", k, counts[k], v)
		}
	}
}

func TestImageParetoFrontHasNineModels(t *testing.T) {
	front := ImageSet().ParetoFront()
	if front.Len() != 9 {
		names := make([]string, 0, front.Len())
		for _, p := range front.Profiles {
			names = append(names, p.Name)
		}
		t.Fatalf("image Pareto front has %d models (%v), want 9 (Fig. 3)", front.Len(), names)
	}
}

func TestParetoFrontIsMonotone(t *testing.T) {
	for _, s := range []Set{ImageSet(), TextSet()} {
		front := s.ParetoFront().SortedByLatency()
		for i := 1; i < front.Len(); i++ {
			prev, cur := front.Profiles[i-1], front.Profiles[i]
			if cur.Accuracy <= prev.Accuracy {
				t.Errorf("%s front not strictly increasing in accuracy: %s(%.4f) -> %s(%.4f)",
					s.Task, prev.Name, prev.Accuracy, cur.Name, cur.Accuracy)
			}
			if cur.BatchLatency(1) <= prev.BatchLatency(1) {
				t.Errorf("%s front not strictly increasing in latency: %s -> %s", s.Task, prev.Name, cur.Name)
			}
		}
	}
}

func TestParetoFrontDominance(t *testing.T) {
	// Every model not on the front must be dominated by some front model.
	for _, s := range []Set{ImageSet(), TextSet()} {
		front := s.ParetoFront()
		onFront := map[string]bool{}
		for _, p := range front.Profiles {
			onFront[p.Name] = true
		}
		for _, p := range s.Profiles {
			if onFront[p.Name] {
				continue
			}
			dominated := false
			for _, f := range front.Profiles {
				if f.BatchLatency(1) <= p.BatchLatency(1) && f.Accuracy > p.Accuracy {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Errorf("%s: %s is off the front but not dominated", s.Task, p.Name)
			}
		}
	}
}

func TestSLOAnchors(t *testing.T) {
	// §7: middle SLO = batch-1 latency of the highest-latency model rounded
	// up to the nearest 100 ms; highest SLO = 1.5x that latency rounded up.
	roundUp100 := func(ms float64) float64 { return math.Ceil(ms/100) * 100 }
	img := ImageSet()
	maxLat := 0.0
	for _, p := range img.Profiles {
		maxLat = math.Max(maxLat, p.BatchLatency(1))
	}
	if got := roundUp100(maxLat * 1000); got != 300 {
		t.Errorf("image middle SLO anchor = %v ms, want 300 (max latency %.1f ms)", got, maxLat*1000)
	}
	if got := roundUp100(1.5 * maxLat * 1000); got != 500 {
		t.Errorf("image high SLO anchor = %v ms, want 500", got)
	}
	txt := TextSet()
	maxLat = 0
	for _, p := range txt.Profiles {
		maxLat = math.Max(maxLat, p.BatchLatency(1))
	}
	if got := roundUp100(maxLat * 1000); got != 200 {
		t.Errorf("text middle SLO anchor = %v ms, want 200", got)
	}
	if got := roundUp100(1.5 * maxLat * 1000); got != 300 {
		t.Errorf("text high SLO anchor = %v ms, want 300", got)
	}
}

func TestMaxBatchWithinIs29AtLargestImageSLO(t *testing.T) {
	// §4.2.3 / §6: B_w = 29 observed for the largest evaluated image SLO.
	if got := ImageSet().MaxBatchWithin(0.5); got != 29 {
		t.Errorf("B_w at 500 ms = %d, want 29", got)
	}
}

func TestLatencyMonotoneInBatch(t *testing.T) {
	for _, s := range []Set{ImageSet(), TextSet()} {
		for _, p := range s.Profiles {
			for b := 2; b <= p.MaxBatch(); b++ {
				if p.BatchLatency(b) <= p.BatchLatency(b-1) {
					t.Fatalf("%s/%s: latency not increasing at batch %d", s.Task, p.Name, b)
				}
			}
		}
	}
}

func TestBatchLatencyPanicsOutOfRange(t *testing.T) {
	p := ImageSet().Profiles[0]
	for _, b := range []int{0, -1, MaxSupportedBatch + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BatchLatency(%d) did not panic", b)
				}
			}()
			p.BatchLatency(b)
		}()
	}
}

func TestThroughputImprovesWithBatching(t *testing.T) {
	for _, p := range ImageSet().Profiles {
		if p.Throughput() <= 1/p.BatchLatency(1) {
			t.Errorf("%s: batching does not improve throughput", p.Name)
		}
	}
}

func TestThroughputWithin(t *testing.T) {
	p, _ := ImageSet().ByName("shufflenet_v2_x0_5")
	if got := p.ThroughputWithin(0.001); got != 0 {
		t.Errorf("ThroughputWithin(1ms) = %v, want 0", got)
	}
	if p.ThroughputWithin(0.15) >= p.ThroughputWithin(0.5) {
		t.Errorf("tighter latency bound should not allow higher throughput")
	}
}

func TestFastestAndMostAccurate(t *testing.T) {
	img := ImageSet()
	if got := img.Fastest().Name; got != "shufflenet_v2_x0_5" {
		t.Errorf("Fastest = %s, want shufflenet_v2_x0_5", got)
	}
	if got := img.MostAccurate().Name; got != "efficientnet_v2_s" {
		t.Errorf("MostAccurate = %s, want efficientnet_v2_s", got)
	}
	txt := TextSet()
	if got := txt.Fastest().Name; got != "bert-tiny" {
		t.Errorf("text Fastest = %s, want bert-tiny", got)
	}
	if got := txt.MostAccurate().Name; got != "bert-base" {
		t.Errorf("text MostAccurate = %s, want bert-base", got)
	}
}

func TestTextSetAllOnParetoFront(t *testing.T) {
	s := TextSet()
	if got := s.ParetoFront().Len(); got != s.Len() {
		t.Errorf("text Pareto front has %d of %d models, want all (Fig. 9)", got, s.Len())
	}
}

func TestSetForTask(t *testing.T) {
	for _, task := range []string{"image", "text"} {
		s, err := SetForTask(task)
		if err != nil || s.Task != task {
			t.Errorf("SetForTask(%q) = %v, %v", task, s.Task, err)
		}
	}
	if _, err := SetForTask("audio"); err == nil {
		t.Error("SetForTask(audio) should fail")
	}
}

func TestSubset(t *testing.T) {
	s := ImageSet().Subset("resnet50", "googlenet")
	if s.Len() != 2 || s.Profiles[0].Name != "resnet50" || s.Profiles[1].Name != "googlenet" {
		t.Errorf("Subset wrong: %+v", s.Profiles)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Subset with unknown name did not panic")
			}
		}()
		ImageSet().Subset("nonexistent")
	}()
}

func TestInterpolatedSetSixtyModels(t *testing.T) {
	s := InterpolatedSet(ImageSet(), 60)
	if s.Len() != 60 {
		t.Fatalf("InterpolatedSet has %d models, want 60", s.Len())
	}
	// Strict superset of the front (Fig. 8).
	for _, f := range ImageSet().ParetoFront().Profiles {
		if _, ok := s.ByName(f.Name); !ok {
			t.Errorf("front model %s missing from interpolated set", f.Name)
		}
	}
	// All 60 must themselves be Pareto-optimal (interpolation of a front).
	if got := s.ParetoFront().Len(); got != 60 {
		t.Errorf("interpolated set front has %d models, want 60", got)
	}
	// Synthetic accuracies stay within the front's range.
	front := ImageSet().ParetoFront().SortedByLatency()
	lo := front.Profiles[0].Accuracy
	hi := front.Profiles[front.Len()-1].Accuracy
	for _, p := range s.Profiles {
		if p.Accuracy < lo-1e-9 || p.Accuracy > hi+1e-9 {
			t.Errorf("%s accuracy %.4f outside [%v,%v]", p.Name, p.Accuracy, lo, hi)
		}
	}
}

func TestInterpolatedSetSmallTotalReturnsFront(t *testing.T) {
	s := InterpolatedSet(ImageSet(), 5)
	if s.Len() != 9 {
		t.Errorf("InterpolatedSet(5) = %d models, want the 9-model front", s.Len())
	}
}

func TestAblationImageSet(t *testing.T) {
	s := AblationImageSet()
	if s.Len() != 3 {
		t.Fatalf("ablation set has %d models, want 3", s.Len())
	}
	want := []string{"shufflenet_v2_x0_5", "efficientnet_b2", "efficientnet_v2_s"}
	for i, n := range want {
		if s.Profiles[i].Name != n {
			t.Errorf("ablation[%d] = %s, want %s", i, s.Profiles[i].Name, n)
		}
	}
}

func TestParetoFrontPropertyRandomSets(t *testing.T) {
	// Property: for random profile sets, every front member is undominated
	// and every non-member is dominated.
	f := func(accs, lats []uint16) bool {
		n := len(accs)
		if len(lats) < n {
			n = len(lats)
		}
		if n == 0 {
			return true
		}
		s := Set{Task: "rand"}
		for i := 0; i < n; i++ {
			lat := 0.001 + float64(lats[i]%1000)/1000
			s.Profiles = append(s.Profiles, Profile{
				Model:   Model{Name: string(rune('a' + i%26)), Accuracy: float64(accs[i]%1000) / 1000},
				Latency: []float64{lat},
			})
		}
		front := s.ParetoFront()
		for _, p := range front.Profiles {
			for _, q := range s.Profiles {
				if q.BatchLatency(1) < p.BatchLatency(1) && q.Accuracy >= p.Accuracy {
					return false
				}
				if q.BatchLatency(1) <= p.BatchLatency(1) && q.Accuracy > p.Accuracy {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTextCapacitySupportsPaperLoads(t *testing.T) {
	// Table 4 (text): 20 workers stay under 1% violations through 4000 QPS,
	// so the fastest text model's per-worker throughput must exceed 200 QPS.
	p := TextSet().Fastest()
	if tp := p.ThroughputWithin(0.1); tp <= 200 {
		t.Errorf("bert-tiny throughput within 100ms = %.1f QPS, want > 200", tp)
	}
}
