package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
)

// Span is one stage of a query's lifetime. Durations are modeled seconds,
// so simulator and prototype traces compare directly.
type Span struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// QueryTrace is the completed per-query trace: where the latency budget of
// one query went, stage by stage. Every response — and in particular every
// SLO violation — can be attributed to the stage that consumed the budget.
//
// In a sharded deployment one query leaves one fragment per process it
// crossed (gateway, shard frontend, worker), all carrying the same TraceID;
// Process names the recording process and Parent its upstream, so Stitch
// can reassemble the fragments into one tree offline or from the merged
// /debug/traces dump.
type QueryTrace struct {
	ID          int     `json:"id"`
	Arrival     float64 `json:"arrival"` // modeled seconds from start
	Worker      int     `json:"worker"`  // worker the batch ran on (-1 if none)
	Model       string  `json:"model"`
	Batch       int     `json:"batch"`
	LatencyMS   float64 `json:"latencyMs"` // end-to-end, modeled
	DeadlineMet bool    `json:"deadlineMet"`
	Error       string  `json:"error,omitempty"`
	Spans       []Span  `json:"spans"`
	// TraceID joins this fragment to the query's fragments from other
	// processes; empty on legacy single-process traces.
	TraceID string `json:"traceId,omitempty"`
	// Process names the process that recorded the fragment ("gateway",
	// "shard-1", "worker-3", "frontend", "sim").
	Process string `json:"process,omitempty"`
	// Parent is the upstream Process that handed the query over ("" for
	// the root fragment).
	Parent string `json:"parent,omitempty"`
	// Tenant and Shard attribute the fragment before any stitching.
	Tenant string `json:"tenant,omitempty"`
	Shard  int    `json:"shard,omitempty"`
	// Decision is the policy decision that dispatched this query, with the
	// inputs it saw and its predicted-vs-realized latency (nil for shed
	// queries and legacy traces).
	Decision *Decision `json:"decision,omitempty"`
}

// NewTraceID returns a 16-hex-digit random trace ID. IDs only need to be
// unique enough to join fragments within one plane's trace rings, so the
// runtime-seeded math/rand/v2 generator suffices — the previous
// crypto/rand read was a measurable per-query syscall at saturation.
// (The simulator derives deterministic IDs from query IDs instead.)
func NewTraceID() string {
	u := rand.Uint64()
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[u&0xf]
		u >>= 4
	}
	return string(b[:])
}

// Span returns the duration of the named stage and whether it is present.
func (t QueryTrace) Span(stage string) (float64, bool) {
	for _, s := range t.Spans {
		if s.Stage == stage {
			return s.Seconds, true
		}
	}
	return 0, false
}

// TraceBuffer is a bounded ring of the most recent completed query traces,
// dumpable via its /debug/traces handler. Memory is fixed at capacity; a
// new trace overwrites the oldest once full.
type TraceBuffer struct {
	mu  sync.Mutex
	buf []QueryTrace
	// decs is slot-owned Decision storage: buf[i].Decision points at
	// decs[i] when set, so Add can copy a caller-reused decision without
	// retaining it.
	decs []Decision
	next int
	full bool
}

// DefaultTraceCapacity is the ring size serving layers use when the caller
// does not choose one.
const DefaultTraceCapacity = 256

// NewTraceBuffer returns a ring holding the last n traces (n <= 0 takes
// DefaultTraceCapacity).
func NewTraceBuffer(n int) *TraceBuffer {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &TraceBuffer{buf: make([]QueryTrace, n), decs: make([]Decision, n)}
}

// Add records a completed trace, evicting the oldest when full. The spans
// and the decision are copied into the evicted slot's own storage (spans
// grown only past their high-water mark), so callers may pass
// stack-allocated or reused buffers — the ring never retains caller
// memory.
func (b *TraceBuffer) Add(t QueryTrace) {
	b.mu.Lock()
	slot := &b.buf[b.next]
	spans := slot.Spans[:0]
	spans = append(spans, t.Spans...)
	*slot = t
	slot.Spans = spans
	if t.Decision != nil {
		b.decs[b.next] = *t.Decision
		slot.Decision = &b.decs[b.next]
	}
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
	b.mu.Unlock()
}

// Len returns the number of buffered traces.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// Snapshot returns the buffered traces oldest-first. Spans and decisions
// are deep copies: Add reuses each slot's storage in place, so a shallow
// snapshot would mutate under the caller as new traces arrive.
func (b *TraceBuffer) Snapshot() []QueryTrace {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []QueryTrace
	if !b.full {
		out = append([]QueryTrace(nil), b.buf[:b.next]...)
	} else {
		out = make([]QueryTrace, 0, len(b.buf))
		out = append(out, b.buf[b.next:]...)
		out = append(out, b.buf[:b.next]...)
	}
	for i := range out {
		out[i].Spans = append([]Span(nil), out[i].Spans...)
		if out[i].Decision != nil {
			d := *out[i].Decision
			out[i].Decision = &d
		}
	}
	return out
}

// Handler serves the buffered traces as a JSON array (the /debug/traces
// endpoint).
func (b *TraceBuffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(b.Snapshot())
	})
}

// TraceWriter streams completed traces as JSONL (one JSON object per line)
// for offline analysis; it serializes concurrent writers.
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewTraceWriter wraps w (typically the -trace-out file).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Write appends one trace line.
func (t *TraceWriter) Write(qt QueryTrace) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(qt)
}

// ReadTraces parses a JSONL trace stream (the -trace-out format) back into
// traces, in file order. Blank lines are skipped; a malformed line aborts
// with its error so silently truncated exports are caught.
func ReadTraces(r io.Reader) ([]QueryTrace, error) {
	var out []QueryTrace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var qt QueryTrace
		if err := json.Unmarshal(line, &qt); err != nil {
			return nil, err
		}
		out = append(out, qt)
	}
	return out, sc.Err()
}
