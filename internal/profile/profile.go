// Package profile holds the offline inputs RAMSIS and the baselines consume:
// per-model inference accuracy profiles and per-(model, batch size) latency
// profiles (§3.1.1). The paper profiles 26 TorchVision ImageNet models and 5
// HuggingFace BERT models on GCP n1 workers; this repository substitutes
// built-in tables calibrated so the published structural facts hold:
//
//   - exactly 9 of the 26 image models lie on the accuracy/latency Pareto
//     front (Fig. 3);
//   - the highest-latency image model's batch-1 p95 latency rounds up to
//     300 ms and 1.5× it rounds up to 500 ms, fixing the paper's image SLOs
//     {150, 300, 500} ms (§7); text analogously fixes {100, 200, 300} ms;
//   - the largest batch size meeting the largest image SLO is B_w = 29
//     (§4.2.3).
//
// Latencies are p95 values in seconds, generated from an affine batch model
// l(b) = overhead + perItem·b and materialized as explicit tables so that all
// downstream code consumes profile data, exactly as the paper's systems do.
package profile

import (
	"fmt"
	"math"
	"sort"
)

// MaxSupportedBatch is the largest batch size profiled for any model,
// matching the paper's worker queue bound N_w = 32 (§4.2.3).
const MaxSupportedBatch = 32

// Model identifies a trained ML model and its profiled accuracy on the
// application-provided test set (ImageNet top-1 or GLUE-MNLI), as a fraction
// in [0, 1].
type Model struct {
	Name     string
	Accuracy float64
}

// Profile is a model plus its latency profile: Latency[b-1] is the p95
// inference latency in seconds of serving a batch of b queries, including
// input transfer and pre-processing time, for b in [1, MaxBatch].
type Profile struct {
	Model
	Latency []float64
}

// MaxBatch returns the largest profiled batch size.
func (p Profile) MaxBatch() int { return len(p.Latency) }

// BatchLatency returns the p95 latency in seconds for a batch of size b.
// It panics if b is outside [1, MaxBatch]: callers must clamp to the
// profiled range, mirroring the paper's requirement that only profiled
// (model, batch) pairs are schedulable.
func (p Profile) BatchLatency(b int) float64 {
	if b < 1 || b > len(p.Latency) {
		panic(fmt.Sprintf("profile: batch size %d outside profiled range [1,%d] for %s", b, len(p.Latency), p.Name))
	}
	return p.Latency[b-1]
}

// Throughput returns the best profiled steady-state throughput (queries per
// second) of the model on one worker: max over b of b / l(b).
func (p Profile) Throughput() float64 {
	best := 0.0
	for b := 1; b <= p.MaxBatch(); b++ {
		if tp := float64(b) / p.BatchLatency(b); tp > best {
			best = tp
		}
	}
	return best
}

// ThroughputWithin returns the best throughput achievable while keeping the
// batch latency at or below maxLatency seconds; 0 if no batch qualifies.
func (p Profile) ThroughputWithin(maxLatency float64) float64 {
	best := 0.0
	for b := 1; b <= p.MaxBatch(); b++ {
		l := p.BatchLatency(b)
		if l <= maxLatency {
			if tp := float64(b) / l; tp > best {
				best = tp
			}
		}
	}
	return best
}

// MaxBatchWithin returns the largest batch size whose latency is at or below
// maxLatency seconds, or 0 if even batch 1 exceeds it.
func (p Profile) MaxBatchWithin(maxLatency float64) int {
	best := 0
	for b := 1; b <= p.MaxBatch(); b++ {
		if p.BatchLatency(b) <= maxLatency {
			best = b
		}
	}
	return best
}

// Set is a corpus of model profiles available on a worker for one task.
type Set struct {
	Task     string
	Profiles []Profile
}

// Len returns the number of models in the set.
func (s Set) Len() int { return len(s.Profiles) }

// ByName returns the profile with the given model name.
func (s Set) ByName(name string) (Profile, bool) {
	for _, p := range s.Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Subset returns the profiles whose names are listed, in listed order.
// It panics on an unknown name so experiment configurations fail loudly.
func (s Set) Subset(names ...string) Set {
	out := Set{Task: s.Task}
	for _, n := range names {
		p, ok := s.ByName(n)
		if !ok {
			panic(fmt.Sprintf("profile: model %q not in set %q", n, s.Task))
		}
		out.Profiles = append(out.Profiles, p)
	}
	return out
}

// ScaleLatency returns a copy with every latency multiplied by f, modeling
// a different worker hardware type (§7 notes worker homogeneity is not
// fundamental: RAMSIS generates policies per worker).
func (s Set) ScaleLatency(f float64) Set {
	if !(f > 0) {
		panic(fmt.Sprintf("profile: invalid latency scale %v", f))
	}
	out := Set{Task: s.Task, Profiles: make([]Profile, len(s.Profiles))}
	for i, p := range s.Profiles {
		lat := make([]float64, len(p.Latency))
		for b, l := range p.Latency {
			lat[b] = l * f
		}
		out.Profiles[i] = Profile{Model: p.Model, Latency: lat}
	}
	return out
}

// SortedByLatency returns a copy sorted by ascending batch-1 latency,
// breaking ties by descending accuracy.
func (s Set) SortedByLatency() Set {
	out := Set{Task: s.Task, Profiles: append([]Profile(nil), s.Profiles...)}
	sort.SliceStable(out.Profiles, func(i, j int) bool {
		li, lj := out.Profiles[i].BatchLatency(1), out.Profiles[j].BatchLatency(1)
		if li != lj {
			return li < lj
		}
		return out.Profiles[i].Accuracy > out.Profiles[j].Accuracy
	})
	return out
}

// SpeedOrder returns the set's model indices sorted fastest-first by
// batch-1 latency (ties broken by descending accuracy, matching
// SortedByLatency). Degraded-mode serving (internal/admit) walks this
// order: level k forbids the k slowest models, so escalating levels clamp
// selection to progressively faster models.
func (s Set) SpeedOrder() []int {
	order := make([]int, len(s.Profiles))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pi, pj := s.Profiles[order[a]], s.Profiles[order[b]]
		li, lj := pi.BatchLatency(1), pj.BatchLatency(1)
		if li != lj {
			return li < lj
		}
		return pi.Accuracy > pj.Accuracy
	})
	return order
}

// ParetoFront returns the models on the Pareto front of accuracy and batch-1
// latency: every model for which no other model has both lower-or-equal
// latency and strictly higher accuracy (nor equal accuracy at strictly lower
// latency). RAMSIS prunes actions to this front (§4.3.3).
func (s Set) ParetoFront() Set {
	sorted := s.SortedByLatency()
	out := Set{Task: s.Task}
	bestAcc := math.Inf(-1)
	for _, p := range sorted.Profiles {
		if p.Accuracy > bestAcc {
			out.Profiles = append(out.Profiles, p)
			bestAcc = p.Accuracy
		}
	}
	return out
}

// Fastest returns the lowest-latency model in the set, the forced choice
// when no action can satisfy a state's slack (§4.3.1).
func (s Set) Fastest() Profile {
	if len(s.Profiles) == 0 {
		panic("profile: Fastest on empty set")
	}
	best := s.Profiles[0]
	for _, p := range s.Profiles[1:] {
		if p.BatchLatency(1) < best.BatchLatency(1) {
			best = p
		}
	}
	return best
}

// MostAccurate returns the highest-accuracy model in the set.
func (s Set) MostAccurate() Profile {
	if len(s.Profiles) == 0 {
		panic("profile: MostAccurate on empty set")
	}
	best := s.Profiles[0]
	for _, p := range s.Profiles[1:] {
		if p.Accuracy > best.Accuracy {
			best = p
		}
	}
	return best
}

// MaxBatchWithin returns B_w: the largest batch size across all models whose
// latency meets the SLO (§4.2.1), or 0 if none does.
func (s Set) MaxBatchWithin(slo float64) int {
	best := 0
	for _, p := range s.Profiles {
		if b := p.MaxBatchWithin(slo); b > best {
			best = b
		}
	}
	return best
}

// affineProfile materializes l(b) = overhead + perItem·b (milliseconds in,
// seconds out) for batches 1..MaxSupportedBatch.
func affineProfile(name string, accuracyPct, overheadMS, perItemMS float64) Profile {
	lat := make([]float64, MaxSupportedBatch)
	for b := 1; b <= MaxSupportedBatch; b++ {
		lat[b-1] = (overheadMS + perItemMS*float64(b)) / 1000
	}
	return Profile{Model: Model{Name: name, Accuracy: accuracyPct / 100}, Latency: lat}
}

// ImageSet returns the 26-model image classification corpus (Fig. 3): 11
// EfficientNets, 5 ResNets, 2 ResNeXts, GoogLeNet, 2 MobileNets, Inception,
// and 4 ShuffleNets. Accuracies are profiled ImageNet top-1 values; the
// batch-latency parameters are calibrated so that exactly 9 models lie on
// the Pareto front and B_w = 29 at the 500 ms SLO (see package comment).
func ImageSet() Set {
	const oh = 6.0 // dispatch + transfer overhead, ms
	mk := func(name string, acc, perItem float64) Profile {
		return affineProfile(name, acc, oh, perItem)
	}
	return Set{Task: "image", Profiles: []Profile{
		// Pareto front, fastest to slowest.
		mk("shufflenet_v2_x0_5", 60.55, 16.9),
		mk("mobilenet_v3_small", 67.67, 19.0),
		// 23.3 rather than a round 23.0: at 23.0 the model's best
		// within-SLO/2 throughput on 60 workers lands exactly on a sweep
		// load rung (2,400 QPS), letting load-granular baselines admit it
		// at utilization exactly 1 — a degenerate boundary real profiled
		// numbers never hit.
		mk("shufflenet_v2_x1_0", 69.36, 23.3),
		mk("mobilenet_v2", 71.88, 31.0),
		mk("shufflenet_v2_x2_0", 76.23, 40.0),
		mk("efficientnet_b0", 77.69, 52.0),
		mk("efficientnet_b2", 80.61, 77.0),
		mk("efficientnet_b4", 83.38, 130.0),
		mk("efficientnet_v2_s", 84.23, 278.0),
		// Dominated models.
		mk("shufflenet_v2_x1_5", 72.996, 41.0),
		mk("googlenet", 69.78, 58.0),
		mk("resnet18", 69.76, 45.0),
		mk("resnet34", 73.31, 68.0),
		mk("resnet50", 76.13, 88.0),
		mk("resnet101", 77.37, 140.0),
		mk("resnet152", 78.31, 190.0),
		mk("resnext50_32x4d", 77.61, 110.0),
		mk("resnext101_32x8d", 79.31, 230.0),
		mk("inception_v3", 77.29, 95.0),
		mk("efficientnet_b1", 78.64, 80.0),
		mk("efficientnet_b3", 82.01, 135.0),
		mk("efficientnet_b5", 83.44, 280.0),
		mk("efficientnet_b6", 84.00, 283.0),
		mk("efficientnet_b7", 84.12, 285.0),
		mk("efficientnet_v2_m", 84.05, 284.0),
		mk("efficientnet_v2_l", 84.15, 287.0),
	}}
}

// TextSet returns the 5-model BERT text classification corpus (Fig. 9):
// tiny, mini, small, medium, base, with profiled GLUE-MNLI accuracies.
// All five are on the Pareto front; the highest-latency model's batch-1
// latency rounds up to 200 ms, fixing the text SLOs {100, 200, 300} ms.
func TextSet() Set {
	const oh = 4.0
	mk := func(name string, acc, perItem float64) Profile {
		return affineProfile(name, acc, oh, perItem)
	}
	return Set{Task: "text", Profiles: []Profile{
		mk("bert-tiny", 68.5, 4.0),
		mk("bert-mini", 74.8, 13.0),
		mk("bert-small", 77.6, 31.0),
		mk("bert-medium", 80.4, 65.0),
		mk("bert-base", 84.0, 140.0),
	}}
}

// SetForTask returns the built-in corpus for "image" or "text".
func SetForTask(task string) (Set, error) {
	switch task {
	case "image":
		return ImageSet(), nil
	case "text":
		return TextSet(), nil
	}
	return Set{}, fmt.Errorf("profile: unknown task %q (want image or text)", task)
}

// InterpolatedSet builds the Fig. 8 high-model-count scenario: a strict
// superset of the base set's Pareto front, adding synthetic models whose
// accuracies are evenly spaced between the front's endpoints and whose
// latencies are piecewise-linear interpolations of the front, until the set
// holds total models. The paper uses total = 60 in 0.5 % accuracy steps.
func InterpolatedSet(base Set, total int) Set {
	front := base.ParetoFront()
	if total <= front.Len() {
		return front
	}
	fp := front.SortedByLatency().Profiles
	lo, hi := fp[0].Accuracy, fp[len(fp)-1].Accuracy
	n := total - len(fp)
	out := Set{Task: base.Task, Profiles: append([]Profile(nil), fp...)}
	maxBatch := fp[0].MaxBatch()
	for i := 1; i <= n; i++ {
		acc := lo + (hi-lo)*float64(i)/float64(n+1)
		lat := make([]float64, maxBatch)
		for b := 1; b <= maxBatch; b++ {
			lat[b-1] = interpLatency(fp, acc, b)
		}
		out.Profiles = append(out.Profiles, Profile{
			Model:   Model{Name: fmt.Sprintf("synthetic_%05.2f", acc*100), Accuracy: acc},
			Latency: lat,
		})
	}
	return out
}

// interpLatency linearly interpolates the latency at batch b for the given
// accuracy along the front (which is sorted by ascending latency/accuracy).
func interpLatency(front []Profile, acc float64, b int) float64 {
	for i := 1; i < len(front); i++ {
		a0, a1 := front[i-1].Accuracy, front[i].Accuracy
		if acc <= a1 || i == len(front)-1 {
			frac := (acc - a0) / (a1 - a0)
			l0, l1 := front[i-1].BatchLatency(b), front[i].BatchLatency(b)
			return l0 + frac*(l1-l0)
		}
	}
	return front[len(front)-1].BatchLatency(b)
}

// AblationImageSet returns the Fig. 12 three-model set: the minimum-latency
// model, a medium-latency model, and a long-latency model from Fig. 3.
func AblationImageSet() Set {
	return ImageSet().Subset("shufflenet_v2_x0_5", "efficientnet_b2", "efficientnet_v2_s")
}
