// Package core implements RAMSIS, the paper's contribution: offline
// generation of per-worker model-selection policies from a Markov Decision
// Process whose transition probabilities are derived from the query arrival
// distribution and the load-balancing strategy (§3-§5), plus the online
// policy objects (state lookup, load-adaptive policy sets) the serving layer
// consumes.
package core

import (
	"fmt"
	"math"
	"time"

	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

// Batching selects the action-space batching strategy (§4.3.2).
type Batching int

const (
	// MaximalBatching always serves all queued queries in one batch
	// (b = n), the paper's default.
	MaximalBatching Batching = iota
	// VariableBatching allows any batch size 1 <= b <= n.
	VariableBatching
)

func (b Batching) String() string {
	switch b {
	case MaximalBatching:
		return "max"
	case VariableBatching:
		return "variable"
	}
	return fmt.Sprintf("Batching(%d)", int(b))
}

// Discretization selects the slack-time discretization (§4.2).
type Discretization int

const (
	// FixedLength (FLD) uses the uniform grid {0, SLO/D, ..., SLO}.
	FixedLength Discretization = iota
	// ModelBased (MD) uses the unique inference latencies l_w(m,b) that
	// meet the SLO, with a zero floor bucket prepended for slacks below
	// the smallest latency.
	ModelBased
)

func (d Discretization) String() string {
	switch d {
	case FixedLength:
		return "FLD"
	case ModelBased:
		return "MD"
	}
	return fmt.Sprintf("Discretization(%d)", int(d))
}

// Balancing selects the load-balancing strategy the per-worker MDP accounts
// for in its transition probabilities (§3.2.1, Appendix I).
type Balancing int

const (
	// RoundRobin sends every K-th central-queue arrival to the worker.
	RoundRobin Balancing = iota
	// ShortestQueueFirst models join-the-shortest-queue via the Appendix I
	// conditional Poisson approximation.
	ShortestQueueFirst
	// PowerOfTwoChoices models the two-sample JSQ approximation via the
	// same conditional-Poisson machinery with the Mitzenmacher
	// doubly-exponential queue tail standing in for Appendix I's ρ^K term.
	PowerOfTwoChoices
)

func (b Balancing) String() string {
	switch b {
	case RoundRobin:
		return "round-robin"
	case ShortestQueueFirst:
		return "shortest-queue-first"
	case PowerOfTwoChoices:
		return "power-of-two-choices"
	}
	return fmt.Sprintf("Balancing(%d)", int(b))
}

// ParseBalancing maps a CLI strategy name to the Balancing assumption. It
// accepts the same aliases as lb.New so -lb flags configure both the
// offline MDP and the online balancer consistently; "" means round-robin.
func ParseBalancing(s string) (Balancing, error) {
	switch s {
	case "", "rr", "round-robin", "roundrobin":
		return RoundRobin, nil
	case "jsq", "shortest-queue", "sqf":
		return ShortestQueueFirst, nil
	case "p2c", "power-of-two", "poweroftwo":
		return PowerOfTwoChoices, nil
	}
	return RoundRobin, fmt.Errorf("core: unknown balancing strategy %q (want rr, jsq, or p2c)", s)
}

// Solver selects the exact MDP solution method (§4.1).
type Solver int

const (
	// SolveValueIteration is the paper's default method.
	SolveValueIteration Solver = iota
	// SolvePolicyIteration is the alternative exact method §4.1 notes.
	SolvePolicyIteration
	// SolvePrioritized is the fast-resolve method: asynchronous prioritized
	// value iteration (Gauss-Seidel backups in Bellman-residual order with
	// adaptive-aggregation acceleration) on the compiled form. It reaches
	// the same fixed point as value iteration within tolerance in far fewer
	// sweeps but is not byte-pinned against the slice solver.
	SolvePrioritized
)

func (s Solver) String() string {
	switch s {
	case SolveValueIteration:
		return "value-iteration"
	case SolvePolicyIteration:
		return "policy-iteration"
	case SolvePrioritized:
		return "prioritized"
	}
	return fmt.Sprintf("Solver(%d)", int(s))
}

// ParseSolver maps a CLI solver name to the Solver method, accepting the
// common abbreviations; "" means value iteration (the paper's default).
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "", "vi", "value-iteration":
		return SolveValueIteration, nil
	case "pi", "policy-iteration":
		return SolvePolicyIteration, nil
	case "prioritized", "pvi":
		return SolvePrioritized, nil
	}
	return SolveValueIteration, fmt.Errorf("core: unknown solver %q (want vi, pi, or prioritized)", s)
}

// Config describes one worker-level policy-generation problem: the offline
// inputs of §3.1.1 plus the simplification knobs of §4.
type Config struct {
	// Models are the profiles pre-loaded on the worker.
	Models profile.Set
	// SLO is the response latency SLO in seconds.
	SLO float64
	// Workers is K, the number of workers the load balancer spreads the
	// central queue across.
	Workers int
	// Arrival is the query arrival distribution at the central queue.
	Arrival dist.Process

	// Batching strategy; default MaximalBatching.
	Batching Batching
	// Disc is the slack discretization; default FixedLength.
	Disc Discretization
	// D is the FLD resolution (grid {0, SLO/D, ..., SLO}); default 100.
	D int
	// MaxQueue is N_w, the worker queue bound; default 32. It may exceed
	// the profiled batch range: batches clamp to each model's profiled
	// maximum, so over-long queues drain in partial batches.
	MaxQueue int
	// NoParetoPruning disables the §4.3.3 action-space pruning.
	NoParetoPruning bool

	// Gamma is the value-iteration discount factor; default 0.99.
	Gamma float64
	// Solver selects the exact solution method (§4.1: value iteration by
	// default; policy iteration as the noted alternative; prioritized as
	// the fast-resolve path for online re-solves).
	Solver Solver
	// Float32 runs the value-iteration-family solve kernels in float32.
	// The stopping tolerance is floored at a few float32 ULPs of the value
	// scale, so the policy matches the float64 argmaxes wherever actions
	// are separated by more than that band. Ignored by policy iteration.
	Float32 bool
	// AggQueue, when > 1, warm-starts the solve from a queue-coarsened
	// aggregate problem: the queue axis is grouped by this factor, the
	// small aggregate MDP is solved first, and its values are linearly
	// disaggregated onto the full space as the solver's initial vector.
	// The fixed point — and therefore the generated policy — is unchanged;
	// only the iteration count to reach it drops. Ignored when
	// Config.InitialValues already supplies a donor vector.
	AggQueue int
	// ProbFloor prunes transition entries below it (their mass folds into
	// the overflow complement, which is conservative); default 1e-10.
	ProbFloor float64
	// FineCells is the quadrature resolution for transition integrals;
	// default 512.
	FineCells int
	// Balancing strategy; default RoundRobin.
	Balancing Balancing
	// BatchWeightedReward multiplies the §4.1 reward by the batch size, an
	// ablation of the paper's per-decision reward.
	BatchWeightedReward bool
	// Timeout aborts policy generation with ErrTimeout when exceeded
	// (0 means no limit). Used by the Table 2 runtime study.
	Timeout time.Duration

	// InitialValues optionally warm-starts the solver from a previously
	// converged value vector — typically a neighboring rate bucket's, whose
	// state space is identical because only the arrival process differs. It
	// never changes the solved policy's fixed point, only the iteration
	// count; it is silently ignored when its length does not match the
	// built MDP's state count (e.g. a donor solved under different knobs).
	InitialValues []float64
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.D == 0 {
		c.D = 100
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 32
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.ProbFloor == 0 {
		c.ProbFloor = 1e-10
	}
	if c.FineCells == 0 {
		c.FineCells = 512
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Models.Len() == 0 {
		return fmt.Errorf("core: no models configured")
	}
	if !(c.SLO > 0) || math.IsInf(c.SLO, 0) {
		return fmt.Errorf("core: invalid SLO %v", c.SLO)
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: invalid worker count %d", c.Workers)
	}
	if c.Arrival == nil {
		return fmt.Errorf("core: nil arrival distribution")
	}
	if c.D < 1 {
		return fmt.Errorf("core: invalid FLD resolution D=%d", c.D)
	}
	if c.MaxQueue < 1 {
		return fmt.Errorf("core: invalid max queue %d", c.MaxQueue)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("core: discount %v outside [0,1)", c.Gamma)
	}
	if c.AggQueue < 0 {
		return fmt.Errorf("core: invalid queue aggregation factor %d", c.AggQueue)
	}
	return nil
}
