// Command simulate runs one MS&S method through the discrete-event
// simulator, mirroring the artifact's run_sim.py:
//
//	simulate --m RAMSIS --trace real --task image --slo 150 --workers 60
//	simulate --m JF --trace constant --load 2000 --task image --slo 150 --workers 60
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ramsis/internal/adapt"
	"ramsis/internal/admit"
	"ramsis/internal/baselines"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/llm"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
	"ramsis/internal/trace"
)

// parseMultipliers parses "-tenant-mult bronze=4,gold=2" into a rate
// multiplier map for tenant.ArrivalsScaled.
func parseMultipliers(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("tenant-mult: %q is not name=factor", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("tenant-mult: bad factor in %q", kv)
		}
		out[strings.TrimSpace(name)] = f
	}
	return out, nil
}

// llmSimOpts carries the flag subset the token-level simulation consumes.
type llmSimOpts struct {
	method      string
	profilePath string
	class       string
	kvCap       int
	bucket      int
	traceArg    string
	load        float64
	dur         float64
	stepLoad    float64
	stepAt      float64
	stepDur     float64
	slo         float64
	workers     int
	seed        int64
	solverArg   string
	solveF32    bool
	traceOut    string
}

// runLLMSim runs one method through the token-level continuous-batching
// simulator: RAMSIS selects from the token-stream policy, Scalar from a
// queue-state policy over collapsed per-query profiles (what the scalar MDP
// would see for this workload), and Fixed pins the most accurate model.
func runLLMSim(o llmSimOpts) {
	solver, err := core.ParseSolver(o.solverArg)
	if err != nil {
		log.Fatal(err)
	}
	models := llm.BuiltinSet()
	if o.profilePath != "" {
		if models, err = llm.LoadSetFile(o.profilePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d step models from %s\n", models.Len(), o.profilePath)
	}
	class, err := llm.ClassByName(o.class)
	if err != nil {
		log.Fatal(err)
	}
	var tr trace.Trace
	switch o.traceArg {
	case "constant":
		tr = trace.Constant(o.load, o.dur)
	case "real":
		tr = trace.Twitter()
	case "step":
		if o.stepLoad <= 0 {
			log.Fatal("--trace step requires --step-load")
		}
		tr = trace.Step(o.load, o.stepLoad, o.stepAt, o.stepAt+o.stepDur, o.dur)
	default:
		log.Fatalf("unknown trace %q", o.traceArg)
	}
	rate := o.load
	if o.traceArg != "constant" {
		// One policy per run: provision non-constant traces for their peak.
		rate = tr.MaxQPS()
	}

	var sel sim.ModelSelector
	var tokenPol *core.LLMPolicy
	switch o.method {
	case "RAMSIS":
		fmt.Printf("generating token-stream policy (%s class, SLO %.0f ms, %d workers, %.0f QPS)...\n",
			class.Name, o.slo*1000, o.workers, rate)
		pol, err := core.GenerateLLM(core.LLMConfig{
			Models: models, SLO: o.slo, Workers: o.workers, Rate: rate,
			In: class.In, Out: class.Out, KVCap: o.kvCap, TokenBucket: o.bucket,
			Solver: solver, Float32: o.solveF32,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy: %d states, %d transitions, %d iterations (build %s, solve %s)\n",
			pol.States, pol.Transitions, pol.Iterations,
			pol.BuildTime.Round(time.Millisecond), pol.SolveTime.Round(time.Millisecond))
		tokenPol = pol
		if sel, err = sim.NewLLMPolicySelector(pol, models); err != nil {
			log.Fatal(err)
		}
	case "Scalar":
		fmt.Printf("generating scalar queue-state policy over collapsed profiles (%.0f QPS)...\n", rate)
		pol, err := core.Generate(core.Config{
			Models:  models.ScalarProfiles(class.In.MeanLen(), class.Out.MeanLen(), 0),
			SLO:     o.slo,
			Workers: o.workers,
			Arrival: dist.NewPoisson(rate),
			Solver:  solver,
			Float32: o.solveF32,
		})
		if err != nil {
			log.Fatal(err)
		}
		if sel, err = sim.NewScalarPolicySelector(pol, models); err != nil {
			log.Fatal(err)
		}
	case "Fixed":
		sel = sim.FixedSelector(models.MostAccurate())
	default:
		log.Fatalf("unknown LLM method %q (want RAMSIS, Scalar, or Fixed)", o.method)
	}

	e := sim.NewLLMEngine(models, o.slo, o.workers, sel)
	e.KVCap = o.kvCap
	e.CollectLatencies = true
	if o.traceOut != "" {
		fh, err := os.OpenFile(o.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		e.TraceWriter = telemetry.NewTraceWriter(fh)
	}
	events := trace.TokenArrivals(tr, o.seed, class.In, class.Out)
	queries := make([]sim.TokenQuery, len(events))
	for i, ev := range events {
		queries[i] = sim.TokenQuery{ID: i, Arrival: ev.T, Prefill: ev.Prefill, Decode: ev.Decode}
	}
	fmt.Printf("simulating %d token-annotated queries (%s trace, %s class, SLO %.0f ms, %d workers)...\n",
		len(queries), tr.Name, class.Name, o.slo*1000, o.workers)
	m := e.Run(queries)

	fmt.Printf("method:                      %s\n", o.method)
	fmt.Printf("served / dropped:            %d / %d\n", m.Served, m.Dropped)
	fmt.Printf("steps / model switches:      %d / %d\n", m.Steps, m.ModelSwitches)
	fmt.Printf("prefill / decode tokens:     %d / %d\n", m.PrefillTokens, m.DecodeTokens)
	fmt.Printf("peak KV usage:               %.4f\n", m.PeakKVUsage)
	fmt.Printf("accuracy/satisfied query:    %.4f\n", m.AccuracyPerSatisfiedQuery())
	fmt.Printf("latency SLO violation rate:  %.4f%%\n", m.ViolationRate()*100)
	fmt.Printf("latency p50/p95/p99 (ms):    %.1f / %.1f / %.1f\n",
		m.LatencyP50*1000, m.LatencyP95*1000, m.LatencyP99*1000)
	fmt.Printf("TTFT p50/p95/p99 (ms):       %.1f / %.1f / %.1f\n",
		m.TTFTP50*1000, m.TTFTP95*1000, m.TTFTP99*1000)
	fmt.Printf("TBT p50/p95/p99 (ms):        %.1f / %.1f / %.1f\n",
		m.TBTP50*1000, m.TBTP95*1000, m.TBTP99*1000)
	fmt.Println("model usage (queries):")
	for name, c := range m.ModelCounts {
		fmt.Printf("  %-22s %d\n", name, c)
	}
	if tokenPol != nil {
		fmt.Printf("policy expectation:          accuracy %.4f, violation %.4f%%\n",
			tokenPol.ExpectedAccuracy, tokenPol.ExpectedViolation*100)
	}
	fmt.Println("script complete!")
}

func main() {
	var (
		workload  = flag.String("workload", "scalar", "workload kind: scalar (one latency per query batch) or llm (token streams through continuous-batching workers; methods RAMSIS, Scalar, Fixed)")
		method    = flag.String("m", "RAMSIS", "MS&S method: RAMSIS, JF, MS, Greedy")
		traceArg  = flag.String("trace", "constant", "query trace: real (Twitter) or constant")
		task      = flag.String("task", "image", "inference task: image or text")
		sloMS     = flag.Float64("slo", 150, "latency SLO in milliseconds")
		workers   = flag.Int("workers", 60, "number of workers")
		load      = flag.Float64("load", 2000, "query load in QPS (constant trace)")
		dur       = flag.Float64("dur", 30, "constant-trace duration in seconds")
		seed      = flag.Int64("seed", 1, "workload seed")
		d         = flag.Int("d", 100, "FLD resolution for RAMSIS policies")
		maxQueue  = flag.Int("maxqueue", 0, "queue-length bound N_w (0 = default 32): caps the RAMSIS MDP state space, and with -admit cap also sets the online admission bound (workers x N_w outstanding) — one knob for both, since policy guarantees lapse past N_w anyway")
		solverArg = flag.String("solver", "vi", "RAMSIS MDP solver: vi (value iteration, the paper's default), pi (policy iteration), or prioritized (fast-resolve: residual-ordered Gauss-Seidel sweeps; same policy, far fewer sweeps)")
		solveF32  = flag.Bool("solve-f32", false, "run the RAMSIS solve kernels in float32 (faster; the policy matches float64 wherever actions are separated by more than a few ULPs of the value scale)")
		aggQueue  = flag.Int("agg-queue", 0, "queue-axis aggregation factor (>1): warm-start each solve from a queue-coarsened aggregate of the MDP; the policy is unchanged, only the solve converges faster — pair with a large -maxqueue")
		noise     = flag.Float64("noise", 0, "inference latency stddev in ms (0 = deterministic p95)")
		polPath   = flag.String("policy", "", "load a saved RAMSIS policy JSON (from ramsisgen) instead of generating")
		msTable   = flag.String("ms-table", "", "load a ModelSwitching profile JSON (from msgen) instead of profiling")
		lbArg     = flag.String("lb", "rr", "RAMSIS per-worker load balancer: rr, jsq, or p2c (policies are generated with the matching MDP transition model)")
		traceOut  = flag.String("trace-out", "", "append per-query trace fragments (deterministic sim-<id> trace IDs, with attached select decisions) as JSONL to this file; stitch with `trace -stitch`")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt    = flag.String("log-format", "text", "log format: text or json")

		adaptive    = flag.Bool("adapt", false, "RAMSIS only: close the adaptation loop (drift-detect the monitored rate, re-solve and hot-swap policies mid-run)")
		adaptBand   = flag.Float64("adapt-band", 0.2, "adaptation hysteresis half-width as a fraction of the solved-for rate")
		adaptDwell  = flag.Float64("adapt-dwell", 2, "seconds the rate must stay outside the band before re-solving")
		adaptBucket = flag.Float64("adapt-bucket", 0, "rate bucket size in QPS for re-solves and the policy cache (0 = hysteresis band width at the initial rate)")
		stepLoad    = flag.Float64("step-load", 0, "step trace: QPS during the step (with --trace step)")
		stepAt      = flag.Float64("step-at", 10, "step trace: seconds into the run the step starts")
		stepDur     = flag.Float64("step-dur", 10, "step trace: step duration in seconds")

		tenantsFile = flag.String("tenants", "", "multi-tenant mode: tenant contract JSON; each tenant offers its contracted rate over -dur, violations are judged per tenant SLO, and weighted-fair admission meters tenants (wraps -admit as the inner layer)")
		tenantMult  = flag.String("tenant-mult", "", "per-tenant offered-rate multipliers, e.g. bronze=4 or bronze=4,gold=2 — the overload experiment knob (requires -tenants)")

		llmProfile = flag.String("llm-profile", "", "LLM workload: step-model profile JSON (kinded format; empty = builtin chat set)")
		llmClass   = flag.String("llm-class", "general", "LLM workload: token-length class (general, codegen, or reasoning)")
		llmKVCap   = flag.Int("llm-kv-cap", 0, "LLM workload: override every model's KV-cache capacity in tokens (0 = per-model defaults)")
		llmBucket  = flag.Int("llm-bucket", 0, "LLM workload: outstanding-token bucket width for the token-stream MDP (0 = default 512)")

		admitName    = flag.String("admit", "none", "admission control: none, deadline (shed queries whose deadline is unmeetable), or cap (bound outstanding work; unifies the -maxqueue N_w bound online)")
		admitMargin  = flag.Float64("admit-margin", 1, "deadline admission: shed when estimated wait exceeds SLO*margin minus best-case service time")
		admitDegrade = flag.Int("admit-degrade", 0, "degraded-mode depth: maximum number of slowest models to forbid under confirmed overload (0 = off; requires -admit)")
	)
	flag.Parse()
	if _, err := telemetry.SetupLogging(*logLevel, *logFmt, "simulate"); err != nil {
		log.Fatal(err)
	}

	if *workload == "llm" {
		runLLMSim(llmSimOpts{
			method: *method, profilePath: *llmProfile, class: *llmClass,
			kvCap: *llmKVCap, bucket: *llmBucket,
			traceArg: *traceArg, load: *load, dur: *dur,
			stepLoad: *stepLoad, stepAt: *stepAt, stepDur: *stepDur,
			slo: *sloMS / 1000, workers: *workers, seed: *seed,
			solverArg: *solverArg, solveF32: *solveF32, traceOut: *traceOut,
		})
		return
	} else if *workload != "scalar" {
		log.Fatalf("unknown workload %q (want scalar or llm)", *workload)
	}

	models, err := profile.SetForTask(*task)
	if err != nil {
		log.Fatal(err)
	}
	var tenants []tenant.Tenant
	var mult map[string]float64
	if *tenantsFile != "" {
		data, err := os.ReadFile(*tenantsFile)
		if err != nil {
			log.Fatal(err)
		}
		if tenants, err = tenant.Parse(data); err != nil {
			log.Fatal(err)
		}
		if mult, err = parseMultipliers(*tenantMult); err != nil {
			log.Fatal(err)
		}
		// The method solves for the contracted aggregate: overload beyond a
		// contract is the fair admitter's problem, not the solver's. The
		// constant trace at that rate also keeps the oracle monitor honest.
		total := 0.0
		for _, t := range tenants {
			total += t.RateQPS
		}
		*traceArg = "constant"
		*load = total
	} else if *tenantMult != "" {
		log.Fatal("-tenant-mult requires -tenants")
	}
	slo := *sloMS / 1000
	balancing, err := core.ParseBalancing(*lbArg)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := core.ParseSolver(*solverArg)
	if err != nil {
		log.Fatal(err)
	}

	var tr trace.Trace
	var mon monitor.Monitor
	switch *traceArg {
	case "real":
		tr = trace.Twitter()
		mon = monitor.NewMovingAverage(0.5)
	case "constant":
		tr = trace.Constant(*load, *dur)
		mon = monitor.Oracle{Trace: tr}
	case "step":
		if *stepLoad <= 0 {
			log.Fatal("--trace step requires --step-load")
		}
		tr = trace.Step(*load, *stepLoad, *stepAt, *stepAt+*stepDur, *dur)
		mon = monitor.NewMovingAverage(0.5)
	default:
		log.Fatalf("unknown trace %q", *traceArg)
	}

	if *adaptive && *method != "RAMSIS" {
		log.Fatalf("-adapt applies to the RAMSIS method, not %q", *method)
	}

	var sched sim.Scheduler
	var adapter *adapt.Adapter
	switch *method {
	case "RAMSIS":
		base := core.Config{Models: models, SLO: slo, Workers: *workers, Arrival: dist.NewPoisson(1), D: *d, MaxQueue: *maxQueue, Balancing: balancing,
			Solver: solver, Float32: *solveF32, AggQueue: *aggQueue}
		if *adaptive {
			// Adaptive mode: one policy solved for the starting rate; every
			// later rate is the drift detector's job.
			initLoad := tr.QPSAt(0)
			var initial *core.Policy
			if *polPath != "" {
				initial, err = core.LoadPolicy(*polPath, models)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("loaded initial policy %s (load %.0f QPS)\n", *polPath, initial.Load)
			} else {
				cfg := base
				cfg.Arrival = dist.NewPoisson(initLoad)
				fmt.Printf("generating initial RAMSIS policy at %.0f QPS...\n", initLoad)
				if initial, err = core.Generate(cfg); err != nil {
					log.Fatal(err)
				}
			}
			adapter, err = adapt.New(adapt.Config{
				Base:       base,
				Band:       *adaptBand,
				Dwell:      *adaptDwell,
				BucketSize: *adaptBucket,
			}, initial)
			if err != nil {
				log.Fatal(err)
			}
			r := sim.NewAdaptiveRAMSIS(adapter, mon)
			r.Balance = balancing
			r.LB = sim.BalancerFor(balancing, *seed)
			sched = r
			break
		}
		set := core.NewPolicySet(base, nil)
		if *polPath != "" {
			pol, err := core.LoadPolicy(*polPath, models)
			if err != nil {
				log.Fatal(err)
			}
			if pol.SLO != slo || pol.Workers != *workers {
				log.Fatalf("policy %s was generated for SLO %.0fms / %d workers, not %.0fms / %d",
					*polPath, pol.SLO*1000, pol.Workers, *sloMS, *workers)
			}
			if pol.Balancing != balancing {
				log.Printf("warning: policy %s assumes %s balancing but -lb requested %s; routing with %s",
					*polPath, pol.Balancing, balancing, balancing)
			}
			set.Insert(pol)
			fmt.Printf("loaded policy %s (load %.0f QPS)\n", *polPath, pol.Load)
		} else {
			var loads []float64
			if *traceArg == "constant" {
				loads = []float64{*load}
			} else {
				for l := 400.0; l <= tr.MaxQPS()*1.2+400; l += 400 {
					loads = append(loads, l)
				}
			}
			fmt.Printf("generating %d RAMSIS policies...\n", len(loads))
			if err := set.GenerateLoads(loads); err != nil {
				log.Fatal(err)
			}
		}
		r := sim.NewRAMSIS(set, mon)
		r.Balance = balancing
		r.LB = sim.BalancerFor(balancing, *seed)
		sched = r
	case "JF":
		sched = &baselines.JellyfishPlus{Profiles: models, SLO: slo, Workers: *workers, Monitor: mon}
	case "MS":
		var table *baselines.MSTable
		if *msTable != "" {
			data, err := os.ReadFile(*msTable)
			if err != nil {
				log.Fatal(err)
			}
			table = &baselines.MSTable{}
			if err := json.Unmarshal(data, table); err != nil {
				log.Fatalf("decode %s: %v", *msTable, err)
			}
			if len(table.P99) != models.Len() {
				log.Fatalf("table %s profiles %d models, task has %d", *msTable, len(table.P99), models.Len())
			}
			fmt.Printf("loaded ModelSwitching profile %s (%d load rungs)\n", *msTable, len(table.Loads))
		} else {
			var loads []float64
			for l := 400.0; l <= 4400; l += 400 {
				loads = append(loads, l)
			}
			fmt.Println("profiling ModelSwitching response latencies...")
			table = baselines.ProfileModelSwitching(models, slo, *workers, loads, 5, *seed)
		}
		sched = &baselines.ModelSwitching{Profiles: models, SLO: slo, Monitor: mon, Table: table}
	case "Greedy":
		sched = &baselines.Greedy{Profiles: models, SLO: slo}
	default:
		log.Fatalf("unknown method %q", *method)
	}

	var lat sim.LatencyModel = sim.Deterministic{}
	if *noise > 0 {
		lat = sim.Stochastic{StdDev: *noise / 1000}
	}
	e := sim.NewEngine(models, slo, *workers, lat, sched, *seed)
	if *traceOut != "" {
		fh, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		e.TraceWriter = telemetry.NewTraceWriter(fh)
		e.Decisions = telemetry.NewDecisionBuffer(0)
	}
	var degrader *admit.Degrader
	if *admitName != "none" {
		nw := *maxQueue
		if nw <= 0 {
			nw = 32 // core.Config.MaxQueue default
		}
		admitter, err := admit.New(*admitName, slo, *admitMargin, nw**workers, core.NewWaitEstimator(models, *workers))
		if err != nil {
			log.Fatal(err)
		}
		e.Admit = admitter
		if *admitDegrade > 0 {
			degrader = admit.NewDegrader(admit.DegradeConfig{MaxLevel: *admitDegrade, EnterWait: slo})
			e.Degrade = degrader
		}
		fmt.Printf("admission control: %s (margin %.2f, degrade depth %d)\n",
			admitter.Name(), *admitMargin, *admitDegrade)
	} else if *admitDegrade > 0 {
		log.Fatal("-admit-degrade requires an admitter (-admit deadline or -admit cap)")
	}
	var m sim.Metrics
	if tenants != nil {
		reg, err := tenant.NewRegistry(tenants)
		if err != nil {
			log.Fatal(err)
		}
		e.TenantSLOs = make(map[string]float64, len(tenants))
		for _, t := range tenants {
			e.TenantSLOs[t.Name] = t.SLO()
		}
		// Weighted-fair admission wraps whatever -admit configured as the
		// inner, capacity-facing layer.
		e.FairAdmit = tenant.NewFairAdmitter(reg, e.Admit, tenant.FairConfig{})
		evs := tenant.ArrivalsScaled(tenants, mult, *dur, *seed)
		queries := make([]sim.Query, len(evs))
		for i, ev := range evs {
			queries[i] = sim.Query{ID: i, Arrival: ev.T, Tenant: ev.Tenant}
		}
		fmt.Printf("simulating %d queries (%d tenants, %s, %d workers, fair admission)...\n",
			len(queries), len(tenants), *task, *workers)
		m = e.RunQueries(queries)
	} else {
		arrivals := trace.PoissonArrivals(tr, *seed)
		fmt.Printf("simulating %d queries (%s trace, %s, SLO %.0f ms, %d workers)...\n",
			len(arrivals), tr.Name, *task, *sloMS, *workers)
		m = e.Run(arrivals)
	}

	fmt.Printf("method:                      %s\n", *method)
	fmt.Printf("served:                      %d\n", m.Served)
	fmt.Printf("decisions:                   %d\n", m.Decisions)
	if e.Admit != nil || e.FairAdmit != nil {
		fmt.Printf("offered / shed:              %d / %d (shed rate %.4f%%)\n",
			m.Offered(), m.Shed, m.ShedRate()*100)
		fmt.Printf("goodput (in-SLO/offered):    %.4f%%\n", m.GoodputRate()*100)
	}
	if degrader != nil {
		st := degrader.Stats()
		fmt.Printf("degraded mode: final level %d, %d escalations, %d de-escalations, %d clamped decisions\n",
			st.Level, st.Escalations, st.Deescalations, m.DegradedDecisions)
	}
	fmt.Printf("accuracy/satisfied query:    %.4f\n", m.AccuracyPerSatisfiedQuery())
	fmt.Printf("latency SLO violation rate:  %.4f%%\n", m.ViolationRate()*100)
	fmt.Printf("latency p50/p95/p99 (ms):    %.1f / %.1f / %.1f\n",
		m.LatencyP50*1000, m.LatencyP95*1000, m.LatencyP99*1000)
	fmt.Println("model usage (queries):")
	for name, c := range m.ModelCounts {
		fmt.Printf("  %-22s %d\n", name, c)
	}
	if m.Tenants != nil {
		names := make([]string, 0, len(m.Tenants))
		for name := range m.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("per-tenant breakdown:")
		for _, name := range names {
			tm := m.Tenants[name]
			fmt.Printf("  %-12s offered %6d  served %6d  shed %5d  violations %5d  goodput %.4f\n",
				name, tm.Offered(), tm.Served, tm.Shed, tm.Violations, tm.GoodputRate())
		}
	}
	if adapter != nil {
		s := adapter.Stats()
		fmt.Printf("adaptation: %d re-solves (%d failed, %d warm-started, last %d iterations), %d cache hits / %d misses, %d hot-swaps, final bucket %.0f QPS\n",
			s.Resolves, s.ResolveErrors, s.WarmStarts, s.LastResolveIterations, s.CacheHits, s.CacheMisses, s.Swaps, s.ActiveBucket)
	}
	fmt.Println("script complete!")
}
