package serve

// pqRing is a growable FIFO ring buffer of pending queries — the worker
// queue's storage. The slice-backed queue it replaced re-copied the entire
// tail on every dispatch (`append([]pendingQuery(nil), queue[batch:]...)`),
// an O(queue) cost per batch that at saturation turned the queue itself
// into the allocator's hottest call site. The ring dispatches by advancing
// an index: steady-state enqueue and pop are allocation-free, and capacity
// only grows (doubling) when the backlog exceeds every previous high-water
// mark.
//
// Not safe for concurrent use; the owning workerQueue's mutex guards it.
type pqRing struct {
	buf  []pendingQuery
	head int // index of the oldest element
	n    int // number of queued elements
}

// ringMinCap is the initial allocation on first use: small enough that
// idle queues stay cheap, large enough that steady traffic never grows.
const ringMinCap = 16

// len returns the number of queued elements.
func (r *pqRing) len() int { return r.n }

// at returns a pointer to the i-th element from the head (0 = oldest).
// The pointer is valid until the next push or pop.
func (r *pqRing) at(i int) *pendingQuery {
	return &r.buf[(r.head+i)%len(r.buf)]
}

// push appends one element to the tail, growing the ring if full.
func (r *pqRing) push(pq pendingQuery) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = pq
	r.n++
}

// grow doubles capacity, laying the elements out head-first so indices
// stay simple.
func (r *pqRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap < ringMinCap {
		newCap = ringMinCap
	}
	buf := make([]pendingQuery, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// popInto removes the k oldest elements in FIFO order, appending them to
// dst (reuse a scratch slice to keep dispatch allocation-free) and zeroing
// the vacated slots so popped queries' channels and tenant state are not
// retained by the ring.
func (r *pqRing) popInto(dst []pendingQuery, k int) []pendingQuery {
	if k > r.n {
		k = r.n
	}
	for i := 0; i < k; i++ {
		slot := &r.buf[r.head]
		dst = append(dst, *slot)
		*slot = pendingQuery{}
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.n -= k
	if r.n == 0 {
		r.head = 0
	}
	return dst
}
