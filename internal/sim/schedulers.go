package sim

import (
	"fmt"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/lb"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// BalancerFor returns the lb implementation matching an offline balancing
// assumption, so simulated routing behaves the way the policy's MDP
// transition probabilities assume. The seed only affects power-of-two
// choices.
func BalancerFor(b core.Balancing, seed int64) lb.Balancer {
	switch b {
	case core.ShortestQueueFirst:
		return lb.NewJoinShortestQueue()
	case core.PowerOfTwoChoices:
		return lb.NewPowerOfTwoChoices(seed)
	}
	return lb.NewRoundRobin()
}

// RAMSIS is the online phase of §3.2: a load balancer over per-worker
// queues plus per-worker model selectors driven by the offline-generated
// policies, switching policies with the monitored load.
type RAMSIS struct {
	Set     *core.PolicySet
	Monitor monitor.Monitor
	// Balance selects the load-balancing strategy; policies should be
	// generated with the matching core.Balancing (§3.2.1, Appendix I).
	Balance core.Balancing
	// LB overrides the balancer implementation. When nil it is derived
	// from Balance on first use (deterministically seeded); set it
	// explicitly to control the P2C sampling stream.
	LB lb.Balancer

	lens []int
}

// NewRAMSIS wires a policy set and a load monitor into a scheduler.
func NewRAMSIS(set *core.PolicySet, mon monitor.Monitor) *RAMSIS {
	return &RAMSIS{Set: set, Monitor: mon}
}

// balancer resolves the effective balancer, deriving one from the Balance
// assumption on first use.
func (r *RAMSIS) balancer() lb.Balancer {
	if r.LB == nil {
		r.LB = BalancerFor(r.Balance, 1)
	}
	return r.LB
}

// Route observes the arrival for load tracking and assigns the query to a
// worker queue via the configured balancer: round-robin (§3.2.1),
// shortest-queue-first (Appendix I), or power-of-two choices. Simulated
// workers never fail, so the health mask is nil.
func (r *RAMSIS) Route(e *Engine, now float64, q Query) {
	r.Monitor.Observe(now)
	r.lens = e.QueueLens(r.lens)
	e.EnqueueWorker(r.balancer().Pick(r.lens, nil), q)
}

// Pick applies the lowest-load policy meeting the anticipated load to worker
// w's queue state (§3.2.2).
func (r *RAMSIS) Pick(e *Engine, now float64, w int) (Decision, bool) {
	n := e.WorkerLen(w)
	if n == 0 {
		return Decision{}, false
	}
	pol, err := r.Set.PolicyFor(r.Monitor.Load(now))
	if err != nil {
		panic(fmt.Sprintf("sim: no policy available: %v", err))
	}
	return pickWithPolicy(e, now, w, n, pol)
}

// pickWithPolicy applies one policy's decision to worker w's queue.
func pickWithPolicy(e *Engine, now float64, w, n int, pol *core.Policy) (Decision, bool) {
	head, _ := e.EarliestWorker(w)
	slack := head.Deadline(e.SLO) - now
	choice := pol.Select(n, slack)
	profiles := e.ProfilesFor(w)
	mi := -1
	for i, p := range profiles.Profiles {
		if p.Name == choice.Model {
			mi = i
			break
		}
	}
	if mi < 0 {
		panic(fmt.Sprintf("sim: policy model %q not loaded on worker %d", choice.Model, w))
	}
	batch := choice.Batch
	if mb := profiles.Profiles[mi].MaxBatch(); batch > mb {
		batch = mb
	}
	if batch > n {
		batch = n
	}
	return Decision{Model: mi, Queries: e.PopWorker(w, batch)}, true
}

// HeteroRAMSIS serves a heterogeneous deployment: each worker has its own
// policy set, generated from that worker type's latency profiles (§7 notes
// homogeneity is not fundamental because policies are per-worker; §4's
// transition probabilities only need the worker's own latencies and its
// round-robin share of arrivals).
type HeteroRAMSIS struct {
	Sets    []*core.PolicySet // one per worker
	Monitor monitor.Monitor
	// LB overrides the balancer (default round-robin, the assumption the
	// per-worker policies are generated under).
	LB lb.Balancer

	lens []int
}

// Route distributes via the balancer (round-robin by default), as in the
// homogeneous scheduler.
func (r *HeteroRAMSIS) Route(e *Engine, now float64, q Query) {
	r.Monitor.Observe(now)
	if r.LB == nil {
		r.LB = lb.NewRoundRobin()
	}
	r.lens = e.QueueLens(r.lens)
	e.EnqueueWorker(r.LB.Pick(r.lens, nil), q)
}

// Pick applies worker w's own policy.
func (r *HeteroRAMSIS) Pick(e *Engine, now float64, w int) (Decision, bool) {
	n := e.WorkerLen(w)
	if n == 0 {
		return Decision{}, false
	}
	pol, err := r.Sets[w].PolicyFor(r.Monitor.Load(now))
	if err != nil {
		panic(fmt.Sprintf("sim: no policy for worker %d: %v", w, err))
	}
	return pickWithPolicy(e, now, w, n, pol)
}

// FixedModel always serves the same model from the central queue with eager
// workers and a batch cap. It implements the offline response-latency
// profiling runs of the ModelSwitching baseline and acts as the simplest
// load-granular strawman.
type FixedModel struct {
	Model    int
	MaxBatch int
}

// Route enqueues centrally.
func (f *FixedModel) Route(e *Engine, _ float64, q Query) { e.EnqueueCentral(q) }

// Pick eagerly grabs up to MaxBatch queries.
func (f *FixedModel) Pick(e *Engine, _ float64, _ int) (Decision, bool) {
	n := e.CentralLen()
	if n == 0 {
		return Decision{}, false
	}
	b := f.MaxBatch
	if b <= 0 {
		b = 1
	}
	if b > n {
		b = n
	}
	return Decision{Model: f.Model, Queries: e.PopCentral(b)}, true
}

// VerifyPolicy empirically validates a policy's §5.1 guarantees: it serves
// dur seconds of arrivals at the policy's design load through the simulator
// and reports the observed metrics, which should respect the expected
// accuracy (from below) and expected violation rate (from above). The
// arrival pattern matches the policy's balancing assumption (Poisson +
// round-robin by default).
func VerifyPolicy(pol *core.Policy, models profile.Set, dur float64, seed int64) Metrics {
	set := core.NewPolicySet(core.Config{
		Models:  models,
		SLO:     pol.SLO,
		Workers: pol.Workers,
		Arrival: dist.NewPoisson(pol.Load),
		D:       pol.D,
	}, nil)
	set.Insert(pol)
	tr := trace.Constant(pol.Load, dur)
	sched := NewRAMSIS(set, monitor.Oracle{Trace: tr})
	sched.Balance = pol.Balancing
	e := NewEngine(models, pol.SLO, pol.Workers, Deterministic{}, sched, seed)
	return e.Run(trace.PoissonArrivals(tr, seed))
}
