package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ramsis/internal/mdp"
)

// ErrTimeout reports that policy generation exceeded Config.Timeout.
var ErrTimeout = errors.New("core: policy generation timed out")

// Choice is one model-selection decision: run Batch queries on the model.
// Arrival == true marks the empty-queue arrival action (idle until a query
// arrives). Satisfies records whether the decision meets the state's slack.
type Choice struct {
	Model     string  `json:"model"`
	ModelIdx  int     `json:"modelIdx"`
	Batch     int     `json:"batch"`
	Latency   float64 `json:"latency"`
	Satisfies bool    `json:"satisfies"`
	Arrival   bool    `json:"arrival,omitempty"`
}

// Policy is an offline-generated per-worker model-selection policy (§3.1.3):
// a mapping from worker-queue states (n, T_j) to MS decisions, together with
// the §5.1 probabilistic guarantees computed over its MDP.
type Policy struct {
	// Task, SLO, Workers, Load, and knob settings identify the problem the
	// policy was generated for.
	Task      string         `json:"task"`
	SLO       float64        `json:"slo"`
	Workers   int            `json:"workers"`
	Load      float64        `json:"load"`
	Batching  Batching       `json:"batching"`
	Disc      Discretization `json:"disc"`
	D         int            `json:"d"`
	MaxQueue  int            `json:"maxQueue"`
	Balancing Balancing      `json:"balancing"`
	// Pruned records whether the action models were Pareto-pruned (§4.3.3).
	Pruned bool `json:"pruned"`

	// Grid is the slack discretization T_w.
	Grid []float64 `json:"grid"`
	// Choices maps state indices (space indexing) to decisions.
	Choices []Choice `json:"choices"`

	// ExpectedAccuracy is the §5.1 accuracy expectation: the stationary
	// query-weighted mean profiled accuracy per satisfied query, a lower
	// bound on the observed value.
	ExpectedAccuracy float64 `json:"expectedAccuracy"`
	// ExpectedViolation is the §5.1 latency-SLO violation rate expectation
	// (stationary fraction of served queries whose decision misses the
	// earliest deadline), an upper bound on the observed value.
	ExpectedViolation float64 `json:"expectedViolation"`
	// StateExpectedAccuracy is the paper's unweighted §5.1 formula
	// Σ_{s∈S*} P(s)·Accuracy(π[s]), retained for reference.
	StateExpectedAccuracy float64 `json:"stateExpectedAccuracy"`
	// AccuracyDist is the stationary per-query accuracy distribution over
	// satisfied queries (accuracy value -> probability mass), from which
	// §5.1's summary statistics (median, 99th percentile, ...) derive.
	AccuracyDist map[string]float64 `json:"accuracyDist,omitempty"`

	// Stats describe the generation run.
	States      int           `json:"states"`
	Transitions int           `json:"transitions"`
	Iterations  int           `json:"iterations"`
	BuildTime   time.Duration `json:"buildTime"`
	SolveTime   time.Duration `json:"solveTime"`

	space *space
	// values is the converged solver value vector, retained in memory (not
	// serialized — policies loaded from disk have none) so re-solves at
	// neighboring rates can warm-start from it via Config.InitialValues.
	values []float64
}

// SolveValues returns the converged value vector of the solve that produced
// this policy, or nil for policies loaded from disk. The slice is shared;
// callers must not mutate it.
func (p *Policy) SolveValues() []float64 { return p.values }

// BuildWorkerMDP formulates (but does not solve) the worker MDP for the
// configuration — the §4 transition-probability computation in isolation.
// The solver benchmarks use it to measure the Bellman sweep on a real
// worker-scale state space rather than a synthetic MDP.
func BuildWorkerMDP(cfg Config) (*mdp.MDP, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := newBuilder(newSpace(cfg))
	m := b.buildMDP()
	if b.aborted.Load() {
		return nil, ErrTimeout
	}
	if err := m.Validate(1e-6); err != nil {
		return nil, fmt.Errorf("core: built MDP invalid: %w", err)
	}
	return m, nil
}

// Generate runs RAMSIS's offline phase for one worker: it formulates the
// worker MDP (§4), solves it with value iteration (§4.1), and computes the
// §5.1 expectations over the induced stationary distribution.
func Generate(cfg Config) (*Policy, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := newSpace(cfg)
	b := newBuilder(sp)

	start := time.Now()
	m := b.buildMDP()
	buildTime := time.Since(start)
	if b.aborted.Load() {
		return nil, ErrTimeout
	}
	if err := m.Validate(1e-6); err != nil {
		return nil, fmt.Errorf("core: built MDP invalid: %w", err)
	}

	// Compile once; the solve and the stationary-distribution pass both run
	// on the contiguous form.
	start = time.Now()
	cm := mdp.Compile(m)
	opts := mdp.SolveOptions{Gamma: cfg.Gamma, Deadline: b.deadline, Float32: cfg.Float32}
	if cfg.Solver == SolvePrioritized {
		opts.Method = mdp.MethodPrioritized
	}
	if len(cfg.InitialValues) == cm.NumStates() {
		opts.InitialValues = cfg.InitialValues
	} else if cfg.AggQueue > 1 {
		// No donor vector: warm-start from the queue-coarsened aggregate
		// solve. The warm start cannot change the fixed point, so the
		// generated policy is identical to a cold solve's.
		opts.InitialValues = aggregateWarmStart(m, sp, cfg.AggQueue, opts)
	}
	var res mdp.Result
	var err error
	if cfg.Solver == SolvePolicyIteration {
		res, err = cm.PolicyIteration(opts)
	} else {
		res, err = cm.Solve(opts)
	}
	if errors.Is(err, mdp.ErrDeadline) {
		return nil, ErrTimeout
	}
	if err != nil {
		return nil, err
	}
	solveTime := time.Since(start)

	pol := &Policy{
		Task:        cfg.Models.Task,
		SLO:         cfg.SLO,
		Workers:     cfg.Workers,
		Load:        cfg.Arrival.Rate(),
		Batching:    cfg.Batching,
		Disc:        cfg.Disc,
		D:           cfg.D,
		MaxQueue:    cfg.MaxQueue,
		Balancing:   cfg.Balancing,
		Pruned:      !cfg.NoParetoPruning,
		Grid:        sp.grid,
		States:      m.NumStates(),
		Transitions: m.NumTransitions(),
		Iterations:  res.Iterations,
		BuildTime:   buildTime,
		SolveTime:   solveTime,
		space:       sp,
		values:      res.Values,
	}
	pol.Choices = make([]Choice, m.NumStates())
	for s := range m.Actions {
		acts := sp.actionsForState(s)
		a := acts[res.Policy[s]]
		if a.Model == arrivalAction {
			pol.Choices[s] = Choice{Arrival: true, Satisfies: true}
			continue
		}
		pol.Choices[s] = Choice{
			Model:     sp.models.Profiles[a.Model].Name,
			ModelIdx:  a.Model,
			Batch:     a.Batch,
			Latency:   a.Latency,
			Satisfies: a.Satisfies,
		}
	}
	if err := pol.computeExpectations(cm, res.Policy); err != nil {
		return nil, err
	}
	return pol, nil
}

// computeExpectations evaluates the §5.1 guarantees: the stationary
// distribution of the policy-induced chain (power iteration) weighted by
// queries served per decision.
func (p *Policy) computeExpectations(cm *mdp.Compiled, pol mdp.Policy) error {
	pi, err := cm.StationaryDistribution(pol, 1e-13, 0)
	if err != nil {
		return err
	}
	var servedMass, violMass, satMass, accMass, stateSat, stateAcc float64
	accDist := map[float64]float64{}
	for s, c := range p.Choices {
		if c.Arrival {
			continue
		}
		w := pi[s] * float64(c.Batch)
		servedMass += w
		if c.Satisfies {
			satMass += w
			acc := p.space.models.Profiles[c.ModelIdx].Accuracy
			accMass += w * acc
			accDist[acc] += w
			stateSat += pi[s]
			stateAcc += pi[s] * acc
		} else {
			violMass += w
		}
	}
	if servedMass > 0 {
		p.ExpectedViolation = violMass / servedMass
	}
	if satMass > 0 {
		p.ExpectedAccuracy = accMass / satMass
		p.AccuracyDist = map[string]float64{}
		for acc, w := range accDist {
			p.AccuracyDist[fmt.Sprintf("%.6f", acc)] = w / satMass
		}
	}
	p.StateExpectedAccuracy = stateAcc
	return nil
}

// AccuracyQuantile returns the q-th quantile (0 < q <= 1) of the stationary
// per-satisfied-query accuracy distribution — the §5.1 summary statistics
// (median: q = 0.5; 99th percentile: q = 0.99 of the *loss* direction, i.e.
// the accuracy exceeded by 99% of queries is AccuracyQuantile(0.01)).
func (p *Policy) AccuracyQuantile(q float64) float64 {
	if len(p.AccuracyDist) == 0 || q <= 0 || q > 1 {
		return 0
	}
	type bin struct {
		acc  float64
		mass float64
	}
	bins := make([]bin, 0, len(p.AccuracyDist))
	for k, w := range p.AccuracyDist {
		var a float64
		fmt.Sscanf(k, "%f", &a)
		bins = append(bins, bin{a, w})
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].acc < bins[j].acc })
	cum := 0.0
	for _, b := range bins {
		cum += b.mass
		if cum >= q-1e-12 {
			return b.acc
		}
	}
	return bins[len(bins)-1].acc
}

// Select returns the policy's decision for a worker-queue observation:
// n queued queries whose earliest deadline has slack seconds remaining.
// Queue lengths beyond N_w use the full-queue state's forced decision.
func (p *Policy) Select(n int, slack float64) Choice {
	return p.Choices[p.space.stateFor(n, slack)]
}

// GridSize returns |T_w|.
func (p *Policy) GridSize() int { return len(p.Grid) }

// Models returns the policy's (pruned) model set.
func (p *Policy) Models() []string {
	names := make([]string, p.space.models.Len())
	for i, m := range p.space.models.Profiles {
		names[i] = m.Name
	}
	return names
}
