package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// quickHarness runs the minimal grid; these tests assert the paper's
// structural claims, not absolute numbers.
func quickHarness() *Harness {
	return New(Options{Quick: true, Out: io.Discard, Seed: 1})
}

func TestFig3Fig9Profiles(t *testing.T) {
	h := quickHarness()
	img := h.Fig3()
	if len(img) != 26 {
		t.Fatalf("Fig3 rows = %d, want 26", len(img))
	}
	pareto := 0
	for _, r := range img {
		if r.Pareto {
			pareto++
		}
	}
	if pareto != 9 {
		t.Errorf("Fig3 Pareto models = %d, want 9", pareto)
	}
	txt := h.Fig9()
	if len(txt) != 5 {
		t.Fatalf("Fig9 rows = %d, want 5", len(txt))
	}
}

func TestFig5ProductionTraceClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	res := h.Fig5()
	for task, bySLO := range res.Accuracy {
		for slo, series := range bySLO {
			checkRAMSISWins(t, series, task, slo)
		}
	}
}

func TestFig6ConstantLoadClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	res := h.Fig6()
	for task, bySLO := range res.Accuracy {
		for slo, series := range bySLO {
			checkRAMSISWins(t, series, task, slo)
		}
	}
}

// checkRAMSISWins asserts the headline claim on a series: at every point
// where both RAMSIS and a baseline report (<5% violations), RAMSIS's
// accuracy is at least the baseline's (allowing sampling noise).
func checkRAMSISWins(t *testing.T, series Series, task string, slo float64) {
	t.Helper()
	ram := map[float64]Point{}
	for _, p := range series[MethodRAMSIS] {
		ram[p.X] = p
	}
	for _, base := range []string{MethodMS, MethodJF} {
		for _, b := range series[base] {
			r, ok := ram[b.X]
			if !ok || !r.Reported || !b.Reported {
				continue
			}
			if r.Accuracy < b.Accuracy-0.005 {
				t.Errorf("%s SLO %.0fms x=%v: RAMSIS %.4f below %s %.4f",
					task, slo*1000, b.X, r.Accuracy, base, b.Accuracy)
			}
		}
	}
}

func TestFig7FidelityBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	pts := h.Fig7()
	if len(pts) == 0 {
		t.Fatal("no fidelity points")
	}
	for _, p := range pts {
		// Below peak capacity the expectation is a lower bound on accuracy
		// and an upper bound on violations (§5.1, §7.3.1). Beyond capacity
		// the expectation overestimates violations by design.
		if p.SimViolation < 0.05 {
			if p.SimAccuracy < p.ExpAccuracy-0.02 {
				t.Errorf("w=%d load=%v: sim accuracy %.4f below expectation %.4f",
					p.Workers, p.Load, p.SimAccuracy, p.ExpAccuracy)
			}
			if p.SimViolation > p.ExpViolation+0.02 {
				t.Errorf("w=%d load=%v: sim violations %.5f above expectation %.5f",
					p.Workers, p.Load, p.SimViolation, p.ExpViolation)
			}
		}
		// Latency variance only helps (§7.3.1).
		if p.ImplAccuracy < p.SimAccuracy-0.02 {
			t.Errorf("w=%d load=%v: implementation accuracy %.4f below simulation %.4f",
				p.Workers, p.Load, p.ImplAccuracy, p.SimAccuracy)
		}
	}
}

func TestFig8ModelCountClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	series := h.Fig8()
	r9 := map[float64]Point{}
	for _, p := range series["RAMSIS M=9"] {
		r9[p.X] = p
	}
	m9 := map[float64]Point{}
	for _, p := range series["MS M=9"] {
		m9[p.X] = p
	}
	for _, p := range series["RAMSIS M=60"] {
		base, ok := r9[p.X]
		if !ok || !p.Reported || !base.Reported {
			continue
		}
		// §7.3.2: negligible RAMSIS improvement from 60 models.
		if gain := p.Accuracy - base.Accuracy; gain > 0.01 {
			t.Errorf("x=%v: RAMSIS gains %.4f from 60 models; want negligible", p.X, gain)
		}
		// RAMSIS (either size) stays above ModelSwitching M=60 at the same x.
		for _, ms60 := range series["MS M=60"] {
			if ms60.X == p.X && ms60.Reported && p.Accuracy < ms60.Accuracy-0.005 {
				t.Errorf("x=%v: RAMSIS M=60 %.4f below MS M=60 %.4f", p.X, p.Accuracy, ms60.Accuracy)
			}
		}
	}
	for _, p := range series["MS M=60"] {
		base, ok := m9[p.X]
		if !ok || !p.Reported || !base.Reported {
			continue
		}
		if p.Accuracy < base.Accuracy-0.005 {
			t.Errorf("x=%v: MS loses accuracy with more models", p.X)
		}
	}
}

func TestFig10DiscretizationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	series := h.Fig10()
	at := func(label string, x float64) float64 {
		for _, p := range series[label] {
			if p.X == x {
				return p.Accuracy
			}
		}
		t.Fatalf("missing %s at %v", label, x)
		return 0
	}
	for _, p := range series["MD"] {
		x := p.X
		// §C: D=100 matches MD; smaller D is conservative.
		if at("FLD D=100", x) < at("FLD D=2", x)-0.005 {
			t.Errorf("x=%v: D=100 below D=2", x)
		}
		if d100, md := at("FLD D=100", x), p.Accuracy; d100 < md-0.01 || d100 > md+0.01 {
			t.Errorf("x=%v: FLD D=100 (%.4f) does not match MD (%.4f)", x, d100, md)
		}
	}
}

func TestFig11BatchingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	series := h.Fig11()
	maxPts := map[float64]Point{}
	for _, p := range series["max"] {
		maxPts[p.X] = p
	}
	for _, p := range series["variable"] {
		base, ok := maxPts[p.X]
		if !ok {
			continue
		}
		if d := p.Accuracy - base.Accuracy; d < -0.01 || d > 0.02 {
			t.Errorf("x=%v: variable batching accuracy %.4f not ~= maximal %.4f", p.X, p.Accuracy, base.Accuracy)
		}
	}
}

func TestFig12AblationClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	series := h.Fig12()
	jf3 := map[float64]Point{}
	for _, p := range series["JF+-3m"] {
		jf3[p.X] = p
	}
	for _, p := range series["RAMSIS-3m"] {
		b, ok := jf3[p.X]
		if !ok || !p.Reported || !b.Reported {
			continue
		}
		// §E: RAMSIS always stays above Jellyfish+ at equal model sets.
		if p.Accuracy < b.Accuracy-0.005 {
			t.Errorf("x=%v: RAMSIS-3m %.4f below JF+-3m %.4f", p.X, p.Accuracy, b.Accuracy)
		}
	}
}

func TestINFaaSNeverBeatsRAMSIS(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	series := h.INFaaS()
	ram := map[float64]Point{}
	for _, p := range series[MethodRAMSIS] {
		ram[p.X] = p
	}
	for _, p := range series["INFaaS(best)"] {
		r, ok := ram[p.X]
		if !ok || !r.Reported {
			continue
		}
		if p.Accuracy > r.Accuracy+0.005 {
			t.Errorf("x=%v: INFaaS best %.4f above RAMSIS %.4f (§H says it cannot)", p.X, p.Accuracy, r.Accuracy)
		}
	}
}

func TestSQFRunsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	series := h.SQF()
	for _, label := range []string{"RR", "SQF"} {
		if len(series[label]) == 0 {
			t.Fatalf("missing %s series", label)
		}
		for _, p := range series[label] {
			if !p.Reported {
				t.Errorf("%s at x=%v has %.4f violations (sub-critical loads should report)", label, p.X, p.Violation)
			}
		}
	}
}

// TestParallelMatchesSerial pins the -parallel contract: the same grid run
// serially and with 4 concurrent runs produces bit-identical figure output,
// because every run has its own seeded RNG streams and results are placed
// by grid position. Fig. 6 exercises runAll plus both single-flight caches
// (policy sets and the ModelSwitching profile).
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	var serialOut, parallelOut bytes.Buffer
	serial := New(Options{Quick: true, Out: &serialOut, Seed: 1}).Fig6()
	parallel := New(Options{Quick: true, Out: &parallelOut, Seed: 1, Parallel: 4}).Fig6()
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel Fig6 result differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serialOut.String() != parallelOut.String() {
		t.Errorf("parallel Fig6 printed rows differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut.String(), parallelOut.String())
	}
}

// TestRunAllPanicPropagates pins runAll's error semantics: a panicking spec
// (unknown method) aborts the sweep like the serial path does, instead of
// dying in a worker goroutine.
func TestRunAllPanicPropagates(t *testing.T) {
	h := New(Options{Quick: true, Out: io.Discard, Parallel: 2})
	defer func() {
		if recover() == nil {
			t.Error("runAll swallowed the worker panic")
		}
	}()
	h.runAll([]runSpec{
		{method: "no-such-method", tr: trace.Constant(10, 1), models: profile.ImageSet()},
		{method: "no-such-method", tr: trace.Constant(10, 1), models: profile.ImageSet()},
	})
}

func TestLoadRange(t *testing.T) {
	got := loadRange(400, 1200, 400)
	want := []float64{400, 800, 1200}
	if len(got) != len(want) {
		t.Fatalf("loadRange = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loadRange = %v, want %v", got, want)
		}
	}
}

func TestHarnessScaleSelection(t *testing.T) {
	if New(Options{Out: io.Discard}).scale() != scaleDefault {
		t.Error("default scale wrong")
	}
	if New(Options{Quick: true, Out: io.Discard}).scale() != scaleQuick {
		t.Error("quick scale wrong")
	}
	if New(Options{Full: true, Quick: true, Out: io.Discard}).scale() != scaleFull {
		t.Error("full should win over quick")
	}
}

func TestPolicyDirCaching(t *testing.T) {
	dir := t.TempDir()
	h := New(Options{Quick: true, Out: io.Discard, PolicyDir: dir, D: 25})
	s1 := h.policySet(profile.ImageSet(), 0.150, 4, []float64{100}, "", nil)
	if len(s1.Loads()) != 1 {
		t.Fatal("policy not generated")
	}
	// A fresh harness must load from disk (same result, no panic).
	h2 := New(Options{Quick: true, Out: io.Discard, PolicyDir: dir, D: 25})
	s2 := h2.policySet(profile.ImageSet(), 0.150, 4, []float64{100}, "", nil)
	p1, _ := s1.PolicyFor(100)
	p2, _ := s2.PolicyFor(100)
	if p1.ExpectedAccuracy != p2.ExpectedAccuracy {
		t.Errorf("cached policy differs: %v vs %v", p1.ExpectedAccuracy, p2.ExpectedAccuracy)
	}
}

func TestResultsDirExport(t *testing.T) {
	dir := t.TempDir()
	h := New(Options{Quick: true, Out: io.Discard, ResultsDir: dir})
	h.Fig3()
	h.saveResult("probe", map[string]int{"a": 1})
	data, err := os.ReadFile(filepath.Join(dir, "probe.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["a"] != 1 {
		t.Errorf("round trip lost data: %v", got)
	}
	// No directory configured: silently skipped.
	h2 := New(Options{Quick: true, Out: io.Discard})
	h2.saveResult("probe", 1)
}

func TestFig2LullExploitation(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	res := h.Fig2()
	// The load-granular baseline is pinned to one model...
	if len(res.ModelShare[MethodJF]) != 1 {
		t.Errorf("Jellyfish+ used %d models at constant load, want 1", len(res.ModelShare[MethodJF]))
	}
	// ...while RAMSIS mixes models, upgrading during lulls.
	if len(res.ModelShare[MethodRAMSIS]) < 2 {
		t.Errorf("RAMSIS used %d models, want several", len(res.ModelShare[MethodRAMSIS]))
	}
	if res.UpgradeFraction <= 0 {
		t.Error("RAMSIS never upgraded beyond the load-granular model")
	}
	if len(res.Timeline) == 0 {
		t.Error("no decision timeline recorded")
	}
}

func TestMisspecArrivalSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	pts := h.Misspec()
	byName := map[string]MisspecPoint{}
	for _, p := range pts {
		byName[p.Arrivals] = p
	}
	calm := byName["Erlang-4 (calmer)"]
	assumed := byName["Poisson (assumed)"]
	bursty := byName["OnOff x2 (burstier)"]
	// Calmer-than-assumed traffic must not violate more than assumed.
	if calm.Violation > assumed.Violation+0.005 {
		t.Errorf("calmer arrivals violate more (%v) than assumed (%v)", calm.Violation, assumed.Violation)
	}
	// Burstier-than-assumed traffic erodes the guarantee.
	if bursty.Violation <= assumed.Violation+0.005 {
		t.Errorf("burstier arrivals did not erode the guarantee: %v vs %v", bursty.Violation, assumed.Violation)
	}
}

func TestGreedyPaysInViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	series := h.Greedy()
	ram := map[float64]Point{}
	for _, p := range series[MethodRAMSIS] {
		ram[p.X] = p
	}
	for _, g := range series[MethodGreedy] {
		r, ok := ram[g.X]
		if !ok {
			continue
		}
		// §8: greedy's optimism costs violations RAMSIS avoids.
		if g.Violation <= r.Violation+0.01 {
			t.Errorf("x=%v: greedy violations %.4f not above RAMSIS %.4f", g.X, g.Violation, r.Violation)
		}
		if !r.Reported {
			t.Errorf("x=%v: RAMSIS itself failed to report (%v violations)", g.X, r.Violation)
		}
	}
}

func TestScalingStaysPolynomial(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	h := quickHarness()
	pts := h.Scaling()
	if len(pts) < 4 {
		t.Fatalf("scaling produced %d points", len(pts))
	}
	for _, p := range pts {
		if p.States <= 0 || p.Transitions <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
		// §5.2: far from the exponential naive formulation — the paper's
		// naive MDP at these sizes would not finish in 24 h; ours must stay
		// within seconds per policy even in the largest cell.
		if p.Runtime.Seconds() > 30 {
			t.Errorf("cell |M|=%d N_w=%d took %v; polynomial claim in doubt", p.Models, p.MaxQueue, p.Runtime)
		}
	}
	// More queue capacity means more states.
	if !(pts[len(pts)-1].States > pts[len(pts)-2].States) {
		t.Errorf("states not increasing in N_w: %+v", pts[len(pts)-2:])
	}
}
