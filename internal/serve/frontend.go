package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ramsis/internal/admit"
	"ramsis/internal/lb"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// QueryResponse is the client-facing result of one inference query.
type QueryResponse struct {
	ID          int     `json:"id"`
	Model       string  `json:"model"`
	Batch       int     `json:"batch"`
	LatencyMS   float64 `json:"latencyMs"` // modeled response latency
	DeadlineMet bool    `json:"deadlineMet"`
	// Error is set when the batch could not be delivered to any worker
	// (the dispatch failed on the picked worker and on the failover
	// target); the query counts as a violation.
	Error string `json:"error,omitempty"`
}

// StatsResponse is the /stats snapshot. Every count is read from the same
// telemetry registry that backs /metrics, so the two views agree by
// construction.
type StatsResponse struct {
	Served        int     `json:"served"`
	Violations    int     `json:"violations"`
	Accuracy      float64 `json:"accuracyPerSatisfiedQuery"`
	ViolationRate float64 `json:"violationRate"`
	QueueLengths  []int   `json:"queueLengths"`
	// FailedDispatches counts queries whose batch reached no worker even
	// after failover; they are included in Served and Violations.
	FailedDispatches int `json:"failedDispatches"`
	// WorkerHealthy is the health tracker's current per-worker mark.
	WorkerHealthy []bool `json:"workerHealthy"`
	// WorkerDispatches counts /infer POSTs attempted per worker (failover
	// retries count against the worker they were sent to).
	WorkerDispatches []int `json:"workerDispatches"`
	// Shed counts queries the admission controller rejected with 429; they
	// are not included in Served.
	Shed int `json:"shed"`
	// DegradeLevel is the current degraded-mode level (0 = the policy's own
	// model choice; level k forbids the k slowest models).
	DegradeLevel int `json:"degradeLevel"`
}

// Frontend is the client-facing half of the prototype: applications POST
// /query and block until their prediction returns, exactly the Fig. 1 flow
// (central queue -> load balancer -> worker queue -> model selector ->
// worker). It shares the worker HTTP API with Controller but serves live
// traffic instead of replaying a trace.
//
// Routing goes through a pluggable lb.Balancer over per-worker queues,
// masked by an lb.HealthTracker: workers that fail consecutive health
// probes (or dispatches) stop receiving traffic until they recover, and a
// batch whose dispatch fails is retried once on another healthy worker
// before its queries are recorded as violations.
//
// Observability: every query carries a six-stage span trace
// (enqueue/pick/batch_wait/dispatch/inference/respond) recorded into the
// Telemetry registry's ramsis_stage_seconds histograms and the Traces ring
// buffer; /metrics serves the registry in Prometheus text format,
// /debug/traces dumps the ring, and /debug/pprof is wired for profiling.
type Frontend struct {
	Profiles  profile.Set
	SLO       float64
	TimeScale float64
	Workers   []string
	Select    SelectFunc
	Monitor   monitor.Monitor
	// Balancer picks the worker queue for each arriving query; default
	// round-robin, matching the §3.2.1 policy assumption. Start wraps it
	// with pick-latency instrumentation.
	Balancer lb.Balancer
	// Health overrides the health tracker. When nil, Start builds and
	// owns one probing Workers' /healthz every HealthInterval.
	Health *lb.HealthTracker
	// HealthInterval is the wall-clock probe period for the built-in
	// tracker; default 500 ms divided by TimeScale, so detection latency
	// compresses with modeled time in tests.
	HealthInterval time.Duration
	// Addr is the listen address; default "127.0.0.1:0" (random port).
	Addr string
	// Telemetry is the metrics registry backing /metrics and /stats;
	// Start builds one when nil.
	Telemetry *telemetry.Registry
	// Traces is the completed-query trace ring buffer behind
	// /debug/traces; Start builds one (DefaultTraceCapacity) when nil.
	Traces *telemetry.TraceBuffer
	// TraceWriter, when set, additionally exports every completed trace
	// as one JSONL line (the -trace-out flow).
	TraceWriter *telemetry.TraceWriter
	// Decisions is the policy-decision ring behind /debug/decisions; Start
	// builds one (DefaultDecisionCapacity) when nil. A sharded cluster
	// passes one shared ring so the gateway serves the merged view.
	Decisions *telemetry.DecisionBuffer
	// TraceParent names the upstream process in this frontend's trace
	// fragments ("gateway" in a sharded cluster; empty when the frontend
	// is the root).
	TraceParent string
	// SLO accounting: per-tenant windowed attainment and burn-rate gauges
	// (ramsis_slo_*{tenant,window}). SLOWindows overrides the tracker
	// config; zero values take the telemetry defaults. In plane mode the
	// trackers live on the shared TenantPlane instead.
	SLOWindows telemetry.SLOConfig
	// Admit, when set, screens every arriving query before it is routed:
	// shed queries are answered 429 with a Retry-After hint instead of
	// being enqueued. The simulator engine runs the same admitters.
	Admit admit.Admitter
	// Degrade, when set, closes the degraded-mode loop: admission outcomes
	// feed its pressure windows, and its level clamps the selector's model
	// choice to progressively faster models while overload is confirmed.
	Degrade *admit.Degrader
	// RetryBudget, when set, gates dispatch failover: once the budget is
	// exhausted a failed batch fails fast instead of doubling the load on
	// the surviving workers mid-overload.
	RetryBudget *admit.RetryBudget
	// Plane, when set, runs this frontend as one shard of a multi-tenant
	// deployment: arrivals resolve to a tenant whose own SLO, selector,
	// rate monitor, degrader, and weighted-fair admission replace the
	// frontend-wide Admit/Degrade/Monitor/Select/SLO fields (which then
	// only serve as fallbacks for state-less paths). The plane is shared
	// across shards.
	Plane *TenantPlane
	// Shard is this frontend's shard index in a sharded deployment
	// (informational; 0 when unsharded).
	Shard int
	// WorkerOffset shifts the worker metric labels so shards sharing one
	// telemetry registry keep distinct per-worker series: shard-local
	// worker w is exposed as worker WorkerOffset+w.
	WorkerOffset int

	closed    atomic.Bool
	nextID    atomic.Int64
	start     time.Time
	wq        []*workerQueue
	ownHealth bool
	clamp     *modelClamp
	tel       *serveSeries
	// picks recycles the queue-length and health snapshots the balancer
	// reads on every enqueue, so routing a query allocates nothing.
	picks sync.Pool
	// shedCtr / fairShedCtr and admitName cache the shed counter (a
	// registry lookup) and admission policy name off the shed hot path.
	shedCtr     *telemetry.Counter
	fairShedCtr *telemetry.Counter
	admitName   string
	// inferURLs pre-parses each worker's /infer endpoint so dispatch does
	// not concatenate or parse URL strings per POST.
	inferURLs []*url.URL
	// process names this frontend in trace fragments: "shard-<i>" in a
	// sharded plane, "frontend" standalone.
	process string
	// sloTrack is the single-tenant attainment tracker (tenant label
	// "default"); plane mode tracks per tenant on the shared plane.
	sloTrack *telemetry.SLOTracker
	// maxBatch caps how far workerLoop scans the queue prefix for the
	// tightest deadline in the batch window.
	maxBatch int

	// monitorMu guards the Monitor, whose Observe times must be
	// non-decreasing. It is never held while a workerQueue lock is taken.
	monitorMu sync.Mutex

	srv   *http.Server
	addr  string
	loops sync.WaitGroup
}

// workerQueue is one worker's pending-query queue with its own lock and
// condition variable, so a slow worker's selector loop never serializes
// enqueues for the others. Storage is a growable ring (pqRing): dispatch
// pops by advancing an index instead of re-copying the queue tail, so a
// steady-state enqueue/dispatch cycle never touches the allocator.
type workerQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	ring pqRing
	// outstanding = queued + in-dispatch queries, the balancer's view of
	// the worker's load. In-dispatch queries must count: a worker that
	// just popped its whole queue reads as empty, and a queue-aware
	// balancer would keep stacking arrivals on it while others idle.
	outstanding atomic.Int32
}

// pickScratch is one enqueue's balancer input snapshot, recycled through
// Frontend.picks.
type pickScratch struct {
	lens    []int
	healthy []bool
}

// dispatchScratch is the per-workerLoop scratch: the popped batch, the
// joined trace-context header, the POST buffers, and the per-batch
// decision and span storage (both copied by the rings they land in, so
// reuse here never aliases recorded data). workerLoop dispatches
// synchronously, so one instance per loop goroutine suffices.
type dispatchScratch struct {
	postScratch
	batch []pendingQuery
	ids   []byte
	dec   telemetry.Decision
	spans [6]telemetry.Span
}

type pendingQuery struct {
	q    sim.Query
	done chan QueryResponse
	// slo is the deadline this query is judged against: its tenant's own
	// SLO in multi-tenant mode, the frontend-wide one otherwise.
	slo float64
	// st is the query's tenant state (nil in single-tenant mode).
	st *tenantState
	// traceID joins this query's fragments across gateway, shard, and
	// worker; propagated to the worker in the X-Trace-Id header.
	traceID string
	// pickSec and enqueuedAt stamp the query's first two span stages
	// (modeled seconds); the dispatch path fills in the rest.
	pickSec    float64
	enqueuedAt float64
}

// Start begins serving on Addr (default a random localhost port).
func (f *Frontend) Start() error {
	if len(f.Workers) == 0 {
		return fmt.Errorf("serve: frontend needs workers")
	}
	if f.TimeScale <= 0 {
		f.TimeScale = 1
	}
	if f.Telemetry == nil {
		f.Telemetry = telemetry.NewRegistry()
	}
	if f.Traces == nil {
		f.Traces = telemetry.NewTraceBuffer(0)
	}
	if f.Decisions == nil {
		f.Decisions = telemetry.NewDecisionBuffer(0)
	}
	f.tel = newServeSeries(f.Telemetry, len(f.Workers), f.WorkerOffset)
	if f.Plane != nil {
		f.process = fmt.Sprintf("shard-%d", f.Shard)
		if f.Select == nil {
			f.Select = f.Plane.fallback
		}
	} else {
		f.process = "frontend"
		f.sloTrack = telemetry.NewSLOTracker(f.SLOWindows)
		telemetry.RegisterSLOGauges(f.Telemetry, f.sloTrack, "default", f.now)
	}
	if f.Balancer == nil {
		f.Balancer = lb.NewRoundRobin()
	}
	f.Balancer = lb.Instrumented(f.Balancer, f.Telemetry)
	if f.Health == nil {
		iv := f.HealthInterval
		if iv <= 0 {
			iv = time.Duration(float64(500*time.Millisecond) / f.TimeScale)
			if iv < 5*time.Millisecond {
				iv = 5 * time.Millisecond
			}
		}
		f.Health = lb.NewHealthTracker(f.Workers, lb.HealthConfig{Interval: iv, Telemetry: f.Telemetry})
		f.Health.Start()
		f.ownHealth = true
	}
	registerHealthGauges(f.Telemetry, f.Health, len(f.Workers), f.WorkerOffset)
	if f.Degrade != nil {
		f.clamp = newModelClamp(f.Profiles)
		wireDegradeTelemetry(f.Telemetry, f.Degrade)
	}
	f.wq = make([]*workerQueue, len(f.Workers))
	for i := range f.wq {
		ws := &workerQueue{}
		ws.cond = sync.NewCond(&ws.mu)
		f.wq[i] = ws
	}
	f.picks.New = func() any {
		return &pickScratch{
			lens:    make([]int, 0, len(f.Workers)),
			healthy: make([]bool, 0, len(f.Workers)),
		}
	}
	if f.Admit != nil {
		f.admitName = f.Admit.Name()
		f.shedCtr = f.tel.shed(f.admitName)
	}
	if f.Plane != nil {
		f.fairShedCtr = f.tel.shed(f.Plane.fair.Name())
	}
	f.inferURLs = make([]*url.URL, len(f.Workers))
	for i, u := range f.Workers {
		pu, err := url.Parse(u + "/infer")
		if err != nil {
			return fmt.Errorf("serve: bad worker URL %q: %v", u, err)
		}
		f.inferURLs[i] = pu
	}
	for _, p := range f.Profiles.Profiles {
		if b := p.MaxBatch(); b > f.maxBatch {
			f.maxBatch = b
		}
	}
	if f.start.IsZero() {
		// The sharded gateway pre-sets a common epoch so every shard (and
		// the shared fair admitter they feed) agrees on modeled time.
		f.start = time.Now()
	}
	addr := f.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	f.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/query", f.handleQuery)
	mux.HandleFunc("/stats", f.handleStats)
	mux.Handle("/metrics", f.Telemetry.Handler())
	mux.Handle("/debug/traces", f.Traces.Handler())
	mux.Handle("/debug/decisions", f.Decisions.Handler())
	telemetry.RegisterPprof(mux)
	f.srv = &http.Server{Handler: mux}
	go func() { _ = f.srv.Serve(ln) }()

	for w := range f.Workers {
		f.loops.Add(1)
		go f.workerLoop(w)
	}
	return nil
}

// URL returns the frontend's base URL.
func (f *Frontend) URL() string { return "http://" + f.addr }

// Stop shuts down the HTTP server, the selector loops, and the health
// tracker (if owned).
func (f *Frontend) Stop() error {
	if f.srv == nil {
		return nil // Start never bound a listener; nothing to tear down
	}
	err := f.srv.Close()
	f.closed.Store(true)
	for _, ws := range f.wq {
		ws.mu.Lock()
		ws.cond.Broadcast()
		ws.mu.Unlock()
	}
	f.loops.Wait()
	if f.ownHealth {
		f.Health.Stop()
	}
	return err
}

// Stats returns the current snapshot; it is the single source for the
// /stats handler, and every count in it is read from the registry that
// serves /metrics.
func (f *Frontend) Stats() StatsResponse { return f.snapshot() }

// snapshot assembles the StatsResponse from the telemetry registry and the
// per-worker queues. It is the only stats read path (the old Stats /
// handleStats pair re-serialized under two separate lock acquisitions).
// Counter reads are individually atomic; a scrape racing an in-flight
// batch may see its served count before its violation count, but the two
// endpoints can never disagree about a settled system.
func (f *Frontend) snapshot() StatsResponse {
	qs := make([]int, len(f.wq))
	ds := make([]int, len(f.wq))
	for i, ws := range f.wq {
		ws.mu.Lock()
		qs[i] = ws.ring.len()
		ws.mu.Unlock()
		ds[i] = int(f.tel.workerDispatch[i].Value())
	}
	served := int(f.tel.queries.Value())
	violations := int(f.tel.violations.Value())
	acc, vr := 0.0, 0.0
	if sat := served - violations; sat > 0 {
		acc = f.tel.satAcc.Value() / float64(sat)
	}
	if served > 0 {
		vr = float64(violations) / float64(served)
	}
	shed := 0
	if f.Admit != nil {
		shed = int(f.tel.shed(f.Admit.Name()).Value())
	}
	level := 0
	if f.Degrade != nil {
		level = f.Degrade.Level()
	}
	return StatsResponse{
		Served:           served,
		Violations:       violations,
		Accuracy:         acc,
		ViolationRate:    vr,
		QueueLengths:     qs,
		FailedDispatches: int(f.tel.failed.Value()),
		WorkerHealthy:    f.Health.Healthy(),
		WorkerDispatches: ds,
		Shed:             shed,
		DegradeLevel:     level,
	}
}

func (f *Frontend) now() float64 {
	return time.Since(f.start).Seconds() * f.TimeScale
}

// queueLensInto snapshots every worker's outstanding load for the
// balancer into the caller's scratch slice.
func (f *Frontend) queueLensInto(lens []int) []int {
	for _, ws := range f.wq {
		lens = append(lens, int(ws.outstanding.Load()))
	}
	return lens
}

// EnqueueError reports why Enqueue refused a query, with the HTTP mapping
// the handlers use.
type EnqueueError struct {
	Status int // HTTP status: 400 unknown tenant, 429 shed, 503 shutdown
	Msg    string
	// RetryAfterSec is the wall-clock back-off hint for 429 responses
	// (already scaled down from modeled seconds by TimeScale).
	RetryAfterSec float64
}

// Error implements error.
func (e *EnqueueError) Error() string { return e.Msg }

// Enqueue admits and routes one query in-process, returning the channel
// its response will be delivered on (buffered: dispatch never blocks on a
// reader, so fire-and-forget injectors may drop the channel). tenantName
// selects the tenant in multi-tenant mode ("" resolves to the default
// tenant); it is ignored when no Plane is configured. The HTTP handler,
// the sharded gateway, and load injectors all route through here. A fresh
// trace ID is generated; upstreams carrying their own call EnqueueTraced.
func (f *Frontend) Enqueue(tenantName string) (<-chan QueryResponse, *EnqueueError) {
	return f.EnqueueTraced(tenantName, "")
}

// EnqueueTraced is Enqueue with the caller's trace context: the gateway
// (or an HTTP client via X-Trace-Id) passes the trace ID its own fragment
// carries, so this frontend's fragment joins the same tree. An empty
// traceID generates a fresh one. The returned channel is freshly
// allocated and safe to abandon; in-process callers that always consume
// the response should prefer Do, which recycles its channel.
func (f *Frontend) EnqueueTraced(tenantName, traceID string) (<-chan QueryResponse, *EnqueueError) {
	done := make(chan QueryResponse, 1)
	if eerr := f.enqueue(tenantName, traceID, done); eerr != nil {
		return nil, eerr
	}
	return done, nil
}

// EnqueueAsync enqueues one query fire-and-forget: it is admitted,
// served, counted, and traced as usual, but no response channel is ever
// allocated or delivered to. Saturation load injectors drive the plane
// through here.
func (f *Frontend) EnqueueAsync(tenantName string) *EnqueueError {
	return f.enqueue(tenantName, "", nil)
}

// enqueue admits and routes one query onto a worker ring; done (which may
// be nil for fire-and-forget callers) receives the response. This is the
// whole client-visible hot path before dispatch, and it is allocation-flat
// at steady state: the balancer inputs come from the pick pool, the ring
// reuses its slots, and the trace ID is the only per-query allocation.
func (f *Frontend) enqueue(tenantName, traceID string, done chan QueryResponse) *EnqueueError {
	if f.closed.Load() {
		return &EnqueueError{Status: http.StatusServiceUnavailable, Msg: "shutting down"}
	}
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	id := int(f.nextID.Add(1) - 1)
	arrival := f.now()

	var st *tenantState
	slo := f.SLO
	if f.Plane != nil {
		var ok bool
		st, ok = f.Plane.state(tenantName)
		if !ok {
			return &EnqueueError{Status: http.StatusBadRequest,
				Msg: fmt.Sprintf("unknown tenant %q", tenantName)}
		}
		slo = st.slo
		st.observe(arrival)
		if err := f.admitTenant(st, id, arrival, traceID); err != nil {
			return err
		}
	} else {
		rate := 0.0
		if f.Monitor != nil {
			f.monitorMu.Lock()
			f.Monitor.Observe(arrival)
			rate = f.Monitor.Load(arrival)
			f.monitorMu.Unlock()
		}
		if f.Admit != nil {
			if err := f.admitSingle(id, arrival, traceID, rate); err != nil {
				return err
			}
		}
	}

	pickStart := f.now()
	scr := f.picks.Get().(*pickScratch)
	scr.lens = f.queueLensInto(scr.lens[:0])
	scr.healthy = f.Health.HealthyInto(scr.healthy[:0])
	w := f.Balancer.Pick(scr.lens, scr.healthy)
	f.picks.Put(scr)
	enqueuedAt := f.now()

	ws := f.wq[w]
	ws.mu.Lock()
	if f.closed.Load() {
		ws.mu.Unlock()
		return &EnqueueError{Status: http.StatusServiceUnavailable, Msg: "shutting down"}
	}
	ws.ring.push(pendingQuery{
		q: sim.Query{ID: id, Arrival: arrival, Tenant: tenantName}, done: done,
		slo: slo, st: st, traceID: traceID,
		pickSec: enqueuedAt - pickStart, enqueuedAt: enqueuedAt,
	})
	ws.outstanding.Add(1)
	ws.cond.Signal()
	ws.mu.Unlock()
	return nil
}

// Do enqueues one query and blocks until its response arrives — the
// in-process equivalent of POST /query. Benchmarks and tests use it; the
// HTTP handler keeps its own select so client disconnects can abandon the
// wait. Because Do always receives the response, its channel is recycled.
func (f *Frontend) Do(tenantName string) (QueryResponse, *EnqueueError) {
	done := donePool.Get().(chan QueryResponse)
	if eerr := f.enqueue(tenantName, "", done); eerr != nil {
		donePool.Put(done)
		return QueryResponse{}, eerr
	}
	resp := <-done
	donePool.Put(done)
	return resp, nil
}

// handleQuery routes the query through the balancer and blocks until it is
// served. The tenant comes from the X-Tenant header or ?tenant= parameter
// (multi-tenant mode only).
func (f *Frontend) handleQuery(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	done := donePool.Get().(chan QueryResponse)
	eerr := f.enqueue(tenantFromRequest(req), req.Header.Get("X-Trace-Id"), done)
	if eerr != nil {
		donePool.Put(done)
		writeEnqueueError(rw, eerr)
		return
	}
	select {
	case resp := <-done:
		donePool.Put(done)
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	case <-req.Context().Done():
		// Client went away; the batch still completes and records metrics
		// (the done channel is buffered, so dispatch never blocks on it).
		// The abandoned channel is NOT recycled: dispatch's pending send
		// would poison the next query that drew it from the pool.
	}
}

// tenantFromRequest extracts the tenant label: X-Tenant header first, then
// the ?tenant= query parameter; empty means the default tenant.
func tenantFromRequest(req *http.Request) string {
	if tn := req.Header.Get("X-Tenant"); tn != "" {
		return tn
	}
	return req.URL.Query().Get("tenant")
}

// writeEnqueueError maps an EnqueueError onto the HTTP response, with the
// Retry-After hint on 429s.
func writeEnqueueError(rw http.ResponseWriter, e *EnqueueError) {
	if e.Status == http.StatusTooManyRequests {
		rw.Header().Set("Retry-After", strconv.Itoa(admit.RetryAfterSeconds(e.RetryAfterSec)))
	}
	http.Error(rw, e.Msg, e.Status)
}

// outstanding totals queued plus in-dispatch queries across this shard's
// workers — the admitters' backlog signal and the sharder's depth input.
func (f *Frontend) Outstanding() int {
	n := 0
	for _, ws := range f.wq {
		n += int(ws.outstanding.Load())
	}
	return n
}

// admitSingle screens one arrival through the frontend-wide admission
// controller. It returns nil when the query may proceed to routing; a shed
// query has been recorded (shed counter, degrader pressure, a decision
// record, and a single-span shed trace so rejected queries stay visible in
// /debug/traces).
func (f *Frontend) admitSingle(id int, arrival float64, traceID string, rate float64) *EnqueueError {
	outstanding := f.Outstanding()
	v := f.Admit.Admit(admit.Request{Now: arrival, Outstanding: outstanding})
	level := 0
	if f.Degrade != nil {
		level = f.Degrade.Level()
		f.Degrade.Observe(arrival, !v.Admit, v.EstWait)
	}
	f.tel.estWait.Observe(v.EstWait)
	f.recordAdmitDecision(v.Admit, false, arrival, traceID, "", outstanding, rate, level, v.EstWait)
	if v.Admit {
		f.tel.admitted.Inc()
		return nil
	}
	f.shedCtr.Inc()
	msg := "shed by " + f.admitName + " admission control (est wait " +
		strconv.FormatFloat(v.EstWait, 'f', 3, 64) + "s)"
	f.recordShedTrace(id, arrival, traceID, "", msg)
	return f.shedError(msg, v.RetryAfter)
}

// admitTenant screens one arrival through the shared weighted-fair
// admitter, charging the decision to the query's tenant.
func (f *Frontend) admitTenant(st *tenantState, id int, arrival float64, traceID string) *EnqueueError {
	outstanding := f.Outstanding()
	v := f.Plane.fair.Admit(st.name, admit.Request{Now: arrival, Outstanding: outstanding})
	level := 0
	if st.degrade != nil {
		level = st.degrade.Level()
		st.degrade.Observe(arrival, !v.Admit, v.EstWait)
	}
	f.tel.estWait.Observe(v.EstWait)
	f.recordAdmitDecision(v.Admit, v.Reason == tenant.ReasonBorrowed,
		arrival, traceID, st.name, outstanding, st.load(arrival), level, v.EstWait)
	if v.Admit {
		f.tel.admitted.Inc()
		st.admitted.Inc()
		if v.Reason == tenant.ReasonBorrowed {
			st.borrowed.Inc()
		}
		return nil
	}
	f.fairShedCtr.Inc()
	st.shed.Inc()
	msg := "tenant " + st.name + " shed by weighted-fair admission (" + string(v.Reason) + ")"
	f.recordShedTrace(id, arrival, traceID, st.name, msg)
	return f.shedError(msg, v.RetryAfter)
}

// recordAdmitDecision appends one admission verdict — admit, borrow, or
// shed — to the decision ring with the inputs the admitter saw. The wait
// estimate the verdict was premised on lands in PredictedSec; admission
// makes no realized-latency claim, so RealizedSec stays 0.
func (f *Frontend) recordAdmitDecision(admitted, borrowed bool, arrival float64, traceID, tenantName string, outstanding int, rate float64, level int, estWait float64) {
	kind, outcome := telemetry.DecisionShed, "shed"
	switch {
	case admitted && borrowed:
		kind, outcome = telemetry.DecisionBorrow, "admitted"
	case admitted:
		kind, outcome = telemetry.DecisionAdmit, "admitted"
	}
	f.Decisions.Add(telemetry.Decision{
		Kind: kind, Time: arrival, TraceID: traceID,
		Tenant: tenantName, Shard: f.Shard, Worker: -1,
		QueueLen: outstanding, RateQPS: rate, DegradeLevel: level,
		PredictedSec: estWait, Outcome: outcome,
	})
}

// recordShedTrace keeps a rejected query visible in /debug/traces and the
// JSONL export via a single zero-length shed span.
func (f *Frontend) recordShedTrace(id int, arrival float64, traceID, tenantName, msg string) {
	// The ring copies spans on Add, so a stack span array suffices.
	var sp [1]telemetry.Span
	sp[0] = telemetry.Span{Stage: telemetry.StageShed}
	qt := telemetry.QueryTrace{
		ID: id, Arrival: arrival, Worker: -1,
		Error:   msg,
		TraceID: traceID, Process: f.process, Parent: f.TraceParent,
		Tenant: tenantName, Shard: f.Shard,
		Spans: sp[:],
	}
	f.Traces.Add(qt)
	if f.TraceWriter != nil {
		_ = f.TraceWriter.Write(qt)
	}
}

// shedError builds the 429, scaling the modeled-seconds back-off hint to
// wall time (clients back off in wall time under compressed TimeScale).
func (f *Frontend) shedError(msg string, retryAfterModeled float64) *EnqueueError {
	return &EnqueueError{
		Status:        http.StatusTooManyRequests,
		Msg:           "overloaded: " + msg,
		RetryAfterSec: retryAfterModeled / f.TimeScale,
	}
}

func (f *Frontend) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(f.snapshot())
}

// workerLoop mirrors Controller.workerLoop for live queries. It is the
// only consumer of its ring, so a snapshot of the head and length stays
// valid after the lock is dropped (the ring can only grow underneath it).
func (f *Frontend) workerLoop(w int) {
	defer f.loops.Done()
	ws := f.wq[w]
	scr := &dispatchScratch{}
	defer scr.closeConns()
	for {
		ws.mu.Lock()
		for ws.ring.len() == 0 && !f.closed.Load() {
			ws.cond.Wait()
		}
		if ws.ring.len() == 0 && f.closed.Load() {
			ws.mu.Unlock()
			return
		}
		n := ws.ring.len()
		head := *ws.ring.at(0)
		// The decision slack honors the tightest deadline in the batch
		// window, not just the head's: multi-tenant FIFO queues mix SLO
		// classes, and a short-SLO query stuck behind a lax head would
		// otherwise wait out a slow accurate-model batch it can never
		// survive (head-of-line inversion).
		deadline := head.q.Arrival + head.slo
		scan := n
		if scan > f.maxBatch {
			scan = f.maxBatch
		}
		for i := 1; i < scan; i++ {
			pq := ws.ring.at(i)
			if d := pq.q.Arrival + pq.slo; d < deadline {
				deadline = d
			}
		}
		ws.mu.Unlock()

		// In multi-tenant mode the batch decision is keyed by the head
		// query's tenant: its selector, monitored load, and degrade clamp
		// drive the pick. Batches may still mix tenants (FIFO order is
		// preserved); each query is judged against its own SLO at dispatch.
		now := f.now()
		sel := f.Select
		degrade, clamp := f.Degrade, f.clamp
		load := 0.0
		if head.st != nil {
			sel = head.st.sel
			degrade, clamp = head.st.degrade, head.st.clamp
			load = head.st.load(now)
		} else if f.Monitor != nil {
			f.monitorMu.Lock()
			load = f.Monitor.Load(now)
			f.monitorMu.Unlock()
		}
		slack := deadline - now
		model, batch := sel(now, load, n, slack)
		p, ok := f.Profiles.ByName(model)
		if !ok || batch < 1 {
			// Defensive: never drop live queries on selector misbehavior.
			p = f.Profiles.Profiles[0]
			batch = 1
		}
		level := 0
		if degrade != nil {
			level = degrade.Level()
			if level > 0 {
				if name, changed := clamp.apply(level, p.Name); changed {
					prev := p.Name
					p, _ = f.Profiles.ByName(name)
					f.tel.degraded.Inc()
					f.Decisions.Add(telemetry.Decision{
						Kind: telemetry.DecisionDegrade, Time: now, TraceID: head.traceID,
						Tenant: head.q.Tenant, Shard: f.Shard, Worker: f.WorkerOffset + w,
						QueueLen: n, RateQPS: load, DegradeLevel: level, SlackSec: slack,
						Model: p.Name, Batch: batch,
						Outcome: "clamped from " + prev,
					})
				}
			}
		}
		if batch > p.MaxBatch() {
			batch = p.MaxBatch()
		}
		if batch > n {
			batch = n
		}
		// The select decision is recorded against what actually dispatches
		// (post-clamp model, final batch): PredictedSec is the profiled
		// batch latency the policy committed to, and dispatch fills in
		// RealizedSec so predicted-vs-realized error is measurable per
		// decision.
		scr.dec = telemetry.Decision{
			Kind: telemetry.DecisionSelect, Time: now, TraceID: head.traceID,
			Tenant: head.q.Tenant, Shard: f.Shard, Worker: f.WorkerOffset + w,
			QueueLen: n, RateQPS: load, DegradeLevel: level, SlackSec: slack,
			Model: p.Name, Batch: batch, PredictedSec: p.BatchLatency(batch),
		}
		dec := &scr.dec
		ws.mu.Lock()
		scr.batch = ws.ring.popInto(scr.batch[:0], batch)
		ws.mu.Unlock()

		f.dispatch(w, p.Name, scr.batch, dec, scr)
		ws.outstanding.Add(-int32(len(scr.batch)))
		// Drop the popped queries' channel and tenant-state references so
		// the scratch slice does not retain them until the next batch.
		for i := range scr.batch {
			scr.batch[i] = pendingQuery{}
		}
	}
}

// post attempts one /infer POST against worker w and reports the outcome
// to the health tracker. Connection errors and 5xx responses count as
// health failures; 4xx responses fail the dispatch without poisoning the
// worker's health (they indicate a bad request, not a bad worker). On
// success it returns the worker-reported inference latency in modeled
// seconds, so the dispatch overhead and the inference time can be
// attributed to separate span stages. body is the batch's pre-encoded
// InferRequest and traceCtx its comma-joined trace context, both built
// once per batch by dispatch (both alias the scratch, which is safe: the
// exchange copies them into the wire buffer before writing).
func (f *Frontend) post(w int, body []byte, traceCtx []byte, scr *dispatchScratch) (float64, bool) {
	f.tel.workerDispatch[w].Inc()
	lat, status, err := scr.postInfer(w, f.inferURLs[w], body, traceCtx)
	if err != nil && status == 0 {
		f.Health.ReportFailure(w)
		return 0, false
	}
	if status >= 500 {
		f.Health.ReportFailure(w)
		return 0, false
	}
	if status < 200 || status >= 300 {
		return 0, false
	}
	f.Health.ReportSuccess(w)
	if err != nil {
		return 0, true // delivered; latency attribution degrades to dispatch
	}
	return lat, true
}

// allowFailover asks the retry budget for a failover attempt. Without a
// budget every failover is allowed (the historical behaviour); with one,
// refusals fail the batch fast so retries cannot amplify an overload onto
// the surviving workers.
func (f *Frontend) allowFailover() bool {
	if f.RetryBudget == nil {
		return true
	}
	if f.RetryBudget.Allow(f.now()) {
		f.tel.retries.Inc()
		return true
	}
	f.tel.retriesDenied.Inc()
	return false
}

// failoverTarget picks a healthy worker other than w, or -1 if none.
func (f *Frontend) failoverTarget(w int) int {
	if len(f.Workers) < 2 {
		return -1
	}
	scr := f.picks.Get().(*pickScratch)
	defer f.picks.Put(scr)
	scr.healthy = f.Health.HealthyInto(scr.healthy[:0])
	scr.healthy[w] = false
	if !anyHealthy(scr.healthy) {
		return -1
	}
	scr.lens = f.queueLensInto(scr.lens[:0])
	alt := f.Balancer.Pick(scr.lens, scr.healthy)
	if alt == w {
		return -1
	}
	return alt
}

func anyHealthy(healthy []bool) bool {
	for _, h := range healthy {
		if h {
			return true
		}
	}
	return false
}

// dispatch delivers the batch to worker w, failing over once to another
// healthy worker; queries whose batch reached no worker are recorded as
// violations (and FailedDispatches) rather than silently marked served.
// Every query's telemetry — counters, per-stage histograms, and its trace
// — is recorded here, and the batch's select decision is completed with
// the realized inference latency before it lands in the decision ring.
func (f *Frontend) dispatch(w int, model string, queries []pendingQuery, dec *telemetry.Decision, scr *dispatchScratch) {
	// One X-Trace-Id header carries the whole trace context —
	// "id1,id2,...;process" — so the wire costs the worker's server a
	// single non-common header parse per batch instead of two.
	scr.ids = scr.ids[:0]
	for i := range queries {
		if i > 0 {
			scr.ids = append(scr.ids, ',')
		}
		scr.ids = append(scr.ids, queries[i].traceID...)
	}
	scr.ids = append(scr.ids, ';')
	scr.ids = append(scr.ids, f.process...)
	scr.body = appendInferRequest(scr.body[:0], model, len(queries))
	dispStart := f.now()
	target := w
	infSec, ok := f.post(w, scr.body, scr.ids, scr)
	if !ok {
		if alt := f.failoverTarget(w); alt >= 0 && f.allowFailover() {
			infSec, ok = f.post(alt, scr.body, scr.ids, scr)
			if ok {
				target = alt
			}
		}
	}
	postEnd := f.now()
	dispSec := postEnd - dispStart - infSec
	if dispSec < 0 {
		dispSec = 0
	}
	p, _ := f.Profiles.ByName(model)

	if dec != nil {
		dec.Worker = f.WorkerOffset + target
		dec.RealizedSec = infSec
		dec.Outcome = "served"
		if !ok {
			dec.Outcome = "failed"
		} else {
			err := dec.PredictedSec - infSec
			if err < 0 {
				err = -err
			}
			f.tel.decisionErr.Observe(err)
		}
		f.Decisions.Add(*dec)
	}

	f.tel.decisions.Inc()
	f.tel.model(model).Add(float64(len(queries)))
	f.tel.batchSize.Observe(float64(len(queries)))
	done := f.now()
	respSec := done - postEnd
	// One scratch span buffer for the whole batch: the trace ring copies
	// spans on Add, so each query's spans are written in place. (A local
	// array would escape into the ring's Add call and heap-allocate per
	// batch, so the buffer lives in the per-loop scratch instead.)
	spanBuf := &scr.spans
	for i := range queries {
		pq := &queries[i]
		lat := done - pq.q.Arrival
		slo := pq.slo
		if slo <= 0 {
			slo = f.SLO
		}
		met := ok && lat <= slo
		f.tel.queries.Inc()
		if pq.st != nil {
			pq.st.queries.Inc()
			pq.st.sloTrack.Observe(done, met)
		} else if f.sloTrack != nil {
			f.sloTrack.Observe(done, met)
		}
		if met {
			f.tel.satAcc.Add(p.Accuracy)
		} else {
			f.tel.violations.Inc()
			if pq.st != nil {
				pq.st.violations.Inc()
			}
		}
		resp := QueryResponse{
			ID: pq.q.ID, Model: model, Batch: len(queries),
			LatencyMS: lat * 1000, DeadlineMet: met,
		}
		if !ok {
			f.tel.failed.Inc()
			resp.Error = "dispatch failed: no healthy worker reachable"
		}

		enqSec := pq.enqueuedAt - pq.q.Arrival - pq.pickSec
		if enqSec < 0 {
			enqSec = 0
		}
		waitSec := dispStart - pq.enqueuedAt
		*spanBuf = [6]telemetry.Span{
			{Stage: telemetry.StageEnqueue, Seconds: enqSec},
			{Stage: telemetry.StagePick, Seconds: pq.pickSec},
			{Stage: telemetry.StageBatchWait, Seconds: waitSec},
			{Stage: telemetry.StageDispatch, Seconds: dispSec},
			{Stage: telemetry.StageInference, Seconds: infSec},
			{Stage: telemetry.StageRespond, Seconds: respSec},
		}
		f.tel.stEnqueue.Observe(enqSec)
		f.tel.stPick.Observe(pq.pickSec)
		f.tel.stBatchWait.Observe(waitSec)
		f.tel.stDispatch.Observe(dispSec)
		f.tel.stInference.Observe(infSec)
		f.tel.stRespond.Observe(respSec)
		f.tel.latency.ObserveExemplar(lat, pq.traceID)
		qt := telemetry.QueryTrace{
			ID: pq.q.ID, Arrival: pq.q.Arrival, Worker: target,
			Model: model, Batch: len(queries),
			LatencyMS: lat * 1000, DeadlineMet: met, Error: resp.Error,
			TraceID: pq.traceID, Process: f.process, Parent: f.TraceParent,
			Tenant: pq.q.Tenant, Shard: f.Shard,
			Decision: dec,
			Spans:    spanBuf[:],
		}
		f.Traces.Add(qt)
		if f.TraceWriter != nil {
			_ = f.TraceWriter.Write(qt)
		}
		if pq.done != nil {
			pq.done <- resp
		}
	}
}
