package serve

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ramsis/internal/llm"
	"ramsis/internal/sim"
)

// TestLLMWorkerStreamsWireTTFT drives one long-prefill request through a
// live worker and checks the stream's timing structure on the wire: the
// first token byte arrives after the prefill step but before the decode
// tail, so the client-measured TTFT is a real network measurement. The
// worker starts on the most accurate model and a fixed selector pins the
// fastest, so the first step boundary must also record a model switch.
func TestLLMWorkerStreamsWireTTFT(t *testing.T) {
	models := llm.BuiltinSet()
	const timeScale = 50.0
	w := NewLLMWorker(models, 8.0, timeScale, sim.FixedSelector(models.Fastest()))
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	const prefill, decode = 2000, 5
	res, err := PostGenerate(http.DefaultClient, w.URL(), prefill, decode)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens != decode {
		t.Fatalf("streamed %d token bytes, want %d", res.Tokens, decode)
	}
	fast := models.Models[models.Fastest()]
	if res.Summary.Model != fast.Name {
		t.Fatalf("served by %s, selector pinned %s", res.Summary.Model, fast.Name)
	}
	if res.Summary.Prefill != prefill || res.Summary.Decode != decode {
		t.Fatalf("summary echoes %d/%d, want %d/%d",
			res.Summary.Prefill, res.Summary.Decode, prefill, decode)
	}

	// The prefill fits one step, so the first token cannot arrive before
	// that step's modeled time has been slept through — on the wire and in
	// the worker's own summary alike.
	tau1 := fast.StepTime(prefill, 0, 0)
	if wire := res.TTFTWall * timeScale; wire < tau1*0.99 {
		t.Errorf("wire TTFT %.4fs modeled, below the prefill step time %.4fs", wire, tau1)
	}
	if res.Summary.TTFT < tau1*0.99 {
		t.Errorf("summary TTFT %.4fs, below the prefill step time %.4fs", res.Summary.TTFT, tau1)
	}
	// The remaining decode tokens each ride a later step: the stream must
	// stay open past the first byte for at least those steps' wall time.
	decodeTail := 0.0
	for i := 0; i < decode-1; i++ {
		decodeTail += fast.Beta0
	}
	if gap := res.LatencyWall - res.TTFTWall; gap*timeScale < decodeTail*0.9 {
		t.Errorf("stream closed %.4fs (modeled) after first token; decode tail needs >= %.4fs",
			gap*timeScale, decodeTail)
	}
	if res.Summary.Latency <= res.Summary.TTFT {
		t.Errorf("latency %.4f <= TTFT %.4f", res.Summary.Latency, res.Summary.TTFT)
	}
}

// TestLLMWorkerConcurrentRequestsShareTheBatch issues parallel requests
// and then checks the worker's /metrics exposition carries the LLM serving
// series with the switch recorded and every query counted.
func TestLLMWorkerConcurrentRequestsShareTheBatch(t *testing.T) {
	models := llm.BuiltinSet()
	w := NewLLMWorker(models, 8.0, 100, sim.FixedSelector(models.Fastest()))
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = PostGenerate(http.DefaultClient, w.URL(), 300+50*i, 4)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	resp, err := http.Get(w.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, name := range []string{
		"ramsis_llm_ttft_seconds",
		"ramsis_llm_tbt_seconds",
		"ramsis_llm_step_seconds",
		"ramsis_llm_tokens_total",
		"ramsis_llm_kv_usage",
		"ramsis_llm_model_switches_total",
		"ramsis_llm_steps_total",
		"ramsis_queries_total",
		"ramsis_query_latency_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(text, `ramsis_queries_total 4`) {
		t.Errorf("expected 4 served queries in exposition")
	}
	if !strings.Contains(text, `ramsis_llm_model_switches_total 1`) {
		t.Errorf("expected exactly one model switch in exposition")
	}
}

// TestLLMWorkerRejectsOversizeFootprint pins the KV admission guard: a
// request whose footprint can never fit the serving model's cache answers
// 503 instead of deadlocking the queue head.
func TestLLMWorkerRejectsOversizeFootprint(t *testing.T) {
	models := llm.BuiltinSet()
	w := NewLLMWorker(models, 8.0, 100, nil)
	w.KVCap = 256
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	_, err := PostGenerate(http.DefaultClient, w.URL(), 500, 10)
	if err == nil {
		t.Fatal("oversize request served; want a KV-capacity rejection")
	}
	if !strings.Contains(err.Error(), "KV capacity") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	// The worker stays healthy for requests that do fit.
	res, err := PostGenerate(http.DefaultClient, w.URL(), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens != 3 {
		t.Fatalf("streamed %d tokens, want 3", res.Tokens)
	}
}
