// Package lb is the load-balancing subsystem shared by the discrete-event
// simulator and the HTTP serving prototype: a pluggable Balancer (the
// dispatch policy the §3.2.1 central queue applies per arrival) plus a
// HealthTracker that probes worker /healthz endpoints and routes traffic
// around failed workers until they recover.
//
// The paper instantiates round-robin (§3.2.1) and join-shortest-queue
// (Appendix I); power-of-two choices is the standard low-overhead
// approximation of JSQ. The offline MDP in internal/core derives its
// per-worker arrival split from the same strategy choice
// (core.RoundRobin / core.ShortestQueueFirst / core.PowerOfTwoChoices), so
// policies stay matched to the online balancer.
package lb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Balancer picks the worker an arriving query is routed to. queueLens holds
// every worker's current queue length; healthy marks which workers are
// accepting traffic (nil means all healthy). Implementations must avoid
// unhealthy workers whenever at least one healthy worker exists; when no
// worker is healthy they fall back to considering all of them (serving
// degraded beats dropping on the floor). Pick returns -1 only for empty
// queueLens.
//
// Implementations are safe for concurrent use: the frontend routes from
// concurrent HTTP handlers.
type Balancer interface {
	Pick(queueLens []int, healthy []bool) int
	// Name returns the strategy's canonical flag value (rr, jsq, p2c).
	Name() string
}

// usable reports whether worker w may receive traffic under the health
// mask, treating an all-false or nil mask as all-healthy.
func usable(healthy []bool, w int, anyHealthy bool) bool {
	if healthy == nil || !anyHealthy {
		return true
	}
	return healthy[w]
}

// anyTrue reports whether at least one worker is marked healthy.
func anyTrue(healthy []bool) bool {
	for _, h := range healthy {
		if h {
			return true
		}
	}
	return false
}

// RoundRobin cycles through workers in order, skipping unhealthy ones. It
// is the paper's default balancer (§3.2.1): every K-th arrival lands on the
// same worker, which is exactly the arrival split the round-robin MDP
// assumes.
type RoundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns a round-robin balancer starting at worker 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name returns "rr".
func (*RoundRobin) Name() string { return "rr" }

// Pick returns the next worker in rotation, advancing past unhealthy ones.
// Skipped rotation slots are consumed, so the healthy workers keep an even
// share of arrivals whatever the mask looks like.
func (b *RoundRobin) Pick(queueLens []int, healthy []bool) int {
	k := len(queueLens)
	if k == 0 {
		return -1
	}
	any := anyTrue(healthy)
	for i := 0; i < k; i++ {
		w := int((b.next.Add(1) - 1) % uint64(k))
		if usable(healthy, w, any) {
			return w
		}
	}
	return int((b.next.Add(1) - 1) % uint64(k))
}

// JoinShortestQueue routes every arrival to the healthy worker with the
// fewest queued queries (Appendix I), breaking ties by lowest index — the
// same deterministic rule the simulator's original SQF loop applied, so
// sim results stay reproducible.
type JoinShortestQueue struct{}

// NewJoinShortestQueue returns a JSQ balancer.
func NewJoinShortestQueue() *JoinShortestQueue { return &JoinShortestQueue{} }

// Name returns "jsq".
func (*JoinShortestQueue) Name() string { return "jsq" }

// Pick returns the healthy worker with the shortest queue.
func (*JoinShortestQueue) Pick(queueLens []int, healthy []bool) int {
	k := len(queueLens)
	if k == 0 {
		return -1
	}
	any := anyTrue(healthy)
	best := -1
	for w := 0; w < k; w++ {
		if !usable(healthy, w, any) {
			continue
		}
		if best < 0 || queueLens[w] < queueLens[best] {
			best = w
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// PowerOfTwoChoices samples two distinct healthy workers uniformly at
// random and routes to the one with the shorter queue (first sample wins
// ties). It achieves most of JSQ's doubly-exponential queue-tail benefit
// at O(1) cost per arrival, which matters once the cluster is large enough
// that the JSQ scan shows up in the routing hot path.
type PowerOfTwoChoices struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewPowerOfTwoChoices returns a P2C balancer with a seeded RNG so runs
// are reproducible.
func NewPowerOfTwoChoices(seed int64) *PowerOfTwoChoices {
	return &PowerOfTwoChoices{rng: rand.New(rand.NewSource(seed))}
}

// Name returns "p2c".
func (*PowerOfTwoChoices) Name() string { return "p2c" }

// Pick samples two healthy workers and returns the shorter-queued one.
func (b *PowerOfTwoChoices) Pick(queueLens []int, healthy []bool) int {
	k := len(queueLens)
	if k == 0 {
		return -1
	}
	any := anyTrue(healthy)
	// Collect candidates; small k keeps this cheap, and the benchmark
	// shows the two rng draws dominate.
	b.mu.Lock()
	defer b.mu.Unlock()
	first, second := -1, -1
	cand := 0
	for w := 0; w < k; w++ {
		if !usable(healthy, w, any) {
			continue
		}
		cand++
		// Reservoir-style: choose two distinct uniform candidates in one
		// pass without allocating the candidate list.
		switch {
		case cand == 1:
			first = w
		case cand == 2:
			second = w
			if b.rng.Intn(2) == 1 {
				first, second = second, first
			}
		default:
			j := b.rng.Intn(cand)
			if j == 0 {
				first = w
			} else if j == 1 {
				second = w
			}
		}
	}
	if first < 0 {
		return 0
	}
	if second < 0 {
		return first
	}
	if queueLens[second] < queueLens[first] {
		return second
	}
	return first
}

// Strategies lists the canonical -lb flag values.
func Strategies() []string { return []string{"rr", "jsq", "p2c"} }

// New builds a balancer from a -lb flag value. Accepted spellings:
// "rr"/"round-robin", "jsq"/"shortest-queue", "p2c"/"power-of-two". The
// seed only affects p2c.
func New(strategy string, seed int64) (Balancer, error) {
	switch strategy {
	case "", "rr", "round-robin", "roundrobin":
		return NewRoundRobin(), nil
	case "jsq", "shortest-queue", "sqf":
		return NewJoinShortestQueue(), nil
	case "p2c", "power-of-two", "poweroftwo":
		return NewPowerOfTwoChoices(seed), nil
	}
	return nil, fmt.Errorf("lb: unknown strategy %q (want rr, jsq, or p2c)", strategy)
}
