package telemetry

// Canonical metric names shared by the serve layer and the simulator, so a
// dashboard built against the prototype reads identically off a sim run
// (the §7.3.1 fidelity claim depends on comparing exactly these series).
const (
	// MetricQueries counts queries whose batch completed (served, whether
	// or not the deadline was met). Identical to /stats "served".
	MetricQueries = "ramsis_queries_total"
	// MetricViolations counts served queries that missed the SLO.
	MetricViolations = "ramsis_slo_violations_total"
	// MetricFailedDispatches counts queries whose batch reached no worker
	// even after failover (serve layer only).
	MetricFailedDispatches = "ramsis_failed_dispatches_total"
	// MetricDecisions counts MS&S decisions (batches dispatched).
	MetricDecisions = "ramsis_decisions_total"
	// MetricSatAccuracySum accumulates the profiled accuracy over queries
	// that met their deadline; divided by (queries - violations) it yields
	// the paper's accuracy-per-satisfied-query.
	MetricSatAccuracySum = "ramsis_satisfied_accuracy_sum"
	// MetricStageSeconds is the per-stage latency histogram, labeled
	// stage=<enqueue|pick|dispatch|batch_wait|inference|respond>.
	MetricStageSeconds = "ramsis_stage_seconds"
	// MetricLatencySeconds is the end-to-end response latency histogram in
	// modeled seconds.
	MetricLatencySeconds = "ramsis_query_latency_seconds"
	// MetricModelQueries counts queries served per model, labeled model=.
	MetricModelQueries = "ramsis_model_queries_total"
	// MetricWorkerHealthy is the per-worker health mark (1 healthy, 0
	// unhealthy), labeled worker=<index>.
	MetricWorkerHealthy = "ramsis_worker_healthy"
	// MetricWorkerDispatches counts /infer POSTs attempted per worker,
	// labeled worker=<index>.
	MetricWorkerDispatches = "ramsis_worker_dispatches_total"
	// MetricPickSeconds is the balancer pick-latency histogram, labeled
	// balancer=<rr|jsq|p2c>.
	MetricPickSeconds = "ramsis_lb_pick_seconds"
	// MetricHealthTransitions counts health-mark flips, labeled
	// to=<healthy|unhealthy>.
	MetricHealthTransitions = "ramsis_health_transitions_total"
	// MetricInferences counts inference batches executed on a worker
	// server, labeled model=.
	MetricInferences = "ramsis_worker_inferences_total"
	// MetricInferenceSeconds is the worker-side realized inference latency
	// histogram in modeled seconds.
	MetricInferenceSeconds = "ramsis_worker_inference_seconds"
	// MetricBatchSize is the dispatched batch-size histogram.
	MetricBatchSize = "ramsis_batch_size"

	// MetricAdaptResolves counts background MDP re-solves triggered by rate
	// drift (cache hits do not solve and are not counted here).
	MetricAdaptResolves = "ramsis_adapt_resolves_total"
	// MetricAdaptResolveErrors counts re-solves that failed; the previous
	// policy set stays active.
	MetricAdaptResolveErrors = "ramsis_adapt_resolve_errors_total"
	// MetricAdaptCacheHits counts drift events served from the LRU policy
	// cache (return to a previously solved rate bucket).
	MetricAdaptCacheHits = "ramsis_adapt_cache_hits_total"
	// MetricAdaptCacheMisses counts drift events that had to solve.
	MetricAdaptCacheMisses = "ramsis_adapt_cache_misses_total"
	// MetricAdaptSwaps counts policy-set hot-swaps published to the
	// dispatch path.
	MetricAdaptSwaps = "ramsis_adapt_swaps_total"
	// MetricAdaptSwapSeconds is the drift-to-swap latency histogram in wall
	// seconds: how long dispatch ran on the stale policy after drift was
	// confirmed (≈ solve time on a miss, ≈ 0 on a cache hit).
	MetricAdaptSwapSeconds = "ramsis_adapt_swap_seconds"
	// MetricAdaptRateBucket is the rate bucket (QPS) of the currently
	// active policy.
	MetricAdaptRateBucket = "ramsis_adapt_rate_bucket"
	// MetricAdaptWarmStarts counts re-solves warm-started from a cached
	// neighboring bucket's converged value vector instead of zeros.
	MetricAdaptWarmStarts = "ramsis_adapt_warm_starts_total"
	// MetricAdaptResolveIterations is the solver iteration count of the most
	// recent successful re-solve — warm starts drive it down, which is what
	// shrinks the drift-to-swap histogram.
	MetricAdaptResolveIterations = "ramsis_adapt_resolve_iterations"

	// MetricAdmitAdmitted counts queries the admission controller let
	// through (only incremented when an admitter is configured).
	MetricAdmitAdmitted = "ramsis_admit_admitted_total"
	// MetricAdmitShed counts queries rejected at arrival, labeled
	// policy=<deadline|cap>. Shed queries are never enqueued: the serve
	// layer answers 429 with Retry-After, the simulator drops them from
	// the offered stream. They count against goodput, not the violation
	// rate.
	MetricAdmitShed = "ramsis_admit_shed_total"
	// MetricAdmitWaitSeconds is the histogram of queue-wait estimates the
	// admitter computed per arrival (admitted and shed alike) — the
	// overload early-warning signal.
	MetricAdmitWaitSeconds = "ramsis_admit_est_wait_seconds"
	// MetricAdmitDegradeLevel is the current degraded-mode level: 0 runs
	// the policy's own choice, level k forbids the k slowest models.
	MetricAdmitDegradeLevel = "ramsis_admit_degrade_level"
	// MetricAdmitDegradeTransitions counts degraded-mode level changes,
	// labeled dir=<up|down>.
	MetricAdmitDegradeTransitions = "ramsis_admit_degrade_transitions_total"
	// MetricAdmitDegradedDecisions counts dispatch decisions whose model
	// was clamped to a faster one by degraded mode.
	MetricAdmitDegradedDecisions = "ramsis_admit_degraded_decisions_total"
	// MetricAdmitRetries counts dispatch failover retries the retry
	// budget granted.
	MetricAdmitRetries = "ramsis_admit_failover_retries_total"
	// MetricAdmitRetriesDenied counts failover retries the budget refused
	// (the batch fails fast instead of amplifying an overload).
	MetricAdmitRetriesDenied = "ramsis_admit_failover_denied_total"

	// MetricTenantQueries counts queries whose batch completed, labeled
	// tenant=. Sim and serve record the same series, mirroring
	// MetricQueries.
	MetricTenantQueries = "ramsis_tenant_queries_total"
	// MetricTenantViolations counts served queries that missed the
	// tenant's own SLO, labeled tenant=.
	MetricTenantViolations = "ramsis_tenant_violations_total"
	// MetricTenantAdmitted counts queries weighted-fair admission let
	// through, labeled tenant=.
	MetricTenantAdmitted = "ramsis_tenant_admitted_total"
	// MetricTenantShed counts queries weighted-fair admission rejected,
	// labeled tenant=. An over-share tenant's excess lands here before any
	// compliant tenant is touched.
	MetricTenantShed = "ramsis_tenant_shed_total"
	// MetricTenantBorrowed counts admitted queries that exceeded their
	// tenant's fair-share bucket but were let in because the plane had
	// headroom (work-conserving borrowing), labeled tenant=.
	MetricTenantBorrowed = "ramsis_tenant_borrowed_total"
	// MetricTenantGoodput is the live per-tenant goodput fraction —
	// in-SLO responses over offered (admitted + shed) — labeled tenant=.
	MetricTenantGoodput = "ramsis_tenant_goodput"
	// MetricTenantRate is the tenant's monitored arrival rate in QPS,
	// labeled tenant=.
	MetricTenantRate = "ramsis_tenant_rate_qps"
	// MetricTenantDegradeLevel is the tenant's own degraded-mode level
	// (replacing the single global clamp), labeled tenant=.
	MetricTenantDegradeLevel = "ramsis_tenant_degrade_level"
	// MetricShardQueries counts queries routed to each frontend shard by
	// the sharding tier, labeled shard=.
	MetricShardQueries = "ramsis_shard_queries_total"
	// MetricShardDepth is each shard's outstanding work (queued plus
	// in-flight, summed over its workers), labeled shard= — the P2C
	// sharder's routing signal.
	MetricShardDepth = "ramsis_shard_depth"

	// MetricSLOAttainment is the windowed fraction of served queries that
	// met their SLO, labeled tenant= and window= (horizon in modeled
	// seconds). Sim and serve compute it from the same SLOTracker.
	MetricSLOAttainment = "ramsis_slo_attainment"
	// MetricSLOBurnRate is the windowed error-budget burn rate — the
	// violation fraction over the window divided by (1 - objective) — with
	// the same tenant= and window= labels. 1.0 consumes the budget exactly
	// as contracted.
	MetricSLOBurnRate = "ramsis_slo_burn_rate"
	// MetricDecisionError is the histogram of |predicted - realized|
	// dispatch latency per select decision in modeled seconds: how far the
	// profiled batch latency the policy committed to was from what the
	// worker measured.
	MetricDecisionError = "ramsis_decision_latency_error_seconds"

	// MetricLLMTTFT is the time-to-first-token histogram of the LLM
	// continuous-batching path in modeled seconds: arrival to the end of
	// the step that finished the query's prefill.
	MetricLLMTTFT = "ramsis_llm_ttft_seconds"
	// MetricLLMTBT is the time-between-tokens histogram in modeled
	// seconds: the gap between consecutive decode tokens of one query.
	MetricLLMTBT = "ramsis_llm_tbt_seconds"
	// MetricLLMStepSeconds is the engine step-latency histogram in modeled
	// seconds (the realized step_time(prefill, decode, kv) values).
	MetricLLMStepSeconds = "ramsis_llm_step_seconds"
	// MetricLLMSteps counts engine steps executed, labeled model=.
	MetricLLMSteps = "ramsis_llm_steps_total"
	// MetricLLMTokens counts tokens processed, labeled
	// kind=<prefill|decode>.
	MetricLLMTokens = "ramsis_llm_tokens_total"
	// MetricLLMKVUsage is the worker's current KV-cache usage fraction,
	// labeled worker=<index>.
	MetricLLMKVUsage = "ramsis_llm_kv_usage"
	// MetricLLMModelSwitches counts serving-model switches (each waits for
	// the running batch to drain before taking effect).
	MetricLLMModelSwitches = "ramsis_llm_model_switches_total"
)

// Span stage names, in the order a query traverses them: queued by the
// handler, routed by the balancer, waiting for the selector to batch it,
// dispatched over HTTP, executing inference, and finally responded to.
// StageShed is the terminal outcome of a query the admission controller
// rejected: its trace carries that single zero-length stage instead of the
// traversal, so shed queries stay visible in /debug/traces and trace
// exports without polluting the stage latency histograms.
// StageRoute is the gateway-side stage of a sharded deployment: tenant
// resolution, shard pick, and the in-process enqueue on the chosen shard.
// It appears only in gateway trace fragments, not in the frontend's
// six-stage traversal.
// StagePrefill and StageDecode are the LLM continuous-batching stages: a
// token-level query's trace carries batch_wait (arrival to admission into
// the running batch), prefill (admission to first token), and decode (first
// token to completion) instead of the scalar inference span.
const (
	StageEnqueue   = "enqueue"
	StagePick      = "pick"
	StageBatchWait = "batch_wait"
	StageDispatch  = "dispatch"
	StageInference = "inference"
	StageRespond   = "respond"
	StageShed      = "shed"
	StageRoute     = "route"
	StagePrefill   = "prefill"
	StageDecode    = "decode"
)

// Stages returns every span stage in traversal order.
func Stages() []string {
	return []string{StageEnqueue, StagePick, StageBatchWait, StageDispatch, StageInference, StageRespond}
}
