package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPoissonPMFSmallValues(t *testing.T) {
	// Hand-checked values for mu = 2.
	cases := []struct {
		k    int
		want float64
	}{
		{0, math.Exp(-2)},
		{1, 2 * math.Exp(-2)},
		{2, 2 * math.Exp(-2)},
		{3, 4.0 / 3.0 * math.Exp(-2)},
	}
	for _, c := range cases {
		got := PoissonPMF(c.k, 2)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("PoissonPMF(%d, 2) = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestPoissonPMFEdgeCases(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("PoissonPMF(0,0) = %g, want 1", got)
	}
	if got := PoissonPMF(3, 0); got != 0 {
		t.Errorf("PoissonPMF(3,0) = %g, want 0", got)
	}
	if got := PoissonPMF(-1, 5); got != 0 {
		t.Errorf("PoissonPMF(-1,5) = %g, want 0", got)
	}
	// Negative mean treated as zero.
	if got := PoissonPMF(0, -3); got != 1 {
		t.Errorf("PoissonPMF(0,-3) = %g, want 1", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, mu := range []float64{0.1, 1, 7.5, 40, 300} {
		sum := 0.0
		limit := int(mu + 20*math.Sqrt(mu) + 20)
		for k := 0; k <= limit; k++ {
			sum += PoissonPMF(k, mu)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("sum of PoissonPMF over k for mu=%v = %g, want 1", mu, sum)
		}
	}
}

func TestPoissonCDFMatchesPMFSum(t *testing.T) {
	for _, mu := range []float64{0.5, 3, 25, 120} {
		sum := 0.0
		for k := 0; k <= 200; k++ {
			sum += PoissonPMF(k, mu)
			cdf := PoissonCDF(k, mu)
			if !almostEqual(sum, cdf, 1e-9) {
				t.Fatalf("mu=%v k=%d: pmf sum %g != cdf %g", mu, k, sum, cdf)
			}
		}
	}
}

func TestPoissonCDFMonotonic(t *testing.T) {
	f := func(rawMu float64, rawK uint8) bool {
		mu := math.Abs(rawMu)
		if mu > 1e6 || math.IsNaN(mu) {
			return true
		}
		k := int(rawK % 100)
		a := PoissonCDF(k, mu)
		b := PoissonCDF(k+1, mu)
		return b+1e-12 >= a && a >= -1e-12 && b <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonTailComplementsCDF(t *testing.T) {
	for _, mu := range []float64{0.2, 4, 60} {
		for k := 0; k < 50; k++ {
			tail := PoissonTail(k, mu)
			cdf := PoissonCDF(k-1, mu)
			if !almostEqual(tail+cdf, 1, 1e-9) {
				t.Fatalf("mu=%v k=%d: tail %g + cdf %g != 1", mu, k, tail, cdf)
			}
		}
	}
}

func TestPoissonArrivalInterface(t *testing.T) {
	var a Arrival = NewPoisson(100)
	if a.Rate() != 100 {
		t.Fatalf("Rate = %v, want 100", a.Rate())
	}
	// PF over an interval of 10ms with rate 100 has mean 1.
	if got, want := a.PF(0, 0.01), math.Exp(-1); !almostEqual(got, want, 1e-12) {
		t.Errorf("PF(0, 0.01) = %g, want %g", got, want)
	}
	if got := a.PF(0, -1); got != 1 {
		t.Errorf("PF(0, -1) = %g, want 1 (negative t treated as 0)", got)
	}
}

func TestNewPoissonPanicsOnBadRate(t *testing.T) {
	for _, bad := range []float64{0, -5, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPoisson(%v) did not panic", bad)
				}
			}()
			NewPoisson(bad)
		}()
	}
}

func TestErlangCDFProperties(t *testing.T) {
	if got := ErlangCDF(0, 5, 1); got != 1 {
		t.Errorf("ErlangCDF(0,...) = %g, want 1", got)
	}
	if got := ErlangCDF(3, 5, 0); got != 0 {
		t.Errorf("ErlangCDF(3,5,0) = %g, want 0", got)
	}
	// Erlang(1, rate) is exponential.
	for _, x := range []float64{0.1, 0.5, 2} {
		want := 1 - math.Exp(-5*x)
		if got := ErlangCDF(1, 5, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("ErlangCDF(1,5,%v) = %g, want %g", x, got, want)
		}
	}
	// CDF decreasing in shape for fixed t (more stages take longer).
	for shape := 1; shape < 20; shape++ {
		a := ErlangCDF(shape, 10, 1)
		b := ErlangCDF(shape+1, 10, 1)
		if b > a+1e-12 {
			t.Fatalf("ErlangCDF not decreasing in shape at %d: %g -> %g", shape, a, b)
		}
	}
}

func TestErlangPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integration of the pdf should match the CDF.
	const shape, rate = 4, 20.0
	const upper = 1.0
	const n = 200000
	h := upper / n
	sum := 0.0
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * ErlangPDF(shape, rate, float64(i)*h)
	}
	got := sum * h
	want := ErlangCDF(shape, rate, upper)
	if !almostEqual(got, want, 1e-6) {
		t.Errorf("integral of pdf = %g, want cdf %g", got, want)
	}
}

func TestGammaPFShapeOneIsPoisson(t *testing.T) {
	g := NewGamma(50, 1)
	p := NewPoisson(50)
	for k := 0; k < 20; k++ {
		for _, tt := range []float64{0.01, 0.1, 0.5} {
			if got, want := g.PF(k, tt), p.PF(k, tt); !almostEqual(got, want, 1e-9) {
				t.Fatalf("Gamma(shape=1).PF(%d,%v) = %g, want Poisson %g", k, tt, got, want)
			}
		}
	}
}

func TestGammaPFSumsToOne(t *testing.T) {
	for _, shape := range []int{1, 2, 4} {
		g := NewGamma(100, shape)
		for _, tt := range []float64{0.01, 0.1, 1} {
			sum := 0.0
			for k := 0; k < 400; k++ {
				sum += g.PF(k, tt)
			}
			if !almostEqual(sum, 1, 1e-8) {
				t.Errorf("Gamma(shape=%d).PF sum at t=%v = %g, want 1", shape, tt, sum)
			}
		}
	}
}

func TestGammaCDFConsistentWithPF(t *testing.T) {
	g := NewGamma(200, 3)
	for _, tt := range []float64{0.005, 0.05} {
		sum := 0.0
		for k := 0; k < 60; k++ {
			sum += g.PF(k, tt)
			if got := g.CDF(k, tt); !almostEqual(got, sum, 1e-9) {
				t.Fatalf("Gamma CDF(%d, %v) = %g, want pmf sum %g", k, tt, got, sum)
			}
		}
	}
}

func TestPoissonSamplerMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPoisson(1000)
	const n = 200000
	total := 0.0
	for i := 0; i < n; i++ {
		total += p.NextInterarrival(rng)
	}
	gotRate := n / total
	if math.Abs(gotRate-1000) > 20 {
		t.Errorf("sampled rate = %g, want ~1000", gotRate)
	}
}

func TestGammaSamplerMeanRateAndVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGamma(500, 4)
	const n = 200000
	xs := make([]float64, n)
	total := 0.0
	for i := range xs {
		xs[i] = g.NextInterarrival(rng)
		total += xs[i]
	}
	mean := total / n
	if math.Abs(1/mean-500) > 15 {
		t.Errorf("sampled rate = %g, want ~500", 1/mean)
	}
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	variance := varSum / n
	// Erlang(4, 2000): variance = 4 / 2000^2.
	want := 4.0 / (2000 * 2000)
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("sampled variance = %g, want ~%g", variance, want)
	}
}

func TestTruncatedNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := TruncatedNormal(rng, 0.01, 0.01, 0.001)
		if v < 0.001 {
			t.Fatalf("TruncatedNormal returned %g below floor", v)
		}
	}
	if got := TruncatedNormal(rng, 0.05, 0, 0.1); got != 0.1 {
		t.Errorf("zero-stddev below floor = %g, want 0.1", got)
	}
	if got := TruncatedNormal(rng, 0.5, 0, 0.1); got != 0.5 {
		t.Errorf("zero-stddev above floor = %g, want 0.5", got)
	}
}

func TestIndependentIncrementsFactorization(t *testing.T) {
	// For a Poisson process, P[kA in TA] * P[kB in TB] must equal the joint
	// computed over disjoint intervals — sanity for the §4.4.2 property used
	// to build transition probabilities.
	p := NewPoisson(300)
	joint := p.PF(2, 0.01) * p.PF(3, 0.02)
	// Equivalent: total 5 arrivals in 0.03 with a Binomial split.
	total := p.PF(5, 0.03)
	binom := 0.0
	// C(5,2) (1/3)^2 (2/3)^3
	binom = 10 * math.Pow(1.0/3, 2) * math.Pow(2.0/3, 3)
	if !almostEqual(joint, total*binom, 1e-12) {
		t.Errorf("independent increments factorization broken: %g vs %g", joint, total*binom)
	}
}

func TestOnOffSamplerMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	o := NewOnOff(1000, 3, 0.2, 0.8)
	const n = 300000
	total := 0.0
	for i := 0; i < n; i++ {
		total += o.NextInterarrival(rng)
	}
	rate := n / total
	if math.Abs(rate-1000)/1000 > 0.03 {
		t.Errorf("OnOff mean rate = %v, want ~1000", rate)
	}
}

func TestOnOffBurstierThanPoisson(t *testing.T) {
	// Count-variance test: per-100ms window counts should be overdispersed
	// relative to Poisson (variance > mean).
	rng := rand.New(rand.NewSource(17))
	o := NewOnOff(1000, 3, 0.2, 0.8)
	const windows = 4000
	const win = 0.1
	counts := make([]float64, windows)
	tNow, w := 0.0, 0
	for w < windows {
		tNow += o.NextInterarrival(rng)
		idx := int(tNow / win)
		if idx >= windows {
			break
		}
		counts[idx]++
		w = idx
	}
	mean, variance := meanVar(counts)
	if variance < 1.5*mean {
		t.Errorf("OnOff window counts not overdispersed: mean %v variance %v", mean, variance)
	}
}

func meanVar(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, v / float64(len(xs))
}

func TestOnOffValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewOnOff(0, 2, 1, 1) },
		func() { NewOnOff(100, 1, 1, 1) },
		func() { NewOnOff(100, 10, 1, 1) }, // burst exceeds the budget
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
