package experiments

import (
	"ramsis/internal/core"
	"ramsis/internal/profile"
	"ramsis/internal/trace"
)

// Fig10 reproduces §C: impact of the time discretization. RAMSIS runs with
// FLD D in {2, 10, 100} and with MD at 60 workers (image, 150 ms SLO) under
// constant loads. With large enough D, FLD matches MD; small D is
// conservative and loses accuracy.
func (h *Harness) Fig10() Series {
	const slo, workers = 0.150, 60
	models := profile.ImageSet()
	loads := loadRange(800, 3200, 800)
	dur := 15.0
	switch h.scale() {
	case scaleFull:
		loads = loadRange(400, 3200, 400)
		dur = 30.0
	case scaleQuick:
		loads = []float64{1600}
		dur = 8.0
	}
	variants := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"FLD D=2", func(c *core.Config) { c.Disc = core.FixedLength; c.D = 2 }},
		{"FLD D=10", func(c *core.Config) { c.Disc = core.FixedLength; c.D = 10 }},
		{"FLD D=100", func(c *core.Config) { c.Disc = core.FixedLength; c.D = 100 }},
		{"MD", func(c *core.Config) { c.Disc = core.ModelBased }},
	}
	series := Series{}
	h.printf("Fig. 10 (§C): time discretization (image, SLO 150 ms, %d workers)\n", workers)
	h.printf("%10s  %10s %10s %10s %10s\n", "load(QPS)", "FLD D=2", "FLD D=10", "FLD D=100", "MD")
	for _, load := range loads {
		tr := trace.Constant(load, dur)
		row := map[string]float64{}
		for _, v := range variants {
			met := h.run(runSpec{models: models, slo: slo, workers: workers,
				method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load},
				variant: v.label, mutate: v.mut})
			series.add(Point{X: load, Method: v.label,
				Accuracy: met.AccuracyPerSatisfiedQuery(), Violation: met.ViolationRate()})
			row[v.label] = met.AccuracyPerSatisfiedQuery()
		}
		h.printf("%10.0f  %10.4f %10.4f %10.4f %10.4f\n", load,
			row["FLD D=2"], row["FLD D=10"], row["FLD D=100"], row["MD"])
	}
	h.printf("\n")
	h.plotSeries("Fig. 10: discretization (accuracy vs load)", series)
	h.saveResult("fig10", series)
	return series
}

// Fig11 reproduces §D: maximal vs variable batching. Variable batching's
// action space is far larger (Table 2) but selects the maximal batch in
// ~80% of decisions, so achieved accuracy is nearly identical. Run at 20
// workers to keep variable-batching policy generation tractable.
func (h *Harness) Fig11() Series {
	const slo, workers = 0.150, 20
	models := profile.ImageSet()
	loads := loadRange(300, 1100, 400)
	dur := 15.0
	switch h.scale() {
	case scaleFull:
		loads = loadRange(100, 1100, 200)
		dur = 30.0
	case scaleQuick:
		loads = []float64{300, 700}
		dur = 8.0
	}
	variants := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"max", func(c *core.Config) { c.Batching = core.MaximalBatching; c.D = 50 }},
		{"variable", func(c *core.Config) { c.Batching = core.VariableBatching; c.D = 50 }},
	}
	series := Series{}
	h.printf("Fig. 11 (§D): maximal vs variable batching (image, SLO 150 ms, %d workers)\n", workers)
	h.printf("%10s  %10s %10s %16s\n", "load(QPS)", "max", "variable", "var b=n share")
	var maxBatchDecisions, totalDecisions int
	for _, load := range loads {
		tr := trace.Constant(load, dur)
		row := map[string]float64{}
		share := 0.0
		for _, v := range variants {
			met := h.run(runSpec{models: models, slo: slo, workers: workers,
				method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load},
				variant: "batch-" + v.label, mutate: v.mut, record: v.label == "variable"})
			series.add(Point{X: load, Method: v.label,
				Accuracy: met.AccuracyPerSatisfiedQuery(), Violation: met.ViolationRate()})
			row[v.label] = met.AccuracyPerSatisfiedQuery()
			if v.label == "variable" {
				maxed := 0
				for _, d := range met.DecisionLog {
					if d.Batch >= d.QueueLen || d.Batch >= profile.MaxSupportedBatch {
						maxed++
					}
				}
				if len(met.DecisionLog) > 0 {
					share = float64(maxed) / float64(len(met.DecisionLog))
				}
				maxBatchDecisions += maxed
				totalDecisions += len(met.DecisionLog)
			}
		}
		h.printf("%10.0f  %10.4f %10.4f %15.1f%%\n", load, row["max"], row["variable"], share*100)
	}
	if totalDecisions > 0 {
		h.printf("variable batching chose the maximal batch in %.1f%% of decisions (paper: ~80%%)\n",
			100*float64(maxBatchDecisions)/float64(totalDecisions))
	}
	h.printf("\n")
	h.plotSeries("Fig. 11: batching (accuracy vs load)", series)
	h.saveResult("fig11", series)
	return series
}

// Fig12 reproduces §E: ablating the model set to three models (the fastest,
// a medium, and a long-latency model from Fig. 3). RAMSIS keeps most of its
// accuracy with only three models and stays above Jellyfish+ throughout.
func (h *Harness) Fig12() Series {
	const slo, workers = 0.150, 60
	full := profile.ImageSet()
	three := profile.AblationImageSet()
	loads := loadRange(800, 3200, 800)
	dur := 15.0
	switch h.scale() {
	case scaleFull:
		loads = loadRange(400, 3200, 400)
		dur = 30.0
	case scaleQuick:
		loads = []float64{1600, 3200}
		dur = 8.0
	}
	series := Series{}
	h.printf("Fig. 12 (§E): 3-model ablation (image, SLO 150 ms, %d workers)\n", workers)
	h.printf("%10s  %12s %12s %12s %12s\n", "load(QPS)", "RAMSIS", "JF+", "RAMSIS-3m", "JF+-3m")
	for _, load := range loads {
		tr := trace.Constant(load, dur)
		row := map[string]float64{}
		for _, sc := range []struct {
			label  string
			models profile.Set
			method string
		}{
			{"RAMSIS", full, MethodRAMSIS},
			{"JF+", full, MethodJF},
			{"RAMSIS-3m", three, MethodRAMSIS},
			{"JF+-3m", three, MethodJF},
		} {
			met := h.run(runSpec{models: sc.models, slo: slo, workers: workers,
				method: sc.method, tr: tr, oracle: true, ramsisLoads: []float64{load}})
			series.add(Point{X: load, Method: sc.label,
				Accuracy: met.AccuracyPerSatisfiedQuery(), Violation: met.ViolationRate()})
			row[sc.label] = met.AccuracyPerSatisfiedQuery()
		}
		h.printf("%10.0f  %12.4f %12.4f %12.4f %12.4f\n", load,
			row["RAMSIS"], row["JF+"], row["RAMSIS-3m"], row["JF+-3m"])
	}
	h.printf("\n")
	h.plotSeries("Fig. 12: model ablation (accuracy vs load)", series)
	h.saveResult("fig12", series)
	return series
}

// INFaaS reproduces §H: the INFaaS adaptation sweeps accuracy targets equal
// to each model's accuracy; because its objective minimizes latency (and
// thus accuracy) subject to the target, even its best target never beats
// RAMSIS.
func (h *Harness) INFaaS() Series {
	const slo, workers = 0.150, 60
	models := profile.ImageSet()
	loads := loadRange(800, 3200, 800)
	dur := 15.0
	switch h.scale() {
	case scaleFull:
		loads = loadRange(400, 3200, 400)
		dur = 30.0
	case scaleQuick:
		loads = []float64{1600}
		dur = 8.0
	}
	series := Series{}
	h.printf("§H: INFaaS-adapted accuracy-target sweep (image, SLO 150 ms, %d workers)\n", workers)
	h.printf("%10s  %14s %14s %10s\n", "load(QPS)", "INFaaS(best)", "INFaaS(worst)", "RAMSIS")
	for _, load := range loads {
		tr := trace.Constant(load, dur)
		bestAcc, worstAcc := 0.0, 1.0
		for _, p := range models.ParetoFront().Profiles {
			met := h.run(runSpec{models: models, slo: slo, workers: workers,
				method: MethodINFaaS, tr: tr, oracle: true, accTarget: p.Accuracy})
			if met.ViolationRate() < 0.05 {
				acc := met.AccuracyPerSatisfiedQuery()
				if acc > bestAcc {
					bestAcc = acc
				}
				if acc < worstAcc {
					worstAcc = acc
				}
			}
		}
		ram := h.run(runSpec{models: models, slo: slo, workers: workers,
			method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load}})
		series.add(Point{X: load, Method: "INFaaS(best)", Accuracy: bestAcc})
		series.add(Point{X: load, Method: MethodRAMSIS,
			Accuracy: ram.AccuracyPerSatisfiedQuery(), Violation: ram.ViolationRate()})
		h.printf("%10.0f  %14.4f %14.4f %10.4f\n", load, bestAcc, worstAcc, ram.AccuracyPerSatisfiedQuery())
	}
	h.printf("\n")
	h.plotSeries("Appendix H: INFaaS sweep (accuracy vs load)", series)
	h.saveResult("infaas", series)
	return series
}

// Greedy reproduces the §8 argument: selectors that greedily maximize
// accuracy for the *currently queued* queries (MDInference/ALERT style)
// ignore future arrivals, so under stochastic inter-arrival patterns they
// pay for their optimism in SLO violations that RAMSIS avoids.
func (h *Harness) Greedy() Series {
	const slo, workers = 0.150, 20
	models := profile.ImageSet()
	loads := []float64{300, 600, 900}
	dur := 15.0
	switch h.scale() {
	case scaleFull:
		loads = loadRange(150, 1050, 150)
		dur = 30.0
	case scaleQuick:
		loads = []float64{300, 900}
		dur = 8.0
	}
	series := Series{}
	h.printf("§8 greedy selection vs RAMSIS (image, SLO 150 ms, %d workers)\n", workers)
	h.printf("%10s  %12s %12s %14s %14s\n", "load(QPS)", "RAMSIS acc", "Greedy acc", "RAMSIS viol", "Greedy viol")
	for _, load := range loads {
		tr := trace.Constant(load, dur)
		ram := h.run(runSpec{models: models, slo: slo, workers: workers,
			method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load}})
		grd := h.run(runSpec{models: models, slo: slo, workers: workers,
			method: MethodGreedy, tr: tr, oracle: true})
		series.add(Point{X: load, Method: MethodRAMSIS,
			Accuracy: ram.AccuracyPerSatisfiedQuery(), Violation: ram.ViolationRate()})
		series.add(Point{X: load, Method: MethodGreedy,
			Accuracy: grd.AccuracyPerSatisfiedQuery(), Violation: grd.ViolationRate()})
		h.printf("%10.0f  %12.4f %12.4f %14.5f %14.5f\n", load,
			ram.AccuracyPerSatisfiedQuery(), grd.AccuracyPerSatisfiedQuery(),
			ram.ViolationRate(), grd.ViolationRate())
	}
	h.printf("\n")
	h.saveResult("greedy", series)
	return series
}

// SQF reproduces §I: RAMSIS with shortest-queue-first balancing (policies
// generated from the Appendix I conditional-Poisson transitions, online
// routing to the shortest queue) against the default round-robin stack.
// Loads stay sub-critical: the appendix's λ_w(n) = ρ^K·μ approximation
// (from [18]) assumes light-to-moderate utilization and turns optimistic
// near saturation, which EXPERIMENTS.md documents.
func (h *Harness) SQF() Series {
	const slo, workers = 0.150, 8
	models := profile.ImageSet()
	loads := []float64{100, 200, 300}
	dur := 15.0
	switch h.scale() {
	case scaleFull:
		loads = loadRange(50, 350, 50)
		dur = 30.0
	case scaleQuick:
		loads = []float64{150, 300}
		dur = 8.0
	}
	series := Series{}
	h.printf("§I: round-robin vs shortest-queue-first RAMSIS (image, SLO 150 ms, %d workers)\n", workers)
	h.printf("%10s  %10s %10s %12s %12s\n", "load(QPS)", "RR acc", "SQF acc", "RR viol", "SQF viol")
	for _, load := range loads {
		tr := trace.Constant(load, dur)
		rr := h.run(runSpec{models: models, slo: slo, workers: workers,
			method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load}})
		sqf := h.run(runSpec{models: models, slo: slo, workers: workers,
			method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load},
			variant: "sqf", mutate: func(c *core.Config) { c.Balancing = core.ShortestQueueFirst },
			balance: core.ShortestQueueFirst})
		series.add(Point{X: load, Method: "RR", Accuracy: rr.AccuracyPerSatisfiedQuery(), Violation: rr.ViolationRate()})
		series.add(Point{X: load, Method: "SQF", Accuracy: sqf.AccuracyPerSatisfiedQuery(), Violation: sqf.ViolationRate()})
		h.printf("%10.0f  %10.4f %10.4f %12.5f %12.5f\n", load,
			rr.AccuracyPerSatisfiedQuery(), sqf.AccuracyPerSatisfiedQuery(),
			rr.ViolationRate(), sqf.ViolationRate())
	}
	h.printf("\n")
	h.plotSeries("Appendix I: balancing (accuracy vs load)", series)
	h.saveResult("sqf", series)
	return series
}
