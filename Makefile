GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The lb and serve packages are the concurrency-heavy ones (balancers,
# health tracker, per-worker queue locks, HTTP dispatch); run them under
# the race detector. Their tests scale sleeps by TimeScale, so the race
# pass stays within a CI budget.
race:
	$(GO) test -race ./internal/lb/ ./internal/serve/

# Tier-1 verify path (see ROADMAP.md).
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
