package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ramsis/internal/admit"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// TestFrontendShedsUnderHammer hammers /query far past capacity (run under
// -race via `make race`): a cap admitter must keep the backlog bounded,
// answer the excess 429 with a Retry-After hint, and never drop an
// in-flight response — every request gets exactly one well-formed answer.
func TestFrontendShedsUnderHammer(t *testing.T) {
	const (
		workers   = 2
		slo       = 0.150
		timeScale = 20.0
		capLimit  = 16
		loops     = 64 // concurrent clients — must exceed the cap to shed
		perLoop   = 4  // sequential requests per client
	)
	models := profile.ImageSet()
	order := models.SpeedOrder()
	slow := models.Profiles[order[len(order)-1]].Name

	urls := startWorkers(t, workers, sim.Deterministic{}, timeScale)
	est := core.NewWaitEstimator(models, workers)
	f := &Frontend{
		Profiles:  models,
		SLO:       slo,
		TimeScale: timeScale,
		Workers:   urls,
		// Deliberately slow selection with maximal batching: the backlog
		// outruns the drain, so admission pressure is guaranteed.
		Select: func(_, _ float64, n int, _ float64) (string, int) { return slow, n },
		Admit:  admit.Cap{Limit: capLimit, Est: est},
		Degrade: admit.NewDegrader(admit.DegradeConfig{
			MaxLevel: len(order) - 1, Window: 0.05, EnterShedRate: 0.05,
		}),
		RetryBudget: admit.NewRetryBudget(4, 1),
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	var served, shed atomic.Int64
	var maxBacklog atomic.Int64
	var wg sync.WaitGroup
	for l := 0; l < loops; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perLoop; i++ {
				resp, err := http.Post(f.URL()+"/query", "application/json", strings.NewReader(`{}`))
				if err != nil {
					t.Errorf("request failed: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var qr QueryResponse
					if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
						t.Errorf("malformed 200 body: %v", err)
					} else if qr.Model == "" || qr.Batch < 1 {
						t.Errorf("malformed response %+v", qr)
					}
					served.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After header")
					}
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Concurrent scrapes watch the backlog while the hammer runs: /stats
	// must answer throughout, and the admitted backlog must stay near the
	// cap (admission check and enqueue are not one atomic step, so up to
	// one in-flight request per client can overshoot).
	stop := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := f.Stats()
			sum := 0
			for _, q := range st.QueueLengths {
				sum += q
			}
			if int64(sum) > maxBacklog.Load() {
				maxBacklog.Store(int64(sum))
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrape.Wait()

	total := served.Load() + shed.Load()
	if total != loops*perLoop {
		t.Fatalf("answered %d of %d requests (served=%d shed=%d)",
			total, loops*perLoop, served.Load(), shed.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("cap admitter shed nothing while hammered past capacity")
	}
	if served.Load() == 0 {
		t.Fatal("everything was shed; admitter is not admitting")
	}
	if mb := maxBacklog.Load(); mb > capLimit+loops {
		t.Errorf("observed backlog %d exceeds cap %d plus client concurrency %d", mb, capLimit, loops)
	}

	// The frontend's own summary and exposition agree with the client's
	// count, and the admission series are visible on /metrics.
	st := f.Stats()
	if st.Shed != int(shed.Load()) {
		t.Errorf("stats shed %d != client-observed %d", st.Shed, shed.Load())
	}
	if st.Served != int(served.Load()) {
		t.Errorf("stats served %d != client-observed %d", st.Served, served.Load())
	}
	resp, err := http.Get(f.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`ramsis_admit_shed_total{policy="cap"}`,
		"ramsis_admit_admitted_total",
		"ramsis_admit_est_wait_seconds",
		"ramsis_admit_degrade_level",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestControllerDeadlineAdmissionRaisesGoodput is the serve-path half of
// the acceptance criterion: replaying arrivals at 3x the solved rate
// through the full HTTP stack, deadline admission must achieve strictly
// higher goodput than admitting everything.
func TestControllerDeadlineAdmissionRaisesGoodput(t *testing.T) {
	const workers, slo, solved, mult, dur, timeScale = 2, 0.150, 80.0, 3.0, 4.0, 25.0
	set := core.NewPolicySet(core.Config{
		Models: profile.ImageSet(), SLO: slo, Workers: workers,
		Arrival: dist.NewPoisson(solved), D: 50,
	}, nil)
	if err := set.GenerateLoads([]float64{solved}); err != nil {
		t.Fatal(err)
	}
	pinned := trace.Constant(solved, dur)
	arrivals := trace.PoissonArrivals(trace.Constant(mult*solved, dur), 5)

	run := func(a admit.Admitter) sim.Metrics {
		urls := startWorkers(t, workers, sim.Deterministic{}, timeScale)
		ctl := &Controller{
			Profiles:  profile.ImageSet(),
			SLO:       slo,
			TimeScale: timeScale,
			Workers:   urls,
			Select:    RAMSISSelector(set),
			Monitor:   monitor.Oracle{Trace: pinned},
			Admit:     a,
		}
		m, err := ctl.Run(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	base := run(nil)
	est := core.NewWaitEstimator(profile.ImageSet(), workers)
	shedding := run(admit.Deadline{SLO: slo, Margin: 1, Est: est})

	if base.Shed != 0 {
		t.Fatalf("baseline shed %d with no admitter", base.Shed)
	}
	if shedding.Shed == 0 {
		t.Fatal("deadline admitter shed nothing at 3x the solved rate")
	}
	if shedding.Offered() != len(arrivals) || base.Offered() != len(arrivals) {
		t.Fatalf("offered %d/%d, want %d", shedding.Offered(), base.Offered(), len(arrivals))
	}
	gb, gs := base.GoodputRate(), shedding.GoodputRate()
	if gs <= gb {
		t.Errorf("deadline goodput %.4f not above no-shed %.4f (shed rate %.3f)",
			gs, gb, shedding.ShedRate())
	}
	t.Logf("serve goodput no-shed=%.4f deadline=%.4f shed=%d/%d", gb, gs, shedding.Shed, len(arrivals))
}
