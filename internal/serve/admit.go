package serve

import (
	"ramsis/internal/admit"
	"ramsis/internal/profile"
	"ramsis/internal/telemetry"
)

// modelClamp maps degraded-mode levels onto the serve layer's by-name model
// selection: selectors return model names, but admit.ClampModel speaks
// profile indices, so the clamp keeps the speed order and a name->index map
// built once at startup.
type modelClamp struct {
	set   profile.Set
	order []int
	index map[string]int
}

func newModelClamp(set profile.Set) *modelClamp {
	m := &modelClamp{set: set, order: set.SpeedOrder(), index: map[string]int{}}
	for i, p := range set.Profiles {
		m.index[p.Name] = i
	}
	return m
}

// apply clamps one selection at the given degradation level, returning the
// model to run and whether the choice was degraded.
func (m *modelClamp) apply(level int, model string) (string, bool) {
	idx, ok := m.index[model]
	if !ok || level <= 0 {
		return model, false
	}
	clamped := admit.ClampModel(m.order, level, idx)
	if clamped == idx {
		return model, false
	}
	return m.set.Profiles[clamped].Name, true
}

// wireDegradeTelemetry publishes the degrader's level and transitions into
// the registry (the same series the simulator engine records), initializing
// the level gauge so /metrics shows it before the first transition.
func wireDegradeTelemetry(reg *telemetry.Registry, d *admit.Degrader) {
	reg.Gauge(telemetry.MetricAdmitDegradeLevel).Set(float64(d.Level()))
	d.OnChange = func(level int, up bool) {
		reg.Gauge(telemetry.MetricAdmitDegradeLevel).Set(float64(level))
		dir := "down"
		if up {
			dir = "up"
		}
		reg.Counter(telemetry.MetricAdmitDegradeTransitions, "dir", dir).Inc()
	}
}
