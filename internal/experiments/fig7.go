package experiments

import (
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// Fig7Point is one fidelity measurement: expectation vs simulation vs
// implementation at a (workers, load) cell.
type Fig7Point struct {
	Workers int
	Load    float64

	ExpAccuracy  float64
	SimAccuracy  float64
	ImplAccuracy float64

	ExpViolation  float64
	SimViolation  float64
	ImplViolation float64

	// Tail latency (seconds) from the engine's telemetry histogram: the
	// p99 against the SLO shows how close each variant runs to the edge.
	SimLatencyP99  float64
	ImplLatencyP99 float64
}

// Fig7 reproduces §7.3.1: RAMSIS's achieved accuracy and violation rate in
// theoretical expectation (§5.1), in the deterministic-latency simulator,
// and in the latency-variance "implementation" variant, for 30-second
// constant loads at 40, 60, and 80 workers (image task, 150 ms SLO).
//
// Substitution note: the paper's implementation column is the TorchServe
// prototype; ours is the same scheduler under stochastic inference latency
// (σ ≈ 10 ms as the paper profiles), the one property §7.3.1 identifies as
// the sim/implementation gap. The HTTP prototype in internal/serve
// validates the serving stack separately.
func (h *Harness) Fig7() []Fig7Point {
	models := profile.ImageSet()
	const slo = 0.150
	dur := 15.0
	workerSet := []int{40, 60, 80}
	loadsFor := func(workers int) []float64 {
		// Sweep up to just past each configuration's peak capacity so the
		// violation overestimation at saturation is visible.
		max := 600.0 * float64(workers) / 10
		return loadRange(max/4, max, max/4)
	}
	switch h.scale() {
	case scaleFull:
		dur = 30.0
	case scaleQuick:
		dur = 8.0
		workerSet = []int{60}
		loadsFor = func(workers int) []float64 {
			max := 600.0 * float64(workers) / 10
			return []float64{max / 2, max}
		}
	}
	var out []Fig7Point
	h.printf("Fig. 7: RAMSIS fidelity — expectation vs simulation vs implementation (image, SLO 150 ms)\n")
	h.printf("%8s %10s  %8s %8s %8s  %9s %9s %9s  %8s %8s\n", "#workers", "load(QPS)",
		"E[acc]", "sim acc", "impl acc", "E[viol]", "sim viol", "impl viol",
		"sim p99", "impl p99")
	// Each (workers, load) cell needs a deterministic-latency run and a
	// stochastic one; interleave them so runAll keeps cells adjacent.
	type cell struct {
		workers int
		load    float64
	}
	var cells []cell
	var specs []runSpec
	for _, workers := range workerSet {
		for _, load := range loadsFor(workers) {
			cells = append(cells, cell{workers, load})
			tr := trace.Constant(load, dur)
			specs = append(specs,
				runSpec{models: models, slo: slo, workers: workers,
					method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load}},
				runSpec{models: models, slo: slo, workers: workers,
					method: MethodRAMSIS, tr: tr, oracle: true, ramsisLoads: []float64{load},
					latency: sim.Stochastic{StdDev: 0.010}})
		}
	}
	mets := h.runAll(specs)
	for i, c := range cells {
		set := h.policySet(models, slo, c.workers, []float64{c.load}, "", nil)
		pol, err := set.PolicyFor(c.load)
		if err != nil {
			panic(err)
		}
		simM, implM := mets[2*i], mets[2*i+1]
		p := Fig7Point{
			Workers:        c.workers,
			Load:           c.load,
			ExpAccuracy:    pol.ExpectedAccuracy,
			SimAccuracy:    simM.AccuracyPerSatisfiedQuery(),
			ImplAccuracy:   implM.AccuracyPerSatisfiedQuery(),
			ExpViolation:   pol.ExpectedViolation,
			SimViolation:   simM.ViolationRate(),
			ImplViolation:  implM.ViolationRate(),
			SimLatencyP99:  simM.LatencyP99,
			ImplLatencyP99: implM.LatencyP99,
		}
		out = append(out, p)
		h.printf("%8d %10.0f  %8.4f %8.4f %8.4f  %9.5f %9.5f %9.5f  %6.1fms %6.1fms\n",
			p.Workers, p.Load, p.ExpAccuracy, p.SimAccuracy, p.ImplAccuracy,
			p.ExpViolation, p.SimViolation, p.ImplViolation,
			p.SimLatencyP99*1000, p.ImplLatencyP99*1000)
	}
	h.printf("\n")
	h.saveResult("fig7", out)
	return out
}
