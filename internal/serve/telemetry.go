package serve

import (
	"strconv"
	"sync"

	"ramsis/internal/lb"
	"ramsis/internal/telemetry"
)

// serveSeries caches the registry series both serving layers (Frontend and
// Controller) update on their dispatch paths, so the hot path never takes
// the registry's lookup lock. The same metric names are recorded by the
// simulator's engine, keeping sim and live runs directly comparable.
type serveSeries struct {
	queries    *telemetry.Counter
	violations *telemetry.Counter
	failed     *telemetry.Counter
	decisions  *telemetry.Counter
	satAcc     *telemetry.Counter
	latency    *telemetry.Histogram
	batchSize  *telemetry.Histogram
	stages     map[string]*telemetry.Histogram
	// Per-stage histograms cached as direct fields: the dispatch loop
	// observes all six stages per query, and six map lookups per query
	// are measurable at saturation.
	stEnqueue   *telemetry.Histogram
	stPick      *telemetry.Histogram
	stBatchWait *telemetry.Histogram
	stDispatch  *telemetry.Histogram
	stInference *telemetry.Histogram
	stRespond   *telemetry.Histogram
	// Admission-control series: admitted/shed decisions, the wait estimate
	// each decision was based on, degraded-mode clamps, and the failover
	// retry budget's grants and refusals.
	admitted      *telemetry.Counter
	degraded      *telemetry.Counter
	retries       *telemetry.Counter
	retriesDenied *telemetry.Counter
	estWait       *telemetry.Histogram
	// decisionErr is |predicted - realized| inference latency per select
	// decision — how honest the profiled latency the policy committed to
	// turned out to be.
	decisionErr *telemetry.Histogram
	// workerDispatch counts /infer POSTs per worker; it backs both the
	// exposition and StatsResponse.WorkerDispatches so they cannot drift.
	workerDispatch []*telemetry.Counter
	reg            *telemetry.Registry
	// modelCtr memoizes the per-model served-queries counters on first
	// use: the registry lookup builds a sorted label key per call, which
	// the per-batch model() hit made visible in the allocation profile.
	modelMu  sync.RWMutex
	modelCtr map[string]*telemetry.Counter
}

// newServeSeries builds the cache. offset shifts the worker label indices:
// shard i of a sharded plane passes its global worker offset so every
// worker keeps a distinct series in the shared registry (shard-local index
// w is exposed as worker offset+w).
func newServeSeries(reg *telemetry.Registry, workers, offset int) *serveSeries {
	s := &serveSeries{
		queries:    reg.Counter(telemetry.MetricQueries),
		violations: reg.Counter(telemetry.MetricViolations),
		failed:     reg.Counter(telemetry.MetricFailedDispatches),
		decisions:  reg.Counter(telemetry.MetricDecisions),
		satAcc:     reg.Counter(telemetry.MetricSatAccuracySum),
		latency:    reg.Histogram(telemetry.MetricLatencySeconds),
		batchSize:  reg.HistogramBuckets(telemetry.MetricBatchSize, telemetry.LinearBuckets(1, 1, 32)),
		stages:     map[string]*telemetry.Histogram{},

		admitted:      reg.Counter(telemetry.MetricAdmitAdmitted),
		degraded:      reg.Counter(telemetry.MetricAdmitDegradedDecisions),
		retries:       reg.Counter(telemetry.MetricAdmitRetries),
		retriesDenied: reg.Counter(telemetry.MetricAdmitRetriesDenied),
		estWait:       reg.Histogram(telemetry.MetricAdmitWaitSeconds),
		decisionErr:   reg.Histogram(telemetry.MetricDecisionError),

		reg:      reg,
		modelCtr: map[string]*telemetry.Counter{},
	}
	reg.Help(telemetry.MetricDecisionError, "Absolute predicted-vs-realized dispatch latency error per select decision, modeled seconds.")
	for _, st := range telemetry.Stages() {
		s.stages[st] = reg.Histogram(telemetry.MetricStageSeconds, "stage", st)
	}
	s.stEnqueue = s.stages[telemetry.StageEnqueue]
	s.stPick = s.stages[telemetry.StagePick]
	s.stBatchWait = s.stages[telemetry.StageBatchWait]
	s.stDispatch = s.stages[telemetry.StageDispatch]
	s.stInference = s.stages[telemetry.StageInference]
	s.stRespond = s.stages[telemetry.StageRespond]
	for w := 0; w < workers; w++ {
		s.workerDispatch = append(s.workerDispatch,
			reg.Counter(telemetry.MetricWorkerDispatches, "worker", strconv.Itoa(offset+w)))
	}
	reg.Help(telemetry.MetricQueries, "Queries whose batch completed (served).")
	reg.Help(telemetry.MetricViolations, "Served queries that missed the latency SLO.")
	reg.Help(telemetry.MetricStageSeconds, "Per-stage latency breakdown in modeled seconds.")
	reg.Help(telemetry.MetricLatencySeconds, "End-to-end response latency in modeled seconds.")
	reg.Help(telemetry.MetricWorkerHealthy, "Per-worker health mark (1 healthy, 0 unhealthy).")
	return s
}

// model returns the per-model served-queries counter, registering it on
// first use and answering from the memo after.
func (s *serveSeries) model(name string) *telemetry.Counter {
	s.modelMu.RLock()
	c, ok := s.modelCtr[name]
	s.modelMu.RUnlock()
	if ok {
		return c
	}
	c = s.reg.Counter(telemetry.MetricModelQueries, "model", name)
	s.modelMu.Lock()
	s.modelCtr[name] = c
	s.modelMu.Unlock()
	return c
}

// shed returns the shed counter for the given admission policy.
func (s *serveSeries) shed(policy string) *telemetry.Counter {
	return s.reg.Counter(telemetry.MetricAdmitShed, "policy", policy)
}

// registerHealthGauges exposes the tracker's live per-worker marks as
// ramsis_worker_healthy gauges; reading the tracker at exposition time
// keeps /metrics and /stats backed by the same source. offset shifts the
// worker labels like newServeSeries, so shards sharing a registry never
// collide on a gauge (a second GaugeFunc on the same label set would be
// silently dropped, leaving shard 1's workers reporting shard 0's health).
func registerHealthGauges(reg *telemetry.Registry, h *lb.HealthTracker, workers, offset int) {
	for w := 0; w < workers; w++ {
		w := w
		reg.GaugeFunc(telemetry.MetricWorkerHealthy, func() float64 {
			if h.IsHealthy(w) {
				return 1
			}
			return 0
		}, "worker", strconv.Itoa(offset+w))
	}
}
