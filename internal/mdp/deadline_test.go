package mdp

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestValueIterationDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMDP(rng, 200, 4, 8)
	_, err := ValueIteration(m, SolveOptions{
		Gamma:    0.999999,
		Tol:      1e-300, // unreachable: force the deadline path
		Deadline: time.Now().Add(5 * time.Millisecond),
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestValueIterationNoDeadlineByDefault(t *testing.T) {
	m := twoStateChain()
	if _, err := ValueIteration(m, SolveOptions{Gamma: 0.9}); err != nil {
		t.Fatalf("default solve failed: %v", err)
	}
}
