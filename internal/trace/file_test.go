package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestQPSFileRoundTrip(t *testing.T) {
	tr := Twitter()
	path := filepath.Join(t.TempDir(), "twitter.txt")
	if err := tr.SaveQPSFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadQPSFile(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.QPS) != len(tr.QPS) {
		t.Fatalf("loaded %d intervals, want %d", len(got.QPS), len(tr.QPS))
	}
	for i := range tr.QPS {
		if got.QPS[i] != tr.QPS[i] {
			t.Fatalf("interval %d: %v != %v", i, got.QPS[i], tr.QPS[i])
		}
	}
	if got.IntervalSec != 10 {
		t.Errorf("interval = %v", got.IntervalSec)
	}
}

func TestLoadQPSFileCommentsAndBlank(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.txt")
	content := "# twitter trace\n1617\n\n2000.5\n# done\n3905\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadQPSFile(path, 0) // 0 defaults to 10s intervals
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1617, 2000.5, 3905}
	if len(tr.QPS) != 3 {
		t.Fatalf("got %v", tr.QPS)
	}
	for i := range want {
		if tr.QPS[i] != want[i] {
			t.Fatalf("got %v, want %v", tr.QPS, want)
		}
	}
	if tr.IntervalSec != 10 {
		t.Errorf("default interval = %v, want 10", tr.IntervalSec)
	}
}

func TestLoadQPSFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadQPSFile(filepath.Join(dir, "missing.txt"), 10); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("100\nnot-a-number\n"), 0o644)
	if _, err := LoadQPSFile(bad, 10); err == nil {
		t.Error("malformed line accepted")
	}
	neg := filepath.Join(dir, "neg.txt")
	os.WriteFile(neg, []byte("-5\n"), 0o644)
	if _, err := LoadQPSFile(neg, 10); err == nil {
		t.Error("negative load accepted")
	}
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := LoadQPSFile(empty, 10); err == nil {
		t.Error("empty trace accepted")
	}
}
