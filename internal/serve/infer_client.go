package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/url"
	"strconv"
	"sync"
)

// This file is the shared /infer wire layer for both dispatch paths
// (Frontend and Controller) and the worker's handler: hand-rolled JSON
// encode/decode into reusable scratch buffers, and a minimal HTTP/1.1
// client over owned persistent connections. A dispatch loop is strictly
// serial — write one request, read its response, repeat — so net/http's
// general client machinery (connection-pool lookup, per-request context,
// header maps, reader/writer goroutines) bought nothing here and cost
// ~15 heap allocations plus four goroutine handoffs per POST. One owned
// connection per (loop, worker) with scratch-buffer serialization brings
// the client side of a dispatch to zero steady-state allocations.
//
// Draining matters as much as the allocation savings: a response body
// left unread forfeits the keep-alive connection, so every such response
// used to cost a fresh TCP connection on the next dispatch. The exchange
// below always reads the full framed body, whatever the status.

// postScratch is per-dispatch-loop scratch for the /infer POST path: the
// encoded request body, the serialized wire bytes, the response read
// buffer, and the loop's persistent worker connections. Each dispatching
// goroutine owns one; nothing here is safe for concurrent use.
type postScratch struct {
	body []byte // encoded InferRequest, rebuilt per batch
	resp []byte // response body read buffer
	wire []byte // serialized request: header block + body
	// conns are this loop's persistent connections, indexed by worker:
	// dialed lazily on first dispatch, dropped on any error, closed by
	// closeConns when the loop exits.
	conns []*inferConn
}

// inferConn is one persistent HTTP/1.1 connection to a worker.
type inferConn struct {
	c  net.Conn
	br *bufio.Reader
}

// errDecode marks a 2xx /infer response whose body did not parse. The
// batch was delivered; only the latency attribution is lost.
var errDecode = errors.New("serve: undecodable infer response")

// errMalformed marks a response that does not parse as HTTP/1.x framing;
// the connection is dropped and the dispatch fails like any transport
// error.
var errMalformed = errors.New("serve: malformed infer response")

// postInfer POSTs one encoded batch to worker w's pre-parsed URL and
// parses the worker's latency report. status is 0 on transport errors
// (dial failure, reset, unparseable framing): the connection is dropped
// and the error feeds the caller's health/failover path — there is no
// silent retry, because a POST that died mid-exchange may already be
// executing on the worker. A 2xx body that fails to read or parse
// returns errDecode with the status; callers decide whether a
// delivered-but-unattributed batch counts as success. traceCtx, when
// non-empty, rides in the X-Trace-Id header.
func (s *postScratch) postInfer(w int, u *url.URL, body, traceCtx []byte) (float64, int, error) {
	status, err := s.roundTrip(w, u, body, traceCtx)
	if status == 0 {
		return 0, 0, err
	}
	if status < 200 || status >= 300 {
		return 0, status, nil
	}
	if err != nil {
		return 0, status, errDecode
	}
	// Only latency is read back — model and batch just echo the request,
	// and decoding them would allocate a string per batch.
	if lat, ok := parseInferLatency(s.resp); ok {
		return lat, status, nil
	}
	var ir struct {
		Latency float64 `json:"latency"`
	}
	if err := json.Unmarshal(s.resp, &ir); err != nil {
		return 0, status, errDecode
	}
	return ir.Latency, status, nil
}

// roundTrip performs one request/response exchange on worker w's owned
// connection, dialing if the slot is empty. Any error drops the
// connection, so the next dispatch to w starts from a fresh dial.
func (s *postScratch) roundTrip(w int, u *url.URL, body, traceCtx []byte) (int, error) {
	for len(s.conns) <= w {
		s.conns = append(s.conns, nil)
	}
	ic := s.conns[w]
	if ic == nil {
		c, err := net.Dial("tcp", u.Host)
		if err != nil {
			return 0, err
		}
		ic = &inferConn{c: c, br: bufio.NewReader(c)}
		s.conns[w] = ic
	}
	status, keep, err := ic.exchange(s, u, body, traceCtx)
	if err != nil || !keep {
		_ = ic.c.Close()
		s.conns[w] = nil
	}
	return status, err
}

// closeConns closes every connection this scratch owns; dispatch loops
// call it on exit.
func (s *postScratch) closeConns() {
	for i, ic := range s.conns {
		if ic != nil {
			_ = ic.c.Close()
			s.conns[i] = nil
		}
	}
}

// exchange writes one POST and reads its response into s.resp. status is
// non-zero once a status line was parsed, even when a later read fails —
// roundTrip's callers use that to tell transport failures (retryable
// against another worker) from undecodable bodies (delivered). keep
// reports whether the connection survives for the next exchange. The
// request is serialized into the wire scratch in one piece — header
// block and body — and written with a single syscall; the wire is
// header-minimal because every header line costs the worker's server a
// parse allocation per request at saturation.
func (ic *inferConn) exchange(s *postScratch, u *url.URL, body, traceCtx []byte) (status int, keep bool, err error) {
	wire := s.wire[:0]
	wire = append(wire, "POST "...)
	wire = append(wire, u.Path...)
	wire = append(wire, " HTTP/1.1\r\nHost: "...)
	wire = append(wire, u.Host...)
	wire = append(wire, "\r\nContent-Length: "...)
	wire = strconv.AppendInt(wire, int64(len(body)), 10)
	if len(traceCtx) > 0 {
		wire = append(wire, "\r\nX-Trace-Id: "...)
		wire = append(wire, traceCtx...)
	}
	wire = append(wire, "\r\n\r\n"...)
	wire = append(wire, body...)
	s.wire = wire[:0] // keep the grown capacity for the next batch
	if _, err := ic.c.Write(wire); err != nil {
		return 0, false, err
	}
	line, err := ic.readLine()
	if err != nil {
		return 0, false, err
	}
	status, keep = parseStatusLine(line)
	if status == 0 {
		return 0, false, errMalformed
	}
	contentLen := -1
	chunked := false
	for {
		h, err := ic.readLine()
		if err != nil {
			return status, false, err
		}
		if len(h) == 0 {
			break
		}
		i := bytes.IndexByte(h, ':')
		if i < 0 {
			continue
		}
		key, val := h[:i], trimOWS(h[i+1:])
		switch {
		case bytes.EqualFold(key, []byte("Content-Length")):
			n, perr := parseDecimal(val)
			if perr != nil {
				return status, false, errMalformed
			}
			contentLen = n
		case bytes.EqualFold(key, []byte("Transfer-Encoding")):
			chunked = bytes.EqualFold(val, []byte("chunked"))
		case bytes.EqualFold(key, []byte("Connection")):
			if bytes.EqualFold(val, []byte("close")) {
				keep = false
			}
		}
	}
	switch {
	case status == 204 || status == 304:
		s.resp = s.resp[:0]
	case chunked:
		s.resp, err = ic.readChunked(s.resp[:0])
		if err != nil {
			return status, false, err
		}
	case contentLen >= 0:
		if cap(s.resp) < contentLen {
			s.resp = make([]byte, contentLen)
		} else {
			s.resp = s.resp[:contentLen]
		}
		if _, err := io.ReadFull(ic.br, s.resp); err != nil {
			return status, false, err
		}
	default:
		// No framing: the body runs to connection close (HTTP/1.0 style).
		s.resp, err = readAllInto(s.resp[:0], ic.br)
		if err != nil {
			return status, false, err
		}
		keep = false
	}
	return status, keep, nil
}

// readLine reads one CRLF-terminated line; the returned slice aliases
// the bufio buffer and is valid only until the next read.
func (ic *inferConn) readLine() ([]byte, error) {
	line, err := ic.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	n := len(line) - 1
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return line[:n], nil
}

// readChunked decodes a chunked body into dst. The Go server only chunks
// responses that outgrow its write buffer — which /infer never produces
// — but decoding keeps the client correct instead of wire-shape-lucky.
func (ic *inferConn) readChunked(dst []byte) ([]byte, error) {
	for {
		line, err := ic.readLine()
		if err != nil {
			return dst, err
		}
		if i := bytes.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		if len(line) == 0 {
			return dst, errMalformed
		}
		size := 0
		for _, c := range line {
			switch {
			case c >= '0' && c <= '9':
				size = size<<4 + int(c-'0')
			case c >= 'a' && c <= 'f':
				size = size<<4 + int(c-'a'+10)
			case c >= 'A' && c <= 'F':
				size = size<<4 + int(c-'A'+10)
			default:
				return dst, errMalformed
			}
			if size > 1<<30 {
				return dst, errMalformed
			}
		}
		if size == 0 {
			// Trailer section: lines until the terminating empty line.
			for {
				t, err := ic.readLine()
				if err != nil {
					return dst, err
				}
				if len(t) == 0 {
					return dst, nil
				}
			}
		}
		n := len(dst)
		for cap(dst) < n+size {
			dst = append(dst[:cap(dst)], 0)
		}
		dst = dst[:n+size]
		if _, err := io.ReadFull(ic.br, dst[n:]); err != nil {
			return dst, err
		}
		crlf, err := ic.readLine()
		if err != nil {
			return dst, err
		}
		if len(crlf) != 0 {
			return dst, errMalformed
		}
	}
}

// parseStatusLine extracts the status code from "HTTP/1.x NNN reason".
// status 0 means unparseable; keep reports HTTP/1.1 (whose connections
// persist by default).
func parseStatusLine(line []byte) (status int, keep bool) {
	const pre = "HTTP/1."
	if len(line) < len(pre)+5 || string(line[:len(pre)]) != pre {
		return 0, false
	}
	keep = line[len(pre)] == '1'
	rest := line[len(pre)+1:]
	if rest[0] != ' ' {
		return 0, false
	}
	for _, c := range rest[1:4] {
		if c < '0' || c > '9' {
			return 0, false
		}
		status = status*10 + int(c-'0')
	}
	return status, keep
}

// trimOWS strips the optional leading/trailing whitespace around a
// header value.
func trimOWS(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// parseDecimal parses a non-negative decimal header value.
func parseDecimal(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errMalformed
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errMalformed
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, errMalformed
		}
	}
	return n, nil
}

// appendInferRequest encodes InferRequest without encoding/json.
func appendInferRequest(b []byte, model string, batch int) []byte {
	b = append(b, `{"model":`...)
	b = strconv.AppendQuote(b, model)
	b = append(b, `,"batch":`...)
	b = strconv.AppendInt(b, int64(batch), 10)
	return append(b, '}')
}

// parseInferRequest decodes exactly the wire shape appendInferRequest
// emits ({"model":"...","batch":N}) without encoding/json or any
// allocation; the returned model aliases b. ok is false for anything else
// — escaped model names, reordered or extra fields, surrounding space —
// and the worker falls back to the generic decoder, so external clients
// may still speak arbitrary JSON.
func parseInferRequest(b []byte) (model []byte, batch int, ok bool) {
	const pre = `{"model":"`
	if len(b) < len(pre) || string(b[:len(pre)]) != pre {
		return nil, 0, false
	}
	b = b[len(pre):]
	end := bytes.IndexByte(b, '"')
	if end < 0 || bytes.IndexByte(b[:end], '\\') >= 0 {
		return nil, 0, false
	}
	model = b[:end]
	b = b[end+1:]
	const mid = `,"batch":`
	if len(b) < len(mid)+2 || string(b[:len(mid)]) != mid || b[len(b)-1] != '}' {
		return nil, 0, false
	}
	for _, c := range b[len(mid) : len(b)-1] {
		if c < '0' || c > '9' {
			return nil, 0, false
		}
		batch = batch*10 + int(c-'0')
		if batch > 1<<20 {
			return nil, 0, false
		}
	}
	return model, batch, true
}

// appendInferResponse encodes InferResponse without encoding/json.
func appendInferResponse(b []byte, model string, batch int, latency float64) []byte {
	b = append(b, `{"model":`...)
	b = strconv.AppendQuote(b, model)
	b = append(b, `,"batch":`...)
	b = strconv.AppendInt(b, int64(batch), 10)
	b = append(b, `,"latency":`...)
	b = strconv.AppendFloat(b, latency, 'g', -1, 64)
	return append(b, '}')
}

// pow10 covers the exactly-representable powers of ten for the latency
// fast path below.
var pow10 = [...]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22}

// parseInferLatency decodes the latency field of the exact wire shape
// appendInferResponse emits, without encoding/json or any allocation.
// Mantissas of ≤ 15 digits scaled by an exactly-representable power of
// ten take a correctly-rounded path bit-identical to strconv.ParseFloat;
// 16-19 digit mantissas (the shortest form of a jittered float64 often
// needs 17) land within one ulp, which is fine for a value that only
// feeds telemetry. Anything else reports ok=false and falls back to the
// generic decoder.
func parseInferLatency(b []byte) (lat float64, ok bool) {
	const key = `,"latency":`
	i := bytes.LastIndex(b, []byte(key))
	if i < 0 || b[len(b)-1] != '}' {
		return 0, false
	}
	s := b[i+len(key) : len(b)-1]
	j, neg := 0, false
	if j < len(s) && s[j] == '-' {
		neg, j = true, j+1
	}
	var mant uint64
	digits, frac := 0, 0
	seenDot := false
	for ; j < len(s); j++ {
		c := s[j]
		if c == '.' {
			if seenDot {
				return 0, false
			}
			seenDot = true
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		mant = mant*10 + uint64(c-'0')
		digits++
		if seenDot {
			frac++
		}
	}
	if digits == 0 || digits > 19 {
		return 0, false
	}
	exp := -frac
	if j < len(s) {
		if s[j] != 'e' && s[j] != 'E' {
			return 0, false
		}
		j++
		eneg := false
		if j < len(s) && (s[j] == '+' || s[j] == '-') {
			eneg = s[j] == '-'
			j++
		}
		if j == len(s) {
			return 0, false
		}
		e := 0
		for ; j < len(s); j++ {
			c := s[j]
			if c < '0' || c > '9' {
				return 0, false
			}
			e = e*10 + int(c-'0')
			if e > 30 {
				return 0, false
			}
		}
		if eneg {
			e = -e
		}
		exp += e
	}
	f := float64(mant)
	switch {
	case exp == 0:
	case exp > 0 && exp < len(pow10):
		f *= pow10[exp]
	case exp < 0 && -exp < len(pow10):
		f /= pow10[-exp]
	default:
		return 0, false
	}
	if neg {
		f = -f
	}
	return f, true
}

// readAllInto is io.ReadAll into a caller-owned buffer: dst's backing
// array is reused and grown only past its previous high-water mark.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// bufPool recycles request/response scratch buffers across worker
// handler invocations.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// donePool recycles the one-shot response channels of the blocking query
// paths (Do, the HTTP handlers). A channel may be recycled only after its
// single response was received — recycling an abandoned channel would let
// the late dispatch send poison the next query that draws it.
var donePool = sync.Pool{New: func() any { return make(chan QueryResponse, 1) }}
