package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ramsis/internal/dist"
	"ramsis/internal/profile"
)

// TestRandomConfigsBuildValidMDPs is a property test over random small
// problems: whatever the model subset, SLO, worker count, load,
// discretization, and batching, the built MDP must validate (rows are
// probability distributions) and the generated policy must be well-formed.
func TestRandomConfigsBuildValidMDPs(t *testing.T) {
	all := profile.ImageSet()
	names := make([]string, all.Len())
	for i, p := range all.Profiles {
		names[i] = p.Name
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random 1-3 model subset (always include the fastest so every
		// state has a serviceable action).
		subset := []string{"shufflenet_v2_x0_5"}
		for len(subset) < 1+rng.Intn(3) {
			n := names[rng.Intn(len(names))]
			dup := false
			for _, s := range subset {
				dup = dup || s == n
			}
			if !dup {
				subset = append(subset, n)
			}
		}
		cfg := Config{
			Models:    all.Subset(subset...),
			SLO:       0.080 + rng.Float64()*0.4,
			Workers:   1 + rng.Intn(5),
			Arrival:   dist.NewPoisson(20 + rng.Float64()*300),
			D:         2 + rng.Intn(10),
			MaxQueue:  2 + rng.Intn(6),
			FineCells: 128,
		}
		if rng.Intn(2) == 0 {
			cfg.Disc = ModelBased
		}
		if rng.Intn(3) == 0 {
			cfg.Batching = VariableBatching
		}
		pol, err := Generate(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Well-formed policy: guarantees in range, a decision per state.
		if pol.ExpectedAccuracy < 0 || pol.ExpectedAccuracy > 1 ||
			pol.ExpectedViolation < 0 || pol.ExpectedViolation > 1 {
			return false
		}
		if len(pol.Choices) != pol.States {
			return false
		}
		// Every online lookup resolves without panicking.
		for n := 0; n <= cfg.MaxQueue+2; n++ {
			c := pol.Select(n, rng.Float64()*cfg.SLO)
			if n > 0 && (c.Arrival || c.Batch < 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestExpectedAccuracyMonotoneInLoad samples load pairs and checks the core
// economic property: more load never buys more expected accuracy.
func TestExpectedAccuracyMonotoneInLoad(t *testing.T) {
	cfg := func(load float64) Config {
		return Config{
			Models:  profile.ImageSet(),
			SLO:     0.150,
			Workers: 4,
			Arrival: dist.NewPoisson(load),
			D:       20,
		}
	}
	prev := 2.0
	for _, load := range []float64{40, 80, 120, 160, 200, 240} {
		pol, err := Generate(cfg(load))
		if err != nil {
			t.Fatal(err)
		}
		if pol.ExpectedAccuracy > prev+0.005 {
			t.Errorf("expected accuracy increased with load at %v QPS: %v -> %v",
				load, prev, pol.ExpectedAccuracy)
		}
		prev = pol.ExpectedAccuracy
	}
}
