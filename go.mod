module ramsis

go 1.22
