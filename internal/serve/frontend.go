package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ramsis/internal/lb"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
)

// QueryResponse is the client-facing result of one inference query.
type QueryResponse struct {
	ID          int     `json:"id"`
	Model       string  `json:"model"`
	Batch       int     `json:"batch"`
	LatencyMS   float64 `json:"latencyMs"` // modeled response latency
	DeadlineMet bool    `json:"deadlineMet"`
	// Error is set when the batch could not be delivered to any worker
	// (the dispatch failed on the picked worker and on the failover
	// target); the query counts as a violation.
	Error string `json:"error,omitempty"`
}

// StatsResponse is the /stats snapshot.
type StatsResponse struct {
	Served        int     `json:"served"`
	Violations    int     `json:"violations"`
	Accuracy      float64 `json:"accuracyPerSatisfiedQuery"`
	ViolationRate float64 `json:"violationRate"`
	QueueLengths  []int   `json:"queueLengths"`
	// FailedDispatches counts queries whose batch reached no worker even
	// after failover; they are included in Served and Violations.
	FailedDispatches int `json:"failedDispatches"`
	// WorkerHealthy is the health tracker's current per-worker mark.
	WorkerHealthy []bool `json:"workerHealthy"`
	// WorkerDispatches counts /infer POSTs attempted per worker (failover
	// retries count against the worker they were sent to).
	WorkerDispatches []int `json:"workerDispatches"`
}

// Frontend is the client-facing half of the prototype: applications POST
// /query and block until their prediction returns, exactly the Fig. 1 flow
// (central queue -> load balancer -> worker queue -> model selector ->
// worker). It shares the worker HTTP API with Controller but serves live
// traffic instead of replaying a trace.
//
// Routing goes through a pluggable lb.Balancer over per-worker queues,
// masked by an lb.HealthTracker: workers that fail consecutive health
// probes (or dispatches) stop receiving traffic until they recover, and a
// batch whose dispatch fails is retried once on another healthy worker
// before its queries are recorded as violations.
type Frontend struct {
	Profiles  profile.Set
	SLO       float64
	TimeScale float64
	Workers   []string
	Select    SelectFunc
	Monitor   monitor.Monitor
	// Balancer picks the worker queue for each arriving query; default
	// round-robin, matching the §3.2.1 policy assumption.
	Balancer lb.Balancer
	// Health overrides the health tracker. When nil, Start builds and
	// owns one probing Workers' /healthz every HealthInterval.
	Health *lb.HealthTracker
	// HealthInterval is the wall-clock probe period for the built-in
	// tracker; default 500 ms divided by TimeScale, so detection latency
	// compresses with modeled time in tests.
	HealthInterval time.Duration

	closed    atomic.Bool
	nextID    atomic.Int64
	start     time.Time
	wq        []*workerQueue
	ownHealth bool

	// statsMu guards metrics, failed-dispatch accounting, and the Monitor
	// (whose Observe times must be non-decreasing). It is never held
	// while a workerQueue lock is taken.
	statsMu sync.Mutex
	metrics sim.Metrics

	srv    *http.Server
	addr   string
	client *http.Client
	loops  sync.WaitGroup
}

// workerQueue is one worker's pending-query queue with its own lock and
// condition variable, so a slow worker's selector loop never serializes
// enqueues for the others.
type workerQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []pendingQuery
	// outstanding = queued + in-dispatch queries, the balancer's view of
	// the worker's load. In-dispatch queries must count: a worker that
	// just popped its whole queue reads as empty, and a queue-aware
	// balancer would keep stacking arrivals on it while others idle.
	outstanding atomic.Int32
	// dispatches counts /infer POSTs attempted against this worker.
	dispatches atomic.Int64
}

type pendingQuery struct {
	q    sim.Query
	done chan QueryResponse
}

// Start begins serving on a random localhost port.
func (f *Frontend) Start() error {
	if len(f.Workers) == 0 {
		return fmt.Errorf("serve: frontend needs workers")
	}
	if f.TimeScale <= 0 {
		f.TimeScale = 1
	}
	if f.Balancer == nil {
		f.Balancer = lb.NewRoundRobin()
	}
	if f.Health == nil {
		iv := f.HealthInterval
		if iv <= 0 {
			iv = time.Duration(float64(500*time.Millisecond) / f.TimeScale)
			if iv < 5*time.Millisecond {
				iv = 5 * time.Millisecond
			}
		}
		f.Health = lb.NewHealthTracker(f.Workers, lb.HealthConfig{Interval: iv})
		f.Health.Start()
		f.ownHealth = true
	}
	f.wq = make([]*workerQueue, len(f.Workers))
	for i := range f.wq {
		ws := &workerQueue{}
		ws.cond = sync.NewCond(&ws.mu)
		f.wq[i] = ws
	}
	f.start = time.Now()
	f.metrics = sim.Metrics{ModelCounts: map[string]int{}}
	f.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: len(f.Workers) + 4}}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	f.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/query", f.handleQuery)
	mux.HandleFunc("/stats", f.handleStats)
	f.srv = &http.Server{Handler: mux}
	go func() { _ = f.srv.Serve(ln) }()

	for w := range f.Workers {
		f.loops.Add(1)
		go f.workerLoop(w)
	}
	return nil
}

// URL returns the frontend's base URL.
func (f *Frontend) URL() string { return "http://" + f.addr }

// Stop shuts down the HTTP server, the selector loops, and the health
// tracker (if owned).
func (f *Frontend) Stop() error {
	err := f.srv.Close()
	f.closed.Store(true)
	for _, ws := range f.wq {
		ws.mu.Lock()
		ws.cond.Broadcast()
		ws.mu.Unlock()
	}
	f.loops.Wait()
	if f.ownHealth {
		f.Health.Stop()
	}
	return err
}

// Stats returns a metrics snapshot.
func (f *Frontend) Stats() StatsResponse {
	qs := make([]int, len(f.wq))
	ds := make([]int, len(f.wq))
	for i, ws := range f.wq {
		ws.mu.Lock()
		qs[i] = len(ws.queue)
		ws.mu.Unlock()
		ds[i] = int(ws.dispatches.Load())
	}
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	return StatsResponse{
		Served:           f.metrics.Served,
		Violations:       f.metrics.Violations,
		Accuracy:         f.metrics.AccuracyPerSatisfiedQuery(),
		ViolationRate:    f.metrics.ViolationRate(),
		QueueLengths:     qs,
		FailedDispatches: f.metrics.FailedDispatches,
		WorkerHealthy:    f.Health.Healthy(),
		WorkerDispatches: ds,
	}
}

func (f *Frontend) now() float64 {
	return time.Since(f.start).Seconds() * f.TimeScale
}

// queueLens snapshots every worker's outstanding load for the balancer.
func (f *Frontend) queueLens() []int {
	lens := make([]int, len(f.wq))
	for i, ws := range f.wq {
		lens[i] = int(ws.outstanding.Load())
	}
	return lens
}

// handleQuery routes the query through the balancer and blocks until it is
// served.
func (f *Frontend) handleQuery(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if f.closed.Load() {
		http.Error(rw, "shutting down", http.StatusServiceUnavailable)
		return
	}
	id := int(f.nextID.Add(1) - 1)
	now := f.now()
	if f.Monitor != nil {
		f.statsMu.Lock()
		f.Monitor.Observe(now)
		f.statsMu.Unlock()
	}
	w := f.Balancer.Pick(f.queueLens(), f.Health.Healthy())

	done := make(chan QueryResponse, 1)
	ws := f.wq[w]
	ws.mu.Lock()
	if f.closed.Load() {
		ws.mu.Unlock()
		http.Error(rw, "shutting down", http.StatusServiceUnavailable)
		return
	}
	ws.queue = append(ws.queue, pendingQuery{q: sim.Query{ID: id, Arrival: now}, done: done})
	ws.outstanding.Add(1)
	ws.cond.Signal()
	ws.mu.Unlock()

	select {
	case resp := <-done:
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	case <-req.Context().Done():
		// Client went away; the batch still completes and records metrics
		// (the done channel is buffered, so dispatch never blocks on it).
	}
}

func (f *Frontend) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(f.Stats())
}

// workerLoop mirrors Controller.workerLoop for live queries. It is the
// only consumer of its queue, so a snapshot of the head and length stays
// valid after the lock is dropped (the queue can only grow underneath it).
func (f *Frontend) workerLoop(w int) {
	defer f.loops.Done()
	ws := f.wq[w]
	for {
		ws.mu.Lock()
		for len(ws.queue) == 0 && !f.closed.Load() {
			ws.cond.Wait()
		}
		if len(ws.queue) == 0 && f.closed.Load() {
			ws.mu.Unlock()
			return
		}
		n := len(ws.queue)
		head := ws.queue[0].q
		ws.mu.Unlock()

		now := f.now()
		load := 0.0
		if f.Monitor != nil {
			f.statsMu.Lock()
			load = f.Monitor.Load(now)
			f.statsMu.Unlock()
		}
		slack := head.Arrival + f.SLO - now
		model, batch := f.Select(now, load, n, slack)
		p, ok := f.Profiles.ByName(model)
		if !ok || batch < 1 {
			// Defensive: never drop live queries on selector misbehavior.
			p = f.Profiles.Profiles[0]
			batch = 1
		}
		if batch > p.MaxBatch() {
			batch = p.MaxBatch()
		}
		if batch > n {
			batch = n
		}
		ws.mu.Lock()
		queries := ws.queue[:batch]
		ws.queue = append([]pendingQuery(nil), ws.queue[batch:]...)
		ws.mu.Unlock()

		f.dispatch(w, p.Name, queries)
		ws.outstanding.Add(-int32(len(queries)))
	}
}

// post attempts one /infer POST against worker w and reports the outcome
// to the health tracker. Connection errors and 5xx responses count as
// health failures; 4xx responses fail the dispatch without poisoning the
// worker's health (they indicate a bad request, not a bad worker).
func (f *Frontend) post(w int, model string, batch int) bool {
	body, _ := json.Marshal(InferRequest{Model: model, Batch: batch})
	f.wq[w].dispatches.Add(1)
	resp, err := f.client.Post(f.Workers[w]+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		f.Health.ReportFailure(w)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		f.Health.ReportFailure(w)
		return false
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return false
	}
	f.Health.ReportSuccess(w)
	return true
}

// failoverTarget picks a healthy worker other than w, or -1 if none.
func (f *Frontend) failoverTarget(w int) int {
	if len(f.Workers) < 2 {
		return -1
	}
	healthy := f.Health.Healthy()
	healthy[w] = false
	if !anyHealthy(healthy) {
		return -1
	}
	alt := f.Balancer.Pick(f.queueLens(), healthy)
	if alt == w {
		return -1
	}
	return alt
}

func anyHealthy(healthy []bool) bool {
	for _, h := range healthy {
		if h {
			return true
		}
	}
	return false
}

// dispatch delivers the batch to worker w, failing over once to another
// healthy worker; queries whose batch reached no worker are recorded as
// violations (and FailedDispatches) rather than silently marked served.
func (f *Frontend) dispatch(w int, model string, queries []pendingQuery) {
	ok := f.post(w, model, len(queries))
	if !ok {
		if alt := f.failoverTarget(w); alt >= 0 {
			ok = f.post(alt, model, len(queries))
		}
	}
	done := f.now()
	p, _ := f.Profiles.ByName(model)

	f.statsMu.Lock()
	f.metrics.Decisions++
	f.metrics.ModelCounts[model] += len(queries)
	for _, pq := range queries {
		f.metrics.Served++
		lat := done - pq.q.Arrival
		met := ok && lat <= f.SLO
		if met {
			f.metrics.SatAccSum += p.Accuracy
		} else {
			f.metrics.Violations++
		}
		resp := QueryResponse{
			ID: pq.q.ID, Model: model, Batch: len(queries),
			LatencyMS: lat * 1000, DeadlineMet: met,
		}
		if !ok {
			f.metrics.FailedDispatches++
			resp.Error = "dispatch failed: no healthy worker reachable"
		}
		pq.done <- resp
	}
	f.statsMu.Unlock()
}
