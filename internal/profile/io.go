package profile

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"ramsis/internal/stats"
)

// The artifact distributes profiles as profiles/MODELNAME/BATCHSIZE.json —
// a JSON list of raw latencies from 100 invocations — plus accuracy maps.
// These helpers write and read that layout, so profiles collected on real
// hardware drop into this implementation directly: the p95 of each raw list
// becomes the tabulated l_w(m, b), exactly as §7 profiles models.

// ExportArtifact writes the set in the artifact layout under dir:
// dir/MODEL/BATCH.json raw-latency lists (synthesized around each profile
// entry with Gaussian jitter of stddev seconds, since our profiles are p95
// tables) and dir/accuracy.json mapping model name to accuracy.
func (s Set) ExportArtifact(dir string, samples int, stddev float64, seed int64) error {
	if samples < 1 {
		samples = 100
	}
	rng := rand.New(rand.NewSource(seed))
	acc := map[string]float64{}
	for _, p := range s.Profiles {
		acc[p.Name] = p.Accuracy
		mdir := filepath.Join(dir, p.Name)
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			return err
		}
		for b := 1; b <= p.MaxBatch(); b++ {
			p95 := p.BatchLatency(b)
			sd := stddev
			if cap := 0.15 * p95; sd > cap {
				sd = cap
			}
			mean := p95 - 1.645*sd
			lats := make([]float64, samples)
			for i := range lats {
				v := mean + sd*rng.NormFloat64()
				if floor := p95 * 0.25; v < floor {
					v = floor
				}
				lats[i] = v
			}
			data, err := json.Marshal(lats)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(mdir, fmt.Sprintf("%d.json", b)), data, 0o644); err != nil {
				return err
			}
		}
	}
	data, err := json.MarshalIndent(acc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "accuracy.json"), data, 0o644)
}

// ImportArtifact reads a profile directory in the artifact layout: each
// model subdirectory's BATCH.json raw-latency lists collapse to their 95th
// percentile (the paper's profiled statistic), and accuracy.json supplies
// the accuracies. Task labels the resulting set.
func ImportArtifact(dir, task string) (Set, error) {
	accData, err := os.ReadFile(filepath.Join(dir, "accuracy.json"))
	if err != nil {
		return Set{}, fmt.Errorf("profile: accuracy map: %w", err)
	}
	var acc map[string]float64
	if err := json.Unmarshal(accData, &acc); err != nil {
		return Set{}, fmt.Errorf("profile: accuracy map: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Set{}, err
	}
	out := Set{Task: task}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		a, ok := acc[name]
		if !ok {
			return Set{}, fmt.Errorf("profile: model %q has latencies but no accuracy", name)
		}
		batches, err := os.ReadDir(filepath.Join(dir, name))
		if err != nil {
			return Set{}, err
		}
		perBatch := map[int]float64{}
		maxB := 0
		for _, bf := range batches {
			var b int
			if _, err := fmt.Sscanf(bf.Name(), "%d.json", &b); err != nil || b < 1 {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, name, bf.Name()))
			if err != nil {
				return Set{}, err
			}
			var lats []float64
			if err := json.Unmarshal(raw, &lats); err != nil {
				return Set{}, fmt.Errorf("profile: %s/%s: %w", name, bf.Name(), err)
			}
			if len(lats) == 0 {
				return Set{}, fmt.Errorf("profile: %s/%s is empty", name, bf.Name())
			}
			perBatch[b] = stats.Percentile(lats, 95)
			if b > maxB {
				maxB = b
			}
		}
		if maxB == 0 {
			return Set{}, fmt.Errorf("profile: model %q has no batch profiles", name)
		}
		lat := make([]float64, maxB)
		for b := 1; b <= maxB; b++ {
			v, ok := perBatch[b]
			if !ok {
				return Set{}, fmt.Errorf("profile: model %q missing batch %d", name, b)
			}
			lat[b-1] = v
		}
		out.Profiles = append(out.Profiles, Profile{Model: Model{Name: name, Accuracy: a}, Latency: lat})
	}
	if out.Len() == 0 {
		return Set{}, fmt.Errorf("profile: no models under %s", dir)
	}
	sort.Slice(out.Profiles, func(i, j int) bool { return out.Profiles[i].Name < out.Profiles[j].Name })
	return out, nil
}

// Single-file kinded profile format: alongside the artifact directory
// layout, a profile corpus round-trips as one JSON document whose "kind"
// field names the profile family. Two kinds exist: "scalar" is this
// package's per-(model, batch) latency tables, "llm" is internal/llm's
// token-level step-time coefficient tables. Each loader rejects the other
// kind with a pointed error, so a step-time profile can never silently feed
// the scalar l_w(m,b) solve path (or vice versa).
const (
	// KindScalar marks a per-(model, batch) latency-table profile file.
	KindScalar = "scalar"
	// KindLLM marks a token-level step-time profile file (internal/llm).
	KindLLM = "llm"
)

// FileKind sniffs the kind of a single-file profile document. A document
// with no kind field is treated as KindScalar (the original format predates
// the field).
func FileKind(data []byte) string {
	var head struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &head); err != nil || head.Kind == "" {
		return KindScalar
	}
	return head.Kind
}

// setFile is the scalar kind's wire form.
type setFile struct {
	Kind     string        `json:"kind"`
	Task     string        `json:"task"`
	Profiles []profileFile `json:"profiles"`
}

type profileFile struct {
	Name     string    `json:"name"`
	Accuracy float64   `json:"accuracy"`
	Latency  []float64 `json:"latency"`
}

// MarshalSet encodes the set as a kinded single-file JSON document.
func MarshalSet(s Set) ([]byte, error) {
	out := setFile{Kind: KindScalar, Task: s.Task, Profiles: make([]profileFile, 0, s.Len())}
	for _, p := range s.Profiles {
		out.Profiles = append(out.Profiles, profileFile{Name: p.Name, Accuracy: p.Accuracy, Latency: p.Latency})
	}
	return json.MarshalIndent(out, "", " ")
}

// SaveFile writes the set as a kinded single-file JSON document.
func (s Set) SaveFile(path string) error {
	data, err := MarshalSet(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSet decodes a kinded single-file profile document into a scalar Set.
// An llm-kind document is rejected: its step-time coefficients are not
// batch-latency tables, and consuming them here would hand the scalar MDP
// garbage profiles.
func LoadSet(data []byte) (Set, error) {
	if kind := FileKind(data); kind != KindScalar {
		if kind == KindLLM {
			return Set{}, fmt.Errorf("profile: file holds an %q step-time profile, not scalar batch-latency tables; load it with llm.LoadSetFile (or pass it via -llm-profile)", kind)
		}
		return Set{}, fmt.Errorf("profile: unknown profile kind %q (want %q or %q)", kind, KindScalar, KindLLM)
	}
	var sf setFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return Set{}, fmt.Errorf("profile: %w", err)
	}
	out := Set{Task: sf.Task}
	for _, p := range sf.Profiles {
		if p.Name == "" {
			return Set{}, fmt.Errorf("profile: unnamed model in profile file")
		}
		if len(p.Latency) == 0 {
			return Set{}, fmt.Errorf("profile: model %q has no latency table", p.Name)
		}
		for b, l := range p.Latency {
			if !(l > 0) {
				return Set{}, fmt.Errorf("profile: model %q batch %d latency %v not positive", p.Name, b+1, l)
			}
		}
		if !(p.Accuracy > 0 && p.Accuracy <= 1) {
			return Set{}, fmt.Errorf("profile: model %q accuracy %v outside (0, 1]", p.Name, p.Accuracy)
		}
		out.Profiles = append(out.Profiles, Profile{Model: Model{Name: p.Name, Accuracy: p.Accuracy}, Latency: p.Latency})
	}
	if out.Len() == 0 {
		return Set{}, fmt.Errorf("profile: profile file holds no models")
	}
	return out, nil
}

// LoadSetFile reads a kinded single-file profile document from path.
func LoadSetFile(path string) (Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Set{}, err
	}
	s, err := LoadSet(data)
	if err != nil {
		return Set{}, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
