package profile_test

import (
	"fmt"

	"ramsis/internal/profile"
)

// The action space RAMSIS considers is the accuracy/latency Pareto front of
// the loaded models (§4.3.3).
func ExampleSet_ParetoFront() {
	models := profile.ImageSet()
	front := models.ParetoFront()
	fmt.Printf("%d of %d models on the front\n", front.Len(), models.Len())
	fmt.Printf("fastest: %s, most accurate: %s\n",
		front.Fastest().Name, front.MostAccurate().Name)
	// Output:
	// 9 of 26 models on the front
	// fastest: shufflenet_v2_x0_5, most accurate: efficientnet_v2_s
}

// B_w, the largest batch size meeting the SLO (§4.2.1), quantizes the
// relevant slack times.
func ExampleSet_MaxBatchWithin() {
	fmt.Println(profile.ImageSet().MaxBatchWithin(0.5))
	// Output:
	// 29
}
