package core

import (
	"fmt"
	"io"
)

// Describe writes a human-readable rendering of the policy: for each queue
// length, the slack ranges and the decision taken in them (runs of adjacent
// slack buckets with identical decisions are merged). It is the inspection
// view cmd/ramsisgen exposes with --describe.
func (p *Policy) Describe(w io.Writer) {
	fmt.Fprintf(w, "RAMSIS policy: task=%s load=%.0fQPS workers=%d SLO=%.0fms %s/%s\n",
		p.Task, p.Load, p.Workers, p.SLO*1000, p.Disc, p.Batching)
	fmt.Fprintf(w, "expected accuracy >= %.4f, violation rate <= %.4f%%\n",
		p.ExpectedAccuracy, p.ExpectedViolation*100)
	fmt.Fprintf(w, "grid: %d slack buckets over [0, %.0fms]\n", len(p.Grid), p.Grid[len(p.Grid)-1]*1000)

	for n := 1; n <= p.MaxQueue; n++ {
		fmt.Fprintf(w, "n=%-3d", n)
		start := 0
		prev := p.Choices[p.space.index(n, 0)]
		emit := func(from, to int) {
			lo := p.Grid[from] * 1000
			var hiStr string
			if to+1 < len(p.Grid) {
				hiStr = fmt.Sprintf("%.0f", p.Grid[to+1]*1000)
			} else {
				hiStr = "inf"
			}
			mark := ""
			if !prev.Satisfies {
				mark = "!"
			}
			fmt.Fprintf(w, " [%.0f-%sms: %s b=%d%s]", lo, hiStr, prev.Model, prev.Batch, mark)
		}
		for j := 1; j < len(p.Grid); j++ {
			c := p.Choices[p.space.index(n, j)]
			if c.Model == prev.Model && c.Batch == prev.Batch && c.Satisfies == prev.Satisfies {
				continue
			}
			emit(start, j-1)
			start, prev = j, c
		}
		emit(start, len(p.Grid)-1)
		fmt.Fprintln(w)
	}
	over := p.Choices[p.space.overflowState()]
	fmt.Fprintf(w, "overflow (n>%d): %s b=%d\n", p.MaxQueue, over.Model, over.Batch)
	fmt.Fprintln(w, "(! marks forced decisions that cannot meet the earliest deadline)")
}
