// Capacity planning with RAMSIS's probabilistic guarantees (§5.1): the
// resource manager searches offline for the fewest workers meeting an
// accuracy target and a violation bound — no workload runs needed — then
// derives an autoscaling schedule for a diurnal trace and reports the cost
// saving over static peak provisioning.
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"

	"ramsis"
	"ramsis/internal/resource"
)

func main() {
	models := ramsis.ImageModels()
	req := resource.Requirements{
		SLO:          0.150,
		MinAccuracy:  0.72,
		MaxViolation: 0.01,
		D:            50,
	}

	// One-shot question: how many workers does 400 QPS need?
	fmt.Println("searching the smallest deployment for 400 QPS")
	fmt.Printf("(accuracy >= %.0f%%, violations <= %.1f%%, SLO %.0f ms)...\n",
		req.MinAccuracy*100, req.MaxViolation*100, req.SLO*1000)
	plan, err := resource.MinWorkers(models, req, 400, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-> %d workers (expected accuracy %.4f, violations %.4f%%)\n\n",
		plan.Workers, plan.Policy.ExpectedAccuracy, plan.Policy.ExpectedViolation*100)

	// Trace-driven: static peak provisioning vs per-interval autoscaling.
	tr := ramsis.TwitterTrace().Scale(0.15) // ~240-590 QPS diurnal profile
	fmt.Printf("planning for a diurnal trace (%.0f-%.0f QPS over %.0fs)...\n",
		tr.MinQPS(), tr.MaxQPS(), tr.Duration())
	static, err := resource.StaticPlan(models, req, tr, 64)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := resource.Autoscale(models, req, tr, 64, 1.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static peak provisioning: %d workers always on\n", static.Workers)
	fmt.Printf("autoscaled schedule:      %.1f workers on average (peak %d)\n",
		sched.MeanWorkers(), sched.Peak())
	fmt.Printf("cost saving:              %.1f%%\n",
		(1-sched.MeanWorkers()/float64(static.Workers))*100)
	fmt.Println("\nper-interval workers:")
	for i, w := range sched.Workers {
		fmt.Printf("  t=%3.0fs load=%4.0f QPS -> %d workers\n",
			float64(i)*tr.IntervalSec, tr.QPS[i], w)
	}
}
