package dist

import "math"

// Process is an arrival distribution that additionally exposes the density
// of its k-th arrival epoch, measured from a renewal (arrival) epoch. The
// RAMSIS transition builder integrates this density over slack buckets to
// obtain the paper's interval-B/C/D joint probabilities in closed form.
type Process interface {
	Arrival
	// KthArrivalPDF returns the density at time t of the k-th arrival
	// (k >= 1), given an arrival epoch at time 0.
	KthArrivalPDF(k int, t float64) float64
}

// KthArrivalPDF for a Poisson process: the k-th arrival time is
// Erlang(k, λ).
func (p Poisson) KthArrivalPDF(k int, t float64) float64 {
	return ErlangPDF(k, p.Lambda, t)
}

// KthArrivalPDF for the Erlang renewal process: the k-th arrival is the sum
// of k·shape exponential stages of rate rate·shape.
func (g Gamma) KthArrivalPDF(k int, t float64) float64 {
	return ErlangPDF(k*g.shape, g.rate*float64(g.shape), t)
}

// KthArrivalTable tabulates f_k(t_g) for k = 1..kmax at the cell-midpoint
// times t_g = (g+0.5)·delta, g = 0..cells-1. Row g holds the kmax densities
// for time t_g. Values are computed in log space with a shared log-factorial
// table, so a whole table costs O(cells·kmax) flops rather than one Lgamma
// call per entry.
func KthArrivalTable(p Process, kmax, cells int, delta float64) [][]float64 {
	table := make([][]float64, cells)
	switch proc := p.(type) {
	case Poisson:
		fillErlangTable(table, kmax, 1, proc.Lambda, delta)
	case Gamma:
		fillErlangTable(table, kmax, proc.shape, proc.rate*float64(proc.shape), delta)
	default:
		for g := range table {
			t := (float64(g) + 0.5) * delta
			row := make([]float64, kmax)
			for k := 1; k <= kmax; k++ {
				row[k-1] = p.KthArrivalPDF(k, t)
			}
			table[g] = row
		}
	}
	return table
}

// fillErlangTable fills table[g][k-1] with ErlangPDF(k·stride, rate, t_g).
func fillErlangTable(table [][]float64, kmax, stride int, rate, delta float64) {
	// log((n-1)!) for n = 1..kmax·stride.
	logFact := make([]float64, kmax*stride+1)
	for n := 2; n <= kmax*stride; n++ {
		logFact[n] = logFact[n-1] + math.Log(float64(n-1))
	}
	logRate := math.Log(rate)
	for g := range table {
		t := (float64(g) + 0.5) * delta
		logT := math.Log(rate * t)
		row := make([]float64, kmax)
		for k := 1; k <= kmax; k++ {
			shape := k * stride
			// log f = shape·log(rate) + (shape-1)·log(t) − rate·t − log((shape-1)!)
			//       = log(rate) + (shape-1)·log(rate·t) − rate·t − log((shape-1)!)
			lf := logRate + float64(shape-1)*logT - rate*t - logFact[shape]
			row[k-1] = math.Exp(lf)
		}
		table[g] = row
	}
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// used for Binomial tails: P[Bin(n, p) >= k] = I_p(k, n-k+1).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgammaOf(a) + lgammaOf(b) - lgammaOf(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// BinomialTail returns P[Bin(n, p) >= k].
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	return RegIncBeta(float64(k), float64(n-k+1), p)
}

func lgammaOf(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function
// (Lentz's algorithm).
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= gammaMaxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return h
}
