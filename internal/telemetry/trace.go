package telemetry

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// Span is one stage of a query's lifetime. Durations are modeled seconds,
// so simulator and prototype traces compare directly.
type Span struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// QueryTrace is the completed per-query trace: where the latency budget of
// one query went, stage by stage. Every response — and in particular every
// SLO violation — can be attributed to the stage that consumed the budget.
//
// In a sharded deployment one query leaves one fragment per process it
// crossed (gateway, shard frontend, worker), all carrying the same TraceID;
// Process names the recording process and Parent its upstream, so Stitch
// can reassemble the fragments into one tree offline or from the merged
// /debug/traces dump.
type QueryTrace struct {
	ID          int     `json:"id"`
	Arrival     float64 `json:"arrival"` // modeled seconds from start
	Worker      int     `json:"worker"`  // worker the batch ran on (-1 if none)
	Model       string  `json:"model"`
	Batch       int     `json:"batch"`
	LatencyMS   float64 `json:"latencyMs"` // end-to-end, modeled
	DeadlineMet bool    `json:"deadlineMet"`
	Error       string  `json:"error,omitempty"`
	Spans       []Span  `json:"spans"`
	// TraceID joins this fragment to the query's fragments from other
	// processes; empty on legacy single-process traces.
	TraceID string `json:"traceId,omitempty"`
	// Process names the process that recorded the fragment ("gateway",
	// "shard-1", "worker-3", "frontend", "sim").
	Process string `json:"process,omitempty"`
	// Parent is the upstream Process that handed the query over ("" for
	// the root fragment).
	Parent string `json:"parent,omitempty"`
	// Tenant and Shard attribute the fragment before any stitching.
	Tenant string `json:"tenant,omitempty"`
	Shard  int    `json:"shard,omitempty"`
	// Decision is the policy decision that dispatched this query, with the
	// inputs it saw and its predicted-vs-realized latency (nil for shed
	// queries and legacy traces).
	Decision *Decision `json:"decision,omitempty"`
}

// NewTraceID returns a 16-hex-digit random trace ID (crypto/rand; the
// simulator derives deterministic IDs from query IDs instead).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span returns the duration of the named stage and whether it is present.
func (t QueryTrace) Span(stage string) (float64, bool) {
	for _, s := range t.Spans {
		if s.Stage == stage {
			return s.Seconds, true
		}
	}
	return 0, false
}

// TraceBuffer is a bounded ring of the most recent completed query traces,
// dumpable via its /debug/traces handler. Memory is fixed at capacity; a
// new trace overwrites the oldest once full.
type TraceBuffer struct {
	mu   sync.Mutex
	buf  []QueryTrace
	next int
	full bool
}

// DefaultTraceCapacity is the ring size serving layers use when the caller
// does not choose one.
const DefaultTraceCapacity = 256

// NewTraceBuffer returns a ring holding the last n traces (n <= 0 takes
// DefaultTraceCapacity).
func NewTraceBuffer(n int) *TraceBuffer {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &TraceBuffer{buf: make([]QueryTrace, n)}
}

// Add records a completed trace, evicting the oldest when full.
func (b *TraceBuffer) Add(t QueryTrace) {
	b.mu.Lock()
	b.buf[b.next] = t
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
	b.mu.Unlock()
}

// Len returns the number of buffered traces.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// Snapshot returns the buffered traces oldest-first.
func (b *TraceBuffer) Snapshot() []QueryTrace {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.full {
		return append([]QueryTrace(nil), b.buf[:b.next]...)
	}
	out := make([]QueryTrace, 0, len(b.buf))
	out = append(out, b.buf[b.next:]...)
	out = append(out, b.buf[:b.next]...)
	return out
}

// Handler serves the buffered traces as a JSON array (the /debug/traces
// endpoint).
func (b *TraceBuffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(b.Snapshot())
	})
}

// TraceWriter streams completed traces as JSONL (one JSON object per line)
// for offline analysis; it serializes concurrent writers.
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewTraceWriter wraps w (typically the -trace-out file).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Write appends one trace line.
func (t *TraceWriter) Write(qt QueryTrace) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(qt)
}

// ReadTraces parses a JSONL trace stream (the -trace-out format) back into
// traces, in file order. Blank lines are skipped; a malformed line aborts
// with its error so silently truncated exports are caught.
func ReadTraces(r io.Reader) ([]QueryTrace, error) {
	var out []QueryTrace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var qt QueryTrace
		if err := json.Unmarshal(line, &qt); err != nil {
			return nil, err
		}
		out = append(out, qt)
	}
	return out, sc.Err()
}
