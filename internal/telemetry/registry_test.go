package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentUse hammers counters, gauges, and histograms from
// concurrent goroutines while the exposition writer runs — the -race pass
// over this package is part of make verify.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter(MetricQueries)
			h := r.Histogram(MetricStageSeconds, "stage", StageInference)
			gauge := r.Gauge("ramsis_inflight")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				gauge.Add(1)
				gauge.Add(-1)
				if i%500 == 0 {
					var b bytes.Buffer
					r.WritePrometheus(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter(MetricQueries).Value(); got != goroutines*iters {
		t.Errorf("counter = %v, want %d", got, goroutines*iters)
	}
	if got := r.Histogram(MetricStageSeconds, "stage", StageInference).Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("ramsis_inflight").Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}

func TestRegistryReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(MetricModelQueries, "model", "resnet50")
	b := r.Counter(MetricModelQueries, "model", "resnet50")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	other := r.Counter(MetricModelQueries, "model", "shufflenet")
	if a == other {
		t.Error("distinct labels returned the same counter")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ramsis_queries_total")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("ramsis_queries_total")
}

func TestGaugeFuncIsLive(t *testing.T) {
	r := NewRegistry()
	healthy := true
	r.GaugeFunc(MetricWorkerHealthy, func() float64 {
		if healthy {
			return 1
		}
		return 0
	}, "worker", "0")
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `ramsis_worker_healthy{worker="0"} 1`) {
		t.Fatalf("exposition missing live gauge:\n%s", b.String())
	}
	healthy = false
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `ramsis_worker_healthy{worker="0"} 0`) {
		t.Errorf("gauge func not re-read at exposition:\n%s", b.String())
	}
}

// TestPrometheusExpositionGolden locks the text exposition format against
// a golden file. Regenerate with UPDATE_GOLDEN=1 go test ./internal/telemetry.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	q := r.Counter(MetricQueries)
	q.Add(3)
	r.Help(MetricQueries, "Total queries served.")
	r.Counter(MetricModelQueries, "model", "a").Add(2)
	r.Counter(MetricModelQueries, "model", "b").Inc()
	r.Gauge(MetricWorkerHealthy, "worker", "0").Set(1)
	r.GaugeFunc(MetricWorkerHealthy, func() float64 { return 0 }, "worker", "1")
	h := r.HistogramBuckets(MetricStageSeconds, []float64{0.1, 1, 10}, "stage", StageInference)
	for _, v := range []float64{0.0625, 0.5, 5, 50} {
		h.Observe(v)
	}

	var b bytes.Buffer
	r.WritePrometheus(&b)
	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", b.Bytes(), want)
	}
}

func TestLabelKeySortsPairs(t *testing.T) {
	if got := labelKey([]string{"z", "1", "a", "2"}); got != `a="2",z="1"` {
		t.Errorf("labelKey = %s", got)
	}
}

func TestNewLoggerValidation(t *testing.T) {
	var b bytes.Buffer
	if _, err := NewLogger(&b, "nope", "text", "t"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "yaml", "t"); err == nil {
		t.Error("bad format accepted")
	}
	l, err := NewLogger(&b, "info", "json", "serve")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	out := b.String()
	if !strings.Contains(out, `"component":"serve"`) || !strings.Contains(out, `"k":"v"`) {
		t.Errorf("structured output missing fields: %s", out)
	}
	b.Reset()
	l.Debug("hidden")
	if b.Len() != 0 {
		t.Error("debug line emitted at info level")
	}
}
