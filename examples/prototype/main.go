// Prototype: the full client-server serving stack of §6 on localhost —
// worker HTTP servers that hold requests for the profiled inference
// latency (with the ~10 ms jitter the paper measures), a central controller
// with a round-robin balancer and per-worker model selectors, and a
// workload generator replaying Poisson arrivals in real time.
//
//	go run ./examples/prototype
package main

import (
	"fmt"
	"log"

	"ramsis"
	"ramsis/internal/monitor"
	"ramsis/internal/serve"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

func main() {
	const (
		workers   = 4
		sloMS     = 150.0
		load      = 100.0
		duration  = 8.0
		timeScale = 2.0 // run modeled time 2x faster than wall time
	)
	models := ramsis.ImageModels()

	fmt.Println("offline phase: generating the RAMSIS policy ladder...")
	system, err := ramsis.New(ramsis.Options{Models: models, SLOMillis: sloMS, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	// Cover the moving-average monitor's fluctuation range so serving never
	// waits on (or competes with) on-demand policy generation.
	if err := system.PrecomputePolicies(load, load*1.5, load*2); err != nil {
		log.Fatal(err)
	}

	fmt.Println("starting worker HTTP servers...")
	urls := make([]string, workers)
	for i := 0; i < workers; i++ {
		w := serve.NewWorker(models, sim.Stochastic{StdDev: 0.010}, timeScale, int64(i+1))
		if err := w.Start(); err != nil {
			log.Fatal(err)
		}
		defer w.Stop()
		urls[i] = w.URL()
		fmt.Printf("  worker %d at %s\n", i, urls[i])
	}

	ctl := &serve.Controller{
		Profiles:  models,
		SLO:       sloMS / 1000,
		TimeScale: timeScale,
		Workers:   urls,
		Select:    serve.RAMSISSelector(system.PolicySet()),
		Monitor:   monitor.NewMovingAverage(0.5),
	}
	tr := ramsis.ConstantTrace(load, duration)
	arrivals := trace.PoissonArrivals(tr, 11)
	fmt.Printf("replaying %d queries over %.0f modeled seconds (%.0fs wall)...\n",
		len(arrivals), duration, duration/timeScale)
	m, err := ctl.Run(arrivals)
	if err != nil {
		log.Fatal(err)
	}

	pol, _ := system.Policy(load)
	fmt.Printf("\nserved %d queries in %d HTTP batches\n", m.Served, m.Decisions)
	fmt.Printf("accuracy per satisfied query: %.4f  (offline bound %.4f)\n",
		m.AccuracyPerSatisfiedQuery(), pol.ExpectedAccuracy)
	fmt.Printf("latency SLO violation rate:   %.4f%% (offline bound %.4f%%)\n",
		m.ViolationRate()*100, pol.ExpectedViolation*100)
}
