package serve

import (
	"fmt"
	"time"

	"ramsis/internal/admit"
	"ramsis/internal/lb"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
)

// ClusterConfig configures a self-contained localhost deployment: N worker
// servers plus the live frontend.
type ClusterConfig struct {
	Models    profile.Set
	Workers   int
	SLO       float64
	TimeScale float64
	// LatencyStdDev adds the §7.3.1 inference jitter in seconds (0 =
	// deterministic p95 latencies).
	LatencyStdDev float64
	Select        SelectFunc
	Monitor       monitor.Monitor
	Seed          int64
	// Balancer routes queries across worker queues (default round-robin).
	Balancer lb.Balancer
	// HealthInterval overrides the frontend's health-probe period.
	HealthInterval time.Duration
	// Addr is the frontend listen address (default random localhost port).
	Addr string
	// Telemetry is shared by the frontend's /metrics; workers keep their
	// own registries (each serves its own /metrics endpoint).
	Telemetry *telemetry.Registry
	// TraceWriter streams each completed query trace as JSONL.
	TraceWriter *telemetry.TraceWriter
	// Admit screens arrivals at the frontend; shed queries answer 429.
	Admit admit.Admitter
	// Degrade clamps model selection to faster models under confirmed
	// overload.
	Degrade *admit.Degrader
	// RetryBudget gates the frontend's dispatch failover.
	RetryBudget *admit.RetryBudget
}

// Cluster is a running localhost deployment.
type Cluster struct {
	Frontend *Frontend
	workers  []*Worker
}

// StartCluster boots the workers and the frontend. Stop releases
// everything.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("serve: cluster needs at least one worker")
	}
	if cfg.Select == nil {
		return nil, fmt.Errorf("serve: cluster needs a selector")
	}
	var lat sim.LatencyModel = sim.Deterministic{}
	if cfg.LatencyStdDev > 0 {
		lat = sim.Stochastic{StdDev: cfg.LatencyStdDev}
	}
	c := &Cluster{}
	urls := make([]string, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w := NewWorker(cfg.Models, lat, cfg.TimeScale, cfg.Seed+int64(i))
		if err := w.Start(); err != nil {
			c.Stop()
			return nil, err
		}
		c.workers = append(c.workers, w)
		urls[i] = w.URL()
	}
	c.Frontend = &Frontend{
		Profiles:       cfg.Models,
		SLO:            cfg.SLO,
		TimeScale:      cfg.TimeScale,
		Workers:        urls,
		Select:         cfg.Select,
		Monitor:        cfg.Monitor,
		Balancer:       cfg.Balancer,
		HealthInterval: cfg.HealthInterval,
		Addr:           cfg.Addr,
		Telemetry:      cfg.Telemetry,
		TraceWriter:    cfg.TraceWriter,
		Admit:          cfg.Admit,
		Degrade:        cfg.Degrade,
		RetryBudget:    cfg.RetryBudget,
	}
	if err := c.Frontend.Start(); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

// URL returns the frontend's base URL.
func (c *Cluster) URL() string { return c.Frontend.URL() }

// Stop shuts down the frontend and every worker.
func (c *Cluster) Stop() {
	if c.Frontend != nil {
		_ = c.Frontend.Stop()
	}
	for _, w := range c.workers {
		_ = w.Stop()
	}
}
