// Command benchjson converts `go test -bench` text output into JSON so
// benchmark baselines can be committed and diffed (see `make bench`, which
// writes BENCH_4.json). Zero dependencies, stdlib only.
//
//	go test -bench . -benchmem -count=3 . | benchjson -o BENCH_4.json
//	benchjson bench.out            # parse a saved file, JSON to stdout
//
// Each benchmark name maps to its runs (one per -count repetition); every
// `value unit` pair on a line becomes a metric ("ns/op", "B/op",
// "allocs/op", custom b.ReportMetric units like "queries/op"). BestNsPerOp
// is the minimum ns/op across runs — the conventional number to quote,
// being the least scheduler-noise-contaminated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type run struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchmark struct {
	Name        string  `json:"name"`
	Runs        []run   `json:"runs"`
	BestNsPerOp float64 `json:"best_ns_per_op,omitempty"`
}

type report struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*benchmark `json:"benchmarks"`
}

// procsSuffix is the -GOMAXPROCS suffix go test appends to benchmark names
// when GOMAXPROCS > 1; strip it so baselines from different machines align.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (*report, error) {
	rep := &report{}
	byName := map[string]*benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			metrics[fields[i+1]] = v
		}
		name := procsSuffix.ReplaceAllString(fields[0], "")
		b := byName[name]
		if b == nil {
			b = &benchmark{Name: name}
			byName[name] = b
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		b.Runs = append(b.Runs, run{Iterations: iters, Metrics: metrics})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range rep.Benchmarks {
		for _, r := range b.Runs {
			ns, ok := r.Metrics["ns/op"]
			if !ok {
				continue
			}
			if b.BestNsPerOp == 0 || ns < b.BestNsPerOp {
				b.BestNsPerOp = ns
			}
		}
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
