package experiments

import (
	"sort"

	"ramsis/internal/baselines"
	"ramsis/internal/core"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// Fig2Result quantifies the paper's motivating Fig. 2: under the same
// constant load and inter-arrival pattern, a load-granular scheme pins the
// throughput-sustaining model while RAMSIS opportunistically upgrades
// during arrival lulls.
type Fig2Result struct {
	// ModelShare maps method -> model -> fraction of decisions.
	ModelShare map[string]map[string]float64
	// UpgradeFraction is the fraction of RAMSIS decisions on models more
	// accurate than the load-granular choice.
	UpgradeFraction float64
	// Timeline is a short excerpt of RAMSIS's decision log.
	Timeline []sim.DecisionRecord
}

// Fig2 reproduces the Fig. 2 scenario: two workers, a load only the faster
// of the relevant models can sustain continuously, Poisson arrivals.
// The load-granular baseline (Jellyfish+-style) must select the sustaining
// model for every batch; RAMSIS selects higher-accuracy models during lulls
// with no additional SLO violations.
func (h *Harness) Fig2() Fig2Result {
	const workers, slo = 2, 0.150
	models := profile.ImageSet()
	dur := 20.0
	if h.scale() == scaleQuick {
		dur = 8
	}
	// Pick the load so that Jellyfish+'s choice is pinned well below the
	// most accurate feasible model: ~70% of mobilenet_v3_small's capacity.
	mb, _ := models.ByName("mobilenet_v3_small")
	load := 0.7 * float64(workers) * mb.ThroughputWithin(slo/2)
	tr := trace.Constant(load, dur)
	arr := trace.PoissonArrivals(tr, h.opts.Seed)

	// Load-granular baseline.
	jf := &baselines.JellyfishPlus{Profiles: models, SLO: slo, Workers: workers, Monitor: monitor.Oracle{Trace: tr}}
	eJ := sim.NewEngine(models, slo, workers, sim.Deterministic{}, jf, h.opts.Seed)
	eJ.RecordDecisions = true
	mJ := eJ.Run(arr)
	jfModel := models.Profiles[jf.ModelFor(load)]

	// RAMSIS.
	set := h.policySet(models, slo, workers, []float64{load}, "fig2", func(c *core.Config) { c.D = 50 })
	eR := sim.NewEngine(models, slo, workers, sim.Deterministic{}, sim.NewRAMSIS(set, monitor.Oracle{Trace: tr}), h.opts.Seed)
	eR.RecordDecisions = true
	mR := eR.Run(arr)

	res := Fig2Result{ModelShare: map[string]map[string]float64{
		MethodRAMSIS: decisionShare(mR),
		MethodJF:     decisionShare(mJ),
	}}
	upgrades := 0
	for _, d := range mR.DecisionLog {
		p, _ := models.ByName(d.Model)
		if p.Accuracy > jfModel.Accuracy {
			upgrades++
		}
	}
	if len(mR.DecisionLog) > 0 {
		res.UpgradeFraction = float64(upgrades) / float64(len(mR.DecisionLog))
	}
	if len(mR.DecisionLog) > 12 {
		res.Timeline = mR.DecisionLog[:12]
	} else {
		res.Timeline = mR.DecisionLog
	}

	h.printf("Fig. 2: lull exploitation at constant load (%.0f QPS, %d workers, SLO %.0f ms)\n",
		load, workers, slo*1000)
	h.printf("load-granular choice: %s (accuracy %.2f%%)\n", jfModel.Name, jfModel.Accuracy*100)
	for _, method := range []string{MethodJF, MethodRAMSIS} {
		h.printf("%-8s decisions by model:", method)
		share := res.ModelShare[method]
		names := make([]string, 0, len(share))
		for n := range share {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h.printf(" %s=%.1f%%", n, share[n]*100)
		}
		h.printf("\n")
	}
	h.printf("RAMSIS upgraded beyond the load-granular model in %.1f%% of decisions\n", res.UpgradeFraction*100)
	h.printf("violations: RAMSIS %.4f, JF+ %.4f\n", mR.ViolationRate(), mJ.ViolationRate())
	h.printf("timeline excerpt (RAMSIS):\n")
	for _, d := range res.Timeline {
		h.printf("  t=%7.3fs worker %d: %-20s batch=%d slack=%3.0fms\n",
			d.Time, d.Worker, d.Model, d.Batch, d.Slack*1000)
	}
	h.printf("\n")
	h.saveResult("fig2", res)
	return res
}

func decisionShare(m sim.Metrics) map[string]float64 {
	out := map[string]float64{}
	for _, d := range m.DecisionLog {
		out[d.Model]++
	}
	for k := range out {
		out[k] /= float64(len(m.DecisionLog))
	}
	return out
}
