package experiments

import (
	"fmt"

	"ramsis/internal/admit"
	"ramsis/internal/core"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

// OverloadPoint is one (overload multiple, admission policy) cell.
type OverloadPoint struct {
	Mult      float64
	Policy    string
	Goodput   float64
	ShedRate  float64
	Violation float64
}

// Overload is the overload-protection study: a RAMSIS policy solved for one
// rate serves arrivals at 1x / 2x / 4x that rate — the mis-provisioned
// burst scenario the MDP formulation assumes away (its arrival model is the
// solved-for rate, so the policy ladder has nothing better to offer). The
// monitor stays pinned to the solved rate, isolating the admission
// controller's contribution: without shedding every query is eventually
// served but almost none inside the SLO; deadline admission sheds the
// unmeetable excess at arrival and keeps the admitted queries' deadlines
// intact, which is exactly the goodput metric's point — the fraction of
// *offered* queries answered in time.
func (h *Harness) Overload() []OverloadPoint {
	const workers, slo, solved = 8, 0.150, 300.0
	models := profile.ImageSet()
	dur := 20.0
	if h.scale() == scaleQuick {
		dur = 8
	}
	set := h.policySet(models, slo, workers, []float64{solved}, "", nil)
	est := core.NewWaitEstimator(models, workers)
	pinned := trace.Constant(solved, dur)

	h.printf("Overload protection: goodput with and without deadline shedding\n")
	h.printf("(image, SLO %.0f ms, %d workers, policy solved for %.0f QPS, monitor pinned)\n",
		slo*1000, workers, solved)
	h.printf("%-6s %-10s %10s %10s %12s\n", "mult", "admit", "goodput", "shed", "violations")
	var out []OverloadPoint
	for _, mult := range []float64{1, 2, 4} {
		offered := trace.Constant(mult*solved, dur)
		arr := trace.PoissonArrivals(offered, h.opts.Seed)
		for _, admitter := range []admit.Admitter{nil, admit.Deadline{SLO: slo, Margin: 1, Est: est}} {
			name := "none"
			if admitter != nil {
				name = admitter.Name()
			}
			sched := sim.NewRAMSIS(set, monitor.Oracle{Trace: pinned})
			e := sim.NewEngine(models, slo, workers, sim.Deterministic{}, sched, h.opts.Seed)
			e.Admit = admitter
			m := e.Run(arr)
			p := OverloadPoint{
				Mult: mult, Policy: name,
				Goodput: m.GoodputRate(), ShedRate: m.ShedRate(), Violation: m.ViolationRate(),
			}
			out = append(out, p)
			h.printf("%-6s %-10s %10.4f %10.4f %12.5f\n", fmt.Sprintf("%gx", p.Mult), p.Policy, p.Goodput, p.ShedRate, p.Violation)
		}
	}
	h.printf("\n")
	h.saveResult("overload", out)
	return out
}
