package tenant

import (
	"testing"
)

func TestRendezvousConsistent(t *testing.T) {
	s := Rendezvous{}
	depths := make([]int, 8)
	for _, tn := range []string{"alpha", "bravo", "charlie", ""} {
		first := s.Pick(tn, depths)
		for i := 0; i < 10; i++ {
			if got := s.Pick(tn, depths); got != first {
				t.Fatalf("Pick(%q) not stable: %d then %d", tn, first, got)
			}
		}
		if first < 0 || first >= len(depths) {
			t.Fatalf("Pick(%q) = %d out of range", tn, first)
		}
	}
}

func TestRendezvousSpreadsTenants(t *testing.T) {
	s := Rendezvous{}
	depths := make([]int, 4)
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[s.Pick("tenant-"+string(rune('a'+i%26))+string(rune('0'+i/26)), depths)] = true
	}
	if len(used) < len(depths) {
		t.Errorf("64 tenants landed on only %d/%d shards", len(used), len(depths))
	}
}

// TestRendezvousMinimalRemap checks the HRW property: growing the shard set
// from N to N+1 remaps roughly 1/(N+1) of tenants and never moves a tenant
// between two surviving shards.
func TestRendezvousMinimalRemap(t *testing.T) {
	s := Rendezvous{}
	before := make([]int, 8)
	after := make([]int, 9)
	moved := 0
	const total = 500
	for i := 0; i < total; i++ {
		tn := "tenant-" + string(rune('a'+i%26)) + "-" + string(rune('a'+(i/26)%26))
		b := s.Pick(tn, before)
		a := s.Pick(tn, after)
		if a != b {
			moved++
			if a != 8 {
				t.Fatalf("tenant %q moved between surviving shards %d -> %d", tn, b, a)
			}
		}
	}
	// Expect ≈ total/9 ≈ 55; allow a wide band.
	if moved == 0 || moved > total/4 {
		t.Errorf("remapped %d/%d tenants on +1 shard, want ≈ %d", moved, total, total/9)
	}
}

func TestP2CPrefersShallower(t *testing.T) {
	p := NewP2C(7)
	depths := []int{100, 100, 0, 100}
	hits := 0
	for i := 0; i < 1000; i++ {
		if p.Pick("x", depths) == 2 {
			hits++
		}
	}
	// Shard 2 is picked whenever sampled (P(sampled) = 1-C(3,2)/C(4,2) = 1/2).
	if hits < 350 {
		t.Errorf("shallow shard picked %d/1000, want ≳ 500", hits)
	}
	if got := p.Pick("x", []int{5}); got != 0 {
		t.Errorf("single-shard pick = %d", got)
	}
}

func TestNewSharder(t *testing.T) {
	for _, name := range []string{"", "hash", "rendezvous", "p2c"} {
		if _, err := NewSharder(name, 1); err != nil {
			t.Errorf("NewSharder(%q): %v", name, err)
		}
	}
	if _, err := NewSharder("ring", 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}
