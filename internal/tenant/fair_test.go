package tenant

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"ramsis/internal/admit"
)

// shedAll is an inner admitter that rejects everything.
type shedAll struct{}

func (shedAll) Admit(admit.Request) admit.Verdict { return admit.Verdict{RetryAfter: 0.5} }
func (shedAll) Name() string                      { return "shedall" }

func newFair(t *testing.T, ts []Tenant, cfg FairConfig, inner admit.Admitter) (*Registry, *FairAdmitter) {
	t.Helper()
	r, err := NewRegistry(ts)
	if err != nil {
		t.Fatal(err)
	}
	return r, NewFairAdmitter(r, inner, cfg)
}

// offer runs per-tenant deterministic arrival streams through f for dur
// modeled seconds and returns admitted (fair+borrowed) counts. rates maps
// tenant to offered QPS; arrivals are evenly spaced with a per-tenant
// phase so streams interleave.
func offer(f *FairAdmitter, rates map[string]float64, dur float64) map[string]uint64 {
	type ev struct {
		t  float64
		tn string
	}
	var evs []ev
	i := 0
	for tn, r := range rates {
		phase := float64(i) * 1e-4
		for t := phase; t < dur; t += 1 / r {
			evs = append(evs, ev{t, tn})
		}
		i++
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].tn < evs[j].tn
	})
	admitted := map[string]uint64{}
	for _, e := range evs {
		v := f.Admit(e.tn, admit.Request{Now: e.t})
		if v.Admit {
			admitted[e.tn]++
		}
	}
	return admitted
}

func TestFairAdmitsWithinShare(t *testing.T) {
	_, f := newFair(t, threeTenants(), FairConfig{}, nil)
	// Everyone offers exactly their contracted rate: nothing is shed.
	admitted := offer(f, map[string]float64{"interactive": 100, "standard": 50, "batch": 50}, 10)
	for tn, got := range admitted {
		c := f.CountsFor(tn)
		if c.OverShare != 0 {
			t.Errorf("%s: %d over-share sheds at contracted rate", tn, c.OverShare)
		}
		if got == 0 {
			t.Errorf("%s: nothing admitted", tn)
		}
	}
}

func TestFairSharesFollowWeights(t *testing.T) {
	// Capacity 100, weights 3:1, borrowing off; both tenants offer 100 QPS.
	ts := []Tenant{
		{Name: "heavy", SLOMS: 200, Weight: 3, RateQPS: 75},
		{Name: "light", SLOMS: 200, Weight: 1, RateQPS: 25},
	}
	_, f := newFair(t, ts, FairConfig{CapacityQPS: 100, NoBorrow: true, BurstSec: 0.5}, nil)
	if got := f.Share("heavy"); got != 75 {
		t.Fatalf("Share(heavy) = %v, want 75", got)
	}
	admitted := offer(f, map[string]float64{"heavy": 100, "light": 100}, 20)
	// Steady-state admitted rate ≈ share; allow the initial burst plus slack.
	for tn, share := range map[string]float64{"heavy": 75, "light": 25} {
		got := float64(admitted[tn])
		want := share * 20
		if got < want*0.9 || got > want*1.15 {
			t.Errorf("%s admitted %v, want ≈ %v (weighted share)", tn, got, want)
		}
	}
}

func TestOverloaderShedBeforeCompliantTenant(t *testing.T) {
	// The PR's core fairness claim: "standard" offers 4× its contract;
	// "interactive" and "batch" stay compliant and keep goodput ≥ 0.9.
	_, f := newFair(t, threeTenants(), FairConfig{}, nil)
	admitted := offer(f, map[string]float64{"interactive": 100, "standard": 200, "batch": 50}, 30)
	for _, tn := range []string{"interactive", "batch"} {
		c := f.CountsFor(tn)
		frac := float64(admitted[tn]) / float64(c.Offered())
		if frac < 0.9 {
			t.Errorf("compliant tenant %s admitted fraction %.3f < 0.9 (counts %+v)", tn, frac, c)
		}
	}
	over := f.CountsFor("standard")
	if over.OverShare == 0 {
		t.Error("4× tenant never shed over-share")
	}
	// The overloader still makes progress (starvation-free)...
	if admitted["standard"] == 0 {
		t.Error("4× tenant starved")
	}
	// ...but is clamped near its fair share plus the startup bursts (its
	// own bucket and the plane's both start full), not its offered rate.
	if got, limit := float64(admitted["standard"]), 50.0*30+600; got > limit {
		t.Errorf("4× tenant admitted %v, want ≲ %v (fair share + startup bursts)", got, limit)
	}
}

func TestBorrowingIsWorkConserving(t *testing.T) {
	// Only the overloader offers traffic: the plane is otherwise idle, so
	// its excess should be admitted (borrowed), not shed.
	_, f := newFair(t, threeTenants(), FairConfig{}, nil)
	admitted := offer(f, map[string]float64{"standard": 150}, 20)
	c := f.CountsFor("standard")
	if c.Borrowed == 0 {
		t.Fatalf("no borrowing on an idle plane: %+v", c)
	}
	frac := float64(admitted["standard"]) / float64(c.Offered())
	if frac < 0.95 {
		t.Errorf("idle-plane admitted fraction %.3f < 0.95 (%+v)", frac, c)
	}
	// With NoBorrow the same offered stream is clamped to the fair share.
	_, nf := newFair(t, threeTenants(), FairConfig{NoBorrow: true}, nil)
	nb := offer(nf, map[string]float64{"standard": 150}, 20)
	if nb["standard"] >= admitted["standard"] {
		t.Errorf("NoBorrow admitted %d ≥ borrow %d", nb["standard"], admitted["standard"])
	}
}

func TestBorrowReserveKeepsSlotsForFairTraffic(t *testing.T) {
	// Inner cap of 10 outstanding, reserving 6 slots for within-share
	// traffic: a borrower is cut off once 4 slots fill, while fair-share
	// admits see the full cap.
	cap := admit.Cap{Limit: 10}
	_, f := newFair(t, threeTenants(), FairConfig{BorrowReserve: 6}, cap)

	// Drain the overloader's own bucket so its next admits must borrow.
	for f.Admit("standard", admit.Request{Now: 0}).Reason == ReasonFair {
	}
	if v := f.Admit("standard", admit.Request{Now: 0, Outstanding: 3}); !v.Admit || v.Reason != ReasonBorrowed {
		t.Fatalf("borrow below reserve boundary: %+v", v)
	}
	if v := f.Admit("standard", admit.Request{Now: 0, Outstanding: 4}); v.Admit {
		t.Fatalf("borrow at reserve boundary admitted: %+v", v)
	}
	// A within-share tenant still has the reserved slots.
	if v := f.Admit("interactive", admit.Request{Now: 0, Outstanding: 9}); !v.Admit || v.Reason != ReasonFair {
		t.Fatalf("fair admit inside reserve: %+v", v)
	}
	if v := f.Admit("interactive", admit.Request{Now: 0, Outstanding: 10}); v.Admit {
		t.Fatalf("fair admit above inner cap: %+v", v)
	}
}

func TestInnerAdmitterStillGates(t *testing.T) {
	_, f := newFair(t, threeTenants(), FairConfig{}, shedAll{})
	v := f.Admit("interactive", admit.Request{Now: 0})
	if v.Admit || v.Reason != ReasonInner {
		t.Errorf("verdict %+v, want inner shed", v)
	}
	if v.RetryAfter != 0.5 {
		t.Errorf("inner RetryAfter not propagated: %v", v.RetryAfter)
	}
	if c := f.CountsFor("interactive"); c.InnerShed != 1 {
		t.Errorf("counts %+v, want InnerShed 1", c)
	}
}

func TestUnknownTenantShed(t *testing.T) {
	_, f := newFair(t, threeTenants(), FairConfig{}, nil)
	v := f.Admit("ghost", admit.Request{Now: 0})
	if v.Admit || v.Reason != ReasonUnknown {
		t.Errorf("verdict %+v, want unknown_tenant shed", v)
	}
}

func TestEmptyNameUsesDefaultTenant(t *testing.T) {
	r, err := Single(DefaultName, 0.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFairAdmitter(r, nil, FairConfig{})
	if v := f.Admit("", admit.Request{Now: 0}); !v.Admit || v.Tenant != DefaultName {
		t.Errorf("verdict %+v, want default-tenant admit", v)
	}
}

// TestStarvationFreedomProperty is the satellite property test: under 4×
// aggregate overload with random positive weights, every tenant keeps
// making progress — at least half of what it could possibly admit (the
// lesser of its offered rate and its fair share), never zero.
func TestStarvationFreedomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		ts := make([]Tenant, n)
		rates := map[string]float64{}
		names := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
		for i := range ts {
			ts[i] = Tenant{
				Name:    names[i],
				SLOMS:   100 + rng.Float64()*900,
				Weight:  0.1 + rng.Float64()*9.9, // positive, spans 2 orders
				RateQPS: 5 + rng.Float64()*45,
			}
			rates[ts[i].Name] = ts[i].RateQPS * 4 // everyone overloads 4×
		}
		_, f := newFair(t, ts, FairConfig{}, nil)
		dur := 10.0
		admitted := offer(f, rates, dur)
		cap := f.capacity()
		var totW float64
		for _, tn := range ts {
			totW += tn.Weight
		}
		for _, tn := range ts {
			share := cap * tn.Weight / totW
			// Own-bucket refill guarantees the fair share regardless of the
			// others, but a tenant can never admit more than it offers.
			want := math.Min(share, rates[tn.Name]) * dur
			got := float64(admitted[tn.Name])
			if got < 0.5*want {
				t.Errorf("trial %d: tenant %s (w=%.2f, rate=%.1f) admitted %v < half of attainable %v",
					trial, tn.Name, tn.Weight, tn.RateQPS, got, want)
			}
		}
	}
}

func TestRebuildOnReloadPreservesCounts(t *testing.T) {
	reg, f := newFair(t, threeTenants(), FairConfig{}, nil)
	for i := 0; i < 10; i++ {
		f.Admit("interactive", admit.Request{Now: float64(i) * 0.001})
	}
	before := f.CountsFor("interactive")
	if before.Admitted == 0 {
		t.Fatal("no admits before reload")
	}
	ts := threeTenants()
	ts[0].Weight = 10
	ts = append(ts, Tenant{Name: "newcomer", SLOMS: 300, Weight: 1, RateQPS: 20})
	if err := reg.Reload(ts); err != nil {
		t.Fatal(err)
	}
	// Next admit notices the new generation.
	v := f.Admit("newcomer", admit.Request{Now: 0.1})
	if !v.Admit {
		t.Errorf("newcomer's first burst shed after reload: %+v", v)
	}
	after := f.CountsFor("interactive")
	if after.Admitted != before.Admitted {
		t.Errorf("reload dropped counters: %d -> %d", before.Admitted, after.Admitted)
	}
	if got := f.Share("interactive"); got <= f.Share("standard") {
		t.Errorf("reweighted share not applied: interactive %v ≤ standard %v", got, f.Share("standard"))
	}
}

func TestFairName(t *testing.T) {
	_, f := newFair(t, threeTenants(), FairConfig{}, admit.Cap{Limit: 4})
	if got := f.Name(); got != "fair+cap" {
		t.Errorf("Name = %q", got)
	}
	if s := f.String(); !strings.Contains(s, "capacity 200") {
		t.Errorf("String = %q", s)
	}
}

// TestConcurrentAdmitAndReload hammers Admit from many goroutines while the
// registry reloads underneath — the -race half of the satellite test.
func TestConcurrentAdmitAndReload(t *testing.T) {
	reg, f := newFair(t, threeTenants(), FairConfig{}, nil)
	var admitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		admitters.Add(1)
		go func(g int) {
			defer admitters.Done()
			names := []string{"interactive", "standard", "batch", "ghost"}
			for i := 0; i < 5000; i++ {
				f.Admit(names[(g+i)%len(names)], admit.Request{Now: float64(i) * 1e-4})
			}
		}(g)
	}
	stop := make(chan struct{})
	reloaderDone := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				reloaderDone <- nil
				return
			default:
			}
			ts := threeTenants()
			ts[i%len(ts)].Weight = float64(1 + i%7)
			if err := reg.Reload(ts); err != nil {
				reloaderDone <- err
				return
			}
		}
	}()
	admitters.Wait()
	close(stop)
	if err := <-reloaderDone; err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, c := range f.AllCounts() {
		total += c.Offered()
	}
	if total == 0 {
		t.Error("no decisions recorded")
	}
}
