package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: ramsis
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkValueIteration/slice/sequential         	       5	 432033220 ns/op	   40920 B/op	       7 allocs/op
BenchmarkValueIteration/slice/sequential         	       5	 430000000 ns/op	   40920 B/op	       7 allocs/op
BenchmarkValueIteration/compiled/sequential-8    	       9	 241024333 ns/op	  417688 B/op	       8 allocs/op
BenchmarkSimulatorThroughput   	      10	 12345678 ns/op	         20000 queries/op	 1234 B/op	       2 allocs/op
PASS
ok  	ramsis	30.263s
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "ramsis" || rep.CPU == "" {
		t.Errorf("header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3 (repeated runs must merge)", len(rep.Benchmarks))
	}
	slice := rep.Benchmarks[0]
	if slice.Name != "BenchmarkValueIteration/slice/sequential" || len(slice.Runs) != 2 {
		t.Errorf("merge failed: %+v", slice)
	}
	if slice.BestNsPerOp != 430000000 {
		t.Errorf("best ns/op = %v, want the min across runs", slice.BestNsPerOp)
	}
	if got := rep.Benchmarks[1].Name; got != "BenchmarkValueIteration/compiled/sequential" {
		t.Errorf("-procs suffix not stripped: %q", got)
	}
	sim := rep.Benchmarks[2]
	if sim.Runs[0].Metrics["queries/op"] != 20000 || sim.Runs[0].Metrics["allocs/op"] != 2 {
		t.Errorf("custom metrics lost: %+v", sim.Runs[0].Metrics)
	}
}

func TestParseRejectsGarbageValue(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX\t5\tabc ns/op\n")); err == nil {
		t.Error("garbage value accepted")
	}
}
