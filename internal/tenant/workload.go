package tenant

import (
	"sort"

	"ramsis/internal/trace"
)

// Arrival is one labeled arrival in a multi-tenant workload.
type Arrival struct {
	T      float64 // modeled seconds
	Tenant string
}

// Arrivals generates a multi-tenant Poisson workload: each tenant emits an
// independent Poisson process at its contracted rate for dur seconds
// (seeded per tenant so adding a tenant never perturbs another's stream),
// merged into one time-ordered slice.
func Arrivals(ts []Tenant, dur float64, seed int64) []Arrival {
	return ArrivalsScaled(ts, nil, dur, seed)
}

// ArrivalsScaled is Arrivals with per-tenant rate multipliers — the
// overload experiment's knob: scale one tenant to 4× its contract and
// watch fairness hold for the rest. A missing entry (or nil map) means 1×.
func ArrivalsScaled(ts []Tenant, mult map[string]float64, dur float64, seed int64) []Arrival {
	var out []Arrival
	for i, t := range ts {
		rate := t.RateQPS
		if m, ok := mult[t.Name]; ok {
			rate *= m
		}
		if rate <= 0 {
			continue
		}
		times := trace.PoissonArrivals(trace.Constant(rate, dur), seed+int64(i)*7919)
		for _, at := range times {
			out = append(out, Arrival{T: at, Tenant: t.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
