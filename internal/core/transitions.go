package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ramsis/internal/dist"
	"ramsis/internal/mdp"
	"ramsis/internal/profile"
)

// This file derives the worker-MDP transition probabilities of §4.4.
//
// The paper expresses P_a(s, s') as a quadruple sum of PF terms over four
// non-overlapping intervals (A: queue build-up before the decision; B/C/D:
// partitioning the service time around the first worker arrival). Computed
// literally that sum is O(n'·K³) per matrix entry. We compute the same
// distribution through an equivalent renewal-process formulation:
//
//  1. Interval A (the denominator of Eq. 2) is exactly a posterior over the
//     round-robin *phase* r = k_A mod K: given state (n, T_j), the central
//     queue saw k_A ∈ [(n-1)K, nK-1] arrivals during T_A = SLO − T_j, and
//     each residue r appears exactly once, so P(r) ∝ PF((n-1)K + r, T_A).
//  2. Given phase r, the worker's next query arrives after K − r more
//     central arrivals; the density of that epoch is the central process's
//     (K−r)-th arrival density (Erlang(K−r, λ) for Poisson arrivals).
//     Mixing over the phase posterior yields a first-arrival density f̃(t).
//  3. Intervals B, C, D (the numerator of Eq. 2) collapse to the statement:
//     the first worker arrival lands at t in slack bucket
//     T_{j'} = SLO − (l − t), and the remaining service window (t, l]
//     contributes n' − 1 further worker arrivals, i.e. its central-arrival
//     count lies in [(n'−1)K, n'K − 1]. By independent increments these
//     factor, so
//
//     P(n', T_{j'}) = ∫_bucket f̃(t) · P[N(l−t) ∈ [(n'−1)K, n'K−1]] dt,
//
//     evaluated by midpoint quadrature on a fine fixed grid.
//
// Case 1 (empty queue, Eq. 1) and case 3 (overflow complement, Eq. 3) are
// implemented exactly as written. Queue-aware balancers reuse the same
// machinery with a per-state conditional Poisson process and an effective
// K of 1: Appendix I's rate for shortest-queue-first, and the Mitzenmacher
// doubly-exponential tail for power-of-two-choices.

// builder precomputes the shared probability tables and assembles the
// sparse MDP in parallel across states.
type builder struct {
	sp       *space
	cells    int
	delta    float64
	tmax     float64
	deadline time.Time
	aborted  atomic.Bool

	// Read-only after prepare(): probability tables keyed by process rate
	// (round-robin uses one process; queue-aware balancers use one per
	// queue-length regime) and action latency.
	fk  map[float64][][]float64  // rate -> [cell][k-1] k-th-arrival pdf
	h   map[tableKey][]float64   // (rate, latency) -> [cell*N_w + j-1]
	cdf map[tableKey][]float64   // (rate, latency) -> CDF table over counts
	sqf map[float64]dist.Process // SQF rate -> process
}

type tableKey struct {
	rate float64
	lat  float64
}

func newBuilder(sp *space) *builder {
	cfg := sp.cfg
	b := &builder{
		sp:    sp,
		cells: cfg.FineCells,
		fk:    make(map[float64][][]float64),
		h:     make(map[tableKey][]float64),
		cdf:   make(map[tableKey][]float64),
		sqf:   make(map[float64]dist.Process),
	}
	// The longest action latency bounds the quadrature horizon: valid
	// actions are within the SLO, and the forced action runs the fastest
	// model at up to N_w queries.
	b.tmax = cfg.SLO
	fast := sp.models.Profiles[sp.fastestModel()]
	if l := fast.BatchLatency(min(cfg.MaxQueue, fast.MaxBatch())); l > b.tmax {
		b.tmax = l
	}
	b.delta = b.tmax / float64(b.cells)
	if cfg.Timeout > 0 {
		b.deadline = time.Now().Add(cfg.Timeout)
	}
	return b
}

// expired reports (and latches) deadline expiry.
func (b *builder) expired() bool {
	if b.aborted.Load() {
		return true
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.aborted.Store(true)
		return true
	}
	return false
}

// procFor returns the worker-level arrival process and effective fan-out K
// for transitions leaving queue length n. Round-robin sees the central
// process thinned by K; queue-aware balancers (shortest-queue-first,
// power-of-two-choices) see a conditional Poisson process whose rate
// depends on the queue state, with no further thinning.
func (b *builder) procFor(n int) (dist.Process, int) {
	cfg := b.sp.cfg
	if cfg.Balancing == RoundRobin {
		return cfg.Arrival, cfg.Workers
	}
	rate := conditionalRate(cfg, b.sp.models, n)
	p, ok := b.sqf[rate]
	if !ok {
		p = dist.NewPoisson(rate)
		b.sqf[rate] = p
	}
	return p, 1
}

// actionLatencies enumerates every distinct action latency (valid and
// forced) the MDP can take.
func (b *builder) actionLatencies() []float64 {
	seen := map[float64]bool{}
	for _, p := range b.sp.models.Profiles {
		maxB := min(b.sp.cfg.MaxQueue, p.MaxBatch())
		for bs := 1; bs <= maxB; bs++ {
			seen[p.BatchLatency(bs)] = true
		}
	}
	lats := make([]float64, 0, len(seen))
	for l := range seen {
		lats = append(lats, l)
	}
	sort.Float64s(lats)
	return lats
}

// prepare fills the fk, h, and cdf tables, parallelized across latencies.
func (b *builder) prepare() {
	cfg := b.sp.cfg
	type procK struct {
		proc dist.Process
		k    int
	}
	procs := map[float64]procK{}
	if cfg.Balancing == RoundRobin {
		procs[cfg.Arrival.Rate()] = procK{cfg.Arrival, cfg.Workers}
	} else {
		for n := 0; n <= cfg.MaxQueue; n++ {
			p, k := b.procFor(n)
			procs[p.Rate()] = procK{p, k}
		}
	}
	lats := b.actionLatencies()
	type job struct {
		rate float64
		pk   procK
		lat  float64
	}
	var jobs []job
	for rate, pk := range procs {
		b.fk[rate] = dist.KthArrivalTable(pk.proc, pk.k, b.cells, b.delta)
		for _, l := range lats {
			jobs = append(jobs, job{rate, pk, l})
		}
	}
	var mu sync.Mutex
	parallelFor(len(jobs), func(i int) {
		if b.expired() {
			return
		}
		j := jobs[i]
		h := b.buildHTable(j.pk.proc, j.pk.k, j.lat)
		c := b.buildCDFTable(j.pk.proc, j.lat)
		mu.Lock()
		b.h[tableKey{j.rate, j.lat}] = h
		b.cdf[tableKey{j.rate, j.lat}] = c
		mu.Unlock()
	})
}

// buildHTable tabulates, for each fine cell g with midpoint t_g < l, the
// probability that the remaining window (t_g, l] sees j−1 further worker
// arrivals: P[N(l − t_g) ∈ [(j−1)K, jK−1]] for j = 1..N_w, flattened as
// [g·N_w + (j−1)].
func (b *builder) buildHTable(proc dist.Process, k int, l float64) []float64 {
	nw := b.sp.cfg.MaxQueue
	gmax := b.cellsFor(l)
	out := make([]float64, gmax*nw)
	for g := 0; g < gmax; g++ {
		x := l - (float64(g)+0.5)*b.delta
		if x < 0 {
			x = 0
		}
		prev := 0.0 // CDF((j-1)K - 1, x), starting at CDF(-1) = 0
		for j := 1; j <= nw; j++ {
			cur := proc.CDF(j*k-1, x)
			out[g*nw+j-1] = cur - prev
			prev = cur
		}
	}
	return out
}

// buildCDFTable tabulates proc.CDF(k, l) for counts k = 0..(N_w+2)·K−1,
// shared by the no-arrival case and variable-batching count sums.
func (b *builder) buildCDFTable(proc dist.Process, l float64) []float64 {
	_, k := b.procForRate(proc)
	kmax := (b.sp.cfg.MaxQueue + 2) * k
	out := make([]float64, kmax)
	for i := 0; i < kmax; i++ {
		out[i] = proc.CDF(i, l)
	}
	return out
}

// procForRate recovers the effective K for a process (round-robin: the
// configured worker count; conditional queue-aware processes: 1).
func (b *builder) procForRate(proc dist.Process) (dist.Process, int) {
	if b.sp.cfg.Balancing == RoundRobin {
		return proc, b.sp.cfg.Workers
	}
	return proc, 1
}

// cellsFor returns the number of fine cells whose start lies before l.
func (b *builder) cellsFor(l float64) int {
	g := int(math.Ceil(l / b.delta))
	if g > b.cells {
		g = b.cells
	}
	return g
}

// phasePosterior computes P(r) ∝ PF((n−1)K + r, T_A) for r = 0..K−1 — the
// interval-A term of Eq. 2. For Poisson arrivals it works in log space to
// survive large means; on total underflow (an effectively unreachable
// state) it falls back to a uniform phase.
func phasePosterior(proc dist.Process, k, n int, ta float64) []float64 {
	pr := make([]float64, k)
	if ta <= 0 {
		pr[0] = 1
		return pr
	}
	base := (n - 1) * k
	if p, ok := proc.(dist.Poisson); ok {
		mu := p.Lambda * ta
		logs := make([]float64, k)
		maxLog := math.Inf(-1)
		for r := 0; r < k; r++ {
			kk := float64(base + r)
			lg, _ := math.Lgamma(kk + 1)
			logs[r] = kk*math.Log(mu) - mu - lg
			if logs[r] > maxLog {
				maxLog = logs[r]
			}
		}
		if math.IsInf(maxLog, -1) || math.IsNaN(maxLog) {
			for r := range pr {
				pr[r] = 1 / float64(k)
			}
			return pr
		}
		sum := 0.0
		for r := 0; r < k; r++ {
			pr[r] = math.Exp(logs[r] - maxLog)
			sum += pr[r]
		}
		for r := range pr {
			pr[r] /= sum
		}
		return pr
	}
	sum := 0.0
	for r := 0; r < k; r++ {
		pr[r] = proc.PF(base+r, ta)
		sum += pr[r]
	}
	if sum <= 0 {
		for r := range pr {
			pr[r] = 1 / float64(k)
		}
		return pr
	}
	for r := range pr {
		pr[r] /= sum
	}
	return pr
}

// firstArrivalDensity mixes the k-th-arrival densities over the phase
// posterior: f̃(t_g) = Σ_r P(r)·f_{K−r}(t_g).
func (b *builder) firstArrivalDensity(rate float64, k int, pr []float64) []float64 {
	fk := b.fk[rate]
	out := make([]float64, b.cells)
	for g := 0; g < b.cells; g++ {
		row := fk[g]
		s := 0.0
		for r := 0; r < k; r++ {
			if pr[r] == 0 {
				continue
			}
			s += pr[r] * row[k-r-1]
		}
		out[g] = s
	}
	return out
}

// stateScratch is per-goroutine reusable accumulation space.
type stateScratch struct {
	probs []float64
	dirty []int32
}

func newScratch(n int) *stateScratch {
	return &stateScratch{probs: make([]float64, n)}
}

func (sc *stateScratch) add(s int32, p float64) {
	if sc.probs[s] == 0 && p != 0 {
		sc.dirty = append(sc.dirty, s)
	}
	sc.probs[s] += p
}

// emit converts accumulated probabilities into sorted sparse transitions,
// folding entries below the floor (and any residual mass) into the overflow
// state per Eq. 3, then normalizing.
func (sc *stateScratch) emit(overflow int32, floor float64) []mdp.Transition {
	total := 0.0
	for _, s := range sc.dirty {
		total += sc.probs[s]
	}
	if total > 1 {
		inv := 1 / total
		for _, s := range sc.dirty {
			sc.probs[s] *= inv
		}
		total = 1
	}
	if rem := 1 - total; rem > 0 {
		sc.add(overflow, rem)
	}
	kept := 0.0
	out := make([]mdp.Transition, 0, len(sc.dirty))
	for _, s := range sc.dirty {
		p := sc.probs[s]
		if p >= floor || s == overflow {
			out = append(out, mdp.Transition{Next: s, P: p})
			kept += p
		}
	}
	// Fold pruned mass into overflow (conservative) and renormalize.
	if kept < 1 {
		for i := range out {
			if out[i].Next == overflow {
				out[i].P += 1 - kept
				kept = 1
				break
			}
		}
		if kept < 1 {
			out = append(out, mdp.Transition{Next: overflow, P: 1 - kept})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Next < out[j].Next })
	// Reset scratch.
	for _, s := range sc.dirty {
		sc.probs[s] = 0
	}
	sc.dirty = sc.dirty[:0]
	return out
}

// buildMDP assembles the full sparse MDP.
func (b *builder) buildMDP() *mdp.MDP {
	b.prepare()
	sp := b.sp
	m := &mdp.MDP{Actions: make([][]mdp.Action, sp.numStates())}
	parallelForScratch(sp.numStates(), func() *stateScratch { return newScratch(sp.numStates()) },
		func(s int, sc *stateScratch) {
			if b.expired() {
				return
			}
			acts := sp.actionsForState(s)
			out := make([]mdp.Action, len(acts))
			var (
				pr []float64
				ft []float64
			)
			for ai, a := range acts {
				out[ai] = mdp.Action{
					Label:  ai,
					Reward: sp.reward(a),
				}
				if a.Model == arrivalAction {
					// Case 1 (Eq. 1): â moves (0, ·) to (1, SLO) surely.
					top := sp.bucketOf(sp.cfg.SLO)
					out[ai].Transitions = []mdp.Transition{{Next: int32(sp.index(1, top)), P: 1}}
					continue
				}
				if pr == nil {
					// Phase posterior and first-arrival density depend on
					// the state only; share them across its actions.
					n, tj := b.stateParams(s)
					proc, k := b.procFor(n)
					pr = phasePosterior(proc, k, n, sp.cfg.SLO-tj)
					ft = b.firstArrivalDensity(proc.Rate(), k, pr)
				}
				out[ai].Transitions = b.actionTransitions(s, a, sc, pr, ft)
			}
			m.Actions[s] = out
		})
	return m
}

// stateParams returns (n, T_j) for a non-empty state, with the overflow
// state behaving as (N_w, 0) per §4.2.3.
func (b *builder) stateParams(s int) (int, float64) {
	if s == b.sp.overflowState() {
		return b.sp.cfg.MaxQueue, 0
	}
	n, j := b.sp.decompose(s)
	return n, b.sp.grid[j]
}

// actionTransitions computes the successor distribution of taking action a
// in state s (case 2 of §4.4, plus the overflow complement of case 3).
func (b *builder) actionTransitions(s int, a actionSpec, sc *stateScratch, pr, ft []float64) []mdp.Transition {
	sp := b.sp
	n, tj := b.stateParams(s)
	proc, k := b.procFor(n)
	l := a.Latency
	key := tableKey{proc.Rate(), l}
	cdfT := b.cdf[key]

	if a.Batch < n {
		b.variableTransitions(sc, n, tj, a, pr, cdfT, k)
	} else {
		b.fullDrainTransitions(sc, a, pr, ft, cdfT, b.h[key], k)
	}
	return sc.emit(int32(sp.overflowState()), sp.cfg.ProbFloor)
}

// fullDrainTransitions handles b == n (maximal batching, and the b = n case
// of variable batching): the queue empties at the decision, so the next
// state is determined entirely by arrivals during the service time l.
func (b *builder) fullDrainTransitions(sc *stateScratch, a actionSpec, pr, ft []float64, cdfT, hT []float64, k int) {
	sp := b.sp
	nw := sp.cfg.MaxQueue
	l := a.Latency

	// No worker arrival during service: next state is the empty queue.
	p0 := 0.0
	for r := 0; r < k; r++ {
		if pr[r] == 0 {
			continue
		}
		p0 += pr[r] * cdfT[k-r-1]
	}
	sc.add(int32(sp.emptyState()), p0)

	gmax := b.cellsFor(l)
	for g := 0; g < gmax; g++ {
		f := ft[g]
		if f < 1e-300 {
			continue
		}
		start := float64(g) * b.delta
		width := b.delta
		if start+width > l {
			width = l - start
		}
		tg := (float64(g) + 0.5) * b.delta
		slack := sp.cfg.SLO - l + tg
		c := sp.bucketOf(slack)
		mass := f * width
		base := g * nw
		for j := 1; j <= nw; j++ {
			p := mass * hT[base+j-1]
			if p > 0 {
				sc.add(int32(sp.index(j, c)), p)
			}
		}
		// j > N_w falls to the overflow complement in emit().
	}
}

// variableTransitions handles b < n under variable batching: n−b queries
// remain, whose earliest is worker arrival #b within interval A (central
// arrival #bK). Its position given k_A total interval-A arrivals is a
// uniform order statistic (a Beta law evaluated via the regularized
// incomplete beta); arrivals during service stack behind it without moving
// the earliest deadline. The phase-mixture over k_A is collapsed to its
// posterior mean, which is exact for K = 1 and accurate to O(1/n) otherwise
// (the paper leaves this derivation as "similar reasoning", §4.4).
func (b *builder) variableTransitions(sc *stateScratch, n int, tj float64, a actionSpec, pr []float64, cdfT []float64, k int) {
	sp := b.sp
	nw := sp.cfg.MaxQueue
	l := a.Latency
	rem := n - a.Batch
	ta := sp.cfg.SLO - tj

	// Posterior-mean total interval-A central arrivals.
	kaBar := 0.0
	for r, p := range pr {
		kaBar += p * float64((n-1)*k+r)
	}
	target := float64(a.Batch * k) // central arrival index of remaining-earliest query

	// Slack bucket distribution of the remaining-earliest query:
	// slack' = x + T_j − l for x its interval-A position.
	grid := sp.grid
	bucketP := make([]float64, len(grid))
	if ta <= 0 || kaBar < target {
		// Degenerate window: the query sits at the window start.
		bucketP[sp.bucketOf(tj-l)] = 1
	} else {
		cdfAt := func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			if x >= ta {
				return 1
			}
			// P[arrival #target <= x] = P[Bin(kaBar, x/ta) >= target].
			return dist.RegIncBeta(target, kaBar-target+1, x/ta)
		}
		prev := 0.0
		for c := 0; c < len(grid); c++ {
			var hi float64
			if c == len(grid)-1 {
				hi = 1
			} else {
				// slack' < grid[c+1]  ⇔  x < grid[c+1] − T_j + l.
				hi = cdfAt(grid[c+1] - tj + l)
			}
			bucketP[c] = hi - prev
			prev = hi
		}
	}

	// Count distribution of worker arrivals during service, mixed over the
	// phase: C(i) = Σ_r P(r)·P[N(l) ∈ [iK−r, (i+1)K−1−r]].
	imax := nw - rem
	for i := 0; i <= imax; i++ {
		ci := 0.0
		for r, p := range pr {
			if p == 0 {
				continue
			}
			hiIdx := (i+1)*k - 1 - r
			loIdx := i*k - r - 1
			var hi, lo float64
			if hiIdx >= 0 {
				hi = cdfT[hiIdx]
			}
			if loIdx >= 0 {
				lo = cdfT[loIdx]
			}
			ci += p * (hi - lo)
		}
		if ci <= 0 {
			continue
		}
		np := rem + i
		for c, bp := range bucketP {
			if p := ci * bp; p > 0 {
				sc.add(int32(sp.index(np, c)), p)
			}
		}
	}
	// i > imax overflows; handled by the complement in emit().
}

// conditionalRate dispatches to the queue-state-conditioned per-worker
// arrival rate of the configured queue-aware balancer.
func conditionalRate(cfg Config, models profile.Set, n int) float64 {
	if cfg.Balancing == PowerOfTwoChoices {
		return p2cRate(cfg, models, n)
	}
	return sqfRate(cfg, models, n)
}

// effectiveServiceRate derives the Appendix I service rate μ: the appendix
// picks the slowest (batch-1 latency) Pareto-front model that can meet the
// per-worker load within SLO/2; μ is its effective per-query service rate,
// so ρ = (λ/K)/μ <= 1 by construction. Since the formula needs a service
// *rate* and the appendix defines μ through the largest l_w(m, 1), we take
// μ = 1/l_w(m, 1), the standard reading of [18].
func effectiveServiceRate(cfg Config, models profile.Set) float64 {
	perWorker := cfg.Arrival.Rate() / float64(cfg.Workers)
	var chosen *profile.Profile
	for i := range models.Profiles {
		p := &models.Profiles[i]
		if p.ThroughputWithin(cfg.SLO/2) >= perWorker {
			if chosen == nil || p.BatchLatency(1) > chosen.BatchLatency(1) {
				chosen = p
			}
		}
	}
	if chosen == nil {
		// No model meets the load: conservatively use the fastest model.
		f := models.Fastest()
		chosen = &f
	}
	mu := chosen.ThroughputWithin(cfg.SLO / 2)
	if mu <= 0 {
		mu = chosen.Throughput()
	}
	return mu
}

// clampRate keeps a conditional rate physical: no worker attracts more
// than its uniform share, and a vanished rate floors at a tiny positive
// value so the conditional process stays well-defined.
func clampRate(rate, perWorker float64) float64 {
	if rate > perWorker {
		rate = perWorker
	}
	if !(rate > 0) || math.IsNaN(rate) {
		rate = perWorker * 1e-9
	}
	return rate
}

// sqfRate implements the Appendix I conditional arrival rate λ_w(n) for
// shortest-queue-first balancing: λ/K for n ≤ 2 and ρ^K·μ for n ≥ 3, where
// ρ = λ/(K·μ) is the per-worker utilization.
func sqfRate(cfg Config, models profile.Set, n int) float64 {
	perWorker := cfg.Arrival.Rate() / float64(cfg.Workers)
	if n <= 2 {
		return perWorker
	}
	mu := effectiveServiceRate(cfg, models)
	rho := perWorker / mu
	return clampRate(math.Pow(rho, float64(cfg.Workers))*mu, perWorker)
}

// p2cRate is the power-of-two-choices analogue of sqfRate. Mitzenmacher's
// supermarket model gives P[queue length >= i] ≈ ρ^(2^i − 1) in
// equilibrium, a doubly-exponential tail; a worker already holding n
// queries keeps receiving arrivals only while both sampled queues are at
// least that long, so its conditional rate decays with the same tail:
// λ/K for n ≤ 2 (matching the Appendix I small-queue regime, where the
// balancer cannot distinguish workers) and (λ/K)·ρ^(2^(n−1) − 1) beyond.
// This lands between round-robin's uniform split and SQF's ρ^K cutoff,
// which is exactly P2C's behaviour.
func p2cRate(cfg Config, models profile.Set, n int) float64 {
	perWorker := cfg.Arrival.Rate() / float64(cfg.Workers)
	if n <= 2 || cfg.Workers < 2 {
		return perWorker
	}
	mu := effectiveServiceRate(cfg, models)
	rho := perWorker / mu
	if rho > 1 {
		rho = 1
	}
	exp := math.Pow(2, float64(n-1)) - 1
	if exp > 512 {
		// ρ^exp underflows far before this; clamp so Pow stays finite and
		// every deeper queue state shares one floored rate (keeping the
		// number of distinct probability tables bounded).
		exp = 512
	}
	return clampRate(perWorker*math.Pow(rho, exp), perWorker)
}

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS workers.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// parallelForScratch is parallelFor with one scratch value per worker.
func parallelForScratch(n int, mk func() *stateScratch, fn func(i int, sc *stateScratch)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := mk()
		for i := 0; i < n; i++ {
			fn(i, sc)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := mk()
			for i := range next {
				fn(i, sc)
			}
		}()
	}
	wg.Wait()
}
