package lb

import (
	"fmt"
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	b := NewRoundRobin()
	lens := []int{0, 0, 0}
	for i := 0; i < 9; i++ {
		if got, want := b.Pick(lens, nil), i%3; got != want {
			t.Fatalf("pick %d = %d, want %d", i, got, want)
		}
	}
}

func TestRoundRobinSkipsUnhealthy(t *testing.T) {
	b := NewRoundRobin()
	lens := []int{0, 0, 0}
	healthy := []bool{true, false, true}
	counts := make([]int, 3)
	for i := 0; i < 12; i++ {
		counts[b.Pick(lens, healthy)]++
	}
	if counts[1] != 0 {
		t.Errorf("unhealthy worker picked %d times", counts[1])
	}
	if counts[0] != 6 || counts[2] != 6 {
		t.Errorf("healthy split %v, want even", counts)
	}
}

func TestJSQPicksShortest(t *testing.T) {
	b := NewJoinShortestQueue()
	if got := b.Pick([]int{3, 1, 2}, nil); got != 1 {
		t.Errorf("pick = %d, want 1", got)
	}
	// Ties break to the lowest index, matching the simulator's original
	// SQF scan.
	if got := b.Pick([]int{2, 1, 1}, nil); got != 1 {
		t.Errorf("tie pick = %d, want 1", got)
	}
	// The shortest queue is skipped when unhealthy.
	if got := b.Pick([]int{3, 1, 2}, []bool{true, false, true}); got != 2 {
		t.Errorf("masked pick = %d, want 2", got)
	}
}

func TestP2CPrefersShorterQueues(t *testing.T) {
	b := NewPowerOfTwoChoices(1)
	lens := []int{10, 0, 10, 10}
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[b.Pick(lens, nil)]++
	}
	// Worker 1 wins every pair it appears in: P(appear) = 1 - C(3,2)/C(4,2)
	// = 1/2, so it should take about half the traffic and strictly more
	// than any equal-length worker.
	if counts[1] < 120 {
		t.Errorf("short queue picked only %d/400", counts[1])
	}
	for w := 0; w < 4; w++ {
		if w != 1 && counts[w] >= counts[1] {
			t.Errorf("worker %d (len 10) picked %d >= short worker's %d", w, counts[w], counts[1])
		}
	}
}

func TestP2CRespectsHealthMask(t *testing.T) {
	b := NewPowerOfTwoChoices(7)
	lens := []int{0, 0, 0, 0}
	healthy := []bool{false, true, false, true}
	for i := 0; i < 200; i++ {
		if w := b.Pick(lens, healthy); w != 1 && w != 3 {
			t.Fatalf("picked unhealthy worker %d", w)
		}
	}
}

func TestAllUnhealthyFallsBack(t *testing.T) {
	lens := []int{1, 2}
	none := []bool{false, false}
	for _, b := range []Balancer{NewRoundRobin(), NewJoinShortestQueue(), NewPowerOfTwoChoices(1)} {
		if w := b.Pick(lens, none); w < 0 || w >= len(lens) {
			t.Errorf("%s: all-unhealthy pick = %d, want in-range fallback", b.Name(), w)
		}
	}
}

func TestPickEmpty(t *testing.T) {
	for _, b := range []Balancer{NewRoundRobin(), NewJoinShortestQueue(), NewPowerOfTwoChoices(1)} {
		if w := b.Pick(nil, nil); w != -1 {
			t.Errorf("%s: empty pick = %d, want -1", b.Name(), w)
		}
	}
}

func TestSingleWorker(t *testing.T) {
	for _, b := range []Balancer{NewRoundRobin(), NewJoinShortestQueue(), NewPowerOfTwoChoices(1)} {
		for i := 0; i < 3; i++ {
			if w := b.Pick([]int{5}, nil); w != 0 {
				t.Errorf("%s: single-worker pick = %d", b.Name(), w)
			}
		}
	}
}

func TestNewFactory(t *testing.T) {
	for _, c := range []struct{ arg, want string }{
		{"", "rr"}, {"rr", "rr"}, {"round-robin", "rr"},
		{"jsq", "jsq"}, {"sqf", "jsq"},
		{"p2c", "p2c"}, {"power-of-two", "p2c"},
	} {
		b, err := New(c.arg, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", c.arg, err)
		}
		if b.Name() != c.want {
			t.Errorf("New(%q).Name() = %s, want %s", c.arg, b.Name(), c.want)
		}
	}
	if _, err := New("bogus", 1); err == nil {
		t.Error("unknown strategy accepted")
	}
	if len(Strategies()) != 3 {
		t.Errorf("Strategies() = %v", Strategies())
	}
}

func TestBalancersConcurrentUse(t *testing.T) {
	// Exercised under -race in the verify path: concurrent Picks must not
	// race on internal state.
	lens := make([]int, 16)
	healthy := make([]bool, 16)
	for i := range healthy {
		healthy[i] = i%3 != 0
	}
	for _, b := range []Balancer{NewRoundRobin(), NewJoinShortestQueue(), NewPowerOfTwoChoices(1)} {
		done := make(chan struct{})
		for g := 0; g < 4; g++ {
			go func() {
				defer func() { done <- struct{}{} }()
				for i := 0; i < 500; i++ {
					if w := b.Pick(lens, healthy); w < 0 || w >= 16 {
						panic(fmt.Sprintf("%s: out-of-range pick %d", b.Name(), w))
					}
				}
			}()
		}
		for g := 0; g < 4; g++ {
			<-done
		}
	}
}
