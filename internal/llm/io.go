package llm

import (
	"encoding/json"
	"fmt"
	"os"

	"ramsis/internal/profile"
)

// setFile is the llm kind's single-file wire form, sharing the kinded
// header with profile's scalar format so each loader can reject the other
// kind with a pointed error instead of misparsing coefficients as latency
// tables.
type setFile struct {
	Kind   string      `json:"kind"`
	Task   string      `json:"task"`
	Models []StepModel `json:"models"`
}

// MarshalSet encodes the set as a kinded single-file JSON document.
func MarshalSet(s Set) ([]byte, error) {
	return json.MarshalIndent(setFile{Kind: profile.KindLLM, Task: s.Task, Models: s.Models}, "", " ")
}

// SaveFile writes the set as a kinded single-file JSON document.
func (s Set) SaveFile(path string) error {
	data, err := MarshalSet(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSet decodes a kinded single-file profile document into a step-model
// Set. A scalar-kind document is rejected: batch-latency tables carry no
// token-level coefficients, so the step-time path cannot consume them.
func LoadSet(data []byte) (Set, error) {
	if kind := profile.FileKind(data); kind != profile.KindLLM {
		if kind == profile.KindScalar {
			return Set{}, fmt.Errorf("llm: file holds a %q batch-latency profile, not token-level step-time tables; load it with profile.LoadSetFile (or drop the -llm flags)", kind)
		}
		return Set{}, fmt.Errorf("llm: unknown profile kind %q (want %q or %q)", kind, profile.KindLLM, profile.KindScalar)
	}
	var sf setFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return Set{}, fmt.Errorf("llm: %w", err)
	}
	out := Set{Task: sf.Task, Models: sf.Models}
	if err := out.Validate(); err != nil {
		return Set{}, err
	}
	return out, nil
}

// LoadSetFile reads a kinded single-file step-model document from path.
func LoadSetFile(path string) (Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Set{}, err
	}
	s, err := LoadSet(data)
	if err != nil {
		return Set{}, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
