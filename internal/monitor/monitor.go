// Package monitor implements query-load monitors (§3 "load monitor"): RAMSIS
// and the baselines both anticipate query load from the same monitor. The
// paper's implementation tracks load as a moving average over a 500 ms
// window [38, 57]; constant-load experiments (§7.2) assume a perfect
// predictor, modeled here as an oracle.
package monitor

import "ramsis/internal/trace"

// Monitor estimates the current query load (QPS) at the central queue.
type Monitor interface {
	// Observe records a query arrival at time t (seconds). Arrival times
	// must be non-decreasing.
	Observe(t float64)
	// Load returns the anticipated query load in QPS at time t.
	Load(t float64) float64
}

// MovingAverage tracks load as arrivals over a trailing window. Arrivals
// live in a ring buffer sized to the window's high-water mark, so memory is
// bounded by the peak in-window count and Observe is O(1) amortized: the
// old slice-backed version appended forever and only compacted its dead
// prefix occasionally, holding every arrival ever seen between compactions.
type MovingAverage struct {
	window float64
	buf    []float64 // ring storage, len(buf) is the capacity
	head   int       // index of the oldest retained arrival
	n      int       // retained arrivals
}

// NewMovingAverage returns a monitor with the given window in seconds.
// The paper uses 0.5 s.
func NewMovingAverage(window float64) *MovingAverage {
	if window <= 0 {
		window = 0.5
	}
	return &MovingAverage{window: window}
}

// Observe records an arrival.
func (m *MovingAverage) Observe(t float64) {
	m.evict(t)
	if m.n == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.n)%len(m.buf)] = t
	m.n++
}

// Load returns the windowed arrival rate at time t.
func (m *MovingAverage) Load(t float64) float64 {
	m.evict(t)
	return float64(m.n) / m.window
}

// evict drops arrivals older than the window. Each arrival is evicted at
// most once, so the cost amortizes against its own Observe.
func (m *MovingAverage) evict(t float64) {
	lo := t - m.window
	for m.n > 0 && m.buf[m.head] < lo {
		m.head = (m.head + 1) % len(m.buf)
		m.n--
	}
}

// grow doubles the ring (from 16), unwrapping the live region to the front.
func (m *MovingAverage) grow() {
	c := len(m.buf) * 2
	if c == 0 {
		c = 16
	}
	next := make([]float64, c)
	for i := 0; i < m.n; i++ {
		next[i] = m.buf[(m.head+i)%len(m.buf)]
	}
	m.buf = next
	m.head = 0
}

// Oracle returns the true trace load, the perfect predictor of §7.2.
type Oracle struct {
	Trace trace.Trace
}

// Observe is a no-op: the oracle already knows the trace.
func (Oracle) Observe(float64) {}

// Load returns the trace load at time t.
func (o Oracle) Load(t float64) float64 { return o.Trace.QPSAt(t) }
