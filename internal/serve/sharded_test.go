package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ramsis/internal/profile"
	"ramsis/internal/tenant"
)

// testTenants keeps modeled SLOs generous relative to TimeScale: wall
// overheads (HTTP dispatch, queueing) are multiplied by TimeScale when
// they land in modeled latency, so tight modeled SLOs at high TimeScale
// would measure the harness, not the policy.
func testTenants() []tenant.Tenant {
	return []tenant.Tenant{
		{Name: "gold", Class: "interactive", SLOMS: 2000, Weight: 2, RateQPS: 10},
		{Name: "silver", Class: "standard", SLOMS: 4000, Weight: 1, RateQPS: 8},
		{Name: "bronze", Class: "batch", SLOMS: 8000, Weight: 1, RateQPS: 12},
	}
}

func startSharded(t *testing.T, cfg ShardedConfig) *ShardedCluster {
	t.Helper()
	c, err := StartShardedCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// inject offers rate wall-QPS for dur on tenant name via the in-process
// route, fire-and-forget (responses are buffered; dispatch never blocks).
// Pacing is batched — catch up to the schedule every tick — because
// per-query sleeps cannot reach thousands of QPS.
func inject(g *Gateway, name string, rate float64, dur time.Duration) {
	const tick = 2 * time.Millisecond
	start := time.Now()
	sent := 0
	for {
		elapsed := time.Since(start)
		if elapsed >= dur {
			return
		}
		for want := int(rate * elapsed.Seconds()); sent < want; sent++ {
			_, _ = g.Route(name)
		}
		time.Sleep(tick)
	}
}

func TestShardedClusterEndToEnd(t *testing.T) {
	c := startSharded(t, ShardedConfig{
		Models:          profile.AblationImageSet(),
		Tenants:         testTenants(),
		Shards:          2,
		WorkersPerShard: 2,
		TimeScale:       50,
		Seed:            1,
		D:               50,
		Fair:            tenant.FairConfig{BurstSec: 0.5},
	})

	// One query per tenant over HTTP, via header and via query parameter.
	for _, tn := range []string{"gold", "silver", "bronze"} {
		req, _ := http.NewRequest(http.MethodPost, c.URL()+"/query", bytes.NewReader([]byte(`{}`)))
		req.Header.Set("X-Tenant", tn)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || qr.Error != "" {
			t.Fatalf("tenant %s: status %s, resp %+v", tn, resp.Status, qr)
		}
	}
	resp, err := http.Post(c.URL()+"/query?tenant=nosuch", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown tenant: status %s, want 400", resp.Status)
	}
	if resp, err = http.Get(c.URL() + "/query"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %s, want 405", resp.Status)
	}

	// /stats must carry the per-tenant breakdown with the served counts.
	if resp, err = http.Get(c.URL() + "/stats"); err != nil {
		t.Fatal(err)
	}
	var gs GatewayStats
	if err := json.NewDecoder(resp.Body).Decode(&gs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gs.Served != 3 || gs.Shards != 2 {
		t.Errorf("stats served=%d shards=%d, want 3 and 2", gs.Served, gs.Shards)
	}
	for _, tn := range []string{"gold", "silver", "bronze"} {
		ts, ok := gs.Tenants[tn]
		if !ok || ts.Served != 1 {
			t.Errorf("tenant %s stats %+v, want served 1", tn, ts)
		}
	}
	total := 0
	for _, n := range gs.ShardQueries {
		total += n
	}
	if total != 3 {
		t.Errorf("shard queries %v, want 3 total", gs.ShardQueries)
	}

	// The shared exposition must include tenant and shard series.
	if resp, err = http.Get(c.URL() + "/metrics"); err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`ramsis_tenant_queries_total{tenant="gold"}`,
		`ramsis_shard_depth{shard="1"}`,
		`ramsis_worker_healthy{worker="3"}`, // shard 1's second worker, offset applied
	} {
		if !bytes.Contains(body.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestShardedFairnessUnderOverload is the live half of the PR's core
// claim: one tenant offering 4× its contract is clamped to its fair share
// while compliant tenants keep goodput ≥ 0.9.
func TestShardedFairnessUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live soak")
	}
	if raceEnabled {
		// The goodput floor measures real wall-clock serving; the race
		// detector slows dispatch several fold, which at TimeScale 10
		// lands as modeled SLO violations. Concurrency coverage of the
		// sharded path under -race comes from TestShardedReloadHammer.
		t.Skip("goodput thresholds are wall-clock-calibrated; meaningless under -race")
	}
	const timeScale = 10
	c := startSharded(t, ShardedConfig{
		Models:          profile.AblationImageSet(),
		Tenants:         testTenants(),
		Shards:          2,
		WorkersPerShard: 2,
		TimeScale:       timeScale,
		Seed:            2,
		D:               50,
		ShardBy:         "p2c",
		Fair:            tenant.FairConfig{BurstSec: 0.5},
	})

	// A tenant contracted at R modeled QPS must be offered R×TimeScale
	// wall QPS (modeled time runs TimeScale× faster than wall); bronze
	// offers 4× its contract.
	const wallDur = 3 * time.Second
	var wg sync.WaitGroup
	for name, wallRate := range map[string]float64{
		"gold": 10 * timeScale, "silver": 8 * timeScale, "bronze": 4 * 12 * timeScale,
	} {
		wg.Add(1)
		go func(name string, rate float64) {
			defer wg.Done()
			inject(c.Gateway, name, rate, wallDur)
		}(name, wallRate)
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // drain in-flight batches

	gs := c.Gateway.Stats()
	for _, tn := range []string{"gold", "silver"} {
		ts := gs.Tenants[tn]
		if ts.Goodput < 0.9 {
			t.Errorf("compliant tenant %s goodput %.3f < 0.9 (%+v)", tn, ts.Goodput, ts)
		}
	}
	over := gs.Tenants["bronze"]
	if over.Shed == 0 {
		t.Errorf("4× tenant was never shed: %+v", over)
	}
	if over.Served == 0 {
		t.Error("4× tenant starved")
	}
	if over.Served+over.Shed < 2*(gs.Tenants["silver"].Served+gs.Tenants["silver"].Shed) {
		t.Errorf("bronze offered %d, want ≥ 2× silver's %d — injector fell behind",
			over.Served+over.Shed, gs.Tenants["silver"].Served+gs.Tenants["silver"].Shed)
	}
}

// TestShardedReloadHammer drives concurrent traffic through the gateway
// while the tenant config is hot-reloaded underneath it — the -race run
// over this test is the PR's concurrency acceptance gate.
func TestShardedReloadHammer(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "tenants.json")
	writeTenants := func(ts []tenant.Tenant) {
		data, err := json.Marshal(ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base := testTenants()
	writeTenants(base)

	c := startSharded(t, ShardedConfig{
		Models:          profile.AblationImageSet(),
		Tenants:         base,
		TenantFile:      file,
		Shards:          2,
		WorkersPerShard: 2,
		TimeScale:       50,
		Seed:            3,
		D:               50,
		Fair:            tenant.FairConfig{BurstSec: 0.5},
	})

	stop := make(chan struct{})
	reloaderDone := make(chan error, 1)
	go func() {
		// Alternate between the base set and one with an extra tenant and
		// shifted weights, through the HTTP reload path.
		extra := append(append([]tenant.Tenant{}, base...),
			tenant.Tenant{Name: "trial", SLOMS: 3000, Weight: 0.5, RateQPS: 10})
		extra[0].Weight = 3
		flip := false
		for {
			select {
			case <-stop:
				reloaderDone <- nil
				return
			default:
			}
			if flip {
				writeTenants(extra)
			} else {
				writeTenants(base)
			}
			flip = !flip
			resp, err := http.Post(c.URL()+"/reload", "application/json", nil)
			if err != nil {
				reloaderDone <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				reloaderDone <- fmt.Errorf("reload: status %s", resp.Status)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const perTenant = 400
	var wg sync.WaitGroup
	for _, tn := range []string{"gold", "silver", "bronze", "trial"} {
		wg.Add(1)
		go func(tn string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				_, eerr := c.Gateway.Route(tn)
				// "trial" flips between registered and unknown; both
				// outcomes are legal mid-reload.
				if eerr != nil && eerr.Status == http.StatusServiceUnavailable {
					t.Errorf("tenant %s: unexpected shutdown error", tn)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(tn)
	}
	wg.Wait()
	close(stop)
	if err := <-reloaderDone; err != nil {
		t.Fatal(err)
	}

	gs := c.Gateway.Stats()
	if gs.TenantVersion < 2 {
		t.Errorf("tenant version %d, want ≥ 2 after reloads", gs.TenantVersion)
	}
	for _, tn := range []string{"gold", "silver", "bronze"} {
		ts := gs.Tenants[tn]
		if ts.Served+ts.Shed == 0 {
			t.Errorf("tenant %s made no progress across reloads: %+v", tn, ts)
		}
	}
}
