package admit

import "sync"

// RetryBudget bounds dispatch failover retries with a token bucket so a
// worker outage during an overload cannot amplify the overload: every
// failed dispatch would otherwise retry on a surviving worker, doubling
// the load exactly when the cluster can least absorb it. The budget admits
// short failover bursts (Burst tokens) and a sustained trickle (PerSec
// tokens per second); beyond that, failed dispatches fail fast instead of
// retrying.
//
// Time is passed in (modeled seconds), so the budget behaves identically
// under the simulator's virtual clock and the prototype's scaled wall
// clock.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64
	last   float64
	denied uint64
	spent  uint64
}

// NewRetryBudget builds a budget holding at most burst tokens, refilled at
// perSec tokens per second. The bucket starts full.
func NewRetryBudget(burst int, perSec float64) *RetryBudget {
	if burst < 1 {
		burst = 1
	}
	if perSec < 0 {
		perSec = 0
	}
	return &RetryBudget{tokens: float64(burst), burst: float64(burst), rate: perSec}
}

// Allow consumes one retry token at modeled time now, reporting whether
// the failover may proceed.
func (b *RetryBudget) Allow(now float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now - b.last; dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	// A now that moved backwards (clock skew across goroutines) just
	// skips the refill; the bucket still meters correctly.
	if now > b.last {
		b.last = now
	}
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// Denied returns how many retries the budget has refused.
func (b *RetryBudget) Denied() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}

// Spent returns how many retries the budget has granted.
func (b *RetryBudget) Spent() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}
