package sim

import (
	"testing"

	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// toQueries converts a labeled tenant workload into engine queries.
func toQueries(evs []tenant.Arrival) []Query {
	qs := make([]Query, len(evs))
	for i, ev := range evs {
		qs[i] = Query{ID: i, Arrival: ev.T, Tenant: ev.Tenant}
	}
	return qs
}

func TestRunStaysSingleTenant(t *testing.T) {
	ps := imageProfiles()
	e := NewEngine(ps, 0.150, 1, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 8}, 1)
	m := e.Run([]float64{0, 0.001})
	if m.Tenants != nil {
		t.Errorf("single-tenant run populated Tenants: %+v", m.Tenants)
	}
	if m.Served != 2 {
		t.Errorf("served = %d, want 2", m.Served)
	}
}

func TestPerTenantSLOJudgesViolations(t *testing.T) {
	ps := imageProfiles()
	slow, _ := indexOf(ps, "efficientnet_v2_s")
	lat := ps.Profiles[slow].BatchLatency(1)
	// Engine SLO would pass everything; "strict" tenant's own SLO is below
	// the model latency, "lax" tenant's is above it.
	e := NewEngine(ps, 10*lat, 1, Deterministic{}, &FixedModel{Model: slow, MaxBatch: 1}, 1)
	e.TenantSLOs = map[string]float64{"strict": lat / 2, "lax": 10 * lat}
	gap := 2 * lat // serialized service, no queueing
	qs := []Query{
		{ID: 0, Arrival: 0, Tenant: "strict"},
		{ID: 1, Arrival: gap, Tenant: "lax"},
		{ID: 2, Arrival: 2 * gap, Tenant: "strict"},
	}
	m := e.RunQueries(qs)
	if m.Served != 3 {
		t.Fatalf("served = %d, want 3", m.Served)
	}
	st, lx := m.Tenants["strict"], m.Tenants["lax"]
	if st == nil || lx == nil {
		t.Fatalf("missing tenant metrics: %+v", m.Tenants)
	}
	if st.Violations != 2 || st.Served != 2 {
		t.Errorf("strict tenant %+v, want 2 served 2 violations (own SLO)", st)
	}
	if lx.Violations != 0 || lx.Served != 1 {
		t.Errorf("lax tenant %+v, want 1 served 0 violations", lx)
	}
	// Engine-wide count uses per-query SLOs too.
	if m.Violations != 2 {
		t.Errorf("violations = %d, want 2", m.Violations)
	}
}

// TestFairnessUnderTenantOverload is the sim half of the PR's core claim:
// with one tenant offering 4× its contract, weighted-fair admission keeps
// every compliant tenant's goodput ≥ 0.9 while the overloader is clamped
// to roughly its fair share — and still makes progress.
func TestFairnessUnderTenantOverload(t *testing.T) {
	ps := imageProfiles()
	tenants := []tenant.Tenant{
		{Name: "interactive", SLOMS: 150, Weight: 2, RateQPS: 100},
		{Name: "standard", SLOMS: 300, Weight: 1, RateQPS: 50},
		{Name: "batch", SLOMS: 1000, Weight: 1, RateQPS: 50},
	}
	reg, err := tenant.NewRegistry(tenants)
	if err != nil {
		t.Fatal(err)
	}
	fair := tenant.NewFairAdmitter(reg, nil, tenant.FairConfig{})
	dur := 30.0
	evs := tenant.ArrivalsScaled(tenants, map[string]float64{"standard": 4}, dur, 11)

	tel := telemetry.NewRegistry()
	e := NewEngine(ps, 0.150, 8, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 16}, 1)
	e.TenantSLOs = map[string]float64{}
	for _, tn := range tenants {
		e.TenantSLOs[tn.Name] = tn.SLO()
	}
	e.FairAdmit = fair
	e.Telemetry = tel
	m := e.RunQueries(toQueries(evs))

	for _, name := range []string{"interactive", "batch"} {
		tm := m.Tenants[name]
		if tm == nil {
			t.Fatalf("no metrics for %s", name)
		}
		if g := tm.GoodputRate(); g < 0.9 {
			t.Errorf("compliant tenant %s goodput %.3f < 0.9 (%+v)", name, g, tm)
		}
	}
	over := m.Tenants["standard"]
	if over == nil || over.Shed == 0 {
		t.Fatalf("4× tenant was never shed: %+v", over)
	}
	if over.Served == 0 {
		t.Error("4× tenant starved")
	}
	// Clamped near fair share (50 QPS) plus startup bursts, not 200 QPS.
	if got, limit := float64(over.Served), 50*dur+600; got > limit {
		t.Errorf("4× tenant served %v, want ≲ %v", got, limit)
	}
	// The same story must be visible in telemetry (the soak reads it there).
	shed := tel.Counter(telemetry.MetricTenantShed, "tenant", "standard").Value()
	if float64(over.Shed) != shed {
		t.Errorf("telemetry shed %v != metrics shed %d", shed, over.Shed)
	}
	served := tel.Counter(telemetry.MetricTenantQueries, "tenant", "interactive").Value()
	if float64(m.Tenants["interactive"].Served) != served {
		t.Errorf("telemetry served %v != metrics served %d", served, m.Tenants["interactive"].Served)
	}
}
