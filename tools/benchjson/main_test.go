package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: ramsis
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkValueIteration/slice/sequential         	       5	 432033220 ns/op	   40920 B/op	       7 allocs/op
BenchmarkValueIteration/slice/sequential         	       5	 430000000 ns/op	   40920 B/op	       7 allocs/op
BenchmarkValueIteration/compiled/sequential-8    	       9	 241024333 ns/op	  417688 B/op	       8 allocs/op
BenchmarkSimulatorThroughput   	      10	 12345678 ns/op	         20000 queries/op	 1234 B/op	       2 allocs/op
PASS
ok  	ramsis	30.263s
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "ramsis" || rep.CPU == "" {
		t.Errorf("header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3 (repeated runs must merge)", len(rep.Benchmarks))
	}
	slice := rep.Benchmarks[0]
	if slice.Name != "BenchmarkValueIteration/slice/sequential" || len(slice.Runs) != 2 {
		t.Errorf("merge failed: %+v", slice)
	}
	if slice.BestNsPerOp != 430000000 {
		t.Errorf("best ns/op = %v, want the min across runs", slice.BestNsPerOp)
	}
	if got := rep.Benchmarks[1].Name; got != "BenchmarkValueIteration/compiled/sequential" {
		t.Errorf("-procs suffix not stripped: %q", got)
	}
	sim := rep.Benchmarks[2]
	if sim.Runs[0].Metrics["queries/op"] != 20000 || sim.Runs[0].Metrics["allocs/op"] != 2 {
		t.Errorf("custom metrics lost: %+v", sim.Runs[0].Metrics)
	}
}

func TestParseRejectsGarbageValue(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX\t5\tabc ns/op\n")); err == nil {
		t.Error("garbage value accepted")
	}
}

func benchReport(nsPerOp map[string]float64) *report {
	rep := &report{}
	// Deterministic order for assertions.
	for _, name := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkOnlyOld", "BenchmarkOnlyNew"} {
		ns, ok := nsPerOp[name]
		if !ok {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, &benchmark{
			Name:        name,
			Runs:        []run{{Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}},
			BestNsPerOp: ns,
		})
	}
	return rep
}

func allocReport(allocs map[string]float64) *report {
	rep := &report{}
	for _, name := range []string{"BenchmarkA", "BenchmarkB"} {
		al, ok := allocs[name]
		if !ok {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, &benchmark{
			Name:            name,
			Runs:            []run{{Iterations: 1, Metrics: map[string]float64{"ns/op": 100, "allocs/op": al}}},
			BestNsPerOp:     100,
			BestAllocsPerOp: al,
		})
	}
	return rep
}

// TestCompareFlagsRegressions pins the bench-compare CI gate: a synthetic
// >2x ns/op regression is reported (and the tool exits nonzero on it), a
// within-threshold drift and an improvement are not, and benchmarks present
// on only one side never count as regressions.
func TestCompareFlagsRegressions(t *testing.T) {
	old := benchReport(map[string]float64{
		"BenchmarkA":       100,
		"BenchmarkB":       100,
		"BenchmarkC":       100,
		"BenchmarkOnlyOld": 100,
	})
	nw := benchReport(map[string]float64{
		"BenchmarkA":       250, // 2.5x: beyond any gate threshold
		"BenchmarkB":       110, // 1.1x: runner noise, below threshold
		"BenchmarkC":       40,  // improvement
		"BenchmarkOnlyNew": 100, // new benchmark: no baseline, no regression
	})

	regs := compare(old, nw, 2.0, 1.10)
	if len(regs) != 1 {
		t.Fatalf("compare(threshold=2) = %+v, want exactly the 2.5x regression", regs)
	}
	if r := regs[0]; r.Name != "BenchmarkA" || r.Metric != "ns/op" || r.Ratio != 2.5 || r.Old != 100 || r.New != 250 {
		t.Errorf("regression misreported: %+v", r)
	}

	// The tighter warning threshold keeps ignoring sub-threshold drift,
	// improvements, and unmatched benchmarks.
	if regs := compare(old, nw, 1.25, 1.10); len(regs) != 1 || regs[0].Name != "BenchmarkA" {
		t.Errorf("compare(threshold=1.25) = %+v, want only BenchmarkA", regs)
	}

	// Identical baselines never regress.
	if regs := compare(old, old, 1.25, 1.10); len(regs) != 0 {
		t.Errorf("self-compare found regressions: %+v", regs)
	}
}

// TestRunCompareExitCodes pins the process contract the CI job relies on:
// nonzero on a regression beyond threshold, zero with -warn, zero when
// clean.
func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *report) string {
		t.Helper()
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", benchReport(map[string]float64{"BenchmarkA": 100}))
	badPath := write("bad.json", benchReport(map[string]float64{"BenchmarkA": 300}))
	okPath := write("ok.json", benchReport(map[string]float64{"BenchmarkA": 105}))

	if code := runCompare(oldPath, badPath, 2.0, 1.10, false); code == 0 {
		t.Error("3x regression passed the hard gate")
	}
	if code := runCompare(oldPath, badPath, 2.0, 1.10, true); code != 0 {
		t.Error("-warn mode failed the build")
	}
	if code := runCompare(oldPath, okPath, 1.25, 1.10, false); code != 0 {
		t.Error("clean comparison exited nonzero")
	}
	if code := runCompare(oldPath, filepath.Join(dir, "missing.json"), 1.25, 1.10, false); code == 0 {
		t.Error("missing baseline file passed")
	}
}

// TestCompareAllocsPerOp pins the allocation gate: allocs/op has its own
// (tighter) threshold, a regression on it is reported with its metric name,
// and a report missing allocs data never produces alloc regressions.
func TestCompareAllocsPerOp(t *testing.T) {
	old := allocReport(map[string]float64{"BenchmarkA": 10, "BenchmarkB": 10})
	nw := allocReport(map[string]float64{"BenchmarkA": 15, "BenchmarkB": 10})

	regs := compare(old, nw, 1.25, 1.10)
	if len(regs) != 1 {
		t.Fatalf("compare = %+v, want exactly the 1.5x alloc regression", regs)
	}
	if r := regs[0]; r.Name != "BenchmarkA" || r.Metric != "allocs/op" || r.Ratio != 1.5 {
		t.Errorf("alloc regression misreported: %+v", r)
	}

	// ns/op within threshold but allocs beyond it must still fail; the
	// reverse threshold order (loose alloc gate) must pass.
	if regs := compare(old, nw, 1.25, 2.0); len(regs) != 0 {
		t.Errorf("loose alloc gate flagged: %+v", regs)
	}

	// Baselines without allocs/op (pre-benchmem runs) are skipped, not
	// treated as zero-alloc baselines that everything regresses from.
	if regs := compare(benchReport(map[string]float64{"BenchmarkA": 100}), nw, 1.25, 1.10); len(regs) != 0 {
		t.Errorf("missing alloc baseline flagged: %+v", regs)
	}
}

// TestLoadReportBackfillsBest pins baseline compatibility: a committed
// BENCH_*.json written before best_allocs_per_op existed still compares on
// allocations, recomputed from its per-run metrics.
func TestLoadReportBackfillsBest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.json")
	legacy := `{"benchmarks":[{"name":"BenchmarkA","runs":[{"iterations":1,"metrics":{"ns/op":100,"allocs/op":12}},{"iterations":1,"metrics":{"ns/op":90,"allocs/op":10}}]}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Benchmarks[0]
	if b.BestNsPerOp != 90 || b.BestAllocsPerOp != 10 {
		t.Errorf("backfill got ns=%v allocs=%v, want 90 and 10", b.BestNsPerOp, b.BestAllocsPerOp)
	}
}

// TestRunCompareAllocExitCode pins the process contract for the alloc gate.
func TestRunCompareAllocExitCode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *report) string {
		t.Helper()
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", allocReport(map[string]float64{"BenchmarkA": 10}))
	badPath := write("bad.json", allocReport(map[string]float64{"BenchmarkA": 14}))
	if code := runCompare(oldPath, badPath, 1.25, 1.10, false); code == 0 {
		t.Error("1.4x alloc regression passed the hard gate")
	}
	if code := runCompare(oldPath, badPath, 1.25, 1.10, true); code != 0 {
		t.Error("-warn mode failed the build on an alloc regression")
	}
	if code := runCompare(oldPath, badPath, 1.25, 1.50, false); code != 0 {
		t.Error("within-threshold alloc drift exited nonzero")
	}
}
