// Command trace inspects, generates, and converts query-load traces in the
// artifact's one-QPS-per-line format:
//
//	trace --stats                      # stats of the built-in Twitter trace
//	trace --export twitter.txt        # write it in the artifact format
//	trace --stats --in mytrace.txt    # stats of an external trace
//	trace --arrivals out.txt --seed 3 # sample Poisson arrival times
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"ramsis/internal/stats"
	"ramsis/internal/telemetry"
	"ramsis/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace file (default: built-in Twitter trace)")
		interval = flag.Float64("interval", 10, "seconds per trace line")
		export   = flag.String("export", "", "write the trace in artifact format to this path")
		arrivals = flag.String("arrivals", "", "sample Poisson arrival times to this path")
		scale    = flag.Float64("scale", 1, "multiply every interval load")
		truncate = flag.Float64("truncate", 0, "keep only the first N seconds (0 = all)")
		seed     = flag.Int64("seed", 1, "arrival sampling seed")
		gamma    = flag.Int("gamma", 0, "sample Erlang-<shape> arrivals instead of Poisson (0 = Poisson)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt   = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	if _, err := telemetry.SetupLogging(*logLevel, *logFmt, "trace"); err != nil {
		log.Fatal(err)
	}

	tr := trace.Twitter()
	if *in != "" {
		var err error
		tr, err = trace.LoadQPSFile(*in, *interval)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *scale != 1 {
		tr = tr.Scale(*scale)
	}
	if *truncate > 0 {
		tr = tr.Truncate(*truncate)
	}

	fmt.Printf("trace:    %s\n", tr.Name)
	fmt.Printf("duration: %.0f s (%d intervals of %.0f s)\n", tr.Duration(), len(tr.QPS), tr.IntervalSec)
	fmt.Printf("load:     min %.0f / mean %.1f / max %.0f QPS\n", tr.MinQPS(), tr.MeanQPS(), tr.MaxQPS())
	fmt.Printf("p50/p95:  %.0f / %.0f QPS\n", stats.Percentile(tr.QPS, 50), stats.Percentile(tr.QPS, 95))
	fmt.Printf("queries:  ~%.0f expected\n", tr.MeanQPS()*tr.Duration())

	if *export != "" {
		if err := tr.SaveQPSFile(*export); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported to %s\n", *export)
	}
	if *arrivals != "" {
		var arr []float64
		if *gamma > 1 {
			arr = trace.GammaArrivals(tr, *seed, *gamma)
		} else {
			arr = trace.PoissonArrivals(tr, *seed)
		}
		f, err := os.Create(*arrivals)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, a := range arr {
			fmt.Fprintf(w, "%.6f\n", a)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sampled %d arrival times to %s\n", len(arr), *arrivals)
	}
}
