// Command serve runs the client-server prototype end to end on localhost:
// it starts worker HTTP servers, generates a RAMSIS policy, replays a
// Poisson workload through the central controller, and reports the achieved
// accuracy and violation rate.
//
//	serve --task image --slo 150 --workers 4 --load 120 --dur 10
package main

import (
	"flag"
	"fmt"
	"log"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/lb"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/serve"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		task      = flag.String("task", "image", "inference task: image or text")
		sloMS     = flag.Float64("slo", 150, "latency SLO in milliseconds")
		workers   = flag.Int("workers", 4, "number of worker servers")
		load      = flag.Float64("load", 120, "query load in QPS")
		dur       = flag.Float64("dur", 10, "trace duration in modeled seconds")
		timeScale = flag.Float64("timescale", 1, "modeled-to-wall time compression factor")
		noiseMS   = flag.Float64("noise", 10, "inference latency stddev in ms")
		d         = flag.Int("d", 100, "FLD resolution")
		seed      = flag.Int64("seed", 1, "workload seed")
		frontend  = flag.Bool("frontend", false, "serve a live POST /query API instead of replaying a trace (Ctrl-C to stop)")
		lbArg     = flag.String("lb", "rr", "load balancer across worker queues: rr, jsq, or p2c")
	)
	flag.Parse()

	models, err := profile.SetForTask(*task)
	if err != nil {
		log.Fatal(err)
	}
	slo := *sloMS / 1000
	balancing, err := core.ParseBalancing(*lbArg)
	if err != nil {
		log.Fatal(err)
	}
	balancer, err := lb.New(*lbArg, *seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generating RAMSIS policy (%s, SLO %.0f ms, %d workers, %.0f QPS, %s balancing)...\n",
		*task, *sloMS, *workers, *load, balancing)
	set := core.NewPolicySet(core.Config{
		Models: models, SLO: slo, Workers: *workers, Arrival: dist.NewPoisson(1), D: *d,
		Balancing: balancing,
	}, nil)
	if err := set.GenerateLoads([]float64{*load}); err != nil {
		log.Fatal(err)
	}

	if *frontend {
		cluster, err := serve.StartCluster(serve.ClusterConfig{
			Models:        models,
			Workers:       *workers,
			SLO:           slo,
			TimeScale:     *timeScale,
			LatencyStdDev: *noiseMS / 1000,
			Select:        serve.RAMSISSelector(set),
			Monitor:       monitor.NewMovingAverage(0.5),
			Seed:          *seed,
			Balancer:      balancer,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Stop()
		fmt.Printf("live inference service at %s\n", cluster.URL())
		fmt.Printf("try: curl -X POST %s/query -d '{}'\n", cluster.URL())
		fmt.Printf("     curl %s/stats\n", cluster.URL())
		select {} // serve until interrupted
	}

	var lat sim.LatencyModel = sim.Deterministic{}
	if *noiseMS > 0 {
		lat = sim.Stochastic{StdDev: *noiseMS / 1000}
	}
	urls := make([]string, *workers)
	ws := make([]*serve.Worker, *workers)
	for i := range urls {
		ws[i] = serve.NewWorker(models, lat, *timeScale, *seed+int64(i))
		if err := ws[i].Start(); err != nil {
			log.Fatal(err)
		}
		defer ws[i].Stop()
		urls[i] = ws[i].URL()
		fmt.Printf("worker %d listening at %s\n", i, urls[i])
	}

	tr := trace.Constant(*load, *dur)
	ctl := &serve.Controller{
		Profiles:  models,
		SLO:       slo,
		TimeScale: *timeScale,
		Workers:   urls,
		Select:    serve.RAMSISSelector(set),
		Monitor:   monitor.NewMovingAverage(0.5),
		Balancer:  balancer,
	}
	arrivals := trace.PoissonArrivals(tr, *seed)
	fmt.Printf("replaying %d queries over %.0fs (wall %.0fs)...\n",
		len(arrivals), *dur, *dur / *timeScale)
	m, err := ctl.Run(arrivals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served:                      %d\n", m.Served)
	fmt.Printf("accuracy/satisfied query:    %.4f\n", m.AccuracyPerSatisfiedQuery())
	fmt.Printf("latency SLO violation rate:  %.4f%%\n", m.ViolationRate()*100)
	pol := set.Policies()[0]
	fmt.Printf("policy expectation:          accuracy %.4f, violation %.4f%%\n",
		pol.ExpectedAccuracy, pol.ExpectedViolation*100)
	fmt.Println("script complete!")
}
