package profile

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"ramsis/internal/stats"
)

// The artifact distributes profiles as profiles/MODELNAME/BATCHSIZE.json —
// a JSON list of raw latencies from 100 invocations — plus accuracy maps.
// These helpers write and read that layout, so profiles collected on real
// hardware drop into this implementation directly: the p95 of each raw list
// becomes the tabulated l_w(m, b), exactly as §7 profiles models.

// ExportArtifact writes the set in the artifact layout under dir:
// dir/MODEL/BATCH.json raw-latency lists (synthesized around each profile
// entry with Gaussian jitter of stddev seconds, since our profiles are p95
// tables) and dir/accuracy.json mapping model name to accuracy.
func (s Set) ExportArtifact(dir string, samples int, stddev float64, seed int64) error {
	if samples < 1 {
		samples = 100
	}
	rng := rand.New(rand.NewSource(seed))
	acc := map[string]float64{}
	for _, p := range s.Profiles {
		acc[p.Name] = p.Accuracy
		mdir := filepath.Join(dir, p.Name)
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			return err
		}
		for b := 1; b <= p.MaxBatch(); b++ {
			p95 := p.BatchLatency(b)
			sd := stddev
			if cap := 0.15 * p95; sd > cap {
				sd = cap
			}
			mean := p95 - 1.645*sd
			lats := make([]float64, samples)
			for i := range lats {
				v := mean + sd*rng.NormFloat64()
				if floor := p95 * 0.25; v < floor {
					v = floor
				}
				lats[i] = v
			}
			data, err := json.Marshal(lats)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(mdir, fmt.Sprintf("%d.json", b)), data, 0o644); err != nil {
				return err
			}
		}
	}
	data, err := json.MarshalIndent(acc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "accuracy.json"), data, 0o644)
}

// ImportArtifact reads a profile directory in the artifact layout: each
// model subdirectory's BATCH.json raw-latency lists collapse to their 95th
// percentile (the paper's profiled statistic), and accuracy.json supplies
// the accuracies. Task labels the resulting set.
func ImportArtifact(dir, task string) (Set, error) {
	accData, err := os.ReadFile(filepath.Join(dir, "accuracy.json"))
	if err != nil {
		return Set{}, fmt.Errorf("profile: accuracy map: %w", err)
	}
	var acc map[string]float64
	if err := json.Unmarshal(accData, &acc); err != nil {
		return Set{}, fmt.Errorf("profile: accuracy map: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Set{}, err
	}
	out := Set{Task: task}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		a, ok := acc[name]
		if !ok {
			return Set{}, fmt.Errorf("profile: model %q has latencies but no accuracy", name)
		}
		batches, err := os.ReadDir(filepath.Join(dir, name))
		if err != nil {
			return Set{}, err
		}
		perBatch := map[int]float64{}
		maxB := 0
		for _, bf := range batches {
			var b int
			if _, err := fmt.Sscanf(bf.Name(), "%d.json", &b); err != nil || b < 1 {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, name, bf.Name()))
			if err != nil {
				return Set{}, err
			}
			var lats []float64
			if err := json.Unmarshal(raw, &lats); err != nil {
				return Set{}, fmt.Errorf("profile: %s/%s: %w", name, bf.Name(), err)
			}
			if len(lats) == 0 {
				return Set{}, fmt.Errorf("profile: %s/%s is empty", name, bf.Name())
			}
			perBatch[b] = stats.Percentile(lats, 95)
			if b > maxB {
				maxB = b
			}
		}
		if maxB == 0 {
			return Set{}, fmt.Errorf("profile: model %q has no batch profiles", name)
		}
		lat := make([]float64, maxB)
		for b := 1; b <= maxB; b++ {
			v, ok := perBatch[b]
			if !ok {
				return Set{}, fmt.Errorf("profile: model %q missing batch %d", name, b)
			}
			lat[b-1] = v
		}
		out.Profiles = append(out.Profiles, Profile{Model: Model{Name: name, Accuracy: a}, Latency: lat})
	}
	if out.Len() == 0 {
		return Set{}, fmt.Errorf("profile: no models under %s", dir)
	}
	sort.Slice(out.Profiles, func(i, j int) bool { return out.Profiles[i].Name < out.Profiles[j].Name })
	return out, nil
}
