// Image classification on a production-style trace: RAMSIS head to head
// with the Jellyfish+ and ModelSwitching baselines on a scaled-down Twitter
// trace, reproducing the §7.1 comparison in miniature.
//
//	go run ./examples/imageclassification
package main

import (
	"fmt"
	"log"

	"ramsis"
	"ramsis/internal/baselines"
	"ramsis/internal/monitor"
	"ramsis/internal/sim"
	"ramsis/internal/trace"
)

func main() {
	const (
		workers = 12
		sloMS   = 150.0
	)
	models := ramsis.ImageModels()
	slo := sloMS / 1000

	// A 60-second slice of the diurnal trace, scaled to this deployment
	// (original range 1,617-3,905 QPS across 100 workers; here ~1/8).
	tr := ramsis.TwitterTrace().Scale(0.125).Truncate(60)
	fmt.Printf("trace: %.0f-%.0f QPS over %.0fs, %d workers, SLO %.0f ms\n",
		tr.MinQPS(), tr.MaxQPS(), tr.Duration(), workers, sloMS)
	arrivals := trace.PoissonArrivals(tr, 7)
	fmt.Printf("queries: %d\n\n", len(arrivals))

	// RAMSIS: pre-compute a policy ladder covering the trace loads.
	system, err := ramsis.New(ramsis.Options{Models: models, SLOMillis: sloMS, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generating RAMSIS policy ladder...")
	if err := system.PrecomputePolicies(250, 350, 450, 550, 650); err != nil {
		log.Fatal(err)
	}

	// ModelSwitching: offline response-latency profiling (§7).
	fmt.Println("profiling ModelSwitching response latencies...")
	msTable := baselines.ProfileModelSwitching(models, slo, workers,
		[]float64{200, 300, 400, 500, 600, 700}, 5, 1)

	run := func(name string, sched sim.Scheduler) sim.Metrics {
		e := sim.NewEngine(models, slo, workers, sim.Deterministic{}, sched, 1)
		m := e.Run(arrivals)
		fmt.Printf("%-15s accuracy %.4f   violations %.4f%%   decisions %d\n",
			name, m.AccuracyPerSatisfiedQuery(), m.ViolationRate()*100, m.Decisions)
		return m
	}

	fmt.Println("\nserving the trace with each MS&S scheme:")
	mR := run("RAMSIS", sim.NewRAMSIS(system.PolicySet(), monitor.NewMovingAverage(0.5)))
	mJ := run("Jellyfish+", &baselines.JellyfishPlus{
		Profiles: models, SLO: slo, Workers: workers, Monitor: monitor.NewMovingAverage(0.5)})
	mM := run("ModelSwitching", &baselines.ModelSwitching{
		Profiles: models, SLO: slo, Monitor: monitor.NewMovingAverage(0.5), Table: msTable})

	fmt.Printf("\nRAMSIS accuracy gain: %+.2f%% vs Jellyfish+, %+.2f%% vs ModelSwitching\n",
		(mR.AccuracyPerSatisfiedQuery()-mJ.AccuracyPerSatisfiedQuery())*100,
		(mR.AccuracyPerSatisfiedQuery()-mM.AccuracyPerSatisfiedQuery())*100)
}
