// Package llm is the token-level workload subsystem: the second profile
// kind next to internal/profile's per-(model, batch) scalar tables. An LLM
// serving step's latency is not a function of batch size alone — it depends
// on the batch's prefill/decode token composition and on KV-cache occupancy
// (the BLIS latency-model breakdown). StepModel captures that as a linear
// step-time baseline
//
//	step_time = β₀ + β₁·prefill_tokens + β₂·decode_tokens + β₃·kvPenalty(kv)
//
// with per-model coefficients, the same blackbox feature set a vLLM
// instrumentation exposes (batch.prefill_tokens, batch.decode_tokens,
// kv.usage_gpu_ratio). The simulator's continuous-batching worker
// (internal/sim), the token-bucket MDP (internal/core.GenerateLLM), and the
// streaming serve worker all consume these models; scalar-profile code
// paths never see them (profile/io rejects llm-kind files).
package llm

import (
	"fmt"
	"math"

	"ramsis/internal/profile"
)

// DefaultMaxStepTokens is the per-step scheduled-token budget when a model
// doesn't override it, matching the common max_num_batched_tokens=2048
// continuous-batching configuration.
const DefaultMaxStepTokens = 2048

// KVPenalty maps KV-cache usage (a fraction in [0, 1]) to the unitless
// occupancy penalty β₃ multiplies: kv². Attention cost grows superlinearly
// with resident context, so a near-full cache slows every step, not just
// the sequences that filled it.
func KVPenalty(kv float64) float64 {
	if kv < 0 {
		kv = 0
	}
	if kv > 1 {
		kv = 1
	}
	return kv * kv
}

// StepModel is one model's token-level latency profile plus its serving
// limits. All coefficients are in seconds (per token for the β₁/β₂ terms).
type StepModel struct {
	Name     string  `json:"name"`
	Accuracy float64 `json:"accuracy"`
	// Beta0 is the fixed per-step overhead (scheduling, kernel launch).
	Beta0 float64 `json:"beta0"`
	// BetaPrefill is the marginal cost per prefill token in the step.
	BetaPrefill float64 `json:"betaPrefill"`
	// BetaDecode is the marginal cost per decode token in the step.
	BetaDecode float64 `json:"betaDecode"`
	// BetaKV is the full-occupancy KV penalty: a step at kv=1 costs
	// BetaKV·KVPenalty(1) = BetaKV more than at kv=0.
	BetaKV float64 `json:"betaKV"`
	// KVCapTokens is the KV-cache capacity in tokens; admission into the
	// running batch reserves a sequence's full prefill+decode footprint
	// against it.
	KVCapTokens int `json:"kvCapTokens"`
	// MaxStepTokens bounds the scheduled tokens (prefill chunks + decode)
	// per step; 0 means DefaultMaxStepTokens.
	MaxStepTokens int `json:"maxStepTokens"`
	// MaxSeqs bounds the running batch's sequence count.
	MaxSeqs int `json:"maxSeqs"`
}

// StepTime returns the modeled latency in seconds of one engine step that
// ingests prefillTokens prompt tokens and generates decodeTokens output
// tokens at KV-cache usage kv (fraction of KVCapTokens resident).
func (m StepModel) StepTime(prefillTokens, decodeTokens int, kv float64) float64 {
	return m.Beta0 +
		m.BetaPrefill*float64(prefillTokens) +
		m.BetaDecode*float64(decodeTokens) +
		m.BetaKV*KVPenalty(kv)
}

// StepBudget returns the per-step scheduled-token budget.
func (m StepModel) StepBudget() int {
	if m.MaxStepTokens > 0 {
		return m.MaxStepTokens
	}
	return DefaultMaxStepTokens
}

// TokenRate returns the modeled sustained token throughput (tokens/second)
// of a saturated step whose scheduled tokens are prefillFrac prefill: the
// step packs round(prefillFrac·budget) prefill tokens, fills the remainder
// with decode tokens up to MaxSeqs, and runs at KV usage kv. This is the
// model's position on the throughput axis of the accuracy/throughput
// Pareto front.
func (m StepModel) TokenRate(prefillFrac, kv float64) float64 {
	if prefillFrac < 0 {
		prefillFrac = 0
	}
	if prefillFrac > 1 {
		prefillFrac = 1
	}
	budget := m.StepBudget()
	p := int(math.Round(prefillFrac * float64(budget)))
	d := budget - p
	if d > m.MaxSeqs {
		d = m.MaxSeqs
	}
	if p+d == 0 {
		return 0
	}
	return float64(p+d) / m.StepTime(p, d, kv)
}

// Validate reports coefficient errors.
func (m StepModel) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("llm: unnamed step model")
	}
	if !(m.Accuracy > 0 && m.Accuracy <= 1) {
		return fmt.Errorf("llm: model %q accuracy %v outside (0, 1]", m.Name, m.Accuracy)
	}
	if !(m.Beta0 > 0) || m.BetaPrefill < 0 || m.BetaDecode < 0 || m.BetaKV < 0 {
		return fmt.Errorf("llm: model %q has invalid step-time coefficients (β₀=%v β₁=%v β₂=%v β₃=%v)",
			m.Name, m.Beta0, m.BetaPrefill, m.BetaDecode, m.BetaKV)
	}
	if m.BetaPrefill == 0 && m.BetaDecode == 0 {
		return fmt.Errorf("llm: model %q has no per-token cost", m.Name)
	}
	if m.KVCapTokens < 1 {
		return fmt.Errorf("llm: model %q KV capacity %d tokens not positive", m.Name, m.KVCapTokens)
	}
	if m.MaxStepTokens < 0 {
		return fmt.Errorf("llm: model %q negative step budget %d", m.Name, m.MaxStepTokens)
	}
	if m.MaxSeqs < 1 {
		return fmt.Errorf("llm: model %q max sequence count %d not positive", m.Name, m.MaxSeqs)
	}
	return nil
}

// Set is a corpus of step models available on a worker for one task.
type Set struct {
	Task   string      `json:"task"`
	Models []StepModel `json:"models"`
}

// Len returns the number of models.
func (s Set) Len() int { return len(s.Models) }

// Validate reports the first invalid model, and duplicate names.
func (s Set) Validate() error {
	if s.Len() == 0 {
		return fmt.Errorf("llm: empty step-model set")
	}
	seen := map[string]bool{}
	for _, m := range s.Models {
		if err := m.Validate(); err != nil {
			return err
		}
		if seen[m.Name] {
			return fmt.Errorf("llm: duplicate model name %q", m.Name)
		}
		seen[m.Name] = true
	}
	return nil
}

// ByName returns the step model with the given name.
func (s Set) ByName(name string) (StepModel, bool) {
	for _, m := range s.Models {
		if m.Name == name {
			return m, true
		}
	}
	return StepModel{}, false
}

// IndexByName returns the index of the named model, or -1.
func (s Set) IndexByName(name string) int {
	for i, m := range s.Models {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Fastest returns the index of the highest-throughput model at a balanced
// mixed composition (the forced choice when no model can clear the backlog
// within the SLO).
func (s Set) Fastest() int {
	if s.Len() == 0 {
		panic("llm: Fastest on empty set")
	}
	best, bestRate := 0, math.Inf(-1)
	for i, m := range s.Models {
		if r := m.TokenRate(0.5, 0.5); r > bestRate {
			best, bestRate = i, r
		}
	}
	return best
}

// MostAccurate returns the index of the highest-accuracy model.
func (s Set) MostAccurate() int {
	if s.Len() == 0 {
		panic("llm: MostAccurate on empty set")
	}
	best := 0
	for i, m := range s.Models {
		if m.Accuracy > s.Models[best].Accuracy {
			best = i
		}
	}
	return best
}

// ParetoFront returns the models on the accuracy/token-throughput Pareto
// front: every model for which no other model has both higher-or-equal
// throughput (at a balanced mixed composition) and strictly higher accuracy
// (nor equal accuracy at strictly higher throughput). Policy generation
// prunes the action space to this front, mirroring the scalar path.
func (s Set) ParetoFront() Set {
	out := Set{Task: s.Task}
	for i, m := range s.Models {
		ri := m.TokenRate(0.5, 0.5)
		dominated := false
		for j, o := range s.Models {
			if i == j {
				continue
			}
			rj := o.TokenRate(0.5, 0.5)
			if (rj >= ri && o.Accuracy > m.Accuracy) || (rj > ri && o.Accuracy == m.Accuracy) {
				dominated = true
				break
			}
		}
		if !dominated {
			out.Models = append(out.Models, m)
		}
	}
	return out
}

// WithKVCap returns a copy with every model's KV capacity overridden to cap
// tokens (the -llm-kv-cap knob). cap <= 0 returns the set unchanged.
func (s Set) WithKVCap(cap int) Set {
	if cap <= 0 {
		return s
	}
	out := Set{Task: s.Task, Models: append([]StepModel(nil), s.Models...)}
	for i := range out.Models {
		out.Models[i].KVCapTokens = cap
	}
	return out
}

// ScalarProfiles flattens the step models into scalar per-(model, batch)
// latency tables — the view a profile-table-only system has of an LLM
// workload. A batch of b queries averaging meanIn prompt and meanOut output
// tokens is costed as b·(meanIn+meanOut) tokens drained at the model's
// sustained mixed-composition token rate, plus the per-step overhead. The
// resulting Set feeds core.Generate unchanged and is the scalar baseline
// the token-aware policy is compared against: it preserves each model's
// mean throughput and the set's Pareto ordering but cannot see token-level
// state (a long-prefill burst looks like any other n-query queue).
func (s Set) ScalarProfiles(meanIn, meanOut float64, maxBatch int) profile.Set {
	if maxBatch <= 0 {
		maxBatch = profile.MaxSupportedBatch
	}
	perQuery := meanIn + meanOut
	if !(perQuery > 0) {
		panic(fmt.Sprintf("llm: invalid mean token lengths (%v in, %v out)", meanIn, meanOut))
	}
	frac := meanIn / perQuery
	out := profile.Set{Task: s.Task}
	for _, m := range s.Models {
		rate := m.TokenRate(frac, 0.5)
		lat := make([]float64, maxBatch)
		for b := 1; b <= maxBatch; b++ {
			lat[b-1] = m.Beta0 + float64(b)*perQuery/rate
		}
		out.Profiles = append(out.Profiles, profile.Profile{
			Model:   profile.Model{Name: m.Name, Accuracy: m.Accuracy},
			Latency: lat,
		})
	}
	return out
}

// BuiltinSet returns the built-in three-model chat corpus, calibrated so
// all three land on the accuracy/throughput Pareto front (selection is
// non-trivial): an 8B-class draft model, a 34B-class workhorse, and a
// 72B-class flagship. Throughput falls and accuracy rises with scale;
// KV capacity shrinks with scale because weights crowd out cache.
func BuiltinSet() Set {
	return Set{Task: "chat", Models: []StepModel{
		{
			Name: "chat-8b", Accuracy: 0.62,
			Beta0: 0.006, BetaPrefill: 60e-6, BetaDecode: 100e-6, BetaKV: 0.008,
			KVCapTokens: 16384, MaxStepTokens: 2048, MaxSeqs: 64,
		},
		{
			Name: "chat-34b", Accuracy: 0.70,
			Beta0: 0.015, BetaPrefill: 180e-6, BetaDecode: 250e-6, BetaKV: 0.018,
			KVCapTokens: 10240, MaxStepTokens: 2048, MaxSeqs: 48,
		},
		{
			Name: "chat-72b", Accuracy: 0.77,
			Beta0: 0.030, BetaPrefill: 400e-6, BetaDecode: 600e-6, BetaKV: 0.035,
			KVCapTokens: 6144, MaxStepTokens: 2048, MaxSeqs: 32,
		},
	}}
}
