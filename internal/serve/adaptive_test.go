package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ramsis/internal/adapt"
	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/monitor"
	"ramsis/internal/profile"
	"ramsis/internal/sim"
)

// TestFrontendDispatchDuringPolicySwap is the hot-swap half of the
// adaptation contract, run under -race by `make race`: policies are
// atomically swapped at high frequency while the frontend concurrently
// selects and dispatches live queries. Every query must get a complete
// decision from either the old or the new policy — never a torn one.
func TestFrontendDispatchDuringPolicySwap(t *testing.T) {
	const workers, slo, timeScale = 2, 0.150, 5.0
	models := profile.AblationImageSet()
	base := core.Config{
		Models:   models,
		SLO:      slo,
		Workers:  workers,
		Arrival:  dist.NewPoisson(20),
		D:        20,
		MaxQueue: 16,
	}
	gen := func(load float64) *core.Policy {
		cfg := base
		cfg.Arrival = dist.NewPoisson(load)
		pol, err := core.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}
	p20, p200 := gen(20), gen(200)

	a, err := adapt.New(adapt.Config{Base: base, BucketSize: 20, Background: true}, p20)
	if err != nil {
		t.Fatal(err)
	}

	urls := make([]string, workers)
	for i := 0; i < workers; i++ {
		w := NewWorker(models, sim.Deterministic{}, timeScale, int64(i+1))
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Stop() })
		urls[i] = w.URL()
	}
	f := &Frontend{
		Profiles:  models,
		SLO:       slo,
		TimeScale: timeScale,
		Workers:   urls,
		Select:    AdaptiveSelector(a),
		Monitor:   monitor.NewMovingAverage(0.5),
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	// Swapper: hammer Install while queries are in flight.
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				a.Install(200, p200)
			} else {
				a.Install(20, p20)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const n = 60
	var wg sync.WaitGroup
	responses := make([]QueryResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
			resp, err := http.Post(f.URL()+"/query", "application/json", strings.NewReader(`{}`))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d failed mid-swap: %v", i, errs[i])
		}
		if responses[i].Model == "" || responses[i].Batch < 1 {
			t.Fatalf("query %d: torn decision %+v", i, responses[i])
		}
	}
	if s := a.Stats(); s.Swaps < 100 {
		t.Errorf("only %d swaps happened; the race window was barely exercised", s.Swaps)
	}
}
