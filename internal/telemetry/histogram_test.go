package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ramsis/internal/stats"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram: count %d sum %v mean %v", h.Count(), h.Sum(), h.Mean())
	}
	for _, p := range []float64{0, 50, 95, 100} {
		if q := h.Quantile(p); q != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", p, q)
		}
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	h.Observe(0.3)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if q := h.Quantile(p); math.Abs(q-0.3) > 1e-12 {
			t.Errorf("single-sample Quantile(%v) = %v, want 0.3", p, q)
		}
	}
	if h.Min() != 0.3 || h.Max() != 0.3 || h.Mean() != 0.3 {
		t.Errorf("min/max/mean = %v/%v/%v", h.Min(), h.Max(), h.Mean())
	}
}

// TestHistogramBucketBoundary checks the Prometheus le contract: a sample
// equal to an upper bound counts in that bucket, one epsilon above spills
// into the next.
func TestHistogramBucketBoundary(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1)                    // le="1"
	h.Observe(math.Nextafter(1, 2)) // le="2"
	h.Observe(2)                    // le="2"
	h.Observe(2.5)                  // +Inf
	var b bytes.Buffer
	h.write(&b, "x", "")
	out := b.String()
	for _, want := range []string{
		`x_bucket{le="1"} 1`,
		`x_bucket{le="2"} 3`,
		`x_bucket{le="+Inf"} 4`,
		`x_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramQuantileVsExact compares the log-bucketed approximation to
// the exact stats.Percentile over the same samples: within a bucket the
// error is bounded by the 1.5x bucket growth.
func TestHistogramQuantileVsExact(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	var xs []float64
	for i := 1; i <= 5000; i++ {
		v := 0.0005 * float64(i) // 0.5 ms .. 2.5 s, uniform
		xs = append(xs, v)
		h.Observe(v)
	}
	for _, p := range []float64{10, 50, 90, 95, 99} {
		exact := stats.Percentile(xs, p)
		approx := h.Quantile(p)
		if rel := math.Abs(approx-exact) / exact; rel > 0.25 {
			t.Errorf("Quantile(%v) = %v, exact %v (rel err %.3f)", p, approx, exact, rel)
		}
	}
	if h.Quantile(0) != xs[0] || h.Quantile(100) != xs[len(xs)-1] {
		t.Errorf("edge quantiles %v/%v, want exact min/max %v/%v",
			h.Quantile(0), h.Quantile(100), xs[0], xs[len(xs)-1])
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	for _, v := range []float64{0.001, 0.002, 0.004, 0.1, 0.1, 0.1, 1.5, 9} {
		h.Observe(v)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 5 {
		q := h.Quantile(p)
		if q < prev-1e-12 {
			t.Fatalf("Quantile(%v) = %v < Quantile(%v) = %v", p, q, p-5, prev)
		}
		prev = q
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted buckets accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(1, 2, 3)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", got, want)
		}
	}
}
